# Mirrors the CI jobs in .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race lint bench clean

all: build

build:
	$(GO) build ./...
	$(GO) build -o exegpt ./cmd/exegpt

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages: the parallel scheduler
# search, the runner engines, and the parallel experiment sweep.
race:
	$(GO) test -race ./internal/core/... ./internal/runner/... ./internal/experiments/... ./internal/par/...

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Compare the sequential and parallel schedule search.
bench:
	$(GO) test -bench 'FindBest' -run '^$$' -benchmem ./internal/core/

clean:
	rm -f exegpt
