# Mirrors the CI jobs in .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race lint bench bench-report sweep-sharded sweep-dispatch sweep-http sweep-resume sweep-scale serve-smoke serve-golden policy-conformance clean

all: build

build:
	$(GO) build ./...
	$(GO) build -o exegpt ./cmd/exegpt

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages: the parallel scheduler
# search, the runner engines, the parallel experiment sweep, the
# multi-process shard pipeline (concurrent shard workers sharing one
# profile cache), and the work-stealing dispatcher.
race:
	$(GO) test -race ./internal/core/... ./internal/runner/... ./internal/experiments/... ./internal/par/... ./internal/distsweep/... ./internal/atomicfile/... ./internal/dispatch/... ./internal/serve/...

# End-to-end sharded sweep on one box: fork 2 local shard worker
# processes sharing an on-disk profile cache, merge their envelopes, and
# require the merged artifact to be byte-identical to the
# single-process sweep's.
SHARD_DIR := .shard-demo
sweep-sharded: build
	rm -rf $(SHARD_DIR) && mkdir -p $(SHARD_DIR)/profiles
	./exegpt sweep -quick -models OPT-13B -tasks S,T \
		-profile-cache $(SHARD_DIR)/profiles -json $(SHARD_DIR)/single.json > /dev/null
	./exegpt sweep -quick -models OPT-13B -tasks S,T \
		-profile-cache $(SHARD_DIR)/profiles -shards 2 -spawn \
		-shard-dir $(SHARD_DIR)/shards -json $(SHARD_DIR)/spawned.json
	./exegpt merge -json $(SHARD_DIR)/merged.json $(SHARD_DIR)/shards/shard_*.json > /dev/null
	cmp $(SHARD_DIR)/single.json $(SHARD_DIR)/spawned.json
	cmp $(SHARD_DIR)/single.json $(SHARD_DIR)/merged.json
	@echo "sharded sweep == single-process sweep (byte-identical)"

# End-to-end work-stealing sweep on one box: a file-spool coordinator
# plus two pull worker processes, one of them killed right after launch
# so its leases requeue; the merged artifact must be byte-identical to
# the single-process sweep's.
DISPATCH_DIR := .dispatch-demo
sweep-dispatch: build
	rm -rf $(DISPATCH_DIR) && mkdir -p $(DISPATCH_DIR)/profiles
	./exegpt sweep -quick -models OPT-13B -tasks S,T \
		-profile-cache $(DISPATCH_DIR)/profiles -json $(DISPATCH_DIR)/single.json > /dev/null
	./exegpt dispatch -quick -models OPT-13B -tasks S,T \
		-profile-cache $(DISPATCH_DIR)/profiles -spool $(DISPATCH_DIR)/spool \
		-lease-timeout 3s -json $(DISPATCH_DIR)/dispatched.json > /dev/null & \
	./exegpt sweep -quick -models OPT-13B -tasks S,T \
		-profile-cache $(DISPATCH_DIR)/profiles -pull -spool $(DISPATCH_DIR)/spool -worker-id w1 & \
	W1=$$!; sleep 0.3; kill -9 $$W1 2>/dev/null; \
	./exegpt sweep -quick -models OPT-13B -tasks S,T \
		-profile-cache $(DISPATCH_DIR)/profiles -pull -spool $(DISPATCH_DIR)/spool -worker-id w2; \
	wait
	cmp $(DISPATCH_DIR)/single.json $(DISPATCH_DIR)/dispatched.json
	@echo "work-stealing sweep == single-process sweep (byte-identical)"

# End-to-end HTTP-dispatched sweep on one box: an HTTP coordinator plus
# two workers attaching over TCP, one killed mid-sweep and replaced by a
# late-attaching worker (elastic fleet); the merged artifact must be
# byte-identical to the single-process sweep's.
HTTP_DIR := .http-demo
HTTP_ADDR := 127.0.0.1:18080
sweep-http: build
	rm -rf $(HTTP_DIR) && mkdir -p $(HTTP_DIR)/profiles
	./exegpt sweep -quick -models OPT-13B -tasks S,T \
		-profile-cache $(HTTP_DIR)/profiles -json $(HTTP_DIR)/single.json > /dev/null
	./exegpt dispatch -quick -models OPT-13B -tasks S,T \
		-profile-cache $(HTTP_DIR)/profiles -http $(HTTP_ADDR) \
		-lease-timeout 3s -dispatch-idle 60s -json $(HTTP_DIR)/http.json > /dev/null & \
	./exegpt sweep -quick -models OPT-13B -tasks S,T \
		-profile-cache $(HTTP_DIR)/profiles -mode pull -connect http://$(HTTP_ADDR) -worker-id w1 & \
	W1=$$!; sleep 0.3; kill -9 $$W1 2>/dev/null; \
	./exegpt sweep -quick -models OPT-13B -tasks S,T -dispatch-idle 15s \
		-profile-cache $(HTTP_DIR)/profiles -mode pull -connect http://$(HTTP_ADDR) -worker-id w2 || true; \
	wait
	cmp $(HTTP_DIR)/single.json $(HTTP_DIR)/http.json
	@echo "HTTP-dispatched sweep == single-process sweep (byte-identical)"

# Crash-and-resume HTTP sweep: a journaled HTTP coordinator is
# SIGKILLed mid-run (one of its workers is too), then a fresh
# coordinator replays the journal on the same address and finishes the
# remaining cells; the resumed artifact must be byte-identical to the
# single-process sweep's. -requests 20000 slows each cell to ~1s so the
# kill reliably lands while cells are still outstanding (a kill landing
# after completion still resumes and compares clean — just less
# interestingly).
RESUME_DIR := .resume-demo
RESUME_ADDR := 127.0.0.1:18091
RESUME_GRID := -quick -requests 20000 -models OPT-13B -tasks S,T,G
sweep-resume: build
	rm -rf $(RESUME_DIR) && mkdir -p $(RESUME_DIR)/profiles
	./exegpt sweep $(RESUME_GRID) \
		-profile-cache $(RESUME_DIR)/profiles -json $(RESUME_DIR)/single.json > /dev/null
	./exegpt dispatch $(RESUME_GRID) \
		-profile-cache $(RESUME_DIR)/profiles -http $(RESUME_ADDR) \
		-journal $(RESUME_DIR)/journal \
		-lease-timeout 3s -dispatch-idle 60s > /dev/null & \
	C1=$$!; \
	./exegpt sweep $(RESUME_GRID) \
		-profile-cache $(RESUME_DIR)/profiles -mode pull -connect http://$(RESUME_ADDR) -worker-id w1 & \
	W1=$$!; \
	./exegpt sweep $(RESUME_GRID) -dispatch-idle 30s \
		-profile-cache $(RESUME_DIR)/profiles -mode pull -connect http://$(RESUME_ADDR) -worker-id w2 || true & \
	sleep 0.3; kill -9 $$W1 2>/dev/null; \
	sleep 1.0; kill -9 $$C1 2>/dev/null; \
	./exegpt sweep $(RESUME_GRID) \
		-profile-cache $(RESUME_DIR)/profiles -mode dispatch -http $(RESUME_ADDR) \
		-dispatch-workers 1 -journal $(RESUME_DIR)/journal \
		-lease-timeout 3s -dispatch-idle 60s -json $(RESUME_DIR)/resumed.json > /dev/null; \
	wait
	cmp $(RESUME_DIR)/single.json $(RESUME_DIR)/resumed.json
	@echo "journal-resumed sweep == single-process sweep (byte-identical)"

# Self-healing supervised sweep: one HTTP coordinator owns its worker
# fleet via -scale-min/-scale-max — it starts one local pull worker,
# scales to three on queue depth, and when one worker is SIGKILLed
# mid-lease the supervisor replaces it with the slot's next incarnation
# after a backoff. The coordinator's stderr must show both the scale-up
# and the replacement, and the final artifact must be byte-identical to
# the single-process sweep's. -requests 60000 slows each cell to a few
# seconds so the kill reliably lands mid-lease.
SCALE_DIR := .scale-demo
SCALE_ADDR := 127.0.0.1:18095
SCALE_GRID := -quick -requests 60000 -models OPT-13B -tasks S,T,G
sweep-scale: build
	rm -rf $(SCALE_DIR) && mkdir -p $(SCALE_DIR)/profiles
	./exegpt sweep $(SCALE_GRID) \
		-profile-cache $(SCALE_DIR)/profiles -json $(SCALE_DIR)/single.json > /dev/null
	./exegpt sweep $(SCALE_GRID) -mode dispatch -http $(SCALE_ADDR) \
		-profile-cache $(SCALE_DIR)/profiles \
		-scale-min 1 -scale-max 3 \
		-lease-timeout 3s -dispatch-idle 120s \
		-json $(SCALE_DIR)/scaled.json > /dev/null 2> $(SCALE_DIR)/coord.log & \
	C1=$$!; \
	sleep 2.0; pkill -9 -f 'worker-id [s]0r0' 2>/dev/null || true; \
	wait $$C1
	grep -q 'supervisor: started worker s2r0' $(SCALE_DIR)/coord.log
	grep -q 'supervisor: started worker s0r1' $(SCALE_DIR)/coord.log
	cmp $(SCALE_DIR)/single.json $(SCALE_DIR)/scaled.json
	@echo "self-healing autoscaled sweep == single-process sweep (byte-identical)"

# Online-serving smoke: run a deterministic serving scenario — a rate
# step that fires one schedule switch — and require the JSON artifact
# to be byte-identical to the committed golden. A deliberate behavior
# change regenerates the golden with `make serve-golden`.
SERVE_DIR := .serve-demo
SERVE_FLAGS := -quick -arrival step -rate 1 -step-at 40 -step-factor 8 \
	-duration 120 -slo 5 -window 5 -switch-cost 2 -check-every 2
serve-smoke: build
	rm -rf $(SERVE_DIR) && mkdir -p $(SERVE_DIR)
	./exegpt serve $(SERVE_FLAGS) -json $(SERVE_DIR)/serve.json > /dev/null
	cmp GOLDEN_serve.json $(SERVE_DIR)/serve.json
	@echo "serve artifact == committed golden (byte-identical)"

serve-golden: build
	./exegpt serve $(SERVE_FLAGS) -json GOLDEN_serve.json > /dev/null

# Execution-policy seam: run the per-family conformance suite under the
# race detector and forbid new policy-identity branches outside the
# sched registry.
policy-conformance:
	$(GO) test -race ./internal/sched/familytest/
	./scripts/policy_gate.sh

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Compare the reference and Evaluator estimate paths plus the
# sequential/parallel/multi-bound schedule search.
bench:
	$(GO) test -bench 'FindBest|Estimate' -run '^$$' -benchmem ./internal/core/

# Regenerate the committed Estimate/FindBest and multi-bound sweep
# perf reports.
bench-report: build
	./exegpt bench -time 1 -out BENCH_estimate.json -sweep-out BENCH_sweep.json

clean:
	rm -f exegpt
	rm -rf $(SHARD_DIR) $(DISPATCH_DIR) $(HTTP_DIR) $(RESUME_DIR) $(SCALE_DIR) $(SERVE_DIR)
