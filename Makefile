# Mirrors the CI jobs in .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race lint bench bench-report clean

all: build

build:
	$(GO) build ./...
	$(GO) build -o exegpt ./cmd/exegpt

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages: the parallel scheduler
# search, the runner engines, and the parallel experiment sweep.
race:
	$(GO) test -race ./internal/core/... ./internal/runner/... ./internal/experiments/... ./internal/par/...

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Compare the reference and Evaluator estimate paths plus the
# sequential/parallel/multi-bound schedule search.
bench:
	$(GO) test -bench 'FindBest|Estimate' -run '^$$' -benchmem ./internal/core/

# Regenerate the committed Estimate/FindBest and multi-bound sweep
# perf reports.
bench-report: build
	./exegpt bench -time 1 -out BENCH_estimate.json -sweep-out BENCH_sweep.json

clean:
	rm -f exegpt
