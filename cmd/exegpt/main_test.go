package main

import (
	"flag"
	"testing"

	"exegpt/internal/sched"
)

// commonFlags must plumb -profile-cache (and friends) into the context.
func TestCommonFlagsPlumbContext(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	newCtx := commonFlags(fs)
	if err := fs.Parse([]string{"-profile-cache", "/tmp/pc", "-quick", "-seed", "7", "-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	c := newCtx()
	if c.ProfileCacheDir != "/tmp/pc" || !c.Quick || c.Seed != 7 || c.Workers != 3 {
		t.Fatalf("context not plumbed: %+v", c)
	}
}

func TestParsePolicies(t *testing.T) {
	rra, err := parsePolicies("rra")
	if err != nil || len(rra) != 1 || len(rra[0]) != 1 || rra[0][0] != sched.RRA {
		t.Fatalf("rra: %v %v", rra, err)
	}
	waa, err := parsePolicies("WAA")
	if err != nil || len(waa) != 1 || len(waa[0]) != 2 {
		t.Fatalf("waa: %v %v", waa, err)
	}
	all, err := parsePolicies("all")
	if err != nil || len(all) != 2 {
		t.Fatalf("all: %v %v", all, err)
	}
	if got := flattenPolicies(all); len(got) != 3 {
		t.Fatalf("flatten: %v", got)
	}
	if _, err := parsePolicies("bogus"); err == nil {
		t.Fatal("bogus policy set should error")
	}
}

func TestClusterByName(t *testing.T) {
	for _, name := range []string{"A40", "a100"} {
		c, err := clusterByName(name)
		if err != nil || c.TotalGPUs() == 0 {
			t.Fatalf("%s: %v %v", name, c, err)
		}
	}
	if _, err := clusterByName("H100"); err == nil {
		t.Fatal("unknown cluster should error")
	}
}

func TestTasksByIDs(t *testing.T) {
	tasks, err := tasksByIDs("")
	if err != nil || len(tasks) != 5 {
		t.Fatalf("default tasks: %d %v", len(tasks), err)
	}
	tasks, err = tasksByIDs("S, T")
	if err != nil || len(tasks) != 2 || tasks[0].ID != "S" || tasks[1].ID != "T" {
		t.Fatalf("S,T: %v %v", tasks, err)
	}
	if _, err := tasksByIDs("nope"); err == nil {
		t.Fatal("unknown task should error")
	}
}

func TestModelsByNames(t *testing.T) {
	all, err := modelsByNames("")
	if err != nil || len(all) == 0 {
		t.Fatalf("default models: %v %v", all, err)
	}
	seen := map[string]bool{}
	for _, m := range all {
		if seen[m.Name] {
			t.Fatalf("duplicate default model %s", m.Name)
		}
		seen[m.Name] = true
	}
	one, err := modelsByNames("OPT-13B")
	if err != nil || len(one) != 1 || one[0].Name != "OPT-13B" {
		t.Fatalf("OPT-13B: %v %v", one, err)
	}
	if _, err := modelsByNames("GPT-9000"); err == nil {
		t.Fatal("unknown model should error")
	}
}
