package main

import (
	"flag"
	"fmt"
	"strings"

	"exegpt/internal/experiments"
)

// cmdTables regenerates the paper's tables (1-7) and the §7.7
// scheduling-cost comparison.
func cmdTables(args []string) error {
	fs := flag.NewFlagSet("tables", flag.ExitOnError)
	newCtx := commonFlags(fs)
	which := fs.String("which", "all", "comma-separated table numbers (1-7, cost) or all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := newCtx()

	type table struct {
		name string
		run  func() (string, error)
	}
	tables := []table{
		{"1", func() (string, error) { return experiments.Table1(), nil }},
		{"2", func() (string, error) { return experiments.Table2(), nil }},
		{"3", func() (string, error) { return experiments.Table3(), nil }},
		{"4", func() (string, error) {
			return experiments.FormatTable4(experiments.Table4()), nil
		}},
		{"5", func() (string, error) {
			rows, err := ctx.Table5()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable5(rows), nil
		}},
		{"6", func() (string, error) {
			rows, err := ctx.Table6()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable6(rows), nil
		}},
		{"7", func() (string, error) {
			rows, err := ctx.Table7()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable7(rows), nil
		}},
		{"cost", func() (string, error) {
			rows, err := ctx.SchedulingCost()
			if err != nil {
				return "", err
			}
			return experiments.FormatSchedulingCost(rows), nil
		}},
	}

	want := map[string]bool{}
	if *which != "all" {
		for _, w := range strings.Split(*which, ",") {
			want[strings.TrimSpace(strings.ToLower(w))] = true
		}
	}
	ran := 0
	for _, t := range tables {
		if len(want) > 0 && !want[t.name] {
			continue
		}
		out, err := t.run()
		if err != nil {
			return fmt.Errorf("table %s: %w", t.name, err)
		}
		fmt.Printf("Table %s:\n%s\n", t.name, out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no tables matched -which=%s", *which)
	}
	return nil
}
