// Command exegpt is the CLI entry point for the ExeGPT reproduction:
// constraint-aware schedule search (§5), experiment sweeps, and the
// paper's figure/table regenerators (§7), all on the simulated
// substrate.
//
// Usage:
//
//	exegpt search  [flags]   find the best schedule for one deployment
//	exegpt serve   [flags]   long-lived simulated serving loop: open-loop
//	                         arrivals (-arrival, -rate), windowed SLO
//	                         reporting, adaptive schedule switching gated
//	                         by -switch-cost; -json writes the artifact
//	exegpt sweep   [flags]   grid-evaluate deployments x tasks; -mode
//	                         selects the distribution role: single,
//	                         worker/spawn (static shards), dispatch/pull
//	                         (dynamic work stealing over a file spool or
//	                         HTTP)
//	exegpt merge   [flags]   merge sharded-sweep envelopes into the
//	                         single-process sweep output
//	exegpt dispatch [flags]  serve a work-stealing sweep coordinator over
//	                         a -spool directory or a -http address
//	                         (workers: sweep -mode pull)
//	exegpt figures [flags]   regenerate paper figures (6-11)
//	exegpt tables  [flags]   regenerate paper tables (1-7, cost)
//	exegpt bench   [flags]   measure the Estimate/FindBest hot paths
//
// Every subcommand accepts -seed, -workers, -requests, -quick and
// -profile-cache; run `exegpt <command> -h` for the full flag list.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"exegpt/internal/experiments"
	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "search":
		err = cmdSearch(args)
	case "serve":
		err = cmdServe(args)
	case "sweep":
		err = cmdSweep(args)
	case "merge":
		err = cmdMerge(args)
	case "dispatch":
		err = cmdDispatch(args)
	case "figures":
		err = cmdFigures(args)
	case "tables":
		err = cmdTables(args)
	case "bench":
		err = cmdBench(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "exegpt: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "exegpt %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: exegpt <command> [flags]

Commands:
  search    find the best schedule for one (model, cluster, task) deployment
  serve     long-lived simulated serving: seeded open-loop arrivals (poisson,
            mmpp, diurnal or step) admitted incrementally, per-window
            p50/p99-vs-SLO time series, and a controller that re-searches on
            workload drift and switches schedules when the projected gain
            beats the modeled drain + re-shard cost (-switch-cost); same
            seed and flags produce a byte-identical -json artifact
  sweep     grid-evaluate deployments x tasks, parallel across deployments;
            -mode picks the distribution role: single (default), worker or
            spawn (static shards across processes), dispatch (work-stealing
            coordinator over a file -spool or an -http API) or pull (worker
            attaching via -spool or -connect URL); the legacy
            -shard-index/-spawn/-dispatch/-pull spellings still work;
            -journal DIR makes a dispatch sweep crash-safe and resumable
            (rerun with the same flags to pick it back up)
  merge     merge shard envelopes (exegpt sweep -shards ... -out ...) into
            the single-process sweep output
  dispatch  serve a standalone work-stealing coordinator over a -spool
            directory or an -http address; operators attach "exegpt sweep
            -mode pull" workers at any time, from any reachable host;
            -journal DIR journals accepted results for kill -9-safe resume
  figures   regenerate the paper's figures (6, 7, 8, 9, 10, 11)
  tables    regenerate the paper's tables (1-7) and the scheduling-cost study
  bench     measure Estimate/s and FindBest wall time, write BENCH_estimate.json

Run "exegpt <command> -h" for command flags.
`)
}

// commonFlags registers the flags shared by every subcommand and
// returns a constructor for the configured experiment context.
func commonFlags(fs *flag.FlagSet) func() *experiments.Context {
	seed := fs.Int64("seed", 42, "request-sampling seed")
	workers := fs.Int("workers", 0, "scheduler/sweep worker count (0 = GOMAXPROCS)")
	requests := fs.Int("requests", 0, "requests per measured run (0 = context default)")
	quick := fs.Bool("quick", false, "shrink sweeps for fast runs")
	profileCache := fs.String("profile-cache", "",
		"directory for the on-disk profile.Table JSON cache, keyed by (model, GPU); empty disables")
	return func() *experiments.Context {
		c := experiments.NewContext()
		if *quick {
			c = experiments.NewQuickContext()
		}
		c.Seed = *seed
		c.Workers = *workers
		if *requests > 0 {
			c.Requests = *requests
		}
		c.ProfileCacheDir = *profileCache
		return c
	}
}

// parsePolicies maps a policy-set name to scheduler policy groups.
// "rra" and "waa" select one family; "all" searches both paper
// families. "disagg" opts into the experimental disaggregated
// prefill/decode family, which "all" deliberately excludes.
func parsePolicies(name string) ([][]sched.Policy, error) {
	switch strings.ToLower(name) {
	case "rra":
		return [][]sched.Policy{{sched.RRA}}, nil
	case "waa":
		return [][]sched.Policy{{sched.WAAC, sched.WAAM}}, nil
	case "disagg":
		return [][]sched.Policy{{sched.Disagg}}, nil
	case "all", "":
		return [][]sched.Policy{{sched.RRA}, {sched.WAAC, sched.WAAM}}, nil
	}
	return nil, fmt.Errorf("unknown policy set %q (want rra, waa, disagg or all)", name)
}

// flattenPolicies merges policy groups into one search set.
func flattenPolicies(groups [][]sched.Policy) []sched.Policy {
	var out []sched.Policy
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// clusterByName resolves a cluster flag value.
func clusterByName(name string) (hw.Cluster, error) {
	switch strings.ToUpper(name) {
	case "A40":
		return hw.A40Cluster, nil
	case "A100":
		return hw.A100Cluster, nil
	}
	return hw.Cluster{}, fmt.Errorf("unknown cluster %q (want A40 or A100)", name)
}

// tasksByIDs resolves a comma-separated task-ID list; empty means the
// paper's five synthetic tasks.
func tasksByIDs(list string) ([]workload.Task, error) {
	if list == "" {
		return workload.Tasks, nil
	}
	var out []workload.Task
	for _, id := range strings.Split(list, ",") {
		t, err := workload.ByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// modelsByNames resolves a comma-separated model-name list; empty means
// every Table 1 model with a default deployment.
func modelsByNames(list string) ([]model.Model, error) {
	if list == "" {
		var out []model.Model
		seen := map[string]bool{}
		for _, d := range sched.DefaultDeployments {
			if !seen[d.Model.Name] {
				seen[d.Model.Name] = true
				out = append(out, d.Model)
			}
		}
		return out, nil
	}
	var out []model.Model
	for _, name := range strings.Split(list, ",") {
		m, err := model.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
