package main

import (
	"flag"
	"fmt"
	"strings"

	"exegpt/internal/experiments"
)

// cmdFigures regenerates the paper's evaluation figures (§7.2-§7.6).
func cmdFigures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	newCtx := commonFlags(fs)
	which := fs.String("which", "all", "comma-separated figure numbers (6,7,8,9,10,11) or all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := newCtx()

	type figure struct {
		name string
		run  func() (string, error)
	}
	figures := []figure{
		{"6", func() (string, error) {
			cells, err := ctx.Figure6()
			if err != nil {
				return "", err
			}
			return experiments.FormatThroughput("Figure 6: ExeGPT vs FT (small/mid models)", cells), nil
		}},
		{"7", func() (string, error) {
			cells, err := ctx.Figure7()
			if err != nil {
				return "", err
			}
			return experiments.FormatThroughput("Figure 7: existing systems (OPT-13B, 4x A40)", cells), nil
		}},
		{"8", func() (string, error) {
			cells, err := ctx.Figure8()
			if err != nil {
				return "", err
			}
			return experiments.FormatThroughput("Figure 8: ExeGPT-RRA vs FT (large models)", cells), nil
		}},
		{"9", func() (string, error) {
			cells, err := ctx.Figure9()
			if err != nil {
				return "", err
			}
			return "Figure 9: per-GPU memory, FT vs WAA\n" + experiments.FormatMemory(cells), nil
		}},
		{"10", func() (string, error) {
			cells, err := ctx.Figure10()
			if err != nil {
				return "", err
			}
			return experiments.FormatThroughput("Figure 10: real-dataset emulations", cells), nil
		}},
		{"11", func() (string, error) {
			cells, err := ctx.Figure11()
			if err != nil {
				return "", err
			}
			return "Figure 11: distribution shift (WAA, OPT-13B)\n" + experiments.FormatShift(cells), nil
		}},
	}

	want := map[string]bool{}
	if *which != "all" {
		for _, w := range strings.Split(*which, ",") {
			want[strings.TrimSpace(w)] = true
		}
	}
	ran := 0
	for _, f := range figures {
		if len(want) > 0 && !want[f.name] {
			continue
		}
		out, err := f.run()
		if err != nil {
			return fmt.Errorf("figure %s: %w", f.name, err)
		}
		fmt.Println(out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no figures matched -which=%s", *which)
	}
	return nil
}
