package main

// Supervised-fleet plumbing shared by `exegpt sweep -mode dispatch`
// and the `exegpt dispatch` serve mode: with -scale-max set, the
// coordinator's worker fleet is managed by a supervisor reconciliation
// loop (internal/dispatch/supervisor) instead of being a fixed set —
// crashed or excluded workers are replaced with capped backoff, the
// fleet scales between -scale-min and -scale-max from queue depth, and
// scale-downs drain gracefully through the coordinator.

import (
	"fmt"
	"os"
	"time"

	"exegpt/internal/dispatch"
	"exegpt/internal/dispatch/supervisor"
	"exegpt/internal/distsweep"
)

// scaleParams are the validated scale flags; max == 0 means
// supervision is off.
type scaleParams struct {
	min, max, restartMax int
	seed                 int64
}

func (p scaleParams) on() bool { return p.max > 0 }

// fleetOps adapts distsweep.Fleet to the supervisor's Ops interface,
// building each incarnation's argv at spawn time (worker ids are baked
// into the argument vector).
type fleetOps struct {
	fleet *distsweep.Fleet
	argv  func(id string) []string
}

func (o fleetOps) Spawn(id string) error          { return o.fleet.Start(id, o.argv(id)) }
func (o fleetOps) Exited(id string) (bool, error) { return o.fleet.Exited(id) }
func (o fleetOps) Kill(id string) error           { return o.fleet.Kill(id) }

// supervisedFleet is a running supervisor plus the process fleet it
// manages.
type supervisedFleet struct {
	fleet *distsweep.Fleet
	stop  chan struct{}
	done  chan struct{}
	err   error // supervisor's fatal error, if any; set before done closes
}

// startSupervisedFleet wires a Controller into cfg (the supervisor's
// window onto coordinator state and its drain/restart channel back
// in), then starts the reconciliation loop. No worker exists yet when
// this returns — the first tick spawns -scale-min of them via argv. A
// fatal supervisor error (every slot poisoned) drains the coordinator
// through intr so the run fails fast instead of idling.
func startSupervisedFleet(cfg *dispatch.Config, bin string, argv func(id string) []string,
	sc scaleParams, intr *interrupter) (*supervisedFleet, error) {

	ctrl := dispatch.NewController()
	cfg.Controller = ctrl
	fleet := distsweep.NewFleet(bin)
	sup, err := supervisor.New(supervisor.Config{
		Control:     ctrl,
		Fleet:       fleetOps{fleet: fleet, argv: argv},
		Min:         sc.min,
		Max:         sc.max,
		MaxRestarts: sc.restartMax,
		BackoffBase: time.Second,
		BackoffMax:  30 * time.Second,
		Seed:        sc.seed,
		Restarts:    cfg.Restarts,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return nil, err
	}
	cfg.StderrTail = fleet.StderrTail
	sf := &supervisedFleet{fleet: fleet, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(sf.done)
		if err := sup.Run(sf.stop); err != nil {
			sf.err = err
			intr.Trigger(err.Error())
		}
	}()
	return sf, nil
}

// Shutdown stops the supervisor (draining still-live workers through
// the coordinator if it is still up) and waits for every worker ever
// started. Call it after the coordinator has finished its transport,
// so workers observe Stop and exit. Returns the fleet's joined exit
// error — informational under work stealing — or the supervisor's own
// fatal error if it had one.
func (sf *supervisedFleet) Shutdown() error {
	close(sf.stop)
	<-sf.done
	werr := sf.fleet.Wait()
	if sf.err != nil {
		return sf.err
	}
	return werr
}
