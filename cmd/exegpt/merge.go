package main

import (
	"flag"
	"fmt"
	"os"

	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

// cmdMerge is the sharded-sweep coordinator: it reads the shard
// envelopes written by `exegpt sweep -shards N -shard-index i -out ...`
// workers, verifies they form one complete coherent shard set (same
// grid fingerprint, every shard and cell exactly once), and prints the
// merged table — bit-identical to a single-process `exegpt sweep` over
// the same grid.
func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	jsonOut := fs.String("json", "", "write the merged sweep (rows, evals, frontiers) as JSON to this file")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, "usage: exegpt merge [-json merged.json] shard_0.json shard_1.json ...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("no shard envelopes given (usage: exegpt merge shard_*.json)")
	}
	m, err := distsweep.MergeFiles(paths)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "merge: %d shards -> %d cells, %d schedule evals, grid %.12s\n",
		len(paths), m.Cells, m.Evals, m.Fingerprint)
	fmt.Print(experiments.FormatSweep(m.Rows))
	if *jsonOut != "" {
		if err := m.WriteFile(*jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "merge: merged JSON -> %s\n", *jsonOut)
	}
	return nil
}
