package main

import (
	"flag"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"

	"exegpt/internal/experiments"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// cmdSearch finds the best schedule for one deployment and optionally
// executes it on XRunner.
func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	newCtx := commonFlags(fs)
	modelName := fs.String("model", "OPT-13B", "model name (Table 1)")
	clusterName := fs.String("cluster", "", "cluster (A40 or A100; default: the model's Table 2 cluster)")
	gpus := fs.Int("gpus", 0, "GPUs to deploy on (default: the model's Table 2 count)")
	taskID := fs.String("task", "S", "task ID (S, T, G, C1, C2, wmt, alpaca, cnn)")
	policySet := fs.String("policies", "all", "policy set: rra, waa, disagg or all")
	lbound := fs.Float64("lbound", 0, "latency bound in seconds (0 = unconstrained)")
	lbounds := fs.String("lbounds", "",
		"comma-separated latency bounds (e.g. 0.5,1,Inf): one amortized multi-bound search; overrides -lbound")
	maxBatch := fs.Int("maxbatch", 0, "cap the decoder-batch search axis (0 = scheduler default)")
	maxND := fs.Int("maxnd", 0, "cap the encoding-interval search axis (0 = scheduler default)")
	minLat := fs.Bool("minlat", false, "also report the lowest achievable latency (full grid scan)")
	execute := fs.Bool("run", false, "execute the selected schedule on XRunner and report measured stats")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := model.ByName(*modelName)
	if err != nil {
		return err
	}
	dep, err := sched.DeploymentFor(m.Name)
	if err != nil {
		// No Table 2 entry: cluster and gpus must be given explicitly.
		if *clusterName == "" || *gpus == 0 {
			return err
		}
	}
	cluster := dep.Cluster
	if *clusterName != "" {
		if cluster, err = clusterByName(*clusterName); err != nil {
			return err
		}
	}
	nGPUs := dep.GPUs
	if *gpus > 0 {
		nGPUs = *gpus
	}
	task, err := workload.ByID(*taskID)
	if err != nil {
		return err
	}
	groups, err := parsePolicies(*policySet)
	if err != nil {
		return err
	}
	policies := flattenPolicies(groups)

	ctx := newCtx()
	d, err := ctx.Deploy(m, cluster, nGPUs, task)
	if err != nil {
		return err
	}
	if *maxBatch > 0 {
		d.Sch.MaxBatch = *maxBatch
	}
	if *maxND > 0 {
		d.Sch.MaxND = *maxND
	}

	bound := *lbound
	if bound <= 0 {
		bound = math.Inf(1)
	}
	workers := d.Sch.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	if *lbounds != "" {
		boundList, err := parseBounds(*lbounds)
		if err != nil {
			return err
		}
		return searchMany(ctx, d, policies, boundList, task, workers, *minLat, *execute)
	}

	fmt.Printf("search: %s on %dx %s, task %s, bound %s, %d workers\n",
		m.Name, nGPUs, cluster.Name, task.ID, fmtSeconds(bound), workers)

	if *minLat {
		min, err := d.Sch.MinLatency(policies)
		if err != nil {
			return err
		}
		fmt.Printf("lowest achievable latency: %.3f s\n", min)
	}

	res, err := d.Sch.FindBest(policies, bound)
	if err != nil {
		return err
	}
	if !res.Found {
		fmt.Printf("no feasible schedule (NS) under bound %s after %d evaluations\n",
			fmtSeconds(bound), res.Evals)
		return nil
	}
	best := res.Best
	fmt.Printf("selected: %s %s\n", best.Config.Policy, best.Config)
	fmt.Printf("estimate: %.2f seq/s at %.3f s latency (%d evaluations)\n",
		best.Throughput, best.Latency, res.Evals)
	if best.Alloc.EncGPUs > 0 || best.Alloc.DecGPUs > 0 {
		fmt.Printf("allocation: %d encode / %d decode GPUs\n",
			best.Alloc.EncGPUs, best.Alloc.DecGPUs)
	}

	if *execute {
		reqs, err := ctx.RequestStream(task, 0)
		if err != nil {
			return err
		}
		out, err := d.Run.Run(best.Config, best.Alloc, reqs)
		if err != nil {
			return err
		}
		fmt.Printf("measured: %.2f seq/s total, %.2f seq/s steady, p99 latency %.3f s (%d requests)\n",
			out.Stats.Throughput, out.Stats.SteadyTput, out.Stats.P99Lat, len(reqs))
	}
	return nil
}

// searchMany runs the amortized multi-bound search and prints one
// selection per bound; with execute set, each distinct selected
// schedule is run once on XRunner.
func searchMany(ctx *experiments.Context, d *experiments.Deployment, policies []sched.Policy, bounds []float64, task workload.Task, workers int, minLat, execute bool) error {
	fmt.Printf("search: %s on %dx %s, task %s, %d bounds (amortized), %d workers\n",
		d.Model.Name, d.Cluster.TotalGPUs(), d.Cluster.Name, task.ID, len(bounds), workers)
	if minLat {
		min, err := d.Sch.MinLatency(policies)
		if err != nil {
			return err
		}
		fmt.Printf("lowest achievable latency: %.3f s\n", min)
	}
	ress, err := d.Sch.FindBestMany(policies, bounds)
	if err != nil {
		return err
	}
	for i, res := range ress {
		if !res.Found {
			fmt.Printf("bound %-10s NS after %d evaluations\n", fmtSeconds(bounds[i]), res.Evals)
			continue
		}
		fmt.Printf("bound %-10s %s %s: %.2f seq/s at %.3f s latency (%d evaluations)\n",
			fmtSeconds(bounds[i]), res.Best.Config.Policy, res.Best.Config,
			res.Best.Throughput, res.Best.Latency, res.Evals)
	}
	fmt.Printf("total: %d evaluations, %d frontier points\n", d.Sch.Evals, d.Sch.Frontier.Len())
	if !execute {
		return nil
	}
	reqs, err := ctx.RequestStream(task, 0)
	if err != nil {
		return err
	}
	ran := map[sched.Config]bool{}
	for i, res := range ress {
		if !res.Found || ran[res.Best.Config] {
			continue
		}
		ran[res.Best.Config] = true
		out, err := d.Run.Run(res.Best.Config, res.Best.Alloc, reqs)
		if err != nil {
			return err
		}
		fmt.Printf("measured %s (bound %s): %.2f seq/s total, %.2f seq/s steady, p99 latency %.3f s\n",
			res.Best.Config, fmtSeconds(bounds[i]), out.Stats.Throughput, out.Stats.SteadyTput, out.Stats.P99Lat)
	}
	return nil
}

// parseBounds parses a comma-separated latency-bound list; "Inf" (any
// case) or a non-positive value means unconstrained.
func parseBounds(list string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if strings.EqualFold(tok, "inf") {
			out = append(out, math.Inf(1))
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil || math.IsNaN(v) {
			return nil, fmt.Errorf("bad bound %q", tok)
		}
		if v <= 0 {
			v = math.Inf(1)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty bound list")
	}
	return out, nil
}

func fmtSeconds(s float64) string {
	if math.IsInf(s, 1) {
		return "Inf"
	}
	return fmt.Sprintf("%.3fs", s)
}
