package main

// Crash-safety plumbing for the coordinator entry points: the -journal
// flag's open/replay/resume logic and the SIGINT/SIGTERM graceful
// drain. Both `exegpt sweep -mode dispatch` and `exegpt dispatch` wire
// these in, so a coordinator killed mid-sweep — by the operator or by
// the machine — restarts from its journal instead of from scratch.

import (
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"exegpt/internal/dispatch"
	"exegpt/internal/dispatch/journal"
)

// interrupter routes coordinator-drain requests — SIGINT/SIGTERM from
// the operator, or a programmatic Trigger like a fatal supervisor
// error — into the coordinator's graceful drain: the drain stops new
// lease grants and lets in-flight work finish into the journal.
type interrupter struct {
	drain chan struct{}
	once  sync.Once
	sig   chan os.Signal
}

// installInterrupt wires an interrupter into cfg and starts its signal
// handler: the first SIGINT/SIGTERM drains, a second exits
// immediately. Call Stop to release the handler (for coordinator paths
// that return to a caller).
func installInterrupt(cfg *dispatch.Config) *interrupter {
	in := &interrupter{drain: make(chan struct{}), sig: make(chan os.Signal, 2)}
	cfg.Interrupt = in.drain
	signal.Notify(in.sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-in.sig
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "dispatch: %v: draining in-flight leases, then exiting (signal again to exit immediately)\n", s)
		in.fire()
		if s, ok := <-in.sig; ok {
			fmt.Fprintf(os.Stderr, "dispatch: %v: exiting immediately\n", s)
			os.Exit(130)
		}
	}()
	return in
}

func (in *interrupter) fire() { in.once.Do(func() { close(in.drain) }) }

// Trigger drains the coordinator for a programmatic reason (idempotent
// with the signal path).
func (in *interrupter) Trigger(reason string) {
	fmt.Fprintf(os.Stderr, "dispatch: %s: draining in-flight leases, then exiting\n", reason)
	in.fire()
}

// Stop releases the signal handler.
func (in *interrupter) Stop() {
	signal.Stop(in.sig)
	close(in.sig)
}

// openJournal opens (or creates) the sweep journal in dir and wires it
// into cfg: a fresh journal records the sweep's identity; an existing
// one must match it, and seeds the run with every cell and exclusion
// the previous coordinator accepted. Returns nil for an empty dir —
// journaling is opt-in.
func openJournal(dir, fp string, cells int, opts dispatch.Options, cfg *dispatch.Config) (*journal.Journal, error) {
	if dir == "" {
		return nil, nil
	}
	j, err := journal.Open(dir)
	if err != nil {
		return nil, err
	}
	if tb := j.TruncatedBytes(); tb > 0 {
		fmt.Fprintf(os.Stderr, "dispatch: journal: dropped a torn %d-byte tail (crash mid-append)\n", tb)
	}
	if h := j.Header(); h != nil {
		if h.Fingerprint != fp || h.Cells != cells {
			j.Close()
			return nil, fmt.Errorf("journal %s records grid %.12s… (%d cells) but this run sweeps %.12s… (%d cells): resume with the original grid flags, or point -journal at an empty directory",
				j.Path(), h.Fingerprint, h.Cells, fp, cells)
		}
		if h.Options != journal.OptionsOf(opts) {
			// Lease knobs never change results, only pacing; note the
			// drift instead of refusing to resume.
			fmt.Fprintf(os.Stderr, "dispatch: journal: note: dispatch options differ from the interrupted run's\n")
		}
		cfg.Completed = j.Cells()
		cfg.Exclusions = j.Exclusions()
		cfg.Restarts = j.Restarts()
		if len(cfg.Completed) > 0 || len(cfg.Exclusions) > 0 || len(cfg.Restarts) > 0 {
			fmt.Fprintf(os.Stderr, "dispatch: journal: resuming %d/%d cells (%d worker exclusions, %d supervised slots) from %s\n",
				len(cfg.Completed), cells, len(cfg.Exclusions), len(cfg.Restarts), j.Path())
		}
	} else {
		if err := j.WriteHeader(journal.Header{
			Fingerprint: fp, Cells: cells, Options: journal.OptionsOf(opts),
		}); err != nil {
			j.Close()
			return nil, err
		}
	}
	cfg.Journal = j
	return j, nil
}

// resumeHint tells the operator how to pick an interrupted journaled
// sweep back up.
func resumeHint(err error, journalDir string) {
	if journalDir != "" && errors.Is(err, dispatch.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "dispatch: progress saved; rerun with the same flags (-journal %s) to resume\n", journalDir)
	}
}
