package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"exegpt/internal/core"
	"exegpt/internal/experiments"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// BenchReport is the schema of BENCH_estimate.json: the Estimate
// hot-path and FindBest timings that track the scheduler's performance
// trajectory from PR 2 onward. "Reference" is the unmemoized
// Simulator.Estimate path; "Evaluator" is the per-worker memoized fast
// path. Both produce bit-identical schedules (BestIdentical).
type BenchReport struct {
	GeneratedUnix int64  `json:"generated_unix"`
	Model         string `json:"model"`
	Cluster       string `json:"cluster"`
	GPUs          int    `json:"gpus"`
	Task          string `json:"task"`
	LBound        string `json:"lbound"`
	Workers       int    `json:"workers"`

	// EstimatePerSecEvaluator cycles a fixed config mix, so after the
	// first pass every probe is a memo hit: it measures the steady-state
	// per-probe cost — exactly what repeated search probes pay — not a
	// cold evaluation (which costs about the reference path once, then
	// never again).
	EstimatePerSecReference float64 `json:"estimate_per_sec_reference"`
	EstimatePerSecEvaluator float64 `json:"estimate_per_sec_evaluator"`
	EstimateSpeedup         float64 `json:"estimate_speedup"`

	// FindBestMsEvaluator is the steady-state search (per-worker memos
	// persist across FindBest calls — the pattern sweeps and repeated
	// searches on one Scheduler follow); FindBestMsEvaluatorCold resets
	// the Evaluators before every call, isolating one from-scratch
	// search. Speedups are against the reference path.
	FindBestMsReference     float64 `json:"findbest_ms_reference"`
	FindBestMsEvaluator     float64 `json:"findbest_ms_evaluator"`
	FindBestMsEvaluatorCold float64 `json:"findbest_ms_evaluator_cold"`
	FindBestSpeedup         float64 `json:"findbest_speedup"`
	FindBestColdSpeedup     float64 `json:"findbest_cold_speedup"`
	FindBestEvals           int     `json:"findbest_evals"`

	BestSchedule  string  `json:"best_schedule"`
	BestTput      float64 `json:"best_tput"`
	BestLatency   float64 `json:"best_latency"`
	BestIdentical bool    `json:"best_identical"`
}

// SweepBenchReport is the schema of BENCH_sweep.json: wall time of one
// amortized FindBestMany over the deployment's four FT-derived latency
// bounds versus the four independent FindBest calls it replaces. Both
// paths run on warm per-worker memos, so the comparison isolates the
// enumeration amortization (the Evaluator memos already make repeated
// probes ~free; FindBestMany additionally stops re-expanding blocks).
type SweepBenchReport struct {
	GeneratedUnix int64    `json:"generated_unix"`
	Model         string   `json:"model"`
	Cluster       string   `json:"cluster"`
	GPUs          int      `json:"gpus"`
	Task          string   `json:"task"`
	Workers       int      `json:"workers"`
	Bounds        []string `json:"bounds"`

	// IndependentMs is the wall time of len(Bounds) sequential FindBest
	// calls; ManyMs is one FindBestMany over the same bounds.
	IndependentMs float64 `json:"independent_ms"`
	ManyMs        float64 `json:"findbestmany_ms"`
	Speedup       float64 `json:"speedup"`

	// Evals compare total simulator invocations per full sweep.
	IndependentEvals int     `json:"independent_evals"`
	ManyEvals        int     `json:"findbestmany_evals"`
	EvalsRatio       float64 `json:"evals_ratio"`

	FrontierPoints int `json:"frontier_points"`
	// PerBoundIdentical asserts every bound's selected schedule matches
	// the standalone FindBest selection bit-for-bit.
	PerBoundIdentical bool `json:"per_bound_identical"`
}

// benchSweep measures the multi-bound amortization on deployment d and
// fills a report. The caller has already fixed d.Sch.Workers.
func benchSweep(d *experiments.Deployment, policies []sched.Policy, bounds []float64, dur time.Duration) (SweepBenchReport, error) {
	s := d.Sch
	rep := SweepBenchReport{
		GeneratedUnix: time.Now().Unix(),
		Model:         d.Model.Name, Cluster: d.Cluster.Name,
		GPUs: d.Cluster.TotalGPUs(), Task: d.Task.ID,
		Workers: s.Workers,
	}
	for _, b := range bounds {
		rep.Bounds = append(rep.Bounds, fmtSeconds(b))
	}

	// Reference pass: record per-bound results and evals, warm the
	// memos so both timed paths run steady-state.
	indep := make([]core.Result, len(bounds))
	for i, b := range bounds {
		res, err := s.FindBest(policies, b)
		if err != nil {
			return rep, err
		}
		indep[i] = res
		rep.IndependentEvals += res.Evals
	}
	many, err := s.FindBestMany(policies, bounds)
	if err != nil {
		return rep, err
	}
	rep.ManyEvals = s.Evals
	rep.FrontierPoints = s.Frontier.Len()
	if rep.ManyEvals > 0 {
		rep.EvalsRatio = float64(rep.IndependentEvals) / float64(rep.ManyEvals)
	}
	rep.PerBoundIdentical = true
	for i := range bounds {
		if many[i].Found != indep[i].Found ||
			many[i].Best.Config != indep[i].Best.Config ||
			math.Float64bits(many[i].Best.Throughput) != math.Float64bits(indep[i].Best.Throughput) ||
			math.Float64bits(many[i].Best.Latency) != math.Float64bits(indep[i].Best.Latency) {
			rep.PerBoundIdentical = false
		}
	}

	rep.IndependentMs, err = measureWall(dur, func() error {
		for _, b := range bounds {
			if _, err := s.FindBest(policies, b); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	rep.ManyMs, err = measureWall(dur, func() error {
		_, err := s.FindBestMany(policies, bounds)
		return err
	})
	if err != nil {
		return rep, err
	}
	rep.Speedup = rep.IndependentMs / rep.ManyMs
	return rep, nil
}

// benchConfigs builds a representative config mix across the three
// policies (and a TP variant when the cluster allows one) for the
// Estimate-per-second measurement.
func benchConfigs(gpus int) []sched.Config {
	one := sched.TPSpec{Degree: 1}
	cfgs := []sched.Config{
		{Policy: sched.RRA, BD: 64, BE: 1, ND: 8, TP: one},
		{Policy: sched.RRA, BD: 512, BE: 1, ND: 32, TP: one},
		{Policy: sched.RRA, BD: 2048, BE: 1, ND: 64, TP: one},
		{Policy: sched.WAAC, BE: 8, BD: 1, Bm: 2, TP: one},
		{Policy: sched.WAAM, BE: 32, BD: 1, Bm: 4, TP: one},
	}
	if gpus >= 4 {
		tp2 := sched.TPSpec{Degree: 2, GPUs: gpus - gpus%2}
		cfgs = append(cfgs, sched.Config{Policy: sched.RRA, BD: 256, BE: 1, ND: 16, TP: tp2})
	}
	return cfgs
}

// measureRate runs fn in a loop for at least budget and returns
// calls per second.
func measureRate(budget time.Duration, fn func() error) (float64, error) {
	const batch = 64
	start := time.Now()
	calls := 0
	for time.Since(start) < budget {
		for i := 0; i < batch; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		calls += batch
	}
	return float64(calls) / time.Since(start).Seconds(), nil
}

// measureWall runs fn repeatedly for at least budget (and at least 3
// times) and returns the mean wall time per call in milliseconds.
func measureWall(budget time.Duration, fn func() error) (float64, error) {
	start := time.Now()
	calls := 0
	for time.Since(start) < budget || calls < 3 {
		if err := fn(); err != nil {
			return 0, err
		}
		calls++
	}
	return time.Since(start).Seconds() * 1e3 / float64(calls), nil
}

// cmdBench measures the Estimate hot path and the Workers=1 FindBest on
// one deployment via both evaluation paths and writes BENCH_estimate.json.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	newCtx := commonFlags(fs)
	modelName := fs.String("model", "OPT-13B", "model name (Table 1)")
	clusterName := fs.String("cluster", "", "cluster (A40 or A100; default: the model's Table 2 cluster)")
	gpus := fs.Int("gpus", 0, "GPUs to deploy on (default: the model's Table 2 count)")
	taskID := fs.String("task", "S", "task ID (S, T, G, C1, C2, wmt, alpaca, cnn)")
	lbound := fs.Float64("lbound", 0, "latency bound in seconds for the FindBest measurement (0 = unconstrained)")
	budget := fs.Float64("time", 1.0, "minimum seconds per measurement")
	out := fs.String("out", "BENCH_estimate.json", "report path")
	sweepOut := fs.String("sweep-out", "BENCH_sweep.json",
		"multi-bound sweep report path (empty disables the sweep benchmark)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := model.ByName(*modelName)
	if err != nil {
		return err
	}
	dep, err := sched.DeploymentFor(m.Name)
	if err != nil {
		if *clusterName == "" || *gpus == 0 {
			return err
		}
	}
	cluster := dep.Cluster
	if *clusterName != "" {
		if cluster, err = clusterByName(*clusterName); err != nil {
			return err
		}
	}
	nGPUs := dep.GPUs
	if *gpus > 0 {
		nGPUs = *gpus
	}
	task, err := workload.ByID(*taskID)
	if err != nil {
		return err
	}
	ctx := newCtx()
	d, err := ctx.Deploy(m, cluster, nGPUs, task)
	if err != nil {
		return err
	}
	bound := *lbound
	if bound <= 0 {
		bound = math.Inf(1)
	}
	dur := time.Duration(*budget * float64(time.Second))
	policies := []sched.Policy{sched.RRA, sched.WAAC, sched.WAAM}
	fmt.Printf("bench: %s on %dx %s, task %s, bound %s, >=%.2gs per measurement\n",
		m.Name, nGPUs, cluster.Name, task.ID, fmtSeconds(bound), *budget)

	rep := BenchReport{
		GeneratedUnix: time.Now().Unix(),
		Model:         m.Name, Cluster: cluster.Name, GPUs: nGPUs, Task: task.ID,
		LBound: fmtSeconds(bound), Workers: 1,
	}

	// Estimate-per-second on both paths over the same config mix.
	cfgs := benchConfigs(nGPUs)
	i := 0
	rep.EstimatePerSecReference, err = measureRate(dur, func() error {
		_, err := d.Sim.Estimate(cfgs[i%len(cfgs)])
		i++
		return err
	})
	if err != nil {
		return err
	}
	i = 0
	rep.EstimatePerSecEvaluator, err = measureRate(dur, func() error {
		_, err := d.Eval.Estimate(cfgs[i%len(cfgs)])
		i++
		return err
	})
	if err != nil {
		return err
	}
	rep.EstimateSpeedup = rep.EstimatePerSecEvaluator / rep.EstimatePerSecReference

	// Workers=1 FindBest wall time, reference path vs memoized path.
	s := d.Sch
	s.Workers = 1
	var refRes, fastRes core.Result
	s.DisableMemo = true
	rep.FindBestMsReference, err = measureWall(dur, func() error {
		refRes, err = s.FindBest(policies, bound)
		return err
	})
	if err != nil {
		return err
	}
	s.DisableMemo = false
	rep.FindBestMsEvaluatorCold, err = measureWall(dur, func() error {
		s.ResetEvaluators()
		fastRes, err = s.FindBest(policies, bound)
		return err
	})
	if err != nil {
		return err
	}
	rep.FindBestMsEvaluator, err = measureWall(dur, func() error {
		fastRes, err = s.FindBest(policies, bound)
		return err
	})
	if err != nil {
		return err
	}
	rep.FindBestSpeedup = rep.FindBestMsReference / rep.FindBestMsEvaluator
	rep.FindBestColdSpeedup = rep.FindBestMsReference / rep.FindBestMsEvaluatorCold
	rep.FindBestEvals = fastRes.Evals
	rep.BestSchedule = fastRes.Best.Config.String()
	rep.BestTput = fastRes.Best.Throughput
	rep.BestLatency = fastRes.Best.Latency
	rep.BestIdentical = refRes.Found == fastRes.Found &&
		refRes.Evals == fastRes.Evals &&
		refRes.Best.Config == fastRes.Best.Config &&
		math.Float64bits(refRes.Best.Throughput) == math.Float64bits(fastRes.Best.Throughput) &&
		math.Float64bits(refRes.Best.Latency) == math.Float64bits(fastRes.Best.Latency)

	fmt.Printf("estimate/s: reference %.0f, evaluator %.0f (%.1fx steady-state)\n",
		rep.EstimatePerSecReference, rep.EstimatePerSecEvaluator, rep.EstimateSpeedup)
	fmt.Printf("findbest:   reference %.3f ms, evaluator %.3f ms steady-state (%.1fx) / %.3f ms cold (%.1fx), %d evals\n",
		rep.FindBestMsReference, rep.FindBestMsEvaluator, rep.FindBestSpeedup,
		rep.FindBestMsEvaluatorCold, rep.FindBestColdSpeedup, rep.FindBestEvals)
	fmt.Printf("best:       %s at %.2f seq/s, %.3f s latency\n",
		rep.BestSchedule, rep.BestTput, rep.BestLatency)
	if !rep.BestIdentical {
		return fmt.Errorf("reference and evaluator paths disagree: ref %+v vs fast %+v",
			refRes.Best.Config, fastRes.Best.Config)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if *sweepOut == "" {
		return nil
	}
	// Multi-bound sweep: the paper's four FT-derived bounds per
	// deployment, amortized by FindBestMany vs searched independently.
	bounds, err := d.FTBounds()
	if err != nil {
		return err
	}
	srep, err := benchSweep(d, policies, bounds, dur)
	if err != nil {
		return err
	}
	fmt.Printf("sweep:      %d bounds, independent %.3f ms vs amortized %.3f ms (%.1fx), evals %d vs %d (%.1fx), %d frontier points\n",
		len(bounds), srep.IndependentMs, srep.ManyMs, srep.Speedup,
		srep.IndependentEvals, srep.ManyEvals, srep.EvalsRatio, srep.FrontierPoints)
	if !srep.PerBoundIdentical {
		return fmt.Errorf("FindBestMany and per-bound FindBest selections disagree")
	}
	sdata, err := json.MarshalIndent(srep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*sweepOut, append(sdata, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *sweepOut)
	return nil
}
