package main

import (
	"strings"
	"testing"
)

func TestResolveSweepMode(t *testing.T) {
	cases := []struct {
		name                          string
		explicit                      string
		shardIndex, spawn, disp, pull bool
		want                          sweepMode
		wantErr                       string
	}{
		{name: "default single", want: modeSingle},
		{name: "legacy shard-index", shardIndex: true, want: modeWorker},
		{name: "legacy spawn", spawn: true, want: modeSpawn},
		{name: "legacy dispatch", disp: true, want: modeDispatch},
		{name: "legacy pull", pull: true, want: modePull},
		{name: "explicit pull", explicit: "pull", want: modePull},
		{name: "explicit matches legacy", explicit: "dispatch", disp: true, want: modeDispatch},
		{name: "worker keeps shard-index", explicit: "worker", shardIndex: true, want: modeWorker},
		{name: "unknown mode", explicit: "serverless", wantErr: "unknown -mode"},
		{name: "conflicting legacy pair", spawn: true, pull: true, wantErr: "mutually exclusive"},
		{name: "explicit contradicts legacy", explicit: "spawn", pull: true, wantErr: "conflicts"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := resolveSweepMode(c.explicit, c.shardIndex, c.spawn, c.disp, c.pull)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("got (%q, %v), want error containing %q", got, err, c.wantErr)
				}
				return
			}
			if err != nil || got != c.want {
				t.Fatalf("got (%q, %v), want %q", got, err, c.want)
			}
		})
	}
}

func TestValidateSweepMode(t *testing.T) {
	cases := []struct {
		name    string
		m       sweepMode
		f       sweepModeFlags
		wantErr string
	}{
		{name: "single plain", m: modeSingle, f: sweepModeFlags{shards: 1}},
		{name: "single with shards", m: modeSingle, f: sweepModeFlags{shards: 4}, wantErr: "-shards 4"},
		{name: "single with connect", m: modeSingle, f: sweepModeFlags{shards: 1, connect: "http://x"}, wantErr: "does not use -connect"},
		{name: "worker ok", m: modeWorker, f: sweepModeFlags{shards: 4, out: "s.json"}},
		{name: "worker missing out", m: modeWorker, f: sweepModeFlags{shards: 4}, wantErr: "-out"},
		{name: "worker with spool", m: modeWorker, f: sweepModeFlags{out: "s.json", spool: "/s"}, wantErr: "does not use -spool"},
		{name: "spawn ok", m: modeSpawn, f: sweepModeFlags{shards: 4, shardDir: "/tmp/x"}},
		{name: "spawn with http", m: modeSpawn, f: sweepModeFlags{http: ":8080"}, wantErr: "does not use -http"},
		{name: "dispatch spool", m: modeDispatch, f: sweepModeFlags{spool: "/s"}},
		{name: "dispatch http", m: modeDispatch, f: sweepModeFlags{http: ":8080", hosts: "a,b"}},
		{name: "dispatch both transports", m: modeDispatch, f: sweepModeFlags{spool: "/s", http: ":8080"}, wantErr: "not both"},
		{name: "dispatch with connect", m: modeDispatch, f: sweepModeFlags{connect: "http://x"}, wantErr: "does not use -connect"},
		{name: "pull spool", m: modePull, f: sweepModeFlags{spool: "/s", workerID: "w1"}},
		{name: "pull connect", m: modePull, f: sweepModeFlags{connect: "http://x"}},
		{name: "pull neither", m: modePull, wantErr: "exactly one coordinator"},
		{name: "pull both", m: modePull, f: sweepModeFlags{spool: "/s", connect: "http://x"}, wantErr: "exactly one coordinator"},
		{name: "pull with hosts", m: modePull, f: sweepModeFlags{connect: "http://x", hosts: "a"}, wantErr: "does not use -hosts"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateSweepMode(c.m, c.f)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}
