package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"exegpt/internal/dispatch"
	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

// gridFlagSet bundles the grid-selection flags shared by `sweep` and
// `dispatch`, so coordinator and worker processes resolve — and
// fingerprint — the same grid from the same spellings.
type gridFlagSet struct {
	models   *string
	gpus     *string
	tasks    *string
	policies *string
}

func gridFlags(fs *flag.FlagSet) *gridFlagSet {
	return &gridFlagSet{
		models:   fs.String("models", "", "comma-separated model names (default: every Table 2 model)"),
		gpus:     fs.String("gpus", "", "comma-separated cluster sizes overriding Table 2 (e.g. 4,8,16)"),
		tasks:    fs.String("tasks", "", "comma-separated task IDs (default: S,T,G,C1,C2)"),
		policies: fs.String("policies", "all", "policy set: rra, waa or all"),
	}
}

// build resolves the flags into a sweep grid.
func (g *gridFlagSet) build(ctx *experiments.Context) (experiments.SweepGrid, error) {
	tasks, err := tasksByIDs(*g.tasks)
	if err != nil {
		return experiments.SweepGrid{}, err
	}
	groups, err := parsePolicies(*g.policies)
	if err != nil {
		return experiments.SweepGrid{}, err
	}
	deps, err := sweepDeployments(*g.models, *g.gpus)
	if err != nil {
		return experiments.SweepGrid{}, err
	}
	return experiments.SweepGrid{
		Deployments: deps,
		Tasks:       tasks,
		Policies:    groups,
		Workers:     ctx.Workers,
	}, nil
}

// workerArgs reproduces the context and grid flags for a forked worker
// process, with the scheduler/sweep worker budget overridden.
// Empty-valued flags are omitted rather than passed as "": the two are
// equivalent to the flag parser (empty is every grid flag's default),
// and the ssh launch path joins arguments with spaces, where an empty
// string would vanish and corrupt the remote worker's flag parse.
func (g *gridFlagSet) workerArgs(ctx *experiments.Context, workers int) []string {
	args := []string{"sweep",
		"-seed", strconv.FormatInt(ctx.Seed, 10),
		"-workers", strconv.Itoa(workers),
		"-requests", strconv.Itoa(ctx.Requests),
	}
	for _, f := range []struct{ name, value string }{
		{"-profile-cache", ctx.ProfileCacheDir},
		{"-models", *g.models},
		{"-gpus", *g.gpus},
		{"-tasks", *g.tasks},
		{"-policies", *g.policies},
	} {
		if f.value != "" {
			args = append(args, f.name, f.value)
		}
	}
	if ctx.Quick {
		args = append(args, "-quick")
	}
	return args
}

// dispatchFlagSet bundles the coordinator tuning flags shared by
// `sweep -dispatch` and the `dispatch` serve mode.
type dispatchFlagSet struct {
	leaseTimeout   *time.Duration
	cellRetries    *int
	workerFailures *int
	idle           *time.Duration
}

func dispatchFlags(fs *flag.FlagSet) *dispatchFlagSet {
	return &dispatchFlagSet{
		leaseTimeout: fs.Duration("lease-timeout", 60*time.Second,
			"requeue a worker's cells after this long without a heartbeat or result"),
		cellRetries: fs.Int("cell-retries", 3,
			"abort the sweep when one cell has been requeued this many times"),
		workerFailures: fs.Int("worker-failures", 3,
			"exclude a worker from further leases after this many failed leases"),
		idle: fs.Duration("dispatch-idle", 10*time.Minute,
			"abort the sweep when no worker message arrives for this long (0 waits forever)"),
	}
}

func (d *dispatchFlagSet) config(fp string, cells int) dispatch.Config {
	return dispatch.Config{
		Fingerprint:    fp,
		Cells:          cells,
		LeaseTimeout:   *d.leaseTimeout,
		CellRetries:    *d.cellRetries,
		WorkerFailures: *d.workerFailures,
		Idle:           *d.idle,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
}

// defaultWorkerID derives a spool-safe worker id from host and pid.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", dispatch.SanitizeWorkerID(host), os.Getpid())
}

// runPullWorker is `exegpt sweep -pull`: one pull-loop worker process
// evaluating leased cells against the spool directory.
func runPullWorker(ctx *experiments.Context, grid experiments.SweepGrid, fp, spoolDir, id string, batch int) error {
	if spoolDir == "" {
		return fmt.Errorf("-pull needs -spool (the directory shared with the coordinator)")
	}
	sp, err := dispatch.NewSpool(spoolDir)
	if err != nil {
		return err
	}
	if id == "" {
		id = defaultWorkerID()
	}
	wt, err := sp.Worker(id)
	if err != nil {
		return err
	}
	w := &dispatch.Worker{
		ID:          id,
		Fingerprint: fp,
		Cells:       len(grid.Cells()),
		Batch:       batch,
		Idle:        15 * time.Minute,
		Eval: func(c int) (experiments.CellResult, error) {
			crs, err := ctx.SweepCells(grid, []int{c})
			if err != nil {
				return experiments.CellResult{}, err
			}
			return crs[0], nil
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	fmt.Fprintf(os.Stderr, "sweep: pull worker %s on spool %s (%d-cell grid %.12s)\n",
		id, spoolDir, w.Cells, fp)
	return w.Run(wt)
}

// runDispatch is `exegpt sweep -dispatch`: a work-stealing coordinator
// over a file spool plus its worker fleet — local pull-worker processes
// by default, or one ssh-launched worker per -hosts entry sharing the
// spool path.
func runDispatch(ctx *experiments.Context, grid experiments.SweepGrid, g *gridFlagSet, d *dispatchFlagSet,
	fp, spoolDir, hosts, remoteBin string, workers, batch int, jsonOut string) error {
	dir := spoolDir
	if dir == "" {
		if hosts != "" {
			return fmt.Errorf("-hosts needs -spool: a directory path shared by this host and every worker host")
		}
		tmp, err := os.MkdirTemp("", "exegpt-spool-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	sp, err := dispatch.NewSpool(dir)
	if err != nil {
		return err
	}
	if ctx.ProfileCacheDir == "" {
		// Workers re-profile from scratch without a shared cache; give
		// them one inside the spool so each (model, sub-cluster)
		// profiles once across the fleet.
		ctx.ProfileCacheDir = filepath.Join(dir, "profiles")
	}
	// Take the coordinator side before launching anything: it clears a
	// previous run's stop marker, which a freshly launched worker would
	// otherwise see and obey.
	ct, err := sp.Coordinator()
	if err != nil {
		return err
	}

	// Launch the fleet. Worker failures are tolerated by design — the
	// coordinator requeues their leases — so spawn errors become
	// warnings unless the coordinator itself fails.
	spawnErr := make(chan error, 1)
	if hosts != "" {
		targets := strings.Split(hosts, ",")
		argvs := make([][]string, 0, len(targets))
		for i, h := range targets {
			h = strings.TrimSpace(h)
			if h == "" {
				continue
			}
			argv := []string{h, remoteBin}
			argv = append(argv, g.workerArgs(ctx, 0)...)
			argv = append(argv, "-pull", "-spool", dir,
				"-worker-id", fmt.Sprintf("host%d-%s", i, dispatch.SanitizeWorkerID(h)),
				"-lease-cells", strconv.Itoa(batch))
			argvs = append(argvs, argv)
		}
		if len(argvs) == 0 {
			return fmt.Errorf("-hosts %q names no hosts", hosts)
		}
		fmt.Fprintf(os.Stderr, "sweep: dispatching to %d ssh workers (spool %s)\n", len(argvs), dir)
		go func() { spawnErr <- distsweep.SpawnArgs("ssh", argvs) }()
	} else {
		if workers < 1 {
			return fmt.Errorf("-dispatch-workers %d < 1", workers)
		}
		bin, err := os.Executable()
		if err != nil {
			return err
		}
		// All pull workers run on this box: split the worker budget
		// across them, as -spawn does for static shards.
		budget := ctx.Workers
		if budget <= 0 {
			budget = runtime.GOMAXPROCS(0)
		}
		perWorker := budget / workers
		if perWorker < 1 {
			perWorker = 1
		}
		argvs := make([][]string, workers)
		for i := range argvs {
			argv := g.workerArgs(ctx, perWorker)
			argvs[i] = append(argv, "-pull", "-spool", dir,
				"-worker-id", fmt.Sprintf("w%d", i),
				"-lease-cells", strconv.Itoa(batch))
		}
		fmt.Fprintf(os.Stderr, "sweep: dispatching to %d local pull workers (spool %s)\n", workers, dir)
		go func() { spawnErr <- distsweep.SpawnArgs(bin, argvs) }()
	}

	merged, err := dispatch.Run(ct, d.config(fp, len(grid.Cells())))
	// The stop marker is down (dispatch.Run finishes the transport on
	// every path), so the fleet drains; surface its exit status.
	werr := <-spawnErr
	if err != nil {
		return err
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "sweep: note: worker failures tolerated by work stealing: %v\n", werr)
	}
	return printMerged(merged, grid, jsonOut)
}

// cmdDispatch is the serve mode: a standalone work-stealing coordinator
// over a spool directory, for fleets whose workers the operator
// launches (e.g. `ssh host exegpt sweep -pull -spool ...` per host, or
// a job scheduler). It evaluates nothing itself.
func cmdDispatch(args []string) error {
	fs := flag.NewFlagSet("dispatch", flag.ExitOnError)
	newCtx := commonFlags(fs)
	g := gridFlags(fs)
	d := dispatchFlags(fs)
	spoolDir := fs.String("spool", "", "spool directory shared with the pull workers (required)")
	jsonOut := fs.String("json", "", "write the merged sweep (rows, evals, frontiers) as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spoolDir == "" {
		return fmt.Errorf("dispatch needs -spool (the directory pull workers poll)")
	}
	ctx := newCtx()
	grid, err := g.build(ctx)
	if err != nil {
		return err
	}
	fp, err := ctx.GridFingerprint(grid)
	if err != nil {
		return err
	}
	sp, err := dispatch.NewSpool(*spoolDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dispatch: coordinating %d cells on spool %s (grid %.12s)\n",
		len(grid.Cells()), *spoolDir, fp)
	ct, err := sp.Coordinator()
	if err != nil {
		return err
	}
	merged, err := dispatch.Run(ct, d.config(fp, len(grid.Cells())))
	if err != nil {
		return err
	}
	return printMerged(merged, grid, *jsonOut)
}
