package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"exegpt/internal/dispatch"
	"exegpt/internal/dispatch/httptransport"
	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

// gridFlagSet bundles the grid-selection flags shared by `sweep` and
// `dispatch`, so coordinator and worker processes resolve — and
// fingerprint — the same grid from the same spellings.
type gridFlagSet struct {
	models   *string
	gpus     *string
	tasks    *string
	policies *string
}

func gridFlags(fs *flag.FlagSet) *gridFlagSet {
	return &gridFlagSet{
		models:   fs.String("models", "", "comma-separated model names (default: every Table 2 model)"),
		gpus:     fs.String("gpus", "", "comma-separated cluster sizes overriding Table 2 (e.g. 4,8,16)"),
		tasks:    fs.String("tasks", "", "comma-separated task IDs (default: S,T,G,C1,C2)"),
		policies: fs.String("policies", "all", "policy set: rra, waa, disagg or all"),
	}
}

// build resolves the flags into a sweep grid.
func (g *gridFlagSet) build(ctx *experiments.Context) (experiments.SweepGrid, error) {
	tasks, err := tasksByIDs(*g.tasks)
	if err != nil {
		return experiments.SweepGrid{}, err
	}
	groups, err := parsePolicies(*g.policies)
	if err != nil {
		return experiments.SweepGrid{}, err
	}
	deps, err := sweepDeployments(*g.models, *g.gpus)
	if err != nil {
		return experiments.SweepGrid{}, err
	}
	return experiments.SweepGrid{
		Deployments: deps,
		Tasks:       tasks,
		Policies:    groups,
		Workers:     ctx.Workers,
	}, nil
}

// workerArgs reproduces the context and grid flags for a forked worker
// process, with the scheduler/sweep worker budget overridden.
// Empty-valued flags are omitted rather than passed as "": the two are
// equivalent to the flag parser (empty is every grid flag's default),
// and the ssh launch path joins arguments with spaces, where an empty
// string would vanish and corrupt the remote worker's flag parse.
func (g *gridFlagSet) workerArgs(ctx *experiments.Context, workers int) []string {
	args := []string{"sweep",
		"-seed", strconv.FormatInt(ctx.Seed, 10),
		"-workers", strconv.Itoa(workers),
		"-requests", strconv.Itoa(ctx.Requests),
	}
	for _, f := range []struct{ name, value string }{
		{"-profile-cache", ctx.ProfileCacheDir},
		{"-models", *g.models},
		{"-gpus", *g.gpus},
		{"-tasks", *g.tasks},
		{"-policies", *g.policies},
	} {
		if f.value != "" {
			args = append(args, f.name, f.value)
		}
	}
	if ctx.Quick {
		args = append(args, "-quick")
	}
	return args
}

// dispatchFlagSet maps the dispatch.Options knobs onto flags, shared by
// `sweep -mode dispatch/pull` and the `dispatch` serve mode so every
// entry point tunes the same struct the same way.
type dispatchFlagSet struct {
	leaseTimeout   *time.Duration
	leaseCells     *int
	cellRetries    *int
	workerFailures *int
	idle           *time.Duration
	retryBase      *time.Duration
	retryMax       *time.Duration
}

func dispatchFlags(fs *flag.FlagSet) *dispatchFlagSet {
	d := dispatch.Defaults()
	return &dispatchFlagSet{
		leaseTimeout: fs.Duration("lease-timeout", d.LeaseTimeout,
			"requeue a worker's cells after this long without a heartbeat or result"),
		leaseCells: fs.Int("lease-cells", d.LeaseCells,
			"max cells per lease (1 = finest stealing granularity)"),
		cellRetries: fs.Int("cell-retries", d.CellRetries,
			"abort the sweep when one cell has been requeued this many times"),
		workerFailures: fs.Int("worker-failures", d.WorkerFailures,
			"exclude a worker from further leases after this many failed leases"),
		idle: fs.Duration("dispatch-idle", d.Idle,
			"abort the sweep when no worker message arrives for this long (0 waits forever)"),
		retryBase: fs.Duration("retry-base", d.RetryBase,
			"worker transport retries: first backoff step (doubles with jitter up to -retry-max)"),
		retryMax: fs.Duration("retry-max", d.RetryMax,
			"worker transport retries: backoff ceiling"),
	}
}

// options collects the parsed flags into a validated dispatch.Options.
func (d *dispatchFlagSet) options() (dispatch.Options, error) {
	o := dispatch.Options{
		LeaseTimeout:   *d.leaseTimeout,
		LeaseCells:     *d.leaseCells,
		CellRetries:    *d.cellRetries,
		WorkerFailures: *d.workerFailures,
		Idle:           *d.idle,
		RetryBase:      *d.retryBase,
		RetryMax:       *d.retryMax,
	}
	if err := o.Validate(); err != nil {
		return dispatch.Options{}, err
	}
	return o, nil
}

// scaleFlagSet carries the supervised-fleet knobs shared by `sweep
// -mode dispatch` and the `dispatch` serve mode. -scale-max 0 (the
// default) disables supervision entirely: the fleet is the fixed
// -dispatch-workers set, exactly as before.
type scaleFlagSet struct {
	min        *int
	max        *int
	restartMax *int
}

func scaleFlags(fs *flag.FlagSet) *scaleFlagSet {
	return &scaleFlagSet{
		min: fs.Int("scale-min", 1,
			"supervised dispatch: minimum worker count the supervisor maintains"),
		max: fs.Int("scale-max", 0,
			"supervised dispatch: scale the local worker fleet between -scale-min and this many workers, replacing crashed ones (0 disables the supervisor)"),
		restartMax: fs.Int("restart-max", 3,
			"supervised dispatch: replacements per worker slot before it is declared poisoned and left down"),
	}
}

// params validates and collects the scale flags. seed pins the
// supervisor's restart-backoff jitter.
func (s *scaleFlagSet) params(seed int64) (scaleParams, error) {
	p := scaleParams{min: *s.min, max: *s.max, restartMax: *s.restartMax, seed: seed}
	if p.max == 0 {
		return p, nil
	}
	if p.min < 1 {
		return scaleParams{}, fmt.Errorf("-scale-min %d < 1", p.min)
	}
	if p.max < p.min {
		return scaleParams{}, fmt.Errorf("-scale-max %d < -scale-min %d", p.max, p.min)
	}
	if p.restartMax < 1 {
		return scaleParams{}, fmt.Errorf("-restart-max %d < 1", p.restartMax)
	}
	return p, nil
}

// config assembles a coordinator Config; stderrTail may be nil (no
// locally captured worker stderr, e.g. the standalone serve mode).
func coordConfig(fp string, cells int, opts dispatch.Options, stderrTail func(string) string) dispatch.Config {
	return dispatch.Config{
		Fingerprint: fp,
		Cells:       cells,
		Options:     opts,
		StderrTail:  stderrTail,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
}

// defaultWorkerID derives a spool-safe worker id from host and pid.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", dispatch.SanitizeWorkerID(host), os.Getpid())
}

// httpCoord is a listening HTTP coordinator endpoint: the transport
// plus the server that exposes it.
type httpCoord struct {
	srv *httptransport.Server
	hs  *http.Server
	ln  net.Listener
}

// listenHTTP binds the coordinator's HTTP API on addr (host:port; port
// 0 picks a free one) and starts serving it.
func listenHTTP(addr string) (*httpCoord, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dispatch: listen %s: %w", addr, err)
	}
	srv := httptransport.NewServer()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &httpCoord{srv: srv, hs: hs, ln: ln}, nil
}

// localURL is the coordinator URL as reachable from this machine.
func (h *httpCoord) localURL() string {
	addr := h.ln.Addr().(*net.TCPAddr)
	host := addr.IP.String()
	if addr.IP.IsUnspecified() {
		host = "127.0.0.1"
	}
	return fmt.Sprintf("http://%s", net.JoinHostPort(host, strconv.Itoa(addr.Port)))
}

// remoteURL is the coordinator URL as reachable from other hosts; it
// needs the operator to have bound an explicit, routable host.
func (h *httpCoord) remoteURL(flagAddr string) (string, error) {
	host, _, err := net.SplitHostPort(flagAddr)
	if err != nil || host == "" || host == "0.0.0.0" || host == "::" {
		return "", fmt.Errorf("-hosts workers must reach the coordinator: give -http an explicit routable address (e.g. -http $(hostname):8080), not %q", flagAddr)
	}
	port := h.ln.Addr().(*net.TCPAddr).Port
	return fmt.Sprintf("http://%s", net.JoinHostPort(host, strconv.Itoa(port))), nil
}

// run drives the coordinator over the HTTP transport, lingers briefly
// so polling workers observe Stop, then closes the listener.
func (h *httpCoord) run(cfg dispatch.Config) (*distsweep.Merged, error) {
	merged, err := dispatch.Run(h.srv, cfg)
	h.srv.DrainStops(5 * time.Second)
	h.hs.Close()
	return merged, err
}

// runPullWorker is `exegpt sweep -mode pull`: one pull-loop worker
// process evaluating leased cells against a spool directory or an HTTP
// coordinator URL.
func runPullWorker(ctx *experiments.Context, grid experiments.SweepGrid, fp, spoolDir, connectURL, id string, opts dispatch.Options) error {
	if id == "" {
		id = defaultWorkerID()
	}
	var wt dispatch.WorkerTransport
	var via string
	switch {
	case connectURL != "":
		// -dispatch-idle bounds the worker's patience on both paths: how
		// long a send retries an unreachable coordinator (attaching
		// before it is up is fine within this budget) and, below, how
		// long to wait for a lease reply. 0 falls back to the client's
		// own default rather than retrying sends forever.
		c, err := httptransport.Dial(connectURL, id, opts.Idle)
		if err != nil {
			return err
		}
		c.Tune(opts.RetryBase, opts.RetryMax, 0)
		wt, via = c, connectURL
	default:
		sp, err := dispatch.NewSpool(spoolDir)
		if err != nil {
			return err
		}
		swt, err := sp.Worker(id)
		if err != nil {
			return err
		}
		wt, via = swt, spoolDir
	}
	// SIGINT/SIGTERM drain the worker gracefully: it finishes the cell
	// it is evaluating, releases the rest of its lease back to the
	// coordinator, and exits cleanly. A second signal exits immediately.
	drain := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "worker %s: %v: draining (finishing the in-flight cell, releasing the rest; signal again to exit immediately)\n", id, s)
		close(drain)
		s = <-sig
		fmt.Fprintf(os.Stderr, "worker %s: %v: exiting immediately\n", id, s)
		os.Exit(130)
	}()

	w := &dispatch.Worker{
		ID:          id,
		Fingerprint: fp,
		Cells:       len(grid.Cells()),
		Batch:       opts.LeaseCells,
		Idle:        opts.Idle,
		RetryBase:   opts.RetryBase,
		RetryMax:    opts.RetryMax,
		Drain:       drain,
		Eval: func(c int) (experiments.CellResult, error) {
			crs, err := ctx.SweepCells(grid, []int{c})
			if err != nil {
				return experiments.CellResult{}, err
			}
			return crs[0], nil
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	fmt.Fprintf(os.Stderr, "sweep: pull worker %s on %s (%d-cell grid %.12s)\n",
		id, via, w.Cells, fp)
	return w.Run(wt)
}

// runDispatch is `exegpt sweep -mode dispatch`: a work-stealing
// coordinator — over a file spool or, with -http, over the HTTP
// transport — plus its worker fleet: local pull-worker processes by
// default, or one ssh-launched worker per -hosts entry.
func runDispatch(ctx *experiments.Context, grid experiments.SweepGrid, g *gridFlagSet,
	fp, spoolDir, httpAddr, hosts, remoteBin string, workers int, opts dispatch.Options,
	sc scaleParams, journalDir, jsonOut string) error {

	// Open (and replay) the journal before spending anything on
	// transports or workers: a resume that recovered every cell skips
	// the fleet launch entirely.
	cells := len(grid.Cells())
	cfg := coordConfig(fp, cells, opts, nil)
	j, err := openJournal(journalDir, fp, cells, opts, &cfg)
	if err != nil {
		return err
	}
	if j != nil {
		defer j.Close()
	}
	allRecovered := len(cfg.Completed) == cells

	var ct dispatch.Transport
	var hc *httpCoord
	connectURL := "" // non-empty: workers attach over HTTP instead of the spool
	if httpAddr != "" {
		var err error
		if hc, err = listenHTTP(httpAddr); err != nil {
			return err
		}
		if hosts != "" {
			if connectURL, err = hc.remoteURL(httpAddr); err != nil {
				return err
			}
		} else {
			connectURL = hc.localURL()
		}
		if ctx.ProfileCacheDir == "" && hosts == "" {
			// Local fleets without a shared cache still profile each
			// (model, sub-cluster) once between them.
			tmp, err := os.MkdirTemp("", "exegpt-profiles-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			ctx.ProfileCacheDir = tmp
		}
		ct = hc.srv
		fmt.Fprintf(os.Stderr, "sweep: coordinator HTTP API on %s (status: %s/v1/status)\n",
			connectURL, connectURL)
	} else {
		dir := spoolDir
		if dir == "" {
			if hosts != "" {
				return fmt.Errorf("-hosts needs -spool (a directory path shared by this host and every worker host) or -http (a routable coordinator address)")
			}
			tmp, err := os.MkdirTemp("", "exegpt-spool-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		sp, err := dispatch.NewSpool(dir)
		if err != nil {
			return err
		}
		if ctx.ProfileCacheDir == "" {
			// Workers re-profile from scratch without a shared cache; give
			// them one inside the spool so each (model, sub-cluster)
			// profiles once across the fleet.
			ctx.ProfileCacheDir = filepath.Join(dir, "profiles")
		}
		// Take the coordinator side before launching anything: it clears a
		// previous run's stop marker, which a freshly launched worker would
		// otherwise see and obey.
		if ct, err = sp.Coordinator(); err != nil {
			return err
		}
		spoolDir = dir
	}

	// attachArgs is how a worker reaches this coordinator. The
	// coordinator's idle budget doubles as the worker's: a worker that
	// attaches after the run already finished (a journal resume with
	// nothing left) gives up within it instead of retrying for the
	// 10-minute default.
	attachArgs := func(id string) []string {
		args := []string{"-worker-id", id,
			"-lease-cells", strconv.Itoa(opts.LeaseCells),
			"-dispatch-idle", opts.Idle.String(),
			"-retry-base", opts.RetryBase.String(),
			"-retry-max", opts.RetryMax.String()}
		if connectURL != "" {
			return append([]string{"-pull", "-connect", connectURL}, args...)
		}
		return append([]string{"-pull", "-spool", spoolDir}, args...)
	}

	intr := installInterrupt(&cfg)
	defer intr.Stop()

	// Launch the fleet. Worker failures are tolerated by design — the
	// coordinator requeues their leases — so spawn errors become
	// warnings unless the coordinator itself fails.
	var fleet *distsweep.Fleet
	var sf *supervisedFleet
	var names []string
	switch {
	case allRecovered:
		// Every cell came back from the journal: the coordinator
		// completes without evaluating anything, so a fleet would only
		// attach to a finished run.
		fmt.Fprintf(os.Stderr, "sweep: journal already covers all %d cells; skipping worker launch\n", cells)
	case hosts != "":
		targets := strings.Split(hosts, ",")
		var argvs [][]string
		for i, h := range targets {
			h = strings.TrimSpace(h)
			if h == "" {
				continue
			}
			id := fmt.Sprintf("host%d-%s", i, dispatch.SanitizeWorkerID(h))
			argv := []string{h, remoteBin}
			argv = append(argv, g.workerArgs(ctx, 0)...)
			argv = append(argv, attachArgs(id)...)
			argvs = append(argvs, argv)
			names = append(names, id)
		}
		if len(argvs) == 0 {
			return fmt.Errorf("-hosts %q names no hosts", hosts)
		}
		fmt.Fprintf(os.Stderr, "sweep: dispatching to %d ssh workers\n", len(argvs))
		if fleet, err = distsweep.StartFleet("ssh", argvs, names); err != nil {
			return err
		}
	case sc.on():
		bin, err := os.Executable()
		if err != nil {
			return err
		}
		// The fleet may grow to scale-max workers on this box: split the
		// worker budget as if it were already there, so scale-ups don't
		// oversubscribe the machine.
		budget := ctx.Workers
		if budget <= 0 {
			budget = runtime.GOMAXPROCS(0)
		}
		perWorker := budget / sc.max
		if perWorker < 1 {
			perWorker = 1
		}
		argv := func(id string) []string {
			return append(g.workerArgs(ctx, perWorker), attachArgs(id)...)
		}
		fmt.Fprintf(os.Stderr, "sweep: supervised fleet of %d..%d local pull workers (restart cap %d)\n",
			sc.min, sc.max, sc.restartMax)
		if sf, err = startSupervisedFleet(&cfg, bin, argv, sc, intr); err != nil {
			return err
		}
	default:
		if workers < 1 {
			return fmt.Errorf("-dispatch-workers %d < 1", workers)
		}
		bin, err := os.Executable()
		if err != nil {
			return err
		}
		// All pull workers run on this box: split the worker budget
		// across them, as -mode spawn does for static shards.
		budget := ctx.Workers
		if budget <= 0 {
			budget = runtime.GOMAXPROCS(0)
		}
		perWorker := budget / workers
		if perWorker < 1 {
			perWorker = 1
		}
		argvs := make([][]string, workers)
		for i := range argvs {
			id := fmt.Sprintf("w%d", i)
			argvs[i] = append(g.workerArgs(ctx, perWorker), attachArgs(id)...)
			names = append(names, id)
		}
		fmt.Fprintf(os.Stderr, "sweep: dispatching to %d local pull workers\n", workers)
		if fleet, err = distsweep.StartFleet(bin, argvs, names); err != nil {
			return err
		}
	}

	if fleet != nil {
		cfg.StderrTail = fleet.StderrTail
	}
	if hc != nil && cfg.Controller != nil {
		// Expose the supervisor's drain hook on the HTTP API, so an
		// operator can POST /v1/drain to retire a worker by hand.
		hc.srv.AttachControl(cfg.Controller)
	}
	var merged *distsweep.Merged
	if hc != nil {
		merged, err = hc.run(cfg)
	} else {
		merged, err = dispatch.Run(ct, cfg)
	}
	// The stop signal is down (every coordinator path finishes the
	// transport), so the fleet drains; surface its exit status.
	var werr error
	if sf != nil {
		werr = sf.Shutdown()
	} else if fleet != nil {
		werr = fleet.Wait()
	}
	if err != nil {
		resumeHint(err, journalDir)
		return err
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "sweep: note: worker failures tolerated by work stealing: %v\n", werr)
	}
	return printMerged(merged, grid, jsonOut)
}

// cmdDispatch is the serve mode: a standalone work-stealing coordinator
// over a spool directory or an HTTP listener, for fleets whose workers
// the operator launches and re-launches at will (`exegpt sweep -pull
// -connect URL` / `-pull -spool DIR` per host, at any time during the
// sweep). It evaluates nothing itself.
func cmdDispatch(args []string) error {
	fs := flag.NewFlagSet("dispatch", flag.ExitOnError)
	newCtx := commonFlags(fs)
	g := gridFlags(fs)
	d := dispatchFlags(fs)
	scf := scaleFlags(fs)
	spoolDir := fs.String("spool", "", "serve over this spool directory shared with the pull workers")
	httpAddr := fs.String("http", "", "serve the coordinator's HTTP API on this address (host:port; workers attach with sweep -pull -connect)")
	journalDir := fs.String("journal", "", "journal every accepted result in this directory; rerunning with the same directory resumes an interrupted sweep")
	jsonOut := fs.String("json", "", "write the merged sweep (rows, evals, frontiers) as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*spoolDir == "") == (*httpAddr == "") {
		return fmt.Errorf("dispatch serves exactly one transport: give -spool DIR (file spool) or -http ADDR (HTTP API), not both")
	}
	opts, err := d.options()
	if err != nil {
		return err
	}
	ctx := newCtx()
	sc, err := scf.params(ctx.Seed)
	if err != nil {
		return err
	}
	grid, err := g.build(ctx)
	if err != nil {
		return err
	}
	fp, err := ctx.GridFingerprint(grid)
	if err != nil {
		return err
	}
	cells := len(grid.Cells())
	cfg := coordConfig(fp, cells, opts, nil)
	j, err := openJournal(*journalDir, fp, cells, opts, &cfg)
	if err != nil {
		return err
	}
	if j != nil {
		defer j.Close()
	}
	intr := installInterrupt(&cfg)
	defer intr.Stop()

	if sc.on() && ctx.ProfileCacheDir == "" {
		// The supervised local fleet shares one profile cache so each
		// (model, sub-cluster) profiles once across worker generations.
		tmp, err := os.MkdirTemp("", "exegpt-profiles-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		ctx.ProfileCacheDir = tmp
	}

	// superviseLocal forks a supervised local fleet attaching over the
	// serve transport — with -scale-max the serve mode runs its own
	// elastic workers alongside any the operator attaches by hand.
	var sf *supervisedFleet
	superviseLocal := func(connectURL string) error {
		if !sc.on() || len(cfg.Completed) == cells {
			return nil
		}
		bin, err := os.Executable()
		if err != nil {
			return err
		}
		budget := ctx.Workers
		if budget <= 0 {
			budget = runtime.GOMAXPROCS(0)
		}
		perWorker := budget / sc.max
		if perWorker < 1 {
			perWorker = 1
		}
		argv := func(id string) []string {
			args := g.workerArgs(ctx, perWorker)
			if connectURL != "" {
				args = append(args, "-pull", "-connect", connectURL)
			} else {
				args = append(args, "-pull", "-spool", *spoolDir)
			}
			return append(args, "-worker-id", id,
				"-lease-cells", strconv.Itoa(opts.LeaseCells),
				"-dispatch-idle", opts.Idle.String(),
				"-retry-base", opts.RetryBase.String(),
				"-retry-max", opts.RetryMax.String())
		}
		fmt.Fprintf(os.Stderr, "dispatch: supervised fleet of %d..%d local pull workers (restart cap %d)\n",
			sc.min, sc.max, sc.restartMax)
		sf, err = startSupervisedFleet(&cfg, bin, argv, sc, intr)
		return err
	}
	// finish drains the supervised fleet (if any) after the coordinator
	// is done and folds the outcome into the run's.
	finish := func(merged *distsweep.Merged, err error) error {
		var werr error
		if sf != nil {
			werr = sf.Shutdown()
		}
		if err != nil {
			resumeHint(err, *journalDir)
			return err
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "dispatch: note: worker failures tolerated by work stealing: %v\n", werr)
		}
		return printMerged(merged, grid, *jsonOut)
	}

	if *httpAddr != "" {
		hc, err := listenHTTP(*httpAddr)
		if err != nil {
			return err
		}
		if err := superviseLocal(hc.localURL()); err != nil {
			return err
		}
		if cfg.Controller != nil {
			hc.srv.AttachControl(cfg.Controller)
		}
		fmt.Fprintf(os.Stderr, "dispatch: coordinating %d cells on %s (grid %.12s; status: %s/v1/status)\n",
			cells, hc.ln.Addr(), fp, hc.localURL())
		return finish(hc.run(cfg))
	}

	sp, err := dispatch.NewSpool(*spoolDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dispatch: coordinating %d cells on spool %s (grid %.12s)\n",
		cells, *spoolDir, fp)
	ct, err := sp.Coordinator()
	if err != nil {
		return err
	}
	if err := superviseLocal(""); err != nil {
		return err
	}
	return finish(dispatch.Run(ct, cfg))
}
