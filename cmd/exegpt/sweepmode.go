package main

import "fmt"

// sweepMode is the explicit distribution-mode selector for `exegpt
// sweep`. Before -mode existed the mode was implied by which of
// -shard-index / -spawn / -dispatch / -pull was set; those spellings
// keep working, and resolveSweepMode reconciles the two: an explicit
// -mode that contradicts a legacy flag is an error rather than a
// silent override.
type sweepMode string

const (
	modeSingle   sweepMode = "single"
	modeWorker   sweepMode = "worker"
	modeSpawn    sweepMode = "spawn"
	modeDispatch sweepMode = "dispatch"
	modePull     sweepMode = "pull"
)

// resolveSweepMode reconciles the explicit -mode flag with the legacy
// mode-implying flags.
func resolveSweepMode(explicit string, shardIndexSet, spawn, dispatch, pull bool) (sweepMode, error) {
	var implied []sweepMode
	for _, c := range []struct {
		on   bool
		m    sweepMode
		flag string
	}{
		{shardIndexSet, modeWorker, "-shard-index"},
		{spawn, modeSpawn, "-spawn"},
		{dispatch, modeDispatch, "-dispatch"},
		{pull, modePull, "-pull"},
	} {
		if c.on {
			implied = append(implied, c.m)
		}
	}
	if len(implied) > 1 {
		return "", fmt.Errorf("-shard-index, -spawn, -dispatch and -pull are mutually exclusive (or use -mode)")
	}

	if explicit == "" {
		if len(implied) == 1 {
			return implied[0], nil
		}
		return modeSingle, nil
	}
	m := sweepMode(explicit)
	switch m {
	case modeSingle, modeWorker, modeSpawn, modeDispatch, modePull:
	default:
		return "", fmt.Errorf("unknown -mode %q (single, worker, spawn, dispatch or pull)", explicit)
	}
	// -mode worker + -shard-index is the natural spelling, not a
	// conflict; only a *different* implied mode contradicts -mode.
	if len(implied) == 1 && implied[0] != m {
		return "", fmt.Errorf("-mode %s conflicts with the legacy flag implying %s mode", m, implied[0])
	}
	return m, nil
}

// sweepModeFlags carries the distribution flags that only some modes
// accept, for per-mode validation.
type sweepModeFlags struct {
	shards   int
	out      string
	shardDir string
	hosts    string
	spool    string
	http     string
	connect  string
	workerID string
	journal  string
	scaleMax int
}

// validateSweepMode rejects flag combinations the selected mode cannot
// honor, so a typo fails loudly instead of being silently ignored.
func validateSweepMode(m sweepMode, f sweepModeFlags) error {
	// reject lists, per mode, the flags that mode has no use for.
	reject := func(pairs ...[2]string) error {
		for _, p := range pairs {
			if p[1] != "" {
				return fmt.Errorf("-mode %s does not use %s", m, p[0])
			}
		}
		return nil
	}
	if f.scaleMax > 0 && m != modeDispatch {
		return fmt.Errorf("-scale-max supervises a dispatch-mode fleet; -mode %s has no fleet to scale", m)
	}
	switch m {
	case modeSingle:
		if f.shards > 1 {
			return fmt.Errorf("-shards %d needs either -mode spawn (fork local workers) or -mode worker -shard-index i (run as one worker)", f.shards)
		}
		return reject([2]string{"-out", f.out}, [2]string{"-shard-dir", f.shardDir},
			[2]string{"-hosts", f.hosts}, [2]string{"-spool", f.spool},
			[2]string{"-http", f.http}, [2]string{"-connect", f.connect},
			[2]string{"-worker-id", f.workerID}, [2]string{"-journal", f.journal})
	case modeWorker:
		if f.out == "" {
			return fmt.Errorf("-mode worker needs -out for the shard envelope")
		}
		return reject([2]string{"-hosts", f.hosts}, [2]string{"-spool", f.spool},
			[2]string{"-http", f.http}, [2]string{"-connect", f.connect},
			[2]string{"-journal", f.journal})
	case modeSpawn:
		return reject([2]string{"-out", f.out}, [2]string{"-hosts", f.hosts},
			[2]string{"-spool", f.spool}, [2]string{"-http", f.http},
			[2]string{"-connect", f.connect}, [2]string{"-journal", f.journal})
	case modeDispatch:
		if f.spool != "" && f.http != "" {
			return fmt.Errorf("-mode dispatch uses one transport: -spool DIR (file spool) or -http ADDR (HTTP API), not both")
		}
		if f.scaleMax > 0 && f.hosts != "" {
			return fmt.Errorf("-scale-max supervises local workers; an ssh fleet (-hosts) is fixed — pick one")
		}
		return reject([2]string{"-out", f.out}, [2]string{"-shard-dir", f.shardDir},
			[2]string{"-connect", f.connect})
	case modePull:
		if (f.spool == "") == (f.connect == "") {
			return fmt.Errorf("-mode pull attaches to exactly one coordinator: give -spool DIR (file spool) or -connect URL (HTTP API)")
		}
		return reject([2]string{"-out", f.out}, [2]string{"-shard-dir", f.shardDir},
			[2]string{"-hosts", f.hosts}, [2]string{"-http", f.http},
			[2]string{"-journal", f.journal})
	}
	return nil
}
