package main

import (
	"encoding/json"
	"flag"
	"fmt"

	"exegpt/internal/atomicfile"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/serve"
	"exegpt/internal/workload"
)

// cmdServe runs the online serving loop: open-loop arrivals into the
// incremental runner engine, with adaptive schedule switching.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	newCtx := commonFlags(fs)
	modelName := fs.String("model", "OPT-13B", "model name (Table 1)")
	clusterName := fs.String("cluster", "", "cluster (A40 or A100; default: the model's Table 2 cluster)")
	gpus := fs.Int("gpus", 0, "GPUs to deploy on (default: the model's Table 2 count)")
	taskID := fs.String("task", "S", "task ID (S, T, G, C1, C2, wmt, alpaca, cnn)")
	policySet := fs.String("policies", "all", "policy set: rra, waa, disagg or all")
	arrival := fs.String("arrival", "poisson", "arrival process: poisson, mmpp, diurnal or step")
	rate := fs.Float64("rate", 2, "mean arrival rate in requests/second")
	duration := fs.Float64("duration", 300, "serving duration in virtual seconds (arrivals stop, then the backlog drains)")
	slo := fs.Float64("slo", 0, "per-request latency SLO in seconds (0 = none); bounds the schedule search and counts violations")
	window := fs.Float64("window", 10, "stats/controller window width in seconds")
	switchCost := fs.Float64("switch-cost", 5, "modeled TP re-shard downtime per schedule switch, in virtual seconds")
	driftTol := fs.Float64("drift-tol", 0.25, "relative arrival-rate/length drift that triggers a controller evaluation")
	checkEvery := fs.Int("check-every", 3, "controller period in windows")
	stepAt := fs.Float64("step-at", 0, "step arrivals: time of the rate step in seconds")
	stepFactor := fs.Float64("step-factor", 0, "step arrivals: rate multiplier after the step")
	jsonOut := fs.String("json", "", "also write the JSON report artifact to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := model.ByName(*modelName)
	if err != nil {
		return err
	}
	dep, err := sched.DeploymentFor(m.Name)
	if err != nil {
		if *clusterName == "" || *gpus == 0 {
			return err
		}
	}
	cluster := dep.Cluster
	if *clusterName != "" {
		if cluster, err = clusterByName(*clusterName); err != nil {
			return err
		}
	}
	nGPUs := dep.GPUs
	if *gpus > 0 {
		nGPUs = *gpus
	}
	task, err := workload.ByID(*taskID)
	if err != nil {
		return err
	}
	groups, err := parsePolicies(*policySet)
	if err != nil {
		return err
	}

	ctx := newCtx()
	d, err := ctx.Deploy(m, cluster, nGPUs, task)
	if err != nil {
		return err
	}

	rep, err := serve.Run(d, serve.Options{
		Arrival:    *arrival,
		Rate:       *rate,
		Duration:   *duration,
		Seed:       ctx.Seed,
		SLO:        *slo,
		Window:     *window,
		SwitchCost: *switchCost,
		DriftTol:   *driftTol,
		CheckEvery: *checkEvery,
		StepAt:     *stepAt,
		StepFactor: *stepFactor,
		Policies:   flattenPolicies(groups),
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := atomicfile.Write(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *jsonOut)
	}
	return nil
}
