package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"exegpt/internal/experiments"
	"exegpt/internal/sched"
)

// cmdSweep grid-evaluates deployments x tasks, parallel across
// deployments.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	newCtx := commonFlags(fs)
	modelList := fs.String("models", "", "comma-separated model names (default: every Table 2 model)")
	gpuList := fs.String("gpus", "", "comma-separated cluster sizes overriding Table 2 (e.g. 4,8,16)")
	taskList := fs.String("tasks", "", "comma-separated task IDs (default: S,T,G,C1,C2)")
	policySet := fs.String("policies", "all", "policy set: rra, waa or all")
	if err := fs.Parse(args); err != nil {
		return err
	}

	models, err := modelsByNames(*modelList)
	if err != nil {
		return err
	}
	tasks, err := tasksByIDs(*taskList)
	if err != nil {
		return err
	}
	groups, err := parsePolicies(*policySet)
	if err != nil {
		return err
	}

	// Build the deployment grid: each model on its Table 2 cluster, at
	// its Table 2 GPU count or at every size in -gpus.
	var sizes []int
	if *gpuList != "" {
		for _, s := range strings.Split(*gpuList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -gpus entry %q", s)
			}
			sizes = append(sizes, n)
		}
	}
	var deps []sched.Deployment
	for _, m := range models {
		dep, err := sched.DeploymentFor(m.Name)
		if err != nil {
			return err
		}
		if len(sizes) == 0 {
			deps = append(deps, dep)
			continue
		}
		for _, n := range sizes {
			if n > dep.Cluster.TotalGPUs() {
				continue // grid point exceeds the cluster; skip, not fail
			}
			d := dep
			d.GPUs = n
			deps = append(deps, d)
		}
	}
	if len(deps) == 0 {
		return fmt.Errorf("no deployments selected (every -gpus size exceeds its cluster?)")
	}

	ctx := newCtx()
	fmt.Printf("sweep: %d deployments x %d tasks, %d requests/run, seed %d\n",
		len(deps), len(tasks), ctx.Requests, ctx.Seed)
	rows, err := ctx.Sweep(experiments.SweepGrid{
		Deployments: deps,
		Tasks:       tasks,
		Policies:    groups,
		Workers:     ctx.Workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatSweep(rows))
	return nil
}
