package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
	"exegpt/internal/sched"
)

// cmdSweep grid-evaluates deployments x tasks, parallel across
// deployments — and, across processes, in one of five distribution
// modes, selected explicitly with -mode or implied by the legacy flags:
//
//	-mode single (default)                one process, print the table
//	-mode worker   [-shards N -shard-index i -out shard_i.json]
//	                                      static worker: evaluate one
//	                                      round-robin shard, write its
//	                                      envelope
//	-mode spawn    [-shards N]            static coordinator: fork N
//	                                      local workers, merge, print
//	-mode dispatch                        work-stealing coordinator: fork
//	                                      -dispatch-workers local pull
//	                                      workers (file spool, or HTTP
//	                                      with -http ADDR)
//	-mode dispatch -hosts a,b -spool DIR|-http HOST:PORT
//	                                      same, one ssh worker per host
//	-mode pull     -spool DIR | -connect URL
//	                                      pull worker: lease cells from
//	                                      the coordinator until it says
//	                                      Stop; attachable at any time
//
// The legacy spellings (-shard-index → worker, -spawn → spawn,
// -dispatch → dispatch, -pull → pull) keep working and map onto the
// same modes. Workers sharing a -profile-cache directory profile each
// (model, sub-cluster) once between them. Every multi-process mode
// produces output bit-identical to the single-process sweep (see
// internal/distsweep and internal/dispatch).
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	newCtx := commonFlags(fs)
	g := gridFlags(fs)
	mode := fs.String("mode", "", "distribution mode: single, worker, spawn, dispatch or pull (default: implied by -shard-index/-spawn/-dispatch/-pull, else single)")
	shards := fs.Int("shards", 1, "split the sweep into this many round-robin shards")
	shardIndex := fs.Int("shard-index", -1, "worker mode: evaluate only this shard and write its envelope to -out")
	outPath := fs.String("out", "", "worker mode: shard envelope output path (required)")
	spawn := fs.Bool("spawn", false, "spawn mode: fork one local worker process per shard, merge, print the table")
	shardDir := fs.String("shard-dir", "", "spawn mode: directory for shard envelopes (default: a temp dir, removed after the merge)")
	jsonOut := fs.String("json", "", "write the merged sweep (rows, evals, frontiers) as JSON to this file")
	dispatchMode := fs.Bool("dispatch", false, "dispatch mode: work-stealing coordinator leasing cells to pull workers, merge, print the table")
	dispatchWorkers := fs.Int("dispatch-workers", 2, "dispatch mode (no -hosts): how many local pull workers to fork")
	hosts := fs.String("hosts", "", "dispatch mode: comma-separated ssh hosts to launch one pull worker on each (needs a shared -spool path or a routable -http address)")
	remoteBin := fs.String("remote-bin", "exegpt", "with -hosts: the exegpt binary path on the remote hosts")
	pull := fs.Bool("pull", false, "pull mode: lease and evaluate cells from the coordinator on -spool or -connect")
	spoolDir := fs.String("spool", "", "file-spool directory for dispatch/pull modes (default in dispatch mode: a temp dir, removed after the merge)")
	httpAddr := fs.String("http", "", "dispatch mode: serve the coordinator's HTTP API on this host:port instead of a file spool")
	connect := fs.String("connect", "", "pull mode: attach to the coordinator's HTTP API at this URL (e.g. http://gpu1:8080)")
	workerID := fs.String("worker-id", "", "pull mode: this worker's name in leases and logs (default: host-pid)")
	journalDir := fs.String("journal", "", "dispatch mode: journal every accepted result in this directory; rerunning with the same directory resumes an interrupted sweep")
	d := dispatchFlags(fs)
	scf := scaleFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := newCtx()
	grid, err := g.build(ctx)
	if err != nil {
		return err
	}
	fp, err := ctx.GridFingerprint(grid)
	if err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d < 1", *shards)
	}
	opts, err := d.options()
	if err != nil {
		return err
	}
	sc, err := scf.params(ctx.Seed)
	if err != nil {
		return err
	}
	m, err := resolveSweepMode(*mode, *shardIndex >= 0, *spawn, *dispatchMode, *pull)
	if err != nil {
		return err
	}
	if err := validateSweepMode(m, sweepModeFlags{
		shards: *shards, out: *outPath, shardDir: *shardDir, hosts: *hosts,
		spool: *spoolDir, http: *httpAddr, connect: *connect, workerID: *workerID,
		journal: *journalDir, scaleMax: sc.max,
	}); err != nil {
		return err
	}

	switch m {
	case modePull:
		return runPullWorker(ctx, grid, fp, *spoolDir, *connect, *workerID, opts)

	case modeDispatch:
		return runDispatch(ctx, grid, g, fp, *spoolDir, *httpAddr, *hosts, *remoteBin,
			*dispatchWorkers, opts, sc, *journalDir, *jsonOut)

	case modeWorker:
		idx := *shardIndex
		if idx < 0 {
			return fmt.Errorf("-mode worker needs -shard-index (which shard this worker evaluates)")
		}
		cells, err := ctx.SweepShard(grid, *shards, idx)
		if err != nil {
			return err
		}
		env := distsweep.NewEnvelope(fp, *shards, idx, cells)
		if err := env.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: shard %d/%d: %d cells -> %s\n",
			idx, *shards, len(cells), *outPath)
		return nil

	case modeSpawn:
		dir := *shardDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "exegpt-shards-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		if ctx.ProfileCacheDir == "" {
			// Workers re-profile from scratch without a shared cache;
			// give them one so each (model, sub-cluster) profiles once.
			ctx.ProfileCacheDir = dir
		}
		bin, err := os.Executable()
		if err != nil {
			return err
		}
		// All shard workers run on this box: split the worker budget
		// across them instead of multiplying the two parallelism
		// levels, mirroring what the in-process sweep does for its
		// cell/scheduler levels. (Worker counts never change results,
		// only wall time.)
		budget := ctx.Workers
		if budget <= 0 {
			budget = runtime.GOMAXPROCS(0)
		}
		perWorker := budget / *shards
		if perWorker < 1 {
			perWorker = 1
		}
		fmt.Fprintf(os.Stderr, "sweep: spawning %d shard workers (envelopes in %s)\n", *shards, dir)
		paths, err := distsweep.SpawnLocal(bin, g.workerArgs(ctx, perWorker), *shards, dir)
		if err != nil {
			return err
		}
		merged, err := distsweep.MergeFiles(paths)
		if err != nil {
			return err
		}
		if merged.Fingerprint != fp {
			return fmt.Errorf("worker fingerprint %.12s… differs from coordinator %.12s… (flag plumbing drift?)",
				merged.Fingerprint, fp)
		}
		return printMerged(merged, grid, *jsonOut)

	default:
		if *shards > 1 {
			return fmt.Errorf("-shards %d needs either -spawn (fork local workers) or -shard-index (run as one worker)", *shards)
		}
		cells, err := ctx.SweepShard(grid, 1, 0)
		if err != nil {
			return err
		}
		// Route the single-process result through the same envelope +
		// merge path the sharded run uses, so the two artifacts are
		// byte-identical by construction.
		merged, err := distsweep.Merge([]*distsweep.Envelope{distsweep.NewEnvelope(fp, 1, 0, cells)})
		if err != nil {
			return err
		}
		return printMerged(merged, grid, *jsonOut)
	}
}

// printMerged prints the sweep header + table and optionally writes the
// merged JSON artifact.
func printMerged(m *distsweep.Merged, grid experiments.SweepGrid, jsonOut string) error {
	fmt.Printf("sweep: %d cells (%d deployments), %d schedule evals, grid %.12s\n",
		m.Cells, len(grid.Deployments), m.Evals, m.Fingerprint)
	fmt.Print(experiments.FormatSweep(m.Rows))
	if jsonOut != "" {
		if err := m.WriteFile(jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: merged JSON -> %s\n", jsonOut)
	}
	return nil
}

// sweepDeployments builds the deployment grid: each model on its
// Table 2 cluster, at its Table 2 GPU count or at every size in -gpus.
func sweepDeployments(modelList, gpuList string) ([]sched.Deployment, error) {
	models, err := modelsByNames(modelList)
	if err != nil {
		return nil, err
	}
	var sizes []int
	if gpuList != "" {
		for _, s := range strings.Split(gpuList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad -gpus entry %q", s)
			}
			sizes = append(sizes, n)
		}
	}
	var deps []sched.Deployment
	for _, m := range models {
		dep, err := sched.DeploymentFor(m.Name)
		if err != nil {
			return nil, err
		}
		if len(sizes) == 0 {
			deps = append(deps, dep)
			continue
		}
		for _, n := range sizes {
			if n > dep.Cluster.TotalGPUs() {
				continue // grid point exceeds the cluster; skip, not fail
			}
			d := dep
			d.GPUs = n
			deps = append(deps, d)
		}
	}
	if len(deps) == 0 {
		return nil, fmt.Errorf("no deployments selected (every -gpus size exceeds its cluster?)")
	}
	return deps, nil
}
