// RRA family registration: the round-robin allocation's estimate paths
// (Simulator.estimateRRA / Evaluator.estimateRRA) enter the per-family
// dispatch here.
package core

import "exegpt/internal/sched"

func init() {
	registerEstimator(sched.RRA, familyEstimator{
		ref:  (*Simulator).estimateRRA,
		fast: (*Evaluator).estimateRRA,
	})
}
