package core

import (
	"math"
	"testing"

	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/profile"
	"exegpt/internal/sched"
	"exegpt/internal/seqdist"
	"exegpt/internal/workload"
)

// newSim builds a simulator for a model deployed per Table 2 on a task.
func newSim(t testing.TB, m model.Model, gpus int, cluster hw.Cluster, task workload.Task) *Simulator {
	t.Helper()
	sub, err := cluster.Sub(gpus)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.New(m, sub)
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := task.Dists()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(m, sub, prof.Run(), in, out)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func optSim(t testing.TB, task workload.Task) *Simulator {
	return newSim(t, model.OPT13B, 4, hw.A40Cluster, task)
}

func TestNewSimulatorValidates(t *testing.T) {
	sub, _ := hw.A40Cluster.Sub(4)
	prof, _ := profile.New(model.OPT13B, sub)
	tab := prof.Run()
	in, out, _ := workload.Summarization.Dists()
	if _, err := NewSimulator(model.Model{}, sub, tab, in, out); err == nil {
		t.Fatal("bad model should fail")
	}
	if _, err := NewSimulator(model.OPT13B, hw.Cluster{}, tab, in, out); err == nil {
		t.Fatal("bad cluster should fail")
	}
	if _, err := NewSimulator(model.OPT13B, sub, nil, in, out); err == nil {
		t.Fatal("nil table should fail")
	}
	if _, err := NewSimulator(model.OPT13B, sub, tab, nil, out); err == nil {
		t.Fatal("nil dist should fail")
	}
}

func TestEstimateRRABasic(t *testing.T) {
	sim := optSim(t, workload.Summarization)
	cfg := sched.Config{Policy: sched.RRA, BD: 64, BE: 1, ND: 8, TP: sched.TPSpec{Degree: 1}}
	est, err := sim.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Feasible {
		t.Fatalf("infeasible: %s", est.Reason)
	}
	if est.Throughput <= 0 || est.Latency <= 0 || math.IsInf(est.Latency, 0) {
		t.Fatalf("tput=%v lat=%v", est.Throughput, est.Latency)
	}
	// BE derived from the completion distribution must satisfy the
	// batch-consistency identity approximately.
	comp, _ := seqdist.NewCompletionDist(sim.Out, cfg.ND)
	wantBE := int(math.Round(64 * comp.PerPhaseCompletion()))
	if wantBE < 1 {
		wantBE = 1
	}
	if est.Config.BE != wantBE {
		t.Fatalf("BE = %d, want %d", est.Config.BE, wantBE)
	}
	if est.CycleTime <= est.EncTime {
		t.Fatal("cycle must include decode iterations")
	}
}

func TestEstimateWAABasic(t *testing.T) {
	// Task S encode dominates, so WAA-C packs GPUs onto encoding and the
	// lone decode GPU cannot hold the KV cache; WAA-M balances memory
	// instead (§4.1). Use WAA-M here and cover the WAA-C OOM below.
	sim := optSim(t, workload.Summarization)
	cfg := sched.Config{Policy: sched.WAAM, BE: 4, BD: 1, Bm: 2, TP: sched.TPSpec{Degree: 1}}
	est, err := sim.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Feasible {
		t.Fatalf("infeasible: %s", est.Reason)
	}
	// BD = BE * mean output length (§4.1).
	wantBD := int(math.Round(4 * sim.Out.Mean()))
	if est.Config.BD != wantBD {
		t.Fatalf("BD = %d, want %d", est.Config.BD, wantBD)
	}
	if est.Alloc.EncGPUs < 1 || est.Alloc.DecGPUs < 1 {
		t.Fatalf("alloc split %d/%d", est.Alloc.EncGPUs, est.Alloc.DecGPUs)
	}
	if est.Alloc.EncGPUs+est.Alloc.DecGPUs != 4 {
		t.Fatal("split must cover the cluster")
	}
}

func TestEstimateInvalidConfigIsInfeasible(t *testing.T) {
	sim := optSim(t, workload.Summarization)
	est, err := sim.Estimate(sched.Config{Policy: sched.RRA, BD: 0, BE: 1, ND: 1, TP: sched.TPSpec{Degree: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if est.Feasible || est.Reason == "" {
		t.Fatal("invalid config should be infeasible with a reason")
	}
}

// Batch size trades throughput for latency (§4.2).
func TestBatchTradeoffRRA(t *testing.T) {
	sim := optSim(t, workload.Summarization)
	small, _ := sim.Estimate(sched.Config{Policy: sched.RRA, BD: 8, BE: 1, ND: 8, TP: sched.TPSpec{Degree: 1}})
	large, _ := sim.Estimate(sched.Config{Policy: sched.RRA, BD: 256, BE: 1, ND: 8, TP: sched.TPSpec{Degree: 1}})
	if !small.Feasible || !large.Feasible {
		t.Fatal("both should fit")
	}
	if large.Throughput <= small.Throughput {
		t.Fatalf("larger batch should raise throughput: %v vs %v", large.Throughput, small.Throughput)
	}
	if large.Latency <= small.Latency {
		t.Fatalf("larger batch should raise latency: %v vs %v", large.Latency, small.Latency)
	}
}

// Decreasing ND (more frequent encoding) raises throughput and latency
// (§4.1).
func TestEncodingFrequencyTradeoff(t *testing.T) {
	sim := optSim(t, workload.Translation)
	rare, _ := sim.Estimate(sched.Config{Policy: sched.RRA, BD: 128, BE: 1, ND: 32, TP: sched.TPSpec{Degree: 1}})
	frequent, _ := sim.Estimate(sched.Config{Policy: sched.RRA, BD: 128, BE: 1, ND: 4, TP: sched.TPSpec{Degree: 1}})
	if !rare.Feasible || !frequent.Feasible {
		t.Fatalf("both should fit: %s / %s", rare.Reason, frequent.Reason)
	}
	if frequent.Throughput <= rare.Throughput {
		t.Fatalf("frequent encoding should raise throughput: %v vs %v", frequent.Throughput, rare.Throughput)
	}
	if frequent.Latency <= rare.Latency {
		t.Fatalf("frequent encoding should raise latency: %v vs %v", frequent.Latency, rare.Latency)
	}
}

// More decoder micro-batches cut latency (§4.2, Figure 4(c)).
func TestMicroBatchTradeoff(t *testing.T) {
	sim := optSim(t, workload.Summarization)
	one, _ := sim.Estimate(sched.Config{Policy: sched.WAAM, BE: 8, BD: 1, Bm: 1, TP: sched.TPSpec{Degree: 1}})
	four, _ := sim.Estimate(sched.Config{Policy: sched.WAAM, BE: 8, BD: 1, Bm: 4, TP: sched.TPSpec{Degree: 1}})
	if !one.Feasible || !four.Feasible {
		t.Fatalf("both should fit: %s / %s", one.Reason, four.Reason)
	}
	if four.Latency >= one.Latency {
		t.Fatalf("micro-batches should cut latency: Bm=4 %v vs Bm=1 %v", four.Latency, one.Latency)
	}
}

// Partial TP reduces latency at some throughput cost (§4.2, §5.1).
func TestPartialTPTradeoff(t *testing.T) {
	sim := newSim(t, model.GPT339B, 16, hw.A40Cluster, workload.Summarization)
	noTP, _ := sim.Estimate(sched.Config{Policy: sched.RRA, BD: 64, BE: 1, ND: 8, TP: sched.TPSpec{Degree: 1}})
	fullTP, _ := sim.Estimate(sched.Config{Policy: sched.RRA, BD: 64, BE: 1, ND: 8, TP: sched.TPSpec{Degree: 8, GPUs: 16}})
	if !noTP.Feasible || !fullTP.Feasible {
		t.Fatalf("both should fit: %q %q", noTP.Reason, fullTP.Reason)
	}
	if fullTP.Latency >= noTP.Latency {
		t.Fatalf("TP should cut latency: %v vs %v", fullTP.Latency, noTP.Latency)
	}
}

// WAA runs out of memory for very large decoder-only models (§7.4).
func TestWAAOOMOnLargeModels(t *testing.T) {
	sim := newSim(t, model.GPT3175B, 16, hw.A100Cluster, workload.CodeGeneration)
	est, err := sim.Estimate(sched.Config{Policy: sched.WAAC, BE: 4, BD: 1, Bm: 2, TP: sched.TPSpec{Degree: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if est.Feasible {
		t.Fatal("WAA on 175B/16 A100 should OOM (two model copies)")
	}
	// RRA still fits.
	rra, err := sim.Estimate(sched.Config{Policy: sched.RRA, BD: 16, BE: 1, ND: 16, TP: sched.TPSpec{Degree: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !rra.Feasible {
		t.Fatalf("RRA should fit: %s", rra.Reason)
	}
}

func TestSchedulerFindsFeasibleSchedule(t *testing.T) {
	sim := optSim(t, workload.Summarization)
	s := NewScheduler(sim)
	s.MaxBatch = 512
	// Infinite bound: must find something.
	res, err := s.FindBest([]sched.Policy{sched.RRA, sched.WAAC}, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no schedule found under infinite bound")
	}
	unconstrained := res.Best.Throughput

	// Tight but achievable bound: still feasible and respects the bound.
	minLat, err := s.MinLatency([]sched.Policy{sched.RRA, sched.WAAC})
	if err != nil {
		t.Fatal(err)
	}
	bound := minLat * 1.2
	res2, err := s.FindBest([]sched.Policy{sched.RRA, sched.WAAC}, bound)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Found {
		t.Fatalf("no schedule under bound %v", bound)
	}
	if res2.Best.Latency >= bound {
		t.Fatalf("violates bound: %v >= %v", res2.Best.Latency, bound)
	}
	if res2.Best.Throughput > unconstrained*1.001 {
		t.Fatal("constrained search cannot beat unconstrained optimum")
	}
}

// Branch-and-bound must match exhaustive search within tolerance while
// evaluating far fewer points (§5.1, §7.7).
func TestBBMatchesExhaustive(t *testing.T) {
	sim := optSim(t, workload.Summarization)
	s := NewScheduler(sim)
	s.MaxBatch = 256
	s.MaxND = 32
	policies := []sched.Policy{sched.RRA, sched.WAAC}

	for _, bound := range []float64{5, 15, math.Inf(1)} {
		bb, err := s.FindBest(policies, bound)
		if err != nil {
			t.Fatal(err)
		}
		bbEvals := bb.Evals
		ex, err := s.Exhaustive(policies, bound)
		if err != nil {
			t.Fatal(err)
		}
		if bb.Found != ex.Found {
			t.Fatalf("bound %v: found mismatch bb=%v ex=%v", bound, bb.Found, ex.Found)
		}
		if !bb.Found {
			continue
		}
		if bb.Best.Throughput < ex.Best.Throughput*(1-s.TolT-0.02) {
			t.Fatalf("bound %v: B&B tput %v far below exhaustive %v",
				bound, bb.Best.Throughput, ex.Best.Throughput)
		}
		if bbEvals >= ex.Evals {
			t.Fatalf("bound %v: B&B evals %d not fewer than exhaustive %d", bound, bbEvals, ex.Evals)
		}
	}
}

// The Table 6 case-study shape: as the bound relaxes, the selected
// schedule's throughput is nondecreasing, and the tightest bound still
// achieves a large fraction of the maximum throughput.
func TestCaseStudyShape(t *testing.T) {
	sim := optSim(t, workload.Summarization)
	s := NewScheduler(sim)
	s.MaxBatch = 512
	inf, err := s.FindBest([]sched.Policy{sched.RRA, sched.WAAC}, math.Inf(1))
	if err != nil || !inf.Found {
		t.Fatalf("inf search: %v found=%v", err, inf.Found)
	}
	minLat, err := s.MinLatency([]sched.Policy{sched.RRA, sched.WAAC})
	if err != nil {
		t.Fatal(err)
	}
	// The paper derives bounds from FT's latency sweep (bottom 10%-70%),
	// which sit well above the system's absolute minimum latency.
	span := inf.Best.Latency - minLat
	bounds := []float64{minLat + 0.5*span, minLat + 0.75*span, inf.Best.Latency * 1.1, math.Inf(1)}
	prevTput := 0.0
	var tightest float64
	for i, b := range bounds {
		res, err := s.FindBest([]sched.Policy{sched.RRA, sched.WAAC}, b)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("bound %v: nothing found", b)
		}
		// B&B tolerances allow small wobbles between adjacent bounds.
		if res.Best.Throughput < prevTput*0.97 {
			t.Fatalf("throughput decreased as bound relaxed: %v after %v", res.Best.Throughput, prevTput)
		}
		prevTput = res.Best.Throughput
		if i == 0 {
			tightest = res.Best.Throughput
		}
	}
	if tightest < 0.25*prevTput {
		t.Fatalf("tightest-bound throughput %v below 25%% of max %v (poor trade-off)", tightest, prevTput)
	}
}

// WAA beats RRA for short outputs; RRA wins for long outputs (§4.1,
// §7.3).
func TestPolicyCrossover(t *testing.T) {
	s := NewScheduler(optSim(t, workload.Summarization)) // short outputs
	s.MaxBatch = 512
	rra, err := s.FindBest([]sched.Policy{sched.RRA}, math.Inf(1))
	if err != nil || !rra.Found {
		t.Fatalf("rra: %v", err)
	}
	waa, err := s.FindBest([]sched.Policy{sched.WAAM, sched.WAAC}, math.Inf(1))
	if err != nil || !waa.Found {
		t.Fatalf("waa: %v", err)
	}
	if waa.Best.Throughput <= rra.Best.Throughput {
		t.Logf("note: WAA %.2f vs RRA %.2f on task S (paper expects WAA ahead)",
			waa.Best.Throughput, rra.Best.Throughput)
	}

	// Long outputs (translation): RRA should not lose badly.
	s2 := NewScheduler(optSim(t, workload.Translation))
	s2.MaxBatch = 512
	rra2, err := s2.FindBest([]sched.Policy{sched.RRA}, math.Inf(1))
	if err != nil || !rra2.Found {
		t.Fatalf("rra2: %v", err)
	}
	waa2, err := s2.FindBest([]sched.Policy{sched.WAAC, sched.WAAM}, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if waa2.Found && rra2.Best.Throughput < 0.5*waa2.Best.Throughput {
		t.Fatalf("RRA should be competitive on long outputs: %v vs %v",
			rra2.Best.Throughput, waa2.Best.Throughput)
	}
}

func TestMonotonicityReport(t *testing.T) {
	// Table 5 uses GPT-3 39B on 16 A40 GPUs.
	sim := newSim(t, model.GPT339B, 16, hw.A40Cluster, workload.Summarization)
	s := NewScheduler(sim)
	sweeps := s.Table5Sweeps()
	if len(sweeps) != 5 {
		t.Fatalf("want 5 sweeps (Table 5 columns), got %d", len(sweeps))
	}
	for _, sw := range sweeps {
		rep, err := s.EvaluateMonotonicity(sw, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Points == 0 {
			t.Fatalf("%v/%s: no feasible points swept", sw.Policy, sw.Variable)
		}
		// Table 5: with 5% tolerance the vast majority of points are
		// monotone.
		if rep.TputViol > 0.15 || rep.LatencyViol > 0.15 {
			t.Errorf("%v/%s: violations tput=%.2f lat=%.2f exceed 15%%",
				sw.Policy, sw.Variable, rep.TputViol, rep.LatencyViol)
		}
	}
}

func TestEvaluateMonotonicityUnknownVar(t *testing.T) {
	s := NewScheduler(optSim(t, workload.Summarization))
	_, err := s.EvaluateMonotonicity(SweepSpec{Variable: "??", Values: []int{1},
		Combos: []sched.Config{{Policy: sched.RRA, BD: 1, BE: 1, ND: 1, TP: sched.TPSpec{Degree: 1}}}}, 0.05)
	if err == nil {
		t.Fatal("unknown variable should error")
	}
}

func BenchmarkEstimateRRA(b *testing.B) {
	sim := optSim(b, workload.Summarization)
	cfg := sched.Config{Policy: sched.RRA, BD: 64, BE: 1, ND: 8, TP: sched.TPSpec{Degree: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Estimate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerBB(b *testing.B) {
	sim := optSim(b, workload.Summarization)
	s := NewScheduler(sim)
	s.MaxBatch = 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FindBest([]sched.Policy{sched.RRA, sched.WAAC}, 10); err != nil {
			b.Fatal(err)
		}
	}
}
