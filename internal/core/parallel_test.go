// Tests for the parallel branch-and-bound search: determinism across
// worker counts and the deterministic seed-bound pruning contract.
package core

import (
	"math"
	"reflect"
	"testing"

	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// allPolicies exercises every branch kind, including the WAA branches
// that share the pruning bound with RRA's.
var allPolicies = []sched.Policy{sched.RRA, sched.WAAC, sched.WAAM}

func detScheduler(t testing.TB, workers int) *Scheduler {
	s := NewScheduler(optSim(t, workload.Summarization))
	s.MaxBatch = 512
	s.MaxND = 32
	s.Workers = workers
	return s
}

// TestFindBestDeterministicAcrossWorkers asserts the acceptance
// criterion: FindBest returns a byte-identical Result — including
// Evals, now that pruning uses only the deterministic seed bound — for
// worker counts 1, 2 and 8 on a fixed deployment.
func TestFindBestDeterministicAcrossWorkers(t *testing.T) {
	for _, bound := range []float64{8, 20, math.Inf(1)} {
		var want Result
		for i, workers := range []int{1, 2, 8} {
			s := detScheduler(t, workers)
			res, err := s.FindBest(allPolicies, bound)
			if err != nil {
				t.Fatalf("workers=%d bound=%v: %v", workers, bound, err)
			}
			if i == 0 {
				if !res.Found && math.IsInf(bound, 1) {
					t.Fatalf("bound=Inf: baseline search found nothing")
				}
				want = res
				continue
			}
			if !reflect.DeepEqual(res, want) {
				t.Fatalf("workers=%d bound=%v: result diverged\n got %+v\nwant %+v",
					workers, bound, res, want)
			}
		}
	}
}

// TestMinLatencyDeterministicAcrossWorkers covers the full-grid scans,
// where even Evals must be identical (no pruning).
func TestMinLatencyDeterministicAcrossWorkers(t *testing.T) {
	s1 := detScheduler(t, 1)
	min1, err := s1.MinLatency(allPolicies)
	if err != nil {
		t.Fatal(err)
	}
	s8 := detScheduler(t, 8)
	min8, err := s8.MinLatency(allPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if min1 != min8 {
		t.Fatalf("MinLatency diverged: workers=1 %v, workers=8 %v", min1, min8)
	}
}

// TestExhaustiveDeterministicAcrossWorkers: exhaustive search has no
// pruning, so the whole Result including Evals must match.
func TestExhaustiveDeterministicAcrossWorkers(t *testing.T) {
	s1 := detScheduler(t, 1)
	s1.MaxBatch = 128
	r1, err := s1.Exhaustive(allPolicies, 20)
	if err != nil {
		t.Fatal(err)
	}
	s8 := detScheduler(t, 8)
	s8.MaxBatch = 128
	r8, err := s8.Exhaustive(allPolicies, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("Exhaustive diverged:\n got %+v\nwant %+v", r8, r1)
	}
}

// TestSeedBoundStillFindsOptimum: the cross-branch seed bound may only
// prune configurations that cannot win. Compare the parallel B&B result
// against the exhaustive optimum at several bounds.
func TestSeedBoundStillFindsOptimum(t *testing.T) {
	s := detScheduler(t, 8)
	s.MaxBatch = 128
	for _, bound := range []float64{8, 20, math.Inf(1)} {
		bb, err := s.FindBest(allPolicies, bound)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := s.Exhaustive(allPolicies, bound)
		if err != nil {
			t.Fatal(err)
		}
		if bb.Found != ex.Found {
			t.Fatalf("bound %v: found mismatch bb=%v ex=%v", bound, bb.Found, ex.Found)
		}
		if !bb.Found {
			continue
		}
		if bb.Best.Throughput < ex.Best.Throughput*(1-s.TolT-0.02) {
			t.Fatalf("bound %v: parallel B&B tput %v far below exhaustive %v",
				bound, bb.Best.Throughput, ex.Best.Throughput)
		}
	}
}

func TestConfigLessIsTotalOrder(t *testing.T) {
	a := sched.Config{Policy: sched.RRA, BD: 64, BE: 1, ND: 8, TP: sched.TPSpec{Degree: 1}}
	b := sched.Config{Policy: sched.WAAC, BE: 4, BD: 1, Bm: 2, TP: sched.TPSpec{Degree: 1}}
	if !configLess(a, b) || configLess(b, a) {
		t.Fatal("RRA must order before WAAC")
	}
	if configLess(a, a) {
		t.Fatal("irreflexive")
	}
	c := a
	c.BD = 65
	if !configLess(a, c) || configLess(c, a) {
		t.Fatal("BD must break the tie")
	}
}

func benchFindBest(b *testing.B, workers int) {
	s := detScheduler(b, workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FindBest(allPolicies, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindBestSequential/Parallel compare the single-worker search
// against the GOMAXPROCS-sized pool on the same deployment.
func BenchmarkFindBestSequential(b *testing.B) { benchFindBest(b, 1) }

func BenchmarkFindBestParallel(b *testing.B) { benchFindBest(b, 0) }
