// Package core implements the paper's primary contribution: XSimulator,
// the execution-timeline estimator driven by sequence-length
// distributions (§6), and XScheduler, the constraint-aware
// branch-and-bound scheduling algorithm (§5).
package core

import (
	"fmt"
	"math"

	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/profile"
	"exegpt/internal/sched"
	"exegpt/internal/seqdist"
)

// KVMemMargin scales the steady-state KV estimate for feasibility
// checks, covering workload variance (§5.2 buffer time / §7.9).
const KVMemMargin = 1.25

// MemReserve is the fraction of GPU memory kept free for activation
// workspace and allocator slack.
const MemReserve = 0.05

// Simulator is XSimulator: it constructs execution timelines for
// candidate schedules from profiled layer times and the input/output
// sequence-length distributions.
//
// Simulator.Estimate is the reference evaluation path; the Evaluator
// type wraps a Simulator with memoization and scratch reuse for the
// scheduler's hot loop and is asserted bit-identical to it.
type Simulator struct {
	Model   model.Model
	Cluster hw.Cluster // the deployment sub-cluster
	Profile *profile.Table
	In, Out *seqdist.Dist
	// LatencyPctl is the output-length percentile the latency estimate
	// targets; the paper uses the 99th percentile sequence (§7.1).
	LatencyPctl float64

	// Schedule-invariant scalars hoisted at construction so the
	// Estimate hot path never rescans the O(Max) distributions.
	inMean, outMean float64
	inMeanRounded   int     // int(round(inMean)), the per-query prompt tokens
	ctxMean         float64 // meanCtx()
	steadyKV        float64 // steadyKVTokensPerQuery()
	s99             int     // Out.Percentile(s99Pctl)
	s99Pctl         float64 // the percentile s99 was computed at
	capBytes        int64   // capacity()
}

// NewSimulator validates inputs and returns a simulator.
func NewSimulator(m model.Model, cluster hw.Cluster, tab *profile.Table, in, out *seqdist.Dist) (*Simulator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if tab == nil {
		return nil, fmt.Errorf("core: nil profile table")
	}
	if err := tab.Validate(); err != nil {
		return nil, err
	}
	if in == nil || out == nil {
		return nil, fmt.Errorf("core: nil sequence distribution")
	}
	s := &Simulator{Model: m, Cluster: cluster, Profile: tab, In: in, Out: out, LatencyPctl: 0.99}
	s.inMean = in.Mean()
	s.outMean = out.Mean()
	s.inMeanRounded = int(math.Round(s.inMean))
	pos := out.MeanActivePosition()
	// Mean self(+cross) attention context of an active decode slot in
	// steady state: prompt (or cross) context plus generated-so-far.
	s.ctxMean = s.inMean + pos + 1
	// Mean cached tokens an active query holds (prompt for decoder-only
	// or cross cache for enc-dec, plus generated-so-far).
	s.steadyKV = s.inMean + pos + 1
	s.s99Pctl = s.LatencyPctl
	s.s99 = out.Percentile(s.s99Pctl)
	s.capBytes = int64(float64(cluster.GPU.MemoryBytes) * (1 - MemReserve))
	return s, nil
}

// Estimate is the simulated outcome of one schedule.
type Estimate struct {
	Config sched.Config
	Alloc  sched.Allocation
	// Feasible is false when the schedule does not fit in GPU memory or
	// is structurally invalid; Reason explains why.
	Feasible bool
	Reason   string
	// Throughput in sequences/second; Latency is the time to generate a
	// LatencyPctl-length output sequence.
	Throughput float64
	Latency    float64
	// EncTime is the encode-phase (RRA) or encode-traversal (WAA) time;
	// DecIterTime is the steady-state per-iteration decode period.
	EncTime     float64
	DecIterTime float64
	// CycleTime is the RRA encode+ND-decodes cycle, or the WAA steady
	// iteration period.
	CycleTime float64
	// PeakMemPerGPU is the estimated peak bytes on the most loaded
	// encoder- and decoder-role GPU.
	PeakEncMem, PeakDecMem int64
}

func infeasible(cfg sched.Config, reason string) Estimate {
	return Estimate{Config: cfg, Feasible: false, Reason: reason,
		Throughput: 0, Latency: math.Inf(1)}
}

// linkClass returns the collective link class for a stage.
func linkClass(s sched.Stage) profile.LinkClass {
	if s.CrossNode {
		return profile.InterNode
	}
	return profile.IntraNode
}

// ppClass returns the link class between consecutive stages; adjacent
// rank blocks may span nodes, approximated by the from-stage boundary.
func (s *Simulator) ppClass(from sched.Stage) profile.LinkClass {
	last := from.FirstRank + from.TP - 1
	next := (last + 1) % s.Cluster.TotalGPUs()
	if s.Cluster.NodeOf(last) != s.Cluster.NodeOf(next) {
		return profile.InterNode
	}
	return profile.IntraNode
}

// encStageTime returns one stage's encoding time for a batch with
// totalTokens prompt tokens, plus the pipeline handover.
func (s *Simulator) encStageTime(st sched.Stage, totalTokens int, meanSeq float64) (float64, error) {
	if st.EncLayers == 0 || totalTokens == 0 {
		return 0, nil
	}
	layer, err := s.Profile.EncodeLayer(totalTokens, meanSeq, st.TP, linkClass(st))
	if err != nil {
		return 0, err
	}
	send, err := s.Profile.PPSend(totalTokens, s.ppClass(st))
	if err != nil {
		return 0, err
	}
	return float64(st.EncLayers)*layer + send, nil
}

// decStageTime returns one stage's decode-iteration time for batch
// queries with mean attention context ctx.
func (s *Simulator) decStageTime(st sched.Stage, batch int, ctx float64) (float64, error) {
	if st.DecLayers == 0 || batch == 0 {
		return 0, nil
	}
	layer, err := s.Profile.DecodeLayer(batch, ctx, st.TP, linkClass(st))
	if err != nil {
		return 0, err
	}
	send, err := s.Profile.PPSend(batch, s.ppClass(st))
	if err != nil {
		return 0, err
	}
	return float64(st.DecLayers)*layer + send, nil
}

// pipelinePeriod returns the steady-state period of one autoregressive
// iteration over the stage times when m micro-batches are in flight:
// max(Σ t_s, m * max_s t_s). With m=1 the pipeline serializes to the
// traversal (Figure 4(b)); more micro-batches overlap stages
// (Figure 4(c)) at the cost of per-micro-batch efficiency.
func pipelinePeriod(stageTimes []float64, m int) float64 {
	if m < 1 {
		m = 1
	}
	var sum, max float64
	for _, t := range stageTimes {
		sum += t
		if t > max {
			max = t
		}
	}
	if p := float64(m) * max; p > sum {
		return p
	}
	return sum
}

// traversal returns Σ t_s: the time one token takes through the
// pipeline.
func traversal(stageTimes []float64) float64 {
	var sum float64
	for _, t := range stageTimes {
		sum += t
	}
	return sum
}

// meanCtx returns the mean self(+cross) attention context of an active
// decode slot in steady state, precomputed at construction.
func (s *Simulator) meanCtx() float64 { return s.ctxMean }

// steadyKVTokensPerQuery returns the mean cached tokens an active query
// holds (prompt for decoder-only or cross cache for enc-dec, plus
// generated-so-far), precomputed at construction.
func (s *Simulator) steadyKVTokensPerQuery() float64 { return s.steadyKV }

// pctlLen returns the LatencyPctl output length, served from the
// construction-time cache when the percentile is unchanged (callers may
// still adjust LatencyPctl after construction; that path recomputes
// without mutating the shared Simulator).
func (s *Simulator) pctlLen() float64 {
	if s.LatencyPctl == s.s99Pctl {
		return float64(s.s99)
	}
	return float64(s.Out.Percentile(s.LatencyPctl))
}

// kvBytes returns the KV bytes for tokens cached tokens across layers
// layers, sharded over tp.
func (s *Simulator) kvBytes(tokens float64, layers, tp int) int64 {
	perLayer := float64(s.Model.KVBytesPerTokenLayer())
	return int64(tokens * perLayer * float64(layers) / float64(tp) * KVMemMargin)
}

// capacity returns the per-GPU usable memory, precomputed at
// construction.
func (s *Simulator) capacity() int64 { return s.capBytes }

// Estimate simulates the timeline of cfg and returns throughput/latency,
// dispatching through the per-family estimator registry (family.go).
func (s *Simulator) Estimate(cfg sched.Config) (Estimate, error) {
	if err := cfg.Validate(s.Cluster.TotalGPUs()); err != nil {
		return infeasible(cfg, err.Error()), nil
	}
	if fe, ok := familyEstimators[cfg.Policy]; ok {
		return fe.ref(s, cfg)
	}
	return infeasible(cfg, "unknown policy"), nil
}

// rraMicroBatches is the number of decode mini-batches RRA interleaves
// (Figure 4(a) shows two).
const rraMicroBatches = 2

// estimateRRA simulates the RRA schedule: one encoding phase then ND
// decoding iterations, repeated (§4.1, §6).
func (s *Simulator) estimateRRA(cfg sched.Config) (Estimate, error) {
	comp, err := seqdist.NewCompletionDist(s.Out, cfg.ND)
	if err != nil {
		return Estimate{}, err
	}
	frac := comp.PerPhaseCompletion()
	bd := cfg.BD
	be := int(math.Round(float64(bd) * frac))
	if be < 1 {
		be = 1
	}
	cfg.BE = be

	alloc, err := sched.AllocateRRA(s.Model, s.Cluster, cfg.TP)
	if err != nil {
		return infeasible(cfg, err.Error()), nil
	}

	// Encoding phase: the BE batch traverses all stages as
	// rraMicroBatches interleaved mini-batches (Figure 4(a)).
	encTokens := be * s.inMeanRounded
	microTokens := encTokens / rraMicroBatches
	if microTokens < 1 {
		microTokens = 1
	}
	encTimes := make([]float64, len(alloc.Stages))
	for i, st := range alloc.Stages {
		encTimes[i], err = s.encStageTime(st, microTokens, s.inMean)
		if err != nil {
			return Estimate{}, err
		}
	}
	encPhase := pipelinePeriod(encTimes, rraMicroBatches)

	// Decoding iterations u = 1..ND with decaying active batches.
	ctx := s.meanCtx()
	var decTotal, firstIter float64
	for u := 1; u <= cfg.ND; u++ {
		active := int(math.Ceil(float64(bd) * comp.ExpectedActiveFraction(u)))
		if active < 1 {
			active = 1
		}
		micro := active / rraMicroBatches
		if micro < 1 {
			micro = 1
		}
		times := make([]float64, len(alloc.Stages))
		for i, st := range alloc.Stages {
			times[i], err = s.decStageTime(st, micro, ctx)
			if err != nil {
				return Estimate{}, err
			}
		}
		iter := pipelinePeriod(times, rraMicroBatches)
		decTotal += iter
		if u == 1 {
			firstIter = iter
		}
	}
	cycle := encPhase + decTotal

	// Memory check on the most loaded stage: weights + steady KV for BD
	// queries' share of layers.
	kvTokens := s.steadyKVTokensPerQuery() * float64(bd)
	var peak int64
	for _, st := range alloc.Stages {
		mem := sched.WeightBytesPerGPU(s.Model, st) + s.kvBytes(kvTokens, st.DecLayers, st.TP)
		if mem > peak {
			peak = mem
		}
	}
	if peak > s.capacity() {
		e := infeasible(cfg, fmt.Sprintf("OOM: peak %d > capacity %d", peak, s.capacity()))
		e.PeakDecMem = peak
		return e, nil
	}

	// Throughput: BE completions per cycle.
	tput := float64(be) / cycle

	// Latency for the target-percentile sequence: the query decodes for
	// S99 iterations and sits through one encoding phase per ND
	// iterations (§4.1). The expected phase count S99/ND (a query joins
	// a cycle at a uniformly random offset) keeps Latency smooth and
	// strictly monotone in the encoding frequency.
	s99 := s.pctlLen()
	avgIter := decTotal / float64(cfg.ND)
	latency := encPhase*(1+s99/float64(cfg.ND)) + s99*avgIter

	return Estimate{
		Config: cfg, Alloc: alloc, Feasible: true,
		Throughput: tput, Latency: latency,
		EncTime: encPhase, DecIterTime: firstIter, CycleTime: cycle,
		PeakEncMem: peak, PeakDecMem: peak,
	}, nil
}

// waaProbe holds the schedule-invariant single-GPU cost and memory
// probes of §4.1 that drive every WAA encoder/decoder split.
type waaProbe struct {
	ce, cd                                  float64
	encCopy, decCopy, kvTotal, encTransient int64
}

// waaCostProbe estimates CE and CD on single GPUs to drive the WAA
// split (§4.1: the workload shapes the stage times used for
// allocation), plus the memory estimates WAA-M balances. The probe
// batch is fixed so that the derived allocation — and therefore the
// throughput/latency surfaces — stay stable along the B_E search axis,
// preserving the monotonicity Algorithm 1 exploits (§5.1). Both the
// reference path and the Evaluator consume this one helper, so the two
// cannot drift apart.
func (s *Simulator) waaCostProbe() (waaProbe, error) {
	const probeBE = 8
	probeEncTokens := probeBE * s.inMeanRounded
	probeBD := int(math.Round(probeBE * s.outMean))
	encLayers := s.Model.EncLayers
	if s.Model.DecoderOnly() {
		encLayers = s.Model.DecLayers
	}
	var p waaProbe
	encLayer, err := s.Profile.EncodeLayer(probeEncTokens, s.inMean, 1, profile.IntraNode)
	if err != nil {
		return waaProbe{}, err
	}
	p.ce = float64(encLayers) * encLayer
	decLayer, err := s.Profile.DecodeLayer(probeBD, s.ctxMean, 1, profile.IntraNode)
	if err != nil {
		return waaProbe{}, err
	}
	p.cd = float64(s.Model.DecLayers) * decLayer

	// Memory estimates for WAA-M, also at the probe batch.
	p.encCopy = int64(encLayers) * s.Model.DecLayerBytes()
	if !s.Model.DecoderOnly() {
		p.encCopy = int64(encLayers) * s.Model.EncLayerBytes()
	}
	p.decCopy = int64(s.Model.DecLayers) * s.Model.DecLayerBytes()
	p.kvTotal = s.kvBytes(s.steadyKV*float64(probeBD), s.Model.DecLayers, 1)
	p.encTransient = int64(2*probeEncTokens) * s.Model.KVBytesPerToken() // double-buffered prefill KV
	return p, nil
}

// estimateWAA simulates the WAA schedule: dedicated encoder and decoder
// pipelines running asynchronously (§4.1, §6).
func (s *Simulator) estimateWAA(cfg sched.Config) (Estimate, error) {
	be := cfg.BE
	bd := int(math.Round(float64(be) * s.outMean))
	if bd < 1 {
		bd = 1
	}
	cfg.BD = bd
	n := s.Cluster.TotalGPUs()

	p, err := s.waaCostProbe()
	if err != nil {
		return Estimate{}, err
	}
	encTokens := be * s.inMeanRounded
	ctx := s.meanCtx()

	encGPUs, decGPUs, err := sched.WAASplit(n, cfg.Policy, p.ce, p.cd,
		p.encCopy+p.encTransient, p.decCopy+p.kvTotal)
	if err != nil {
		return infeasible(cfg, err.Error()), nil
	}
	alloc, err := sched.AllocateWAA(s.Model, s.Cluster, cfg.Policy, encGPUs, decGPUs, cfg.TP)
	if err != nil {
		return infeasible(cfg, err.Error()), nil
	}

	// Encoder pipeline: pipelined over successive batches.
	encStages := alloc.EncStages()
	encTimes := make([]float64, len(encStages))
	for i, st := range encStages {
		encTimes[i], err = s.encStageTime(st, encTokens, s.inMean)
		if err != nil {
			return Estimate{}, err
		}
	}
	encTraversal := traversal(encTimes)
	encPeriod := 0.0
	for _, t := range encTimes {
		if t > encPeriod {
			encPeriod = t
		}
	}

	// Decoder pipeline with Bm micro-batches. More micro-batches than
	// pipeline stages add no overlap and only shrink per-micro-batch
	// efficiency, so the runner groups them; clamp accordingly (this
	// also keeps the Bm axis monotone for Algorithm 1, §5.1).
	decStages := alloc.DecStages()
	bm := cfg.Bm
	if bm > len(decStages) {
		bm = len(decStages)
	}
	micro := bd / bm
	if micro < 1 {
		micro = 1
	}
	decTimes := make([]float64, len(decStages))
	for i, st := range decStages {
		decTimes[i], err = s.decStageTime(st, micro, ctx)
		if err != nil {
			return Estimate{}, err
		}
	}
	decIter := pipelinePeriod(decTimes, bm)
	decTraversal := traversal(decTimes)

	// Steady-state period: the slower side gates (pipeline bubble
	// otherwise); the KV handover is staged through host memory and
	// overlaps compute, so it binds only if slower than both.
	kvXfer := s.Profile.KVTransfer(encTokens)
	period := math.Max(decIter, encPeriod)
	period = math.Max(period, kvXfer)

	// Memory feasibility per side.
	var peakEnc, peakDec int64
	for _, st := range encStages {
		mem := sched.WeightBytesPerGPU(s.Model, st) +
			int64(2*encTokens)*s.Model.KVBytesPerTokenLayer()*int64(max(st.EncLayers, 1))
		if mem > peakEnc {
			peakEnc = mem
		}
	}
	kvPerQuery := s.steadyKVTokensPerQuery()
	for _, st := range decStages {
		mem := sched.WeightBytesPerGPU(s.Model, st) + s.kvBytes(kvPerQuery*float64(bd), st.DecLayers, st.TP)
		if mem > peakDec {
			peakDec = mem
		}
	}
	if peakEnc > s.capacity() || peakDec > s.capacity() {
		e := infeasible(cfg, fmt.Sprintf("OOM: enc %d / dec %d > capacity %d", peakEnc, peakDec, s.capacity()))
		e.PeakEncMem, e.PeakDecMem = peakEnc, peakDec
		return e, nil
	}

	// Throughput: BD/meanOut = BE completions per decode iteration.
	tput := float64(be) / period

	// Latency: encode traversal + KV handover + S99 decode iterations
	// (token period), §4.1/§6 including buffer for dynamic adjustment.
	s99 := s.pctlLen()
	latency := encTraversal + kvXfer + (s99-1)*period + decTraversal
	latency *= 1.05 // §6: buffer time for dynamic adjustments

	return Estimate{
		Config: cfg, Alloc: alloc, Feasible: true,
		Throughput: tput, Latency: latency,
		EncTime: encTraversal, DecIterTime: decIter, CycleTime: period,
		PeakEncMem: peakEnc, PeakDecMem: peakDec,
	}, nil
}
