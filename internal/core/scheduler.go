// XScheduler: the constraint-aware scheduling algorithm of §5.
//
// The optimization problem is
//
//	arg max Throughput(B_E, B_D, B_m, TP, F_E, S)
//	s.t.    Latency(...) < LBound
//
// and is monotonic: every control variable is oriented so that
// increasing it increases both throughput and latency (§5, §4.2). The
// search runs Algorithm 1 (branch-and-bound over two-dimensional blocks
// with corner-based pruning) per scheduling policy and per tensor-
// parallel configuration, then returns the best feasible schedule.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"exegpt/internal/par"
	"exegpt/internal/sched"
)

// Axis is one oriented control variable: index i in [0, Size) maps to a
// concrete value such that increasing i increases both throughput and
// latency.
type Axis struct {
	Name string
	// Values in orientation order.
	Values []int
}

// Size returns the number of grid points.
func (a Axis) Size() int { return len(a.Values) }

// batchAxis returns a geometric batch grid 1..max (throughput and
// latency both increase with batch size).
func batchAxis(name string, max int) Axis {
	var vals []int
	for v := 1; v < max; {
		vals = append(vals, v)
		step := v / 4
		if step < 1 {
			step = 1
		}
		v += step
	}
	vals = append(vals, max)
	return Axis{Name: name, Values: vals}
}

// ndAxis returns the RRA encoding-frequency axis: decreasing ND
// increases both throughput and latency (§4.1), so values are ordered
// from large ND to small.
func ndAxis(max int) Axis {
	var vals []int
	for v := 1; v < max; {
		vals = append(vals, v)
		step := v / 3
		if step < 1 {
			step = 1
		}
		v += step
	}
	vals = append(vals, max)
	// Reverse: index 0 = largest ND (lowest tput, lowest latency).
	for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
		vals[i], vals[j] = vals[j], vals[i]
	}
	return Axis{Name: "ND", Values: vals}
}

// bmAxis returns the WAA decoder micro-batch axis: more micro-batches
// reduce latency and throughput (§4.2), so values run from many to few.
func bmAxis(max int) Axis {
	vals := make([]int, 0, max)
	for v := max; v >= 1; v-- {
		vals = append(vals, v)
	}
	return Axis{Name: "Bm", Values: vals}
}

// perf is the (latency, throughput) of one grid point, Algorithm 1's
// perf().
type perf struct {
	lat, tput float64
	est       Estimate
}

// Scheduler is XScheduler.
//
// A single search call (FindBest, MinLatency, Exhaustive) fans its
// (policy, TP) branch-and-bound roots out to a bounded worker pool; the
// Scheduler itself must not be shared by concurrent search calls, but
// one search internally uses Workers goroutines, each probing the
// shared read-only Simulator through its own memoized Evaluator.
type Scheduler struct {
	Sim *Simulator
	// TolT and TolL are the throughput/latency tolerances of
	// Algorithm 1; they absorb small non-monotonicities (§5.1).
	// Expressed as fractions of the latency bound / running best.
	TolT, TolL float64
	// MaxBatch and MaxND bound the search space.
	MaxBatch, MaxND, MaxBm int
	// Workers is the number of concurrent branch workers; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Evals counts simulator invocations of the last search (the §7.7
	// cost comparison). Probes are counted pre-prune against a
	// deterministic seed bound, so the count is identical across worker
	// counts and runs (see FindBest).
	Evals int
	// DisableMemo routes every probe through the reference
	// Simulator.Estimate instead of the per-worker memoized Evaluators.
	// The selected schedule is identical either way (the equivalence
	// tests assert it); the flag exists for benchmarks comparing the
	// paths and for debugging.
	DisableMemo bool
	// Frontier is the merged latency→throughput Pareto frontier
	// discovered by the last FindBestMany call (canonical branch merge
	// order, so it is deterministic across worker counts). It is
	// JSON-serializable, which makes it a natural per-shard result for
	// future multi-process sweep sharding.
	Frontier Frontier

	// evs are the per-worker Evaluators, sized by ensureEvals at the
	// start of each search; evs[w] is only ever touched by pool worker w
	// (par.ForEachWorker), so no locking is needed. Memos persist across
	// searches on the same Scheduler: everything cached is
	// schedule-invariant for the underlying Simulator.
	evs []*Evaluator
}

// NewScheduler returns a scheduler with the paper's default tolerances
// (5%, Table 5).
func NewScheduler(sim *Simulator) *Scheduler {
	return &Scheduler{Sim: sim, TolT: 0.05, TolL: 0.05,
		MaxBatch: 4096, MaxND: 64, MaxBm: 8}
}

// workers resolves the effective worker-pool size.
func (s *Scheduler) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ensureEvals sizes the per-worker Evaluator slice for a search. Called
// from the single-goroutine entry points before any worker runs.
func (s *Scheduler) ensureEvals() {
	if s.DisableMemo {
		return
	}
	n := s.workers()
	for len(s.evs) < n {
		s.evs = append(s.evs, NewEvaluator(s.Sim))
	}
}

// eval returns worker w's estimate path: its memoized Evaluator, or the
// reference Simulator when DisableMemo is set.
func (s *Scheduler) eval(w int) *Evaluator {
	if s.DisableMemo {
		return nil
	}
	return s.evs[w]
}

// ResetEvaluators drops the per-worker Evaluators and their memos so
// the next search starts cold. Benchmarks use it to separate cold-start
// from steady-state search cost; normal callers never need it (memos
// hold only schedule-invariant state, so staying warm is always
// correct).
func (s *Scheduler) ResetEvaluators() { s.evs = nil }

// point evaluates one configuration on ev (nil means the reference
// Simulator path), counting the evaluation into the caller's
// branch-local counter.
func (s *Scheduler) point(ev *Evaluator, policy sched.Policy, tp sched.TPSpec, axes []Axis, idx []int, evals *int) (perf, error) {
	cfg := sched.Config{Policy: policy, TP: tp, BE: 1, BD: 1, Bm: 1, ND: 1}
	for d, a := range axes {
		v := a.Values[idx[d]]
		switch a.Name {
		case "BD":
			cfg.BD = v
		case "BE":
			cfg.BE = v
		case "ND":
			cfg.ND = v
		case "Bm":
			cfg.Bm = v
		default:
			return perf{}, fmt.Errorf("core: unknown axis %q", a.Name)
		}
	}
	*evals++
	var est Estimate
	var err error
	if ev != nil {
		est, err = ev.Estimate(cfg)
	} else {
		est, err = s.Sim.Estimate(cfg)
	}
	if err != nil {
		return perf{}, err
	}
	if !est.Feasible {
		return perf{lat: math.Inf(1), tput: 0, est: est}, nil
	}
	return perf{lat: est.Latency, tput: est.Throughput, est: est}, nil
}

// block is an axis-aligned index box [lo, hi] (inclusive).
type block struct {
	lo, hi []int
	upp    perf // perf at hi corner (upper bound on tput in the box)
	lowr   perf // perf at lo corner (lower bound on latency)
}

// upperTput is the throughput upper bound a block proves. When the top
// corner is infeasible (e.g. out of memory at the largest batch) it
// bounds nothing: the interior may hold the optimum, so the bound is
// +Inf and the block must be split rather than pruned.
func (b block) upperTput() float64 {
	if !b.upp.est.Feasible {
		return math.Inf(1)
	}
	return b.upp.tput
}

func (b block) isPoint() bool {
	for d := range b.lo {
		if b.lo[d] != b.hi[d] {
			return false
		}
	}
	return true
}

// widestDim returns the dimension with the largest index span.
func (b block) widestDim() int {
	best, span := 0, -1
	for d := range b.lo {
		if w := b.hi[d] - b.lo[d]; w > span {
			span = w
			best = d
		}
	}
	return best
}

// Result is the outcome of a scheduling search.
type Result struct {
	Best  Estimate
	Found bool
	// Evals is the total simulator invocations across all branches. All
	// pruning information is deterministic (the seed bound comes from a
	// fixed corner-probe phase, everything else is branch-local), so
	// Evals is identical across runs and worker counts.
	Evals int
}

// configLess is a canonical total order on configurations, used to
// break exact throughput ties deterministically no matter in which
// order concurrent branches deliver their results.
func configLess(a, b sched.Config) bool {
	if a.Policy != b.Policy {
		return a.Policy < b.Policy
	}
	if a.TP.Degree != b.TP.Degree {
		return a.TP.Degree < b.TP.Degree
	}
	if a.TP.GPUs != b.TP.GPUs {
		return a.TP.GPUs < b.TP.GPUs
	}
	if a.BD != b.BD {
		return a.BD < b.BD
	}
	if a.BE != b.BE {
		return a.BE < b.BE
	}
	if a.ND != b.ND {
		return a.ND < b.ND
	}
	return a.Bm < b.Bm
}

// better reports whether a should replace b as the incumbent: strictly
// higher throughput, or equal throughput with a canonically smaller
// configuration. The tie-break makes the selected schedule independent
// of evaluation order, which parallel search does not control.
func better(a, b Estimate) bool {
	if a.Throughput != b.Throughput {
		return a.Throughput > b.Throughput
	}
	return configLess(a.Config, b.Config)
}

// branch is one (policy, TP) root of Algorithm 1.
type branch struct {
	policy sched.Policy
	tp     sched.TPSpec
}

// branches enumerates the search roots in canonical order: policies as
// given, TP choices in tpChoices order. Reduction walks the same order,
// so results are deterministic regardless of completion order.
func (s *Scheduler) branches(policies []sched.Policy) []branch {
	var out []branch
	for _, policy := range policies {
		for _, tp := range s.tpChoices() {
			if !admitBranch(policy, tp, s.Sim.Cluster.TotalGPUs()) {
				continue // e.g. a dedicated decode pool cannot take every GPU
			}
			out = append(out, branch{policy: policy, tp: tp})
		}
	}
	return out
}

// forEachBranch runs fn(worker, i) for every branch index on the
// worker pool. fn must only write to per-index state and to the
// per-worker state slot it is handed.
func (s *Scheduler) forEachBranch(n int, fn func(worker, i int)) {
	par.ForEachWorker(n, s.workers(), fn)
}

// branchOutcome is the per-branch search result, reduced canonically
// after all workers finish.
type branchOutcome struct {
	est   Estimate
	found bool
	evals int
	err   error
}

// branchCorners carries the phase-1 evaluations of a branch's initial
// block corners into bbSearch, so phase 2 does not re-evaluate them.
type branchCorners struct {
	top, bottom perf
}

// seedTput returns the strongest feasible, bound-satisfying corner
// throughput this branch proves, or (0, false).
func (c branchCorners) seedTput(lbound float64) (float64, bool) {
	t, ok := 0.0, false
	for _, p := range []perf{c.top, c.bottom} {
		if p.est.Feasible && p.lat < lbound && p.tput > t {
			t, ok = p.tput, true
		}
	}
	return t, ok
}

// incumbent tracks one branch search's running state: the throughput
// pruning bound, the best feasible bound-satisfying estimate found so
// far, and an optional Frontier recording every feasible point
// evaluated (the multi-bound search resumes from it; single-bound
// FindBest keeps no history and leaves it nil).
type incumbent struct {
	bound    float64
	best     Estimate
	found    bool
	frontier *Frontier
}

// consider offers one evaluated point to the incumbent under lbound.
func (inc *incumbent) consider(p *perf, lbound float64) {
	if inc.frontier != nil {
		// Record out-of-bound points too: they answer looser bounds
		// later without a new probe.
		inc.frontier.Add(&p.est)
	}
	if p.est.Feasible && p.lat < lbound {
		if p.tput > inc.bound {
			inc.bound = p.tput
		}
		if !inc.found || better(p.est, inc.best) {
			inc.best = p.est
			inc.found = true
		}
	}
}

// epsLat returns the Line 14 latency tolerance for a bound.
func (s *Scheduler) epsLat(lbound float64) float64 {
	if math.IsInf(lbound, 1) {
		return 0
	}
	return s.TolL * lbound
}

// bbLoop drains the block queue of Algorithm 1 for one (policy, TP)
// branch under lbound, updating inc with every evaluated point. Blocks
// discarded because their low corner cannot satisfy the latency bound
// (Line 14) go to deferSink when it is non-nil: they are exactly the
// blocks a looser bound must revisit, so the multi-bound search
// persists them for resumption instead of re-splitting from the root.
// A nil sink drops them, which is the single-bound behavior.
func (s *Scheduler) bbLoop(ev *Evaluator, policy sched.Policy, tp sched.TPSpec, axes []Axis, lbound float64, inc *incumbent, queue []block, deferSink *[]block, evals *int) error {
	epsL := s.epsLat(lbound)

	// canBeat reports whether a block with throughput upper bound upp
	// could still improve on the incumbent T* (within the TolT
	// tolerance, Line 18).
	canBeat := func(upp float64) bool {
		return inc.bound == 0 || upp+s.TolT*inc.bound >= inc.bound
	}

	for len(queue) > 0 {
		// Line 6: pop the block with the max upper bound. A linear scan
		// beats keeping the queue sorted: every pop is O(q) with no
		// comparator closures, and the queue mutates on every iteration
		// anyway. Ties break by current queue position (swap-with-last
		// removal reorders it), which is deterministic for a given probe
		// history — the only property the search relies on.
		bi := 0
		for k := 1; k < len(queue); k++ {
			if queue[k].upperTput() > queue[bi].upperTput() {
				bi = k
			}
		}
		b := queue[bi]
		queue[bi] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Line 18 pruning (lazy): drop blocks that cannot beat T*.
		if !canBeat(b.upperTput()) {
			continue
		}
		if b.isPoint() {
			inc.consider(&b.upp, lbound)
			continue
		}

		// Lines 7-10: split-dimension heuristic. Evaluate the two
		// "opposite corners" along the two widest dims and split
		// perpendicular to the better one.
		dim := b.widestDim()
		if d2 := secondWidest(b, dim); d2 >= 0 {
			tl := cornerSwap(b, dim) // low in dim, high elsewhere
			br := cornerSwap(b, d2)  // low in d2, high elsewhere
			ptl, err := s.point(ev, policy, tp, axes, tl, evals)
			if err != nil {
				return err
			}
			pbr, err := s.point(ev, policy, tp, axes, br, evals)
			if err != nil {
				return err
			}
			inc.consider(&ptl, lbound)
			inc.consider(&pbr, lbound)
			// Pick the corner with higher throughput satisfying the
			// bound and split the dimension that corner holds low: that
			// separates its feasible half from the infeasible one.
			if pbr.lat < lbound && (ptl.lat >= lbound || pbr.tput > ptl.tput) {
				dim = d2
			}
		}

		mid := (b.lo[dim] + b.hi[dim]) / 2
		for _, half := range splitAt(b, dim, mid) {
			upp, err := s.point(ev, policy, tp, axes, half.hi, evals)
			if err != nil {
				return err
			}
			lowr, err := s.point(ev, policy, tp, axes, half.lo, evals)
			if err != nil {
				return err
			}
			inc.consider(&upp, lbound)
			inc.consider(&lowr, lbound)
			half.upp, half.lowr = upp, lowr
			// Line 14: keep only blocks whose lower corner can satisfy
			// the latency bound (within tolerance); defer the rest for
			// looser bounds when resumption state is kept.
			if lowr.lat < lbound+epsL {
				// Line 18: and whose upper bound can improve T*.
				if canBeat(half.upperTput()) {
					queue = append(queue, half)
				}
			} else if deferSink != nil {
				*deferSink = append(*deferSink, half)
			}
		}
	}
	return nil
}

// bbSearch runs Algorithm 1 over the axes for one (policy, TP) choice.
// seed is the deterministic cross-branch throughput lower bound derived
// from every branch's corner probes (FindBest phase 1): it only ever
// tightens pruning, and — under the monotone-corner assumption (see
// FindBest) — it can never prune a point whose throughput reaches the
// global optimum. Because the seed is fixed before any branch expands a
// block, the whole search (including Evals) is deterministic.
func (s *Scheduler) bbSearch(ev *Evaluator, policy sched.Policy, tp sched.TPSpec, axes []Axis, lbound, seed float64, c branchCorners, evals *int) (Estimate, bool, error) {
	lo := make([]int, len(axes))
	hi := make([]int, len(axes))
	for d, a := range axes {
		hi[d] = a.Size() - 1
	}

	// Line 1-3: initial block (corners pre-evaluated in phase 1); if
	// the top corner satisfies the constraint it is optimal.
	top, bottom := c.top, c.bottom
	if top.lat < lbound && top.est.Feasible {
		return top.est, true, nil
	}

	// The incumbent bound starts at the deterministic cross-branch
	// seed, tightened by every feasible bound-satisfying point this
	// branch evaluates. Throughputs are nonnegative, so 0 means "no
	// bound yet".
	inc := incumbent{bound: seed}
	inc.consider(&bottom, lbound)
	inc.consider(&top, lbound)

	b0 := block{lo: lo, hi: hi, upp: top, lowr: bottom}
	if err := s.bbLoop(ev, policy, tp, axes, lbound, &inc, []block{b0}, nil, evals); err != nil {
		return Estimate{}, false, err
	}
	return inc.best, inc.found, nil
}

// secondWidest returns the widest dimension other than skip, or -1.
func secondWidest(b block, skip int) int {
	best, span := -1, 0
	for d := range b.lo {
		if d == skip {
			continue
		}
		if w := b.hi[d] - b.lo[d]; w > span {
			span = w
			best = d
		}
	}
	return best
}

// cornerSwap returns the hi corner with dimension d dropped to lo.
func cornerSwap(b block, d int) []int {
	idx := append([]int(nil), b.hi...)
	idx[d] = b.lo[d]
	return idx
}

// splitAt splits b at index mid along dim into two blocks.
func splitAt(b block, dim, mid int) []block {
	if mid >= b.hi[dim] {
		mid = b.hi[dim] - 1
	}
	if mid < b.lo[dim] {
		mid = b.lo[dim]
	}
	lo1 := append([]int(nil), b.lo...)
	hi1 := append([]int(nil), b.hi...)
	hi1[dim] = mid
	lo2 := append([]int(nil), b.lo...)
	lo2[dim] = mid + 1
	hi2 := append([]int(nil), b.hi...)
	return []block{{lo: lo1, hi: hi1}, {lo: lo2, hi: hi2}}
}

// tpChoices enumerates the partial tensor-parallelism options for the
// cluster: degree 1 (no TP) plus, per profiled degree d > 1, every
// multiple of d GPUs up to the cluster size (§5.1 fixes the degree and
// varies the applied GPU count).
func (s *Scheduler) tpChoices() []sched.TPSpec {
	n := s.Sim.Cluster.TotalGPUs()
	choices := []sched.TPSpec{{Degree: 1}}
	for _, d := range s.Sim.Profile.TPDegrees {
		if d <= 1 || d > n {
			continue
		}
		for g := d; g <= n; g += d {
			choices = append(choices, sched.TPSpec{Degree: d, GPUs: g})
		}
	}
	return choices
}

// probeCorners evaluates one branch's initial block corners — phase 1
// of FindBest and FindBestMany — returning the corner perfs and the
// root block's lo/hi index vectors.
func (s *Scheduler) probeCorners(ev *Evaluator, j branch, axes []Axis, evals *int) (c branchCorners, lo, hi []int, err error) {
	lo = make([]int, len(axes))
	hi = make([]int, len(axes))
	for d, a := range axes {
		hi[d] = a.Size() - 1
	}
	c.top, err = s.point(ev, j.policy, j.tp, axes, hi, evals)
	if err == nil {
		c.bottom, err = s.point(ev, j.policy, j.tp, axes, lo, evals)
	}
	return c, lo, hi, err
}

// FindBest runs Algorithm 1 for every policy in policies and every TP
// choice and returns the highest-throughput schedule satisfying lbound.
//
// The search runs in two deterministic phases on the worker pool.
// Phase 1 evaluates every branch's initial block corners — a fixed set
// — and derives the seed throughput lower bound: the best feasible,
// bound-satisfying corner anywhere. Phase 2 runs each branch's
// branch-and-bound with that seed, tightened only by the branch's own
// discoveries. No timing-dependent information flows between branches,
// so the whole Result — including Evals — is identical across worker
// counts and runs.
//
// The selected schedule is the grid optimum as long as a block's
// top-corner throughput upper-bounds its interior (the §4.2
// monotonicity that Algorithm 1 assumes, with TolT absorbing small
// violations — Table 5 measures how well it holds): then pruning can
// only discard points strictly below the optimum, the grid-point
// corners at or above it are always evaluated, and the reduction walks
// branches in canonical order with a total-order tie-break (better).
func (s *Scheduler) FindBest(policies []sched.Policy, lbound float64) (Result, error) {
	jobs := s.branches(policies)
	s.ensureEvals()
	outs := make([]branchOutcome, len(jobs))

	// Phase 1: probe every branch's block corners; the probes are a
	// fixed set, so the derived seed bound is deterministic.
	corners := make([]branchCorners, len(jobs))
	s.forEachBranch(len(jobs), func(w, i int) {
		o := &outs[i]
		corners[i], _, _, o.err = s.probeCorners(s.eval(w), jobs[i], s.axesFor(jobs[i].policy), &o.evals)
	})
	seed := 0.0
	for i := range jobs {
		if outs[i].err != nil {
			return Result{}, outs[i].err
		}
		if t, ok := corners[i].seedTput(lbound); ok && t > seed {
			seed = t
		}
	}

	// Phase 2: branch-and-bound per branch under the shared seed.
	s.forEachBranch(len(jobs), func(w, i int) {
		j := jobs[i]
		o := &outs[i]
		o.est, o.found, o.err = s.bbSearch(s.eval(w), j.policy, j.tp, s.axesFor(j.policy), lbound, seed, corners[i], &o.evals)
	})
	return s.reduce(outs)
}

// branchState persists one (policy, TP) branch's search across the
// bounds of a FindBestMany pass.
type branchState struct {
	axes    []Axis
	corners branchCorners
	// deferred holds blocks discarded by the Line 14 latency test at a
	// processed bound, with their corner evaluations. A looser bound
	// re-admits the ones whose low corner now satisfies it and
	// re-splits from there instead of from the root.
	deferred []block
	// frontier accumulates every feasible point the branch evaluated,
	// Pareto-reduced; it seeds looser bounds' incumbents so previously
	// discovered schedules are never re-enumerated.
	frontier Frontier
}

// resumeSearch continues a branch's Algorithm 1 at lbound from the
// state persisted by tighter bounds. The incumbent starts from the
// frontier's best bound-satisfying point and the cross-bound seed;
// enumeration restarts only from the deferred blocks the new bound
// unlocks.
func (s *Scheduler) resumeSearch(ev *Evaluator, j branch, lbound, seed float64, st *branchState, evals *int) (Estimate, bool, error) {
	// Line 1-3 short-circuit, as in bbSearch: a feasible top corner is
	// the branch optimum under the monotone-corner assumption.
	if st.corners.top.lat < lbound && st.corners.top.est.Feasible {
		return st.corners.top.est, true, nil
	}
	inc := incumbent{bound: seed, frontier: &st.frontier}
	if est, ok := st.frontier.BestUnder(lbound); ok {
		inc.best, inc.found = est, true
		if est.Throughput > inc.bound {
			inc.bound = est.Throughput
		}
	}
	// Admit the deferred blocks this bound unlocks; keep the rest for
	// looser bounds. The compaction preserves deferral order, so the
	// whole pass stays deterministic.
	epsL := s.epsLat(lbound)
	var queue []block
	keep := st.deferred[:0]
	for _, b := range st.deferred {
		if b.lowr.lat < lbound+epsL {
			queue = append(queue, b)
		} else {
			keep = append(keep, b)
		}
	}
	st.deferred = keep
	if err := s.bbLoop(ev, j.policy, j.tp, st.axes, lbound, &inc, queue, &st.deferred, evals); err != nil {
		return Estimate{}, false, err
	}
	return inc.best, inc.found, nil
}

// FindBestMany runs FindBest for every latency bound in bounds in one
// amortized pass and returns one Result per bound, aligned with the
// input order (bounds may be unsorted and contain duplicates, +Inf, or
// unsatisfiably tight values). An empty bounds slice returns nil.
//
// The search processes the distinct bounds in ascending order and
// persists per-branch state between them: the best schedule found under
// a tighter bound is feasible under every looser one and seeds its
// pruning bound; blocks discarded as latency-infeasible re-enter the
// queue with their corner probes intact instead of being re-derived
// from the root; and each branch's Pareto frontier answers looser
// bounds for the already-explored region without new probes. Redundant
// enumeration across bounds — the dominant cost once probes are
// memoized — is therefore paid once.
//
// Determinism and equivalence: every seed is derived from completed
// phases only (the fixed corner set plus fully reduced earlier bounds),
// so the returned Results — including Evals — are identical across
// worker counts and runs. Per bound, Best and Found are bit-identical
// to a standalone FindBest at that bound under the same monotone-corner
// assumption that makes FindBest optimal (see its doc): both searches
// evaluate every point whose throughput can reach the bound's optimum,
// and both reduce with the same canonical tie-break. Evals differs from
// standalone FindBest by construction — that is the amortization —
// but deterministically: probes are charged to the bound whose pass
// issued them, with the shared corner probes charged to the tightest.
// The merged frontier is left in s.Frontier.
func (s *Scheduler) FindBestMany(policies []sched.Policy, bounds []float64) ([]Result, error) {
	if len(bounds) == 0 {
		return nil, nil
	}
	for _, b := range bounds {
		// NaN never satisfies a latency comparison and cannot key the
		// per-bound result map; reject it instead of silently returning
		// garbage for the whole sweep.
		if math.IsNaN(b) {
			return nil, fmt.Errorf("core: NaN latency bound")
		}
	}
	asc := append([]float64(nil), bounds...)
	sort.Float64s(asc)
	uniq := asc[:1]
	for _, b := range asc[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}

	jobs := s.branches(policies)
	s.ensureEvals()

	// Phase 1: probe every branch's initial block corners once — the
	// same fixed set FindBest evaluates — and set up resumable state
	// rooted at each branch's full grid block.
	states := make([]branchState, len(jobs))
	cornerEvals := make([]int, len(jobs))
	errs := make([]error, len(jobs))
	s.forEachBranch(len(jobs), func(w, i int) {
		st := &states[i]
		st.axes = s.axesFor(jobs[i].policy)
		var lo, hi []int
		st.corners, lo, hi, errs[i] = s.probeCorners(s.eval(w), jobs[i], st.axes, &cornerEvals[i])
		st.frontier.Add(&st.corners.top.est)
		st.frontier.Add(&st.corners.bottom.est)
		st.deferred = []block{{lo: lo, hi: hi, upp: st.corners.top, lowr: st.corners.bottom}}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2..n: one pass per distinct bound, ascending. Each pass
	// seeds from the corner probes at its own bound — exactly
	// FindBest's seed — tightened by the best schedule of the previous
	// (tighter) bound, which is feasible here too.
	byBound := make(map[float64]Result, len(uniq))
	prevBest := 0.0
	total := 0
	for bi, lbound := range uniq {
		seed := prevBest
		for i := range jobs {
			if t, ok := states[i].corners.seedTput(lbound); ok && t > seed {
				seed = t
			}
		}
		outs := make([]branchOutcome, len(jobs))
		s.forEachBranch(len(jobs), func(w, i int) {
			o := &outs[i]
			if bi == 0 {
				o.evals = cornerEvals[i]
			}
			o.est, o.found, o.err = s.resumeSearch(s.eval(w), jobs[i], lbound, seed, &states[i], &o.evals)
		})
		res, err := s.reduce(outs)
		if err != nil {
			return nil, err
		}
		byBound[lbound] = res
		total += res.Evals
		if res.Found && res.Best.Throughput > prevBest {
			prevBest = res.Best.Throughput
		}
	}
	s.Evals = total

	// Merge the per-branch frontiers in canonical branch order.
	s.Frontier = Frontier{}
	for i := range states {
		s.Frontier.Merge(&states[i].frontier)
	}

	out := make([]Result, len(bounds))
	for k, b := range bounds {
		out[k] = byBound[b]
	}
	return out, nil
}

// reduce folds branch outcomes in canonical order into one Result.
func (s *Scheduler) reduce(outs []branchOutcome) (Result, error) {
	var best Estimate
	found := false
	evals := 0
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return Result{}, o.err
		}
		evals += o.evals
		if o.found && (!found || better(o.est, best)) {
			best = o.est
			found = true
		}
	}
	s.Evals = evals
	return Result{Best: best, Found: found, Evals: evals}, nil
}

// scanGrid walks a branch's full grid, invoking visit on every point.
func (s *Scheduler) scanGrid(ev *Evaluator, j branch, evals *int, visit func(perf)) error {
	axes := s.axesFor(j.policy)
	idx := make([]int, len(axes))
	for {
		p, err := s.point(ev, j.policy, j.tp, axes, idx, evals)
		if err != nil {
			return err
		}
		visit(p)
		// Advance the mixed-radix counter.
		d := 0
		for d < len(axes) {
			idx[d]++
			if idx[d] < axes[d].Size() {
				break
			}
			idx[d] = 0
			d++
		}
		if d == len(axes) {
			break
		}
	}
	return nil
}

// MinLatency scans the search grid and returns the lowest achievable
// latency over the given policies (useful for picking meaningful
// latency bounds). Branches scan concurrently; the grid is fixed, so
// both the minimum and Evals are deterministic.
func (s *Scheduler) MinLatency(policies []sched.Policy) (float64, error) {
	jobs := s.branches(policies)
	s.ensureEvals()
	type minOutcome struct {
		min   float64
		evals int
		err   error
	}
	outs := make([]minOutcome, len(jobs))
	s.forEachBranch(len(jobs), func(w, i int) {
		o := &outs[i]
		o.min = math.Inf(1)
		o.err = s.scanGrid(s.eval(w), jobs[i], &o.evals, func(p perf) {
			if p.est.Feasible && p.lat < o.min {
				o.min = p.lat
			}
		})
	})
	min := math.Inf(1)
	evals := 0
	for _, o := range outs {
		if o.err != nil {
			return 0, o.err
		}
		evals += o.evals
		if o.min < min {
			min = o.min
		}
	}
	s.Evals = evals
	return min, nil
}

// Exhaustive evaluates every grid point (the §7.7 baseline that takes
// "five hours to an entire day" on the real system) and returns the
// true optimum over the same search space. Branches scan concurrently;
// no pruning is applied, so Evals is the full deterministic grid size.
func (s *Scheduler) Exhaustive(policies []sched.Policy, lbound float64) (Result, error) {
	jobs := s.branches(policies)
	s.ensureEvals()
	outs := make([]branchOutcome, len(jobs))
	s.forEachBranch(len(jobs), func(w, i int) {
		o := &outs[i]
		o.err = s.scanGrid(s.eval(w), jobs[i], &o.evals, func(p perf) {
			if p.est.Feasible && p.lat < lbound && (!o.found || better(p.est, o.est)) {
				o.est = p.est
				o.found = true
			}
		})
	})
	return s.reduce(outs)
}
