// XScheduler: the constraint-aware scheduling algorithm of §5.
//
// The optimization problem is
//
//	arg max Throughput(B_E, B_D, B_m, TP, F_E, S)
//	s.t.    Latency(...) < LBound
//
// and is monotonic: every control variable is oriented so that
// increasing it increases both throughput and latency (§5, §4.2). The
// search runs Algorithm 1 (branch-and-bound over two-dimensional blocks
// with corner-based pruning) per scheduling policy and per tensor-
// parallel configuration, then returns the best feasible schedule.
package core

import (
	"fmt"
	"math"
	"runtime"

	"exegpt/internal/par"
	"exegpt/internal/sched"
)

// Axis is one oriented control variable: index i in [0, Size) maps to a
// concrete value such that increasing i increases both throughput and
// latency.
type Axis struct {
	Name string
	// Values in orientation order.
	Values []int
}

// Size returns the number of grid points.
func (a Axis) Size() int { return len(a.Values) }

// batchAxis returns a geometric batch grid 1..max (throughput and
// latency both increase with batch size).
func batchAxis(name string, max int) Axis {
	var vals []int
	for v := 1; v < max; {
		vals = append(vals, v)
		step := v / 4
		if step < 1 {
			step = 1
		}
		v += step
	}
	vals = append(vals, max)
	return Axis{Name: name, Values: vals}
}

// ndAxis returns the RRA encoding-frequency axis: decreasing ND
// increases both throughput and latency (§4.1), so values are ordered
// from large ND to small.
func ndAxis(max int) Axis {
	var vals []int
	for v := 1; v < max; {
		vals = append(vals, v)
		step := v / 3
		if step < 1 {
			step = 1
		}
		v += step
	}
	vals = append(vals, max)
	// Reverse: index 0 = largest ND (lowest tput, lowest latency).
	for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
		vals[i], vals[j] = vals[j], vals[i]
	}
	return Axis{Name: "ND", Values: vals}
}

// bmAxis returns the WAA decoder micro-batch axis: more micro-batches
// reduce latency and throughput (§4.2), so values run from many to few.
func bmAxis(max int) Axis {
	vals := make([]int, 0, max)
	for v := max; v >= 1; v-- {
		vals = append(vals, v)
	}
	return Axis{Name: "Bm", Values: vals}
}

// perf is the (latency, throughput) of one grid point, Algorithm 1's
// perf().
type perf struct {
	lat, tput float64
	est       Estimate
}

// Scheduler is XScheduler.
//
// A single search call (FindBest, MinLatency, Exhaustive) fans its
// (policy, TP) branch-and-bound roots out to a bounded worker pool; the
// Scheduler itself must not be shared by concurrent search calls, but
// one search internally uses Workers goroutines, each probing the
// shared read-only Simulator through its own memoized Evaluator.
type Scheduler struct {
	Sim *Simulator
	// TolT and TolL are the throughput/latency tolerances of
	// Algorithm 1; they absorb small non-monotonicities (§5.1).
	// Expressed as fractions of the latency bound / running best.
	TolT, TolL float64
	// MaxBatch and MaxND bound the search space.
	MaxBatch, MaxND, MaxBm int
	// Workers is the number of concurrent branch workers; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Evals counts simulator invocations of the last search (the §7.7
	// cost comparison). Probes are counted pre-prune against a
	// deterministic seed bound, so the count is identical across worker
	// counts and runs (see FindBest).
	Evals int
	// DisableMemo routes every probe through the reference
	// Simulator.Estimate instead of the per-worker memoized Evaluators.
	// The selected schedule is identical either way (the equivalence
	// tests assert it); the flag exists for benchmarks comparing the
	// paths and for debugging.
	DisableMemo bool

	// evs are the per-worker Evaluators, sized by ensureEvals at the
	// start of each search; evs[w] is only ever touched by pool worker w
	// (par.ForEachWorker), so no locking is needed. Memos persist across
	// searches on the same Scheduler: everything cached is
	// schedule-invariant for the underlying Simulator.
	evs []*Evaluator
}

// NewScheduler returns a scheduler with the paper's default tolerances
// (5%, Table 5).
func NewScheduler(sim *Simulator) *Scheduler {
	return &Scheduler{Sim: sim, TolT: 0.05, TolL: 0.05,
		MaxBatch: 4096, MaxND: 64, MaxBm: 8}
}

// workers resolves the effective worker-pool size.
func (s *Scheduler) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ensureEvals sizes the per-worker Evaluator slice for a search. Called
// from the single-goroutine entry points before any worker runs.
func (s *Scheduler) ensureEvals() {
	if s.DisableMemo {
		return
	}
	n := s.workers()
	for len(s.evs) < n {
		s.evs = append(s.evs, NewEvaluator(s.Sim))
	}
}

// eval returns worker w's estimate path: its memoized Evaluator, or the
// reference Simulator when DisableMemo is set.
func (s *Scheduler) eval(w int) *Evaluator {
	if s.DisableMemo {
		return nil
	}
	return s.evs[w]
}

// ResetEvaluators drops the per-worker Evaluators and their memos so
// the next search starts cold. Benchmarks use it to separate cold-start
// from steady-state search cost; normal callers never need it (memos
// hold only schedule-invariant state, so staying warm is always
// correct).
func (s *Scheduler) ResetEvaluators() { s.evs = nil }

// point evaluates one configuration on ev (nil means the reference
// Simulator path), counting the evaluation into the caller's
// branch-local counter.
func (s *Scheduler) point(ev *Evaluator, policy sched.Policy, tp sched.TPSpec, axes []Axis, idx []int, evals *int) (perf, error) {
	cfg := sched.Config{Policy: policy, TP: tp, BE: 1, BD: 1, Bm: 1, ND: 1}
	for d, a := range axes {
		v := a.Values[idx[d]]
		switch a.Name {
		case "BD":
			cfg.BD = v
		case "BE":
			cfg.BE = v
		case "ND":
			cfg.ND = v
		case "Bm":
			cfg.Bm = v
		default:
			return perf{}, fmt.Errorf("core: unknown axis %q", a.Name)
		}
	}
	*evals++
	var est Estimate
	var err error
	if ev != nil {
		est, err = ev.Estimate(cfg)
	} else {
		est, err = s.Sim.Estimate(cfg)
	}
	if err != nil {
		return perf{}, err
	}
	if !est.Feasible {
		return perf{lat: math.Inf(1), tput: 0, est: est}, nil
	}
	return perf{lat: est.Latency, tput: est.Throughput, est: est}, nil
}

// block is an axis-aligned index box [lo, hi] (inclusive).
type block struct {
	lo, hi []int
	upp    perf // perf at hi corner (upper bound on tput in the box)
	lowr   perf // perf at lo corner (lower bound on latency)
}

// upperTput is the throughput upper bound a block proves. When the top
// corner is infeasible (e.g. out of memory at the largest batch) it
// bounds nothing: the interior may hold the optimum, so the bound is
// +Inf and the block must be split rather than pruned.
func (b block) upperTput() float64 {
	if !b.upp.est.Feasible {
		return math.Inf(1)
	}
	return b.upp.tput
}

func (b block) isPoint() bool {
	for d := range b.lo {
		if b.lo[d] != b.hi[d] {
			return false
		}
	}
	return true
}

// widestDim returns the dimension with the largest index span.
func (b block) widestDim() int {
	best, span := 0, -1
	for d := range b.lo {
		if w := b.hi[d] - b.lo[d]; w > span {
			span = w
			best = d
		}
	}
	return best
}

// Result is the outcome of a scheduling search.
type Result struct {
	Best  Estimate
	Found bool
	// Evals is the total simulator invocations across all branches. All
	// pruning information is deterministic (the seed bound comes from a
	// fixed corner-probe phase, everything else is branch-local), so
	// Evals is identical across runs and worker counts.
	Evals int
}

// configLess is a canonical total order on configurations, used to
// break exact throughput ties deterministically no matter in which
// order concurrent branches deliver their results.
func configLess(a, b sched.Config) bool {
	if a.Policy != b.Policy {
		return a.Policy < b.Policy
	}
	if a.TP.Degree != b.TP.Degree {
		return a.TP.Degree < b.TP.Degree
	}
	if a.TP.GPUs != b.TP.GPUs {
		return a.TP.GPUs < b.TP.GPUs
	}
	if a.BD != b.BD {
		return a.BD < b.BD
	}
	if a.BE != b.BE {
		return a.BE < b.BE
	}
	if a.ND != b.ND {
		return a.ND < b.ND
	}
	return a.Bm < b.Bm
}

// better reports whether a should replace b as the incumbent: strictly
// higher throughput, or equal throughput with a canonically smaller
// configuration. The tie-break makes the selected schedule independent
// of evaluation order, which parallel search does not control.
func better(a, b Estimate) bool {
	if a.Throughput != b.Throughput {
		return a.Throughput > b.Throughput
	}
	return configLess(a.Config, b.Config)
}

// branch is one (policy, TP) root of Algorithm 1.
type branch struct {
	policy sched.Policy
	tp     sched.TPSpec
}

// branches enumerates the search roots in canonical order: policies as
// given, TP choices in tpChoices order. Reduction walks the same order,
// so results are deterministic regardless of completion order.
func (s *Scheduler) branches(policies []sched.Policy) []branch {
	var out []branch
	for _, policy := range policies {
		for _, tp := range s.tpChoices() {
			if policy.IsWAA() && tp.GPUs >= s.Sim.Cluster.TotalGPUs() {
				continue // decode side cannot take every GPU
			}
			out = append(out, branch{policy: policy, tp: tp})
		}
	}
	return out
}

// forEachBranch runs fn(worker, i) for every branch index on the
// worker pool. fn must only write to per-index state and to the
// per-worker state slot it is handed.
func (s *Scheduler) forEachBranch(n int, fn func(worker, i int)) {
	par.ForEachWorker(n, s.workers(), fn)
}

// branchOutcome is the per-branch search result, reduced canonically
// after all workers finish.
type branchOutcome struct {
	est   Estimate
	found bool
	evals int
	err   error
}

// branchCorners carries the phase-1 evaluations of a branch's initial
// block corners into bbSearch, so phase 2 does not re-evaluate them.
type branchCorners struct {
	top, bottom perf
}

// seedTput returns the strongest feasible, bound-satisfying corner
// throughput this branch proves, or (0, false).
func (c branchCorners) seedTput(lbound float64) (float64, bool) {
	t, ok := 0.0, false
	for _, p := range []perf{c.top, c.bottom} {
		if p.est.Feasible && p.lat < lbound && p.tput > t {
			t, ok = p.tput, true
		}
	}
	return t, ok
}

// bbSearch runs Algorithm 1 over the axes for one (policy, TP) choice.
// seed is the deterministic cross-branch throughput lower bound derived
// from every branch's corner probes (FindBest phase 1): it only ever
// tightens pruning, and — under the monotone-corner assumption (see
// FindBest) — it can never prune a point whose throughput reaches the
// global optimum. Because the seed is fixed before any branch expands a
// block, the whole search (including Evals) is deterministic.
func (s *Scheduler) bbSearch(ev *Evaluator, policy sched.Policy, tp sched.TPSpec, axes []Axis, lbound, seed float64, c branchCorners, evals *int) (Estimate, bool, error) {
	lo := make([]int, len(axes))
	hi := make([]int, len(axes))
	for d, a := range axes {
		hi[d] = a.Size() - 1
	}
	epsL := s.TolL * lbound
	if math.IsInf(lbound, 1) {
		epsL = 0
	}

	// Line 1-3: initial block (corners pre-evaluated in phase 1); if
	// the top corner satisfies the constraint it is optimal.
	top, bottom := c.top, c.bottom
	if top.lat < lbound && top.est.Feasible {
		return top.est, true, nil
	}

	// bound is the branch's throughput lower bound: the deterministic
	// cross-branch seed, tightened by every feasible bound-satisfying
	// point this branch evaluates. Throughputs are nonnegative, so 0
	// means "no bound yet".
	bound := seed

	var best Estimate
	found := false
	consider := func(p perf) {
		if p.est.Feasible && p.lat < lbound {
			if p.tput > bound {
				bound = p.tput
			}
			if !found || better(p.est, best) {
				best = p.est
				found = true
			}
		}
	}
	consider(bottom)
	consider(top)

	// canBeat reports whether a block with throughput upper bound upp
	// could still improve on the incumbent T* (within the TolT
	// tolerance, Line 18).
	canBeat := func(upp float64) bool {
		return bound == 0 || upp+s.TolT*bound >= bound
	}

	b0 := block{lo: lo, hi: hi, upp: top, lowr: bottom}
	queue := []block{b0}

	for len(queue) > 0 {
		// Line 6: pop the block with the max upper bound. A linear scan
		// beats keeping the queue sorted: every pop is O(q) with no
		// comparator closures, and the queue mutates on every iteration
		// anyway. Ties break by current queue position (swap-with-last
		// removal reorders it), which is deterministic for a given probe
		// history — the only property the search relies on.
		bi := 0
		for k := 1; k < len(queue); k++ {
			if queue[k].upperTput() > queue[bi].upperTput() {
				bi = k
			}
		}
		b := queue[bi]
		queue[bi] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Line 18 pruning (lazy): drop blocks that cannot beat T*.
		if !canBeat(b.upperTput()) {
			continue
		}
		if b.isPoint() {
			consider(b.upp)
			continue
		}

		// Lines 7-10: split-dimension heuristic. Evaluate the two
		// "opposite corners" along the two widest dims and split
		// perpendicular to the better one.
		dim := b.widestDim()
		if d2 := secondWidest(b, dim); d2 >= 0 {
			tl := cornerSwap(b, dim) // low in dim, high elsewhere
			br := cornerSwap(b, d2)  // low in d2, high elsewhere
			ptl, err := s.point(ev, policy, tp, axes, tl, evals)
			if err != nil {
				return Estimate{}, false, err
			}
			pbr, err := s.point(ev, policy, tp, axes, br, evals)
			if err != nil {
				return Estimate{}, false, err
			}
			consider(ptl)
			consider(pbr)
			// Pick the corner with higher throughput satisfying the
			// bound and split the dimension that corner holds low: that
			// separates its feasible half from the infeasible one.
			if pbr.lat < lbound && (ptl.lat >= lbound || pbr.tput > ptl.tput) {
				dim = d2
			}
		}

		mid := (b.lo[dim] + b.hi[dim]) / 2
		for _, half := range splitAt(b, dim, mid) {
			upp, err := s.point(ev, policy, tp, axes, half.hi, evals)
			if err != nil {
				return Estimate{}, false, err
			}
			lowr, err := s.point(ev, policy, tp, axes, half.lo, evals)
			if err != nil {
				return Estimate{}, false, err
			}
			consider(upp)
			consider(lowr)
			half.upp, half.lowr = upp, lowr
			// Line 14: keep only blocks whose lower corner can satisfy
			// the latency bound (within tolerance).
			if lowr.lat < lbound+epsL {
				// Line 18: and whose upper bound can improve T*.
				if canBeat(half.upperTput()) {
					queue = append(queue, half)
				}
			}
		}
	}
	return best, found, nil
}

// secondWidest returns the widest dimension other than skip, or -1.
func secondWidest(b block, skip int) int {
	best, span := -1, 0
	for d := range b.lo {
		if d == skip {
			continue
		}
		if w := b.hi[d] - b.lo[d]; w > span {
			span = w
			best = d
		}
	}
	return best
}

// cornerSwap returns the hi corner with dimension d dropped to lo.
func cornerSwap(b block, d int) []int {
	idx := append([]int(nil), b.hi...)
	idx[d] = b.lo[d]
	return idx
}

// splitAt splits b at index mid along dim into two blocks.
func splitAt(b block, dim, mid int) []block {
	if mid >= b.hi[dim] {
		mid = b.hi[dim] - 1
	}
	if mid < b.lo[dim] {
		mid = b.lo[dim]
	}
	lo1 := append([]int(nil), b.lo...)
	hi1 := append([]int(nil), b.hi...)
	hi1[dim] = mid
	lo2 := append([]int(nil), b.lo...)
	lo2[dim] = mid + 1
	hi2 := append([]int(nil), b.hi...)
	return []block{{lo: lo1, hi: hi1}, {lo: lo2, hi: hi2}}
}

// tpChoices enumerates the partial tensor-parallelism options for the
// cluster: degree 1 (no TP) plus, per profiled degree d > 1, every
// multiple of d GPUs up to the cluster size (§5.1 fixes the degree and
// varies the applied GPU count).
func (s *Scheduler) tpChoices() []sched.TPSpec {
	n := s.Sim.Cluster.TotalGPUs()
	choices := []sched.TPSpec{{Degree: 1}}
	for _, d := range s.Sim.Profile.TPDegrees {
		if d <= 1 || d > n {
			continue
		}
		for g := d; g <= n; g += d {
			choices = append(choices, sched.TPSpec{Degree: d, GPUs: g})
		}
	}
	return choices
}

// axesFor returns the search axes for a policy.
func (s *Scheduler) axesFor(policy sched.Policy) []Axis {
	if policy == sched.RRA {
		return []Axis{batchAxis("BD", s.MaxBatch), ndAxis(s.MaxND)}
	}
	return []Axis{batchAxis("BE", s.MaxBatch/4), bmAxis(s.MaxBm)}
}

// FindBest runs Algorithm 1 for every policy in policies and every TP
// choice and returns the highest-throughput schedule satisfying lbound.
//
// The search runs in two deterministic phases on the worker pool.
// Phase 1 evaluates every branch's initial block corners — a fixed set
// — and derives the seed throughput lower bound: the best feasible,
// bound-satisfying corner anywhere. Phase 2 runs each branch's
// branch-and-bound with that seed, tightened only by the branch's own
// discoveries. No timing-dependent information flows between branches,
// so the whole Result — including Evals — is identical across worker
// counts and runs.
//
// The selected schedule is the grid optimum as long as a block's
// top-corner throughput upper-bounds its interior (the §4.2
// monotonicity that Algorithm 1 assumes, with TolT absorbing small
// violations — Table 5 measures how well it holds): then pruning can
// only discard points strictly below the optimum, the grid-point
// corners at or above it are always evaluated, and the reduction walks
// branches in canonical order with a total-order tie-break (better).
func (s *Scheduler) FindBest(policies []sched.Policy, lbound float64) (Result, error) {
	jobs := s.branches(policies)
	s.ensureEvals()
	outs := make([]branchOutcome, len(jobs))

	// Phase 1: probe every branch's block corners; the probes are a
	// fixed set, so the derived seed bound is deterministic.
	corners := make([]branchCorners, len(jobs))
	s.forEachBranch(len(jobs), func(w, i int) {
		j := jobs[i]
		o := &outs[i]
		axes := s.axesFor(j.policy)
		lo := make([]int, len(axes))
		hi := make([]int, len(axes))
		for d, a := range axes {
			hi[d] = a.Size() - 1
		}
		ev := s.eval(w)
		corners[i].top, o.err = s.point(ev, j.policy, j.tp, axes, hi, &o.evals)
		if o.err == nil {
			corners[i].bottom, o.err = s.point(ev, j.policy, j.tp, axes, lo, &o.evals)
		}
	})
	seed := 0.0
	for i := range jobs {
		if outs[i].err != nil {
			return Result{}, outs[i].err
		}
		if t, ok := corners[i].seedTput(lbound); ok && t > seed {
			seed = t
		}
	}

	// Phase 2: branch-and-bound per branch under the shared seed.
	s.forEachBranch(len(jobs), func(w, i int) {
		j := jobs[i]
		o := &outs[i]
		o.est, o.found, o.err = s.bbSearch(s.eval(w), j.policy, j.tp, s.axesFor(j.policy), lbound, seed, corners[i], &o.evals)
	})
	return s.reduce(outs)
}

// reduce folds branch outcomes in canonical order into one Result.
func (s *Scheduler) reduce(outs []branchOutcome) (Result, error) {
	var best Estimate
	found := false
	evals := 0
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return Result{}, o.err
		}
		evals += o.evals
		if o.found && (!found || better(o.est, best)) {
			best = o.est
			found = true
		}
	}
	s.Evals = evals
	return Result{Best: best, Found: found, Evals: evals}, nil
}

// scanGrid walks a branch's full grid, invoking visit on every point.
func (s *Scheduler) scanGrid(ev *Evaluator, j branch, evals *int, visit func(perf)) error {
	axes := s.axesFor(j.policy)
	idx := make([]int, len(axes))
	for {
		p, err := s.point(ev, j.policy, j.tp, axes, idx, evals)
		if err != nil {
			return err
		}
		visit(p)
		// Advance the mixed-radix counter.
		d := 0
		for d < len(axes) {
			idx[d]++
			if idx[d] < axes[d].Size() {
				break
			}
			idx[d] = 0
			d++
		}
		if d == len(axes) {
			break
		}
	}
	return nil
}

// MinLatency scans the search grid and returns the lowest achievable
// latency over the given policies (useful for picking meaningful
// latency bounds). Branches scan concurrently; the grid is fixed, so
// both the minimum and Evals are deterministic.
func (s *Scheduler) MinLatency(policies []sched.Policy) (float64, error) {
	jobs := s.branches(policies)
	s.ensureEvals()
	type minOutcome struct {
		min   float64
		evals int
		err   error
	}
	outs := make([]minOutcome, len(jobs))
	s.forEachBranch(len(jobs), func(w, i int) {
		o := &outs[i]
		o.min = math.Inf(1)
		o.err = s.scanGrid(s.eval(w), jobs[i], &o.evals, func(p perf) {
			if p.est.Feasible && p.lat < o.min {
				o.min = p.lat
			}
		})
	})
	min := math.Inf(1)
	evals := 0
	for _, o := range outs {
		if o.err != nil {
			return 0, o.err
		}
		evals += o.evals
		if o.min < min {
			min = o.min
		}
	}
	s.Evals = evals
	return min, nil
}

// Exhaustive evaluates every grid point (the §7.7 baseline that takes
// "five hours to an entire day" on the real system) and returns the
// true optimum over the same search space. Branches scan concurrently;
// no pruning is applied, so Evals is the full deterministic grid size.
func (s *Scheduler) Exhaustive(policies []sched.Policy, lbound float64) (Result, error) {
	jobs := s.branches(policies)
	s.ensureEvals()
	outs := make([]branchOutcome, len(jobs))
	s.forEachBranch(len(jobs), func(w, i int) {
		o := &outs[i]
		o.err = s.scanGrid(s.eval(w), jobs[i], &o.evals, func(p perf) {
			if p.est.Feasible && p.lat < lbound && (!o.found || better(p.est, o.est)) {
				o.est = p.est
				o.found = true
			}
		})
	})
	return s.reduce(outs)
}
