// XScheduler: the constraint-aware scheduling algorithm of §5.
//
// The optimization problem is
//
//	arg max Throughput(B_E, B_D, B_m, TP, F_E, S)
//	s.t.    Latency(...) < LBound
//
// and is monotonic: every control variable is oriented so that
// increasing it increases both throughput and latency (§5, §4.2). The
// search runs Algorithm 1 (branch-and-bound over two-dimensional blocks
// with corner-based pruning) per scheduling policy and per tensor-
// parallel configuration, then returns the best feasible schedule.
package core

import (
	"fmt"
	"math"
	"sort"

	"exegpt/internal/sched"
)

// Axis is one oriented control variable: index i in [0, Size) maps to a
// concrete value such that increasing i increases both throughput and
// latency.
type Axis struct {
	Name string
	// Values in orientation order.
	Values []int
}

// Size returns the number of grid points.
func (a Axis) Size() int { return len(a.Values) }

// batchAxis returns a geometric batch grid 1..max (throughput and
// latency both increase with batch size).
func batchAxis(name string, max int) Axis {
	var vals []int
	for v := 1; v < max; {
		vals = append(vals, v)
		step := v / 4
		if step < 1 {
			step = 1
		}
		v += step
	}
	vals = append(vals, max)
	return Axis{Name: name, Values: vals}
}

// ndAxis returns the RRA encoding-frequency axis: decreasing ND
// increases both throughput and latency (§4.1), so values are ordered
// from large ND to small.
func ndAxis(max int) Axis {
	var vals []int
	for v := 1; v < max; {
		vals = append(vals, v)
		step := v / 3
		if step < 1 {
			step = 1
		}
		v += step
	}
	vals = append(vals, max)
	// Reverse: index 0 = largest ND (lowest tput, lowest latency).
	for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
		vals[i], vals[j] = vals[j], vals[i]
	}
	return Axis{Name: "ND", Values: vals}
}

// bmAxis returns the WAA decoder micro-batch axis: more micro-batches
// reduce latency and throughput (§4.2), so values run from many to few.
func bmAxis(max int) Axis {
	vals := make([]int, 0, max)
	for v := max; v >= 1; v-- {
		vals = append(vals, v)
	}
	return Axis{Name: "Bm", Values: vals}
}

// perf is the (latency, throughput) of one grid point, Algorithm 1's
// perf().
type perf struct {
	lat, tput float64
	est       Estimate
}

// Scheduler is XScheduler.
type Scheduler struct {
	Sim *Simulator
	// TolT and TolL are the throughput/latency tolerances of
	// Algorithm 1; they absorb small non-monotonicities (§5.1).
	// Expressed as fractions of the latency bound / running best.
	TolT, TolL float64
	// MaxBatch and MaxND bound the search space.
	MaxBatch, MaxND, MaxBm int
	// Evals counts simulator invocations (for the §7.7 cost comparison).
	Evals int
}

// NewScheduler returns a scheduler with the paper's default tolerances
// (5%, Table 5).
func NewScheduler(sim *Simulator) *Scheduler {
	return &Scheduler{Sim: sim, TolT: 0.05, TolL: 0.05,
		MaxBatch: 4096, MaxND: 64, MaxBm: 8}
}

// point evaluates one configuration.
func (s *Scheduler) point(policy sched.Policy, tp sched.TPSpec, axes []Axis, idx []int) (perf, error) {
	cfg := sched.Config{Policy: policy, TP: tp, BE: 1, BD: 1, Bm: 1, ND: 1}
	for d, a := range axes {
		v := a.Values[idx[d]]
		switch a.Name {
		case "BD":
			cfg.BD = v
		case "BE":
			cfg.BE = v
		case "ND":
			cfg.ND = v
		case "Bm":
			cfg.Bm = v
		default:
			return perf{}, fmt.Errorf("core: unknown axis %q", a.Name)
		}
	}
	s.Evals++
	est, err := s.Sim.Estimate(cfg)
	if err != nil {
		return perf{}, err
	}
	if !est.Feasible {
		return perf{lat: math.Inf(1), tput: 0, est: est}, nil
	}
	return perf{lat: est.Latency, tput: est.Throughput, est: est}, nil
}

// block is an axis-aligned index box [lo, hi] (inclusive).
type block struct {
	lo, hi []int
	upp    perf // perf at hi corner (upper bound on tput in the box)
	lowr   perf // perf at lo corner (lower bound on latency)
}

// upperTput is the throughput upper bound a block proves. When the top
// corner is infeasible (e.g. out of memory at the largest batch) it
// bounds nothing: the interior may hold the optimum, so the bound is
// +Inf and the block must be split rather than pruned.
func (b block) upperTput() float64 {
	if !b.upp.est.Feasible {
		return math.Inf(1)
	}
	return b.upp.tput
}

func (b block) isPoint() bool {
	for d := range b.lo {
		if b.lo[d] != b.hi[d] {
			return false
		}
	}
	return true
}

// widestDim returns the dimension with the largest index span.
func (b block) widestDim() int {
	best, span := 0, -1
	for d := range b.lo {
		if w := b.hi[d] - b.lo[d]; w > span {
			span = w
			best = d
		}
	}
	return best
}

// Result is the outcome of a scheduling search.
type Result struct {
	Best  Estimate
	Found bool
	Evals int
}

// bbSearch runs Algorithm 1 over the axes for one (policy, TP) choice.
func (s *Scheduler) bbSearch(policy sched.Policy, tp sched.TPSpec, axes []Axis, lbound float64) (Estimate, bool, error) {
	lo := make([]int, len(axes))
	hi := make([]int, len(axes))
	for d, a := range axes {
		hi[d] = a.Size() - 1
	}
	epsL := s.TolL * lbound
	if math.IsInf(lbound, 1) {
		epsL = 0
	}

	// Line 1-3: initial block; if the top corner satisfies the
	// constraint it is optimal.
	top, err := s.point(policy, tp, axes, hi)
	if err != nil {
		return Estimate{}, false, err
	}
	if top.lat < lbound && top.est.Feasible {
		return top.est, true, nil
	}
	bottom, err := s.point(policy, tp, axes, lo)
	if err != nil {
		return Estimate{}, false, err
	}

	var best Estimate
	found := false
	consider := func(p perf) {
		if p.est.Feasible && p.lat < lbound && (!found || p.tput > best.Throughput) {
			best = p.est
			found = true
		}
	}
	consider(bottom)
	consider(top)

	b0 := block{lo: lo, hi: hi, upp: top, lowr: bottom}
	queue := []block{b0}

	for len(queue) > 0 {
		// Line 6: pop the block with the max upper bound.
		sort.Slice(queue, func(i, j int) bool { return queue[i].upperTput() > queue[j].upperTput() })
		b := queue[0]
		queue = queue[1:]
		// Line 18 pruning (lazy): drop blocks that cannot beat T*.
		if found && b.upperTput()+s.TolT*best.Throughput < best.Throughput {
			continue
		}
		if b.isPoint() {
			consider(b.upp)
			continue
		}

		// Lines 7-10: split-dimension heuristic. Evaluate the two
		// "opposite corners" along the two widest dims and split
		// perpendicular to the better one.
		dim := b.widestDim()
		if d2 := secondWidest(b, dim); d2 >= 0 {
			tl := cornerSwap(b, dim) // low in dim, high elsewhere
			br := cornerSwap(b, d2)  // low in d2, high elsewhere
			ptl, err := s.point(policy, tp, axes, tl)
			if err != nil {
				return Estimate{}, false, err
			}
			pbr, err := s.point(policy, tp, axes, br)
			if err != nil {
				return Estimate{}, false, err
			}
			consider(ptl)
			consider(pbr)
			// Pick the corner with higher throughput satisfying the
			// bound and split the dimension that corner holds low: that
			// separates its feasible half from the infeasible one.
			if pbr.lat < lbound && (ptl.lat >= lbound || pbr.tput > ptl.tput) {
				dim = d2
			}
		}

		mid := (b.lo[dim] + b.hi[dim]) / 2
		for _, half := range splitAt(b, dim, mid) {
			upp, err := s.point(policy, tp, axes, half.hi)
			if err != nil {
				return Estimate{}, false, err
			}
			lowr, err := s.point(policy, tp, axes, half.lo)
			if err != nil {
				return Estimate{}, false, err
			}
			consider(upp)
			consider(lowr)
			half.upp, half.lowr = upp, lowr
			// Line 14: keep only blocks whose lower corner can satisfy
			// the latency bound (within tolerance).
			if lowr.lat < lbound+epsL {
				// Line 18: and whose upper bound can improve T*.
				if !found || half.upperTput()+s.TolT*best.Throughput >= best.Throughput {
					queue = append(queue, half)
				}
			}
		}
	}
	return best, found, nil
}

// secondWidest returns the widest dimension other than skip, or -1.
func secondWidest(b block, skip int) int {
	best, span := -1, 0
	for d := range b.lo {
		if d == skip {
			continue
		}
		if w := b.hi[d] - b.lo[d]; w > span {
			span = w
			best = d
		}
	}
	return best
}

// cornerSwap returns the hi corner with dimension d dropped to lo.
func cornerSwap(b block, d int) []int {
	idx := append([]int(nil), b.hi...)
	idx[d] = b.lo[d]
	return idx
}

// splitAt splits b at index mid along dim into two blocks.
func splitAt(b block, dim, mid int) []block {
	if mid >= b.hi[dim] {
		mid = b.hi[dim] - 1
	}
	if mid < b.lo[dim] {
		mid = b.lo[dim]
	}
	lo1 := append([]int(nil), b.lo...)
	hi1 := append([]int(nil), b.hi...)
	hi1[dim] = mid
	lo2 := append([]int(nil), b.lo...)
	lo2[dim] = mid + 1
	hi2 := append([]int(nil), b.hi...)
	return []block{{lo: lo1, hi: hi1}, {lo: lo2, hi: hi2}}
}

// tpChoices enumerates the partial tensor-parallelism options for the
// cluster: degree 1 (no TP) plus, per profiled degree d > 1, every
// multiple of d GPUs up to the cluster size (§5.1 fixes the degree and
// varies the applied GPU count).
func (s *Scheduler) tpChoices() []sched.TPSpec {
	n := s.Sim.Cluster.TotalGPUs()
	choices := []sched.TPSpec{{Degree: 1}}
	for _, d := range s.Sim.Profile.TPDegrees {
		if d <= 1 || d > n {
			continue
		}
		for g := d; g <= n; g += d {
			choices = append(choices, sched.TPSpec{Degree: d, GPUs: g})
		}
	}
	return choices
}

// axesFor returns the search axes for a policy.
func (s *Scheduler) axesFor(policy sched.Policy) []Axis {
	if policy == sched.RRA {
		return []Axis{batchAxis("BD", s.MaxBatch), ndAxis(s.MaxND)}
	}
	return []Axis{batchAxis("BE", s.MaxBatch/4), bmAxis(s.MaxBm)}
}

// FindBest runs Algorithm 1 for every policy in policies and every TP
// choice and returns the highest-throughput schedule satisfying lbound.
func (s *Scheduler) FindBest(policies []sched.Policy, lbound float64) (Result, error) {
	s.Evals = 0
	var best Estimate
	found := false
	for _, policy := range policies {
		for _, tp := range s.tpChoices() {
			if policy.IsWAA() && tp.GPUs >= s.Sim.Cluster.TotalGPUs() {
				continue // decode side cannot take every GPU
			}
			est, ok, err := s.bbSearch(policy, tp, s.axesFor(policy), lbound)
			if err != nil {
				return Result{}, err
			}
			if ok && (!found || est.Throughput > best.Throughput) {
				best = est
				found = true
			}
		}
	}
	return Result{Best: best, Found: found, Evals: s.Evals}, nil
}

// MinLatency scans the search grid and returns the lowest achievable
// latency over the given policies (useful for picking meaningful
// latency bounds).
func (s *Scheduler) MinLatency(policies []sched.Policy) (float64, error) {
	min := math.Inf(1)
	for _, policy := range policies {
		for _, tp := range s.tpChoices() {
			if policy.IsWAA() && tp.GPUs >= s.Sim.Cluster.TotalGPUs() {
				continue
			}
			axes := s.axesFor(policy)
			idx := make([]int, len(axes))
			for {
				p, err := s.point(policy, tp, axes, idx)
				if err != nil {
					return 0, err
				}
				if p.est.Feasible && p.lat < min {
					min = p.lat
				}
				d := 0
				for d < len(axes) {
					idx[d]++
					if idx[d] < axes[d].Size() {
						break
					}
					idx[d] = 0
					d++
				}
				if d == len(axes) {
					break
				}
			}
		}
	}
	return min, nil
}

// Exhaustive evaluates every grid point (the §7.7 baseline that takes
// "five hours to an entire day" on the real system) and returns the
// true optimum over the same search space.
func (s *Scheduler) Exhaustive(policies []sched.Policy, lbound float64) (Result, error) {
	s.Evals = 0
	var best Estimate
	found := false
	for _, policy := range policies {
		for _, tp := range s.tpChoices() {
			if policy.IsWAA() && tp.GPUs >= s.Sim.Cluster.TotalGPUs() {
				continue
			}
			axes := s.axesFor(policy)
			idx := make([]int, len(axes))
			for {
				p, err := s.point(policy, tp, axes, idx)
				if err != nil {
					return Result{}, err
				}
				if p.est.Feasible && p.lat < lbound && (!found || p.tput > best.Throughput) {
					best = p.est
					found = true
				}
				// Advance the mixed-radix counter.
				d := 0
				for d < len(axes) {
					idx[d]++
					if idx[d] < axes[d].Size() {
						break
					}
					idx[d] = 0
					d++
				}
				if d == len(axes) {
					break
				}
			}
		}
	}
	return Result{Best: best, Found: found, Evals: s.Evals}, nil
}
