// Golden, equivalence and concurrency tests for the Evaluator fast
// path. The golden data was generated from the pre-Evaluator simulator
// (PR 1 state), so these tests pin the refactor bit-for-bit.
package core

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"sync"
	"testing"

	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// goldenCase mirrors tmp_golden's dump schema: one config's estimate
// with float fields as IEEE-754 bit patterns.
type goldenCase struct {
	Deployment string `json:"deployment"`
	Policy     int    `json:"policy"`
	BE         int    `json:"be"`
	BD         int    `json:"bd"`
	Bm         int    `json:"bm"`
	ND         int    `json:"nd"`
	TPDegree   int    `json:"tp_degree"`
	TPGPUs     int    `json:"tp_gpus"`

	Feasible   bool   `json:"feasible"`
	Reason     string `json:"reason,omitempty"`
	Throughput uint64 `json:"tput_bits"`
	Latency    uint64 `json:"lat_bits"`
	EncTime    uint64 `json:"enc_bits"`
	DecIter    uint64 `json:"dec_iter_bits"`
	Cycle      uint64 `json:"cycle_bits"`
	PeakEnc    int64  `json:"peak_enc"`
	PeakDec    int64  `json:"peak_dec"`
	OutBE      int    `json:"out_be"`
	OutBD      int    `json:"out_bd"`
	EncGPUs    int    `json:"enc_gpus"`
	DecGPUs    int    `json:"dec_gpus"`
	Stages     int    `json:"stages"`
}

func (g goldenCase) config() sched.Config {
	return sched.Config{
		Policy: sched.Policy(g.Policy), BE: g.BE, BD: g.BD, Bm: g.Bm, ND: g.ND,
		TP: sched.TPSpec{Degree: g.TPDegree, GPUs: g.TPGPUs},
	}
}

// goldenSims builds the simulators the golden dump used, keyed by its
// deployment labels.
func goldenSims(t testing.TB) map[string]*Simulator {
	t.Helper()
	return map[string]*Simulator{
		"OPT-13B/4xA40/S":      newSim(t, model.OPT13B, 4, hw.A40Cluster, workload.Summarization),
		"GPT3-39B/16xA40/T":    newSim(t, model.GPT339B, 16, hw.A40Cluster, workload.Translation),
		"T5-11B/8xA40/G":       newSim(t, model.T511B, 8, hw.A40Cluster, workload.CodeGeneration),
		"GPT3-175B/16xA100/C1": newSim(t, model.GPT3175B, 16, hw.A100Cluster, workload.ConvQA1),
	}
}

func loadGolden(t testing.TB) []goldenCase {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_estimates.json")
	if err != nil {
		t.Fatal(err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(data, &cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("no golden cases")
	}
	return cases
}

// checkGolden compares one estimate against its golden record bit for
// bit.
func checkGolden(t *testing.T, path string, g goldenCase, est Estimate) {
	t.Helper()
	fail := func(field string, got, want any) {
		t.Fatalf("%s %s %+v: %s = %v, want %v", path, g.Deployment, g.config(), field, got, want)
	}
	if est.Feasible != g.Feasible {
		fail("Feasible", est.Feasible, g.Feasible)
	}
	if est.Reason != g.Reason {
		fail("Reason", est.Reason, g.Reason)
	}
	if b := math.Float64bits(est.Throughput); b != g.Throughput {
		fail("Throughput bits", b, g.Throughput)
	}
	if b := math.Float64bits(est.Latency); b != g.Latency {
		fail("Latency bits", b, g.Latency)
	}
	if b := math.Float64bits(est.EncTime); b != g.EncTime {
		fail("EncTime bits", b, g.EncTime)
	}
	if b := math.Float64bits(est.DecIterTime); b != g.DecIter {
		fail("DecIterTime bits", b, g.DecIter)
	}
	if b := math.Float64bits(est.CycleTime); b != g.Cycle {
		fail("CycleTime bits", b, g.Cycle)
	}
	if est.PeakEncMem != g.PeakEnc || est.PeakDecMem != g.PeakDec {
		fail("peak mem", [2]int64{est.PeakEncMem, est.PeakDecMem}, [2]int64{g.PeakEnc, g.PeakDec})
	}
	if est.Config.BE != g.OutBE || est.Config.BD != g.OutBD {
		fail("derived batch", [2]int{est.Config.BE, est.Config.BD}, [2]int{g.OutBE, g.OutBD})
	}
	if est.Alloc.EncGPUs != g.EncGPUs || est.Alloc.DecGPUs != g.DecGPUs {
		fail("alloc split", [2]int{est.Alloc.EncGPUs, est.Alloc.DecGPUs}, [2]int{g.EncGPUs, g.DecGPUs})
	}
	if len(est.Alloc.Stages) != g.Stages {
		fail("stage count", len(est.Alloc.Stages), g.Stages)
	}
}

// TestGoldenEstimates pins both the reference Simulator path and the
// memoized Evaluator path to the pre-refactor simulator's output,
// bit for bit, across all three policies and four deployments.
func TestGoldenEstimates(t *testing.T) {
	sims := goldenSims(t)
	evs := map[string]*Evaluator{}
	for name, sim := range sims {
		evs[name] = NewEvaluator(sim)
	}
	for _, g := range loadGolden(t) {
		sim := sims[g.Deployment]
		if sim == nil {
			t.Fatalf("unknown golden deployment %q", g.Deployment)
		}
		ref, err := sim.Estimate(g.config())
		if err != nil {
			t.Fatalf("%s %+v: %v", g.Deployment, g.config(), err)
		}
		checkGolden(t, "reference", g, ref)
		fast, err := evs[g.Deployment].Estimate(g.config())
		if err != nil {
			t.Fatalf("%s %+v: %v", g.Deployment, g.config(), err)
		}
		checkGolden(t, "evaluator", g, fast)
	}
}

// TestEvaluatorMatchesSlowPathExactly asserts reflect.DeepEqual between
// the memoized Evaluator and the reference Simulator on every golden
// config, including the full Allocation. A fresh Evaluator per call
// must match too (memo state must never leak into results).
func TestEvaluatorMatchesSlowPathExactly(t *testing.T) {
	sims := goldenSims(t)
	for name, sim := range sims {
		ev := NewEvaluator(sim)
		for _, g := range loadGolden(t) {
			if g.Deployment != name {
				continue
			}
			cfg := g.config()
			ref, err := sim.Estimate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := ev.Estimate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, warm) {
				t.Fatalf("%s %+v: warm evaluator diverged\n ref %+v\n got %+v", name, cfg, ref, warm)
			}
			cold, err := NewEvaluator(sim).Estimate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, cold) {
				t.Fatalf("%s %+v: cold evaluator diverged", name, cfg)
			}
		}
	}
}

// TestEvaluatorTracksLatencyPctl: changing Simulator.LatencyPctl
// between calls must flush the whole-result memo so the Evaluator never
// serves a latency computed under the old percentile.
func TestEvaluatorTracksLatencyPctl(t *testing.T) {
	base := optSim(t, workload.Summarization)
	ev := NewEvaluator(base)
	cfg := sched.Config{Policy: sched.RRA, BD: 64, BE: 1, ND: 8, TP: sched.TPSpec{Degree: 1}}
	at99, err := ev.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base.LatencyPctl = 0.5
	ref, err := base.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Latency != ref.Latency {
		t.Fatalf("evaluator served stale percentile: %v, reference %v", got.Latency, ref.Latency)
	}
	if got.Latency >= at99.Latency {
		t.Fatalf("p50 latency %v should be below p99 %v", got.Latency, at99.Latency)
	}
	base.LatencyPctl = 0.99
	back, err := ev.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if back.Latency != at99.Latency {
		t.Fatalf("restoring the percentile diverged: %v vs %v", back.Latency, at99.Latency)
	}
}

// TestFindBestMemoMatchesReference: the whole search must return an
// identical Result (including Evals) whether probes run through the
// per-worker Evaluators or the reference Simulator.
func TestFindBestMemoMatchesReference(t *testing.T) {
	for _, bound := range []float64{5, 20, math.Inf(1)} {
		fast := detScheduler(t, 2)
		ref := detScheduler(t, 2)
		ref.DisableMemo = true
		fres, err := fast.FindBest(allPolicies, bound)
		if err != nil {
			t.Fatal(err)
		}
		rres, err := ref.FindBest(allPolicies, bound)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fres, rres) {
			t.Fatalf("bound %v: memoized search diverged from reference\n fast %+v\n ref  %+v", bound, fres, rres)
		}
	}
}

// TestEvaluatorsShareSimulatorRace hammers one shared Simulator from 8
// goroutines, each with its own Evaluator and Scheduler, exercising the
// read-only sharing contract under -race.
func TestEvaluatorsShareSimulatorRace(t *testing.T) {
	sim := optSim(t, workload.Summarization)
	cfgs := []sched.Config{
		{Policy: sched.RRA, BD: 64, BE: 1, ND: 8, TP: sched.TPSpec{Degree: 1}},
		{Policy: sched.RRA, BD: 512, BE: 1, ND: 32, TP: sched.TPSpec{Degree: 2, GPUs: 4}},
		{Policy: sched.WAAC, BE: 4, BD: 1, Bm: 2, TP: sched.TPSpec{Degree: 1}},
		{Policy: sched.WAAM, BE: 16, BD: 1, Bm: 4, TP: sched.TPSpec{Degree: 2, GPUs: 2}},
	}
	var want []Estimate
	for _, cfg := range cfgs {
		est, err := sim.Estimate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, est)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ev := NewEvaluator(sim)
			for rep := 0; rep < 50; rep++ {
				for c, cfg := range cfgs {
					est, err := ev.Estimate(cfg)
					if err != nil {
						errs[g] = err
						return
					}
					if !reflect.DeepEqual(est, want[c]) {
						errs[g] = errMismatch
						return
					}
				}
			}
			// A private Scheduler per goroutine over the shared Simulator.
			s := NewScheduler(sim)
			s.MaxBatch = 128
			s.Workers = 2
			if _, err := s.FindBest(allPolicies, 20); err != nil {
				errs[g] = err
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

var errMismatch = errSentinel("estimate mismatch across goroutines")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

func benchEstimate(b *testing.B, est func(sched.Config) (Estimate, error)) {
	cfgs := []sched.Config{
		{Policy: sched.RRA, BD: 64, BE: 1, ND: 8, TP: sched.TPSpec{Degree: 1}},
		{Policy: sched.RRA, BD: 512, BE: 1, ND: 32, TP: sched.TPSpec{Degree: 1}},
		{Policy: sched.RRA, BD: 2048, BE: 1, ND: 64, TP: sched.TPSpec{Degree: 2, GPUs: 4}},
		{Policy: sched.WAAC, BE: 8, BD: 1, Bm: 2, TP: sched.TPSpec{Degree: 1}},
		{Policy: sched.WAAM, BE: 32, BD: 1, Bm: 4, TP: sched.TPSpec{Degree: 1}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est(cfgs[i%len(cfgs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateReference / BenchmarkEstimateEvaluator compare the
// slow and memoized single-evaluation paths on a config mix.
func BenchmarkEstimateReference(b *testing.B) {
	sim := optSim(b, workload.Summarization)
	benchEstimate(b, sim.Estimate)
}

func BenchmarkEstimateEvaluator(b *testing.B) {
	sim := optSim(b, workload.Summarization)
	ev := NewEvaluator(sim)
	benchEstimate(b, ev.Estimate)
}

// BenchmarkFindBestReference / BenchmarkFindBestEvaluator compare the
// full Workers=1 search on the two paths (the committed BENCH_estimate
// speedup claim, also exposed via `exegpt bench`).
func benchFindBestPath(b *testing.B, disableMemo bool) {
	s := detScheduler(b, 1)
	s.DisableMemo = disableMemo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FindBest(allPolicies, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindBestReference(b *testing.B) { benchFindBestPath(b, true) }

func BenchmarkFindBestEvaluator(b *testing.B) { benchFindBestPath(b, false) }
