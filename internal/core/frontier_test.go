package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"exegpt/internal/sched"
)

// fp builds a feasible estimate with a distinguishable config.
func fp(lat, tput float64, bd int) *Estimate {
	return &Estimate{
		Config:   sched.Config{Policy: sched.RRA, BD: bd, BE: 1, ND: 1, Bm: 1, TP: sched.TPSpec{Degree: 1}},
		Feasible: true, Latency: lat, Throughput: tput,
	}
}

func TestFrontierAddAndBestUnder(t *testing.T) {
	var f Frontier
	if _, ok := f.BestUnder(10); ok {
		t.Fatal("empty frontier answered a query")
	}
	if !f.Add(fp(2, 5, 1)) {
		t.Fatal("first point rejected")
	}
	if !f.Add(fp(4, 9, 2)) {
		t.Fatal("non-dominated point rejected")
	}
	// Dominated: higher latency, lower throughput.
	if f.Add(fp(5, 3, 3)) {
		t.Fatal("dominated point joined")
	}
	// Dominating: replaces both existing points.
	if !f.Add(fp(1, 12, 4)) {
		t.Fatal("dominating point rejected")
	}
	if f.Len() != 1 {
		t.Fatalf("frontier kept %d points after a global dominator, want 1", f.Len())
	}
	est, ok := f.BestUnder(2)
	if !ok || est.Config.BD != 4 {
		t.Fatalf("BestUnder(2) = %+v, %v", est, ok)
	}
	// Strictly-below semantics: a bound equal to the point's latency
	// does not qualify.
	if _, ok := f.BestUnder(1); ok {
		t.Fatal("BestUnder must require latency strictly below the bound")
	}
}

func TestFrontierRejectsInfeasibleAndNonFinite(t *testing.T) {
	var f Frontier
	bad := fp(2, 5, 1)
	bad.Feasible = false
	if f.Add(bad) {
		t.Fatal("infeasible estimate joined")
	}
	if f.Add(fp(math.Inf(1), 5, 1)) {
		t.Fatal("infinite-latency estimate joined")
	}
	if f.Len() != 0 {
		t.Fatalf("frontier not empty: %d", f.Len())
	}
}

// TestFrontierTieBreak: equal throughput keeps the canonically smaller
// config available at its latency, exactly like the search incumbent.
func TestFrontierTieBreak(t *testing.T) {
	var f Frontier
	f.Add(fp(2, 5, 9)) // larger config, lower latency
	f.Add(fp(4, 5, 3)) // canonically smaller config, higher latency
	// Under a bound covering both, the canonical tie-break wins.
	est, ok := f.BestUnder(10)
	if !ok || est.Config.BD != 3 {
		t.Fatalf("BestUnder(10) = BD %d, want 3 (canonical tie-break)", est.Config.BD)
	}
	// Under a bound covering only the low-latency point, it answers.
	est, ok = f.BestUnder(3)
	if !ok || est.Config.BD != 9 {
		t.Fatalf("BestUnder(3) = BD %d, want 9", est.Config.BD)
	}
	// The same config offered twice must not duplicate.
	n := f.Len()
	if f.Add(fp(4, 5, 3)) || f.Len() != n {
		t.Fatal("duplicate point changed the frontier")
	}
}

// TestFrontierOrderIndependent: the frontier is a function of the point
// set, not the insertion order.
func TestFrontierOrderIndependent(t *testing.T) {
	pts := []*Estimate{
		fp(1, 2, 1), fp(2, 4, 2), fp(2.5, 4, 1), fp(3, 6, 3),
		fp(4, 6, 2), fp(5, 5, 4), fp(6, 9, 5), fp(0.5, 1, 6),
	}
	var want Frontier
	for _, p := range pts {
		want.Add(p)
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]*Estimate(nil), pts...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var f Frontier
		for _, p := range shuffled {
			f.Add(p)
		}
		if !reflect.DeepEqual(f, want) {
			t.Fatalf("trial %d: frontier depends on insertion order\n got %+v\nwant %+v", trial, f, want)
		}
	}
}

func TestFrontierInvariants(t *testing.T) {
	var f Frontier
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		f.Add(fp(1+9*r.Float64(), 1+9*r.Float64(), 1+r.Intn(50)))
	}
	for i := 1; i < f.Len(); i++ {
		a, b := f.Points[i-1], f.Points[i]
		if a.Latency >= b.Latency {
			t.Fatalf("latency not strictly increasing at %d: %v >= %v", i, a.Latency, b.Latency)
		}
		if !better(b.Est, a.Est) {
			t.Fatalf("preference not strictly increasing at %d", i)
		}
	}
}

func TestFrontierMergeMatchesUnion(t *testing.T) {
	pts := []*Estimate{fp(1, 2, 1), fp(2, 4, 2), fp(3, 6, 3), fp(4, 5, 4), fp(5, 9, 5)}
	var all Frontier
	for _, p := range pts {
		all.Add(p)
	}
	var a, b Frontier
	for i, p := range pts {
		if i%2 == 0 {
			a.Add(p)
		} else {
			b.Add(p)
		}
	}
	a.Merge(&b)
	if !reflect.DeepEqual(a, all) {
		t.Fatalf("merge != union\n got %+v\nwant %+v", a, all)
	}
}

func TestFrontierSerializes(t *testing.T) {
	var f Frontier
	f.Add(fp(2, 5, 1))
	f.Add(fp(4, 9, 2))
	data, err := json.Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	var back Frontier
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, back) {
		t.Fatalf("round trip diverged\n got %+v\nwant %+v", back, f)
	}
}
