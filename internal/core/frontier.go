// Frontier: the latency → max-throughput Pareto frontier a schedule
// search discovers.
//
// Every feasible point a branch-and-bound search evaluates is an
// (latency, throughput) sample of the deployment's trade-off curve. The
// Pareto subset — points not beaten on both axes by another point —
// answers "best schedule under latency bound L" for ANY L covered by
// the explored region with a single lookup, which is what lets
// FindBestMany reuse one branch enumeration across a whole ascending
// bound sweep. The frontier is also a compact, JSON-serializable
// summary of a search, suitable as the per-shard result of a future
// multi-process sweep (see ROADMAP).
package core

import (
	"math"
	"sort"
)

// FrontierPoint is one Pareto-optimal schedule: no other discovered
// point has both lower (or equal) latency and higher throughput.
type FrontierPoint struct {
	Latency    float64  `json:"latency"`
	Throughput float64  `json:"throughput"`
	Est        Estimate `json:"estimate"`
}

// Frontier is an ordered set of Pareto-optimal points: Points is sorted
// by strictly increasing latency AND strictly increasing preference
// under the search's canonical order (better) — throughput never
// decreases, and equal-throughput neighbours appear in decreasing
// canonical config order so the last matching entry is always the one a
// from-scratch search would select. The zero value is an empty,
// ready-to-use frontier.
type Frontier struct {
	Points []*FrontierPoint `json:"points"`
}

// Len returns the number of Pareto points.
func (f *Frontier) Len() int { return len(f.Points) }

// dominatesEst reports whether keeping p makes est redundant for every
// BestUnder query: p is available at est's latency (p.lat <= est.lat)
// and is at least as preferred under the canonical incumbent order.
func (p *FrontierPoint) dominatesEst(est *Estimate) bool {
	if p.Latency > est.Latency {
		return false
	}
	if p.Throughput != est.Throughput {
		return p.Throughput > est.Throughput
	}
	return !configLess(est.Config, p.Est.Config)
}

// dominatedByEst is the mirror: est makes p redundant.
func (p *FrontierPoint) dominatedByEst(est *Estimate) bool {
	if est.Latency > p.Latency {
		return false
	}
	if est.Throughput != p.Throughput {
		return est.Throughput > p.Throughput
	}
	return !configLess(p.Est.Config, est.Config)
}

// Add offers a point to the frontier and reports whether it joined.
// Infeasible estimates and non-finite latencies never join. Adding is
// deterministic: the resulting set depends only on the multiset of
// points offered, not their order. The estimate is passed by pointer
// and copied only when it actually joins — the search offers every
// probe, and nearly all of them are dominated.
func (f *Frontier) Add(est *Estimate) bool {
	if !est.Feasible || math.IsInf(est.Latency, 0) || math.IsNaN(est.Latency) {
		return false
	}
	// First entry at or after est's latency; every entry before i has a
	// strictly smaller latency.
	i := sort.Search(len(f.Points), func(k int) bool {
		return f.Points[k].Latency >= est.Latency
	})
	// A dominator, if any, is the nearest entry at or below est's
	// latency (the list is increasing in preference, so it is the
	// strongest candidate), or the entry sharing est's exact latency.
	if i > 0 && f.Points[i-1].dominatesEst(est) {
		return false
	}
	if i < len(f.Points) && f.Points[i].dominatesEst(est) {
		return false
	}
	p := &FrontierPoint{Latency: est.Latency, Throughput: est.Throughput, Est: *est}
	// Drop every entry p now dominates: a contiguous run starting at i
	// (preference increases with position, so the run ends at the first
	// survivor).
	j := i
	for j < len(f.Points) && f.Points[j].dominatedByEst(est) {
		j++
	}
	if i == j {
		f.Points = append(f.Points, nil)
		copy(f.Points[i+1:], f.Points[i:])
		f.Points[i] = p
		return true
	}
	f.Points[i] = p
	f.Points = append(f.Points[:i+1], f.Points[j:]...)
	return true
}

// BestUnder returns the most preferred discovered schedule with latency
// strictly below lbound — exactly the incumbent a search over the same
// points would select — or ok=false when no discovered point satisfies
// the bound.
func (f *Frontier) BestUnder(lbound float64) (Estimate, bool) {
	i := sort.Search(len(f.Points), func(k int) bool {
		return f.Points[k].Latency >= lbound
	})
	if i == 0 {
		return Estimate{}, false
	}
	return f.Points[i-1].Est, true
}

// Merge folds every point of other into f. Merging per-branch (or
// per-shard) frontiers in canonical order yields the same frontier
// regardless of which worker discovered which point.
func (f *Frontier) Merge(other *Frontier) {
	for i := range other.Points {
		f.Add(&other.Points[i].Est)
	}
}
