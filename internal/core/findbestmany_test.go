// Tests for the amortized multi-bound search: per-bound equivalence
// with standalone FindBest, determinism across runs and worker counts,
// and the amortization itself (shared enumeration across bounds).
package core

import (
	"math"
	"reflect"
	"testing"
)

// manyBounds mixes the shapes FindBestMany must handle: unsorted order,
// a duplicate, an unsatisfiably tight bound, and +Inf.
var manyBounds = []float64{20, 4, math.Inf(1), 8, 20, 0.001}

// TestFindBestManyMatchesFindBest asserts the acceptance criterion: for
// every bound, FindBestMany's Best and Found are bit-identical to a
// standalone sequential FindBest at that bound, at worker counts 1, 2
// and 8.
func TestFindBestManyMatchesFindBest(t *testing.T) {
	// Standalone references from a Workers=1 scheduler.
	want := make([]Result, len(manyBounds))
	for k, b := range manyBounds {
		seq := detScheduler(t, 1)
		res, err := seq.FindBest(allPolicies, b)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = res
	}
	foundAny := false
	for _, w := range want {
		foundAny = foundAny || w.Found
	}
	if !foundAny {
		t.Fatal("reference searches found nothing; test is vacuous")
	}
	for _, workers := range []int{1, 2, 8} {
		s := detScheduler(t, workers)
		got, err := s.FindBestMany(allPolicies, manyBounds)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(manyBounds) {
			t.Fatalf("workers=%d: %d results for %d bounds", workers, len(got), len(manyBounds))
		}
		for k, b := range manyBounds {
			if got[k].Found != want[k].Found {
				t.Fatalf("workers=%d bound=%v: found=%v, want %v", workers, b, got[k].Found, want[k].Found)
			}
			if !reflect.DeepEqual(got[k].Best, want[k].Best) {
				t.Fatalf("workers=%d bound=%v: best diverged\n got %+v\nwant %+v",
					workers, b, got[k].Best, want[k].Best)
			}
			if math.Float64bits(got[k].Best.Throughput) != math.Float64bits(want[k].Best.Throughput) ||
				math.Float64bits(got[k].Best.Latency) != math.Float64bits(want[k].Best.Latency) {
				t.Fatalf("workers=%d bound=%v: float bits diverged", workers, b)
			}
		}
	}
}

// TestFindBestManyDeterministic asserts the whole result slice —
// including per-bound Evals and the merged frontier — is identical
// across runs and worker counts.
func TestFindBestManyDeterministic(t *testing.T) {
	var want []Result
	var wantFrontier Frontier
	var wantEvals int
	for i, workers := range []int{1, 1, 2, 8} {
		s := detScheduler(t, workers)
		got, err := s.FindBestMany(allPolicies, manyBounds)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			want, wantFrontier, wantEvals = got, s.Frontier, s.Evals
			if wantFrontier.Len() == 0 {
				t.Fatal("empty frontier after a search that found schedules")
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results (incl. Evals) diverged\n got %+v\nwant %+v", workers, got, want)
		}
		if s.Evals != wantEvals {
			t.Fatalf("workers=%d: Scheduler.Evals = %d, want %d", workers, s.Evals, wantEvals)
		}
		if !reflect.DeepEqual(s.Frontier, wantFrontier) {
			t.Fatalf("workers=%d: merged frontier diverged", workers)
		}
	}
}

// TestFindBestManyAmortizes: one multi-bound pass must evaluate
// strictly fewer configurations than the independent per-bound
// searches it replaces.
func TestFindBestManyAmortizes(t *testing.T) {
	s := detScheduler(t, 1)
	bounds := []float64{4, 8, 20, math.Inf(1)}
	if _, err := s.FindBestMany(allPolicies, bounds); err != nil {
		t.Fatal(err)
	}
	many := s.Evals
	indep := 0
	for _, b := range bounds {
		res, err := detScheduler(t, 1).FindBest(allPolicies, b)
		if err != nil {
			t.Fatal(err)
		}
		indep += res.Evals
	}
	if many >= indep {
		t.Fatalf("FindBestMany evals %d >= independent total %d: no amortization", many, indep)
	}
	t.Logf("evals: many=%d, independent=%d (%.1fx fewer)", many, indep, float64(indep)/float64(many))
}

// TestFindBestManyDuplicatesAndOrder: duplicate bounds share one
// search and results align with the caller's (unsorted) input order.
func TestFindBestManyDuplicatesAndOrder(t *testing.T) {
	s := detScheduler(t, 2)
	res, err := s.FindBestMany(allPolicies, manyBounds)
	if err != nil {
		t.Fatal(err)
	}
	for k, b := range manyBounds {
		for k2, b2 := range manyBounds {
			if b == b2 && !reflect.DeepEqual(res[k], res[k2]) {
				t.Fatalf("duplicate bound %v: results differ at positions %d and %d", b, k, k2)
			}
		}
	}
	// Tighter bounds can never out-perform looser ones.
	for k, b := range manyBounds {
		for k2, b2 := range manyBounds {
			if b < b2 && res[k].Found && res[k2].Found &&
				res[k].Best.Throughput > res[k2].Best.Throughput {
				t.Fatalf("bound %v tput %v exceeds looser bound %v tput %v",
					b, res[k].Best.Throughput, b2, res[k2].Best.Throughput)
			}
		}
	}
}

// TestFindBestManyEdgeCases: empty input, a single bound, and an
// all-infeasible sweep.
func TestFindBestManyEdgeCases(t *testing.T) {
	s := detScheduler(t, 2)
	res, err := s.FindBestMany(allPolicies, nil)
	if err != nil || res != nil {
		t.Fatalf("empty bounds: got (%v, %v), want (nil, nil)", res, err)
	}
	res, err = s.FindBestMany(allPolicies, []float64{20})
	if err != nil {
		t.Fatal(err)
	}
	want, err := detScheduler(t, 1).FindBest(allPolicies, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Found != want.Found || !reflect.DeepEqual(res[0].Best, want.Best) {
		t.Fatalf("single bound: got %+v, want %+v", res, want)
	}
	res, err = s.FindBestMany(allPolicies, []float64{0.0001, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range res {
		if r.Found {
			t.Fatalf("unsatisfiable bound %v reported a schedule: %+v", []float64{0.0001, 0.001}[k], r.Best)
		}
	}
}

// TestFindBestManyDisableMemo: the reference Simulator path must select
// the same schedules as the memoized Evaluator path.
func TestFindBestManyDisableMemo(t *testing.T) {
	bounds := []float64{8, 20, math.Inf(1)}
	fast := detScheduler(t, 2)
	fastRes, err := fast.FindBestMany(allPolicies, bounds)
	if err != nil {
		t.Fatal(err)
	}
	ref := detScheduler(t, 2)
	ref.DisableMemo = true
	refRes, err := ref.FindBestMany(allPolicies, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fastRes, refRes) {
		t.Fatalf("memoized and reference paths diverged\n fast %+v\n ref %+v", fastRes, refRes)
	}
}

// TestFindBestManyWarmEvaluators: results must not depend on whether
// the per-worker memos are cold or warm from earlier searches.
func TestFindBestManyWarmEvaluators(t *testing.T) {
	bounds := []float64{8, math.Inf(1)}
	cold := detScheduler(t, 2)
	coldRes, err := cold.FindBestMany(allPolicies, bounds)
	if err != nil {
		t.Fatal(err)
	}
	warm := detScheduler(t, 2)
	if _, err := warm.FindBest(allPolicies, 20); err != nil {
		t.Fatal(err)
	}
	warmRes, err := warm.FindBestMany(allPolicies, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Fatalf("warm-memo results diverged\n cold %+v\n warm %+v", coldRes, warmRes)
	}
}

func BenchmarkFindBestManyFourBounds(b *testing.B) {
	s := detScheduler(b, 1)
	bounds := []float64{4, 8, 20, math.Inf(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FindBestMany(allPolicies, bounds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindBestIndependentFourBounds(b *testing.B) {
	s := detScheduler(b, 1)
	bounds := []float64{4, 8, 20, math.Inf(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bo := range bounds {
			if _, err := s.FindBest(allPolicies, bo); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestFindBestManyRejectsNaN: a NaN bound cannot satisfy any latency
// comparison and cannot key results; it must be an explicit error.
func TestFindBestManyRejectsNaN(t *testing.T) {
	s := detScheduler(t, 1)
	if _, err := s.FindBestMany(allPolicies, []float64{math.NaN(), 20}); err == nil {
		t.Fatal("NaN bound must be rejected")
	}
}
