// Evaluator: the allocation-free, memoized Estimate fast path.
//
// The branch-and-bound search of §5 evaluates thousands of schedules
// against one immutable Simulator, and neighbouring probes share almost
// everything: walking the ND axis reuses the TP allocation, walking the
// batch axis reuses the completion distribution, and the O(ND) decode
// loop revisits the same rounded micro-batch sizes over and over. An
// Evaluator exploits that by memoizing every schedule-invariant
// intermediate — completion distributions by ND, RRA allocations by TP,
// WAA probes/splits/allocations by (policy, TP), and per-(stage, batch)
// pipeline stage times — and by reusing scratch buffers so the steady
// state of a search performs zero allocations per probe.
//
// An Evaluator is NOT safe for concurrent use: it is per-goroutine
// state over a shared, read-only Simulator. The scheduler keeps one per
// worker (par.ForEachWorker); experiments and the CLI create one per
// Deployment. Results are bit-identical to Simulator.Estimate, the
// reference path — asserted by the golden and equivalence tests.
package core

import (
	"fmt"
	"math"

	"exegpt/internal/sched"
	"exegpt/internal/seqdist"
)

// compEntry memoizes one ND's completion distribution (§6) together
// with the derived per-phase completion fraction and the running-sum
// active fractions for decode iterations 1..ND.
type compEntry struct {
	frac   float64   // PerPhaseCompletion
	active []float64 // ActiveFractions; index u in 1..ND
	err    error
}

// allocEntry memoizes one allocation attempt plus the per-stage weight
// bytes (schedule-invariant given the allocation) and the composite
// phase times the RRA estimate derives from it: once an allocation is
// fixed, the encoding phase depends only on the micro-batch token count
// and a decode iteration only on the rounded micro-batch size, so both
// collapse to int-keyed lookups.
type allocEntry struct {
	alloc   sched.Allocation
	weights []int64 // WeightBytesPerGPU per stage, aligned with Stages
	err     error

	encPhaseByTokens map[int]float64 // pipelinePeriod of the encoding phase by microTokens
	iterByMicro      map[int]float64 // decode-iteration period by micro-batch size
}

// waaEnc is the encoder-side composite for one encTokens value.
type waaEnc struct {
	traversal, period float64
	peak              int64
}

// waaDecKey/waaDec memoize the decoder-side composite: the iteration
// period and traversal depend only on (micro, clamped Bm) once the
// allocation is fixed.
type waaDecKey struct {
	micro, bm int
}

type waaDec struct {
	iter, traversal float64
}

// waaEntry memoizes one WAA split+allocation attempt for a (policy, TP)
// pair, including the pre-split stage views, per-side weights, and the
// composite pipeline times derived from them.
type waaEntry struct {
	alloc                sched.Allocation
	encStages, decStages []sched.Stage
	encWeights           []int64
	decWeights           []int64
	err                  error

	encByTokens map[int]waaEnc
	decByKey    map[waaDecKey]waaDec
}

// waaKey identifies a WAA allocation: the CE/CD probe and memory
// estimates that drive the split are schedule-invariant (fixed probe
// batch, §4.1), so (policy, TP) fully determines the outcome.
type waaKey struct {
	policy sched.Policy
	tp     sched.TPSpec
}

// stageTimeKey addresses one memoized pipeline stage time. Stage is a
// small comparable struct, so the key doubles as the full lookup
// context: batch is the micro-batch token count (encode) or query count
// (decode); the attention context and mean sequence length are fixed
// per Simulator.
type stageTimeKey struct {
	st    sched.Stage
	batch int
}

// Evaluator is a per-goroutine evaluation context over one shared
// Simulator. See the package comment above for the design; create one
// with NewEvaluator and call Estimate exactly like Simulator.Estimate.
type Evaluator struct {
	sim *Simulator

	comp map[int]*compEntry // by ND
	rra  map[sched.TPSpec]*allocEntry
	waa  map[waaKey]*waaEntry

	// est is the whole-result memo: Algorithm 1 re-probes block corners
	// on every split (each half shares two corners with its parent), so
	// roughly half of all probes during a search are exact repeats.
	est map[sched.Config]Estimate

	probe     waaProbe
	probeErr  error
	probeDone bool

	// pctl is the LatencyPctl the est memo was filled under. Latency is
	// the only memoized output that depends on it, and only through the
	// final whole-result memo (the phase/allocation memos are
	// percentile-free), so a caller adjusting sim.LatencyPctl between
	// calls just flushes est.
	pctl float64

	encMemo map[stageTimeKey]float64
	decMemo map[stageTimeKey]float64

	// lastEnc/lastDec are size-1 caches in front of the memo maps: the
	// decode loop and the block-corner probes repeat the immediately
	// preceding lookup far more often than any other, and a struct
	// compare is cheaper than a map probe.
	lastEnc, lastDec struct {
		key stageTimeKey
		val float64
		ok  bool
	}

	encTimes, decTimes []float64 // scratch stage-time buffers
}

// NewEvaluator returns an empty evaluation context for sim. The memos
// fill lazily; constructing an Evaluator is cheap.
func NewEvaluator(sim *Simulator) *Evaluator {
	return &Evaluator{
		sim:     sim,
		comp:    map[int]*compEntry{},
		rra:     map[sched.TPSpec]*allocEntry{},
		waa:     map[waaKey]*waaEntry{},
		est:     map[sched.Config]Estimate{},
		encMemo: map[stageTimeKey]float64{},
		decMemo: map[stageTimeKey]float64{},
		pctl:    sim.LatencyPctl,
	}
}

// Sim returns the underlying shared Simulator.
func (e *Evaluator) Sim() *Simulator { return e.sim }

// Estimate simulates the timeline of cfg, bit-identical to
// Simulator.Estimate but memoized across calls. The returned Estimate
// shares its Allocation with other results from this Evaluator; treat
// it as read-only (Simulator.Estimate results already are).
func (e *Evaluator) Estimate(cfg sched.Config) (Estimate, error) {
	if e.pctl != e.sim.LatencyPctl {
		clear(e.est)
		e.pctl = e.sim.LatencyPctl
	}
	if est, ok := e.est[cfg]; ok {
		return est, nil
	}
	est, err := e.estimate(cfg)
	if err != nil {
		return Estimate{}, err
	}
	e.est[cfg] = est
	return est, nil
}

func (e *Evaluator) estimate(cfg sched.Config) (Estimate, error) {
	if err := cfg.Validate(e.sim.Cluster.TotalGPUs()); err != nil {
		return infeasible(cfg, err.Error()), nil
	}
	if fe, ok := familyEstimators[cfg.Policy]; ok {
		return fe.fast(e, cfg)
	}
	return infeasible(cfg, "unknown policy"), nil
}

// completion returns the memoized completion-distribution entry for nd.
func (e *Evaluator) completion(nd int) (*compEntry, error) {
	if ce, ok := e.comp[nd]; ok {
		return ce, ce.err
	}
	ce := &compEntry{}
	comp, err := seqdist.NewCompletionDist(e.sim.Out, nd)
	if err != nil {
		ce.err = err
	} else {
		ce.frac = comp.PerPhaseCompletion()
		ce.active = comp.ActiveFractions()
	}
	e.comp[nd] = ce
	return ce, ce.err
}

// rraAlloc returns the memoized RRA allocation for tp.
func (e *Evaluator) rraAlloc(tp sched.TPSpec) *allocEntry {
	if ae, ok := e.rra[tp]; ok {
		return ae
	}
	ae := &allocEntry{}
	ae.alloc, ae.err = sched.AllocateRRA(e.sim.Model, e.sim.Cluster, tp)
	if ae.err == nil {
		ae.weights = stageWeights(e.sim, ae.alloc.Stages)
		ae.encPhaseByTokens = map[int]float64{}
		ae.iterByMicro = map[int]float64{}
	}
	e.rra[tp] = ae
	return ae
}

// rraEncPhase returns the memoized RRA encoding-phase period for one
// micro-batch token count.
func (e *Evaluator) rraEncPhase(ae *allocEntry, microTokens int) (float64, error) {
	if v, ok := ae.encPhaseByTokens[microTokens]; ok {
		return v, nil
	}
	encTimes := scratch(&e.encTimes, len(ae.alloc.Stages))
	for i, st := range ae.alloc.Stages {
		t, err := e.encStage(st, microTokens)
		if err != nil {
			return 0, err
		}
		encTimes[i] = t
	}
	v := pipelinePeriod(encTimes, rraMicroBatches)
	ae.encPhaseByTokens[microTokens] = v
	return v, nil
}

// rraDecIter returns the memoized RRA decode-iteration period for one
// rounded micro-batch size.
func (e *Evaluator) rraDecIter(ae *allocEntry, micro int) (float64, error) {
	if v, ok := ae.iterByMicro[micro]; ok {
		return v, nil
	}
	decTimes := scratch(&e.decTimes, len(ae.alloc.Stages))
	for i, st := range ae.alloc.Stages {
		t, err := e.decStage(st, micro)
		if err != nil {
			return 0, err
		}
		decTimes[i] = t
	}
	v := pipelinePeriod(decTimes, rraMicroBatches)
	ae.iterByMicro[micro] = v
	return v, nil
}

func stageWeights(s *Simulator, stages []sched.Stage) []int64 {
	w := make([]int64, len(stages))
	for i, st := range stages {
		w[i] = sched.WeightBytesPerGPU(s.Model, st)
	}
	return w
}

// waaCostProbe memoizes Simulator.waaCostProbe: the probe batch is
// fixed (§4.1), so the result never varies with the candidate schedule.
func (e *Evaluator) waaCostProbe() (waaProbe, error) {
	if e.probeDone {
		return e.probe, e.probeErr
	}
	e.probe, e.probeErr = e.sim.waaCostProbe()
	e.probeDone = true
	return e.probe, e.probeErr
}

// waaAlloc returns the memoized WAA split+allocation for (policy, tp).
func (e *Evaluator) waaAlloc(policy sched.Policy, tp sched.TPSpec, p waaProbe) *waaEntry {
	k := waaKey{policy: policy, tp: tp}
	if we, ok := e.waa[k]; ok {
		return we
	}
	s := e.sim
	we := &waaEntry{}
	n := s.Cluster.TotalGPUs()
	encGPUs, decGPUs, err := sched.WAASplit(n, policy, p.ce, p.cd,
		p.encCopy+p.encTransient, p.decCopy+p.kvTotal)
	if err == nil {
		we.alloc, err = sched.AllocateWAA(s.Model, s.Cluster, policy, encGPUs, decGPUs, tp)
	}
	we.err = err
	if err == nil {
		we.encStages = we.alloc.EncStages()
		we.decStages = we.alloc.DecStages()
		we.encWeights = stageWeights(s, we.encStages)
		we.decWeights = stageWeights(s, we.decStages)
		we.encByTokens = map[int]waaEnc{}
		we.decByKey = map[waaDecKey]waaDec{}
	}
	e.waa[k] = we
	return we
}

// waaEncSide returns the memoized encoder-side composite (traversal,
// pipeline period, peak memory) for one encTokens value.
func (e *Evaluator) waaEncSide(we *waaEntry, encTokens int) (waaEnc, error) {
	if v, ok := we.encByTokens[encTokens]; ok {
		return v, nil
	}
	s := e.sim
	encTimes := scratch(&e.encTimes, len(we.encStages))
	for i, st := range we.encStages {
		t, err := e.encStage(st, encTokens)
		if err != nil {
			return waaEnc{}, err
		}
		encTimes[i] = t
	}
	var v waaEnc
	v.traversal = traversal(encTimes)
	for _, t := range encTimes {
		if t > v.period {
			v.period = t
		}
	}
	for i, st := range we.encStages {
		mem := we.encWeights[i] +
			int64(2*encTokens)*s.Model.KVBytesPerTokenLayer()*int64(max(st.EncLayers, 1))
		if mem > v.peak {
			v.peak = mem
		}
	}
	we.encByTokens[encTokens] = v
	return v, nil
}

// waaDecSide returns the memoized decoder-side composite (iteration
// period, traversal) for one (micro, clamped Bm) pair.
func (e *Evaluator) waaDecSide(we *waaEntry, micro, bm int) (waaDec, error) {
	k := waaDecKey{micro: micro, bm: bm}
	if v, ok := we.decByKey[k]; ok {
		return v, nil
	}
	decTimes := scratch(&e.decTimes, len(we.decStages))
	for i, st := range we.decStages {
		t, err := e.decStage(st, micro)
		if err != nil {
			return waaDec{}, err
		}
		decTimes[i] = t
	}
	v := waaDec{iter: pipelinePeriod(decTimes, bm), traversal: traversal(decTimes)}
	we.decByKey[k] = v
	return v, nil
}

// encStage returns the memoized encode stage time (per-Simulator mean
// sequence length).
func (e *Evaluator) encStage(st sched.Stage, totalTokens int) (float64, error) {
	k := stageTimeKey{st: st, batch: totalTokens}
	if e.lastEnc.ok && e.lastEnc.key == k {
		return e.lastEnc.val, nil
	}
	v, ok := e.encMemo[k]
	if !ok {
		var err error
		v, err = e.sim.encStageTime(st, totalTokens, e.sim.inMean)
		if err != nil {
			return 0, err
		}
		e.encMemo[k] = v
	}
	e.lastEnc.key, e.lastEnc.val, e.lastEnc.ok = k, v, true
	return v, nil
}

// decStage returns the memoized decode stage time (per-Simulator mean
// attention context).
func (e *Evaluator) decStage(st sched.Stage, batch int) (float64, error) {
	k := stageTimeKey{st: st, batch: batch}
	if e.lastDec.ok && e.lastDec.key == k {
		return e.lastDec.val, nil
	}
	v, ok := e.decMemo[k]
	if !ok {
		var err error
		v, err = e.sim.decStageTime(st, batch, e.sim.ctxMean)
		if err != nil {
			return 0, err
		}
		e.decMemo[k] = v
	}
	e.lastDec.key, e.lastDec.val, e.lastDec.ok = k, v, true
	return v, nil
}

// scratch resizes buf to n without reallocating when capacity allows.
func scratch(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// estimateRRA is Simulator.estimateRRA with memoized completion
// distributions and allocations, reused stage-time buffers, and the
// decode loop grouped by distinct micro-batch size: consecutive
// iterations whose rounded active micro-batch repeats reuse the
// previous iteration time (decTotal still accumulates term by term, so
// the float result is unchanged).
func (e *Evaluator) estimateRRA(cfg sched.Config) (Estimate, error) {
	s := e.sim
	ce, err := e.completion(cfg.ND)
	if err != nil {
		return Estimate{}, err
	}
	bd := cfg.BD
	be := int(math.Round(float64(bd) * ce.frac))
	if be < 1 {
		be = 1
	}
	cfg.BE = be

	ae := e.rraAlloc(cfg.TP)
	if ae.err != nil {
		return infeasible(cfg, ae.err.Error()), nil
	}
	alloc := ae.alloc

	encTokens := be * s.inMeanRounded
	microTokens := encTokens / rraMicroBatches
	if microTokens < 1 {
		microTokens = 1
	}
	encPhase, err := e.rraEncPhase(ae, microTokens)
	if err != nil {
		return Estimate{}, err
	}

	// Decoding iterations u = 1..ND with decaying active batches. The
	// active fraction is nonincreasing in u, so distinct micro-batch
	// values form runs; only the first iteration of a run pays the
	// (memoized) iteration-period lookup. decTotal still accumulates
	// term by term, keeping the float result identical to the reference.
	var decTotal, firstIter, iter float64
	lastMicro := 0
	for u := 1; u <= cfg.ND; u++ {
		active := int(math.Ceil(float64(bd) * ce.active[u]))
		if active < 1 {
			active = 1
		}
		micro := active / rraMicroBatches
		if micro < 1 {
			micro = 1
		}
		if micro != lastMicro {
			iter, err = e.rraDecIter(ae, micro)
			if err != nil {
				return Estimate{}, err
			}
			lastMicro = micro
		}
		decTotal += iter
		if u == 1 {
			firstIter = iter
		}
	}
	cycle := encPhase + decTotal

	// Memory check on the most loaded stage: weights + steady KV for BD
	// queries' share of layers.
	kvTokens := s.steadyKV * float64(bd)
	var peak int64
	for i, st := range alloc.Stages {
		mem := ae.weights[i] + s.kvBytes(kvTokens, st.DecLayers, st.TP)
		if mem > peak {
			peak = mem
		}
	}
	if peak > s.capBytes {
		est := infeasible(cfg, fmt.Sprintf("OOM: peak %d > capacity %d", peak, s.capBytes))
		est.PeakDecMem = peak
		return est, nil
	}

	tput := float64(be) / cycle
	s99 := s.pctlLen()
	avgIter := decTotal / float64(cfg.ND)
	latency := encPhase*(1+s99/float64(cfg.ND)) + s99*avgIter

	return Estimate{
		Config: cfg, Alloc: alloc, Feasible: true,
		Throughput: tput, Latency: latency,
		EncTime: encPhase, DecIterTime: firstIter, CycleTime: cycle,
		PeakEncMem: peak, PeakDecMem: peak,
	}, nil
}

// estimateWAA is Simulator.estimateWAA with the CE/CD probe, split and
// allocation memoized by (policy, TP) and the stage-time loops running
// over reused buffers and the per-(stage, batch) memo.
func (e *Evaluator) estimateWAA(cfg sched.Config) (Estimate, error) {
	s := e.sim
	be := cfg.BE
	bd := int(math.Round(float64(be) * s.outMean))
	if bd < 1 {
		bd = 1
	}
	cfg.BD = bd

	p, err := e.waaCostProbe()
	if err != nil {
		return Estimate{}, err
	}
	we := e.waaAlloc(cfg.Policy, cfg.TP, p)
	if we.err != nil {
		return infeasible(cfg, we.err.Error()), nil
	}
	alloc := we.alloc
	encTokens := be * s.inMeanRounded

	// Encoder pipeline: pipelined over successive batches.
	enc, err := e.waaEncSide(we, encTokens)
	if err != nil {
		return Estimate{}, err
	}

	// Decoder pipeline with Bm micro-batches (clamped to the stage
	// count, see Simulator.estimateWAA).
	bm := cfg.Bm
	if bm > len(we.decStages) {
		bm = len(we.decStages)
	}
	micro := bd / bm
	if micro < 1 {
		micro = 1
	}
	dec, err := e.waaDecSide(we, micro, bm)
	if err != nil {
		return Estimate{}, err
	}

	// Steady-state period: the slower side gates; the staged KV
	// handover binds only if slower than both.
	kvXfer := s.Profile.KVTransfer(encTokens)
	period := math.Max(dec.iter, enc.period)
	period = math.Max(period, kvXfer)

	// Memory feasibility per side.
	peakEnc := enc.peak
	var peakDec int64
	for i, st := range we.decStages {
		mem := we.decWeights[i] + s.kvBytes(s.steadyKV*float64(bd), st.DecLayers, st.TP)
		if mem > peakDec {
			peakDec = mem
		}
	}
	if peakEnc > s.capBytes || peakDec > s.capBytes {
		est := infeasible(cfg, fmt.Sprintf("OOM: enc %d / dec %d > capacity %d", peakEnc, peakDec, s.capBytes))
		est.PeakEncMem, est.PeakDecMem = peakEnc, peakDec
		return est, nil
	}

	tput := float64(be) / period

	s99 := s.pctlLen()
	latency := enc.traversal + kvXfer + (s99-1)*period + dec.traversal
	latency *= 1.05 // §6: buffer time for dynamic adjustments

	return Estimate{
		Config: cfg, Alloc: alloc, Feasible: true,
		Throughput: tput, Latency: latency,
		EncTime: enc.traversal, DecIterTime: dec.iter, CycleTime: period,
		PeakEncMem: peakEnc, PeakDecMem: peakDec,
	}, nil
}
