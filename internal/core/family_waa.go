// WAA family registration: both workload-aware variants share one
// estimate implementation (Simulator.estimateWAA / Evaluator.estimateWAA
// branch on the split rule internally via sched.WAASplit).
package core

import "exegpt/internal/sched"

func init() {
	waa := familyEstimator{
		ref:  (*Simulator).estimateWAA,
		fast: (*Evaluator).estimateWAA,
	}
	registerEstimator(sched.WAAC, waa)
	registerEstimator(sched.WAAM, waa)
}
