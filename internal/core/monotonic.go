// Monotonicity evaluation (§7.8, Table 5): sweep each control variable
// over its range while holding the others fixed, for all combinations of
// the other variables, and report the fraction of points where
// throughput or latency violates monotonicity beyond a tolerance.
package core

import (
	"fmt"

	"exegpt/internal/sched"
)

// MonoReport is the non-monotonicity fraction for one control variable.
type MonoReport struct {
	Policy   sched.Policy
	Variable string
	// LatencyViol and TputViol are fractions (0..1) of swept points that
	// violate monotonic ordering by more than the tolerance.
	LatencyViol, TputViol float64
	Points                int
}

// SweepSpec defines one Table 5 sweep: the variable under test and the
// combinations of the frozen variables.
type SweepSpec struct {
	Policy   sched.Policy
	Variable string
	// Values of the swept variable in increasing tput/latency
	// orientation.
	Values []int
	// Combos enumerates the frozen-variable settings.
	Combos []sched.Config
}

// EvaluateMonotonicity measures, for the given sweep, the fraction of
// adjacent point pairs where latency or throughput decreases by more
// than tol (relative) even though the oriented variable increased.
func (s *Scheduler) EvaluateMonotonicity(spec SweepSpec, tol float64) (MonoReport, error) {
	latViol, tputViol, points := 0, 0, 0
	ev := NewEvaluator(s.Sim)
	for _, base := range spec.Combos {
		prevLat, prevTput := -1.0, -1.0
		havePrev := false
		for _, v := range spec.Values {
			cfg := base
			switch spec.Variable {
			case "BE":
				cfg.BE = v
			case "BD":
				cfg.BD = v
			case "ND":
				cfg.ND = v
			case "Bm":
				cfg.Bm = v
			case "TP":
				cfg.TP.GPUs = v
			default:
				return MonoReport{}, fmt.Errorf("core: unknown sweep variable %q", spec.Variable)
			}
			est, err := ev.Estimate(cfg)
			if err != nil {
				return MonoReport{}, err
			}
			if !est.Feasible {
				havePrev = false
				continue
			}
			if havePrev {
				points++
				if est.Latency < prevLat*(1-tol) {
					latViol++
				}
				if est.Throughput < prevTput*(1-tol) {
					tputViol++
				}
			}
			prevLat, prevTput = est.Latency, est.Throughput
			havePrev = true
		}
	}
	rep := MonoReport{Policy: spec.Policy, Variable: spec.Variable, Points: points}
	if points > 0 {
		rep.LatencyViol = float64(latViol) / float64(points)
		rep.TputViol = float64(tputViol) / float64(points)
	}
	return rep, nil
}

// Table5Sweeps builds the paper's Table 5 sweeps for the simulator's
// model/cluster: RRA's B_E (via B_D) and N_D; WAA's B_E, TP and B_m.
// Orientation follows §4.2 (each variable increases tput and latency).
func (s *Scheduler) Table5Sweeps() []SweepSpec {
	n := s.Sim.Cluster.TotalGPUs()
	batchVals := []int{4, 8, 16, 32, 64, 128, 256, 512}
	ndValsDesc := []int{32, 24, 16, 12, 8, 6, 4, 2, 1} // decreasing ND
	bmValsDesc := []int{8, 6, 4, 3, 2, 1}              // decreasing Bm
	var tpVals []int
	for g := n; g >= 2; g -= 2 { // decreasing TP GPU count
		tpVals = append(tpVals, g)
	}

	rraCombos := func() []sched.Config {
		var out []sched.Config
		nds := []int{4, 8, 16}
		bds := []int{32, 128, 512}
		for _, nd := range nds {
			for _, bd := range bds {
				c := sched.Config{Policy: sched.RRA, BD: bd, BE: 1, ND: nd, TP: sched.TPSpec{Degree: 1}}
				out = append(out, c)
			}
		}
		return out
	}
	waaCombos := func() []sched.Config {
		var out []sched.Config
		for _, be := range []int{1, 2, 4, 8} {
			for _, bm := range []int{1, 2, 4} {
				out = append(out, sched.Config{Policy: sched.WAAM, BE: be, BD: 1, Bm: bm, TP: sched.TPSpec{Degree: 1}})
			}
		}
		return out
	}
	waaTPCombos := func() []sched.Config {
		var out []sched.Config
		for _, be := range []int{2, 8} {
			out = append(out, sched.Config{Policy: sched.WAAM, BE: be, BD: 1, Bm: 2, TP: sched.TPSpec{Degree: 2, GPUs: 2}})
		}
		return out
	}

	return []SweepSpec{
		{Policy: sched.RRA, Variable: "BD", Values: batchVals, Combos: rraCombos()},
		{Policy: sched.RRA, Variable: "ND", Values: ndValsDesc, Combos: rraCombos()},
		{Policy: sched.WAAM, Variable: "BE", Values: batchVals[:6], Combos: waaCombos()},
		{Policy: sched.WAAM, Variable: "TP", Values: tpVals, Combos: waaTPCombos()},
		{Policy: sched.WAAM, Variable: "Bm", Values: bmValsDesc, Combos: waaCombos()},
	}
}
