// Property tests for Frontier.Merge and its JSON round trip: the shard
// coordinator (internal/distsweep) folds per-shard frontiers in
// whatever order the envelopes arrive, after a marshal-unmarshal cycle,
// so merge must behave as a set union — commutative, associative,
// idempotent — and serialization must not change any BestUnder answer.
package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randEsts draws n estimates from a small discrete lattice: the
// collision-heavy distribution exercises the dominance and tie-break
// paths far more than uniform floats would. A few entries are
// infeasible or non-finite, which Add must ignore.
func randEsts(r *rand.Rand, n int) []*Estimate {
	ests := make([]*Estimate, n)
	for i := range ests {
		e := fp(
			float64(1+r.Intn(12))/2,
			float64(1+r.Intn(12))/2,
			1+r.Intn(6),
		)
		switch r.Intn(10) {
		case 0:
			e.Feasible = false
		case 1:
			e.Latency = math.Inf(1)
		}
		ests[i] = e
	}
	return ests
}

// buildFrontier folds points into a fresh frontier.
func buildFrontier(ests []*Estimate) *Frontier {
	f := &Frontier{}
	for _, e := range ests {
		f.Add(e)
	}
	return f
}

// cloneFrontier deep-copies a frontier so Merge (which mutates its
// receiver) can be compared against the original.
func cloneFrontier(f *Frontier) *Frontier {
	c := &Frontier{}
	for _, p := range f.Points {
		q := *p
		c.Points = append(c.Points, &q)
	}
	return c
}

// merged returns clone(a) ∪ b without touching either argument.
func merged(a, b *Frontier) *Frontier {
	c := cloneFrontier(a)
	c.Merge(b)
	return c
}

func TestFrontierMergeIsSetUnion(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		pa, pb, pc := randEsts(r, 1+r.Intn(20)), randEsts(r, 1+r.Intn(20)), randEsts(r, 1+r.Intn(20))
		a, b, c := buildFrontier(pa), buildFrontier(pb), buildFrontier(pc)

		// Commutative: a ∪ b == b ∪ a.
		ab, ba := merged(a, b), merged(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative\n a∪b %+v\n b∪a %+v", trial, ab, ba)
		}
		// Associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
		if l, rr := merged(ab, c), merged(a, merged(b, c)); !reflect.DeepEqual(l, rr) {
			t.Fatalf("trial %d: merge not associative", trial)
		}
		// Idempotent: a ∪ a == a.
		if aa := merged(a, a); !reflect.DeepEqual(aa, a) {
			t.Fatalf("trial %d: merge not idempotent\n a∪a %+v\n a   %+v", trial, aa, a)
		}
		// Merge == frontier of the pooled point multiset.
		if union := buildFrontier(append(append([]*Estimate(nil), pa...), pb...)); !reflect.DeepEqual(ab, union) {
			t.Fatalf("trial %d: merge != frontier of pooled points\n merge %+v\n union %+v", trial, ab, union)
		}
	}
}

func TestFrontierJSONRoundTripPreservesBestUnder(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		f := buildFrontier(randEsts(r, 1+r.Intn(30)))
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		back := &Frontier{}
		if err := json.Unmarshal(data, back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(f, back) {
			t.Fatalf("trial %d: round trip changed the frontier\n got %+v\nwant %+v", trial, back, f)
		}
		// Every query must answer identically, including bounds below,
		// between, at and above the stored latencies.
		bounds := []float64{0, math.Inf(1)}
		for _, p := range f.Points {
			bounds = append(bounds, p.Latency, p.Latency+0.01, p.Latency-0.01)
		}
		for i := 0; i < 20; i++ {
			bounds = append(bounds, 8*r.Float64())
		}
		for _, lb := range bounds {
			e1, ok1 := f.BestUnder(lb)
			e2, ok2 := back.BestUnder(lb)
			if ok1 != ok2 || !reflect.DeepEqual(e1, e2) {
				t.Fatalf("trial %d: BestUnder(%v) diverged after round trip", trial, lb)
			}
		}
	}
}

// FuzzFrontierMerge drives the same union properties from fuzzed seeds,
// so `go test -fuzz` can hunt for orderings the fixed-seed property
// test misses; the seed corpus runs as a regular unit test.
func FuzzFrontierMerge(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(4))
	f.Add(int64(42), uint8(0), uint8(17))
	f.Add(int64(-7), uint8(31), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, na, nb uint8) {
		r := rand.New(rand.NewSource(seed))
		pa, pb := randEsts(r, int(na%32)), randEsts(r, int(nb%32))
		a, b := buildFrontier(pa), buildFrontier(pb)
		ab, ba := merged(a, b), merged(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatal("merge not commutative")
		}
		if union := buildFrontier(append(append([]*Estimate(nil), pa...), pb...)); !reflect.DeepEqual(ab, union) {
			t.Fatal("merge != frontier of pooled points")
		}
		data, err := json.Marshal(ab)
		if err != nil {
			t.Fatal(err)
		}
		back := &Frontier{}
		if err := json.Unmarshal(data, back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ab, back) {
			t.Fatal("JSON round trip changed the merged frontier")
		}
		for lb := 0.0; lb < 8; lb += 0.25 {
			e1, ok1 := ab.BestUnder(lb)
			e2, ok2 := back.BestUnder(lb)
			if ok1 != ok2 || !reflect.DeepEqual(e1, e2) {
				t.Fatalf("BestUnder(%v) diverged after round trip", lb)
			}
		}
	})
}
