// Golden rows for the disaggregated prefill/decode family. The family
// is skeletal, but its estimates are pinned bit for bit like RRA's and
// WAA's so the estimator registry cannot drift silently. Regenerate
// with UPDATE_GOLDEN=1 after an intentional model change.
package core

import (
	"encoding/json"
	"math"
	"os"
	"sort"
	"testing"

	"exegpt/internal/sched"
)

const goldenDisaggPath = "testdata/golden_disagg.json"

// disaggGoldenGrid enumerates the pinned configs per deployment: a
// small BE x Bm grid plus one deliberately infeasible point (Bm = 0
// fails validation upstream, so the infeasible row uses an oversized
// TP request that the allocator rejects).
func disaggGoldenGrid() map[string][]sched.Config {
	grid := func(tpGPUs int) []sched.Config {
		var cfgs []sched.Config
		for _, be := range []int{1, 4, 16} {
			for _, bm := range []int{1, 2} {
				cfgs = append(cfgs, sched.Config{
					Policy: sched.Disagg, BE: be, BD: 1, Bm: bm,
					TP: sched.TPSpec{Degree: 1, GPUs: 0},
				})
			}
		}
		// Infeasible: a TP pool spanning every GPU leaves no room for
		// the prefill pool, so the branch admits but allocation fails.
		cfgs = append(cfgs, sched.Config{
			Policy: sched.Disagg, BE: 8, BD: 1, Bm: 1,
			TP: sched.TPSpec{Degree: 2, GPUs: tpGPUs},
		})
		return cfgs
	}
	return map[string][]sched.Config{
		"OPT-13B/4xA40/S":      grid(4),
		"GPT3-39B/16xA40/T":    grid(16),
		"T5-11B/8xA40/G":       grid(8),
		"GPT3-175B/16xA100/C1": grid(16),
	}
}

func loadGoldenDisagg(t testing.TB) []goldenCase {
	t.Helper()
	data, err := os.ReadFile(goldenDisaggPath)
	if err != nil {
		t.Fatal(err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(data, &cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("no golden disagg cases")
	}
	return cases
}

// TestGoldenDisagg pins the disagg family's Simulator and Evaluator
// paths to the committed rows. With UPDATE_GOLDEN=1 it rewrites the
// rows from the current Simulator instead.
func TestGoldenDisagg(t *testing.T) {
	sims := goldenSims(t)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		writeGoldenDisagg(t, sims)
	}
	evs := map[string]*Evaluator{}
	for name, sim := range sims {
		evs[name] = NewEvaluator(sim)
	}
	for _, g := range loadGoldenDisagg(t) {
		sim, ok := sims[g.Deployment]
		if !ok {
			t.Fatalf("unknown golden deployment %q", g.Deployment)
		}
		ref, err := sim.Estimate(g.config())
		if err != nil {
			t.Fatalf("%s %+v: simulator: %v", g.Deployment, g.config(), err)
		}
		checkGolden(t, "simulator", g, ref)
		fast, err := evs[g.Deployment].Estimate(g.config())
		if err != nil {
			t.Fatalf("%s %+v: evaluator: %v", g.Deployment, g.config(), err)
		}
		checkGolden(t, "evaluator", g, fast)
	}
}

// writeGoldenDisagg regenerates the committed rows from the reference
// Simulator.
func writeGoldenDisagg(t *testing.T, sims map[string]*Simulator) {
	t.Helper()
	var names []string
	for name := range sims {
		names = append(names, name)
	}
	sort.Strings(names)
	var cases []goldenCase
	for _, name := range names {
		sim := sims[name]
		for _, cfg := range disaggGoldenGrid()[name] {
			est, err := sim.Estimate(cfg)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			cases = append(cases, goldenCase{
				Deployment: name, Policy: int(cfg.Policy),
				BE: cfg.BE, BD: cfg.BD, Bm: cfg.Bm, ND: cfg.ND,
				TPDegree: cfg.TP.Degree, TPGPUs: cfg.TP.GPUs,
				Feasible: est.Feasible, Reason: est.Reason,
				Throughput: math.Float64bits(est.Throughput),
				Latency:    math.Float64bits(est.Latency),
				EncTime:    math.Float64bits(est.EncTime),
				DecIter:    math.Float64bits(est.DecIterTime),
				Cycle:      math.Float64bits(est.CycleTime),
				PeakEnc:    est.PeakEncMem, PeakDec: est.PeakDecMem,
				OutBE: est.Config.BE, OutBD: est.Config.BD,
				EncGPUs: est.Alloc.EncGPUs, DecGPUs: est.Alloc.DecGPUs,
				Stages: len(est.Alloc.Stages),
			})
		}
	}
	data, err := json.MarshalIndent(cases, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenDisaggPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
