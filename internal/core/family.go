// Per-family estimator registry: the core half of the execution-policy
// seam. Each sched.Family registers its reference (Simulator) and fast
// (Evaluator) estimate implementations here — in a family_<name>.go
// file alongside the runner driver selection — and both Estimate entry
// points dispatch through the registry. Adding a family never grows a
// switch in this package; the sched/familytest conformance suite pins
// the two paths bit-identical for every registration.
package core

import (
	"fmt"

	"exegpt/internal/sched"
)

// familyEstimator couples one family's two estimate paths. ref is the
// reference timeline construction; fast is the memoized hot-loop
// variant, required bit-identical to ref (the golden and equivalence
// tests enforce this for the built-ins, familytest for any family).
type familyEstimator struct {
	ref  func(*Simulator, sched.Config) (Estimate, error)
	fast func(*Evaluator, sched.Config) (Estimate, error)
}

var familyEstimators = map[sched.Policy]familyEstimator{}

// registerEstimator wires a family's estimate paths into Simulator and
// Evaluator dispatch; both paths are mandatory by construction.
func registerEstimator(p sched.Policy, fe familyEstimator) {
	if _, dup := familyEstimators[p]; dup {
		panic(fmt.Sprintf("core: duplicate estimator for policy %v", p))
	}
	if fe.ref == nil || fe.fast == nil {
		panic(fmt.Sprintf("core: estimator for policy %v must implement both paths", p))
	}
	familyEstimators[p] = fe
}

// axesFor returns the search axes for a policy, mapping the family's
// declared axis kinds onto the scheduler's bounded value ladders.
// Unregistered policies fall back to the pool-family axes; their
// configs are rejected by Validate at evaluation time.
func (s *Scheduler) axesFor(policy sched.Policy) []Axis {
	kinds := []sched.AxisKind{sched.AxisBE, sched.AxisBm}
	if f, ok := sched.FamilyOf(policy); ok {
		kinds = f.Axes
	}
	axes := make([]Axis, len(kinds))
	for i, k := range kinds {
		switch k {
		case sched.AxisBD:
			axes[i] = batchAxis("BD", s.MaxBatch)
		case sched.AxisBE:
			axes[i] = batchAxis("BE", s.MaxBatch/4)
		case sched.AxisND:
			axes[i] = ndAxis(s.MaxND)
		case sched.AxisBm:
			axes[i] = bmAxis(s.MaxBm)
		default:
			panic(fmt.Sprintf("core: unknown axis kind %d for policy %v", int(k), policy))
		}
	}
	return axes
}

// admitBranch reports whether a (policy, TP) pair can root a search
// branch, asking the family registry. Unregistered policies are
// admitted so their configs surface as infeasible estimates rather
// than silently vanishing from the search.
func admitBranch(policy sched.Policy, tp sched.TPSpec, totalGPUs int) bool {
	if f, ok := sched.FamilyOf(policy); ok {
		return f.AdmitTP(tp, totalGPUs)
	}
	return true
}
