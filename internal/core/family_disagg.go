// Disaggregated prefill/decode family registration and estimators. The
// family is skeletal — it exists to prove the policy seam end to end —
// but it is a real model: WAA-shaped dedicated pools with a fixed even
// GPU split and the KV handover on the critical path (pool-to-pool
// pull, no host-staging overlap), which is the defining cost of
// disaggregated serving. Golden rows live in
// testdata/golden_disagg.json; the familytest suite pins the two paths
// bit-identical like every other family.
package core

import (
	"fmt"
	"math"

	"exegpt/internal/sched"
)

func init() {
	registerEstimator(sched.Disagg, familyEstimator{
		ref:  (*Simulator).estimateDisagg,
		fast: (*Evaluator).estimateDisagg,
	})
}

// estimateDisagg simulates the disaggregated schedule: a prefill pool
// and a decode pool on an even GPU split, coupled by a serialized KV
// transfer.
func (s *Simulator) estimateDisagg(cfg sched.Config) (Estimate, error) {
	be := cfg.BE
	bd := int(math.Round(float64(be) * s.outMean))
	if bd < 1 {
		bd = 1
	}
	cfg.BD = bd

	alloc, err := sched.AllocateDisagg(s.Model, s.Cluster, cfg.TP)
	if err != nil {
		return infeasible(cfg, err.Error()), nil
	}
	encTokens := be * s.inMeanRounded
	ctx := s.meanCtx()

	// Prefill pool: pipelined over successive batches.
	encStages := alloc.EncStages()
	encTimes := make([]float64, len(encStages))
	for i, st := range encStages {
		encTimes[i], err = s.encStageTime(st, encTokens, s.inMean)
		if err != nil {
			return Estimate{}, err
		}
	}
	encTraversal := traversal(encTimes)
	encPeriod := 0.0
	for _, t := range encTimes {
		if t > encPeriod {
			encPeriod = t
		}
	}

	// Decode pool with Bm micro-batches, clamped like WAA's.
	decStages := alloc.DecStages()
	bm := cfg.Bm
	if bm > len(decStages) {
		bm = len(decStages)
	}
	micro := bd / bm
	if micro < 1 {
		micro = 1
	}
	decTimes := make([]float64, len(decStages))
	for i, st := range decStages {
		decTimes[i], err = s.decStageTime(st, micro, ctx)
		if err != nil {
			return Estimate{}, err
		}
	}
	decIter := pipelinePeriod(decTimes, bm)
	decTraversal := traversal(decTimes)

	// Steady-state period: the disaggregated cache handover is a direct
	// pool-to-pool pull with no host staging, so it serializes with the
	// prefill side — the prefill pool cannot admit the next batch until
	// the previous batch's cache has left.
	kvXfer := s.Profile.KVTransfer(encTokens)
	period := math.Max(decIter, encPeriod+kvXfer)

	// Memory feasibility per pool, same accounting as WAA's.
	var peakEnc, peakDec int64
	for _, st := range encStages {
		mem := sched.WeightBytesPerGPU(s.Model, st) +
			int64(2*encTokens)*s.Model.KVBytesPerTokenLayer()*int64(max(st.EncLayers, 1))
		if mem > peakEnc {
			peakEnc = mem
		}
	}
	kvPerQuery := s.steadyKVTokensPerQuery()
	for _, st := range decStages {
		mem := sched.WeightBytesPerGPU(s.Model, st) + s.kvBytes(kvPerQuery*float64(bd), st.DecLayers, st.TP)
		if mem > peakDec {
			peakDec = mem
		}
	}
	if peakEnc > s.capacity() || peakDec > s.capacity() {
		e := infeasible(cfg, fmt.Sprintf("OOM: enc %d / dec %d > capacity %d", peakEnc, peakDec, s.capacity()))
		e.PeakEncMem, e.PeakDecMem = peakEnc, peakDec
		return e, nil
	}

	tput := float64(be) / period

	// Latency: prefill traversal, the serialized handover, then S99
	// decode iterations. No dynamic-adjustment buffer — the pools never
	// rebalance, that is the point of the fixed split.
	s99 := s.pctlLen()
	latency := encTraversal + kvXfer + (s99-1)*period + decTraversal

	return Estimate{
		Config: cfg, Alloc: alloc, Feasible: true,
		Throughput: tput, Latency: latency,
		EncTime: encTraversal, DecIterTime: decIter, CycleTime: period,
		PeakEncMem: peakEnc, PeakDecMem: peakDec,
	}, nil
}

// estimateDisagg is the family's Evaluator path. The skeletal family
// defers to the reference implementation — bit-equality by construction
// — and leans on the Evaluator's whole-result memo for the warm-path
// speedup; a production family would add per-side memos like WAA's.
func (e *Evaluator) estimateDisagg(cfg sched.Config) (Estimate, error) {
	return e.sim.estimateDisagg(cfg)
}
