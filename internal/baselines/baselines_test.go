package baselines

import (
	"math"
	"testing"

	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/profile"
	"exegpt/internal/workload"
)

func engine(t testing.TB, sys System, m model.Model, gpus int, cluster hw.Cluster) *Engine {
	t.Helper()
	sub, err := cluster.Sub(gpus)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.New(m, sub)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys, m, sub, p.Run())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func reqs(t testing.TB, task workload.Task, n int, seed int64) []workload.Request {
	t.Helper()
	g, err := workload.NewGenerator(task, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g.Batch(n)
}

func TestSystemString(t *testing.T) {
	names := map[System]string{FT: "FasterTransformer", DSI: "DeepSpeed-Inference", ORCA: "ORCA", VLLM: "vLLM"}
	for sys, want := range names {
		if sys.String() != want {
			t.Fatalf("%d: %s", sys, sys.String())
		}
	}
	if System(9).String() == "" {
		t.Fatal("unknown system should render")
	}
}

func TestNewValidates(t *testing.T) {
	sub, _ := hw.A40Cluster.Sub(4)
	if _, err := New(FT, model.Model{}, sub, &profile.Table{TPDegrees: []int{1}}); err == nil {
		t.Fatal("bad model should fail")
	}
	if _, err := New(FT, model.OPT13B, hw.Cluster{}, nil); err == nil {
		t.Fatal("bad cluster should fail")
	}
	if _, err := New(FT, model.OPT13B, sub, nil); err == nil {
		t.Fatal("nil profile should fail")
	}
}

func TestParallelConfig(t *testing.T) {
	// 4 GPUs on one node: full TP, single pipeline stage.
	e := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	if e.TP() != 4 || e.PPStages() != 1 {
		t.Fatalf("TP=%d PP=%d, want 4/1", e.TP(), e.PPStages())
	}
	// 16 GPUs over two nodes: TP=8 within nodes, two pipeline stages.
	e16 := engine(t, FT, model.GPT339B, 16, hw.A40Cluster)
	if e16.TP() != 8 || e16.PPStages() != 2 {
		t.Fatalf("TP=%d PP=%d, want 8/2", e16.TP(), e16.PPStages())
	}
}

func TestFTCompletesAll(t *testing.T) {
	e := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	rs := reqs(t, workload.Summarization, 120, 5)
	res, err := e.Run(24, rs, workload.Summarization.Out.Max)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != len(rs) {
		t.Fatalf("completed %d of %d", res.Stats.Completed, len(rs))
	}
	if res.Stats.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

// FT pays for completed queries: iterations per batch equal the batch's
// longest output, so a long-tailed batch wastes compute (the
// diminishing-batches problem, §2).
func TestFTNoEarlyTermination(t *testing.T) {
	e := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	short := workload.Request{ID: 0, InLen: 64, OutLen: 4}
	long := workload.Request{ID: 1, InLen: 64, OutLen: 200}
	res, err := e.Run(2, []workload.Request{short, long}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 200 {
		t.Fatalf("iterations = %d, want 200 (no early exit)", res.Iterations)
	}
}

// ORCA early-terminates and refills: on the same long-tailed pair it
// finishes in fewer total iterations than FT only when there is refill
// work; with 2 queries it still runs 200 iterations but the completed
// query stops consuming a slot.
func TestORCAEarlyTermination(t *testing.T) {
	e := engine(t, ORCA, model.OPT13B, 4, hw.A40Cluster)
	var stream []workload.Request
	for i := 0; i < 40; i++ {
		stream = append(stream, workload.Request{ID: i, InLen: 64, OutLen: 4 + (i%5)*40})
	}
	res, err := e.Run(8, stream, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != len(stream) {
		t.Fatalf("completed %d", res.Stats.Completed)
	}
	ft := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	ftRes, err := ft.Run(8, stream, 200)
	if err != nil {
		t.Fatal(err)
	}
	// ORCA's iteration-level scheduling should beat FT's fixed batches
	// on this spread of output lengths when latency is unconstrained...
	// except ORCA pays prefill inside iterations. At minimum it must not
	// waste FT's completed-query compute.
	if res.Stats.Throughput < ftRes.Stats.Throughput*0.5 {
		t.Fatalf("ORCA %.2f collapsed vs FT %.2f", res.Stats.Throughput, ftRes.Stats.Throughput)
	}
}

func TestVLLMOneprefillPerIteration(t *testing.T) {
	e := engine(t, VLLM, model.OPT13B, 4, hw.A40Cluster)
	rs := reqs(t, workload.Summarization, 60, 7)
	res, err := e.Run(16, rs, workload.Summarization.Out.Max)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != len(rs) {
		t.Fatalf("completed %d", res.Stats.Completed)
	}
	// One admission per iteration: at least as many iterations as
	// requests.
	if res.Iterations < len(rs) {
		t.Fatalf("iterations %d < requests %d", res.Iterations, len(rs))
	}
}

// vLLM's paged cache admits larger batches than FT's worst-case
// reservation.
func TestVLLMFitsLargerBatches(t *testing.T) {
	ft := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	maxFT := ft.MaxFeasibleBatch(256, 640, 0)
	vl := engine(t, VLLM, model.OPT13B, 4, hw.A40Cluster)
	// Paged feasibility is bounded by actual tokens, not worst case:
	// run an actual large batch that FT could not reserve.
	big := maxFT + 40
	rs := reqs(t, workload.Summarization, big, 11)
	if _, err := vl.Run(big, rs, workload.ConvQA2.Out.Max); err != nil {
		t.Fatalf("vLLM should page through batch %d: %v", big, err)
	}
}

// Under latency bounds FT outperforms DSI, ORCA and vLLM (Figure 7's
// ordering), because vLLM pays executor overhead, ORCA pays in-iteration
// prefill, and DSI's gains are marginal in this regime.
func TestFigure7Ordering(t *testing.T) {
	task := workload.Summarization
	rs := reqs(t, task, 200, 13)
	in, out, err := task.Dists()
	if err != nil {
		t.Fatal(err)
	}
	p99 := out.Percentile(0.99)

	ft := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	// Latency bound from FT's sweep (bottom 70%).
	sweep, err := ft.LatencySweep(in.Mean(), out.Mean(), task.Out.Max, task.Out.Max)
	if err != nil {
		t.Fatal(err)
	}
	bound := sweep[len(sweep)*7/10]

	tput := map[System]float64{}
	for _, sys := range []System{FT, DSI, ORCA, VLLM} {
		e := engine(t, sys, model.OPT13B, 4, hw.A40Cluster)
		boundLen := task.Out.Max // FT/DSI: max length
		if sys == ORCA || sys == VLLM {
			boundLen = p99
		}
		b, err := e.PickBatch(bound, in.Mean(), out.Mean(), boundLen, task.Out.Max)
		if err != nil {
			t.Fatal(err)
		}
		if b == 0 {
			tput[sys] = 0
			continue
		}
		res, err := e.Run(b, rs, task.Out.Max)
		if err != nil {
			t.Fatal(err)
		}
		tput[sys] = res.Stats.Throughput
	}
	if tput[FT] < tput[VLLM] {
		t.Fatalf("FT %.2f should beat vLLM %.2f under latency bounds", tput[FT], tput[VLLM])
	}
	if tput[FT] < tput[ORCA]*0.95 {
		t.Fatalf("FT %.2f should be at least competitive with ORCA %.2f", tput[FT], tput[ORCA])
	}
	if tput[FT] <= 0 {
		t.Fatal("FT found no feasible batch")
	}
}

func TestLatencyMonotoneInBatch(t *testing.T) {
	e := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	prev := 0.0
	for _, b := range []int{4, 8, 16, 32, 64} {
		lat, err := e.LatencyForBound(b, 256, 32, 80)
		if err != nil {
			t.Fatal(err)
		}
		if lat <= prev {
			t.Fatalf("latency not increasing at batch %d: %v after %v", b, lat, prev)
		}
		prev = lat
	}
}

func TestPickBatchRespectsBound(t *testing.T) {
	e := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	for _, bound := range []float64{2, 5, 20, math.Inf(1)} {
		b, err := e.PickBatch(bound, 256, 32, 80, 80)
		if err != nil {
			t.Fatal(err)
		}
		if b == 0 {
			continue
		}
		if b%4 != 0 {
			t.Fatalf("batch %d not a multiple of 4", b)
		}
		if math.IsInf(bound, 1) {
			continue
		}
		lat, err := e.LatencyForBound(b, 256, 32, 80)
		if err != nil {
			t.Fatal(err)
		}
		if lat >= bound {
			t.Fatalf("picked batch %d violates bound: %v >= %v", b, lat, bound)
		}
		// The next size up must violate (maximality), unless capped.
		if b+4 <= e.MaxFeasibleBatch(256, 80, 512) {
			lat2, err := e.LatencyForBound(b+4, 256, 32, 80)
			if err != nil {
				t.Fatal(err)
			}
			if lat2 < bound {
				t.Fatalf("batch %d also fits bound %v; PickBatch not maximal", b+4, bound)
			}
		}
	}
}

func TestPickBatchTighterBoundSmallerBatch(t *testing.T) {
	e := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	loose, err := e.PickBatch(60, 256, 32, 80, 80)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := e.PickBatch(3, 256, 32, 80, 80)
	if err != nil {
		t.Fatal(err)
	}
	if tight > loose {
		t.Fatalf("tight bound batch %d > loose bound batch %d", tight, loose)
	}
}

func TestLatencySweepSortedPositive(t *testing.T) {
	e := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	sweep, err := e.LatencySweep(256, 32, 80, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) < 4 {
		t.Fatalf("sweep too short: %d", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] < sweep[i-1] || sweep[i] <= 0 {
			t.Fatalf("sweep not sorted/positive at %d", i)
		}
	}
}

func TestRunInputValidation(t *testing.T) {
	e := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	if _, err := e.Run(0, reqs(t, workload.Summarization, 4, 1), 80); err == nil {
		t.Fatal("batch 0 should fail")
	}
	if _, err := e.Run(4, nil, 80); err == nil {
		t.Fatal("no requests should fail")
	}
}

func TestDSIFasterThanFTSmallBatch(t *testing.T) {
	ft := engine(t, FT, model.OPT13B, 4, hw.A40Cluster)
	dsi := engine(t, DSI, model.OPT13B, 4, hw.A40Cluster)
	rs := reqs(t, workload.Summarization, 48, 17)
	ftRes, err := ft.Run(8, rs, workload.Summarization.Out.Max)
	if err != nil {
		t.Fatal(err)
	}
	dsiRes, err := dsi.Run(8, rs, workload.Summarization.Out.Max)
	if err != nil {
		t.Fatal(err)
	}
	if dsiRes.Stats.Throughput < ftRes.Stats.Throughput {
		t.Fatalf("DSI small-batch kernels should not lose to FT: %.2f vs %.2f",
			dsiRes.Stats.Throughput, ftRes.Stats.Throughput)
	}
}

func BenchmarkFTRun(b *testing.B) {
	e := engine(b, FT, model.OPT13B, 4, hw.A40Cluster)
	rs := reqs(b, workload.Summarization, 100, 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(20, rs, 80); err != nil {
			b.Fatal(err)
		}
	}
}
