// Package baselines implements the LLM inference systems ExeGPT is
// compared against (§2, §7): FasterTransformer (FT), DeepSpeed Inference
// (DSI), ORCA, and vLLM. All run over the same simulated cluster and
// profile tables as XRunner, differing only in scheduling discipline:
//
//   - FT: fixed batches, no early termination — every query in a batch
//     pays decode iterations until the batch's longest query finishes;
//     worst-case KV reservation.
//   - DSI: FT plus hybrid micro-batching (more encode micro-batches,
//     fewer decode micro-batches) and custom small-batch GeMM kernels.
//   - ORCA: iteration-level scheduling — completed queries are replaced
//     by encoding new ones inside the running decode batch, which keeps
//     batches full but injects prefill work into decode iterations
//     (pipeline bubbles, variable latency).
//   - vLLM: ORCA-style iteration-level scheduling restricted to one
//     prefill per iteration, paged KV cache (larger feasible batches),
//     and a per-iteration CPU/executor overhead that is not masked by
//     GPU kernels (§7.2).
//
// The parallel configuration follows the papers' methodology: tensor
// parallelism is maximized across the GPUs of one machine and pipeline
// parallelism spans machines (§7.1).
package baselines

import (
	"fmt"
	"math"
	"sort"

	"exegpt/internal/hw"
	"exegpt/internal/kvcache"
	"exegpt/internal/metrics"
	"exegpt/internal/model"
	"exegpt/internal/profile"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// System identifies a baseline engine.
type System int

// Baseline systems.
const (
	FT System = iota
	DSI
	ORCA
	VLLM
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case FT:
		return "FasterTransformer"
	case DSI:
		return "DeepSpeed-Inference"
	case ORCA:
		return "ORCA"
	case VLLM:
		return "vLLM"
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// vllmIterOverhead is the fixed per-iteration executor overhead of
// vLLM's Python engine that GPU kernels do not mask (§7.2).
const vllmIterOverhead = 15e-3

// vllmPerSeqOverhead is the per-sequence share of that executor
// overhead: iteration-level scheduling, sampling and detokenization run
// on the CPU once per active sequence every iteration, so the unmasked
// cost grows with the running batch (§7.2: the overhead "degrades its
// performance" precisely on the large batches where ORCA/vLLM would
// otherwise amortize their kernels).
const vllmPerSeqOverhead = 0.3e-3

// dsiSmallBatchBoost is DSI's custom-GeMM speedup on small decode
// batches.
const dsiSmallBatchBoost = 0.92

// vllmKernelFactor models the gap between vLLM's (and thus the paper's
// ORCA proxy's) unfused Python-driven kernels and FT's hand-fused CUDA
// kernels (§7.2: "certain execution overhead that is not masked by GPU
// kernels degrades its performance").
const vllmKernelFactor = 1.3

// Engine runs one baseline system on a deployment.
type Engine struct {
	System  System
	Model   model.Model
	Cluster hw.Cluster
	Prof    *profile.Table

	// tp and stages cache the derived parallel configuration.
	tp     int
	stages []sched.Stage
}

// New builds a baseline engine with the papers' parallel configuration:
// TP = min(GPUs per node, total GPUs, max profiled degree), PP = rest.
func New(system System, m model.Model, cluster hw.Cluster, prof *profile.Table) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if prof == nil {
		return nil, fmt.Errorf("baselines: nil profile")
	}
	n := cluster.TotalGPUs()
	tp := 1
	for _, d := range prof.TPDegrees {
		if d <= cluster.GPUsPerNode && d <= n && d > tp {
			tp = d
		}
	}
	e := &Engine{System: system, Model: m, Cluster: cluster, Prof: prof, tp: tp}
	alloc, err := sched.AllocateRRA(m, cluster, sched.TPSpec{Degree: tp, GPUs: (n / tp) * tp})
	if err != nil {
		return nil, err
	}
	e.stages = alloc.Stages
	return e, nil
}

// TP returns the tensor-parallel degree in use.
func (e *Engine) TP() int { return e.tp }

// PPStages returns the pipeline depth.
func (e *Engine) PPStages() int { return len(e.stages) }

func linkClass(s sched.Stage) profile.LinkClass {
	if s.CrossNode {
		return profile.InterNode
	}
	return profile.IntraNode
}

func (e *Engine) ppClass(from sched.Stage) profile.LinkClass {
	last := from.FirstRank + from.TP - 1
	next := (last + 1) % e.Cluster.TotalGPUs()
	if e.Cluster.NodeOf(last) != e.Cluster.NodeOf(next) {
		return profile.InterNode
	}
	return profile.IntraNode
}

// encTime returns the pipelined encode time of a batch with the given
// total prompt tokens, using microBatches encode micro-batches.
func (e *Engine) encTime(tokens int, meanSeq float64, microBatches int) (float64, error) {
	if microBatches < 1 {
		microBatches = 1
	}
	perMicro := tokens / microBatches
	if perMicro < 1 {
		perMicro = 1
	}
	var sum, max float64
	for _, st := range e.stages {
		layer, err := e.Prof.EncodeLayer(perMicro, meanSeq, st.TP, linkClass(st))
		if err != nil {
			return 0, err
		}
		if e.System == ORCA || e.System == VLLM {
			layer *= vllmKernelFactor
		}
		send, err := e.Prof.PPSend(perMicro, e.ppClass(st))
		if err != nil {
			return 0, err
		}
		t := float64(st.EncLayers)*layer + send
		sum += t
		if t > max {
			max = t
		}
	}
	if p := float64(microBatches) * max; p > sum {
		return p, nil
	}
	return sum, nil
}

// decIterTime returns one decode-iteration period for the batch, with
// microBatches decode micro-batches.
func (e *Engine) decIterTime(batch int, ctx float64, microBatches int) (float64, error) {
	if microBatches < 1 {
		microBatches = 1
	}
	per := batch / microBatches
	if per < 1 {
		per = 1
	}
	var sum, max float64
	for _, st := range e.stages {
		layer, err := e.Prof.DecodeLayer(per, ctx, st.TP, linkClass(st))
		if err != nil {
			return 0, err
		}
		if e.System == DSI && per < 32 {
			layer *= dsiSmallBatchBoost
		}
		if e.System == ORCA || e.System == VLLM {
			layer *= vllmKernelFactor
		}
		send, err := e.Prof.PPSend(per, e.ppClass(st))
		if err != nil {
			return 0, err
		}
		t := float64(st.DecLayers)*layer + send
		sum += t
		if t > max {
			max = t
		}
	}
	period := sum
	if p := float64(microBatches) * max; p > period {
		period = p
	}
	// ORCA is proprietary; the paper evaluates it through vLLM's
	// iteration-level scheduling mode (§7.1), so both carry the vLLM
	// executor overhead: a fixed engine cost plus a per-sequence cost
	// over the whole running batch.
	if e.System == VLLM || e.System == ORCA {
		period += vllmIterOverhead + vllmPerSeqOverhead*float64(batch)
	}
	return period, nil
}

// microBatchesFor returns the encode/decode micro-batch counts per
// system: FT and ORCA use two; DSI uses more for encoding and fewer for
// decoding (§2); vLLM's executor issues a single batch.
func (e *Engine) microBatchesFor() (enc, dec int) {
	switch e.System {
	case DSI:
		return 4, 2
	case VLLM:
		return 1, 1
	default:
		return 2, 2
	}
}

// kvManager builds the per-GPU KV manager appropriate to the system:
// vLLM pages; FT/DSI reserve worst case; ORCA allocates exactly.
func (e *Engine) kvManager(mem *hw.MemTracker, perToken int64) kvcache.Manager {
	switch e.System {
	case VLLM:
		return kvcache.NewPaged(mem, perToken, 16)
	case ORCA:
		return kvcache.NewCompacting(mem, perToken)
	default:
		return kvcache.NewReserved(mem, perToken)
	}
}

// maxStageMem returns the weight bytes of the most loaded stage GPU and
// its per-token KV cost.
func (e *Engine) maxStageMem() (weights int64, perToken int64) {
	for _, st := range e.stages {
		w := sched.WeightBytesPerGPU(e.Model, st)
		if w > weights {
			weights = w
			perToken = e.Model.KVBytesPerTokenLayer() * int64(st.DecLayers) / int64(st.TP)
		}
	}
	return weights, perToken
}

// Run executes the request stream with the given (fixed) batch size and
// returns run statistics. maxOut is the worst-case output length used
// for FT/DSI KV reservation and fixed-iteration decoding.
func (e *Engine) Run(batch int, reqs []workload.Request, maxOut int) (Result, error) {
	if batch < 1 {
		return Result{}, fmt.Errorf("baselines: batch must be >= 1")
	}
	if len(reqs) == 0 {
		return Result{}, fmt.Errorf("baselines: no requests")
	}
	switch e.System {
	case FT, DSI:
		return e.runFixedBatch(batch, reqs, maxOut)
	case ORCA, VLLM:
		return e.runIterationLevel(batch, reqs)
	}
	return Result{}, fmt.Errorf("baselines: unknown system %v", e.System)
}

// Result is a baseline execution summary.
type Result struct {
	Stats      metrics.RunStats
	PeakMem    int64
	Iterations int
}

// runFixedBatch implements FT/DSI: take a batch, encode it, decode with
// the full batch cost until every query in the batch reaches its output
// length (no early termination), repeat.
//
// The picked batch size is an upper bound, not a guarantee: PickBatch
// sizes it from the task's mean input length, while the worst-case KV
// reservation here uses each drawn request's actual length, so a run of
// above-mean inputs can exceed memory at the nominal size (T5-11B on C2
// under -quick). Each batch therefore fills until its reservation no
// longer fits and is cut there — the largest feasible batch — instead
// of failing the run. Batches that fit at the nominal size are
// unaffected.
func (e *Engine) runFixedBatch(batch int, reqs []workload.Request, maxOut int) (Result, error) {
	encMB, decMB := e.microBatchesFor()
	weights, perToken := e.maxStageMem()
	mem := hw.NewMemTracker(e.Cluster.GPU.MemoryBytes)
	if err := mem.Alloc(weights); err != nil {
		return Result{}, fmt.Errorf("baselines: weights do not fit: %w", err)
	}
	kv := e.kvManager(mem, perToken)
	rec := metrics.NewRecorder()
	res := Result{}
	now := 0.0
	var ends []float64

	for start := 0; start < len(reqs); {
		limit := start + batch
		if limit > len(reqs) {
			limit = len(reqs)
		}
		cut := start
		for cut < limit {
			r := reqs[cut]
			if err := kv.Admit(r.ID, r.InLen, r.InLen+maxOut); err != nil {
				if cut == start {
					return Result{}, fmt.Errorf("baselines: %v query %d does not fit even alone: %w", e.System, r.ID, err)
				}
				break
			}
			cut++
		}
		cur := reqs[start:cut]
		start = cut
		tokens, longest := 0, 0
		meanIn := 0.0
		for _, r := range cur {
			tokens += r.InLen
			if r.OutLen > longest {
				longest = r.OutLen
			}
			meanIn += float64(r.InLen)
		}
		meanIn /= float64(len(cur))
		encT, err := e.encTime(tokens, meanIn, encMB)
		if err != nil {
			return Result{}, err
		}
		batchStart := now
		now += encT
		// Decode: the batch stays at full size for `longest` iterations
		// (white boxes in Figure 1: completed queries keep computing).
		for it := 0; it < longest; it++ {
			// Combined self+cross context per query.
			ctx := meanIn + float64(it) + 1
			dt, err := e.decIterTime(len(cur), ctx, decMB)
			if err != nil {
				return Result{}, err
			}
			now += dt
			res.Iterations++
			for _, r := range cur {
				if r.OutLen == it+1 {
					// The query's tokens are ready, but without early
					// termination its latency runs to its own completion
					// iteration; it keeps occupying compute until the
					// batch ends.
					rec.Add(now - batchStart)
					ends = append(ends, now)
				}
			}
		}
		for _, r := range cur {
			if err := kv.Release(r.ID); err != nil {
				return Result{}, err
			}
		}
	}
	res.Stats = metrics.Summarize(rec, now, ends)
	res.PeakMem = mem.Peak()
	return res, nil
}

// runIterationLevel implements ORCA/vLLM: a running batch of up to
// `batch` slots; each iteration first admits new queries (whose prefill
// executes inside the iteration), then decodes one token for every
// active query, early-terminating completed ones.
func (e *Engine) runIterationLevel(batch int, reqs []workload.Request) (Result, error) {
	_, decMB := e.microBatchesFor()
	weights, perToken := e.maxStageMem()
	mem := hw.NewMemTracker(e.Cluster.GPU.MemoryBytes)
	if err := mem.Alloc(weights); err != nil {
		return Result{}, fmt.Errorf("baselines: weights do not fit: %w", err)
	}
	kv := e.kvManager(mem, perToken)
	rec := metrics.NewRecorder()
	res := Result{}
	now := 0.0
	var ends []float64

	type slot struct {
		req   workload.Request
		start float64
		pos   int
	}
	var active []*slot
	pending := append([]workload.Request(nil), reqs...)
	compactor, _ := kv.(*kvcache.Compacting)

	for len(pending) > 0 || len(active) > 0 {
		// Admission: ORCA fills every free slot; vLLM admits at most one
		// prefill per iteration (its iteration-level mode, §7.1).
		admitCap := batch - len(active)
		if e.System == VLLM && admitCap > 1 {
			admitCap = 1
		}
		prefillTokens := 0
		var meanNewIn float64
		admitted := 0
		for admitted < admitCap && len(pending) > 0 {
			r := pending[0]
			if err := kv.Admit(r.ID, r.InLen, r.InLen+r.OutLen); err != nil {
				if len(active) == 0 && admitted == 0 {
					return Result{}, fmt.Errorf("baselines: %v query %d does not fit: %w", e.System, r.ID, err)
				}
				break
			}
			pending = pending[1:]
			active = append(active, &slot{req: r, start: now})
			prefillTokens += r.InLen
			meanNewIn += float64(r.InLen)
			admitted++
		}
		if admitted > 0 {
			meanNewIn /= float64(admitted)
		}

		// Iteration cost: prefill of the admitted queries plus one
		// decode step of the whole batch. Mixing the two in one
		// iteration is exactly what creates ORCA's pipeline bubbles and
		// variable latency (§2).
		var iterT float64
		if prefillTokens > 0 {
			encT, err := e.encTime(prefillTokens, meanNewIn, 1)
			if err != nil {
				return Result{}, err
			}
			iterT += encT
		}
		ctx := 0.0
		for _, s := range active {
			ctx += float64(e.Model.ContextLen(s.req.InLen, s.pos))
		}
		if len(active) > 0 {
			ctx /= float64(len(active))
			dt, err := e.decIterTime(len(active), ctx, decMB)
			if err != nil {
				return Result{}, err
			}
			iterT += dt
		}
		now += iterT
		res.Iterations++

		survivors := active[:0]
		for _, s := range active {
			s.pos++
			if s.pos >= s.req.OutLen {
				if err := kv.Release(s.req.ID); err != nil {
					return Result{}, err
				}
				rec.Add(now - s.start)
				ends = append(ends, now)
			} else {
				if err := kv.Append(s.req.ID); err != nil {
					return Result{}, fmt.Errorf("baselines: %v decode OOM: %w", e.System, err)
				}
				survivors = append(survivors, s)
			}
		}
		active = survivors
		if compactor != nil {
			compactor.Compact()
		}
	}
	res.Stats = metrics.Summarize(rec, now, ends)
	res.PeakMem = mem.Peak()
	return res, nil
}

// LatencyForBound returns the latency metric each system is held to
// when selecting a batch under a latency bound (§7.1): FT and DSI are
// bound on generating a maximum-length output; ORCA/vLLM on the
// 99th-percentile length. For iteration-level systems the bound
// includes the expected prefill work injected into each iteration as
// completed queries are replaced — the effect that "increases overall
// latency, making it hard to meet latency bounds" (§7.2). meanOut is
// the workload mean output length used for that replacement rate.
func (e *Engine) LatencyForBound(batch int, meanIn, meanOut float64, boundLen int) (float64, error) {
	encMB, decMB := e.microBatchesFor()
	encT, err := e.encTime(int(float64(batch)*meanIn), meanIn, encMB)
	if err != nil {
		return 0, err
	}
	var prefillPerIter float64
	if e.System == ORCA || e.System == VLLM {
		// Initial prefill happens one query at a time inside iterations;
		// steady state replaces batch/meanOut queries per iteration.
		replacements := float64(batch) / math.Max(meanOut, 1)
		if e.System == VLLM && replacements > 1 {
			replacements = 1
		}
		one, err := e.encTime(int(replacements*meanIn), meanIn, 1)
		if err != nil {
			return 0, err
		}
		prefillPerIter = one
		encT = 0 // no separate up-front encoding phase
	}
	total := encT
	for it := 0; it < boundLen; it++ {
		dt, err := e.decIterTime(batch, meanIn+float64(it)+1, decMB)
		if err != nil {
			return 0, err
		}
		total += dt + prefillPerIter
	}
	return total, nil
}

// MaxFeasibleBatch returns the largest batch (multiple of four, §7.1)
// whose KV requirement fits in memory, capped at cap.
func (e *Engine) MaxFeasibleBatch(meanIn float64, maxOut int, cap int) int {
	weights, perToken := e.maxStageMem()
	avail := e.Cluster.GPU.MemoryBytes - weights
	if avail <= 0 || perToken <= 0 {
		return 0
	}
	perQuery := (int64(meanIn) + int64(maxOut)) * perToken
	b := int(avail / perQuery)
	b -= b % 4
	if b < 4 {
		b = 0
	}
	if cap > 0 && b > cap {
		b = cap
	}
	return b
}

// PickBatch selects the largest batch in multiples of four whose
// bound-latency fits under lbound (§7.1 methodology). It returns 0 when
// even batch 4 misses the bound.
func (e *Engine) PickBatch(lbound float64, meanIn, meanOut float64, boundLen, maxOut int) (int, error) {
	maxB := e.MaxFeasibleBatch(meanIn, maxOut, 512)
	if maxB == 0 {
		return 0, nil
	}
	if math.IsInf(lbound, 1) {
		return maxB, nil
	}
	// Latency is monotone in batch: binary search over multiples of 4.
	lo, hi := 0, maxB/4 // lo=0 means none feasible
	for lo < hi {
		mid := (lo + hi + 1) / 2
		lat, err := e.LatencyForBound(mid*4, meanIn, meanOut, boundLen)
		if err != nil {
			return 0, err
		}
		if lat < lbound {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo * 4, nil
}

// LatencySweep returns the bound-latency at every feasible batch size in
// multiples of four — the sweep the paper uses to select its latency
// bounds (bottom 10%/30%/70% and infinity, §7.1).
func (e *Engine) LatencySweep(meanIn, meanOut float64, boundLen, maxOut int) ([]float64, error) {
	maxB := e.MaxFeasibleBatch(meanIn, maxOut, 512)
	var lats []float64
	for b := 4; b <= maxB; b += 4 {
		lat, err := e.LatencyForBound(b, meanIn, meanOut, boundLen)
		if err != nil {
			return nil, err
		}
		lats = append(lats, lat)
	}
	sort.Float64s(lats)
	return lats, nil
}
