// Package hw models the GPU clusters of the ExeGPT evaluation (Table 2):
// device compute/memory characteristics, intra- and inter-node
// interconnects, collective-communication costs, and host storage used
// for model (re)deployment (Table 4).
//
// The package replaces the paper's physical A40 and A100 clusters; every
// quantity the scheduler or runner consumes (kernel roofline inputs,
// all-reduce times, memory capacities, load bandwidths) is derived from
// the specs defined here.
package hw

import (
	"fmt"
	"math"
)

// GPUSpec describes one GPU model.
type GPUSpec struct {
	Name string
	// MemoryBytes is the device HBM/GDDR capacity.
	MemoryBytes int64
	// PeakFLOPS is the peak dense FP16 tensor throughput (FLOP/s).
	PeakFLOPS float64
	// MemBandwidth is the device memory bandwidth (bytes/s).
	MemBandwidth float64
	// KernelLaunchOverhead is the fixed per-kernel launch latency (s).
	KernelLaunchOverhead float64
}

// Predefined GPU models used in the paper's evaluation.
var (
	// A40: 48 GB GDDR6, ~149.7 TFLOPS FP16 tensor (with sparsity off),
	// 696 GB/s memory bandwidth.
	A40 = GPUSpec{
		Name:                 "A40",
		MemoryBytes:          48 << 30,
		PeakFLOPS:            149.7e12,
		MemBandwidth:         696e9,
		KernelLaunchOverhead: 6e-6,
	}
	// A100-80G: 80 GB HBM2e, 312 TFLOPS FP16 tensor, 2039 GB/s.
	A100 = GPUSpec{
		Name:                 "A100",
		MemoryBytes:          80 << 30,
		PeakFLOPS:            312e12,
		MemBandwidth:         2039e9,
		KernelLaunchOverhead: 5e-6,
	}
)

// Link describes a communication channel with an α-β cost model:
// transferring n bytes costs Latency + n/Bandwidth seconds.
type Link struct {
	Name      string
	Latency   float64 // seconds
	Bandwidth float64 // bytes/s
}

// Time returns the α-β transfer time for n bytes.
func (l Link) Time(n int64) float64 {
	if n <= 0 {
		return l.Latency
	}
	return l.Latency + float64(n)/l.Bandwidth
}

// Predefined interconnects (per-direction effective bandwidths).
var (
	// PCIe4x16: ~25 GB/s effective.
	PCIe4x16 = Link{Name: "PCIe4.0x16", Latency: 5e-6, Bandwidth: 25e9}
	// NVLink3: ~250 GB/s effective aggregate per GPU pair group.
	NVLink3 = Link{Name: "NVLink3", Latency: 3e-6, Bandwidth: 250e9}
	// Infiniband100: 100 Gb/s HDR (A40 cluster inter-node).
	Infiniband100 = Link{Name: "IB-100Gb", Latency: 8e-6, Bandwidth: 12.5e9}
	// Infiniband1600: 8x200 Gb/s (A100 cluster inter-node).
	Infiniband1600 = Link{Name: "IB-1.6Tb", Latency: 8e-6, Bandwidth: 200e9}
	// HostDMA approximates GPU<->CPU staging over PCIe with pinned memory.
	HostDMA = Link{Name: "HostDMA", Latency: 10e-6, Bandwidth: 20e9}
)

// Storage bandwidths for model deployment (Table 4).
const (
	// SSDBandwidth is per-node NVMe read bandwidth (bytes/s).
	SSDBandwidth = 6e9
	// DRAMBandwidth is per-node host-DRAM to GPU staging bandwidth.
	DRAMBandwidth = 14e9
)

// Cluster describes a homogeneous GPU cluster.
type Cluster struct {
	Name        string
	GPU         GPUSpec
	GPUsPerNode int
	Nodes       int
	// IntraNode connects GPUs within one node, InterNode connects nodes.
	IntraNode Link
	InterNode Link
}

// Predefined clusters from Table 2.
var (
	// A40Cluster: 6 nodes x 8 A40, PCIe 4.0 intra, 100Gb IB inter.
	A40Cluster = Cluster{
		Name: "A40", GPU: A40, GPUsPerNode: 8, Nodes: 6,
		IntraNode: PCIe4x16, InterNode: Infiniband100,
	}
	// A100Cluster: 2 nodes x 8 A100, NVLink intra, 1.6Tb IB inter.
	A100Cluster = Cluster{
		Name: "A100", GPU: A100, GPUsPerNode: 8, Nodes: 2,
		IntraNode: NVLink3, InterNode: Infiniband1600,
	}
)

// TotalGPUs returns the number of GPUs in the cluster.
func (c Cluster) TotalGPUs() int { return c.GPUsPerNode * c.Nodes }

// Validate reports configuration errors.
func (c Cluster) Validate() error {
	if c.GPUsPerNode <= 0 || c.Nodes <= 0 {
		return fmt.Errorf("hw: cluster %q must have positive nodes and GPUs per node", c.Name)
	}
	if c.GPU.PeakFLOPS <= 0 || c.GPU.MemBandwidth <= 0 || c.GPU.MemoryBytes <= 0 {
		return fmt.Errorf("hw: cluster %q has invalid GPU spec", c.Name)
	}
	if c.IntraNode.Bandwidth <= 0 || c.InterNode.Bandwidth <= 0 {
		return fmt.Errorf("hw: cluster %q has invalid links", c.Name)
	}
	return nil
}

// Sub returns a logical sub-cluster restricted to n GPUs (allocated
// node-by-node), used to deploy a model on fewer GPUs than the full
// cluster (Table 2 deployments).
func (c Cluster) Sub(n int) (Cluster, error) {
	if n <= 0 || n > c.TotalGPUs() {
		return Cluster{}, fmt.Errorf("hw: sub-cluster of %d GPUs out of range 1..%d", n, c.TotalGPUs())
	}
	sub := c
	if n <= c.GPUsPerNode {
		sub.Nodes = 1
		sub.GPUsPerNode = n
		return sub, nil
	}
	if n%c.GPUsPerNode != 0 {
		return Cluster{}, fmt.Errorf("hw: sub-cluster of %d GPUs must be a multiple of node size %d", n, c.GPUsPerNode)
	}
	sub.Nodes = n / c.GPUsPerNode
	return sub, nil
}

// NodeOf returns the node index hosting the given GPU rank.
func (c Cluster) NodeOf(rank int) int { return rank / c.GPUsPerNode }

// LinkBetween returns the link connecting two GPU ranks.
func (c Cluster) LinkBetween(a, b int) Link {
	if c.NodeOf(a) == c.NodeOf(b) {
		return c.IntraNode
	}
	return c.InterNode
}

// GroupLink returns the slowest link among a tensor-parallel group of
// consecutive ranks [first, first+size); collectives are bottlenecked by
// the slowest participating link.
func (c Cluster) GroupLink(first, size int) Link {
	link := c.IntraNode
	for r := first + 1; r < first+size; r++ {
		if c.NodeOf(r) != c.NodeOf(first) {
			link = c.InterNode
			break
		}
	}
	return link
}

// AllReduceTime returns the ring all-reduce time for n bytes across a
// group of the given size connected by link: 2(g-1)/g * n / bw plus
// per-step latencies.
func AllReduceTime(link Link, groupSize int, n int64) float64 {
	if groupSize <= 1 || n <= 0 {
		return 0
	}
	g := float64(groupSize)
	steps := 2 * (g - 1)
	return steps*link.Latency + (2*(g-1)/g)*float64(n)/link.Bandwidth
}

// P2PTime returns the point-to-point transfer time for n bytes.
func P2PTime(link Link, n int64) float64 {
	if n <= 0 {
		return 0
	}
	return link.Time(n)
}

// BroadcastTime returns the time to broadcast n bytes to groupSize-1
// peers using a binomial tree.
func BroadcastTime(link Link, groupSize int, n int64) float64 {
	if groupSize <= 1 || n <= 0 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(groupSize)))
	return rounds * link.Time(n)
}

// LoadTime returns the time to load modelBytes onto the given number of
// nodes in parallel from SSD or DRAM (Table 4), including a fixed
// per-deployment setup cost.
func LoadTime(modelBytes int64, nodes int, fromDRAM bool) float64 {
	if nodes <= 0 {
		nodes = 1
	}
	bw := SSDBandwidth
	setup := 0.9 // process launch + CUDA context + cudaMemcpy setup
	if fromDRAM {
		bw = DRAMBandwidth
		setup = 0.5
	}
	perNode := float64(modelBytes) / float64(nodes)
	return setup + perNode/bw
}

// MemTracker tracks memory allocation on one GPU.
type MemTracker struct {
	Capacity int64
	used     int64
	peak     int64
}

// NewMemTracker returns a tracker with the given capacity in bytes.
func NewMemTracker(capacity int64) *MemTracker {
	return &MemTracker{Capacity: capacity}
}

// ErrOOM is returned when an allocation exceeds capacity.
type ErrOOM struct {
	Want, Used, Capacity int64
}

func (e ErrOOM) Error() string {
	return fmt.Sprintf("hw: out of memory: want %d, used %d of %d", e.Want, e.Used, e.Capacity)
}

// Alloc reserves n bytes, returning ErrOOM if it does not fit.
func (m *MemTracker) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("hw: negative allocation %d", n)
	}
	if m.used+n > m.Capacity {
		return ErrOOM{Want: n, Used: m.used, Capacity: m.Capacity}
	}
	m.used += n
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Free releases n bytes. Freeing more than allocated panics: it is a
// bookkeeping bug in the caller.
func (m *MemTracker) Free(n int64) {
	if n < 0 || n > m.used {
		panic(fmt.Sprintf("hw: bad free of %d with %d used", n, m.used))
	}
	m.used -= n
}

// Used returns the bytes currently allocated.
func (m *MemTracker) Used() int64 { return m.used }

// Peak returns the high-water mark.
func (m *MemTracker) Peak() int64 { return m.peak }

// Free bytes remaining.
func (m *MemTracker) Available() int64 { return m.Capacity - m.used }
