package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClusterSizes(t *testing.T) {
	if got := A40Cluster.TotalGPUs(); got != 48 {
		t.Fatalf("A40 cluster GPUs = %d, want 48", got)
	}
	if got := A100Cluster.TotalGPUs(); got != 16 {
		t.Fatalf("A100 cluster GPUs = %d, want 16", got)
	}
	for _, c := range []Cluster{A40Cluster, A100Cluster} {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestSubCluster(t *testing.T) {
	sub, err := A40Cluster.Sub(4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.TotalGPUs() != 4 || sub.Nodes != 1 {
		t.Fatalf("sub = %+v", sub)
	}
	sub16, err := A40Cluster.Sub(16)
	if err != nil {
		t.Fatal(err)
	}
	if sub16.TotalGPUs() != 16 || sub16.Nodes != 2 {
		t.Fatalf("sub16 = %+v", sub16)
	}
	if _, err := A40Cluster.Sub(0); err == nil {
		t.Fatal("Sub(0) should fail")
	}
	if _, err := A40Cluster.Sub(49); err == nil {
		t.Fatal("Sub(49) should fail")
	}
	if _, err := A40Cluster.Sub(12); err == nil {
		t.Fatal("Sub(12) not a multiple of node size, should fail")
	}
}

func TestNodeOfAndLinks(t *testing.T) {
	c := A40Cluster
	if c.NodeOf(0) != 0 || c.NodeOf(7) != 0 || c.NodeOf(8) != 1 {
		t.Fatal("NodeOf wrong")
	}
	if got := c.LinkBetween(0, 7); got.Name != c.IntraNode.Name {
		t.Fatalf("intra link = %v", got.Name)
	}
	if got := c.LinkBetween(7, 8); got.Name != c.InterNode.Name {
		t.Fatalf("inter link = %v", got.Name)
	}
	if got := c.GroupLink(0, 8); got.Name != c.IntraNode.Name {
		t.Fatalf("group link in-node = %v", got.Name)
	}
	if got := c.GroupLink(4, 8); got.Name != c.InterNode.Name {
		t.Fatalf("group link cross-node = %v", got.Name)
	}
}

func TestLinkTime(t *testing.T) {
	l := Link{Latency: 1e-6, Bandwidth: 1e9}
	if got := l.Time(0); got != 1e-6 {
		t.Fatalf("zero-byte time = %v", got)
	}
	if got := l.Time(1e9); got <= 1.0 || got > 1.0+1e-5 {
		t.Fatalf("1GB over 1GB/s = %v, want ~1s", got)
	}
}

func TestAllReduce(t *testing.T) {
	l := Link{Latency: 0, Bandwidth: 1e9}
	if got := AllReduceTime(l, 1, 1000); got != 0 {
		t.Fatalf("single-rank all-reduce = %v, want 0", got)
	}
	// 2 ranks: 2*(1/2)*n/bw = n/bw.
	if got, want := AllReduceTime(l, 2, 1e9), 1.0; !close(got, want, 1e-9) {
		t.Fatalf("2-rank = %v, want %v", got, want)
	}
	// Monotone in group size for fixed bytes (ring factor 2(g-1)/g grows).
	prev := 0.0
	for g := 2; g <= 16; g++ {
		cur := AllReduceTime(l, g, 1<<20)
		if cur <= prev {
			t.Fatalf("all-reduce not increasing at g=%d: %v <= %v", g, cur, prev)
		}
		prev = cur
	}
}

func TestBroadcastAndP2P(t *testing.T) {
	l := Link{Latency: 1e-6, Bandwidth: 1e9}
	if P2PTime(l, 0) != 0 {
		t.Fatal("p2p of 0 bytes should be free")
	}
	if BroadcastTime(l, 1, 100) != 0 {
		t.Fatal("broadcast to self should be free")
	}
	b2 := BroadcastTime(l, 2, 1000)
	b8 := BroadcastTime(l, 8, 1000)
	if b8 <= b2 {
		t.Fatalf("broadcast should grow with group: %v <= %v", b8, b2)
	}
}

func TestLoadTimeTable4Shape(t *testing.T) {
	// Larger models take longer; DRAM is faster than SSD; loading is
	// parallel across nodes.
	sizes := []int64{78 << 30, 202 << 30, 350 << 30, 682 << 30} // fp16 39B..341B
	nodes := []int{2, 4, 4, 6}
	prevSSD := 0.0
	for i, sz := range sizes {
		ssd := LoadTime(sz, nodes[i], false)
		dram := LoadTime(sz, nodes[i], true)
		if dram >= ssd {
			t.Fatalf("DRAM load %.2f not faster than SSD %.2f", dram, ssd)
		}
		if ssd <= prevSSD {
			t.Fatalf("SSD load time not increasing: %v after %v", ssd, prevSSD)
		}
		prevSSD = ssd
	}
	if got := LoadTime(1<<30, 0, false); got <= 0 {
		t.Fatalf("LoadTime with 0 nodes = %v", got)
	}
}

func TestMemTracker(t *testing.T) {
	m := NewMemTracker(100)
	if err := m.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc(50); err == nil {
		t.Fatal("expected OOM")
	} else if _, ok := err.(ErrOOM); !ok {
		t.Fatalf("error type %T, want ErrOOM", err)
	}
	if err := m.Alloc(40); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 100 || m.Available() != 0 || m.Peak() != 100 {
		t.Fatalf("used=%d avail=%d peak=%d", m.Used(), m.Available(), m.Peak())
	}
	m.Free(30)
	if m.Used() != 70 || m.Peak() != 100 {
		t.Fatalf("after free used=%d peak=%d", m.Used(), m.Peak())
	}
	if err := m.Alloc(-1); err == nil {
		t.Fatal("negative alloc should error")
	}
}

func TestMemTrackerBadFreePanics(t *testing.T) {
	m := NewMemTracker(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-free")
		}
	}()
	m.Free(1)
}

func TestErrOOMMessage(t *testing.T) {
	e := ErrOOM{Want: 5, Used: 3, Capacity: 4}
	if e.Error() == "" {
		t.Fatal("empty error message")
	}
}

// Property: alloc/free sequences never drive used negative or above
// capacity, and peak >= used always.
func TestQuickMemTracker(t *testing.T) {
	f := func(ops []int16) bool {
		m := NewMemTracker(1 << 20)
		for _, op := range ops {
			if op >= 0 {
				_ = m.Alloc(int64(op))
			} else {
				n := int64(-op)
				if n > m.Used() {
					n = m.Used()
				}
				m.Free(n)
			}
			if m.Used() < 0 || m.Used() > m.Capacity || m.Peak() < m.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: all-reduce time is monotone nondecreasing in message size.
func TestQuickAllReduceMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return AllReduceTime(PCIe4x16, 4, lo) <= AllReduceTime(PCIe4x16, 4, hi)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func close(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps*(1+b)
}
