// The runner half of the execution-policy seam: batch formation and
// victim/admission selection, split out of the execution drivers so a
// policy family (or an experiment) can swap either without touching the
// engines. The defaults reproduce the paper's behavior exactly: §5.2
// dynamic workload adjustment for formation, FIFO defer-the-tail for
// admission.
package runner

import "exegpt/internal/workload"

// Queue is the admission-side view of the request FIFO that a
// BatchFormation policy draws from. Peek returns up to n queued
// requests without consuming them; Advance consumes from the front;
// Rewind un-consumes (a deferred admission returns requests to the
// front in their original order).
type Queue interface {
	Len() int
	Peek(n int) []workload.Request
	Advance(n int)
	Rewind(n int)
}

// BatchFormation forms the next encode batch from the pending queue.
// want is the scheduled encoder batch size BE, meanIn the mean input
// length observed so far, activeNow the live decoder batch, and
// targetBD the scheduled decoder batch size.
type BatchFormation interface {
	Take(q Queue, want int, meanIn float64, activeNow, targetBD int) []workload.Request
}

// VictimSelector decides the admission order of a formed batch and
// which requests yield (become victims) when KV admission fails.
type VictimSelector interface {
	// Admit tries requests from batch in policy order via tryAdmit,
	// which reserves KV for one request or reports failure. It returns
	// the admitted requests in admission order and the number of batch
	// entries the caller must defer (rewind to its queue or hold for
	// the next merge).
	Admit(batch []workload.Request, tryAdmit func(workload.Request) error) (admitted []workload.Request, deferred int)
}

// formation returns the engine's batch-formation policy.
func (e *Engine) formation() BatchFormation {
	if e.Formation != nil {
		return e.Formation
	}
	return adaptiveFormation{eng: e}
}

// victims returns the engine's victim-selection policy.
func (e *Engine) victims() VictimSelector {
	if e.Victims != nil {
		return e.Victims
	}
	return deferTail{}
}

// adaptiveFormation is the default formation policy: dynamic workload
// adjustment (§5.2). The number taken starts from want and is adjusted
// so that (a) the summed input length stays within Theta of the average
// workload and (b) the decoder batch is pulled back toward targetBD.
type adaptiveFormation struct{ eng *Engine }

func (f adaptiveFormation) Take(q Queue, want int, meanIn float64, activeNow, targetBD int) []workload.Request {
	e := f.eng
	if want < 1 {
		want = 1
	}
	take := want
	if e.DynamicAdjust {
		// Decoder under/over target: top up or back off (§5.2).
		deficit := targetBD - activeNow
		if deficit > 0 {
			take = max(take, min(deficit, take*2))
		} else if float64(activeNow) > float64(targetBD)*(1+e.Theta) {
			take = max(1, take/2)
		}
	}
	batch := q.Peek(take)
	if e.DynamicAdjust && len(batch) > 1 {
		// Trim so the encoder token workload stays within the threshold.
		budget := float64(want) * meanIn * (1 + e.Theta)
		tokens := 0
		cut := len(batch)
		for i, r := range batch {
			if float64(tokens+r.InLen) > budget && i > 0 {
				cut = i
				break
			}
			tokens += r.InLen
		}
		batch = batch[:cut]
	}
	q.Advance(len(batch))
	return batch
}

// deferTail is the default victim selector: admit the longest prefix
// that fits in order; the entire unadmitted tail yields. FIFO, no
// preemption, no reordering — an SLO-aware selector would reorder here.
type deferTail struct{}

func (deferTail) Admit(batch []workload.Request, tryAdmit func(workload.Request) error) ([]workload.Request, int) {
	for i, r := range batch {
		if err := tryAdmit(r); err != nil {
			return batch[:i], len(batch) - i
		}
	}
	return batch, 0
}

// admitBatch admits batch onto states through the engine's victim
// selector, returning the admitted prefix, its summed input tokens, and
// the deferred count the caller must rewind or hold.
func (e *Engine) admitBatch(states []*stageState, batch []workload.Request) (admitted []workload.Request, tokens, deferred int) {
	admitted, deferred = e.victims().Admit(batch, func(r workload.Request) error {
		return admit(states, r.ID, e.promptTokens(r))
	})
	for _, r := range admitted {
		tokens += r.InLen
	}
	return admitted, tokens, deferred
}
