package runner

import (
	"reflect"
	"sync"
	"testing"

	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/workload"
)

// TestConcurrentEnginesShareProfile drives several Engine instances that
// share one immutable profile Table from separate goroutines, the usage
// pattern of the parallel sweep. Run under -race this pins down the
// audit result: per-run state is call-local and the Table is read-only.
func TestConcurrentEnginesShareProfile(t *testing.T) {
	sub, err := hw.A40Cluster.Sub(4)
	if err != nil {
		t.Fatal(err)
	}
	base := engine(t, model.OPT13B, 4, hw.A40Cluster)
	// Build inputs on the test goroutine: the t.Fatal-ing helpers must
	// not run inside workers.
	reqs := requests(t, workload.Summarization, 200, 7)
	alloc := rraAlloc(t, base, rraConfig(32, 8).TP)
	const n = 4
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine gets its own Engine sharing base.Prof.
			e, err := New(model.OPT13B, sub, base.Prof)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = e.Run(rraConfig(32, 8), alloc, reqs)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("engine %d: %v", i, errs[i])
		}
		if results[i].Stats.Completed != 200 {
			t.Fatalf("engine %d: completed %d of 200", i, results[i].Stats.Completed)
		}
	}
	// Identical inputs must produce identical virtual-time results.
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[i].Stats, results[0].Stats) {
			t.Fatalf("engine %d diverged: %+v vs %+v", i, results[i].Stats, results[0].Stats)
		}
	}
}
