package runner

import (
	"math"
	"testing"

	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/profile"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

func engine(t testing.TB, m model.Model, gpus int, cluster hw.Cluster) *Engine {
	t.Helper()
	sub, err := cluster.Sub(gpus)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.New(m, sub)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(m, sub, p.Run())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func requests(t testing.TB, task workload.Task, n int, seed int64) []workload.Request {
	t.Helper()
	g, err := workload.NewGenerator(task, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g.Batch(n)
}

func rraConfig(bd, nd int) sched.Config {
	return sched.Config{Policy: sched.RRA, BE: 1, BD: bd, ND: nd, TP: sched.TPSpec{Degree: 1}}
}

func rraAlloc(t testing.TB, e *Engine, tp sched.TPSpec) sched.Allocation {
	t.Helper()
	a, err := sched.AllocateRRA(e.Model, e.Cluster, tp)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func waaAlloc(t testing.TB, e *Engine, enc, dec int, tp sched.TPSpec) sched.Allocation {
	t.Helper()
	a, err := sched.AllocateWAA(e.Model, e.Cluster, sched.WAAM, enc, dec, tp)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidates(t *testing.T) {
	sub, _ := hw.A40Cluster.Sub(4)
	if _, err := New(model.Model{}, sub, &profile.Table{}); err == nil {
		t.Fatal("bad model should fail")
	}
	if _, err := New(model.OPT13B, hw.Cluster{}, &profile.Table{}); err == nil {
		t.Fatal("bad cluster should fail")
	}
	if _, err := New(model.OPT13B, sub, nil); err == nil {
		t.Fatal("nil profile should fail")
	}
}

func TestRunValidatesInputs(t *testing.T) {
	e := engine(t, model.OPT13B, 4, hw.A40Cluster)
	alloc := rraAlloc(t, e, sched.TPSpec{Degree: 1})
	if _, err := e.Run(sched.Config{}, alloc, requests(t, workload.Summarization, 4, 1)); err == nil {
		t.Fatal("invalid config should fail")
	}
	if _, err := e.Run(rraConfig(8, 4), alloc, nil); err == nil {
		t.Fatal("no requests should fail")
	}
}

func TestRRACompletesAllRequests(t *testing.T) {
	e := engine(t, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(t, workload.Summarization, 300, 7)
	res, err := e.Run(rraConfig(64, 8), rraAlloc(t, e, sched.TPSpec{Degree: 1}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", res.Stats.Completed, len(reqs))
	}
	if res.Stats.Throughput <= 0 || res.Stats.Elapsed <= 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	if len(res.Records) != len(reqs) {
		t.Fatalf("records %d", len(res.Records))
	}
	for _, r := range res.Records {
		if r.End <= r.Start {
			t.Fatalf("record %d has nonpositive latency", r.ID)
		}
	}
	if res.Iterations == 0 || res.EncStage.Count() == 0 || res.DecStage.Count() == 0 {
		t.Fatal("missing stage samples")
	}
}

func TestRRADeterministic(t *testing.T) {
	e := engine(t, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(t, workload.Translation, 150, 3)
	alloc := rraAlloc(t, e, sched.TPSpec{Degree: 1})
	r1, err := e.Run(rraConfig(32, 8), alloc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(rraConfig(32, 8), alloc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Elapsed != r2.Stats.Elapsed || r1.Stats.P99Lat != r2.Stats.P99Lat {
		t.Fatalf("nondeterministic: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

func TestWAACompletesAllRequests(t *testing.T) {
	e := engine(t, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(t, workload.Summarization, 300, 9)
	cfg := sched.Config{Policy: sched.WAAM, BE: 4, BD: 128, Bm: 2, TP: sched.TPSpec{Degree: 1}}
	res, err := e.Run(cfg, waaAlloc(t, e, 1, 3, sched.TPSpec{Degree: 1}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", res.Stats.Completed, len(reqs))
	}
	if res.EncStage.Count() == 0 || res.DecStage.Count() == 0 {
		t.Fatal("missing stage samples")
	}
}

func TestWAADeterministic(t *testing.T) {
	e := engine(t, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(t, workload.Summarization, 120, 11)
	cfg := sched.Config{Policy: sched.WAAM, BE: 4, BD: 128, Bm: 2, TP: sched.TPSpec{Degree: 1}}
	alloc := waaAlloc(t, e, 1, 3, sched.TPSpec{Degree: 1})
	r1, err := e.Run(cfg, alloc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(cfg, alloc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Elapsed != r2.Stats.Elapsed {
		t.Fatalf("nondeterministic: %v vs %v", r1.Stats.Elapsed, r2.Stats.Elapsed)
	}
}

// Early termination + refill keeps RRA's decode batches near BD; the
// same workload under a "no refill" discipline (huge ND) sees decaying
// batches and worse throughput.
func TestRefillBeatsDecayingBatches(t *testing.T) {
	e := engine(t, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(t, workload.Translation, 400, 13)
	alloc := rraAlloc(t, e, sched.TPSpec{Degree: 1})
	refill, err := e.Run(rraConfig(96, 8), alloc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	decay, err := e.Run(rraConfig(96, 400), alloc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if refill.Stats.Throughput <= decay.Stats.Throughput {
		t.Fatalf("refill %.2f should beat decaying batches %.2f",
			refill.Stats.Throughput, decay.Stats.Throughput)
	}
}

// Compaction actually runs under early termination.
func TestCompactionHappens(t *testing.T) {
	e := engine(t, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(t, workload.Translation, 200, 17)
	res, err := e.Run(rraConfig(64, 8), rraAlloc(t, e, sched.TPSpec{Degree: 1}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compactions == 0 || res.CompactionSeconds <= 0 {
		t.Fatalf("expected compactions, got %d (%.4fs)", res.Compactions, res.CompactionSeconds)
	}
}

// Dynamic adjustment (§5.2) reduces decoder-workload variance.
func TestDynamicAdjustmentReducesVariance(t *testing.T) {
	reqs := requests(t, workload.Translation, 500, 19)
	cfg := rraConfig(64, 8)

	run := func(adjust bool) *Result {
		e := engine(t, model.OPT13B, 4, hw.A40Cluster)
		e.DynamicAdjust = adjust
		res, err := e.Run(cfg, rraAlloc(t, e, sched.TPSpec{Degree: 1}), reqs)
		if err != nil {
			t.Fatal(err)
		}
		return &res
	}
	with := run(true)
	without := run(false)
	// Relative decoder stage-time spread should not get worse with
	// adjustment enabled.
	relWith := with.DecStage.Std() / with.DecStage.Mean()
	relWithout := without.DecStage.Std() / without.DecStage.Mean()
	if relWith > relWithout*1.1 {
		t.Fatalf("adjustment increased variance: %.4f vs %.4f", relWith, relWithout)
	}
}

// Decoder stage-time variance is small (Table 7: < ~6%).
func TestDecoderVarianceSmall(t *testing.T) {
	e := engine(t, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(t, workload.Summarization, 600, 23)
	res, err := e.Run(rraConfig(96, 8), rraAlloc(t, e, sched.TPSpec{Degree: 1}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	rel := res.DecStage.PctlRange(0.99) / res.DecStage.Mean()
	if rel > 0.25 {
		t.Fatalf("decoder 99th pctl range %.1f%% of mean, want small", rel*100)
	}
}

// A schedule whose KV cannot fit even one query fails loudly.
func TestOOMFailsLoudly(t *testing.T) {
	e := engine(t, model.GPT3175B, 16, hw.A100Cluster)
	// Single-GPU stage must hold 96/16 layers of a 175B model: weights
	// fit, but a WAA allocation with 15 encode / 1 decode GPU cannot
	// hold the decode-side copy.
	if _, err := sched.AllocateWAA(e.Model, e.Cluster, sched.WAAM, 15, 1, sched.TPSpec{Degree: 1}); err != nil {
		t.Skip("allocation rejected earlier")
	}
	alloc, _ := sched.AllocateWAA(e.Model, e.Cluster, sched.WAAM, 15, 1, sched.TPSpec{Degree: 1})
	cfg := sched.Config{Policy: sched.WAAM, BE: 4, BD: 64, Bm: 1, TP: sched.TPSpec{Degree: 1}}
	_, err := e.Run(cfg, alloc, requests(t, workload.ConvQA2, 50, 29))
	if err == nil {
		t.Fatal("expected an OOM error")
	}
}

// WAA throughput benefits from decoupled pipelines versus serializing
// encode and decode on the same GPUs with tiny ND.
func TestWAAOverlapsEncodeDecode(t *testing.T) {
	e := engine(t, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(t, workload.Summarization, 300, 31)
	waaRes, err := e.Run(
		sched.Config{Policy: sched.WAAM, BE: 6, BD: 190, Bm: 2, TP: sched.TPSpec{Degree: 1}},
		waaAlloc(t, e, 1, 3, sched.TPSpec{Degree: 1}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if waaRes.Stats.Throughput <= 0 {
		t.Fatal("WAA made no progress")
	}
	// Sanity: mean latency below the full-run elapsed time.
	if waaRes.Stats.MeanLat >= waaRes.Stats.Elapsed {
		t.Fatal("latency accounting broken")
	}
}

// Partial TP at runtime reduces p99 latency on large models.
func TestRunnerTPLatency(t *testing.T) {
	e := engine(t, model.GPT339B, 16, hw.A40Cluster)
	reqs := requests(t, workload.Summarization, 150, 37)
	noTP, err := e.Run(rraConfig(32, 8), rraAlloc(t, e, sched.TPSpec{Degree: 1}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfgTP := sched.Config{Policy: sched.RRA, BE: 1, BD: 32, ND: 8, TP: sched.TPSpec{Degree: 8, GPUs: 16}}
	withTP, err := e.Run(cfgTP, rraAlloc(t, e, sched.TPSpec{Degree: 8, GPUs: 16}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if withTP.Stats.P99Lat >= noTP.Stats.P99Lat {
		t.Fatalf("TP should cut p99 latency: %.2f vs %.2f", withTP.Stats.P99Lat, noTP.Stats.P99Lat)
	}
}

// The runner's measured throughput should land in the ballpark of the
// XSimulator estimate (they share the cost substrate); we allow a wide
// band since the runner sees sampled (not expected) workloads.
func TestRunnerMatchesSimulatorShape(t *testing.T) {
	e := engine(t, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(t, workload.Summarization, 500, 41)
	res, err := e.Run(rraConfig(64, 8), rraAlloc(t, e, sched.TPSpec{Degree: 1}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Throughput < 1 || res.Stats.Throughput > 1000 {
		t.Fatalf("throughput %v implausible", res.Stats.Throughput)
	}
	if math.IsNaN(res.Stats.P99Lat) || res.Stats.P99Lat <= 0 {
		t.Fatalf("p99 %v", res.Stats.P99Lat)
	}
}

func BenchmarkRunRRA(b *testing.B) {
	e := engine(b, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(b, workload.Summarization, 200, 43)
	alloc := rraAlloc(b, e, sched.TPSpec{Degree: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(rraConfig(64, 8), alloc, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReqFIFO pins the index-cursor queue semantics the encode path
// relies on: batches come out in order, and a rewind restores the tail
// of the last batch to the queue front without disturbing order.
func TestReqFIFO(t *testing.T) {
	reqs := requests(t, workload.Summarization, 10, 47)
	q := newReqFIFO(reqs)
	if q.Len() != 10 {
		t.Fatalf("len = %d, want 10", q.Len())
	}
	first := q.Peek(4)
	if len(first) != 4 || first[0].ID != reqs[0].ID {
		t.Fatalf("peek returned %v", first)
	}
	q.Advance(4)
	// Admission failed after 1 of the 4: rewind the other 3.
	q.Rewind(3)
	if q.Len() != 9 {
		t.Fatalf("len after rewind = %d, want 9", q.Len())
	}
	var got []int
	for q.Len() > 0 {
		b := q.Peek(3)
		q.Advance(len(b))
		for _, r := range b {
			got = append(got, r.ID)
		}
	}
	for i, id := range got {
		if id != reqs[i+1].ID {
			t.Fatalf("order broken at %d: got %d, want %d", i, id, reqs[i+1].ID)
		}
	}
	// Oversized peek clamps.
	q2 := newReqFIFO(reqs[:2])
	if len(q2.Peek(100)) != 2 {
		t.Fatal("peek must clamp to queue length")
	}
}

// BenchmarkEngineRun pins the end-to-end engine cost on a KV-pressured
// deployment: BD far above what memory admits, so every encoding phase
// exercises the deferred-admission requeue path that used to copy the
// whole pending queue.
func BenchmarkEngineRun(b *testing.B) {
	e := engine(b, model.OPT13B, 4, hw.A40Cluster)
	reqs := requests(b, workload.Summarization, 1500, 53)
	alloc := rraAlloc(b, e, sched.TPSpec{Degree: 1})
	cfg := rraConfig(2048, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg, alloc, reqs); err != nil {
			b.Fatal(err)
		}
	}
}
