// Open-loop execution: the incremental admission seam used by the
// online serving mode (`exegpt serve`).
//
// The batch entry point (Engine.Run) drains a pre-drawn request slice
// to empty. An OpenRun instead owns a long-lived event simulation that
// requests are pushed into as they arrive: the engine admits from the
// live queue, goes idle when there is no work, wakes on the next
// arrival, and can be drained at any point so a controller can switch
// schedules — in-flight queries finish under the old schedule, queued
// ones carry over to the successor engine with their original arrival
// timestamps. Latency is therefore measured from arrival (queueing
// included), which is what per-window SLO attainment reports need.
//
// Both policies are supported: RRA runs its synchronized
// encode-then-ND-decodes cycle as a chain of simulator events; WAA
// mirrors the asynchronous encoder/decoder pipelines of runWAA with the
// pre-drawn FIFO replaced by the live queue. Everything is virtual-time
// and single-goroutine, so a run is bit-for-bit deterministic.
package runner

import (
	"fmt"

	"exegpt/internal/eventsim"
	"exegpt/internal/metrics"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// Arrival pairs a request with its arrival time in virtual seconds.
type Arrival struct {
	Req workload.Request
	At  float64
}

// OpenRun is one schedule's live execution. It is not safe for
// concurrent use; the serving loop drives it from one goroutine.
type OpenRun struct {
	eng    *Engine
	cfg    sched.Config
	alloc  sched.Allocation
	sim    *eventsim.Sim
	states []*stageState

	queue     reqFIFO
	arrivedAt map[int]float64 // request ID -> arrival time
	active    []*query        // query.start is the arrival time
	totalIn   int64
	arrivals  int64

	rec     *metrics.Recorder
	res     Result
	startAt float64

	// admitting is cleared by Drain: the engine stops taking requests
	// off the queue but finishes everything already admitted/encoded.
	admitting bool
	// parked is set when the admission side has no work and its event
	// chain has ended; the next arrival restarts it.
	parked bool
	err    error

	// OnComplete, when set, observes every completion as it happens
	// (the serving loop feeds windowed recorders from it).
	OnComplete func(QueryRecord)

	// drv is the execution driver the policy's family selected.
	drv driver

	// Dedicated-pool pipeline state (mirrors runWAA); populated by the
	// pooled driver's openInit.
	encStages, decStages []sched.Stage
	bm                   int
	inbox                []openArrival
	inflight             int // encoder batches not yet fully merged
	inflightReqs         int // requests encoded but not yet active
	maxInflight          int
	decoding             bool
}

// openArrival is an encoded batch in KV handover or waiting for decoder
// capacity.
type openArrival struct {
	batch []workload.Request
}

// Open starts an open-loop execution of the schedule with the engine's
// clock positioned at startAt (the serving loop uses one global virtual
// timeline across successive engines).
func (e *Engine) Open(cfg sched.Config, alloc sched.Allocation, startAt float64) (*OpenRun, error) {
	if err := cfg.Validate(e.Cluster.TotalGPUs()); err != nil {
		return nil, err
	}
	states, err := e.newStageStates(alloc)
	if err != nil {
		return nil, err
	}
	o := &OpenRun{
		eng: e, cfg: cfg, alloc: alloc,
		sim:       eventsim.New(),
		states:    states,
		arrivedAt: map[int]float64{},
		rec:       metrics.NewRecorder(),
		res:       Result{EncStage: metrics.NewRecorder(), DecStage: metrics.NewRecorder()},
		startAt:   startAt,
		admitting: true,
		parked:    true,
	}
	o.sim.MaxSteps = 500_000_000
	drv, err := driverFor(cfg.Policy)
	if err != nil {
		return nil, err
	}
	o.drv = drv
	if err := drv.openInit(o); err != nil {
		return nil, err
	}
	if startAt > 0 {
		o.sim.RunUntil(startAt)
	}
	return o, nil
}

// Now returns the engine's current virtual time.
func (o *OpenRun) Now() float64 { return o.sim.Now() }

// Err returns the first execution error, if any.
func (o *OpenRun) Err() error { return o.err }

// Config returns the schedule being executed.
func (o *OpenRun) Config() sched.Config { return o.cfg }

// Queued returns the number of arrived requests not yet admitted.
func (o *OpenRun) Queued() int { return o.queue.Len() }

// QueueDepth returns all requests in the system: queued, encoded
// in-flight (WAA handover), and actively decoding.
func (o *OpenRun) QueueDepth() int {
	return o.queue.Len() + o.inflightReqs + len(o.active)
}

// Done reports whether no work remains anywhere in the engine.
func (o *OpenRun) Done() bool {
	return o.queue.Len() == 0 && o.inflightReqs == 0 && len(o.active) == 0
}

// Records returns the completions so far (Start is the arrival time).
func (o *OpenRun) Records() []QueryRecord { return o.res.Records }

// Result summarizes the execution so far.
func (o *OpenRun) Result() Result {
	res := o.res
	res.Stats = metrics.Summarize(o.rec, o.sim.Now()-o.startAt, completionTimes(o.res.Records))
	res.PeakDecMemPerGPU = peakMem(o.states)
	return res
}

// meanIn is the running mean input length over everything that arrived;
// the batch engine's fixed whole-stream mean is not available online.
func (o *OpenRun) meanIn() float64 {
	if o.arrivals == 0 {
		return 1
	}
	return float64(o.totalIn) / float64(o.arrivals)
}

// Push delivers a request to the engine. An arrival at or before the
// engine's clock is applied immediately (the serving loop replays
// backlog from a predecessor engine this way — at keeps the original
// arrival time so queueing latency carries across a schedule switch);
// a future arrival is scheduled as a simulator event.
func (o *OpenRun) Push(req workload.Request, at float64) {
	if o.err != nil {
		return
	}
	if at <= o.sim.Now() {
		o.applyArrival(req, at)
		return
	}
	o.sim.At(at, func() { o.applyArrival(req, at) })
}

func (o *OpenRun) applyArrival(req workload.Request, at float64) {
	o.queue.push(req)
	o.arrivedAt[req.ID] = at
	o.arrivals++
	o.totalIn += int64(req.InLen)
	if o.parked {
		o.parked = false
		o.drv.openWake(o)
	}
}

// RunUntil advances the engine's virtual time to t, processing every
// event due by then.
func (o *OpenRun) RunUntil(t float64) error {
	o.sim.RunUntil(t)
	return o.err
}

// Finish runs the engine until every pushed request — including ones
// whose arrival events have not fired yet — has been admitted and
// completed. Use Drain instead to cut admission at a schedule switch.
func (o *OpenRun) Finish() error {
	o.sim.Run()
	return o.err
}

// Drain stops admission and runs the engine until every admitted (and,
// for WAA, already-encoded) request completes. Requests still queued
// unadmitted are returned with their original arrival times so they can
// be replayed into a successor engine. The engine must not be used
// after Drain except to read results.
func (o *OpenRun) Drain() ([]Arrival, error) {
	o.admitting = false
	o.sim.Run()
	if o.err != nil {
		return nil, o.err
	}
	leftover := make([]Arrival, 0, o.queue.Len())
	for o.queue.Len() > 0 {
		r := o.queue.Peek(1)[0]
		o.queue.Advance(1)
		leftover = append(leftover, Arrival{Req: r, At: o.arrivedAt[r.ID]})
		delete(o.arrivedAt, r.ID)
	}
	return leftover, nil
}

// hasEncodeWork reports whether the admission side may take requests.
func (o *OpenRun) hasEncodeWork() bool {
	return o.admitting && o.queue.Len() > 0
}

// takeBatch forms the next encode batch from the live queue through the
// engine's batch-formation policy — the single admission call site both
// drivers share (previously duplicated in rraCycle and startEncode).
func (o *OpenRun) takeBatch() []workload.Request {
	return o.eng.formation().Take(&o.queue, o.cfg.BE, o.meanIn(), len(o.active), o.cfg.BD)
}

// complete applies one decode iteration's survivors/completions at the
// current virtual time.
func (o *OpenRun) complete() {
	now := o.sim.Now()
	survivors := o.active[:0]
	for _, q := range o.active {
		q.pos++
		if q.pos >= q.req.OutLen {
			release(o.states, q.req.ID)
			o.rec.Add(now - q.start)
			rec := QueryRecord{
				ID: q.req.ID, Start: q.start, End: now,
				InLen: q.req.InLen, OutLen: q.req.OutLen,
			}
			o.res.Records = append(o.res.Records, rec)
			delete(o.arrivedAt, q.req.ID)
			if o.OnComplete != nil {
				o.OnComplete(rec)
			}
		} else {
			if err := appendToken(o.states, q.req.ID); err != nil {
				o.err = fmt.Errorf("runner: open decode OOM: %w", err)
				return
			}
			survivors = append(survivors, q)
		}
	}
	o.active = survivors
}

// rraCycle runs one RRA cycle: an encoding phase over whatever has
// arrived (skipped when the queue is empty or admission stopped), then
// up to ND decode iterations. With no work at all the engine parks.
func (o *OpenRun) rraCycle() {
	if o.err != nil {
		return
	}
	if !o.hasEncodeWork() && len(o.active) == 0 {
		o.parked = true
		return
	}
	var encDur float64
	if o.hasEncodeWork() {
		batch := o.takeBatch()
		admitted, tokens, deferred := o.eng.admitBatch(o.states, batch)
		if deferred > 0 {
			o.queue.Rewind(deferred)
		}
		for _, r := range admitted {
			o.active = append(o.active, &query{req: r, start: o.arrivedAt[r.ID]})
		}
		if len(admitted) == 0 && len(o.active) == 0 {
			o.err = fmt.Errorf("runner: open RRA query %d does not fit in KV memory even on an idle system", batch[0].ID)
			return
		}
		if len(admitted) > 0 {
			microTokens := tokens / rraMicroBatches
			if microTokens < 1 {
				microTokens = 1
			}
			times, err := o.eng.encStageTimes(o.alloc.Stages, microTokens, o.meanIn())
			if err != nil {
				o.err = err
				return
			}
			for _, t := range times {
				o.res.EncStage.Add(t)
			}
			encDur = pipelinePeriod(times, rraMicroBatches)
		}
	}
	o.sim.After(encDur, func() { o.rraDecode(0) })
}

// rraDecode runs decode iteration u of the current cycle.
func (o *OpenRun) rraDecode(u int) {
	if o.err != nil {
		return
	}
	if u >= o.cfg.ND || len(o.active) == 0 {
		o.rraCycle()
		return
	}
	ctx := meanCtxOf(o.eng.Model, o.active)
	micro := len(o.active) / rraMicroBatches
	if micro < 1 {
		micro = 1
	}
	times, err := o.eng.decStageTimes(o.alloc.Stages, micro, ctx)
	if err != nil {
		o.err = err
		return
	}
	for _, t := range times {
		o.res.DecStage.Add(t)
	}
	o.sim.After(pipelinePeriod(times, rraMicroBatches), func() {
		o.res.Iterations++
		o.complete()
		if o.err != nil {
			return
		}
		if cost, ran := o.eng.maybeCompact(o.states); ran {
			o.res.Compactions++
			o.res.CompactionSeconds += cost
			o.sim.After(cost, func() { o.rraDecode(u + 1) })
			return
		}
		o.rraDecode(u + 1)
	})
}

// startEncode issues one WAA encoder batch from the live queue and
// pipelines the next issue one stage period later, exactly as the
// batch engine does; with nothing to take it parks (arrival wakes it),
// and at the in-flight cap it stops (the decoder restarts it on merge).
func (o *OpenRun) startEncode() {
	if o.err != nil {
		return
	}
	if !o.hasEncodeWork() {
		o.parked = true
		return
	}
	if o.inflight >= o.maxInflight {
		return
	}
	batch := o.takeBatch()
	tokens := 0
	for _, r := range batch {
		tokens += r.InLen
	}
	times, terr := o.eng.encStageTimes(o.encStages, tokens, o.meanIn())
	if terr != nil {
		o.err = terr
		return
	}
	for _, t := range times {
		o.res.EncStage.Add(t)
	}
	period, trav := 0.0, 0.0
	for _, t := range times {
		trav += t
		if t > period {
			period = t
		}
	}
	handover := trav + o.eng.Prof.KVTransfer(tokens)
	o.inflight++
	o.inflightReqs += len(batch)
	o.sim.After(handover, func() {
		o.inbox = append(o.inbox, openArrival{batch: batch})
		if !o.decoding {
			o.iterate()
		}
	})
	o.sim.After(period, o.startEncode)
}

// iterate is the WAA decoder loop: merge arrived batches that fit, run
// one iteration, reschedule. Mirrors runWAA's iterate over the live
// queue.
func (o *OpenRun) iterate() {
	if o.err != nil {
		return
	}
	waiting := o.inbox[:0]
	merged := false
	sel := o.eng.victims()
	tryAdmit := func(r workload.Request) error {
		return admit(o.states, r.ID, o.eng.promptTokens(r))
	}
	for _, a := range o.inbox {
		admitted, deferred := sel.Admit(a.batch, tryAdmit)
		for _, r := range admitted {
			o.active = append(o.active, &query{req: r, start: o.arrivedAt[r.ID]})
			o.inflightReqs--
			merged = true
		}
		if deferred > 0 {
			i := len(a.batch) - deferred
			if len(o.active) == 0 {
				o.err = fmt.Errorf("runner: open WAA query %d does not fit in KV memory even on an idle decoder", a.batch[i].ID)
				return
			}
			waiting = append(waiting, openArrival{batch: a.batch[i:]})
		} else {
			o.inflight--
		}
	}
	o.inbox = waiting
	if merged {
		// In-flight capacity just freed: restart the encoder, whether it
		// stopped on the cap or parked on an empty queue (startEncode
		// re-parks if there is still nothing to take).
		o.parked = false
		o.startEncode()
	}
	if o.err != nil {
		return
	}
	if len(o.active) == 0 {
		o.decoding = false
		return // park the decoder; the next merge restarts it
	}
	o.decoding = true

	micro := len(o.active) / o.bm
	if micro < 1 {
		micro = 1
	}
	ctx := meanCtxOf(o.eng.Model, o.active)
	times, terr := o.eng.decStageTimes(o.decStages, micro, ctx)
	if terr != nil {
		o.err = terr
		return
	}
	for _, t := range times {
		o.res.DecStage.Add(t)
	}
	dur := pipelinePeriod(times, o.bm)
	if cost, ran := o.eng.maybeCompact(o.states); ran {
		dur += cost
		o.res.Compactions++
		o.res.CompactionSeconds += cost
	}
	o.sim.After(dur, func() {
		o.res.Iterations++
		o.complete()
		if o.err != nil {
			return
		}
		o.iterate()
	})
}
