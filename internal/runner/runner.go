// Package runner implements XRunner: the execution engine that enforces
// a schedule produced by XScheduler (§3).
//
// The engine executes over the simulated GPU cluster in virtual time.
// It implements the paper's runtime mechanisms:
//
//   - early termination of completed queries with key/value-cache
//     compaction;
//   - decoupled encoding/decoding with KV handover through host memory
//     for WAA scheduling;
//   - decoder micro-batches and partial tensor parallelism;
//   - dynamic workload adjustment (§5.2): the encoder batch is grown or
//     shrunk to keep the encoder token workload and the decoder batch
//     near their scheduled averages.
//
// RRA executes as a synchronized phase loop (one encoding phase then ND
// decoding iterations, Figure 4(a)); WAA runs the encoder and decoder
// pipelines asynchronously on a discrete-event simulator (Figure 4(b)).
package runner

import (
	"fmt"
	"math"

	"exegpt/internal/eventsim"
	"exegpt/internal/hw"
	"exegpt/internal/kvcache"
	"exegpt/internal/metrics"
	"exegpt/internal/model"
	"exegpt/internal/profile"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// Engine executes schedules for one model deployment.
//
// Concurrency: Run reads the Engine's fields and the profile Table (both
// immutable after construction) and builds all mutable execution state —
// stage KV trackers, metric recorders, the event simulator — per call.
// Separate Engine instances are therefore fully independent, and even a
// single Engine supports concurrent Run calls provided its exported
// knobs are not mutated mid-flight. The parallel sweep in
// internal/experiments drives one Engine per deployment.
type Engine struct {
	Model   model.Model
	Cluster hw.Cluster
	Prof    *profile.Table
	// DynamicAdjust enables §5.2 runtime workload adjustment.
	DynamicAdjust bool
	// Theta is the workload threshold of §5.2 (fractional deviation
	// tolerated before adjusting), default 0.1.
	Theta float64
	// CompactFrac triggers KV compaction when fragmentation exceeds this
	// fraction of live bytes.
	CompactFrac float64
	// Formation overrides the batch-formation policy; nil selects the
	// §5.2 adaptive default (see policy.go).
	Formation BatchFormation
	// Victims overrides victim/admission selection; nil selects the
	// FIFO defer-tail default (admit in order, the unadmitted tail
	// yields).
	Victims VictimSelector
}

// New returns an engine with paper-default runtime options.
func New(m model.Model, cluster hw.Cluster, prof *profile.Table) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if prof == nil {
		return nil, fmt.Errorf("runner: nil profile")
	}
	return &Engine{Model: m, Cluster: cluster, Prof: prof,
		DynamicAdjust: true, Theta: 0.1, CompactFrac: 0.10}, nil
}

// QueryRecord is the per-query outcome.
type QueryRecord struct {
	ID         int
	Start, End float64 // virtual seconds (generation latency = End-Start)
	InLen      int
	OutLen     int
}

// Result summarizes one execution.
type Result struct {
	Stats   metrics.RunStats
	Records []QueryRecord
	// EncStage and DecStage record per-phase/iteration single-stage
	// execution times (Table 7 variance analysis).
	EncStage, DecStage *metrics.Recorder
	// PeakDecMemPerGPU is the high-water KV+weight bytes on the most
	// loaded decode-role GPU.
	PeakDecMemPerGPU int64
	// Compactions counts cache-compaction events; CompactionSeconds is
	// the total time they consumed.
	Compactions       int
	CompactionSeconds float64
	// Iterations counts decode iterations executed.
	Iterations int
}

// query is the in-flight state of one request.
type query struct {
	req   workload.Request
	start float64
	pos   int // generated tokens so far
}

func (q *query) ctxLen(m model.Model) int { return m.ContextLen(q.req.InLen, q.pos) }

// stageState holds the per-decode-stage memory bookkeeping.
type stageState struct {
	stage sched.Stage
	mem   *hw.MemTracker
	kv    *kvcache.Compacting
}

// newStageStates builds KV managers for the decode-role stages, charging
// weights up front.
func (e *Engine) newStageStates(alloc sched.Allocation) ([]*stageState, error) {
	var states []*stageState
	for _, st := range alloc.Stages {
		if st.DecLayers == 0 {
			continue
		}
		mem := hw.NewMemTracker(e.Cluster.GPU.MemoryBytes)
		if err := mem.Alloc(sched.WeightBytesPerGPU(e.Model, st)); err != nil {
			return nil, fmt.Errorf("runner: weights do not fit on stage at rank %d: %w", st.FirstRank, err)
		}
		perToken := e.Model.KVBytesPerTokenLayer() * int64(st.DecLayers) / int64(st.TP)
		states = append(states, &stageState{
			stage: st,
			mem:   mem,
			kv:    kvcache.NewCompacting(mem, perToken),
		})
	}
	if len(states) == 0 {
		return nil, fmt.Errorf("runner: allocation has no decode stages")
	}
	return states, nil
}

// admit reserves KV space for a query's cached prompt tokens on every
// decode stage; on failure it rolls back.
func admit(states []*stageState, id, promptTokens int) error {
	for i, st := range states {
		if err := st.kv.Admit(id, promptTokens, 0); err != nil {
			for _, prev := range states[:i] {
				_ = prev.kv.Release(id)
				prev.kv.Compact()
			}
			return err
		}
	}
	return nil
}

// appendToken extends a query's cache on every stage.
func appendToken(states []*stageState, id int) error {
	for _, st := range states {
		if err := st.kv.Append(id); err != nil {
			return err
		}
	}
	return nil
}

// release frees a completed query everywhere.
func release(states []*stageState, id int) {
	for _, st := range states {
		_ = st.kv.Release(id)
	}
}

// maybeCompact compacts fragmented stages and returns the time cost
// (bytes moved at device bandwidth) and whether compaction ran.
func (e *Engine) maybeCompact(states []*stageState) (float64, bool) {
	var cost float64
	ran := false
	for _, st := range states {
		live := st.kv.LiveTokens() * int64(e.Model.KVBytesPerTokenLayer()) * int64(st.stage.DecLayers) / int64(st.stage.TP)
		if live < 1 {
			live = 1
		}
		if float64(st.kv.FragBytes()) > e.CompactFrac*float64(live) {
			moved := st.kv.Compact()
			cost = math.Max(cost, float64(moved)/e.Cluster.GPU.MemBandwidth)
			ran = true
		}
	}
	return cost, ran
}

func peakMem(states []*stageState) int64 {
	var peak int64
	for _, st := range states {
		if p := st.mem.Peak(); p > peak {
			peak = p
		}
	}
	return peak
}

// promptTokens returns the tokens a request pins in the decode-side KV
// cache after prefill.
func (e *Engine) promptTokens(r workload.Request) int {
	// Both decoder-only (self-attention over the prompt) and
	// encoder-decoder models (cross-attention memoization) cache one
	// entry per input token.
	return r.InLen
}

// linkClass mirrors core's stage link classification.
func linkClass(s sched.Stage) profile.LinkClass {
	if s.CrossNode {
		return profile.InterNode
	}
	return profile.IntraNode
}

func (e *Engine) ppClass(from sched.Stage) profile.LinkClass {
	last := from.FirstRank + from.TP - 1
	next := (last + 1) % e.Cluster.TotalGPUs()
	if e.Cluster.NodeOf(last) != e.Cluster.NodeOf(next) {
		return profile.InterNode
	}
	return profile.IntraNode
}

// encStageTimes returns per-stage encode times for a batch totalling
// tokens prompt tokens.
func (e *Engine) encStageTimes(stages []sched.Stage, tokens int, meanSeq float64) ([]float64, error) {
	out := make([]float64, 0, len(stages))
	for _, st := range stages {
		if st.EncLayers == 0 {
			continue
		}
		layer, err := e.Prof.EncodeLayer(tokens, meanSeq, st.TP, linkClass(st))
		if err != nil {
			return nil, err
		}
		send, err := e.Prof.PPSend(tokens, e.ppClass(st))
		if err != nil {
			return nil, err
		}
		out = append(out, float64(st.EncLayers)*layer+send)
	}
	return out, nil
}

// decStageTimes returns per-stage decode-iteration times.
func (e *Engine) decStageTimes(stages []sched.Stage, batch int, ctx float64) ([]float64, error) {
	out := make([]float64, 0, len(stages))
	for _, st := range stages {
		if st.DecLayers == 0 {
			continue
		}
		layer, err := e.Prof.DecodeLayer(batch, ctx, st.TP, linkClass(st))
		if err != nil {
			return nil, err
		}
		send, err := e.Prof.PPSend(batch, e.ppClass(st))
		if err != nil {
			return nil, err
		}
		out = append(out, float64(st.DecLayers)*layer+send)
	}
	return out, nil
}

// pipelinePeriod mirrors core's steady-state iteration period.
func pipelinePeriod(stageTimes []float64, m int) float64 {
	if m < 1 {
		m = 1
	}
	var sum, max float64
	for _, t := range stageTimes {
		sum += t
		if t > max {
			max = t
		}
	}
	if p := float64(m) * max; p > sum {
		return p
	}
	return sum
}

func meanCtxOf(m model.Model, active []*query) float64 {
	if len(active) == 0 {
		return 1
	}
	total := 0
	for _, q := range active {
		total += q.ctxLen(m)
	}
	return float64(total) / float64(len(active))
}

// Run dispatches on the schedule's policy through the execution-driver
// registry (driver.go).
func (e *Engine) Run(cfg sched.Config, alloc sched.Allocation, reqs []workload.Request) (Result, error) {
	if err := cfg.Validate(e.Cluster.TotalGPUs()); err != nil {
		return Result{}, err
	}
	if len(reqs) == 0 {
		return Result{}, fmt.Errorf("runner: no requests")
	}
	d, err := driverFor(cfg.Policy)
	if err != nil {
		return Result{}, err
	}
	return d.runBatch(e, cfg, alloc, reqs)
}

// rraMicroBatches matches Figure 4(a)'s two interleaved mini-batches.
const rraMicroBatches = 2

// reqFIFO is an index-cursor FIFO over an immutable request slice.
// Batches come out as subslices (no copying) and a failed admission
// rewinds the cursor, so deferred admission is O(1) instead of the old
// re-prepend (`append(copy(batch[i:]), pending...)`), which copied the
// whole remaining queue on every stall.
type reqFIFO struct {
	items []workload.Request
	head  int
}

// newReqFIFO copies reqs once: the backing array must stay immutable
// while subslices of it are in flight as encode batches.
func newReqFIFO(reqs []workload.Request) reqFIFO {
	return reqFIFO{items: append([]workload.Request(nil), reqs...)}
}

// Len returns the number of queued requests.
func (q *reqFIFO) Len() int { return len(q.items) - q.head }

// Peek returns the next n queued requests (fewer when the queue is
// shorter) without consuming them.
func (q *reqFIFO) Peek(n int) []workload.Request {
	if n > q.Len() {
		n = q.Len()
	}
	return q.items[q.head : q.head+n]
}

// Advance consumes the first n queued requests.
func (q *reqFIFO) Advance(n int) { q.head += n }

// Rewind un-consumes the last n consumed requests; they return to the
// queue front in their original order (they are still contiguous in
// the backing array).
func (q *reqFIFO) Rewind(n int) { q.head -= n }

// push appends a newly arrived request to the queue tail (open-loop
// runs grow the queue incrementally instead of pre-drawing it). When
// the consumed prefix dominates the backing array it is compacted into
// a fresh allocation, which leaves any in-flight batch subslices on the
// old array untouched; appending into spare capacity is equally safe
// because in-flight subslices are never read past their length.
func (q *reqFIFO) push(r workload.Request) {
	if q.head > 64 && q.head > len(q.items)/2 {
		q.items = append([]workload.Request(nil), q.items[q.head:]...)
		q.head = 0
	}
	q.items = append(q.items, r)
}

// runRRA executes the synchronized encode/decode phase loop.
func (e *Engine) runRRA(cfg sched.Config, alloc sched.Allocation, reqs []workload.Request) (Result, error) {
	states, err := e.newStageStates(alloc)
	if err != nil {
		return Result{}, err
	}
	res := Result{EncStage: metrics.NewRecorder(), DecStage: metrics.NewRecorder()}
	rec := metrics.NewRecorder()

	pending := newReqFIFO(reqs)
	var active []*query
	meanIn := meanInLen(reqs)
	now := 0.0

	// decSample buffers per-iteration decode stage times so the Table 7
	// variance stats can be restricted to steady state after the fact:
	// the sustainable decoder batch is only known once the run is over.
	type decSample struct {
		active int
		times  []float64
	}
	var decSamples []decSample

	for pending.Len() > 0 || len(active) > 0 {
		// Encoding phase (skipped while draining).
		if pending.Len() > 0 {
			batch := e.formation().Take(&pending, cfg.BE, meanIn, len(active), cfg.BD)
			admitted, tokens, deferred := e.admitBatch(states, batch)
			if deferred > 0 {
				// Out of memory: rewind the deferred victims onto the
				// queue front and proceed with what fits.
				pending.Rewind(deferred)
			}
			if len(admitted) == 0 && len(active) == 0 {
				return Result{}, fmt.Errorf("runner: query %d does not fit in KV memory even on an idle system", batch[0].ID)
			}
			if len(admitted) > 0 {
				// The phase runs as rraMicroBatches interleaved
				// mini-batches (Figure 4(a)); stage times are per micro.
				microTokens := tokens / rraMicroBatches
				if microTokens < 1 {
					microTokens = 1
				}
				times, err := e.encStageTimes(alloc.Stages, microTokens, meanIn)
				if err != nil {
					return Result{}, err
				}
				// Stage-time variance (Table 7) is a steady-state
				// property: skip the drain tail where batches shrink.
				if pending.Len() > 0 {
					for _, t := range times {
						res.EncStage.Add(t)
					}
				}
				now += pipelinePeriod(times, rraMicroBatches)
				for _, r := range admitted {
					active = append(active, &query{req: r, start: now})
				}
			}
		}

		// ND decoding iterations.
		for u := 0; u < cfg.ND && len(active) > 0; u++ {
			ctx := meanCtxOf(e.Model, active)
			micro := len(active) / rraMicroBatches
			if micro < 1 {
				micro = 1
			}
			times, err := e.decStageTimes(alloc.Stages, micro, ctx)
			if err != nil {
				return Result{}, err
			}
			// Stage-time variance (Table 7) is a steady-state property:
			// skip the drain tail now and the ramp-up in the post-pass
			// below (the achieved steady batch is only known at the end).
			if pending.Len() > 0 {
				decSamples = append(decSamples, decSample{
					active: len(active),
					times:  append([]float64(nil), times...),
				})
			}
			now += pipelinePeriod(times, rraMicroBatches)
			res.Iterations++

			survivors := active[:0]
			for _, q := range active {
				q.pos++
				if q.pos >= q.req.OutLen {
					release(states, q.req.ID)
					rec.Add(now - q.start)
					res.Records = append(res.Records, QueryRecord{
						ID: q.req.ID, Start: q.start, End: now,
						InLen: q.req.InLen, OutLen: q.req.OutLen,
					})
				} else {
					if err := appendToken(states, q.req.ID); err != nil {
						return Result{}, fmt.Errorf("runner: decode OOM: %w", err)
					}
					survivors = append(survivors, q)
				}
			}
			active = survivors
			if cost, ran := e.maybeCompact(states); ran {
				now += cost
				res.Compactions++
				res.CompactionSeconds += cost
			}
		}
	}
	// Keep only iterations where the decoder ran within Theta of the
	// largest batch it achieved: that is the schedule's operating point,
	// whether or not the request stream ever filled the nominal BD.
	peakActive := 0
	for _, s := range decSamples {
		if s.active > peakActive {
			peakActive = s.active
		}
	}
	floor := float64(peakActive) * (1 - e.Theta)
	for _, s := range decSamples {
		if float64(s.active) >= floor {
			for _, t := range s.times {
				res.DecStage.Add(t)
			}
		}
	}
	res.Stats = metrics.Summarize(rec, now, completionTimes(res.Records))
	res.PeakDecMemPerGPU = peakMem(states)
	return res, nil
}

// completionTimes extracts the End timestamps of the records.
func completionTimes(records []QueryRecord) []float64 {
	ends := make([]float64, len(records))
	for i, r := range records {
		ends[i] = r.End
	}
	return ends
}

// runWAA executes the asynchronous encoder/decoder pipelines on the
// discrete-event simulator.
func (e *Engine) runWAA(cfg sched.Config, alloc sched.Allocation, reqs []workload.Request) (Result, error) {
	states, err := e.newStageStates(alloc)
	if err != nil {
		return Result{}, err
	}
	encStages := alloc.EncStages()
	decStages := alloc.DecStages()
	if len(encStages) == 0 || len(decStages) == 0 {
		return Result{}, fmt.Errorf("runner: WAA needs dedicated encode and decode stages")
	}
	bm := cfg.Bm
	if bm > len(decStages) {
		bm = len(decStages)
	}

	res := Result{EncStage: metrics.NewRecorder(), DecStage: metrics.NewRecorder()}
	rec := metrics.NewRecorder()
	sim := eventsim.New()
	sim.MaxSteps = 50_000_000

	pending := newReqFIFO(reqs)
	meanIn := meanInLen(reqs)
	var active []*query
	type arrival struct {
		batch []workload.Request
		start float64
	}
	var inbox []arrival
	inflight := 0 // encoder batches not yet merged by the decoder
	// The encoder pipeline naturally holds one batch per stage, and the
	// KV handover keeps more in flight; bound the buffer so the encoder
	// is never throttled below its steady issue rate but cannot run
	// unboundedly ahead of the decoder.
	maxInflight := len(encStages) + 3
	encDone := false
	var runErr error

	var startEncode func()
	var iterate func()
	decoding := false

	startEncode = func() {
		if runErr != nil {
			return
		}
		if pending.Len() == 0 {
			encDone = true
			if !decoding {
				iterate()
			}
			return
		}
		if inflight >= maxInflight {
			// Encoder stalls until the decoder drains the buffer; the
			// decoder restarts it.
			return
		}
		batch := e.formation().Take(&pending, cfg.BE, meanIn, len(active), cfg.BD)
		tokens := 0
		for _, r := range batch {
			tokens += r.InLen
		}
		times, terr := e.encStageTimes(encStages, tokens, meanIn)
		if terr != nil {
			runErr = terr
			return
		}
		for _, t := range times {
			res.EncStage.Add(t)
		}
		period := 0.0
		var trav float64
		for _, t := range times {
			trav += t
			if t > period {
				period = t
			}
		}
		handover := trav + e.Prof.KVTransfer(tokens)
		start := sim.Now()
		inflight++
		sim.After(handover, func() {
			inbox = append(inbox, arrival{batch: batch, start: start})
			if !decoding {
				iterate()
			}
		})
		// Pipelined issue: the next batch enters the first stage after
		// one stage period.
		sim.After(period, startEncode)
	}

	iterate = func() {
		if runErr != nil {
			return
		}
		// Merge arrivals (§4.1: encoded batches merge with previously
		// decoded data). Arrivals that do not fit yet wait for capacity
		// freed by completing queries. The waiting list compacts in
		// place (the write index never passes the read index) and
		// leftover batches stay subslices, so a stalled decoder never
		// copies queued requests.
		waiting := inbox[:0]
		merged := false
		sel := e.victims()
		tryAdmit := func(r workload.Request) error {
			return admit(states, r.ID, e.promptTokens(r))
		}
		for _, a := range inbox {
			admitted, deferred := sel.Admit(a.batch, tryAdmit)
			for _, r := range admitted {
				active = append(active, &query{req: r, start: a.start})
				merged = true
			}
			if deferred > 0 {
				i := len(a.batch) - deferred
				if len(active) == 0 {
					runErr = fmt.Errorf("runner: WAA query %d does not fit in KV memory even on an idle decoder", a.batch[i].ID)
					return
				}
				waiting = append(waiting, arrival{batch: a.batch[i:], start: a.start})
			} else {
				inflight--
			}
		}
		restartEnc := merged
		inbox = waiting
		if restartEnc && !encDone {
			startEncode()
		}
		if len(active) == 0 {
			decoding = false
			if encDone && inflight == 0 {
				return // finished
			}
			return // wait for arrivals
		}
		decoding = true

		micro := len(active) / bm
		if micro < 1 {
			micro = 1
		}
		ctx := meanCtxOf(e.Model, active)
		times, terr := e.decStageTimes(decStages, micro, ctx)
		if terr != nil {
			runErr = terr
			return
		}
		if !encDone {
			for _, t := range times {
				res.DecStage.Add(t)
			}
		}
		dur := pipelinePeriod(times, bm)
		if cost, ran := e.maybeCompact(states); ran {
			dur += cost
			res.Compactions++
			res.CompactionSeconds += cost
		}
		sim.After(dur, func() {
			res.Iterations++
			survivors := active[:0]
			for _, q := range active {
				q.pos++
				if q.pos >= q.req.OutLen {
					release(states, q.req.ID)
					rec.Add(sim.Now() - q.start)
					res.Records = append(res.Records, QueryRecord{
						ID: q.req.ID, Start: q.start, End: sim.Now(),
						InLen: q.req.InLen, OutLen: q.req.OutLen,
					})
				} else {
					if err := appendToken(states, q.req.ID); err != nil {
						runErr = fmt.Errorf("runner: WAA decode OOM: %w", err)
						return
					}
					survivors = append(survivors, q)
				}
			}
			active = survivors
			iterate()
		})
	}

	startEncode()
	end := sim.Run()
	if runErr != nil {
		return Result{}, runErr
	}
	res.Stats = metrics.Summarize(rec, end, completionTimes(res.Records))
	res.PeakDecMemPerGPU = peakMem(states)
	if res.Stats.Completed != len(reqs) {
		return Result{}, fmt.Errorf("runner: WAA completed %d of %d requests (stall)", res.Stats.Completed, len(reqs))
	}
	return res, nil
}

func meanInLen(reqs []workload.Request) float64 {
	if len(reqs) == 0 {
		return 1
	}
	t := 0
	for _, r := range reqs {
		t += r.InLen
	}
	return float64(t) / float64(len(reqs))
}
