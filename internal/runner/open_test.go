package runner

import (
	"math"
	"reflect"
	"testing"

	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

func openEngine(t *testing.T) *Engine {
	t.Helper()
	m, err := model.ByName("OPT-13B")
	if err != nil {
		t.Fatal(err)
	}
	return engine(t, m, 4, hw.A40Cluster)
}

// pushAll feeds arrivals spaced gap seconds apart and returns the last
// arrival time.
func pushAll(o *OpenRun, reqs []workload.Request, start, gap float64) float64 {
	at := start
	for _, r := range reqs {
		o.Push(r, at)
		at += gap
	}
	return at - gap
}

func TestOpenRRACompletesAll(t *testing.T) {
	e := openEngine(t)
	reqs := requests(t, workload.Summarization, 64, 7)
	cfg := rraConfig(16, 4)
	alloc := rraAlloc(t, e, cfg.TP)

	o, err := e.Open(cfg, alloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := pushAll(o, reqs, 0, 0.05)
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	res := o.Result()
	if res.Stats.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", res.Stats.Completed, len(reqs))
	}
	if !o.Done() {
		t.Fatal("engine not Done after drain")
	}
	if o.Now() < last {
		t.Fatalf("clock %v did not reach last arrival %v", o.Now(), last)
	}
	for _, r := range res.Records {
		if r.End <= r.Start {
			t.Fatalf("record %d: End %v <= Start %v", r.ID, r.End, r.Start)
		}
	}
}

func TestOpenWAACompletesAll(t *testing.T) {
	e := openEngine(t)
	reqs := requests(t, workload.Summarization, 64, 7)
	cfg := sched.Config{Policy: sched.WAAM, BE: 8, BD: 64, Bm: 2, ND: 1, TP: sched.TPSpec{Degree: 1}}
	alloc := waaAlloc(t, e, 1, 3, cfg.TP)

	o, err := e.Open(cfg, alloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	pushAll(o, reqs, 0, 0.05)
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	res := o.Result()
	if res.Stats.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", res.Stats.Completed, len(reqs))
	}
	if !o.Done() {
		t.Fatal("engine not Done after drain")
	}
}

// TestOpenLatencyIncludesQueueing pins that Start is the arrival time:
// a request arriving into a busy system must show more latency than the
// same request hitting an idle one.
func TestOpenLatencyIncludesQueueing(t *testing.T) {
	e := openEngine(t)
	reqs := requests(t, workload.Summarization, 40, 3)
	cfg := rraConfig(8, 4)
	alloc := rraAlloc(t, e, cfg.TP)

	o, err := e.Open(cfg, alloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Everything arrives at t=0: the tail of the queue waits.
	for _, r := range reqs {
		o.Push(r, 0)
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	recs := o.Records()
	if len(recs) != len(reqs) {
		t.Fatalf("completed %d of %d", len(recs), len(reqs))
	}
	for _, r := range recs {
		if r.Start != 0 {
			t.Fatalf("record %d Start = %v, want arrival time 0", r.ID, r.Start)
		}
	}
}

// TestOpenIdleWake pins parking: with a long gap between arrivals the
// engine must quiesce (complete the first request) and then wake for
// the second, rather than spinning or stalling.
func TestOpenIdleWake(t *testing.T) {
	e := openEngine(t)
	reqs := requests(t, workload.Summarization, 2, 11)
	for _, cfg := range []sched.Config{
		rraConfig(4, 2),
		{Policy: sched.WAAM, BE: 2, BD: 16, Bm: 2, ND: 1, TP: sched.TPSpec{Degree: 1}},
	} {
		var alloc sched.Allocation
		if cfg.Policy.IsWAA() {
			alloc = waaAlloc(t, e, 1, 3, cfg.TP)
		} else {
			alloc = rraAlloc(t, e, cfg.TP)
		}
		o, err := e.Open(cfg, alloc, 0)
		if err != nil {
			t.Fatal(err)
		}
		o.Push(reqs[0], 0)
		o.Push(reqs[1], 1000)
		if err := o.RunUntil(999); err != nil {
			t.Fatal(err)
		}
		if got := len(o.Records()); got != 1 {
			t.Fatalf("%v: %d completions before the gap, want 1", cfg.Policy, got)
		}
		if !o.Done() {
			t.Fatalf("%v: engine busy during idle gap (depth %d)", cfg.Policy, o.QueueDepth())
		}
		if err := o.Finish(); err != nil {
			t.Fatal(err)
		}
		if got := len(o.Records()); got != 2 {
			t.Fatalf("%v: %d total completions, want 2", cfg.Policy, got)
		}
		if second := o.Records()[1]; second.Start != 1000 || second.End <= 1000 {
			t.Fatalf("%v: second record %+v not anchored at its arrival", cfg.Policy, second)
		}
	}
}

// TestOpenDrainCarriesBacklog pins the schedule-switch seam: draining
// mid-run finishes admitted work and hands back the queued remainder
// with original arrival times, and a successor engine at a later start
// time finishes the job with queueing latency preserved.
func TestOpenDrainCarriesBacklog(t *testing.T) {
	e := openEngine(t)
	reqs := requests(t, workload.Summarization, 48, 5)
	cfg := rraConfig(4, 4)
	alloc := rraAlloc(t, e, cfg.TP)

	o, err := e.Open(cfg, alloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		o.Push(r, 0)
	}
	if err := o.RunUntil(0.5); err != nil {
		t.Fatal(err)
	}
	leftover, err := o.Drain()
	if err != nil {
		t.Fatal(err)
	}
	done := len(o.Records())
	if done == 0 || len(leftover) == 0 {
		t.Fatalf("drain split %d done / %d leftover; want both non-zero", done, len(leftover))
	}
	if done+len(leftover) != len(reqs) {
		t.Fatalf("done %d + leftover %d != %d", done, len(leftover), len(reqs))
	}
	for _, a := range leftover {
		if a.At != 0 {
			t.Fatalf("leftover arrival time %v, want 0", a.At)
		}
	}

	resume := o.Now() + 2.0 // drain + modeled reconfiguration downtime
	o2, err := e.Open(cfg, alloc, resume)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Now() != resume {
		t.Fatalf("successor clock %v, want %v", o2.Now(), resume)
	}
	for _, a := range leftover {
		o2.Push(a.Req, a.At)
	}
	if err := o2.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := len(o2.Records()); got != len(leftover) {
		t.Fatalf("successor completed %d of %d", got, len(leftover))
	}
	for _, r := range o2.Records() {
		if r.Start != 0 || r.End <= resume {
			t.Fatalf("successor record %+v lost its queueing latency", r)
		}
	}
}

// TestOpenDeterministic pins byte-identical replay: same requests, same
// arrival times, same schedule => identical records.
func TestOpenDeterministic(t *testing.T) {
	e := openEngine(t)
	reqs := requests(t, workload.Summarization, 64, 9)
	for _, cfg := range []sched.Config{
		rraConfig(8, 4),
		{Policy: sched.WAAM, BE: 4, BD: 32, Bm: 2, ND: 1, TP: sched.TPSpec{Degree: 1}},
	} {
		var alloc sched.Allocation
		if cfg.Policy.IsWAA() {
			alloc = waaAlloc(t, e, 1, 3, cfg.TP)
		} else {
			alloc = rraAlloc(t, e, cfg.TP)
		}
		run := func() []QueryRecord {
			o, err := e.Open(cfg, alloc, 0)
			if err != nil {
				t.Fatal(err)
			}
			pushAll(o, reqs, 0, 0.02)
			if err := o.Finish(); err != nil {
				t.Fatal(err)
			}
			return o.Records()
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: records differ across identical runs", cfg.Policy)
		}
	}
}

// TestOpenMatchesBatchThroughput sanity-checks the open engine against
// the batch engine: with every request arriving at t=0 the open RRA run
// is the same workload as a batch run, so steady throughput should land
// in the same ballpark (the admission paths differ slightly).
func TestOpenMatchesBatchThroughput(t *testing.T) {
	e := openEngine(t)
	reqs := requests(t, workload.Summarization, 200, 13)
	cfg := rraConfig(16, 4)
	alloc := rraAlloc(t, e, cfg.TP)

	batch, err := e.Run(cfg, alloc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	o, err := e.Open(cfg, alloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		o.Push(r, 0)
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	open := o.Result()
	if open.Stats.Completed != batch.Stats.Completed {
		t.Fatalf("open completed %d, batch %d", open.Stats.Completed, batch.Stats.Completed)
	}
	ratio := open.Stats.Throughput / batch.Stats.Throughput
	if math.IsNaN(ratio) || ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("open tput %.3f vs batch %.3f (ratio %.2f) diverged",
			open.Stats.Throughput, batch.Stats.Throughput, ratio)
	}
}
