// Execution-driver registry: the runner's end of the per-family
// dispatch. A family's capability flags select its driver — dedicated
// encode/decode pools run on the asynchronous eventsim driver, shared
// pools on the synchronized cycle driver — so a family registered in
// sched lands in both the batch Run and incremental OpenRun engines
// without a new policy branch here.
package runner

import (
	"fmt"

	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// driver executes schedules for one capability class of families. Both
// engines route through it: runBatch drains a pre-drawn request slice
// (Engine.Run); openInit/openWake bind the incremental OpenRun's
// pipeline state and admission restart.
type driver interface {
	runBatch(e *Engine, cfg sched.Config, alloc sched.Allocation, reqs []workload.Request) (Result, error)
	openInit(o *OpenRun) error
	openWake(o *OpenRun)
}

// driverByCaps maps a family's capabilities onto its driver.
func driverByCaps(c sched.Caps) driver {
	if c.DedicatedPools {
		return pooledDriver{}
	}
	return syncDriver{}
}

// driverFor resolves the driver for a policy from the family registry.
func driverFor(p sched.Policy) (driver, error) {
	if f, ok := sched.FamilyOf(p); ok {
		return driverByCaps(f.Caps), nil
	}
	return nil, fmt.Errorf("runner: no driver for policy %v", p)
}

// syncDriver runs the synchronized phase loop of shared-pool families
// (one encoding phase then ND decoding iterations, Figure 4(a)).
type syncDriver struct{}

func (syncDriver) runBatch(e *Engine, cfg sched.Config, alloc sched.Allocation, reqs []workload.Request) (Result, error) {
	return e.runRRA(cfg, alloc, reqs)
}

func (syncDriver) openInit(o *OpenRun) error { return nil }

func (syncDriver) openWake(o *OpenRun) { o.rraCycle() }

// pooledDriver runs dedicated-pool families as asynchronous encoder and
// decoder pipelines on the discrete-event simulator (Figure 4(b)).
type pooledDriver struct{}

func (pooledDriver) runBatch(e *Engine, cfg sched.Config, alloc sched.Allocation, reqs []workload.Request) (Result, error) {
	return e.runWAA(cfg, alloc, reqs)
}

func (pooledDriver) openInit(o *OpenRun) error {
	o.encStages = o.alloc.EncStages()
	o.decStages = o.alloc.DecStages()
	if len(o.encStages) == 0 || len(o.decStages) == 0 {
		return fmt.Errorf("runner: WAA needs dedicated encode and decode stages")
	}
	o.bm = o.cfg.Bm
	if o.bm > len(o.decStages) {
		o.bm = len(o.decStages)
	}
	// Same in-flight bound as the batch engine: the encoder pipeline
	// holds one batch per stage plus handover slack.
	o.maxInflight = len(o.encStages) + 3
	return nil
}

func (pooledDriver) openWake(o *OpenRun) { o.startEncode() }
