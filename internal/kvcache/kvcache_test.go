package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"exegpt/internal/hw"
)

func trackers() *hw.MemTracker { return hw.NewMemTracker(1 << 20) }

func TestReservedWorstCase(t *testing.T) {
	mem := trackers()
	m := NewReserved(mem, 10)
	if err := m.Admit(1, 5, 100); err != nil {
		t.Fatal(err)
	}
	if m.UsedBytes() != 1000 || mem.Used() != 1000 {
		t.Fatalf("reserved bytes = %d, want 1000", m.UsedBytes())
	}
	if m.LiveTokens() != 5 {
		t.Fatalf("live tokens = %d", m.LiveTokens())
	}
	for i := 0; i < 3; i++ {
		if err := m.Append(1); err != nil {
			t.Fatal(err)
		}
	}
	if m.LiveTokens() != 8 || m.UsedBytes() != 1000 {
		t.Fatal("append should not change reserved bytes")
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if mem.Used() != 0 || m.LiveTokens() != 0 {
		t.Fatal("release should free everything")
	}
}

func TestReservedErrors(t *testing.T) {
	m := NewReserved(trackers(), 10)
	if err := m.Admit(1, 10, 5); err == nil {
		t.Fatal("max < prompt should fail")
	}
	if err := m.Admit(1, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(1, 1, 10); err == nil {
		t.Fatal("double admit should fail")
	}
	if err := m.Append(2); err == nil {
		t.Fatal("append unknown should fail")
	}
	if err := m.Release(2); err == nil {
		t.Fatal("release unknown should fail")
	}
}

func TestReservedOOM(t *testing.T) {
	mem := hw.NewMemTracker(100)
	m := NewReserved(mem, 10)
	if err := m.Admit(1, 1, 20); err == nil {
		t.Fatal("expected OOM")
	}
	if mem.Used() != 0 {
		t.Fatal("failed admit must not leak")
	}
}

func TestCompactingExactAndFrag(t *testing.T) {
	mem := trackers()
	m := NewCompacting(mem, 10)
	if err := m.Admit(1, 50, 9999); err != nil {
		t.Fatal(err)
	}
	if m.UsedBytes() != 500 {
		t.Fatalf("used = %d, want exactly 500 (no over-reservation)", m.UsedBytes())
	}
	if err := m.Admit(2, 30, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	// Released bytes linger as fragmentation.
	if m.FragBytes() != 500 || m.UsedBytes() != 500+310 {
		t.Fatalf("frag=%d used=%d", m.FragBytes(), m.UsedBytes())
	}
	moved := m.Compact()
	if moved != 310 {
		t.Fatalf("compact moved %d, want 310 (live bytes)", moved)
	}
	if m.FragBytes() != 0 || m.UsedBytes() != 310 || mem.Used() != 310 {
		t.Fatalf("after compact frag=%d used=%d mem=%d", m.FragBytes(), m.UsedBytes(), mem.Used())
	}
	if m.Compact() != 0 {
		t.Fatal("compact with no frag should be free")
	}
}

func TestCompactingErrors(t *testing.T) {
	m := NewCompacting(trackers(), 10)
	if err := m.Append(1); err == nil {
		t.Fatal("append unknown should fail")
	}
	if err := m.Release(1); err == nil {
		t.Fatal("release unknown should fail")
	}
	if err := m.Admit(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(1, 1, 0); err == nil {
		t.Fatal("double admit should fail")
	}
}

func TestPagedGranularity(t *testing.T) {
	mem := trackers()
	m := NewPaged(mem, 10, 16)
	if err := m.Admit(1, 17, 0); err != nil {
		t.Fatal(err)
	}
	// 17 tokens -> 2 pages of 16 tokens.
	if m.UsedBytes() != 2*16*10 {
		t.Fatalf("used = %d, want 320", m.UsedBytes())
	}
	if m.InternalWaste() != (32-17)*10 {
		t.Fatalf("waste = %d", m.InternalWaste())
	}
	// Appends within the page are free; crossing allocates one page.
	for i := 0; i < 15; i++ {
		if err := m.Append(1); err != nil {
			t.Fatal(err)
		}
	}
	if m.UsedBytes() != 320 {
		t.Fatalf("used = %d, want 320 (page not full)", m.UsedBytes())
	}
	if err := m.Append(1); err != nil {
		t.Fatal(err)
	}
	if m.UsedBytes() != 480 {
		t.Fatalf("used = %d, want 480 after page crossing", m.UsedBytes())
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if mem.Used() != 0 {
		t.Fatal("paged release must free all pages")
	}
}

func TestPagedErrorsAndClamp(t *testing.T) {
	m := NewPaged(trackers(), 10, 0) // clamps page to 1 token
	if err := m.Admit(1, 3, 0); err != nil {
		t.Fatal(err)
	}
	if m.InternalWaste() != 0 {
		t.Fatal("1-token pages have no waste")
	}
	if err := m.Admit(1, 1, 0); err == nil {
		t.Fatal("double admit should fail")
	}
	if err := m.Append(9); err == nil {
		t.Fatal("append unknown should fail")
	}
	if err := m.Release(9); err == nil {
		t.Fatal("release unknown should fail")
	}
}

// Paged waste is bounded by one page per query; Reserved waste is
// unbounded (worst-case reservation).
func TestWasteComparison(t *testing.T) {
	mem1, mem2 := trackers(), trackers()
	res := NewReserved(mem1, 1)
	pag := NewPaged(mem2, 1, 16)
	for id := 0; id < 10; id++ {
		if err := res.Admit(id, 10, 640); err != nil {
			t.Fatal(err)
		}
		if err := pag.Admit(id, 10, 640); err != nil {
			t.Fatal(err)
		}
	}
	if res.UsedBytes() <= pag.UsedBytes() {
		t.Fatalf("reserved %d should waste more than paged %d", res.UsedBytes(), pag.UsedBytes())
	}
	if pag.InternalWaste() > 10*16 {
		t.Fatalf("paged waste %d exceeds one page per query", pag.InternalWaste())
	}
}

// Property: for any op sequence, manager accounting matches the tracker
// and live tokens never go negative.
func TestQuickManagersConsistent(t *testing.T) {
	f := func(ops []uint8, kind uint8) bool {
		mem := hw.NewMemTracker(1 << 30)
		var m Manager
		switch kind % 3 {
		case 0:
			m = NewReserved(mem, 4)
		case 1:
			m = NewCompacting(mem, 4)
		default:
			m = NewPaged(mem, 4, 8)
		}
		live := map[int]bool{}
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if m.Admit(next, int(op%50)+1, 1024) == nil {
					live[next] = true
				}
				next++
			case 1:
				for id := range live {
					if err := m.Append(id); err != nil {
						return false
					}
					break
				}
			case 2:
				for id := range live {
					if err := m.Release(id); err != nil {
						return false
					}
					delete(live, id)
					break
				}
			}
			if m.LiveTokens() < 0 || m.UsedBytes() < 0 {
				return false
			}
			if m.UsedBytes() != mem.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}
