// Package kvcache implements the key/value memorization-cache managers
// used by the execution engines.
//
// Three management disciplines appear in the paper:
//
//   - Reserved: FasterTransformer/DSI reserve the worst-case sequence
//     length for every query up front and never early-terminate, wasting
//     memory and compute on completed queries (§2).
//   - Compacting: ExeGPT's XRunner early-terminates completed queries
//     and compacts their cache entries (§3); memory tracks live tokens
//     plus a transient fragmentation that compaction reclaims.
//   - Paged: vLLM's PagedAttention allocates fixed-size pages on demand,
//     bounding waste to under one page per query (§2).
//
// All managers account bytes against a shared hw.MemTracker so the
// runner can detect out-of-memory conditions (e.g. WAA on 175B+ models,
// §7.4).
package kvcache

import (
	"fmt"

	"exegpt/internal/hw"
)

// Manager is the interface the execution engines program against.
type Manager interface {
	// Admit reserves cache space for a new query with the given prompt
	// length (tokens already in cache after prefill) and, for reserving
	// managers, the worst-case total length.
	Admit(id, promptTokens, maxTokens int) error
	// Append extends a query's cache by one generated token.
	Append(id int) error
	// Release frees a completed (or evicted) query's cache.
	Release(id int) error
	// LiveTokens returns the number of tokens currently cached.
	LiveTokens() int64
	// UsedBytes returns the bytes charged to the underlying tracker.
	UsedBytes() int64
}

// Reserved reserves maxTokens per query up front (FT/DSI style).
type Reserved struct {
	mem           *hw.MemTracker
	bytesPerToken int64
	queries       map[int]int64 // id -> reserved bytes
	liveTokens    map[int]int64
}

// NewReserved returns a worst-case-reserving manager.
func NewReserved(mem *hw.MemTracker, bytesPerToken int64) *Reserved {
	return &Reserved{mem: mem, bytesPerToken: bytesPerToken,
		queries: make(map[int]int64), liveTokens: make(map[int]int64)}
}

// Admit implements Manager.
func (m *Reserved) Admit(id, promptTokens, maxTokens int) error {
	if _, ok := m.queries[id]; ok {
		return fmt.Errorf("kvcache: query %d already admitted", id)
	}
	if maxTokens < promptTokens {
		return fmt.Errorf("kvcache: maxTokens %d < promptTokens %d", maxTokens, promptTokens)
	}
	n := int64(maxTokens) * m.bytesPerToken
	if err := m.mem.Alloc(n); err != nil {
		return err
	}
	m.queries[id] = n
	m.liveTokens[id] = int64(promptTokens)
	return nil
}

// Append implements Manager; reserved space is pre-paid, so appends only
// advance the live-token count.
func (m *Reserved) Append(id int) error {
	if _, ok := m.queries[id]; !ok {
		return fmt.Errorf("kvcache: append to unknown query %d", id)
	}
	m.liveTokens[id]++
	return nil
}

// Release implements Manager.
func (m *Reserved) Release(id int) error {
	n, ok := m.queries[id]
	if !ok {
		return fmt.Errorf("kvcache: release of unknown query %d", id)
	}
	m.mem.Free(n)
	delete(m.queries, id)
	delete(m.liveTokens, id)
	return nil
}

// LiveTokens implements Manager.
func (m *Reserved) LiveTokens() int64 {
	var t int64
	for _, n := range m.liveTokens {
		t += n
	}
	return t
}

// UsedBytes implements Manager.
func (m *Reserved) UsedBytes() int64 {
	var t int64
	for _, n := range m.queries {
		t += n
	}
	return t
}

// Compacting allocates exactly the live tokens and reclaims released
// queries' space via compaction (ExeGPT XRunner style). Released bytes
// remain charged as fragmentation until Compact is called; Compact
// returns the number of bytes that had to be moved, which the runner can
// convert into a time cost.
type Compacting struct {
	mem           *hw.MemTracker
	bytesPerToken int64
	tokens        map[int]int64
	fragBytes     int64
}

// NewCompacting returns an exact-size manager with explicit compaction.
func NewCompacting(mem *hw.MemTracker, bytesPerToken int64) *Compacting {
	return &Compacting{mem: mem, bytesPerToken: bytesPerToken, tokens: make(map[int]int64)}
}

// Admit implements Manager; maxTokens is ignored (no over-reservation).
func (m *Compacting) Admit(id, promptTokens, maxTokens int) error {
	if _, ok := m.tokens[id]; ok {
		return fmt.Errorf("kvcache: query %d already admitted", id)
	}
	n := int64(promptTokens) * m.bytesPerToken
	if err := m.mem.Alloc(n); err != nil {
		return err
	}
	m.tokens[id] = int64(promptTokens)
	return nil
}

// Append implements Manager.
func (m *Compacting) Append(id int) error {
	if _, ok := m.tokens[id]; !ok {
		return fmt.Errorf("kvcache: append to unknown query %d", id)
	}
	if err := m.mem.Alloc(m.bytesPerToken); err != nil {
		return err
	}
	m.tokens[id]++
	return nil
}

// Release implements Manager: the space becomes fragmentation until the
// next Compact.
func (m *Compacting) Release(id int) error {
	n, ok := m.tokens[id]
	if !ok {
		return fmt.Errorf("kvcache: release of unknown query %d", id)
	}
	m.fragBytes += n * m.bytesPerToken
	delete(m.tokens, id)
	return nil
}

// Compact reclaims fragmentation and returns the bytes of live cache
// moved (an upper bound: all live bytes shift left past the holes).
func (m *Compacting) Compact() (movedBytes int64) {
	if m.fragBytes == 0 {
		return 0
	}
	moved := m.LiveTokens() * m.bytesPerToken
	m.mem.Free(m.fragBytes)
	m.fragBytes = 0
	return moved
}

// FragBytes returns the bytes awaiting compaction.
func (m *Compacting) FragBytes() int64 { return m.fragBytes }

// LiveTokens implements Manager.
func (m *Compacting) LiveTokens() int64 {
	var t int64
	for _, n := range m.tokens {
		t += n
	}
	return t
}

// UsedBytes implements Manager.
func (m *Compacting) UsedBytes() int64 {
	return m.LiveTokens()*m.bytesPerToken + m.fragBytes
}

// Paged allocates cache in fixed-size pages (vLLM PagedAttention).
type Paged struct {
	mem           *hw.MemTracker
	bytesPerToken int64
	pageTokens    int64
	tokens        map[int]int64
	pages         map[int]int64
}

// NewPaged returns a paged manager with the given page size in tokens.
func NewPaged(mem *hw.MemTracker, bytesPerToken int64, pageTokens int) *Paged {
	if pageTokens < 1 {
		pageTokens = 1
	}
	return &Paged{mem: mem, bytesPerToken: bytesPerToken, pageTokens: int64(pageTokens),
		tokens: make(map[int]int64), pages: make(map[int]int64)}
}

func (m *Paged) pagesFor(tokens int64) int64 {
	return (tokens + m.pageTokens - 1) / m.pageTokens
}

// Admit implements Manager; maxTokens is ignored (on-demand paging).
func (m *Paged) Admit(id, promptTokens, maxTokens int) error {
	if _, ok := m.tokens[id]; ok {
		return fmt.Errorf("kvcache: query %d already admitted", id)
	}
	p := m.pagesFor(int64(promptTokens))
	if err := m.mem.Alloc(p * m.pageTokens * m.bytesPerToken); err != nil {
		return err
	}
	m.tokens[id] = int64(promptTokens)
	m.pages[id] = p
	return nil
}

// Append implements Manager, allocating a new page when the current one
// fills.
func (m *Paged) Append(id int) error {
	n, ok := m.tokens[id]
	if !ok {
		return fmt.Errorf("kvcache: append to unknown query %d", id)
	}
	need := m.pagesFor(n + 1)
	if need > m.pages[id] {
		if err := m.mem.Alloc(m.pageTokens * m.bytesPerToken); err != nil {
			return err
		}
		m.pages[id] = need
	}
	m.tokens[id] = n + 1
	return nil
}

// Release implements Manager; pages are freed immediately.
func (m *Paged) Release(id int) error {
	p, ok := m.pages[id]
	if !ok {
		return fmt.Errorf("kvcache: release of unknown query %d", id)
	}
	m.mem.Free(p * m.pageTokens * m.bytesPerToken)
	delete(m.tokens, id)
	delete(m.pages, id)
	return nil
}

// LiveTokens implements Manager.
func (m *Paged) LiveTokens() int64 {
	var t int64
	for _, n := range m.tokens {
		t += n
	}
	return t
}

// UsedBytes implements Manager.
func (m *Paged) UsedBytes() int64 {
	var p int64
	for _, n := range m.pages {
		p += n
	}
	return p * m.pageTokens * m.bytesPerToken
}

// InternalWaste returns allocated-but-unused bytes (paging overhead).
func (m *Paged) InternalWaste() int64 {
	return m.UsedBytes() - m.LiveTokens()*m.bytesPerToken
}

var (
	_ Manager = (*Reserved)(nil)
	_ Manager = (*Compacting)(nil)
	_ Manager = (*Paged)(nil)
)
