// Package workload defines the NLP tasks of the ExeGPT evaluation
// (Table 3), the real-world dataset emulations of §7.5, and request
// generation.
//
// The paper synthesizes input/output sequences from truncated normal
// distributions whose parameters reflect public datasets, and enforces
// output lengths by suppressing the end-of-sequence token (§7.1). Real
// datasets (WMT, Alpaca, CNN/DailyMail) exhibit long tails toward long
// outputs, which we emulate with log-normal length distributions.
package workload

import (
	"fmt"
	"math/rand"

	"exegpt/internal/seqdist"
)

// Spec gives the summary statistics of a length distribution as listed
// in Table 3.
type Spec struct {
	Avg, Std float64
	Max      int
	// LongTail selects a log-normal shape instead of truncated normal
	// (used by the real-dataset emulations).
	LongTail bool
}

// Dist materializes the distribution.
func (s Spec) Dist() (*seqdist.Dist, error) {
	if s.LongTail {
		return seqdist.NewLogNormal(s.Avg, s.Std, s.Max)
	}
	return seqdist.NewTruncNormal(s.Avg, s.Std, s.Max)
}

// Task is one evaluation workload.
type Task struct {
	// ID is the paper's task identifier (S, T, G, C1, C2, or a dataset
	// name for §7.5).
	ID   string
	Name string
	In   Spec
	Out  Spec
	// Rho is the input/output length correlation (Gaussian copula);
	// §7.1 reports 0.08-0.21 for most tasks and 0.57-0.94 for
	// translation.
	Rho float64
}

// Table 3 tasks.
var (
	Summarization  = Task{ID: "S", Name: "Summarization", In: Spec{256, 252, 512, false}, Out: Spec{32, 13, 80, false}, Rho: 0.15}
	Translation    = Task{ID: "T", Name: "Translation", In: Spec{128, 81, 256, false}, Out: Spec{128, 68, 320, false}, Rho: 0.75}
	CodeGeneration = Task{ID: "G", Name: "Code Generation", In: Spec{64, 23, 128, false}, Out: Spec{192, 93, 480, false}, Rho: 0.12}
	ConvQA1        = Task{ID: "C1", Name: "Conversational Q&A (short)", In: Spec{256, 115, 512, false}, Out: Spec{64, 30, 160, false}, Rho: 0.18}
	ConvQA2        = Task{ID: "C2", Name: "Conversational Q&A (long)", In: Spec{512, 252, 1024, false}, Out: Spec{256, 134, 640, false}, Rho: 0.21}
)

// Real-world dataset emulations (§7.5, Figure 10). Output tails are
// long, which exacerbates the diminishing-batch problem for fixed-batch
// systems.
var (
	WMT    = Task{ID: "WMT", Name: "WMT En-De translation", In: Spec{30, 22, 256, true}, Out: Spec{32, 26, 300, true}, Rho: 0.85}
	Alpaca = Task{ID: "Alpaca", Name: "Alpaca conversational Q&A", In: Spec{21, 16, 256, true}, Out: Spec{120, 110, 1024, true}, Rho: 0.10}
	CNN    = Task{ID: "CNN", Name: "CNN/DailyMail summarization", In: Spec{780, 320, 2048, false}, Out: Spec{58, 28, 256, true}, Rho: 0.12}
)

// Tasks lists the synthetic Table 3 tasks in paper order.
var Tasks = []Task{Summarization, Translation, CodeGeneration, ConvQA1, ConvQA2}

// RealDatasets lists the §7.5 dataset emulations.
var RealDatasets = []Task{WMT, Alpaca, CNN}

// tasksByID indexes every task (synthetic and dataset) by identifier,
// built once instead of rebuilding the concatenated slice per lookup.
var tasksByID = func() map[string]Task {
	m := make(map[string]Task, len(Tasks)+len(RealDatasets))
	for _, t := range Tasks {
		m[t.ID] = t
	}
	for _, t := range RealDatasets {
		m[t.ID] = t
	}
	return m
}()

// ByID returns a task (synthetic or dataset) by its identifier.
func ByID(id string) (Task, error) {
	t, ok := tasksByID[id]
	if !ok {
		return Task{}, fmt.Errorf("workload: unknown task %q", id)
	}
	return t, nil
}

// Dists materializes both length distributions.
func (t Task) Dists() (in, out *seqdist.Dist, err error) {
	in, err = t.In.Dist()
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s input: %w", t.ID, err)
	}
	out, err = t.Out.Dist()
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s output: %w", t.ID, err)
	}
	return in, out, nil
}

// Request is one inference query with enforced lengths.
type Request struct {
	ID     int
	InLen  int
	OutLen int
}

// Generator produces requests with correlated lengths.
type Generator struct {
	task Task
	biv  seqdist.Bivariate
	rng  *rand.Rand
	next int
	// RandomizeInputs applies the paper's input-length randomization
	// across batches for highly correlated tasks (§7.1): it shuffles
	// the input marginal independently, breaking the copula coupling.
	RandomizeInputs bool
}

// NewGenerator returns a deterministic generator for the task.
func NewGenerator(task Task, seed int64) (*Generator, error) {
	in, out, err := task.Dists()
	if err != nil {
		return nil, err
	}
	return &Generator{
		task: task,
		biv:  seqdist.Bivariate{In: in, Out: out, Rho: task.Rho},
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

// Task returns the generator's task.
func (g *Generator) Task() Task { return g.task }

// InDist and OutDist expose the marginals.
func (g *Generator) InDist() *seqdist.Dist { return g.biv.In }

// OutDist returns the output-length marginal.
func (g *Generator) OutDist() *seqdist.Dist { return g.biv.Out }

// Next produces the next request.
func (g *Generator) Next() Request {
	var in, out int
	if g.RandomizeInputs {
		in = g.biv.In.Sample(g.rng)
		out = g.biv.Out.Sample(g.rng)
	} else {
		in, out = g.biv.Sample(g.rng)
	}
	r := Request{ID: g.next, InLen: in, OutLen: out}
	g.next++
	return r
}

// Batch produces n requests.
func (g *Generator) Batch(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Split partitions requests into an estimation set (first fraction est)
// and an evaluation set, mirroring §7.5's 10%/90% split.
func Split(reqs []Request, est float64) (estimate, eval []Request) {
	n := int(float64(len(reqs)) * est)
	if n < 0 {
		n = 0
	}
	if n > len(reqs) {
		n = len(reqs)
	}
	return reqs[:n], reqs[n:]
}

// EstimateDists fits empirical distributions to a request sample, the
// way a deployment observes an NLP service over time (§1, §7.5).
func EstimateDists(reqs []Request) (in, out *seqdist.Dist, err error) {
	if len(reqs) == 0 {
		return nil, nil, fmt.Errorf("workload: no requests to estimate from")
	}
	ins := make([]int, len(reqs))
	outs := make([]int, len(reqs))
	for i, r := range reqs {
		ins[i] = r.InLen
		outs[i] = r.OutLen
	}
	in, err = seqdist.NewEmpirical("observed-in", ins)
	if err != nil {
		return nil, nil, err
	}
	out, err = seqdist.NewEmpirical("observed-out", outs)
	if err != nil {
		return nil, nil, err
	}
	return in, out, nil
}
