package workload

import (
	"math"
	"testing"
)

func TestTable3Specs(t *testing.T) {
	if len(Tasks) != 5 {
		t.Fatalf("want 5 synthetic tasks, got %d", len(Tasks))
	}
	// Spot-check Table 3 numbers.
	if Summarization.In.Avg != 256 || Summarization.Out.Avg != 32 || Summarization.Out.Max != 80 {
		t.Fatalf("task S spec wrong: %+v", Summarization)
	}
	if Translation.Rho < 0.5 {
		t.Fatal("translation should be highly correlated")
	}
	if ConvQA2.In.Max != 1024 || ConvQA2.Out.Max != 640 {
		t.Fatalf("task C2 spec wrong: %+v", ConvQA2)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"S", "T", "G", "C1", "C2", "WMT", "Alpaca", "CNN"} {
		task, err := ByID(id)
		if err != nil {
			t.Fatalf("ByID(%s): %v", id, err)
		}
		if task.ID != id {
			t.Fatalf("ByID(%s) returned %s", id, task.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown task should error")
	}
}

func TestDistsMatchSpecs(t *testing.T) {
	for _, task := range Tasks {
		in, out, err := task.Dists()
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		// Truncation skews moments for wide distributions (e.g. task S
		// input std 252 vs mean 256), so allow generous bounds.
		if math.Abs(in.Mean()-task.In.Avg)/task.In.Avg > 0.35 {
			t.Errorf("%s input mean %v vs spec %v", task.ID, in.Mean(), task.In.Avg)
		}
		if math.Abs(out.Mean()-task.Out.Avg)/task.Out.Avg > 0.35 {
			t.Errorf("%s output mean %v vs spec %v", task.ID, out.Mean(), task.Out.Avg)
		}
		if in.Max() != task.In.Max || out.Max() != task.Out.Max {
			t.Errorf("%s support bounds wrong", task.ID)
		}
	}
}

// Output p99 should land near the Table 3 99th-percentile column.
func TestOutputP99(t *testing.T) {
	cases := []struct {
		task Task
		p99  int
	}{
		{Summarization, 63}, {Translation, 292}, {CodeGeneration, 417},
		{ConvQA1, 137}, {ConvQA2, 579},
	}
	for _, c := range cases {
		_, out, err := c.task.Dists()
		if err != nil {
			t.Fatal(err)
		}
		got := out.Percentile(0.99)
		if math.Abs(float64(got-c.p99))/float64(c.p99) > 0.10 {
			t.Errorf("%s p99 = %d, want ~%d", c.task.ID, got, c.p99)
		}
	}
}

func TestRealDatasetsLongTail(t *testing.T) {
	for _, task := range []Task{WMT, Alpaca, CNN} {
		_, out, err := task.Dists()
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		if out.Skewness() <= 0.3 {
			t.Errorf("%s output skewness = %v, want long right tail", task.ID, out.Skewness())
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(Translation, 11)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(Translation, 11)
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("generators diverged at %d: %+v vs %+v", i, a, b)
		}
		if a.ID != i {
			t.Fatalf("request ID = %d, want %d", a.ID, i)
		}
	}
}

func TestGeneratorBounds(t *testing.T) {
	g, err := NewGenerator(CodeGeneration, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range g.Batch(2000) {
		if r.InLen < 1 || r.InLen > 128 || r.OutLen < 1 || r.OutLen > 480 {
			t.Fatalf("request out of bounds: %+v", r)
		}
	}
}

func TestRandomizeInputsBreaksCorrelation(t *testing.T) {
	corr := func(randomize bool) float64 {
		g, err := NewGenerator(Translation, 99)
		if err != nil {
			t.Fatal(err)
		}
		g.RandomizeInputs = randomize
		reqs := g.Batch(6000)
		var sx, sy, sxx, syy, sxy float64
		for _, r := range reqs {
			x, y := float64(r.InLen), float64(r.OutLen)
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
		}
		n := float64(len(reqs))
		return (sxy/n - sx/n*sy/n) / math.Sqrt((sxx/n-sx/n*sx/n)*(syy/n-sy/n*sy/n))
	}
	if c := corr(false); c < 0.5 {
		t.Fatalf("correlated sampling corr = %v, want high", c)
	}
	if c := corr(true); math.Abs(c) > 0.1 {
		t.Fatalf("randomized sampling corr = %v, want ~0", c)
	}
}

func TestSplit(t *testing.T) {
	g, _ := NewGenerator(Summarization, 1)
	reqs := g.Batch(100)
	est, eval := Split(reqs, 0.1)
	if len(est) != 10 || len(eval) != 90 {
		t.Fatalf("split sizes %d/%d", len(est), len(eval))
	}
	est, eval = Split(reqs, -1)
	if len(est) != 0 || len(eval) != 100 {
		t.Fatal("negative fraction should clamp to 0")
	}
	est, _ = Split(reqs, 2)
	if len(est) != 100 {
		t.Fatal("fraction > 1 should clamp")
	}
}

func TestEstimateDists(t *testing.T) {
	g, _ := NewGenerator(ConvQA1, 2)
	reqs := g.Batch(5000)
	in, out, err := EstimateDists(reqs)
	if err != nil {
		t.Fatal(err)
	}
	trueIn := g.InDist()
	trueOut := g.OutDist()
	if math.Abs(in.Mean()-trueIn.Mean())/trueIn.Mean() > 0.05 {
		t.Fatalf("estimated in mean %v vs %v", in.Mean(), trueIn.Mean())
	}
	if math.Abs(out.Mean()-trueOut.Mean())/trueOut.Mean() > 0.05 {
		t.Fatalf("estimated out mean %v vs %v", out.Mean(), trueOut.Mean())
	}
	if _, _, err := EstimateDists(nil); err == nil {
		t.Fatal("empty estimate should error")
	}
}

func TestByIDCoversAllTasks(t *testing.T) {
	for _, want := range append(append([]Task{}, Tasks...), RealDatasets...) {
		got, err := ByID(want.ID)
		if err != nil {
			t.Fatalf("ByID(%q): %v", want.ID, err)
		}
		if got != want {
			t.Fatalf("ByID(%q) = %+v, want %+v", want.ID, got, want)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("ByID(nope) did not error")
	}
}
