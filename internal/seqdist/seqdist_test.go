package seqdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func truncNorm(t *testing.T, mean, std float64, max int) *Dist {
	t.Helper()
	d, err := NewTruncNormal(mean, std, max)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil); err == nil {
		t.Fatal("nil weights should fail")
	}
	if _, err := New("x", []float64{0, 0}); err == nil {
		t.Fatal("all-zero weights should fail")
	}
	if _, err := New("x", []float64{0, -1}); err == nil {
		t.Fatal("negative weight should fail")
	}
	if _, err := New("x", []float64{0, math.NaN()}); err == nil {
		t.Fatal("NaN weight should fail")
	}
}

func TestPMFNormalized(t *testing.T) {
	d := truncNorm(t, 128, 68, 320)
	sum := 0.0
	for s := 0; s <= d.Max(); s++ {
		sum += d.PMF(s)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("PMF sums to %v", sum)
	}
	if d.PMF(0) != 0 || d.PMF(-3) != 0 || d.PMF(d.Max()+1) != 0 {
		t.Fatal("PMF outside support should be 0")
	}
}

func TestTruncNormalMoments(t *testing.T) {
	// Mild truncation: moments should be near the nominal parameters.
	d := truncNorm(t, 128, 30, 320)
	if math.Abs(d.Mean()-128) > 2 {
		t.Fatalf("mean = %v, want ~128", d.Mean())
	}
	if math.Abs(d.Std()-30) > 2 {
		t.Fatalf("std = %v, want ~30", d.Std())
	}
	if math.Abs(d.Skewness()) > 0.05 {
		t.Fatalf("skewness = %v, want ~0", d.Skewness())
	}
}

func TestTruncationBelowZero(t *testing.T) {
	// Task S outputs: (32, 13, max 80). All mass within 1..80.
	d := truncNorm(t, 32, 13, 80)
	if d.Percentile(0.001) < 1 {
		t.Fatal("support must start at 1")
	}
	if d.Max() != 80 {
		t.Fatalf("max = %d", d.Max())
	}
}

func TestPercentileMonotone(t *testing.T) {
	d := truncNorm(t, 192, 93, 480)
	prev := 0
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		p := d.Percentile(q)
		if p < prev {
			t.Fatalf("percentile not monotone at q=%v: %d < %d", q, p, prev)
		}
		prev = p
	}
	if d.Percentile(0) != 1 {
		t.Fatal("q=0 should clamp to 1")
	}
	// Median near mean for symmetric dist.
	if m := d.Percentile(0.5); math.Abs(float64(m)-d.Mean()) > 5 {
		t.Fatalf("median %d far from mean %v", m, d.Mean())
	}
}

func TestSampleWithinSupportAndMoments(t *testing.T) {
	d := truncNorm(t, 64, 30, 160)
	r := rand.New(rand.NewSource(42))
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		if s < 1 || s > d.Max() {
			t.Fatalf("sample %d out of support", s)
		}
		sum += float64(s)
	}
	if got := sum / float64(n); math.Abs(got-d.Mean()) > 1.0 {
		t.Fatalf("sample mean %v vs dist mean %v", got, d.Mean())
	}
	if got := len(d.SampleN(r, 7)); got != 7 {
		t.Fatalf("SampleN returned %d", got)
	}
}

func TestSkewNormalMoments(t *testing.T) {
	// Use a support wide enough that truncation at 1 and at max does not
	// clip the tails (clipping shrinks attainable skewness).
	for _, skew := range []float64{-0.41, -0.2, 0, 0.2, 0.41} {
		d, err := NewSkewNormalMoments(400, 40, skew, 900)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.Mean()-400) > 4 {
			t.Errorf("skew=%v: mean = %v, want ~400", skew, d.Mean())
		}
		if math.Abs(d.Std()-40) > 4 {
			t.Errorf("skew=%v: std = %v, want ~40", skew, d.Std())
		}
		if math.Abs(d.Skewness()-skew) > 0.08 {
			t.Errorf("skew=%v: skewness = %v", skew, d.Skewness())
		}
	}
	if _, err := NewSkewNormalMoments(100, 10, 1.5, 200); err == nil {
		t.Fatal("skew out of range should fail")
	}
}

func TestLogNormalLongTail(t *testing.T) {
	ln, err := NewLogNormal(64, 64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tn := truncNorm(t, 64, 64, 1024)
	// Log-normal has a heavier right tail: higher p99 relative to mean.
	if ln.Percentile(0.99) <= tn.Percentile(0.99) {
		t.Fatalf("lognormal p99 %d should exceed truncnorm p99 %d",
			ln.Percentile(0.99), tn.Percentile(0.99))
	}
	if ln.Skewness() <= 0.3 {
		t.Fatalf("lognormal skewness = %v, want strongly positive", ln.Skewness())
	}
}

func TestEmpirical(t *testing.T) {
	d, err := NewEmpirical("obs", []int{5, 5, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.PMF(5)-0.75) > 1e-12 || math.Abs(d.PMF(10)-0.25) > 1e-12 {
		t.Fatalf("pmf = %v %v", d.PMF(5), d.PMF(10))
	}
	if _, err := NewEmpirical("bad", []int{0}); err == nil {
		t.Fatal("zero-length sample should fail")
	}
	if _, err := NewEmpirical("empty", nil); err == nil {
		t.Fatal("no samples should fail")
	}
}

func TestScale(t *testing.T) {
	d := truncNorm(t, 100, 20, 300)
	up, err := d.Scale(1.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up.Mean()/d.Mean()-1.3) > 0.02 {
		t.Fatalf("scaled mean ratio = %v", up.Mean()/d.Mean())
	}
	down, err := d.Scale(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(down.Mean()/d.Mean()-0.7) > 0.02 {
		t.Fatalf("scaled-down mean ratio = %v", down.Mean()/d.Mean())
	}
	if _, err := d.Scale(0); err == nil {
		t.Fatal("zero scale should fail")
	}
}

func TestSurvivalMass(t *testing.T) {
	d, err := New("u", []float64{0, 1, 1, 1, 1}) // uniform on 1..4
	if err != nil {
		t.Fatal(err)
	}
	if got := d.SurvivalMass(1); got != 1 {
		t.Fatalf("S(1)=%v", got)
	}
	if got := d.SurvivalMass(3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("S(3)=%v, want 0.5", got)
	}
	if got := d.SurvivalMass(5); got != 0 {
		t.Fatalf("S(5)=%v", got)
	}
}

func TestMeanActivePosition(t *testing.T) {
	// Deterministic length L: active positions uniform over 0..L-1,
	// mean (L-1)/2.
	w := make([]float64, 11)
	w[10] = 1
	d, err := New("det10", w)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MeanActivePosition(); math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("mean active position = %v, want 4.5", got)
	}
}

// §6 math: deterministic output length S <= ND completes exactly at U=S.
func TestCompletionDistShortSequences(t *testing.T) {
	w := make([]float64, 6)
	w[5] = 1 // S = 5 always
	d, _ := New("det5", w)
	c, err := NewCompletionDist(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 8; u++ {
		want := 0.0
		if u == 5 {
			want = 1
		}
		if math.Abs(c.PU[u]-want) > 1e-12 {
			t.Fatalf("PU[%d] = %v, want %v", u, c.PU[u], want)
		}
	}
	if math.Abs(c.PerPhaseCompletion()-1) > 1e-12 {
		t.Fatal("short sequences complete within one phase")
	}
}

// §6 math: S = 10, ND = 4 -> ceil(10/4)=3 phases, completes at
// U = 1+((10-1) mod 4) = 2 with probability 1/3 per phase.
func TestCompletionDistLongSequences(t *testing.T) {
	w := make([]float64, 11)
	w[10] = 1
	d, _ := New("det10", w)
	c, err := NewCompletionDist(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 4; u++ {
		want := 0.0
		if u == 2 {
			want = 1.0 / 3
		}
		if math.Abs(c.PU[u]-want) > 1e-12 {
			t.Fatalf("PU[%d] = %v, want %v", u, c.PU[u], want)
		}
	}
	if math.Abs(c.PerPhaseCompletion()-1.0/3) > 1e-12 {
		t.Fatalf("per-phase completion = %v, want 1/3", c.PerPhaseCompletion())
	}
	// B_D = B_E / ΣP_D(U): with B_E=10 expect 30.
	if got := c.ConsistentDecodeBatch(10); math.Abs(got-30) > 1e-9 {
		t.Fatalf("B_D = %v, want 30", got)
	}
}

func TestCompletionDistMixture(t *testing.T) {
	// Half S=2, half S=10, ND=4.
	w := make([]float64, 11)
	w[2], w[10] = 1, 1
	d, _ := New("mix", w)
	c, err := NewCompletionDist(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	// S=2 contributes 0.5 at U=2; S=10 contributes 0.5/3 at U=2.
	want2 := 0.5 + 0.5/3
	if math.Abs(c.PU[2]-want2) > 1e-12 {
		t.Fatalf("PU[2] = %v, want %v", c.PU[2], want2)
	}
}

func TestCompletionDistErrors(t *testing.T) {
	d := truncNorm(t, 32, 13, 80)
	if _, err := NewCompletionDist(d, 0); err == nil {
		t.Fatal("ND=0 should fail")
	}
}

func TestExpectedActiveFraction(t *testing.T) {
	w := make([]float64, 5)
	w[1], w[4] = 0.5, 0.5
	d, _ := New("m", w)
	c, _ := NewCompletionDist(d, 4)
	if got := c.ExpectedActiveFraction(1); got != 1 {
		t.Fatalf("active(1) = %v", got)
	}
	// After iteration 1, the S=1 half completed.
	if got := c.ExpectedActiveFraction(2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("active(2) = %v, want 0.5", got)
	}
	if got := c.ExpectedActiveFraction(0); got != 1 {
		t.Fatalf("active(0) = %v", got)
	}
}

// ActiveFractions is the Evaluator fast path for the per-u method; the
// two must agree bit for bit.
func TestActiveFractionsMatchPerU(t *testing.T) {
	d := truncNorm(t, 32, 13, 80)
	for _, nd := range []int{1, 2, 7, 13, 32, 100} {
		c, err := NewCompletionDist(d, nd)
		if err != nil {
			t.Fatal(err)
		}
		af := c.ActiveFractions()
		if len(af) != nd+1 {
			t.Fatalf("ND=%d: len = %d, want %d", nd, len(af), nd+1)
		}
		for u := 1; u <= nd; u++ {
			if want := c.ExpectedActiveFraction(u); af[u] != want {
				t.Fatalf("ND=%d u=%d: %v != %v (bits %x vs %x)",
					nd, u, af[u], want,
					math.Float64bits(af[u]), math.Float64bits(want))
			}
		}
	}
}

// Property: ΣP_D(U) over a full horizon (ND >= Max) is exactly 1, and
// P_D(U) entries are valid probabilities for any ND.
func TestQuickCompletionDistValid(t *testing.T) {
	f := func(seed int64, ndRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mean := 10 + r.Float64()*100
		std := 5 + r.Float64()*40
		d, err := NewTruncNormal(mean, std, 256)
		if err != nil {
			return false
		}
		nd := int(ndRaw)%64 + 1
		c, err := NewCompletionDist(d, nd)
		if err != nil {
			return false
		}
		sum := 0.0
		for u := 1; u <= nd; u++ {
			if c.PU[u] < -1e-15 || c.PU[u] > 1+1e-12 {
				return false
			}
			sum += c.PU[u]
		}
		if sum > 1+1e-9 {
			return false
		}
		full, err := NewCompletionDist(d, 256)
		if err != nil {
			return false
		}
		return math.Abs(full.PerPhaseCompletion()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch-consistency identity B_E = B_D * ΣP_D(U) holds by
// construction.
func TestQuickBatchConsistency(t *testing.T) {
	f := func(be uint8, ndRaw uint8) bool {
		d, err := NewTruncNormal(128, 68, 320)
		if err != nil {
			return false
		}
		nd := int(ndRaw)%32 + 1
		c, err := NewCompletionDist(d, nd)
		if err != nil {
			return false
		}
		b := int(be) + 1
		bd := c.ConsistentDecodeBatch(b)
		back := bd * c.PerPhaseCompletion()
		return math.Abs(back-float64(b)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestBivariateCorrelation(t *testing.T) {
	in := truncNorm(t, 128, 81, 256)
	out := truncNorm(t, 128, 68, 320)
	r := rand.New(rand.NewSource(7))
	high := Bivariate{In: in, Out: out, Rho: 0.9}.Corr(rand.New(rand.NewSource(7)), 8000)
	low := Bivariate{In: in, Out: out, Rho: 0.1}.Corr(r, 8000)
	if high < 0.7 {
		t.Fatalf("rho=0.9 sample corr = %v, want high", high)
	}
	if math.Abs(low) > 0.25 {
		t.Fatalf("rho=0.1 sample corr = %v, want low", low)
	}
}

func TestBivariateSamplesInSupport(t *testing.T) {
	in := truncNorm(t, 64, 23, 128)
	out := truncNorm(t, 192, 93, 480)
	b := Bivariate{In: in, Out: out, Rho: 0.5}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		x, y := b.Sample(r)
		if x < 1 || x > 128 || y < 1 || y > 480 {
			t.Fatalf("sample (%d,%d) out of support", x, y)
		}
	}
}
