// Package seqdist implements the sequence-length distributions and the
// probabilistic analysis of §6 of the ExeGPT paper.
//
// The paper represents NLP-task input/output lengths with truncated
// normal distributions (truncated below zero and above the task maximum,
// §7.1), uses skew-normal variants for the distribution-shift study
// (§7.6, Figure 11), and long-tailed shapes for real datasets (§7.5).
// From an output-length distribution P_D(S) and the RRA encoding
// frequency N_D it derives P_D(U), the probability that a query finishes
// decoding at the U'th iteration after the most recent encoding phase,
// which fixes the consistent encoder/decoder batch-size ratio.
package seqdist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a discrete distribution over sequence lengths 1..Max().
type Dist struct {
	name string
	// p[s] is P(S = s); p[0] is always 0.
	p   []float64
	cdf []float64
}

// New builds a Dist from raw nonnegative weights (index = length) by
// normalizing them. Weight at index 0 is discarded: zero-length
// sequences are not meaningful.
func New(name string, weights []float64) (*Dist, error) {
	if len(weights) < 2 {
		return nil, fmt.Errorf("seqdist: need weights up to length >= 1")
	}
	p := make([]float64, len(weights))
	total := 0.0
	for s := 1; s < len(weights); s++ {
		w := weights[s]
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("seqdist: invalid weight %v at length %d", w, s)
		}
		p[s] = w
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("seqdist: all weights zero")
	}
	cdf := make([]float64, len(p))
	acc := 0.0
	for s := range p {
		p[s] /= total
		acc += p[s]
		cdf[s] = acc
	}
	return &Dist{name: name, p: p, cdf: cdf}, nil
}

// Name returns the descriptive name of the distribution.
func (d *Dist) Name() string { return d.name }

// Max returns the largest length with nonzero probability support bound.
func (d *Dist) Max() int { return len(d.p) - 1 }

// PMF returns P(S = s); zero outside 1..Max.
func (d *Dist) PMF(s int) float64 {
	if s < 0 || s >= len(d.p) {
		return 0
	}
	return d.p[s]
}

// Mean returns E[S].
func (d *Dist) Mean() float64 {
	m := 0.0
	for s := 1; s < len(d.p); s++ {
		m += float64(s) * d.p[s]
	}
	return m
}

// Var returns Var[S].
func (d *Dist) Var() float64 {
	m := d.Mean()
	v := 0.0
	for s := 1; s < len(d.p); s++ {
		dx := float64(s) - m
		v += dx * dx * d.p[s]
	}
	return v
}

// Std returns the standard deviation.
func (d *Dist) Std() float64 { return math.Sqrt(d.Var()) }

// Skewness returns the standardized third moment.
func (d *Dist) Skewness() float64 {
	m, sd := d.Mean(), d.Std()
	if sd == 0 {
		return 0
	}
	sk := 0.0
	for s := 1; s < len(d.p); s++ {
		z := (float64(s) - m) / sd
		sk += z * z * z * d.p[s]
	}
	return sk
}

// Percentile returns the smallest length s with CDF(s) >= q, q in (0,1].
func (d *Dist) Percentile(q float64) int {
	if q <= 0 {
		return 1
	}
	i := sort.SearchFloat64s(d.cdf, q)
	if i >= len(d.cdf) {
		i = len(d.cdf) - 1
	}
	if i == 0 {
		i = 1
	}
	return i
}

// Sample draws one length.
func (d *Dist) Sample(r *rand.Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i >= len(d.cdf) {
		i = len(d.cdf) - 1
	}
	if i == 0 {
		i = 1
	}
	return i
}

// SampleN draws n lengths.
func (d *Dist) SampleN(r *rand.Rand, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}

// SurvivalMass returns Σ_{s>=a} P(S=s) for a >= 1.
func (d *Dist) SurvivalMass(a int) float64 {
	if a <= 1 {
		return 1
	}
	if a >= len(d.cdf) {
		return 0
	}
	return 1 - d.cdf[a-1]
}

// MeanActivePosition returns the steady-state mean 0-based position
// (number of already-generated tokens) of a random in-flight query slot,
// assuming completed queries are immediately replaced. The probability
// that an active slot is at position a is proportional to P(S > a).
func (d *Dist) MeanActivePosition() float64 {
	num, den := 0.0, 0.0
	for a := 0; a < d.Max(); a++ {
		w := d.SurvivalMass(a + 1) // P(S >= a+1) = P(query reaches position a)
		num += float64(a) * w
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// stdNormPDF and stdNormCDF are the standard normal density and CDF.
func stdNormPDF(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }
func stdNormCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// NewTruncNormal returns the paper's workload distribution: a normal with
// the given (pre-truncation) mean and standard deviation, truncated below
// 1 and above max (§7.1).
func NewTruncNormal(mean, std float64, max int) (*Dist, error) {
	if std <= 0 || max < 1 {
		return nil, fmt.Errorf("seqdist: bad truncated normal (mean=%v std=%v max=%d)", mean, std, max)
	}
	w := make([]float64, max+1)
	for s := 1; s <= max; s++ {
		w[s] = stdNormPDF((float64(s) - mean) / std)
	}
	return New(fmt.Sprintf("truncnorm(%.0f,%.0f,%d)", mean, std, max), w)
}

// NewSkewNormal returns a skew-normal distribution with the given
// location, scale and shape alpha, truncated to 1..max (§7.6 uses skew
// normal to vary skewness at fixed mean and std).
func NewSkewNormal(loc, scale, alpha float64, max int) (*Dist, error) {
	if scale <= 0 || max < 1 {
		return nil, fmt.Errorf("seqdist: bad skew normal (scale=%v max=%d)", scale, max)
	}
	w := make([]float64, max+1)
	for s := 1; s <= max; s++ {
		z := (float64(s) - loc) / scale
		w[s] = 2 / scale * stdNormPDF(z) * stdNormCDF(alpha*z)
	}
	return New(fmt.Sprintf("skewnorm(%.1f,%.1f,%.2f,%d)", loc, scale, alpha, max), w)
}

// NewSkewNormalMoments returns a skew-normal with (approximately) the
// requested mean, std and skewness. |skew| must be < 0.995 (the skew
// normal's attainable range is (-0.9953, 0.9953)).
func NewSkewNormalMoments(mean, std, skew float64, max int) (*Dist, error) {
	if math.Abs(skew) >= 0.995 {
		return nil, fmt.Errorf("seqdist: skewness %v out of attainable range", skew)
	}
	// Invert the skewness formula: skew = (4-pi)/2 * (d*sqrt(2/pi))^3 /
	// (1 - 2 d^2/pi)^(3/2) where d = alpha/sqrt(1+alpha^2).
	absSkew := math.Abs(skew)
	k := math.Pow(2*absSkew/(4-math.Pi), 1.0/3)
	delta := k / math.Sqrt(2/math.Pi*(1+k*k))
	if delta > 0.999 {
		delta = 0.999
	}
	alpha := delta / math.Sqrt(1-delta*delta)
	if skew < 0 {
		alpha = -alpha
		delta = -delta
	}
	omega := std / math.Sqrt(1-2*delta*delta/math.Pi)
	xi := mean - omega*delta*math.Sqrt(2/math.Pi)
	return NewSkewNormal(xi, omega, alpha, max)
}

// NewLogNormal returns a log-normal distribution (long-tailed, used to
// emulate real datasets, §7.5) with the given mean and std of the
// resulting length, truncated to 1..max.
func NewLogNormal(mean, std float64, max int) (*Dist, error) {
	if mean <= 0 || std <= 0 || max < 1 {
		return nil, fmt.Errorf("seqdist: bad log normal (mean=%v std=%v)", mean, std)
	}
	sigma2 := math.Log(1 + (std*std)/(mean*mean))
	mu := math.Log(mean) - sigma2/2
	sigma := math.Sqrt(sigma2)
	w := make([]float64, max+1)
	for s := 1; s <= max; s++ {
		x := float64(s)
		w[s] = stdNormPDF((math.Log(x)-mu)/sigma) / (x * sigma)
	}
	return New(fmt.Sprintf("lognorm(%.0f,%.0f,%d)", mean, std, max), w)
}

// NewEmpirical builds a distribution from observed lengths.
func NewEmpirical(name string, samples []int) (*Dist, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("seqdist: no samples")
	}
	max := 0
	for _, s := range samples {
		if s < 1 {
			return nil, fmt.Errorf("seqdist: sample length %d < 1", s)
		}
		if s > max {
			max = s
		}
	}
	w := make([]float64, max+1)
	for _, s := range samples {
		w[s]++
	}
	return New(name, w)
}

// Scale returns a copy with lengths multiplied by factor (rounded,
// clamped to 1..round(Max*factor)); used for the ±avg sweeps of §7.6.
func (d *Dist) Scale(factor float64) (*Dist, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("seqdist: scale factor %v must be positive", factor)
	}
	newMax := int(math.Ceil(float64(d.Max()) * factor))
	if newMax < 1 {
		newMax = 1
	}
	w := make([]float64, newMax+1)
	for s := 1; s <= d.Max(); s++ {
		ns := int(math.Round(float64(s) * factor))
		if ns < 1 {
			ns = 1
		}
		if ns > newMax {
			ns = newMax
		}
		w[ns] += d.p[s]
	}
	return New(fmt.Sprintf("%s*%.2f", d.name, factor), w)
}

// CompletionDist is P_D(U) of §6: entry U (1-based, U <= ND) is the
// probability that a query completes decoding at the U'th iteration
// after the most recent encoding phase.
type CompletionDist struct {
	ND int
	// PU[u] for u in 1..ND; PU[0] unused.
	PU []float64
}

// NewCompletionDist computes P_D(U) from the output-length distribution
// and the RRA decoding-iteration count ND, exactly per §6:
//
//	P_D(U|S) = 1{U=S}                      if S <= ND
//	P_D(U|S) = 1/ceil(S/ND) at U = 1+((S-1) mod ND), else 0, if S > ND
//	P_D(U)   = Σ_S P_D(U|S) P_D(S)
func NewCompletionDist(out *Dist, nd int) (*CompletionDist, error) {
	if nd < 1 {
		return nil, fmt.Errorf("seqdist: ND must be >= 1, got %d", nd)
	}
	pu := make([]float64, nd+1)
	for s := 1; s <= out.Max(); s++ {
		ps := out.PMF(s)
		if ps == 0 {
			continue
		}
		if s <= nd {
			pu[s] += ps
		} else {
			u := 1 + (s-1)%nd
			phases := math.Ceil(float64(s) / float64(nd))
			pu[u] += ps / phases
		}
	}
	return &CompletionDist{ND: nd, PU: pu}, nil
}

// PerPhaseCompletion returns Σ_U P_D(U): the expected fraction of the
// decoding batch that completes during one ND-iteration decoding phase.
func (c *CompletionDist) PerPhaseCompletion() float64 {
	t := 0.0
	for u := 1; u <= c.ND; u++ {
		t += c.PU[u]
	}
	return t
}

// ConsistentDecodeBatch returns the decoding batch size B_D = B_E /
// ΣP_D(U) that keeps batch sizes consistent across repeated
// encode/decode phases (§6).
func (c *CompletionDist) ConsistentDecodeBatch(be int) float64 {
	f := c.PerPhaseCompletion()
	if f <= 0 {
		return math.Inf(1)
	}
	return float64(be) / f
}

// ExpectedActiveFraction returns, for iteration u in 1..ND of a decoding
// phase, the expected fraction of the phase-start batch still active
// when iteration u executes (queries completing at U=u are counted as
// active during iteration u and inactive afterwards).
func (c *CompletionDist) ExpectedActiveFraction(u int) float64 {
	if u < 1 {
		return 1
	}
	done := 0.0
	for v := 1; v < u && v <= c.ND; v++ {
		done += c.PU[v]
	}
	f := 1 - done
	if f < 0 {
		return 0
	}
	return f
}

// ActiveFractions returns ExpectedActiveFraction(u) for every u in
// 1..ND as one slice (index u; entry 0 unused). The running sum adds
// PU[v] in the same ascending order as the per-u method, so every entry
// is bit-identical to calling ExpectedActiveFraction(u) directly while
// costing O(ND) total instead of O(ND^2).
func (c *CompletionDist) ActiveFractions() []float64 {
	out := make([]float64, c.ND+1)
	done := 0.0
	for u := 1; u <= c.ND; u++ {
		f := 1 - done
		if f < 0 {
			f = 0
		}
		out[u] = f
		done += c.PU[u]
	}
	return out
}

// Bivariate couples an input-length and output-length distribution with
// a Gaussian-copula correlation coefficient rho (§7.1 reports 0.08-0.21
// for most tasks and 0.57-0.94 for translation).
type Bivariate struct {
	In, Out *Dist
	Rho     float64
}

// Sample draws a correlated (input, output) pair.
func (b Bivariate) Sample(r *rand.Rand) (in, out int) {
	z1 := r.NormFloat64()
	z2 := b.Rho*z1 + math.Sqrt(1-b.Rho*b.Rho)*r.NormFloat64()
	in = b.In.Percentile(clampQ(stdNormCDF(z1)))
	out = b.Out.Percentile(clampQ(stdNormCDF(z2)))
	return in, out
}

func clampQ(q float64) float64 {
	if q < 1e-9 {
		return 1e-9
	}
	if q > 1-1e-9 {
		return 1 - 1e-9
	}
	return q
}

// Corr estimates the Pearson correlation of n sampled pairs.
func (b Bivariate) Corr(r *rand.Rand, n int) float64 {
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x, y := b.Sample(r)
		fx, fy := float64(x), float64(y)
		sx += fx
		sy += fy
		sxx += fx * fx
		syy += fy * fy
		sxy += fx * fy
	}
	fn := float64(n)
	cov := sxy/fn - sx/fn*sy/fn
	vx := sxx/fn - sx/fn*sx/fn
	vy := syy/fn - sy/fn*sy/fn
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
