// Execution-policy family registry: the single seam through which the
// runner, the simulator/evaluator estimate paths, and the B&B schedule
// search learn about a policy. A family registers its name, capability
// flags, search axes, and allocation builder here; the other layers ask
// the registry instead of switching on Policy values. Adding a policy
// means registering a Family (plus per-family estimators in core) — no
// switch in core or runner grows a new arm.
package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"exegpt/internal/hw"
	"exegpt/internal/model"
)

// Caps are a family's capability flags, replacing ad-hoc IsWAA checks.
type Caps struct {
	// DedicatedPools: encoding and decoding run on disjoint GPU pools as
	// asynchronous pipelines (WAA-shaped allocations with RoleEncode /
	// RoleDecode stages). False means every GPU serves both roles
	// (RRA-shaped, RoleBoth).
	DedicatedPools bool
	// UsesND: the ND control variable (decoding iterations per encoding
	// phase) is meaningful for this family.
	UsesND bool
	// UsesBm: the Bm control variable (decoder micro-batches) is
	// meaningful for this family.
	UsesBm bool
	// Experimental families are excluded from default policy sets; they
	// must be selected explicitly (e.g. `exegpt sweep -policies disagg`).
	Experimental bool
}

// AxisKind names a B&B root-branch search axis; the scheduler maps each
// kind onto a concrete value ladder bounded by its MaxBatch/MaxND/MaxBm
// knobs.
type AxisKind int

// Search axes.
const (
	// AxisBD ranges the decoder batch size over 1..MaxBatch.
	AxisBD AxisKind = iota
	// AxisBE ranges the encoder batch size over 1..MaxBatch/4.
	AxisBE
	// AxisND ranges the decoding iterations per encoding phase.
	AxisND
	// AxisBm ranges the decoder micro-batch count.
	AxisBm
)

// SplitHints carries the workload probes an allocation builder may
// consult when dividing GPUs between pools (§4.1): estimated per-batch
// encode/decode stage times and per-side memory footprints. Families
// that split by a fixed rule ignore them.
type SplitHints struct {
	CE, CD             float64
	EncBytes, DecBytes int64
}

// Family describes one execution-policy family to every layer.
type Family struct {
	Policy Policy
	// Name is the canonical render of the policy (Policy.String and the
	// JSON encoding) and the spelling ParsePolicy accepts.
	Name string
	// Group labels the policy's sweep system row (policies searched
	// together report under one group label).
	Group string
	Caps  Caps
	// Axes are the family's B&B root-branch search axes in split order.
	Axes []AxisKind
	// Validate checks the family-specific control variables; the common
	// TP/batch checks run before it.
	Validate func(c Config, totalGPUs int) error
	// AdmitTP reports whether a (policy, TP) pair can root a B&B branch
	// on a cluster of totalGPUs.
	AdmitTP func(tp TPSpec, totalGPUs int) bool
	// Allocate maps a validated config onto the cluster.
	Allocate func(m model.Model, cluster hw.Cluster, cfg Config, hints SplitHints) (Allocation, error)
}

var families = map[Policy]Family{}

// Register adds a family to the registry; duplicate policies or names
// panic (registration is an init-time programming contract).
func Register(f Family) {
	if _, dup := families[f.Policy]; dup {
		panic(fmt.Sprintf("sched: duplicate family for policy %d", int(f.Policy)))
	}
	if f.Name == "" || f.Validate == nil || f.AdmitTP == nil || f.Allocate == nil {
		panic(fmt.Sprintf("sched: incomplete family %q", f.Name))
	}
	for _, g := range families {
		if g.Name == f.Name {
			panic(fmt.Sprintf("sched: duplicate family name %q", f.Name))
		}
	}
	families[f.Policy] = f
}

// FamilyOf returns the registered family for a policy.
func FamilyOf(p Policy) (Family, bool) {
	f, ok := families[p]
	return f, ok
}

// Families returns every registered family in canonical Policy order.
func Families() []Family {
	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Policy < out[j].Policy })
	return out
}

// DefaultPolicies returns the non-experimental policies in canonical
// order — the set "search everything" spellings expand to.
func DefaultPolicies() []Policy {
	var out []Policy
	for _, f := range Families() {
		if !f.Caps.Experimental {
			out = append(out, f.Policy)
		}
	}
	return out
}

// ParsePolicy resolves a policy from its family name (case-insensitive)
// or a legacy integer spelling ("1" or "Policy(1)").
func ParsePolicy(s string) (Policy, error) {
	for _, f := range families {
		if strings.EqualFold(s, f.Name) {
			return f.Policy, nil
		}
	}
	num := s
	if strings.HasPrefix(s, "Policy(") && strings.HasSuffix(s, ")") {
		num = s[len("Policy(") : len(s)-1]
	}
	if n, err := strconv.Atoi(num); err == nil {
		return Policy(n), nil
	}
	return 0, fmt.Errorf("sched: unknown policy %q", s)
}

// MarshalJSON encodes the policy as its family name, so JSON artifacts
// stay meaningful as families become pluggable.
func (p Policy) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(p.String())), nil
}

// UnmarshalJSON accepts the family-name encoding or the legacy integer
// enum value.
func (p *Policy) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		s, err := strconv.Unquote(string(data))
		if err != nil {
			return err
		}
		got, err := ParsePolicy(s)
		if err != nil {
			return err
		}
		*p = got
		return nil
	}
	n, err := strconv.Atoi(string(data))
	if err != nil {
		return fmt.Errorf("sched: cannot decode policy from %s", data)
	}
	*p = Policy(n)
	return nil
}

// admitAnyTP admits every valid TP spec (shared-pool families).
func admitAnyTP(TPSpec, int) bool { return true }

// admitPoolTP rejects TP groups that span the whole cluster: the decode
// pool cannot take every GPU when a dedicated encode pool must exist.
func admitPoolTP(tp TPSpec, totalGPUs int) bool { return tp.GPUs < totalGPUs }

// validatePoolConfig is the shared Bm/GPU-count check of the
// dedicated-pool families (§4.1).
func validatePoolConfig(c Config, totalGPUs int) error {
	if c.Bm < 1 {
		return fmt.Errorf("sched: WAA requires Bm >= 1, got %d", c.Bm)
	}
	if totalGPUs < 2 {
		return fmt.Errorf("sched: WAA requires at least 2 GPUs (dedicated encode and decode)")
	}
	return nil
}

// waaFamily builds the Family for one WAA variant; the two differ only
// in Policy/Name (the split rule dispatches inside WAASplit).
func waaFamily(p Policy, name string) Family {
	return Family{
		Policy: p,
		Name:   name,
		Group:  "ExeGPT-WAA",
		Caps:   Caps{DedicatedPools: true, UsesBm: true},
		Axes:   []AxisKind{AxisBE, AxisBm},
		Validate: func(c Config, totalGPUs int) error {
			return validatePoolConfig(c, totalGPUs)
		},
		AdmitTP: admitPoolTP,
		Allocate: func(m model.Model, cluster hw.Cluster, cfg Config, hints SplitHints) (Allocation, error) {
			encGPUs, decGPUs, err := WAASplit(cluster.TotalGPUs(), cfg.Policy,
				hints.CE, hints.CD, hints.EncBytes, hints.DecBytes)
			if err != nil {
				return Allocation{}, err
			}
			return AllocateWAA(m, cluster, cfg.Policy, encGPUs, decGPUs, cfg.TP)
		},
	}
}

func init() {
	Register(Family{
		Policy: RRA,
		Name:   "RRA",
		Group:  "ExeGPT-RRA",
		Caps:   Caps{UsesND: true},
		Axes:   []AxisKind{AxisBD, AxisND},
		Validate: func(c Config, totalGPUs int) error {
			if c.ND < 1 {
				return fmt.Errorf("sched: RRA requires ND >= 1, got %d", c.ND)
			}
			return nil
		},
		AdmitTP: admitAnyTP,
		Allocate: func(m model.Model, cluster hw.Cluster, cfg Config, _ SplitHints) (Allocation, error) {
			return AllocateRRA(m, cluster, cfg.TP)
		},
	})
	Register(waaFamily(WAAC, "WAA-C"))
	Register(waaFamily(WAAM, "WAA-M"))
}
