// The skeletal disaggregated prefill/decode family: a proof of the
// pluggable policy seam. Like WAA it runs prefill (encode) and decode
// on disjoint GPU pools, but the split is a fixed even rule rather than
// workload-aware, and the KV handover is modeled on the critical path
// (pool-to-pool pull, no host staging overlap). It registers here and
// in core's per-family estimator registry; no switch anywhere grows an
// arm for it. Experimental: excluded from default policy sets, opt in
// with `-policies disagg`.
package sched

import (
	"fmt"

	"exegpt/internal/hw"
	"exegpt/internal/model"
)

// Disagg is the disaggregated prefill/decode policy: dedicated prefill
// and decode pools split evenly, with the KV transfer between pools on
// the critical path.
const Disagg Policy = 3

// DisaggSplit divides n GPUs evenly between the pools, giving the
// KV-heavy decode pool the remainder.
func DisaggSplit(n int) (encGPUs, decGPUs int, err error) {
	if n < 2 {
		return 0, 0, fmt.Errorf("sched: disagg needs >= 2 GPUs, have %d", n)
	}
	encGPUs = n / 2
	return encGPUs, n - encGPUs, nil
}

// AllocateDisagg produces the disaggregated allocation: an even pool
// split laid out like WAA's dedicated pipelines (TP on the decode
// side).
func AllocateDisagg(m model.Model, cluster hw.Cluster, tp TPSpec) (Allocation, error) {
	encGPUs, decGPUs, err := DisaggSplit(cluster.TotalGPUs())
	if err != nil {
		return Allocation{}, err
	}
	return allocatePools(m, cluster, Disagg, encGPUs, decGPUs, tp)
}

func init() {
	Register(Family{
		Policy: Disagg,
		Name:   "DISAGG",
		Group:  "ExeGPT-PD",
		Caps:   Caps{DedicatedPools: true, UsesBm: true, Experimental: true},
		Axes:   []AxisKind{AxisBE, AxisBm},
		Validate: func(c Config, totalGPUs int) error {
			if c.Bm < 1 {
				return fmt.Errorf("sched: disagg requires Bm >= 1, got %d", c.Bm)
			}
			if totalGPUs < 2 {
				return fmt.Errorf("sched: disagg requires at least 2 GPUs (dedicated prefill and decode pools)")
			}
			return nil
		},
		AdmitTP: admitPoolTP,
		Allocate: func(m model.Model, cluster hw.Cluster, cfg Config, _ SplitHints) (Allocation, error) {
			return AllocateDisagg(m, cluster, cfg.TP)
		},
	})
}
