package sched

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestPolicyRoundTrip pins the name round-trip for every registered
// family: String renders the registry name and ParsePolicy inverts it,
// in any case, along with the legacy spellings.
func TestPolicyRoundTrip(t *testing.T) {
	fams := Families()
	if len(fams) == 0 {
		t.Fatal("no registered families")
	}
	for _, f := range fams {
		if got := f.Policy.String(); got != f.Name {
			t.Errorf("%v.String() = %q, want %q", int(f.Policy), got, f.Name)
		}
		for _, s := range []string{f.Name, strings.ToLower(f.Name), strings.ToUpper(f.Name)} {
			p, err := ParsePolicy(s)
			if err != nil || p != f.Policy {
				t.Errorf("ParsePolicy(%q) = %v, %v; want %v", s, p, err, f.Policy)
			}
		}
		for _, s := range []string{strconv.Itoa(int(f.Policy)), fmt.Sprintf("Policy(%d)", int(f.Policy))} {
			p, err := ParsePolicy(s)
			if err != nil || p != f.Policy {
				t.Errorf("ParsePolicy(%q) = %v, %v; want %v", s, p, err, f.Policy)
			}
		}
	}
	if _, err := ParsePolicy("no-such-family"); err == nil {
		t.Error("unknown name should not parse")
	}
	if p, err := ParsePolicy("2"); err != nil || p != WAAM {
		t.Errorf("integer spelling = %v, %v; want %v", p, err, WAAM)
	}
}

// TestPolicyJSON pins the JSON encoding: names on encode, names or
// legacy integers on decode, rejection of junk.
func TestPolicyJSON(t *testing.T) {
	for _, f := range Families() {
		data, err := json.Marshal(f.Policy)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + f.Name + `"`; string(data) != want {
			t.Errorf("Marshal(%v) = %s, want %s", f.Policy, data, want)
		}
		var back Policy
		if err := json.Unmarshal(data, &back); err != nil || back != f.Policy {
			t.Errorf("Unmarshal(%s) = %v, %v", data, back, err)
		}
		var legacy Policy
		if err := json.Unmarshal([]byte(strconv.Itoa(int(f.Policy))), &legacy); err != nil || legacy != f.Policy {
			t.Errorf("legacy Unmarshal(%d) = %v, %v", int(f.Policy), legacy, err)
		}
	}
	var p Policy
	if err := json.Unmarshal([]byte(`"bogus"`), &p); err == nil {
		t.Error("junk name should fail to decode")
	}
	if err := json.Unmarshal([]byte(`{}`), &p); err == nil {
		t.Error("non-scalar should fail to decode")
	}
	// A config embedding a policy round-trips through the name form.
	cfg := Config{Policy: WAAM, BE: 2, BD: 64, Bm: 2, TP: TPSpec{Degree: 1}}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"WAA-M"`) {
		t.Errorf("config JSON %s does not use the name encoding", data)
	}
	var got Config
	if err := json.Unmarshal(data, &got); err != nil || got != cfg {
		t.Errorf("config round-trip = %+v, %v", got, err)
	}
}

// TestRegisterContracts pins the registration programming contract:
// duplicates and incomplete families panic.
func TestRegisterContracts(t *testing.T) {
	mustPanic := func(name string, f Family) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(f)
	}
	ok := func(c Config, n int) error { return nil }
	admit := func(tp TPSpec, n int) bool { return true }
	mustPanic("duplicate policy", Family{Policy: RRA, Name: "RRA-2", Validate: ok, AdmitTP: admit,
		Allocate: families[RRA].Allocate})
	mustPanic("duplicate name", Family{Policy: Policy(99), Name: "RRA", Validate: ok, AdmitTP: admit,
		Allocate: families[RRA].Allocate})
	mustPanic("incomplete", Family{Policy: Policy(99), Name: "HOLLOW"})
}
