package familytest

import (
	"testing"

	"exegpt/internal/sched"
)

// TestFamilies runs the conformance suite for every registered family
// — the acceptance gate for adding a policy: register in sched, wire
// both estimate paths in core, and this test picks it up by name.
func TestFamilies(t *testing.T) {
	fams := sched.Families()
	if len(fams) < 4 {
		t.Fatalf("expected at least 4 registered families, got %d", len(fams))
	}
	for _, f := range fams {
		t.Run(f.Name, func(t *testing.T) { Run(t, f) })
	}
}

// TestDefaultPoliciesExcludeExperimental pins the default search set to
// the paper's three families; experimental families are opt-in only.
func TestDefaultPoliciesExcludeExperimental(t *testing.T) {
	defaults := sched.DefaultPolicies()
	want := []sched.Policy{sched.RRA, sched.WAAC, sched.WAAM}
	if len(defaults) != len(want) {
		t.Fatalf("DefaultPolicies = %v, want %v", defaults, want)
	}
	for i, p := range want {
		if defaults[i] != p {
			t.Fatalf("DefaultPolicies = %v, want %v", defaults, want)
		}
	}
	for _, p := range defaults {
		f, ok := sched.FamilyOf(p)
		if !ok || f.Caps.Experimental {
			t.Fatalf("default policy %v missing or experimental", p)
		}
	}
}
