// Package familytest is the conformance suite every execution-policy
// family must pass: identity round-trips (String/ParsePolicy/JSON),
// allocation shape against the family's capability flags, bit-identical
// Simulator and Evaluator estimates (cold and warm, feasible and
// infeasible), worker-count-independent B&B search, and deterministic
// batch and open-loop runner execution. A new family earns its place by
// appearing in sched.Families() — the suite test enumerates the
// registry — so a family that registers in sched but wires only one of
// the estimate paths, or drifts between them, fails here by scenario
// name instead of as a silent artifact diff.
package familytest

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"exegpt/internal/core"
	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/profile"
	"exegpt/internal/runner"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// fixture is the shared small deployment every scenario runs on:
// OPT-13B on 4xA40 serving summarization — cheap enough for -race,
// large enough to split into dedicated pools.
type fixture struct {
	model   model.Model
	cluster hw.Cluster
	sim     *core.Simulator
	eng     *runner.Engine
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	sub, err := hw.A40Cluster.Sub(4)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.New(model.OPT13B, sub)
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := workload.Summarization.Dists()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(model.OPT13B, sub, prof.Run(), in, out)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := runner.New(model.OPT13B, sub, prof.Run())
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{model: model.OPT13B, cluster: sub, sim: sim, eng: eng}
}

// grid returns the family's estimate conformance grid: a few feasible
// control-variable points plus one infeasible point, derived from the
// family's capability flags rather than its identity.
func grid(f sched.Family, totalGPUs int) []sched.Config {
	var cfgs []sched.Config
	if f.Caps.DedicatedPools {
		for _, be := range []int{2, 8} {
			for _, bm := range []int{1, 2} {
				cfgs = append(cfgs, sched.Config{
					Policy: f.Policy, BE: be, BD: 1, Bm: bm, TP: sched.TPSpec{Degree: 1},
				})
			}
		}
		// A TP pool spanning the whole cluster leaves no encode pool.
		cfgs = append(cfgs, sched.Config{
			Policy: f.Policy, BE: 4, BD: 1, Bm: 1,
			TP: sched.TPSpec{Degree: 2, GPUs: totalGPUs},
		})
		return cfgs
	}
	for _, bd := range []int{8, 32} {
		for _, nd := range []int{4, 8} {
			cfgs = append(cfgs, sched.Config{
				Policy: f.Policy, BE: 1, BD: bd, ND: nd, TP: sched.TPSpec{Degree: 1},
			})
		}
	}
	// The full search-space batch ceiling blows the KV budget.
	cfgs = append(cfgs, sched.Config{
		Policy: f.Policy, BE: 1, BD: 4096, ND: 8, TP: sched.TPSpec{Degree: 1},
	})
	return cfgs
}

// feasible returns a pinned feasible schedule for the runner scenarios:
// the family's first grid point estimated through the Simulator (which
// derives the dependent batch variable and the allocation).
func feasible(t *testing.T, fx *fixture, f sched.Family) core.Estimate {
	t.Helper()
	for _, cfg := range grid(f, fx.cluster.TotalGPUs()) {
		est, err := fx.sim.Estimate(cfg)
		if err != nil {
			t.Fatalf("estimate %+v: %v", cfg, err)
		}
		if est.Feasible {
			return est
		}
	}
	t.Fatalf("family %s: no feasible grid point", f.Name)
	return core.Estimate{}
}

// Run executes the conformance scenarios for one registered family.
func Run(t *testing.T, f sched.Family) {
	t.Run("Identity", func(t *testing.T) { testIdentity(t, f) })
	t.Run("Allocate", func(t *testing.T) { testAllocate(t, f) })
	t.Run("EstimatorBitEquality", func(t *testing.T) { testEstimatorBitEquality(t, f) })
	t.Run("SearchDeterminism", func(t *testing.T) { testSearchDeterminism(t, f) })
	t.Run("BatchRun", func(t *testing.T) { testBatchRun(t, f) })
	t.Run("OpenRun", func(t *testing.T) { testOpenRun(t, f) })
}

// testIdentity pins the name and JSON encodings: String renders the
// registered name, ParsePolicy inverts it case-insensitively, JSON
// round-trips through the name and still decodes the legacy integer.
func testIdentity(t *testing.T, f sched.Family) {
	if got := f.Policy.String(); got != f.Name {
		t.Fatalf("String() = %q, want %q", got, f.Name)
	}
	for _, spelling := range []string{f.Name, strings.ToLower(f.Name)} {
		p, err := sched.ParsePolicy(spelling)
		if err != nil || p != f.Policy {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", spelling, p, err, f.Policy)
		}
	}
	data, err := f.Policy.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if want := `"` + f.Name + `"`; string(data) != want {
		t.Fatalf("MarshalJSON = %s, want %s", data, want)
	}
	var back sched.Policy
	if err := back.UnmarshalJSON(data); err != nil || back != f.Policy {
		t.Fatalf("UnmarshalJSON(%s) = %v, %v; want %v", data, back, err, f.Policy)
	}
	var legacy sched.Policy
	if err := legacy.UnmarshalJSON([]byte(strconv.Itoa(int(f.Policy)))); err != nil || legacy != f.Policy {
		t.Fatalf("legacy int decode = %v, %v; want %v", legacy, err, f.Policy)
	}
}

// testAllocate checks the family's allocation builder produces a shape
// matching its capability flags on the fixture cluster.
func testAllocate(t *testing.T, f sched.Family) {
	fx := newFixture(t)
	cfg := grid(f, fx.cluster.TotalGPUs())[0]
	hints := sched.SplitHints{CE: 2, CD: 1, EncBytes: 1 << 30, DecBytes: 1 << 30}
	alloc, err := f.Allocate(fx.model, fx.cluster, cfg, hints)
	if err != nil {
		t.Fatalf("Allocate %+v: %v", cfg, err)
	}
	if len(alloc.Stages) == 0 {
		t.Fatal("allocation has no stages")
	}
	enc, dec := len(alloc.EncStages()), len(alloc.DecStages())
	if f.Caps.DedicatedPools && (enc == 0 || dec == 0) {
		t.Fatalf("dedicated-pool family allocated enc=%d dec=%d stages", enc, dec)
	}
	if !f.Caps.DedicatedPools && (alloc.EncGPUs != 0 || alloc.DecGPUs != 0) {
		t.Fatalf("shared-pool family split GPUs enc=%d dec=%d", alloc.EncGPUs, alloc.DecGPUs)
	}
}

// testEstimatorBitEquality pins the Evaluator fast path to the
// Simulator reference bit for bit over the family grid — cold, then
// warm (memo hits) — including the infeasible point's Reason.
func testEstimatorBitEquality(t *testing.T, f sched.Family) {
	fx := newFixture(t)
	ev := core.NewEvaluator(fx.sim)
	cfgs := grid(f, fx.cluster.TotalGPUs())
	sawInfeasible := false
	for pass := 0; pass < 2; pass++ {
		for _, cfg := range cfgs {
			ref, rerr := fx.sim.Estimate(cfg)
			fast, ferr := ev.Estimate(cfg)
			if (rerr == nil) != (ferr == nil) {
				t.Fatalf("pass %d %+v: simulator err %v, evaluator err %v", pass, cfg, rerr, ferr)
			}
			if rerr != nil {
				continue
			}
			if !reflect.DeepEqual(ref, fast) {
				t.Fatalf("pass %d %+v: evaluator diverged\nref:  %+v\nfast: %+v", pass, cfg, ref, fast)
			}
			if !ref.Feasible {
				sawInfeasible = true
			}
		}
	}
	if !sawInfeasible {
		t.Fatal("grid exercised no infeasible point")
	}
}

// testSearchDeterminism pins FindBest to one result regardless of
// worker count, on a shrunk search space.
func testSearchDeterminism(t *testing.T, f sched.Family) {
	fx := newFixture(t)
	result := func(workers int) core.Result {
		s := core.NewScheduler(fx.sim)
		s.MaxBatch, s.MaxND, s.MaxBm = 64, 8, 4
		s.Workers = workers
		min, err := s.MinLatency([]sched.Policy{f.Policy})
		if err != nil {
			t.Fatalf("MinLatency: %v", err)
		}
		res, err := s.FindBest([]sched.Policy{f.Policy}, min*1.5)
		if err != nil {
			t.Fatalf("FindBest(workers=%d): %v", workers, err)
		}
		return res
	}
	serial, wide := result(1), result(4)
	if !reflect.DeepEqual(serial.Best, wide.Best) {
		t.Fatalf("search diverged across worker counts\n1: %+v\n4: %+v", serial.Best, wide.Best)
	}
}

// testBatchRun executes the family's best-known schedule in the batch
// engine: every request completes and two runs are identical.
func testBatchRun(t *testing.T, f sched.Family) {
	fx := newFixture(t)
	est := feasible(t, fx, f)
	reqs := requests(t, 48, 7)
	run := func() runner.Result {
		res, err := fx.eng.Run(est.Config, est.Alloc, reqs)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	r1, r2 := run(), run()
	if len(r1.Records) != len(reqs) {
		t.Fatalf("completed %d of %d requests", len(r1.Records), len(reqs))
	}
	if !reflect.DeepEqual(r1.Records, r2.Records) || !reflect.DeepEqual(r1.Stats, r2.Stats) {
		t.Fatal("batch run not deterministic")
	}
}

// testOpenRun drives the incremental engine with staggered arrivals:
// every pushed request completes and two runs are identical.
func testOpenRun(t *testing.T, f sched.Family) {
	fx := newFixture(t)
	est := feasible(t, fx, f)
	reqs := requests(t, 24, 11)
	run := func() []runner.QueryRecord {
		o, err := fx.eng.Open(est.Config, est.Alloc, 0)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		for i, r := range reqs {
			o.Push(r, float64(i)*0.05)
		}
		if err := o.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return o.Records()
	}
	r1, r2 := run(), run()
	if len(r1) != len(reqs) {
		t.Fatalf("completed %d of %d requests", len(r1), len(reqs))
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("open run not deterministic")
	}
}

func requests(t testing.TB, n int, seed int64) []workload.Request {
	t.Helper()
	g, err := workload.NewGenerator(workload.Summarization, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g.Batch(n)
}
