package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"exegpt/internal/hw"
	"exegpt/internal/model"
)

func sub(t *testing.T, c hw.Cluster, n int) hw.Cluster {
	t.Helper()
	s, err := c.Sub(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPolicyString(t *testing.T) {
	if RRA.String() != "RRA" || WAAC.String() != "WAA-C" || WAAM.String() != "WAA-M" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should still render")
	}
	if RRA.IsWAA() || !WAAC.IsWAA() || !WAAM.IsWAA() {
		t.Fatal("IsWAA wrong")
	}
}

func TestTPSpecValidate(t *testing.T) {
	cases := []struct {
		tp   TPSpec
		n    int
		ok   bool
		name string
	}{
		{TPSpec{1, 0}, 8, true, "no TP"},
		{TPSpec{2, 4}, 8, true, "partial"},
		{TPSpec{4, 8}, 8, true, "full"},
		{TPSpec{0, 0}, 8, false, "zero degree"},
		{TPSpec{2, 3}, 8, false, "not multiple"},
		{TPSpec{2, 10}, 8, false, "too many"},
		{TPSpec{1, 2}, 8, false, "degree 1 with TP GPUs"},
	}
	for _, c := range cases {
		err := c.tp.Validate(c.n)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestTPSpecStages(t *testing.T) {
	if got := (TPSpec{1, 0}).Stages(8); got != 8 {
		t.Fatalf("no-TP stages = %d", got)
	}
	// 4 GPUs in TP=2 groups + 4 plain = 2 + 4 = 6 stages.
	if got := (TPSpec{2, 4}).Stages(8); got != 6 {
		t.Fatalf("partial-TP stages = %d", got)
	}
	if got := (TPSpec{8, 8}).Stages(8); got != 1 {
		t.Fatalf("full-TP stages = %d", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Policy: RRA, BE: 4, BD: 16, ND: 8, TP: TPSpec{Degree: 1}}
	if err := good.Validate(4); err != nil {
		t.Fatal(err)
	}
	waa := Config{Policy: WAAC, BE: 2, BD: 64, Bm: 2, TP: TPSpec{Degree: 1}}
	if err := waa.Validate(4); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Policy: RRA, BE: 0, BD: 1, ND: 1, TP: TPSpec{Degree: 1}},
		{Policy: RRA, BE: 1, BD: 1, ND: 0, TP: TPSpec{Degree: 1}},
		{Policy: WAAC, BE: 1, BD: 1, Bm: 0, TP: TPSpec{Degree: 1}},
		{Policy: Policy(7), BE: 1, BD: 1, TP: TPSpec{Degree: 1}},
	}
	for i, c := range bad {
		if err := c.Validate(4); err == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
	if err := waa.Validate(1); err == nil {
		t.Fatal("WAA on a single GPU should fail")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Policy: RRA, BE: 49, BD: 343, ND: 7, TP: TPSpec{4, 4}}
	if got := c.String(); got != "RRA{BE=49 BD=343 ND=7 TP=4x4}" {
		t.Fatalf("String = %q", got)
	}
	w := Config{Policy: WAAC, BE: 4, BD: 128, Bm: 2, TP: TPSpec{2, 2}}
	if got := w.String(); got != "WAA-C{BE=4 BD=128 Bm=2 TP=2x2}" {
		t.Fatalf("String = %q", got)
	}
}

func TestSplitEven(t *testing.T) {
	got := splitEven(10, 4)
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitEven = %v", got)
		}
	}
	if out := splitEven(5, 0); len(out) != 0 {
		t.Fatal("zero stages")
	}
}

func TestAllocateRRAEncDec(t *testing.T) {
	cluster := sub(t, hw.A40Cluster, 4)
	a, err := AllocateRRA(model.T511B, cluster, TPSpec{Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Stages) != 4 {
		t.Fatalf("stages = %d", len(a.Stages))
	}
	totalEnc, totalDec := 0, 0
	for _, s := range a.Stages {
		if s.Role != RoleBoth {
			t.Fatal("RRA stages serve both roles")
		}
		totalEnc += s.EncLayers
		totalDec += s.DecLayers
		if s.EncLayers != 6 || s.DecLayers != 6 {
			t.Fatalf("uneven split: %+v", s)
		}
	}
	if totalEnc != 24 || totalDec != 24 {
		t.Fatalf("layers covered: enc=%d dec=%d", totalEnc, totalDec)
	}
}

func TestAllocateRRADecoderOnly(t *testing.T) {
	cluster := sub(t, hw.A40Cluster, 4)
	a, err := AllocateRRA(model.OPT13B, cluster, TPSpec{Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Stages {
		// Decoder-only: prefill runs through the same 10 decoder layers.
		if s.EncLayers != 10 || s.DecLayers != 10 {
			t.Fatalf("stage layers: %+v", s)
		}
	}
}

func TestAllocateRRAPartialTP(t *testing.T) {
	cluster := sub(t, hw.A40Cluster, 8)
	a, err := AllocateRRA(model.GPT339B, cluster, TPSpec{Degree: 2, GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 2 TP-2 stages + 4 plain stages = 6 stages.
	if len(a.Stages) != 6 {
		t.Fatalf("stages = %d", len(a.Stages))
	}
	if a.Stages[0].TP != 2 || a.Stages[1].TP != 2 || a.Stages[2].TP != 1 {
		t.Fatalf("TP layout wrong: %+v", a.Stages)
	}
	if a.TotalGPUs() != 8 {
		t.Fatalf("GPUs covered = %d", a.TotalGPUs())
	}
	total := 0
	for _, s := range a.Stages {
		total += s.DecLayers
	}
	if total != 48 {
		t.Fatalf("dec layers covered = %d", total)
	}
}

func TestAllocateRRARejectsBadTP(t *testing.T) {
	cluster := sub(t, hw.A40Cluster, 4)
	if _, err := AllocateRRA(model.OPT13B, cluster, TPSpec{Degree: 2, GPUs: 3}); err == nil {
		t.Fatal("bad TP should fail")
	}
}

func TestCrossNodeTPGroups(t *testing.T) {
	cluster := sub(t, hw.A40Cluster, 16)
	a, err := AllocateRRA(model.GPT339B, cluster, TPSpec{Degree: 8, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Groups [0..8) and [8..16): both within a node.
	for _, s := range a.Stages {
		if s.CrossNode {
			t.Fatalf("aligned groups should not cross nodes: %+v", s)
		}
	}
	// A 16-wide group cannot exist (degree > node) — but a misaligned
	// 2-wide group at rank 7 would. Construct directly:
	stages := buildStages(cluster, 7, 2, TPSpec{Degree: 2, GPUs: 2}, RoleDecode)
	if !stages[0].CrossNode {
		t.Fatal("group spanning ranks 7,8 must be cross-node")
	}
}

func TestWAASplitCost(t *testing.T) {
	enc, dec, err := WAASplit(4, WAAC, 1.0, 3.0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if enc != 1 || dec != 3 {
		t.Fatalf("split = %d/%d, want 1/3", enc, dec)
	}
	// Extreme ratios clamp to leave at least one GPU per side.
	enc, dec, err = WAASplit(4, WAAC, 100, 0.001, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if enc != 3 || dec != 1 {
		t.Fatalf("clamped split = %d/%d", enc, dec)
	}
	if _, _, err := WAASplit(4, WAAC, 0, 1, 0, 0); err == nil {
		t.Fatal("zero cost should fail")
	}
	if _, _, err := WAASplit(1, WAAC, 1, 1, 0, 0); err == nil {
		t.Fatal("single GPU should fail")
	}
	if _, _, err := WAASplit(4, RRA, 1, 1, 0, 0); err == nil {
		t.Fatal("RRA is not a WAA policy")
	}
}

func TestWAASplitMemory(t *testing.T) {
	enc, dec, err := WAASplit(8, WAAM, 0, 0, 1<<30, 3<<30)
	if err != nil {
		t.Fatal(err)
	}
	if enc != 2 || dec != 6 {
		t.Fatalf("memory split = %d/%d, want 2/6", enc, dec)
	}
	if _, _, err := WAASplit(8, WAAM, 0, 0, 0, 1); err == nil {
		t.Fatal("zero memory should fail")
	}
}

func TestAllocateWAA(t *testing.T) {
	cluster := sub(t, hw.A40Cluster, 4)
	a, err := AllocateWAA(model.OPT13B, cluster, WAAC, 1, 3, TPSpec{Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.EncGPUs != 1 || a.DecGPUs != 3 {
		t.Fatalf("split = %d/%d", a.EncGPUs, a.DecGPUs)
	}
	encStages, decStages := a.EncStages(), a.DecStages()
	if len(encStages) != 1 || len(decStages) != 3 {
		t.Fatalf("stages = %d enc, %d dec", len(encStages), len(decStages))
	}
	// Decoder-only: encode side holds a full copy of the 40 layers.
	if encStages[0].EncLayers != 40 {
		t.Fatalf("enc stage layers = %d", encStages[0].EncLayers)
	}
	totalDec := 0
	for _, s := range decStages {
		totalDec += s.DecLayers
		if s.Role != RoleDecode {
			t.Fatal("decode stage role wrong")
		}
	}
	if totalDec != 40 {
		t.Fatalf("dec layers = %d", totalDec)
	}
}

func TestAllocateWAAErrors(t *testing.T) {
	cluster := sub(t, hw.A40Cluster, 4)
	if _, err := AllocateWAA(model.OPT13B, cluster, RRA, 1, 3, TPSpec{Degree: 1}); err == nil {
		t.Fatal("RRA policy should fail")
	}
	if _, err := AllocateWAA(model.OPT13B, cluster, WAAC, 2, 3, TPSpec{Degree: 1}); err == nil {
		t.Fatal("split not covering cluster should fail")
	}
	if _, err := AllocateWAA(model.OPT13B, cluster, WAAC, 0, 4, TPSpec{Degree: 1}); err == nil {
		t.Fatal("zero encoder GPUs should fail")
	}
	if _, err := AllocateWAA(model.OPT13B, cluster, WAAC, 1, 3, TPSpec{Degree: 2, GPUs: 4}); err == nil {
		t.Fatal("TP wider than decode side should fail")
	}
}

// WAA on a decoder-only model stores two copies of the model; the same
// model under RRA stores one (§4.1 memory overhead).
func TestWAAModelMemoryOverhead(t *testing.T) {
	cluster := sub(t, hw.A40Cluster, 4)
	m := model.OPT13B
	rra, err := AllocateRRA(m, cluster, TPSpec{Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	waa, err := AllocateWAA(m, cluster, WAAC, 1, 3, TPSpec{Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(a Allocation) int64 {
		var total int64
		for _, s := range a.Stages {
			total += WeightBytesPerGPU(m, s) * int64(s.TP)
		}
		return total
	}
	layerBytes := int64(m.DecLayers) * m.DecLayerBytes()
	if got := sum(rra); got != layerBytes {
		t.Fatalf("RRA stores %d, want one copy %d", got, layerBytes)
	}
	if got := sum(waa); got != 2*layerBytes {
		t.Fatalf("WAA stores %d, want two copies %d", got, 2*layerBytes)
	}
}

// Encoder-decoder models do not duplicate weights under WAA.
func TestWAAEncDecNoDuplication(t *testing.T) {
	cluster := sub(t, hw.A40Cluster, 4)
	m := model.T511B
	waa, err := AllocateWAA(m, cluster, WAAC, 2, 2, TPSpec{Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range waa.Stages {
		total += WeightBytesPerGPU(m, s) * int64(s.TP)
	}
	want := int64(m.EncLayers)*m.EncLayerBytes() + int64(m.DecLayers)*m.DecLayerBytes()
	if total != want {
		t.Fatalf("T5 WAA stores %d, want %d (no duplication)", total, want)
	}
}

func TestDeployments(t *testing.T) {
	if len(DefaultDeployments) != 7 {
		t.Fatalf("want 7 Table 2 deployments, got %d", len(DefaultDeployments))
	}
	d, err := DeploymentFor("OPT-13B")
	if err != nil || d.GPUs != 4 || d.Cluster.Name != "A40" {
		t.Fatalf("OPT deployment: %+v err=%v", d, err)
	}
	if _, err := DeploymentFor("nope"); err == nil {
		t.Fatal("unknown model should fail")
	}
	c, err := d.SubCluster()
	if err != nil || c.TotalGPUs() != 4 {
		t.Fatalf("sub-cluster: %+v err=%v", c, err)
	}
}

// Property: RRA allocation always covers every layer exactly once and
// every GPU exactly once, for any valid TP spec.
func TestQuickRRACoverage(t *testing.T) {
	cluster16, err := hw.A40Cluster.Sub(16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(degSel, gSel uint8) bool {
		degrees := []int{1, 2, 4, 8}
		deg := degrees[int(degSel)%len(degrees)]
		tpGPUs := 0
		if deg > 1 {
			maxGroups := 16 / deg
			tpGPUs = (int(gSel)%maxGroups + 1) * deg
		}
		tp := TPSpec{Degree: deg, GPUs: tpGPUs}
		a, err := AllocateRRA(model.GPT339B, cluster16, tp)
		if err != nil {
			return false
		}
		gpus, layers := 0, 0
		for _, s := range a.Stages {
			gpus += s.GPUs()
			layers += s.DecLayers
		}
		return gpus == 16 && layers == 48 && len(a.Stages) == tp.Stages(16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}
