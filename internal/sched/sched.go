// Package sched defines execution-schedule types: the scheduling
// policies (RRA, WAA-C, WAA-M of §4.1), the four control variables
// (§4.2), partial tensor parallelism, and the GPU/layer allocation each
// policy produces.
package sched

import (
	"fmt"

	"exegpt/internal/hw"
	"exegpt/internal/model"
)

// Policy selects the resource-allocation policy.
type Policy int

// Policies.
const (
	// RRA assigns encoders and decoders to every GPU round-robin; the
	// schedule alternates one encoding phase with ND decoding iterations.
	RRA Policy = iota
	// WAAC splits GPUs into dedicated encoder and decoder pipelines
	// proportionally to estimated computation times.
	WAAC
	// WAAM splits GPUs so that per-GPU memory consumption balances.
	WAAM
)

// String implements fmt.Stringer, rendering the registered family name.
func (p Policy) String() string {
	if f, ok := families[p]; ok {
		return f.Name
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// IsWAA reports whether the policy is one of the paper's workload-aware
// allocations. Capability checks belong on Family.Caps (DedicatedPools
// is what most former IsWAA call sites actually meant); this remains
// only for the WAA split rule itself.
func (p Policy) IsWAA() bool { return p == WAAC || p == WAAM }

// TPSpec is the partial tensor-parallelism control variable: TP of the
// given Degree is applied to GPUs GPUs (a multiple of Degree); remaining
// GPUs run without tensor parallelism (Figure 4(d)).
type TPSpec struct {
	Degree int
	GPUs   int
}

// Validate checks the spec against a GPU count.
func (t TPSpec) Validate(totalGPUs int) error {
	switch {
	case t.Degree < 1:
		return fmt.Errorf("sched: TP degree %d < 1", t.Degree)
	case t.GPUs < 0 || t.GPUs > totalGPUs:
		return fmt.Errorf("sched: TP GPU count %d out of range 0..%d", t.GPUs, totalGPUs)
	case t.Degree > 1 && t.GPUs%t.Degree != 0:
		return fmt.Errorf("sched: TP GPU count %d not a multiple of degree %d", t.GPUs, t.Degree)
	case t.Degree == 1 && t.GPUs != 0:
		return fmt.Errorf("sched: TP degree 1 must have zero TP GPUs")
	}
	return nil
}

// Stages returns the pipeline depth that totalGPUs collapse into under
// this spec: each TP group of Degree GPUs forms one stage.
func (t TPSpec) Stages(totalGPUs int) int {
	if t.Degree <= 1 {
		return totalGPUs
	}
	return totalGPUs - t.GPUs + t.GPUs/t.Degree
}

// Config is a complete execution schedule: the policy plus the four
// control variables of §4.2 (batch size, decoder micro-batch, partial
// tensor parallelism, encoding frequency).
type Config struct {
	Policy Policy
	// BE and BD are the encoder and decoder batch sizes. For RRA, BE is
	// derived from BD and the completion distribution; for WAA, BD is
	// derived as BE * mean output length (§4.1).
	BE, BD int
	// Bm is the number of decoder micro-batches (WAA only; >= 1).
	Bm int
	// ND is the number of decoding iterations per encoding phase (RRA
	// only); the encoding frequency is 1/ND.
	ND int
	// TP is the partial tensor-parallelism spec.
	TP TPSpec
}

// Validate checks the configuration for a cluster of totalGPUs.
func (c Config) Validate(totalGPUs int) error {
	if err := c.TP.Validate(totalGPUs); err != nil {
		return err
	}
	if c.BE < 1 || c.BD < 1 {
		return fmt.Errorf("sched: batch sizes must be >= 1, got BE=%d BD=%d", c.BE, c.BD)
	}
	f, ok := FamilyOf(c.Policy)
	if !ok {
		return fmt.Errorf("sched: unknown policy %v", c.Policy)
	}
	return f.Validate(c, totalGPUs)
}

// String renders the schedule like the paper's Table 6 rows: families
// that schedule by encoding frequency show ND, the rest show Bm.
func (c Config) String() string {
	if f, ok := FamilyOf(c.Policy); ok && f.Caps.UsesND && !f.Caps.UsesBm {
		return fmt.Sprintf("%s{BE=%d BD=%d ND=%d TP=%dx%d}", c.Policy, c.BE, c.BD, c.ND, c.TP.Degree, c.TP.GPUs)
	}
	return fmt.Sprintf("%s{BE=%d BD=%d Bm=%d TP=%dx%d}", c.Policy, c.BE, c.BD, c.Bm, c.TP.Degree, c.TP.GPUs)
}

// Role describes what a pipeline stage executes.
type Role int

// Stage roles.
const (
	// RoleBoth: the stage holds both encoder and decoder layers (RRA).
	RoleBoth Role = iota
	// RoleEncode: dedicated encoding stage (WAA).
	RoleEncode
	// RoleDecode: dedicated decoding stage (WAA).
	RoleDecode
)

// Stage is one pipeline stage: a TP group of GPUs holding a contiguous
// span of layers.
type Stage struct {
	Role Role
	// FirstRank is the first GPU rank in the stage's TP group.
	FirstRank int
	// TP is the tensor-parallel degree (group size).
	TP int
	// EncLayers and DecLayers are the layer counts the stage holds.
	// For decoder-only models "encoder layers" are the decoding layers
	// used for input prefill (§2).
	EncLayers, DecLayers int
	// CrossNode reports whether the TP group spans machines (slower
	// collective link).
	CrossNode bool
}

// GPUs returns the stage's GPU count (== TP degree).
func (s Stage) GPUs() int { return s.TP }

// Allocation maps a schedule onto a cluster.
type Allocation struct {
	Policy Policy
	// Stages in pipeline order. For WAA, encode stages precede decode
	// stages and the two pipelines run asynchronously.
	Stages []Stage
	// EncGPUs and DecGPUs are the dedicated GPU counts (WAA);
	// zero for RRA, where all GPUs serve both roles.
	EncGPUs, DecGPUs int
}

// EncStages returns the stages that run encoding.
func (a Allocation) EncStages() []Stage {
	var out []Stage
	for _, s := range a.Stages {
		if s.Role == RoleEncode || s.Role == RoleBoth {
			out = append(out, s)
		}
	}
	return out
}

// DecStages returns the stages that run decoding.
func (a Allocation) DecStages() []Stage {
	var out []Stage
	for _, s := range a.Stages {
		if s.Role == RoleDecode || s.Role == RoleBoth {
			out = append(out, s)
		}
	}
	return out
}

// TotalGPUs returns the GPUs covered by the allocation.
func (a Allocation) TotalGPUs() int {
	n := 0
	for _, s := range a.Stages {
		n += s.GPUs()
	}
	return n
}

// splitEven distributes total layers over n stages as evenly as
// possible, front-loading remainders (FasterTransformer partitions
// encoders/decoders evenly across pipeline stages, §2).
func splitEven(total, n int) []int {
	out := make([]int, n)
	if n == 0 {
		return out
	}
	base, rem := total/n, total%n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// buildStages lays out stage TP groups over consecutive ranks starting
// at firstRank: TP groups first, then single-GPU stages.
func buildStages(cluster hw.Cluster, firstRank, gpus int, tp TPSpec, role Role) []Stage {
	var stages []Stage
	rank := firstRank
	if tp.Degree > 1 {
		groups := tp.GPUs / tp.Degree
		for g := 0; g < groups && rank+tp.Degree <= firstRank+gpus; g++ {
			stages = append(stages, Stage{
				Role: role, FirstRank: rank, TP: tp.Degree,
				CrossNode: cluster.GroupLink(rank, tp.Degree).Name == cluster.InterNode.Name,
			})
			rank += tp.Degree
		}
	}
	for ; rank < firstRank+gpus; rank++ {
		stages = append(stages, Stage{Role: role, FirstRank: rank, TP: 1})
	}
	return stages
}

// AllocateRRA produces the Round-Robin Allocation: every GPU (or TP
// group) receives E/N consecutive encoders and D/N consecutive decoders
// (§4.1, Figure 3 top).
func AllocateRRA(m model.Model, cluster hw.Cluster, tp TPSpec) (Allocation, error) {
	n := cluster.TotalGPUs()
	if err := tp.Validate(n); err != nil {
		return Allocation{}, err
	}
	stages := buildStages(cluster, 0, n, tp, RoleBoth)
	encTotal := m.EncLayers
	if m.DecoderOnly() {
		// Decoder-only models prefill through the decoder layers.
		encTotal = m.DecLayers
	}
	encSplit := splitEven(encTotal, len(stages))
	decSplit := splitEven(m.DecLayers, len(stages))
	for i := range stages {
		stages[i].EncLayers = encSplit[i]
		stages[i].DecLayers = decSplit[i]
	}
	return Allocation{Policy: RRA, Stages: stages}, nil
}

// WAASplit computes the encoder/decoder GPU split.
//
// WAA-C (§4.1): encGPUs = round(N * CE/(CE+CD)) where CE, CD are the
// estimated per-batch encoding and decoding stage times. WAA-M balances
// estimated per-GPU memory instead: encBytes and decBytes are the total
// memory footprints of the encoding and decoding sides.
func WAASplit(n int, policy Policy, ce, cd float64, encBytes, decBytes int64) (encGPUs, decGPUs int, err error) {
	if n < 2 {
		return 0, 0, fmt.Errorf("sched: WAA needs >= 2 GPUs, have %d", n)
	}
	var frac float64
	switch policy {
	case WAAC:
		if ce <= 0 || cd <= 0 {
			return 0, 0, fmt.Errorf("sched: WAA-C needs positive cost estimates (ce=%v cd=%v)", ce, cd)
		}
		frac = ce / (ce + cd)
	case WAAM:
		if encBytes <= 0 || decBytes <= 0 {
			return 0, 0, fmt.Errorf("sched: WAA-M needs positive memory estimates")
		}
		frac = float64(encBytes) / float64(encBytes+decBytes)
	default:
		return 0, 0, fmt.Errorf("sched: %v is not a WAA policy", policy)
	}
	encGPUs = int(float64(n)*frac + 0.5)
	if encGPUs < 1 {
		encGPUs = 1
	}
	if encGPUs > n-1 {
		encGPUs = n - 1
	}
	return encGPUs, n - encGPUs, nil
}

// AllocateWAA produces the Workload-Aware Allocation: encGPUs dedicated
// encoding stages followed by decGPUs dedicated decoding stages, run
// asynchronously (§4.1, Figure 3 bottom). The TP spec applies to the
// decoding pipeline (where latency accumulates over many iterations).
func AllocateWAA(m model.Model, cluster hw.Cluster, policy Policy, encGPUs, decGPUs int, tp TPSpec) (Allocation, error) {
	if !policy.IsWAA() {
		return Allocation{}, fmt.Errorf("sched: %v is not a WAA policy", policy)
	}
	return allocatePools(m, cluster, policy, encGPUs, decGPUs, tp)
}

// allocatePools lays out the dedicated-pool allocation shared by every
// DedicatedPools family: encGPUs encoding stages followed by decGPUs
// decoding stages, TP applied to the decode pipeline.
func allocatePools(m model.Model, cluster hw.Cluster, policy Policy, encGPUs, decGPUs int, tp TPSpec) (Allocation, error) {
	n := cluster.TotalGPUs()
	if encGPUs < 1 || decGPUs < 1 || encGPUs+decGPUs != n {
		return Allocation{}, fmt.Errorf("sched: WAA split %d+%d must cover %d GPUs", encGPUs, decGPUs, n)
	}
	if err := tp.Validate(decGPUs); err != nil {
		return Allocation{}, err
	}
	encStages := buildStages(cluster, 0, encGPUs, TPSpec{Degree: 1}, RoleEncode)
	decStages := buildStages(cluster, encGPUs, decGPUs, tp, RoleDecode)

	encTotal := m.EncLayers
	if m.DecoderOnly() {
		encTotal = m.DecLayers
	}
	encSplit := splitEven(encTotal, len(encStages))
	for i := range encStages {
		encStages[i].EncLayers = encSplit[i]
	}
	decSplit := splitEven(m.DecLayers, len(decStages))
	for i := range decStages {
		decStages[i].DecLayers = decSplit[i]
	}
	return Allocation{
		Policy:  policy,
		Stages:  append(encStages, decStages...),
		EncGPUs: encGPUs,
		DecGPUs: decGPUs,
	}, nil
}

// WeightBytesPerGPU returns the model-weight bytes held by each GPU of
// the given stage (layer shards divide across the TP group).
func WeightBytesPerGPU(m model.Model, s Stage) int64 {
	var b int64
	encLayerBytes := m.EncLayerBytes()
	if m.DecoderOnly() {
		encLayerBytes = m.DecLayerBytes()
	}
	switch s.Role {
	case RoleBoth:
		// RRA GPUs hold their encoder and decoder layer shares. For
		// decoder-only models the same decoder layers serve both phases,
		// so only the decoder share is stored.
		if m.DecoderOnly() {
			b = int64(s.DecLayers) * m.DecLayerBytes()
		} else {
			b = int64(s.EncLayers)*encLayerBytes + int64(s.DecLayers)*m.DecLayerBytes()
		}
	case RoleEncode:
		b = int64(s.EncLayers) * encLayerBytes
	case RoleDecode:
		b = int64(s.DecLayers) * m.DecLayerBytes()
	}
	return b / int64(s.TP)
}

// Deployment records which cluster and GPU count a model runs on
// (Table 2).
type Deployment struct {
	Model   model.Model
	Cluster hw.Cluster
	GPUs    int
}

// DefaultDeployments mirrors Table 2.
var DefaultDeployments = []Deployment{
	{Model: model.T511B, Cluster: hw.A40Cluster, GPUs: 8},
	{Model: model.OPT13B, Cluster: hw.A40Cluster, GPUs: 4},
	{Model: model.GPT339B, Cluster: hw.A40Cluster, GPUs: 16},
	{Model: model.GPT3101B, Cluster: hw.A100Cluster, GPUs: 16},
	{Model: model.GPT3175B, Cluster: hw.A100Cluster, GPUs: 16},
	{Model: model.GPT3175B, Cluster: hw.A40Cluster, GPUs: 32},
	{Model: model.GPT3341B, Cluster: hw.A40Cluster, GPUs: 48},
}

// DeploymentFor returns the default deployment of a model, preferring
// the first Table 2 entry.
func DeploymentFor(name string) (Deployment, error) {
	for _, d := range DefaultDeployments {
		if d.Model.Name == name {
			return d, nil
		}
	}
	return Deployment{}, fmt.Errorf("sched: no default deployment for model %q", name)
}

// SubCluster returns the deployment's logical sub-cluster.
func (d Deployment) SubCluster() (hw.Cluster, error) {
	return d.Cluster.Sub(d.GPUs)
}
