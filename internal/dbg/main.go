package main

import (
	"fmt"
	"math"

	"exegpt/internal/baselines"
	"exegpt/internal/core"
	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/profile"
	"exegpt/internal/runner"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

func main() {
	m, gpus, cl, task := model.GPT3101B, 16, hw.A100Cluster, workload.CodeGeneration
	sub, _ := cl.Sub(gpus)
	p, _ := profile.New(m, sub)
	prof := p.Run()
	in, out, _ := task.Dists()
	sim, _ := core.NewSimulator(m, sub, prof, in, out)
	sch := core.NewScheduler(sim)
	sch.MaxBatch = 512
	sch.MaxND = 32
	run, _ := runner.New(m, sub, prof)
	g, _ := workload.NewGenerator(task, 42)
	reqs := g.Batch(1500)

	ft, _ := baselines.New(baselines.FT, m, sub, prof)
	b, _ := ft.PickBatch(math.Inf(1), in.Mean(), out.Mean(), task.Out.Max, task.Out.Max)
	fres, _ := ft.Run(b, reqs, task.Out.Max)
	fmt.Printf("FT b=%d total=%.3f steady=%.3f\n", b, fres.Stats.Throughput, fres.Stats.SteadyTput)

	for _, nd := range []int{1, 2, 4, 8, 16, 32} {
		cfg := sched.Config{Policy: sched.RRA, BE: 1, BD: 400, ND: nd, TP: sched.TPSpec{Degree: 8, GPUs: 16}}
		est, _ := sim.Estimate(cfg)
		if !est.Feasible {
			fmt.Printf("ND=%2d infeasible: %s\n", nd, est.Reason)
			continue
		}
		alloc := est.Alloc
		rres, err := run.Run(est.Config, alloc, reqs)
		fmt.Printf("ND=%2d BE=%3d est=%.2f lat=%.1f | run total=%.2f steady=%.2f err=%v\n",
			nd, est.Config.BE, est.Throughput, est.Latency, rres.Stats.Throughput, rres.Stats.SteadyTput, err)
	}
	res, _ := sch.FindBest([]sched.Policy{sched.RRA}, math.Inf(1))
	fmt.Printf("scheduler pick: %v est=%.2f\n", res.Best.Config, res.Best.Throughput)
}
