package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder()
	if r.Count() != 0 || r.Mean() != 0 || r.Max() != 0 || r.Percentile(0.5) != 0 || r.Std() != 0 {
		t.Fatal("empty recorder should return zeros")
	}
}

func TestMeanMax(t *testing.T) {
	r := NewRecorder()
	for _, v := range []float64{1, 2, 3, 4} {
		r.Add(v)
	}
	if r.Mean() != 2.5 || r.Max() != 4 || r.Count() != 4 {
		t.Fatalf("mean=%v max=%v count=%d", r.Mean(), r.Max(), r.Count())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	cases := map[float64]float64{0.01: 1, 0.5: 50, 0.99: 99, 1.0: 100, 0: 1}
	for q, want := range cases {
		if got := r.Percentile(q); got != want {
			t.Errorf("P%.2f = %v, want %v", q, got, want)
		}
	}
}

func TestPercentileAfterAdd(t *testing.T) {
	r := NewRecorder()
	r.Add(10)
	if r.Percentile(0.5) != 10 {
		t.Fatal("single sample percentile")
	}
	r.Add(1) // must re-sort
	if r.Percentile(0.01) != 1 {
		t.Fatal("recorder did not re-sort after Add")
	}
}

func TestStd(t *testing.T) {
	r := NewRecorder()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if got := r.Std(); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("std = %v", got)
	}
	single := NewRecorder()
	single.Add(1)
	if single.Std() != 0 {
		t.Fatal("std of one sample should be 0")
	}
}

func TestPctlRange(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 1000; i++ {
		r.Add(float64(i))
	}
	// p99=990, p1=10 -> half width 490.
	if got := r.PctlRange(0.99); math.Abs(got-490) > 1 {
		t.Fatalf("pctl range = %v", got)
	}
}

func TestThroughput(t *testing.T) {
	if Throughput(100, 10) != 10 {
		t.Fatal("throughput arithmetic")
	}
	if Throughput(100, 0) != 0 {
		t.Fatal("zero elapsed should not divide by zero")
	}
}

func TestSummarizeAndString(t *testing.T) {
	r := NewRecorder()
	r.Add(1)
	r.Add(3)
	s := Summarize(r, 2, nil)
	if s.Completed != 2 || s.Throughput != 1 || s.MeanLat != 2 || s.MaxLat != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SteadyTput != 0 {
		t.Fatalf("SteadyTput = %v, want 0 for a too-short completion series", s.SteadyTput)
	}
	// With a completion series, SteadyTput is always populated (the old
	// API silently left it zero unless the caller remembered a second
	// call, and EffectiveTput quietly fell back to whole-run throughput).
	ends := make([]float64, 16)
	for i := range ends {
		ends[i] = float64(i + 1)
	}
	s = Summarize(r, 2, ends)
	if want := SteadyThroughput(ends); s.SteadyTput != want || want == 0 {
		t.Fatalf("SteadyTput = %v, want %v (non-zero)", s.SteadyTput, want)
	}
	if s.EffectiveTput() != s.SteadyTput {
		t.Fatalf("EffectiveTput = %v, want steady %v", s.EffectiveTput(), s.SteadyTput)
	}
	if !strings.Contains(s.String(), "tput=1.00") {
		t.Fatalf("String() = %q", s.String())
	}
}

// Property: percentile is monotone in q and bounded by [min, max].
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		r := NewRecorder()
		anyFinite := false
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				r.Add(math.Abs(v))
				anyFinite = true
			}
		}
		if !anyFinite {
			return true
		}
		a, b := math.Abs(math.Mod(q1, 1)), math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		pa, pb := r.Percentile(a), r.Percentile(b)
		return pa <= pb && pa >= r.Percentile(0) && pb <= r.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}
