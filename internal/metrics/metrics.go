// Package metrics provides the measurement utilities used across the
// evaluation: latency recorders with percentile queries, throughput
// computation, and simple online statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Recorder accumulates per-query latency samples (seconds).
type Recorder struct {
	samples []float64
	sorted  bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add records one latency sample.
func (r *Recorder) Add(v float64) {
	r.samples = append(r.samples, v)
	r.sorted = false
}

// Count returns the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean returns the sample mean, or 0 if empty.
func (r *Recorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.samples {
		s += v
	}
	return s / float64(len(r.samples))
}

// Max returns the largest sample, or 0 if empty.
func (r *Recorder) Max() float64 {
	m := 0.0
	for _, v := range r.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the q-quantile (q in [0,1]) using the
// nearest-rank method, or 0 if empty.
func (r *Recorder) Percentile(q float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
	if q <= 0 {
		return r.samples[0]
	}
	if q >= 1 {
		return r.samples[len(r.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(r.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return r.samples[idx]
}

// Std returns the sample standard deviation, or 0 for <2 samples.
func (r *Recorder) Std() float64 {
	n := len(r.samples)
	if n < 2 {
		return 0
	}
	m := r.Mean()
	v := 0.0
	for _, x := range r.samples {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(n-1))
}

// PctlRange returns the half-width of the symmetric [1-q, q] percentile
// interval around the mean (used in Table 7 to report "99th pctl Range"
// of stage execution times).
func (r *Recorder) PctlRange(q float64) float64 {
	hi := r.Percentile(q)
	lo := r.Percentile(1 - q)
	return (hi - lo) / 2
}

// Throughput converts completed queries over elapsed seconds to
// sequences per second.
func Throughput(completed int, elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(completed) / elapsed
}

// RunStats summarizes an execution for reporting.
type RunStats struct {
	Completed  int
	Elapsed    float64 // seconds of (virtual) wall time
	Throughput float64 // sequences/second over the full run
	// SteadyTput is the completion rate over the middle half of the
	// completion timeline, excluding warmup and drain; zero when there
	// are too few completions to window.
	SteadyTput float64
	MeanLat    float64
	P99Lat     float64
	MaxLat     float64
}

// SteadyThroughput computes the completion rate between the 25th and
// 75th percentile completion times, which excludes the pipeline warmup
// and the drain tail of a finite request stream.
func SteadyThroughput(completionTimes []float64) float64 {
	n := len(completionTimes)
	if n < 8 {
		return 0
	}
	sorted := append([]float64(nil), completionTimes...)
	sort.Float64s(sorted)
	lo, hi := n/4, (3*n)/4
	dt := sorted[hi] - sorted[lo]
	if dt <= 0 {
		return 0
	}
	return float64(hi-lo) / dt
}

// EffectiveTput returns SteadyTput when available, else Throughput.
func (s RunStats) EffectiveTput() float64 {
	if s.SteadyTput > 0 {
		return s.SteadyTput
	}
	return s.Throughput
}

// Summarize builds RunStats from a recorder, the elapsed time, and the
// completion-time series. Taking the completions here (rather than
// leaving SteadyTput for the caller to fill in) guarantees the field is
// always populated, so EffectiveTput never silently falls back to
// whole-run throughput because a caller forgot the second step. A nil
// or too-short series yields SteadyTput 0, as before.
func Summarize(r *Recorder, elapsed float64, completionTimes []float64) RunStats {
	return RunStats{
		Completed:  r.Count(),
		Elapsed:    elapsed,
		Throughput: Throughput(r.Count(), elapsed),
		SteadyTput: SteadyThroughput(completionTimes),
		MeanLat:    r.Mean(),
		P99Lat:     r.Percentile(0.99),
		MaxLat:     r.Max(),
	}
}

// String renders the stats compactly.
func (s RunStats) String() string {
	return fmt.Sprintf("completed=%d elapsed=%.2fs tput=%.2f seq/s mean=%.3fs p99=%.3fs max=%.3fs",
		s.Completed, s.Elapsed, s.Throughput, s.MeanLat, s.P99Lat, s.MaxLat)
}
