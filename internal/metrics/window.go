package metrics

import (
	"fmt"
	"math"
)

// WindowStats summarizes one fixed-width window of virtual time in an
// online (serving) run. Latency statistics cover the completions whose
// completion time falls inside the window; latency is measured from
// arrival, so it includes queueing delay.
type WindowStats struct {
	Index int     `json:"index"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Arrived and Completed count requests whose arrival/completion
	// time falls in [Start, End).
	Arrived   int `json:"arrived"`
	Completed int `json:"completed"`
	// QueueDepth is the last depth sampled inside the window (queued +
	// in-flight requests), or -1 when never sampled.
	QueueDepth int `json:"queueDepth"`
	// Rate and Tput are Arrived and Completed per second of window.
	Rate float64 `json:"rate"`
	Tput float64 `json:"tput"`
	// Latency percentiles of the window's completions (0 when none).
	MeanLat float64 `json:"meanLat"`
	P50Lat  float64 `json:"p50Lat"`
	P99Lat  float64 `json:"p99Lat"`
	MaxLat  float64 `json:"maxLat"`
	// SLOViolations counts completions with latency > the recorder's
	// bound (always 0 when the bound is unset).
	SLOViolations int `json:"sloViolations"`
}

// windowAcc is one window's accumulator.
type windowAcc struct {
	arrived    int
	rec        Recorder
	queueDepth int
	sampled    bool
	violations int
}

// Windowed buckets arrivals, completions, and queue-depth samples of an
// online run into fixed-width windows of virtual time starting at 0.
// Windows materialize lazily as times are observed; Stats returns every
// window up to the latest observation, including empty ones, so the
// emitted time series has no gaps. All methods are single-goroutine,
// matching the deterministic virtual-time loops that drive it.
type Windowed struct {
	width float64
	// bound is the latency SLO used for violation counting; <= 0 or
	// +Inf disables it.
	bound float64
	wins  []windowAcc
}

// NewWindowed returns a windowed recorder with the given window width
// in seconds and latency SLO bound (<= 0 or +Inf disables violation
// counting).
func NewWindowed(width, sloBound float64) (*Windowed, error) {
	if width <= 0 || math.IsInf(width, 0) || math.IsNaN(width) {
		return nil, fmt.Errorf("metrics: window width %v must be positive and finite", width)
	}
	return &Windowed{width: width, bound: sloBound}, nil
}

// Width returns the window width in seconds.
func (w *Windowed) Width() float64 { return w.width }

// WindowOf returns the index of the window containing time t.
func (w *Windowed) WindowOf(t float64) int {
	if t <= 0 {
		return 0
	}
	return int(t / w.width)
}

// at grows the window list through index i and returns its accumulator.
func (w *Windowed) at(t float64) *windowAcc {
	i := w.WindowOf(t)
	for len(w.wins) <= i {
		w.wins = append(w.wins, windowAcc{queueDepth: -1})
	}
	return &w.wins[i]
}

// Arrive records one request arrival at time t.
func (w *Windowed) Arrive(t float64) { w.at(t).arrived++ }

// Complete records one request completing at time t with the given
// arrival-to-completion latency.
func (w *Windowed) Complete(t, latency float64) {
	acc := w.at(t)
	acc.rec.Add(latency)
	if w.bound > 0 && !math.IsInf(w.bound, 1) && latency > w.bound {
		acc.violations++
	}
}

// ObserveQueue records a queue-depth sample at time t; the last sample
// inside a window wins (serve loops sample at window boundaries).
func (w *Windowed) ObserveQueue(t float64, depth int) {
	acc := w.at(t)
	acc.queueDepth = depth
	acc.sampled = true
}

// Stats finalizes every materialized window in order.
func (w *Windowed) Stats() []WindowStats {
	out := make([]WindowStats, len(w.wins))
	for i := range w.wins {
		acc := &w.wins[i]
		s := WindowStats{
			Index:         i,
			Start:         float64(i) * w.width,
			End:           float64(i+1) * w.width,
			Arrived:       acc.arrived,
			Completed:     acc.rec.Count(),
			QueueDepth:    acc.queueDepth,
			Rate:          float64(acc.arrived) / w.width,
			Tput:          float64(acc.rec.Count()) / w.width,
			MeanLat:       acc.rec.Mean(),
			P50Lat:        acc.rec.Percentile(0.50),
			P99Lat:        acc.rec.Percentile(0.99),
			MaxLat:        acc.rec.Max(),
			SLOViolations: acc.violations,
		}
		out[i] = s
	}
	return out
}
