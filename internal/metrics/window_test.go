package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func TestWindowedRejectsBadWidth(t *testing.T) {
	for _, width := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewWindowed(width, 0); err == nil {
			t.Fatalf("NewWindowed(%v) did not error", width)
		}
	}
}

func TestWindowedBuckets(t *testing.T) {
	w, err := NewWindowed(10, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	w.Arrive(0)
	w.Arrive(9.999)
	w.Arrive(10) // next window
	w.Complete(5, 1.5)
	w.Complete(25, 3.0) // window 2, violates the 2s SLO
	w.ObserveQueue(9.999, 4)
	w.ObserveQueue(29, 7)

	stats := w.Stats()
	if len(stats) != 3 {
		t.Fatalf("got %d windows, want 3 (no gaps)", len(stats))
	}
	w0, w1, w2 := stats[0], stats[1], stats[2]
	if w0.Arrived != 2 || w0.Completed != 1 || w0.QueueDepth != 4 || w0.SLOViolations != 0 {
		t.Fatalf("window 0 = %+v", w0)
	}
	if w0.Rate != 0.2 || w0.Tput != 0.1 || w0.P50Lat != 1.5 || w0.P99Lat != 1.5 {
		t.Fatalf("window 0 rates = %+v", w0)
	}
	if w1.Arrived != 1 || w1.Completed != 0 || w1.QueueDepth != -1 {
		t.Fatalf("window 1 = %+v", w1)
	}
	if w1.P99Lat != 0 || w1.MeanLat != 0 {
		t.Fatalf("empty window has non-zero latency: %+v", w1)
	}
	if w2.Completed != 1 || w2.SLOViolations != 1 || w2.QueueDepth != 7 {
		t.Fatalf("window 2 = %+v", w2)
	}
	if w2.Start != 20 || w2.End != 30 || w2.Index != 2 {
		t.Fatalf("window 2 bounds = %+v", w2)
	}
}

// TestWindowedGolden pins the windowed recorder's full output — bucket
// boundaries, percentile math, violation counting, gap filling — as a
// committed JSON golden. A deliberate behavior change regenerates it
// with `go test ./internal/metrics -run Golden -update-golden`.
func TestWindowedGolden(t *testing.T) {
	w, err := NewWindowed(5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic synthetic run: arrivals every 0.7s, each request
	// completing with latency 0.3 + 0.07*i (the tail crosses the 1s SLO).
	for i := 0; i < 30; i++ {
		at := 0.7 * float64(i)
		lat := 0.3 + 0.07*float64(i)
		w.Arrive(at)
		w.Complete(at+lat, lat)
	}
	for t := 0.0; t < 25; t += 5 {
		w.ObserveQueue(t+4.999, int(t/5)+1)
	}

	got, err := json.MarshalIndent(w.Stats(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "windowed_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("windowed stats diverged from golden %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}
