// Package distsweep shards the evaluation sweep across processes.
//
// A sweep grid flattens into a canonical cell list
// (experiments.SweepGrid.Cells); worker processes each evaluate one
// round-robin partition of it (experiments.Context.SweepShard) and
// write their cells into a versioned JSON Envelope. A coordinator reads
// the envelopes, checks that they form exactly one complete, coherent
// shard set — same format version, same grid fingerprint, same shard
// count, every shard present exactly once, every cell covered exactly
// once — and merges them into the rows, eval counts and per-deployment
// Pareto frontiers a single-process Sweep produces, bit-identically.
//
// The rows come back by concatenating cells in grid order. The
// frontiers come back by folding every cell's per-policy-group frontier
// into one core.Frontier per (model, cluster, GPUs, policy group) —
// the cross-task latency→throughput envelope of that deployment —
// which is well-defined because Frontier.Merge is order-independent.
package distsweep

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"exegpt/internal/atomicfile"
	"exegpt/internal/core"
	"exegpt/internal/experiments"
)

// EnvelopeVersion is the shard envelope format version. The coordinator
// refuses envelopes written by a different version rather than guessing
// at field semantics.
const EnvelopeVersion = 1

// Envelope is the versioned result one sweep worker process writes: the
// cells of one shard, stamped with enough metadata for the coordinator
// to reject mismatched or incomplete shard sets.
type Envelope struct {
	Version int `json:"version"`
	// Fingerprint identifies the (grid, context) the shard was cut
	// from (experiments.Context.GridFingerprint). Envelopes only merge
	// with envelopes carrying the same fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Shards is the total shard count of the partition; Shard is this
	// worker's index in 0..Shards-1. Cell i belongs to shard i%Shards.
	Shards int `json:"shards"`
	Shard  int `json:"shard"`
	// Cells are the shard's evaluated cells in grid order. Empty when
	// the grid has fewer cells than shards.
	Cells []experiments.CellResult `json:"cells"`
}

// NewEnvelope stamps a shard's cell results for the coordinator.
func NewEnvelope(fingerprint string, shards, shard int, cells []experiments.CellResult) *Envelope {
	return &Envelope{
		Version: EnvelopeVersion, Fingerprint: fingerprint,
		Shards: shards, Shard: shard, Cells: cells,
	}
}

// validate checks the envelope's internal consistency.
func (e *Envelope) validate() error {
	if e.Version != EnvelopeVersion {
		return fmt.Errorf("distsweep: envelope version %d, this build reads %d", e.Version, EnvelopeVersion)
	}
	if e.Fingerprint == "" {
		return fmt.Errorf("distsweep: envelope missing grid fingerprint")
	}
	if e.Shards < 1 {
		return fmt.Errorf("distsweep: envelope shard count %d < 1", e.Shards)
	}
	if e.Shard < 0 || e.Shard >= e.Shards {
		return fmt.Errorf("distsweep: envelope shard index %d out of range 0..%d", e.Shard, e.Shards-1)
	}
	seen := make(map[int]bool, len(e.Cells))
	for _, c := range e.Cells {
		if c.Cell < 0 {
			return fmt.Errorf("distsweep: negative cell index %d", c.Cell)
		}
		if c.Cell%e.Shards != e.Shard {
			return fmt.Errorf("distsweep: cell %d does not belong to shard %d of %d", c.Cell, e.Shard, e.Shards)
		}
		if seen[c.Cell] {
			return fmt.Errorf("distsweep: duplicate cell %d in shard %d", c.Cell, e.Shard)
		}
		seen[c.Cell] = true
	}
	return nil
}

// Encode renders the envelope as indented JSON with a trailing newline.
func (e *Envelope) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses and validates an envelope. Truncated or otherwise
// corrupt JSON, an unknown format version, and internally inconsistent
// shard metadata all fail with a descriptive error.
func Decode(data []byte) (*Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("distsweep: corrupt shard envelope: %w", err)
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// ReadFile loads one shard envelope from disk.
func ReadFile(path string) (*Envelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("distsweep: read shard: %w", err)
	}
	e, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// WriteFile atomically writes the envelope to path (temp file + rename
// via atomicfile, so a concurrently started coordinator never observes
// a torn shard).
func (e *Envelope) WriteFile(path string) error {
	data, err := e.Encode()
	if err != nil {
		return err
	}
	return atomicfile.Write(path, data, 0o644)
}

// DeploymentFrontier is the merged cross-task Pareto frontier of one
// (deployment, policy group): every feasible (latency, throughput)
// point any task's schedule search discovered on that hardware with
// that policy family, Pareto-reduced.
type DeploymentFrontier struct {
	Model    string        `json:"model"`
	Cluster  string        `json:"cluster"`
	GPUs     int           `json:"gpus"`
	Group    string        `json:"group"`
	Frontier core.Frontier `json:"frontier"`
}

// Merged is the coordinator's output: exactly what a single-process
// sweep over the same grid produces. Rows are in grid order; Evals is
// the total schedule-search evaluation count; Frontiers are sorted by
// (model, cluster, GPUs, group). It deliberately omits the shard count,
// so the merged artifact of an N-shard run is byte-identical to a
// single-process run's.
type Merged struct {
	Fingerprint string                 `json:"fingerprint"`
	Cells       int                    `json:"cells"`
	Evals       int                    `json:"evals"`
	Rows        []experiments.SweepRow `json:"rows"`
	Frontiers   []DeploymentFrontier   `json:"frontiers"`
}

// Encode renders the merged sweep as indented JSON with a trailing
// newline. The encoding is deterministic: no maps, and every float
// round-trips bit-exactly.
func (m *Merged) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile atomically writes the merged sweep to path.
func (m *Merged) WriteFile(path string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return atomicfile.Write(path, data, 0o644)
}

// Merge folds a complete shard set into one sweep result. It fails —
// rather than silently merging — when the envelopes disagree on format
// version, fingerprint or shard count, when a shard index is duplicated
// or missing, or when the union of cells is not exactly the contiguous
// grid 0..len-1.
func Merge(envs []*Envelope) (*Merged, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("distsweep: no shard envelopes to merge")
	}
	for _, e := range envs {
		if err := e.validate(); err != nil {
			return nil, err
		}
	}
	ref := envs[0]
	byShard := make(map[int]bool, len(envs))
	for _, e := range envs {
		if e.Fingerprint != ref.Fingerprint {
			return nil, fmt.Errorf("distsweep: grid fingerprint mismatch: shard %d has %.12s…, shard %d has %.12s…",
				ref.Shard, ref.Fingerprint, e.Shard, e.Fingerprint)
		}
		if e.Shards != ref.Shards {
			return nil, fmt.Errorf("distsweep: shard count mismatch: %d vs %d", ref.Shards, e.Shards)
		}
		if byShard[e.Shard] {
			return nil, fmt.Errorf("distsweep: duplicate shard index %d", e.Shard)
		}
		byShard[e.Shard] = true
	}
	if len(envs) != ref.Shards {
		var missing []int
		for i := 0; i < ref.Shards; i++ {
			if !byShard[i] {
				missing = append(missing, i)
			}
		}
		return nil, fmt.Errorf("distsweep: incomplete shard set: have %d of %d, missing %v",
			len(envs), ref.Shards, missing)
	}

	var cells []experiments.CellResult
	for _, e := range envs {
		cells = append(cells, e.Cells...)
	}
	return foldCells(ref.Fingerprint, cells)
}

// foldCells reduces a complete cell set into the Merged output — the
// shared core of the whole-shard and cell-granular merge paths, so both
// produce byte-identical artifacts. The cells may arrive in any order
// but must cover the grid 0..len-1 exactly once.
func foldCells(fingerprint string, cells []experiments.CellResult) (*Merged, error) {
	sort.Slice(cells, func(i, j int) bool { return cells[i].Cell < cells[j].Cell })
	for i, c := range cells {
		// Per-envelope validation already rejected duplicates within a
		// shard and cells outside a shard's partition, so a gap or
		// cross-shard duplicate surfaces here as an index mismatch.
		if c.Cell != i {
			return nil, fmt.Errorf("distsweep: cell coverage broken at grid index %d (found cell %d): workers did not cover the grid exactly once", i, c.Cell)
		}
	}

	m := &Merged{Fingerprint: fingerprint, Cells: len(cells)}
	type key struct {
		model, cluster string
		gpus           int
		group          string
	}
	frontiers := map[key]*core.Frontier{}
	var order []key
	for _, c := range cells {
		m.Evals += c.Evals
		m.Rows = append(m.Rows, c.Rows...)
		for i := range c.Frontiers {
			gf := &c.Frontiers[i]
			k := key{model: gf.Model, cluster: gf.Cluster, gpus: gf.GPUs, group: gf.Group}
			f, ok := frontiers[k]
			if !ok {
				f = &core.Frontier{}
				frontiers[k] = f
				order = append(order, k)
			}
			f.Merge(&gf.Frontier)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.model != b.model {
			return a.model < b.model
		}
		if a.cluster != b.cluster {
			return a.cluster < b.cluster
		}
		if a.gpus != b.gpus {
			return a.gpus < b.gpus
		}
		return a.group < b.group
	})
	for _, k := range order {
		m.Frontiers = append(m.Frontiers, DeploymentFrontier{
			Model: k.model, Cluster: k.cluster, GPUs: k.gpus, Group: k.group,
			Frontier: *frontiers[k],
		})
	}
	return m, nil
}

// MergeFiles reads every path as a shard envelope and merges the set.
func MergeFiles(paths []string) (*Merged, error) {
	envs := make([]*Envelope, 0, len(paths))
	for _, p := range paths {
		e, err := ReadFile(p)
		if err != nil {
			return nil, err
		}
		envs = append(envs, e)
	}
	return Merge(envs)
}
