package distsweep

import (
	"strings"
	"testing"
)

// TestSpawnArgsPropagatesStderrTail: a failing worker's error must
// carry the tail of what it wrote to stderr, so multi-process sweep
// failures are diagnosable from the coordinator's error alone.
func TestSpawnArgsPropagatesStderrTail(t *testing.T) {
	err := SpawnArgs("/bin/sh", [][]string{
		{"-c", "exit 0"},
		{"-c", "echo worker-one-exploded >&2; exit 3"},
	})
	if err == nil {
		t.Fatal("failing worker reported no error")
	}
	if !strings.Contains(err.Error(), "worker 1") {
		t.Errorf("error does not name the failing worker: %v", err)
	}
	if !strings.Contains(err.Error(), "worker-one-exploded") {
		t.Errorf("error does not carry the worker's stderr tail: %v", err)
	}
}

// TestSpawnArgsAllWaited: every worker is waited for even when an
// earlier one fails, and each failure appears in the joined error.
func TestSpawnArgsAllWaited(t *testing.T) {
	err := SpawnArgs("/bin/sh", [][]string{
		{"-c", "echo first-bad >&2; exit 1"},
		{"-c", "echo second-bad >&2; exit 2"},
	})
	if err == nil {
		t.Fatal("no error for two failing workers")
	}
	for _, want := range []string{"first-bad", "second-bad"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// TestSpawnArgsStartFailure: a binary that cannot be started fails
// cleanly (the kill-already-started path runs with zero survivors when
// the first start fails).
func TestSpawnArgsStartFailure(t *testing.T) {
	if err := SpawnArgs("/nonexistent/exegpt-binary", [][]string{{"x"}}); err == nil {
		t.Fatal("starting a nonexistent binary succeeded")
	}
}

func TestTailWriterKeepsTail(t *testing.T) {
	w := &tailWriter{limit: 8}
	w.Write([]byte("0123456789abcdef"))
	if got := w.String(); got != "89abcdef" {
		t.Fatalf("tail = %q, want %q", got, "89abcdef")
	}
	w.Write([]byte("ZZ"))
	if got := w.String(); got != "abcdefZZ" {
		t.Fatalf("tail after second write = %q, want %q", got, "abcdefZZ")
	}
}
