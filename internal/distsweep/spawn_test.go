package distsweep

import (
	"strings"
	"testing"
	"time"
)

// TestSpawnArgsPropagatesStderrTail: a failing worker's error must
// carry the tail of what it wrote to stderr, so multi-process sweep
// failures are diagnosable from the coordinator's error alone.
func TestSpawnArgsPropagatesStderrTail(t *testing.T) {
	err := SpawnArgs("/bin/sh", [][]string{
		{"-c", "exit 0"},
		{"-c", "echo worker-one-exploded >&2; exit 3"},
	})
	if err == nil {
		t.Fatal("failing worker reported no error")
	}
	if !strings.Contains(err.Error(), "worker 1") {
		t.Errorf("error does not name the failing worker: %v", err)
	}
	if !strings.Contains(err.Error(), "worker-one-exploded") {
		t.Errorf("error does not carry the worker's stderr tail: %v", err)
	}
}

// TestSpawnArgsAllWaited: every worker is waited for even when an
// earlier one fails, and each failure appears in the joined error.
func TestSpawnArgsAllWaited(t *testing.T) {
	err := SpawnArgs("/bin/sh", [][]string{
		{"-c", "echo first-bad >&2; exit 1"},
		{"-c", "echo second-bad >&2; exit 2"},
	})
	if err == nil {
		t.Fatal("no error for two failing workers")
	}
	for _, want := range []string{"first-bad", "second-bad"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// TestSpawnArgsStartFailure: a binary that cannot be started fails
// cleanly (the kill-already-started path runs with zero survivors when
// the first start fails).
func TestSpawnArgsStartFailure(t *testing.T) {
	if err := SpawnArgs("/nonexistent/exegpt-binary", [][]string{{"x"}}); err == nil {
		t.Fatal("starting a nonexistent binary succeeded")
	}
}

func TestTailWriterKeepsTail(t *testing.T) {
	w := &tailWriter{limit: 8}
	w.Write([]byte("0123456789abcdef"))
	if got := w.String(); got != "89abcdef" {
		t.Fatalf("tail = %q, want %q", got, "89abcdef")
	}
	w.Write([]byte("ZZ"))
	if got := w.String(); got != "abcdefZZ" {
		t.Fatalf("tail after second write = %q, want %q", got, "abcdefZZ")
	}
}

// TestFleetLiveStderrTails: a fleet's per-worker stderr tails must be
// readable by name *while the workers run* — the dispatch coordinator
// reads them mid-sweep to explain lease-failure exclusions — and an
// unknown name must read as empty rather than panic.
func TestFleetLiveStderrTails(t *testing.T) {
	fleet, err := StartFleet("/bin/sh", [][]string{
		{"-c", "echo alpha-worker-warming >&2; sleep 5"},
		{"-c", "echo beta-worker-warming >&2; sleep 5"},
	}, []string{"alpha", "beta"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, name := range fleet.Live() {
			fleet.Kill(name)
		}
		fleet.Wait()
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		a, b := fleet.StderrTail("alpha"), fleet.StderrTail("beta")
		if strings.Contains(a, "alpha-worker-warming") && strings.Contains(b, "beta-worker-warming") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live tails never surfaced: alpha=%q beta=%q", a, b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := fleet.StderrTail("nonesuch"); got != "" {
		t.Fatalf("unknown worker tail = %q, want empty", got)
	}
}

// TestFleetDynamicMembership: the supervised-fleet surface — members
// added while the fleet runs, liveness probed without blocking, killed
// members observed as crashed, names never reused.
func TestFleetDynamicMembership(t *testing.T) {
	fleet := NewFleet("/bin/sh")
	if err := fleet.Start("s0r0", []string{"-c", "sleep 5"}); err != nil {
		t.Fatal(err)
	}
	if exited, _ := fleet.Exited("s0r0"); exited {
		t.Fatal("sleeping worker reported exited")
	}
	if err := fleet.Start("s0r0", []string{"-c", "true"}); err == nil {
		t.Fatal("duplicate worker name accepted")
	}
	// A quick clean exit is observed as exited with a nil error.
	if err := fleet.Start("s1r0", []string{"-c", "exit 0"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if exited, err := fleet.Exited("s1r0"); exited {
			if err != nil {
				t.Fatalf("clean exit reported error: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("clean exit never observed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A killed worker is observed as exited with an error.
	if err := fleet.Kill("s0r0"); err != nil {
		t.Fatal(err)
	}
	for {
		if exited, err := fleet.Exited("s0r0"); exited {
			if err == nil {
				t.Fatal("killed worker reported a clean exit")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("killed worker never observed exiting")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if live := fleet.Live(); len(live) != 0 {
		t.Fatalf("live = %v, want empty", live)
	}
	// An unknown worker reads as exited-with-error, not a hang.
	if exited, err := fleet.Exited("nonesuch"); !exited || err == nil {
		t.Fatalf("unknown worker: exited=%v err=%v, want exited with error", exited, err)
	}
}

// TestFleetNamesInErrors: Wait's joined error names workers by their
// given fleet names, not bare indices.
func TestFleetNamesInErrors(t *testing.T) {
	fleet, err := StartFleet("/bin/sh", [][]string{
		{"-c", "echo gpu-host-died >&2; exit 7"},
	}, []string{"host0-gpu1"})
	if err != nil {
		t.Fatal(err)
	}
	werr := fleet.Wait()
	if werr == nil {
		t.Fatal("failing fleet reported no error")
	}
	for _, want := range []string{"host0-gpu1", "gpu-host-died"} {
		if !strings.Contains(werr.Error(), want) {
			t.Errorf("fleet error missing %q: %v", want, werr)
		}
	}
}
