// Cell-granular envelopes: the wire unit of the dynamic work-stealing
// dispatcher (internal/dispatch). Where the static sharding pipeline
// ships one Envelope per whole shard, a pull worker streams one
// CellEnvelope per evaluated cell, so the coordinator can account for —
// and re-lease — individual cells when a worker stalls or dies. The
// same fingerprint and coverage checks apply, and MergeCells folds a
// complete cell set through the same core as Merge, so the merged
// artifact stays byte-identical to a single-process Sweep's.
package distsweep

import (
	"encoding/json"
	"fmt"
	"os"

	"exegpt/internal/atomicfile"
	"exegpt/internal/experiments"
)

// CellEnvelope is the versioned result of one evaluated sweep cell.
type CellEnvelope struct {
	Version int `json:"version"`
	// Fingerprint identifies the (grid, context) the cell was cut from;
	// cells only merge with cells carrying the same fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Total is the grid's full cell count; the cell's index lies in
	// 0..Total-1 and a merge needs exactly one envelope per index.
	Total  int                    `json:"total"`
	Result experiments.CellResult `json:"result"`
}

// NewCellEnvelope stamps one cell result for the dispatch coordinator.
func NewCellEnvelope(fingerprint string, total int, result experiments.CellResult) *CellEnvelope {
	return &CellEnvelope{
		Version: EnvelopeVersion, Fingerprint: fingerprint,
		Total: total, Result: result,
	}
}

// validate checks the envelope's internal consistency.
func (e *CellEnvelope) validate() error {
	if e.Version != EnvelopeVersion {
		return fmt.Errorf("distsweep: cell envelope version %d, this build reads %d", e.Version, EnvelopeVersion)
	}
	if e.Fingerprint == "" {
		return fmt.Errorf("distsweep: cell envelope missing grid fingerprint")
	}
	if e.Total < 1 {
		return fmt.Errorf("distsweep: cell envelope total %d < 1", e.Total)
	}
	if e.Result.Cell < 0 || e.Result.Cell >= e.Total {
		return fmt.Errorf("distsweep: cell index %d out of range 0..%d", e.Result.Cell, e.Total-1)
	}
	return nil
}

// Encode renders the envelope as indented JSON with a trailing newline.
func (e *CellEnvelope) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeCell parses and validates a cell envelope.
func DecodeCell(data []byte) (*CellEnvelope, error) {
	var e CellEnvelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("distsweep: corrupt cell envelope: %w", err)
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// ReadCellFile loads one cell envelope from disk.
func ReadCellFile(path string) (*CellEnvelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("distsweep: read cell: %w", err)
	}
	e, err := DecodeCell(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// WriteFile atomically writes the envelope to path.
func (e *CellEnvelope) WriteFile(path string) error {
	data, err := e.Encode()
	if err != nil {
		return err
	}
	return atomicfile.Write(path, data, 0o644)
}

// MergeCells folds a complete cell-envelope set into one sweep result,
// byte-identical to what Merge produces from whole-shard envelopes of
// the same grid. It fails when envelopes disagree on format version,
// fingerprint or grid size, or when the set is not exactly one envelope
// per cell 0..Total-1.
func MergeCells(envs []*CellEnvelope) (*Merged, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("distsweep: no cell envelopes to merge")
	}
	ref := envs[0]
	cells := make([]experiments.CellResult, 0, len(envs))
	for _, e := range envs {
		if err := e.validate(); err != nil {
			return nil, err
		}
		if e.Fingerprint != ref.Fingerprint {
			return nil, fmt.Errorf("distsweep: grid fingerprint mismatch: cell %d has %.12s…, cell %d has %.12s…",
				ref.Result.Cell, ref.Fingerprint, e.Result.Cell, e.Fingerprint)
		}
		if e.Total != ref.Total {
			return nil, fmt.Errorf("distsweep: grid size mismatch: %d vs %d cells", ref.Total, e.Total)
		}
		cells = append(cells, e.Result)
	}
	if len(envs) != ref.Total {
		return nil, fmt.Errorf("distsweep: incomplete cell set: have %d of %d", len(envs), ref.Total)
	}
	return foldCells(ref.Fingerprint, cells)
}
