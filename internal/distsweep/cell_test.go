package distsweep

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// fakeCellSet builds one cell envelope per fake cell of an nCells grid.
func fakeCellSet(fp string, nCells int) []*CellEnvelope {
	envs := make([]*CellEnvelope, nCells)
	for i := 0; i < nCells; i++ {
		envs[i] = NewCellEnvelope(fp, nCells, fakeCell(i))
	}
	return envs
}

func TestCellEnvelopeRoundTrip(t *testing.T) {
	env := NewCellEnvelope("fp", 5, fakeCell(1))
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCell(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env, back) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", back, env)
	}
	// The +Inf bound must survive bit-exactly.
	if !math.IsInf(back.Result.Rows[0].Bound, 1) {
		t.Fatalf("infinite bound lost: %v", back.Result.Rows[0].Bound)
	}
	for _, cut := range []int{0, 1, len(data) / 2, len(data) - 2} {
		if _, err := DecodeCell(data[:cut]); err == nil {
			t.Fatalf("truncation at %d silently decoded", cut)
		}
	}
}

// TestMergeCellsMatchesMerge: folding per-cell envelopes produces the
// same Merged — down to the serialized bytes — as folding the same
// cells through whole-shard envelopes.
func TestMergeCellsMatchesMerge(t *testing.T) {
	const nCells = 7
	want, err := Merge(fakeShardSet("fp", 3, nCells))
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle arrival order: completion order must not matter.
	envs := fakeCellSet("fp", nCells)
	for i := range envs {
		j := (i * 5) % nCells
		envs[i], envs[j] = envs[j], envs[i]
	}
	got, err := MergeCells(envs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cell-granular merge diverges from whole-shard merge")
	}
	wantBytes, _ := want.Encode()
	gotBytes, _ := got.Encode()
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatal("cell-granular merged JSON not byte-identical")
	}
}

func TestMergeCellsRejectsBrokenSets(t *testing.T) {
	base := func() []*CellEnvelope { return fakeCellSet("fp", 3) }

	cases := map[string]struct {
		mutate func([]*CellEnvelope) []*CellEnvelope
		want   string
	}{
		"empty": {func(e []*CellEnvelope) []*CellEnvelope { return nil }, "no cell envelopes"},
		"fingerprint mismatch": {func(e []*CellEnvelope) []*CellEnvelope {
			e[1].Fingerprint = "other"
			return e
		}, "fingerprint mismatch"},
		"total mismatch": {func(e []*CellEnvelope) []*CellEnvelope {
			e[2] = NewCellEnvelope("fp", 4, fakeCell(2))
			return e
		}, "size mismatch"},
		"missing cell": {func(e []*CellEnvelope) []*CellEnvelope { return e[:2] }, "incomplete"},
		"duplicate cell": {func(e []*CellEnvelope) []*CellEnvelope {
			e[2] = NewCellEnvelope("fp", 3, fakeCell(1))
			return e
		}, "coverage"},
		"bad version": {func(e []*CellEnvelope) []*CellEnvelope {
			e[0].Version = 99
			return e
		}, "version"},
		"cell out of range": {func(e []*CellEnvelope) []*CellEnvelope {
			e[0].Result.Cell = 7
			return e
		}, "out of range"},
	}
	for name, tc := range cases {
		if _, err := MergeCells(tc.mutate(base())); err == nil {
			t.Errorf("%s: silently merged", name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestCellFileRoundTrip exercises the atomic write + read path.
func TestCellFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/cell_0.json"
	env := NewCellEnvelope("fp", 2, fakeCell(0))
	if err := env.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCellFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env, back) {
		t.Fatal("file round trip diverged")
	}
}

// TestMergeCellsRealGrid: evaluating a real grid cell-by-cell through
// SweepCells and folding the per-cell envelopes reproduces the
// whole-shard pipeline byte-identically.
func TestMergeCellsRealGrid(t *testing.T) {
	grid := equivGrid()
	cacheDir := t.TempDir()
	ctx := shardCtx(cacheDir)
	fp, err := ctx.GridFingerprint(grid)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := ctx.SweepShard(grid, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Merge([]*Envelope{NewEnvelope(fp, 1, 0, cells)})
	if err != nil {
		t.Fatal(err)
	}

	var envs []*CellEnvelope
	total := len(grid.Cells())
	for i := total - 1; i >= 0; i-- { // reverse order: arrival must not matter
		crs, err := shardCtx(cacheDir).SweepCells(grid, []int{i})
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, NewCellEnvelope(fp, total, crs[0]))
	}
	got, err := MergeCells(envs)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, _ := want.Encode()
	gotBytes, _ := got.Encode()
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatal("cell-by-cell evaluation not byte-identical to single-process sweep")
	}
}
