package distsweep

import (
	"bytes"
	"reflect"
	"sort"
	"sync"
	"testing"

	"exegpt/internal/experiments"
	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// equivGrid is a small real grid: 3 cells, so shard counts 2 and 3
// interleave cells across shards and shard count 7 leaves shards empty.
func equivGrid() experiments.SweepGrid {
	return experiments.SweepGrid{
		Deployments: []sched.Deployment{
			{Model: model.OPT13B, Cluster: hw.A40Cluster, GPUs: 4},
		},
		Tasks: []workload.Task{workload.Summarization, workload.Translation, workload.CodeGeneration},
	}
}

// shardCtx builds the context a worker process would: fresh state, only
// the on-disk profile cache shared with the other workers.
func shardCtx(cacheDir string) *experiments.Context {
	c := experiments.NewQuickContext()
	c.ProfileCacheDir = cacheDir
	return c
}

// runShardSet evaluates every shard of the grid with an independent
// context (one per "process") and round-trips each result through the
// JSON envelope, exactly as the multi-process pipeline does.
func runShardSet(t *testing.T, grid experiments.SweepGrid, cacheDir string, shards int) []*Envelope {
	t.Helper()
	envs := make([]*Envelope, shards)
	for s := 0; s < shards; s++ {
		ctx := shardCtx(cacheDir)
		fp, err := ctx.GridFingerprint(grid)
		if err != nil {
			t.Fatal(err)
		}
		cells, err := ctx.SweepShard(grid, shards, s)
		if err != nil {
			t.Fatal(err)
		}
		data, err := NewEnvelope(fp, shards, s, cells).Encode()
		if err != nil {
			t.Fatal(err)
		}
		env, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		envs[s] = env
	}
	return envs
}

// TestShardedSweepEquivalence: for shard counts 1, 2, 3 and 7 (3 cells,
// so nothing divides evenly and 7 leaves four shards empty), the merged
// shard set is bit-identical to a single-process Sweep — row order,
// per-cell Evals and frontiers included — down to the serialized bytes.
func TestShardedSweepEquivalence(t *testing.T) {
	grid := equivGrid()
	cacheDir := t.TempDir()

	single := shardCtx(cacheDir)
	fp, err := single.GridFingerprint(grid)
	if err != nil {
		t.Fatal(err)
	}
	singleCells, err := single.SweepShard(grid, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Merge([]*Envelope{NewEnvelope(fp, 1, 0, singleCells)})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// The legacy entry point must agree with the cell list it now wraps.
	legacyRows, err := shardCtx(cacheDir).Sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyRows, want.Rows) {
		t.Fatal("Sweep rows diverge from merged SweepShard rows")
	}
	if len(want.Rows) == 0 || want.Evals == 0 || len(want.Frontiers) == 0 {
		t.Fatalf("degenerate single-process result: %d rows, %d evals, %d frontiers",
			len(want.Rows), want.Evals, len(want.Frontiers))
	}

	for _, shards := range []int{1, 2, 3, 7} {
		envs := runShardSet(t, grid, cacheDir, shards)
		got, err := Merge(envs)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d shards: merged result diverges from single-process sweep", shards)
		}
		gotBytes, err := got.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("%d shards: merged JSON not byte-identical to single-process JSON", shards)
		}
		// Cell-level equivalence, not just the merged aggregate: the
		// union of shard cells is exactly the single-process cell list.
		var cells []experiments.CellResult
		for _, e := range envs {
			cells = append(cells, e.Cells...)
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].Cell < cells[j].Cell })
		if !reflect.DeepEqual(cells, singleCells) {
			t.Fatalf("%d shards: per-cell results diverge from single process", shards)
		}
	}
}

// TestShardWorkersShareProfileCacheConcurrently: concurrent shard
// evaluations with independent contexts and one shared ProfileCacheDir
// — the in-process analog of two worker processes on one box — must be
// race-free (run under -race) and still merge bit-identically.
func TestShardWorkersShareProfileCacheConcurrently(t *testing.T) {
	grid := equivGrid()
	sharedDir := t.TempDir()
	const shards = 2

	fp, err := shardCtx(sharedDir).GridFingerprint(grid)
	if err != nil {
		t.Fatal(err)
	}
	envs := make([]*Envelope, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cells, err := shardCtx(sharedDir).SweepShard(grid, shards, s)
			if err != nil {
				errs[s] = err
				return
			}
			envs[s] = NewEnvelope(fp, shards, s, cells)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
	got, err := Merge(envs)
	if err != nil {
		t.Fatal(err)
	}

	// Reference result from a separate cache to prove the shared,
	// possibly racy-written cache changed nothing.
	refCells, err := shardCtx(t.TempDir()).SweepShard(grid, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Merge([]*Envelope{NewEnvelope(fp, 1, 0, refCells)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("concurrent shared-cache shards diverge from the reference sweep")
	}
}
