package distsweep

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"exegpt/internal/core"
	"exegpt/internal/experiments"
	"exegpt/internal/sched"
)

// fakeCell builds a synthetic cell result whose contents are a function
// of the cell index, so merge-order mistakes show up as value mismatches.
func fakeCell(idx int) experiments.CellResult {
	bound := 5.0 + float64(idx)
	if idx%3 == 1 {
		bound = math.Inf(1) // the relaxed bound, which JSON must survive
	}
	return experiments.CellResult{
		Cell: idx,
		Rows: []experiments.SweepRow{{
			Model: "OPT-13B", Cluster: "A40", GPUs: 4, Task: "S",
			Bound: bound, System: "FT", Tput: 1.5 * float64(idx+1), Feasible: true,
		}},
		Evals: 10 * (idx + 1),
	}
}

// fakeShardSet cuts nCells fake cells into a round-robin shard set.
func fakeShardSet(fp string, shards, nCells int) []*Envelope {
	envs := make([]*Envelope, shards)
	for s := 0; s < shards; s++ {
		var cells []experiments.CellResult
		for i := s; i < nCells; i += shards {
			cells = append(cells, fakeCell(i))
		}
		envs[s] = NewEnvelope(fp, shards, s, cells)
	}
	return envs
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := NewEnvelope("fp", 3, 1, []experiments.CellResult{fakeCell(1), fakeCell(4)})
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env, back) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", back, env)
	}
	// The +Inf bound must survive bit-exactly.
	if !math.IsInf(back.Cells[0].Rows[0].Bound, 1) {
		t.Fatalf("infinite bound lost: %v", back.Cells[0].Rows[0].Bound)
	}
}

func TestDecodeRejectsTruncatedJSON(t *testing.T) {
	data, err := NewEnvelope("fp", 2, 0, []experiments.CellResult{fakeCell(0)}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(data) / 2, len(data) - 2} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d silently decoded", cut)
		} else if !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("truncation at %d: error %q does not say corrupt", cut, err)
		}
	}
}

func TestDecodeRejectsBadMetadata(t *testing.T) {
	cases := map[string]*Envelope{
		"wrong version":   {Version: EnvelopeVersion + 1, Fingerprint: "fp", Shards: 1, Shard: 0},
		"no fingerprint":  {Version: EnvelopeVersion, Shards: 1, Shard: 0},
		"zero shards":     {Version: EnvelopeVersion, Fingerprint: "fp", Shards: 0, Shard: 0},
		"index too large": {Version: EnvelopeVersion, Fingerprint: "fp", Shards: 2, Shard: 2},
		"negative index":  {Version: EnvelopeVersion, Fingerprint: "fp", Shards: 2, Shard: -1},
		"foreign cell": {Version: EnvelopeVersion, Fingerprint: "fp", Shards: 2, Shard: 0,
			Cells: []experiments.CellResult{fakeCell(1)}},
		"duplicate cell": {Version: EnvelopeVersion, Fingerprint: "fp", Shards: 2, Shard: 0,
			Cells: []experiments.CellResult{fakeCell(0), fakeCell(0)}},
	}
	for name, env := range cases {
		data, err := env.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestMergeHappyPath(t *testing.T) {
	const nCells = 7
	want, err := Merge(fakeShardSet("fp", 1, nCells))
	if err != nil {
		t.Fatal(err)
	}
	if want.Cells != nCells || len(want.Rows) != nCells {
		t.Fatalf("single-shard merge shape: %d cells, %d rows", want.Cells, len(want.Rows))
	}
	for _, shards := range []int{2, 3, 7, 11} { // 11 > nCells: empty shards
		envs := fakeShardSet("fp", shards, nCells)
		got, err := Merge(envs)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d shards: merge diverged from single shard\n got %+v\nwant %+v", shards, got, want)
		}
		// Merging must not depend on the order envelopes arrive in.
		rev := make([]*Envelope, len(envs))
		for i, e := range envs {
			rev[len(envs)-1-i] = e
		}
		got2, err := Merge(rev)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got2, want) {
			t.Fatalf("%d shards reversed: merge order-dependent", shards)
		}
	}
}

func TestMergeRejectsDuplicateShard(t *testing.T) {
	envs := fakeShardSet("fp", 3, 6)
	envs[2] = envs[1]
	if _, err := Merge(envs); err == nil || !strings.Contains(err.Error(), "duplicate shard") {
		t.Fatalf("duplicate shard index not rejected: %v", err)
	}
}

func TestMergeRejectsMissingShard(t *testing.T) {
	envs := fakeShardSet("fp", 3, 6)
	if _, err := Merge(envs[:2]); err == nil || !strings.Contains(err.Error(), "missing [2]") {
		t.Fatalf("missing shard not rejected: %v", err)
	}
	if _, err := Merge(nil); err == nil {
		t.Fatal("empty envelope list not rejected")
	}
}

func TestMergeRejectsFingerprintMismatch(t *testing.T) {
	envs := fakeShardSet("fp-a", 2, 4)
	envs[1].Fingerprint = "fp-b"
	if _, err := Merge(envs); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("fingerprint mismatch not rejected: %v", err)
	}
}

func TestMergeRejectsShardCountMismatch(t *testing.T) {
	a := NewEnvelope("fp", 2, 0, []experiments.CellResult{fakeCell(0)})
	b := NewEnvelope("fp", 3, 1, []experiments.CellResult{fakeCell(1)})
	if _, err := Merge([]*Envelope{a, b}); err == nil || !strings.Contains(err.Error(), "shard count mismatch") {
		t.Fatalf("shard count mismatch not rejected: %v", err)
	}
}

func TestMergeRejectsCellGap(t *testing.T) {
	// Shard 1 of 2 lost cell 1: the union {0, 2, 3} has a gap.
	a := NewEnvelope("fp", 2, 0, []experiments.CellResult{fakeCell(0), fakeCell(2)})
	b := NewEnvelope("fp", 2, 1, []experiments.CellResult{fakeCell(3)})
	if _, err := Merge([]*Envelope{a, b}); err == nil || !strings.Contains(err.Error(), "coverage") {
		t.Fatalf("cell gap not rejected: %v", err)
	}
}

func TestMergeFiles(t *testing.T) {
	dir := t.TempDir()
	envs := fakeShardSet("fp", 2, 5)
	var paths []string
	for i, e := range envs {
		p := filepath.Join(dir, "shard_"+string(rune('0'+i))+".json")
		if err := e.WriteFile(p); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	want, err := Merge(envs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("MergeFiles diverged from in-memory Merge")
	}
	// A missing file fails with the path in the error.
	if _, err := MergeFiles(append(paths, filepath.Join(dir, "nope.json"))); err == nil {
		t.Fatal("missing file not rejected")
	}
	// A truncated file fails with the path in the error.
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeFiles(paths); err == nil || !strings.Contains(err.Error(), paths[0]) {
		t.Fatalf("truncated file error should name the file: %v", err)
	}
}

// frontierEst builds a feasible estimate for frontier-merge tests.
func frontierEst(lat, tput float64, bd int) *core.Estimate {
	return &core.Estimate{
		Config:   sched.Config{Policy: sched.RRA, BD: bd, BE: 1, ND: 1, Bm: 1, TP: sched.TPSpec{Degree: 1}},
		Feasible: true, Latency: lat, Throughput: tput,
	}
}

// TestMergeFoldsDeploymentFrontiers: per-cell frontiers for the same
// (deployment, group) fold into one cross-task frontier, regardless of
// which shard evaluated which cell.
func TestMergeFoldsDeploymentFrontiers(t *testing.T) {
	gf := func(task string, ests ...*core.Estimate) experiments.GroupFrontier {
		g := experiments.GroupFrontier{
			Model: "OPT-13B", Cluster: "A40", GPUs: 4, Task: task, Group: "ExeGPT-RRA",
		}
		for _, e := range ests {
			g.Frontier.Add(e)
		}
		return g
	}
	c0 := fakeCell(0)
	c0.Frontiers = []experiments.GroupFrontier{gf("S", frontierEst(1, 2, 1), frontierEst(3, 6, 3))}
	c1 := fakeCell(1)
	c1.Frontiers = []experiments.GroupFrontier{gf("T", frontierEst(2, 4, 2), frontierEst(4, 5, 4))}

	var want core.Frontier
	for _, e := range []*core.Estimate{
		frontierEst(1, 2, 1), frontierEst(3, 6, 3), frontierEst(2, 4, 2), frontierEst(4, 5, 4),
	} {
		want.Add(e)
	}

	m, err := Merge([]*Envelope{
		NewEnvelope("fp", 2, 0, []experiments.CellResult{c0}),
		NewEnvelope("fp", 2, 1, []experiments.CellResult{c1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Frontiers) != 1 {
		t.Fatalf("want 1 merged deployment frontier, got %d", len(m.Frontiers))
	}
	df := m.Frontiers[0]
	if df.Model != "OPT-13B" || df.Group != "ExeGPT-RRA" || df.GPUs != 4 {
		t.Fatalf("frontier key wrong: %+v", df)
	}
	if !reflect.DeepEqual(df.Frontier, want) {
		t.Fatalf("merged frontier != union of cell frontiers\n got %+v\nwant %+v", df.Frontier, want)
	}
}
