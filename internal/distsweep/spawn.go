// Local process spawning: the -spawn convenience mode of `exegpt
// sweep`, which forks one worker process per shard on this machine so a
// sharded sweep runs end to end on one box. Multi-host dispatch (ssh, a
// job scheduler) stays with the operator: workers are plain processes
// that only need the binary, the flags and a shared profile cache.
package distsweep

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
)

// SpawnLocal forks one worker process per shard — `bin baseArgs...
// -shards N -shard-index i -out outDir/shard_i.json` — waits for all of
// them, and returns the shard envelope paths in index order. Worker
// output goes to this process's stderr. All workers are always waited
// for; the returned error joins every failure.
func SpawnLocal(bin string, baseArgs []string, shards int, outDir string) ([]string, error) {
	if shards < 1 {
		return nil, fmt.Errorf("distsweep: shard count %d < 1", shards)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		paths[i] = filepath.Join(outDir, fmt.Sprintf("shard_%d.json", i))
		args := append(append([]string(nil), baseArgs...),
			"-shards", strconv.Itoa(shards),
			"-shard-index", strconv.Itoa(i),
			"-out", paths[i])
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			if err := cmd.Run(); err != nil {
				errs[i] = fmt.Errorf("distsweep: shard worker %d: %w", i, err)
			}
		}(i, cmd)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return paths, nil
}
