// Local process spawning: the -spawn convenience mode of `exegpt
// sweep`, which forks one worker process per shard on this machine so a
// sharded sweep runs end to end on one box, and the generalized
// SpawnArgs used by the dispatch CLI to fork pull workers. Multi-host
// dispatch goes through the file-spool transport (see internal/dispatch
// and the README runbook): workers are plain processes that only need
// the binary, the flags and a shared spool/profile-cache directory.
package distsweep

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
)

// stderrTailLimit bounds how much of a worker's stderr is retained for
// error reporting.
const stderrTailLimit = 4096

// tailWriter retains the last tail of everything written through it.
type tailWriter struct {
	buf   []byte
	limit int
}

func (w *tailWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	if len(w.buf) > w.limit {
		w.buf = append(w.buf[:0], w.buf[len(w.buf)-w.limit:]...)
	}
	return len(p), nil
}

func (w *tailWriter) String() string { return string(w.buf) }

// SpawnLocal forks one worker process per shard — `bin baseArgs...
// -shards N -shard-index i -out outDir/shard_i.json` — waits for all of
// them, and returns the shard envelope paths in index order.
func SpawnLocal(bin string, baseArgs []string, shards int, outDir string) ([]string, error) {
	if shards < 1 {
		return nil, fmt.Errorf("distsweep: shard count %d < 1", shards)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, shards)
	argvs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		paths[i] = filepath.Join(outDir, fmt.Sprintf("shard_%d.json", i))
		argvs[i] = append(append([]string(nil), baseArgs...),
			"-shards", strconv.Itoa(shards),
			"-shard-index", strconv.Itoa(i),
			"-out", paths[i])
	}
	if err := SpawnArgs(bin, argvs); err != nil {
		return nil, err
	}
	return paths, nil
}

// SpawnArgs forks one `bin argv...` process per argument vector and
// waits for all of them. Worker output goes to this process's stderr.
// If a later fork fails, the already-started workers are killed and
// waited for rather than leaked. Every started worker is always waited
// for; the returned error joins every failure, each carrying the tail
// of that worker's stderr.
func SpawnArgs(bin string, argvs [][]string) error {
	cmds := make([]*exec.Cmd, 0, len(argvs))
	tails := make([]*tailWriter, 0, len(argvs))
	for i, argv := range argvs {
		tail := &tailWriter{limit: stderrTailLimit}
		cmd := exec.Command(bin, argv...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = io.MultiWriter(os.Stderr, tail)
		if err := cmd.Start(); err != nil {
			for _, running := range cmds {
				running.Process.Kill()
			}
			for _, running := range cmds {
				running.Wait()
			}
			return fmt.Errorf("distsweep: start worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
		tails = append(tails, tail)
	}
	errs := make([]error, len(cmds))
	var wg sync.WaitGroup
	for i, cmd := range cmds {
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			if err := cmd.Wait(); err != nil {
				if tail := tails[i].String(); tail != "" {
					errs[i] = fmt.Errorf("distsweep: worker %d: %w; stderr tail:\n%s", i, err, tail)
				} else {
					errs[i] = fmt.Errorf("distsweep: worker %d: %w", i, err)
				}
			}
		}(i, cmd)
	}
	wg.Wait()
	return errors.Join(errs...)
}
