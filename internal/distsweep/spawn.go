// Local process spawning: the -spawn convenience mode of `exegpt
// sweep`, which forks one worker process per shard on this machine so a
// sharded sweep runs end to end on one box, and the generalized Fleet /
// SpawnArgs used by the dispatch CLI to fork or ssh-launch pull
// workers. Fleet keeps each worker's stderr tail readable *while the
// fleet runs*, so the dispatch coordinator can attach a dying worker's
// last words to its lease-failure exclusion events instead of only
// surfacing them after the whole fleet exits.
package distsweep

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
)

// stderrTailLimit bounds how much of a worker's stderr is retained for
// error reporting.
const stderrTailLimit = 4096

// tailWriter retains the last tail of everything written through it.
// Safe for concurrent Write/String: the worker process streams into it
// while the coordinator reads it for status reports.
type tailWriter struct {
	mu    sync.Mutex
	buf   []byte
	limit int
}

func (w *tailWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	if len(w.buf) > w.limit {
		w.buf = append(w.buf[:0], w.buf[len(w.buf)-w.limit:]...)
	}
	return len(p), nil
}

func (w *tailWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return string(w.buf)
}

// SpawnLocal forks one worker process per shard — `bin baseArgs...
// -shards N -shard-index i -out outDir/shard_i.json` — waits for all of
// them, and returns the shard envelope paths in index order.
func SpawnLocal(bin string, baseArgs []string, shards int, outDir string) ([]string, error) {
	if shards < 1 {
		return nil, fmt.Errorf("distsweep: shard count %d < 1", shards)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, shards)
	argvs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		paths[i] = filepath.Join(outDir, fmt.Sprintf("shard_%d.json", i))
		argvs[i] = append(append([]string(nil), baseArgs...),
			"-shards", strconv.Itoa(shards),
			"-shard-index", strconv.Itoa(i),
			"-out", paths[i])
	}
	if err := SpawnArgs(bin, argvs); err != nil {
		return nil, err
	}
	return paths, nil
}

// Fleet is a set of started worker processes. Their stderr tails are
// readable by name while they run; Wait joins their exit statuses.
type Fleet struct {
	cmds  []*exec.Cmd
	tails map[string]*tailWriter
	names []string
}

// StartFleet forks one `bin argv...` process per argument vector.
// names[i] labels worker i in errors and StderrTail lookups; a nil or
// short names slice falls back to the worker's index. Worker output
// goes to this process's stderr (tee'd into the tail buffers). If a
// later fork fails, the already-started workers are killed and waited
// for rather than leaked.
func StartFleet(bin string, argvs [][]string, names []string) (*Fleet, error) {
	f := &Fleet{tails: make(map[string]*tailWriter, len(argvs))}
	for i, argv := range argvs {
		name := strconv.Itoa(i)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		tail := &tailWriter{limit: stderrTailLimit}
		cmd := exec.Command(bin, argv...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = io.MultiWriter(os.Stderr, tail)
		if err := cmd.Start(); err != nil {
			for _, running := range f.cmds {
				running.Process.Kill()
			}
			for _, running := range f.cmds {
				running.Wait()
			}
			return nil, fmt.Errorf("distsweep: start worker %s: %w", name, err)
		}
		f.cmds = append(f.cmds, cmd)
		f.names = append(f.names, name)
		f.tails[name] = tail
	}
	return f, nil
}

// StderrTail returns the current tail of the named worker's stderr
// (empty for unknown names). Safe to call while the fleet runs.
func (f *Fleet) StderrTail(name string) string {
	if tail, ok := f.tails[name]; ok {
		return tail.String()
	}
	return ""
}

// Wait waits for every worker. The returned error joins every failure,
// each carrying the tail of that worker's stderr.
func (f *Fleet) Wait() error {
	errs := make([]error, len(f.cmds))
	var wg sync.WaitGroup
	for i, cmd := range f.cmds {
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			if err := cmd.Wait(); err != nil {
				if tail := f.tails[f.names[i]].String(); tail != "" {
					errs[i] = fmt.Errorf("distsweep: worker %s: %w; stderr tail:\n%s", f.names[i], err, tail)
				} else {
					errs[i] = fmt.Errorf("distsweep: worker %s: %w", f.names[i], err)
				}
			}
		}(i, cmd)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// SpawnArgs forks one `bin argv...` process per argument vector and
// waits for all of them.
func SpawnArgs(bin string, argvs [][]string) error {
	f, err := StartFleet(bin, argvs, nil)
	if err != nil {
		return err
	}
	return f.Wait()
}
