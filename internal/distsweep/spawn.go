// Local process spawning: the -spawn convenience mode of `exegpt
// sweep`, which forks one worker process per shard on this machine so a
// sharded sweep runs end to end on one box, and the generalized Fleet /
// SpawnArgs used by the dispatch CLI to fork or ssh-launch pull
// workers. Fleet keeps each worker's stderr tail readable *while the
// fleet runs*, so the dispatch coordinator can attach a dying worker's
// last words to its lease-failure exclusion events instead of only
// surfacing them after the whole fleet exits.
package distsweep

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
)

// stderrTailLimit bounds how much of a worker's stderr is retained for
// error reporting.
const stderrTailLimit = 4096

// tailWriter retains the last tail of everything written through it.
// Safe for concurrent Write/String: the worker process streams into it
// while the coordinator reads it for status reports.
type tailWriter struct {
	mu    sync.Mutex
	buf   []byte
	limit int
}

func (w *tailWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	if len(w.buf) > w.limit {
		w.buf = append(w.buf[:0], w.buf[len(w.buf)-w.limit:]...)
	}
	return len(p), nil
}

func (w *tailWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return string(w.buf)
}

// SpawnLocal forks one worker process per shard — `bin baseArgs...
// -shards N -shard-index i -out outDir/shard_i.json` — waits for all of
// them, and returns the shard envelope paths in index order.
func SpawnLocal(bin string, baseArgs []string, shards int, outDir string) ([]string, error) {
	if shards < 1 {
		return nil, fmt.Errorf("distsweep: shard count %d < 1", shards)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, shards)
	argvs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		paths[i] = filepath.Join(outDir, fmt.Sprintf("shard_%d.json", i))
		argvs[i] = append(append([]string(nil), baseArgs...),
			"-shards", strconv.Itoa(shards),
			"-shard-index", strconv.Itoa(i),
			"-out", paths[i])
	}
	if err := SpawnArgs(bin, argvs); err != nil {
		return nil, err
	}
	return paths, nil
}

// proc is one started worker process. A reaper goroutine records its
// exit status and closes done, so liveness queries never block.
type proc struct {
	cmd  *exec.Cmd
	tail *tailWriter
	done chan struct{}
	err  error // cmd.Wait result; written before done closes
}

// Fleet is a dynamic set of started worker processes: members can be
// added (Start), probed (Exited), and killed (Kill) while the fleet
// runs — the shape a fleet supervisor needs to replace crashed workers
// and scale the fleet mid-sweep. Their stderr tails are readable by
// name while they run; Wait joins the exit statuses of everything ever
// started. Safe for concurrent use.
type Fleet struct {
	bin string

	mu    sync.Mutex
	procs map[string]*proc
	order []string
}

// NewFleet returns an empty fleet forking the given worker binary.
func NewFleet(bin string) *Fleet {
	return &Fleet{bin: bin, procs: map[string]*proc{}}
}

// Start forks one `bin argv...` worker under the given name. Names are
// forever: a name stays attached to its (possibly exited) process, so
// a supervisor replacing a crashed worker starts the replacement under
// a fresh incarnation name instead of reusing the old one. Worker
// output goes to this process's stderr (tee'd into the tail buffer).
func (f *Fleet) Start(name string, argv []string) error {
	if name == "" {
		return fmt.Errorf("distsweep: worker needs a name")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.procs[name]; dup {
		return fmt.Errorf("distsweep: worker %s already started", name)
	}
	tail := &tailWriter{limit: stderrTailLimit}
	cmd := exec.Command(f.bin, argv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = io.MultiWriter(os.Stderr, tail)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("distsweep: start worker %s: %w", name, err)
	}
	p := &proc{cmd: cmd, tail: tail, done: make(chan struct{})}
	f.procs[name] = p
	f.order = append(f.order, name)
	go func() {
		p.err = cmd.Wait()
		close(p.done)
	}()
	return nil
}

// Exited reports whether the named worker's process has exited, and
// with what error (nil for a clean exit). An unknown name reports
// exited with an explanatory error, so a supervisor that somehow lost
// track of a worker replaces it instead of waiting forever.
func (f *Fleet) Exited(name string) (bool, error) {
	f.mu.Lock()
	p := f.procs[name]
	f.mu.Unlock()
	if p == nil {
		return true, fmt.Errorf("distsweep: unknown worker %s", name)
	}
	select {
	case <-p.done:
		return true, p.err
	default:
		return false, nil
	}
}

// Kill forcibly terminates the named worker's process. The exit is
// observed through Exited like any crash.
func (f *Fleet) Kill(name string) error {
	f.mu.Lock()
	p := f.procs[name]
	f.mu.Unlock()
	if p == nil {
		return fmt.Errorf("distsweep: unknown worker %s", name)
	}
	return p.cmd.Process.Kill()
}

// Live returns the names of workers whose processes have not exited
// yet, in start order.
func (f *Fleet) Live() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var live []string
	for _, name := range f.order {
		select {
		case <-f.procs[name].done:
		default:
			live = append(live, name)
		}
	}
	return live
}

// StartFleet builds a fleet and forks one `bin argv...` process per
// argument vector. names[i] labels worker i in errors and StderrTail
// lookups; a nil or short names slice falls back to the worker's
// index. If a later fork fails, the already-started workers are killed
// and waited for rather than leaked.
func StartFleet(bin string, argvs [][]string, names []string) (*Fleet, error) {
	f := NewFleet(bin)
	for i, argv := range argvs {
		name := strconv.Itoa(i)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		if err := f.Start(name, argv); err != nil {
			f.mu.Lock()
			started := append([]string(nil), f.order...)
			f.mu.Unlock()
			for _, running := range started {
				f.Kill(running)
			}
			f.Wait()
			return nil, err
		}
	}
	return f, nil
}

// StderrTail returns the current tail of the named worker's stderr
// (empty for unknown names). Safe to call while the fleet runs.
func (f *Fleet) StderrTail(name string) string {
	f.mu.Lock()
	p := f.procs[name]
	f.mu.Unlock()
	if p == nil {
		return ""
	}
	return p.tail.String()
}

// Wait waits for every worker ever started. The returned error joins
// every failure in start order, each carrying the tail of that
// worker's stderr.
func (f *Fleet) Wait() error {
	f.mu.Lock()
	names := append([]string(nil), f.order...)
	f.mu.Unlock()
	var errs []error
	for _, name := range names {
		f.mu.Lock()
		p := f.procs[name]
		f.mu.Unlock()
		<-p.done
		if p.err != nil {
			if tail := p.tail.String(); tail != "" {
				errs = append(errs, fmt.Errorf("distsweep: worker %s: %w; stderr tail:\n%s", name, p.err, tail))
			} else {
				errs = append(errs, fmt.Errorf("distsweep: worker %s: %w", name, p.err))
			}
		}
	}
	return errors.Join(errs...)
}

// SpawnArgs forks one `bin argv...` process per argument vector and
// waits for all of them.
func SpawnArgs(bin string, argvs [][]string) error {
	f, err := StartFleet(bin, argvs, nil)
	if err != nil {
		return err
	}
	return f.Wait()
}
