// Package par provides the bounded worker-pool primitive shared by the
// parallel scheduler search (internal/core) and the experiment sweep
// (internal/experiments). Future fan-outs should use it rather than
// hand-rolling a third pool.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (0 or negative means runtime.GOMAXPROCS(0)). fn must only
// write to per-index state; ForEach returns after every call finishes.
// With an effective worker count of one it runs inline, in order.
func ForEach(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
