// Package par provides the bounded worker-pool primitive shared by the
// parallel scheduler search (internal/core) and the experiment sweep
// (internal/experiments). Future fan-outs should use it rather than
// hand-rolling a third pool.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (0 or negative means runtime.GOMAXPROCS(0)). fn must only
// write to per-index state; ForEach returns after every call finishes.
// With an effective worker count of one it runs inline, in order.
func ForEach(n, workers int, fn func(int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the executing pool slot exposed: fn
// receives (worker, i) where worker in [0, effective workers) is stable
// for the lifetime of one goroutine. Callers use it to maintain
// per-worker scratch state (e.g. core's per-worker Evaluators) without
// locking: state indexed by worker is only ever touched by one
// goroutine at a time.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				fn(worker, i)
			}
		}(k)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
