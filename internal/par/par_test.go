package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 37
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("fn must not run for n=0") })
}

func TestForEachSequentialIsInOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}
