package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 37
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("fn must not run for n=0") })
}

func TestForEachSequentialIsInOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

// TestForEachWorkerIDs: every index runs exactly once, worker ids stay
// in [0, workers), and per-worker state needs no locking (each slot is
// only touched by its own goroutine).
func TestForEachWorkerIDs(t *testing.T) {
	const n = 53
	for _, workers := range []int{1, 4, 64} {
		var hits [n]atomic.Int32
		var bad atomic.Int32
		perWorker := make([]int, workers) // written without synchronization
		ForEachWorker(n, workers, func(w, i int) {
			if w < 0 || w >= workers {
				bad.Add(1)
			} else {
				perWorker[w]++
			}
			hits[i].Add(1)
		})
		if bad.Load() != 0 {
			t.Fatalf("workers=%d: worker id out of range", workers)
		}
		total := 0
		for _, c := range perWorker {
			total += c
		}
		if total != n {
			t.Fatalf("workers=%d: per-worker counts sum to %d, want %d", workers, total, n)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachWorkerSequentialUsesWorkerZero(t *testing.T) {
	ForEachWorker(4, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("sequential run must use worker 0, got %d", w)
		}
	})
}
