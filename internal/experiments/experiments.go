// Package experiments regenerates every table and figure of the ExeGPT
// paper's evaluation (§7) on the simulated substrate. Each experiment
// has one entry point returning structured rows plus a formatter that
// prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"exegpt/internal/atomicfile"
	"exegpt/internal/baselines"
	"exegpt/internal/core"
	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/profile"
	"exegpt/internal/runner"
	"exegpt/internal/sched"
	"exegpt/internal/seqdist"
	"exegpt/internal/workload"
)

// Context carries experiment-wide settings. A Context is safe for
// concurrent use: the profile memo is mutex-guarded and everything else
// is read-only after construction.
type Context struct {
	// Seed drives all request sampling.
	Seed int64
	// Requests per measured run.
	Requests int
	// Quick shrinks sweeps for fast test runs.
	Quick bool
	// Workers sizes the scheduler worker pool of every deployment built
	// through Deploy; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// ProfileCacheDir, when non-empty, persists profile Tables as JSON
	// keyed by (model, GPU, GPUs-per-node) in that directory: runs load
	// matching tables instead of re-profiling and save fresh ones for
	// the next process (the in-memory memo still deduplicates within a
	// run). Corrupt or mismatched cache files are re-profiled and
	// overwritten.
	ProfileCacheDir string

	mu       sync.Mutex
	profiles map[string]*profileEntry
}

// profileEntry memoizes one profiling run; Once serializes concurrent
// requests for the same (model, sub-cluster) key without blocking
// profiling of other keys.
type profileEntry struct {
	once sync.Once
	tab  *profile.Table
	err  error
}

// NewContext returns defaults matching the paper-scale runs.
func NewContext() *Context {
	return &Context{Seed: 42, Requests: 1200, profiles: map[string]*profileEntry{}}
}

// NewQuickContext returns a reduced-cost context for tests.
func NewQuickContext() *Context {
	return &Context{Seed: 42, Requests: 500, Quick: true, profiles: map[string]*profileEntry{}}
}

// Deployment bundles everything needed to evaluate one (model, cluster,
// task) combination. Each Deployment owns its Simulator, Scheduler,
// Evaluator and runner Engine, so separate Deployments can be driven
// concurrently; the profile Table may be shared between them but is
// immutable.
type Deployment struct {
	Model   model.Model
	Cluster hw.Cluster
	Prof    *profile.Table
	Task    workload.Task
	In, Out *seqdist.Dist
	Sim     *core.Simulator
	Sch     *core.Scheduler
	// Eval is the deployment's memoized estimate fast path for direct
	// Estimate calls outside the Scheduler (which keeps its own
	// per-worker Evaluators). Like the Deployment itself it must be
	// driven by one goroutine at a time.
	Eval *core.Evaluator
	Run  *runner.Engine
}

// profileCachePath returns the on-disk cache file for a profile key, or
// "" when caching is off. The key folds in everything Profiler.Run
// depends on: model, GPU type, and the node shape that fixes the
// profiled TP degrees and link fits.
func (c *Context) profileCachePath(m model.Model, sub hw.Cluster) string {
	if c.ProfileCacheDir == "" {
		return ""
	}
	name := fmt.Sprintf("profile_%s_%s_%s_%dpn.json",
		m.Name, sub.GPU.Name, sub.Name, sub.GPUsPerNode)
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '-'
	}, name)
	return filepath.Join(c.ProfileCacheDir, clean)
}

// loadCachedProfile returns a valid cached table for the key or nil
// (missing, corrupt, describing a different model/GPU, or profiled by
// an older table schema — all treated as cache misses).
func loadCachedProfile(path string, m model.Model, sub hw.Cluster) *profile.Table {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	tab, err := profile.Decode(data)
	if err != nil || tab.Version != profile.TableVersion ||
		tab.ModelName != m.Name || tab.GPUName != sub.GPU.Name {
		return nil
	}
	return tab
}

// profileFor memoizes profiling per (model, sub-cluster), backed by the
// optional on-disk cache.
func (c *Context) profileFor(m model.Model, sub hw.Cluster) (*profile.Table, error) {
	key := m.Name + "/" + sub.Name + "/" + fmt.Sprint(sub.TotalGPUs())
	c.mu.Lock()
	if c.profiles == nil {
		c.profiles = map[string]*profileEntry{}
	}
	e, ok := c.profiles[key]
	if !ok {
		e = &profileEntry{}
		c.profiles[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		cachePath := c.profileCachePath(m, sub)
		if cachePath != "" {
			if tab := loadCachedProfile(cachePath, m, sub); tab != nil {
				e.tab = tab
				return
			}
		}
		p, err := profile.New(m, sub)
		if err != nil {
			e.err = err
			return
		}
		e.tab = p.Run()
		if cachePath != "" {
			// Best-effort: a failed cache write (read-only dir, disk
			// full) must not fail the run — the table in hand is valid.
			if err := saveProfile(cachePath, e.tab); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: profile cache save skipped: %v\n", err)
			}
		}
	})
	return e.tab, e.err
}

// saveProfile writes a freshly profiled table to the cache atomically:
// the cache directory is shared by concurrent sweep worker processes,
// and a reader racing a plain truncate-then-write could observe a torn
// file. With atomicfile.Write, a concurrent loadCachedProfile sees
// either the old complete table or the new one, never a partial write.
func saveProfile(path string, tab *profile.Table) error {
	data, err := tab.Encode()
	if err != nil {
		return err
	}
	return atomicfile.Write(path, data, 0o644)
}

// Deploy sets up a deployment for a model on gpus of cluster running
// task.
func (c *Context) Deploy(m model.Model, cluster hw.Cluster, gpus int, task workload.Task) (*Deployment, error) {
	sub, err := cluster.Sub(gpus)
	if err != nil {
		return nil, err
	}
	prof, err := c.profileFor(m, sub)
	if err != nil {
		return nil, err
	}
	in, out, err := task.Dists()
	if err != nil {
		return nil, err
	}
	sim, err := core.NewSimulator(m, sub, prof, in, out)
	if err != nil {
		return nil, err
	}
	sch := core.NewScheduler(sim)
	sch.Workers = c.Workers
	if c.Quick {
		sch.MaxBatch = 512
		sch.MaxND = 32
	}
	run, err := runner.New(m, sub, prof)
	if err != nil {
		return nil, err
	}
	return &Deployment{
		Model: m, Cluster: sub, Prof: prof, Task: task,
		In: in, Out: out, Sim: sim, Sch: sch,
		Eval: core.NewEvaluator(sim), Run: run,
	}, nil
}

// Redeploy derives a Deployment identical to d but with the estimate
// path (Simulator, Scheduler, Evaluator) rebuilt around new length
// distributions — typically empirical estimates observed online after
// the workload drifted from the distributions the current schedule was
// searched for. The profile table and runner engine are shared: both
// are distribution-agnostic. Scheduler knobs (Workers, MaxBatch, MaxND)
// carry over so a re-search explores the same space.
func (d *Deployment) Redeploy(in, out *seqdist.Dist) (*Deployment, error) {
	sim, err := core.NewSimulator(d.Model, d.Cluster, d.Prof, in, out)
	if err != nil {
		return nil, err
	}
	sch := core.NewScheduler(sim)
	sch.Workers = d.Sch.Workers
	sch.MaxBatch = d.Sch.MaxBatch
	sch.MaxND = d.Sch.MaxND
	nd := *d
	nd.In, nd.Out = in, out
	nd.Sim, nd.Sch, nd.Eval = sim, sch, core.NewEvaluator(sim)
	return &nd, nil
}

// RequestStream draws the evaluation request stream (n <= 0 uses the
// context default).
func (c *Context) RequestStream(task workload.Task, n int) ([]workload.Request, error) {
	g, err := workload.NewGenerator(task, c.Seed)
	if err != nil {
		return nil, err
	}
	if task.Rho > 0.5 {
		// §7.1: highly correlated tasks get input randomization.
		g.RandomizeInputs = true
	}
	if n <= 0 {
		n = c.Requests
	}
	return g.Batch(n), nil
}

// FTBounds derives the paper's four latency constraints from FT's
// batch-size/latency sweep: bottom 10%, 30%, 70% and infinity (§7.1).
func (d *Deployment) FTBounds() ([]float64, error) {
	ft, err := baselines.New(baselines.FT, d.Model, d.Cluster, d.Prof)
	if err != nil {
		return nil, err
	}
	sweep, err := ft.LatencySweep(d.In.Mean(), d.Out.Mean(), d.Task.Out.Max, d.Task.Out.Max)
	if err != nil {
		return nil, err
	}
	if len(sweep) == 0 {
		return nil, fmt.Errorf("experiments: FT has no feasible batch for %s on %s", d.Task.ID, d.Model.Name)
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(sweep)))
		if i >= len(sweep) {
			i = len(sweep) - 1
		}
		return sweep[i]
	}
	return []float64{pick(0.10), pick(0.30), pick(0.70), math.Inf(1)}, nil
}

// RunBaseline picks the largest bound-feasible batch for the system and
// measures its execution.
func (d *Deployment) RunBaseline(sys baselines.System, bound float64, reqs []workload.Request) (float64, error) {
	e, err := baselines.New(sys, d.Model, d.Cluster, d.Prof)
	if err != nil {
		return 0, err
	}
	boundLen := d.Task.Out.Max
	if sys == baselines.ORCA || sys == baselines.VLLM {
		boundLen = d.Out.Percentile(0.99)
	}
	b, err := e.PickBatch(bound, d.In.Mean(), d.Out.Mean(), boundLen, d.Task.Out.Max)
	if err != nil {
		return 0, err
	}
	if b == 0 {
		return 0, nil // bound not satisfiable
	}
	res, err := e.Run(b, reqs, d.Task.Out.Max)
	if err != nil {
		return 0, err
	}
	return res.Stats.EffectiveTput(), nil
}

// RunOutcome is one latency bound's outcome from ScheduleAndRunMany.
type RunOutcome struct {
	Bound float64
	// Tput is the measured effective throughput; zero when !OK.
	Tput float64
	// Est is the schedule the search selected (zero value when none was
	// found).
	Est core.Estimate
	// OK is false when no feasible schedule exists, or the selected one
	// trips runtime OOM on sampled tails (the paper's "NS").
	OK bool
}

// ScheduleAndRunMany finds the best schedule for every latency bound in
// one amortized multi-bound search (core.Scheduler.FindBestMany) and
// executes each selected schedule, returning one outcome per bound in
// input order. Per-bound schedules are bit-identical to what a
// standalone FindBest would select. Adjacent bounds often pick the same
// schedule, so executions are memoized per config: each distinct
// schedule runs once per call.
func (d *Deployment) ScheduleAndRunMany(policies []sched.Policy, bounds []float64, reqs []workload.Request) ([]RunOutcome, error) {
	ress, err := d.Sch.FindBestMany(policies, bounds)
	if err != nil {
		return nil, err
	}
	type runMemo struct {
		tput float64
		ok   bool
	}
	runs := map[sched.Config]runMemo{}
	outs := make([]RunOutcome, len(bounds))
	for i, res := range ress {
		out := RunOutcome{Bound: bounds[i]}
		if res.Found {
			out.Est = res.Best
			m, seen := runs[res.Best.Config]
			if !seen {
				r, rerr := d.Run.Run(res.Best.Config, res.Best.Alloc, reqs)
				if rerr == nil {
					m = runMemo{tput: r.Stats.EffectiveTput(), ok: true}
				}
				// A schedule that passes the simulator but trips runtime
				// OOM on sampled tails counts as not satisfiable.
				runs[res.Best.Config] = m
			}
			out.Tput, out.OK = m.tput, m.ok
		}
		outs[i] = out
	}
	return outs, nil
}

// ScheduleAndRun finds the best schedule under the bound for the given
// policies and executes it, returning the measured throughput. ok=false
// means no feasible schedule (the paper's "NS"). It is the single-bound
// case of ScheduleAndRunMany.
func (d *Deployment) ScheduleAndRun(policies []sched.Policy, bound float64, reqs []workload.Request) (tput float64, est core.Estimate, ok bool, err error) {
	outs, err := d.ScheduleAndRunMany(policies, []float64{bound}, reqs)
	if err != nil {
		return 0, core.Estimate{}, false, err
	}
	return outs[0].Tput, outs[0].Est, outs[0].OK, nil
}

// tableWriter builds fixed-width text tables.
type tableWriter struct {
	b     strings.Builder
	width []int
	rows  [][]string
}

func newTable(headers ...string) *tableWriter {
	t := &tableWriter{}
	t.addRow(headers...)
	return t
}

func (t *tableWriter) addRow(cells ...string) {
	for i, cell := range cells {
		if i >= len(t.width) {
			t.width = append(t.width, 0)
		}
		if len(cell) > t.width[i] {
			t.width[i] = len(cell)
		}
	}
	t.rows = append(t.rows, cells)
}

func (t *tableWriter) String() string {
	for r, row := range t.rows {
		for i, cell := range row {
			fmt.Fprintf(&t.b, "%-*s", t.width[i]+2, cell)
		}
		t.b.WriteString("\n")
		if r == 0 {
			for i := range row {
				t.b.WriteString(strings.Repeat("-", t.width[i]) + "  ")
			}
			t.b.WriteString("\n")
		}
	}
	return t.b.String()
}

func fmtBound(b float64) string {
	if math.IsInf(b, 1) {
		return "Inf"
	}
	return fmt.Sprintf("%.1f", b)
}

func fmtTput(v float64, feasible bool) string {
	if !feasible {
		return "NS"
	}
	return fmt.Sprintf("%.2f", v)
}

func gib(b int64) float64 { return float64(b) / (1 << 30) }
