// Package experiments regenerates every table and figure of the ExeGPT
// paper's evaluation (§7) on the simulated substrate. Each experiment
// has one entry point returning structured rows plus a formatter that
// prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"exegpt/internal/baselines"
	"exegpt/internal/core"
	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/profile"
	"exegpt/internal/runner"
	"exegpt/internal/sched"
	"exegpt/internal/seqdist"
	"exegpt/internal/workload"
)

// Context carries experiment-wide settings.
type Context struct {
	// Seed drives all request sampling.
	Seed int64
	// Requests per measured run.
	Requests int
	// Quick shrinks sweeps for fast test runs.
	Quick bool

	profiles map[string]*profile.Table
}

// NewContext returns defaults matching the paper-scale runs.
func NewContext() *Context {
	return &Context{Seed: 42, Requests: 1200, profiles: map[string]*profile.Table{}}
}

// NewQuickContext returns a reduced-cost context for tests.
func NewQuickContext() *Context {
	return &Context{Seed: 42, Requests: 500, Quick: true, profiles: map[string]*profile.Table{}}
}

// deployment bundles everything needed to evaluate one (model, cluster,
// task) combination.
type deployment struct {
	model   model.Model
	cluster hw.Cluster
	prof    *profile.Table
	task    workload.Task
	in, out *seqdist.Dist
	sim     *core.Simulator
	sch     *core.Scheduler
	run     *runner.Engine
}

// profileFor memoizes profiling per (model, sub-cluster).
func (c *Context) profileFor(m model.Model, sub hw.Cluster) (*profile.Table, error) {
	key := m.Name + "/" + sub.Name + "/" + fmt.Sprint(sub.TotalGPUs())
	if t, ok := c.profiles[key]; ok {
		return t, nil
	}
	p, err := profile.New(m, sub)
	if err != nil {
		return nil, err
	}
	t := p.Run()
	if c.profiles == nil {
		c.profiles = map[string]*profile.Table{}
	}
	c.profiles[key] = t
	return t, nil
}

// deploy sets up a deployment for a model on gpus of cluster running
// task.
func (c *Context) deploy(m model.Model, cluster hw.Cluster, gpus int, task workload.Task) (*deployment, error) {
	sub, err := cluster.Sub(gpus)
	if err != nil {
		return nil, err
	}
	prof, err := c.profileFor(m, sub)
	if err != nil {
		return nil, err
	}
	in, out, err := task.Dists()
	if err != nil {
		return nil, err
	}
	sim, err := core.NewSimulator(m, sub, prof, in, out)
	if err != nil {
		return nil, err
	}
	sch := core.NewScheduler(sim)
	if c.Quick {
		sch.MaxBatch = 512
		sch.MaxND = 32
	}
	run, err := runner.New(m, sub, prof)
	if err != nil {
		return nil, err
	}
	return &deployment{
		model: m, cluster: sub, prof: prof, task: task,
		in: in, out: out, sim: sim, sch: sch, run: run,
	}, nil
}

// requests draws the evaluation request stream.
func (c *Context) requests(task workload.Task, n int) ([]workload.Request, error) {
	g, err := workload.NewGenerator(task, c.Seed)
	if err != nil {
		return nil, err
	}
	if task.Rho > 0.5 {
		// §7.1: highly correlated tasks get input randomization.
		g.RandomizeInputs = true
	}
	if n <= 0 {
		n = c.Requests
	}
	return g.Batch(n), nil
}

// ftBounds derives the paper's four latency constraints from FT's
// batch-size/latency sweep: bottom 10%, 30%, 70% and infinity (§7.1).
func (d *deployment) ftBounds() ([]float64, error) {
	ft, err := baselines.New(baselines.FT, d.model, d.cluster, d.prof)
	if err != nil {
		return nil, err
	}
	sweep, err := ft.LatencySweep(d.in.Mean(), d.out.Mean(), d.task.Out.Max, d.task.Out.Max)
	if err != nil {
		return nil, err
	}
	if len(sweep) == 0 {
		return nil, fmt.Errorf("experiments: FT has no feasible batch for %s on %s", d.task.ID, d.model.Name)
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(sweep)))
		if i >= len(sweep) {
			i = len(sweep) - 1
		}
		return sweep[i]
	}
	return []float64{pick(0.10), pick(0.30), pick(0.70), math.Inf(1)}, nil
}

// runBaseline picks the largest bound-feasible batch for the system and
// measures its execution.
func (d *deployment) runBaseline(sys baselines.System, bound float64, reqs []workload.Request) (float64, error) {
	e, err := baselines.New(sys, d.model, d.cluster, d.prof)
	if err != nil {
		return 0, err
	}
	boundLen := d.task.Out.Max
	if sys == baselines.ORCA || sys == baselines.VLLM {
		boundLen = d.out.Percentile(0.99)
	}
	b, err := e.PickBatch(bound, d.in.Mean(), d.out.Mean(), boundLen, d.task.Out.Max)
	if err != nil {
		return 0, err
	}
	if b == 0 {
		return 0, nil // bound not satisfiable
	}
	res, err := e.Run(b, reqs, d.task.Out.Max)
	if err != nil {
		return 0, err
	}
	return res.Stats.EffectiveTput(), nil
}

// scheduleAndRun finds the best schedule under the bound for the given
// policies and executes it, returning the measured throughput. ok=false
// means no feasible schedule (the paper's "NS").
func (d *deployment) scheduleAndRun(policies []sched.Policy, bound float64, reqs []workload.Request) (tput float64, est core.Estimate, ok bool, err error) {
	res, err := d.sch.FindBest(policies, bound)
	if err != nil || !res.Found {
		return 0, core.Estimate{}, false, err
	}
	out, err := d.run.Run(res.Best.Config, res.Best.Alloc, reqs)
	if err != nil {
		// A schedule that passes the simulator but trips runtime OOM on
		// sampled tails counts as not satisfiable.
		return 0, res.Best, false, nil
	}
	return out.Stats.EffectiveTput(), res.Best, true, nil
}

// tableWriter builds fixed-width text tables.
type tableWriter struct {
	b     strings.Builder
	width []int
	rows  [][]string
}

func newTable(headers ...string) *tableWriter {
	t := &tableWriter{}
	t.addRow(headers...)
	return t
}

func (t *tableWriter) addRow(cells ...string) {
	for i, cell := range cells {
		if i >= len(t.width) {
			t.width = append(t.width, 0)
		}
		if len(cell) > t.width[i] {
			t.width[i] = len(cell)
		}
	}
	t.rows = append(t.rows, cells)
}

func (t *tableWriter) String() string {
	for r, row := range t.rows {
		for i, cell := range row {
			fmt.Fprintf(&t.b, "%-*s", t.width[i]+2, cell)
		}
		t.b.WriteString("\n")
		if r == 0 {
			for i := range row {
				t.b.WriteString(strings.Repeat("-", t.width[i]) + "  ")
			}
			t.b.WriteString("\n")
		}
	}
	return t.b.String()
}

func fmtBound(b float64) string {
	if math.IsInf(b, 1) {
		return "Inf"
	}
	return fmt.Sprintf("%.1f", b)
}

func fmtTput(v float64, feasible bool) string {
	if !feasible {
		return "NS"
	}
	return fmt.Sprintf("%.2f", v)
}

func gib(b int64) float64 { return float64(b) / (1 << 30) }
