package experiments

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/profile"
)

// TestProfileCacheRoundTrip: the first context profiles and saves; a
// fresh context loads the saved table and serves bit-identical lookups.
func TestProfileCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sub, err := hw.A40Cluster.Sub(4)
	if err != nil {
		t.Fatal(err)
	}

	c1 := NewQuickContext()
	c1.ProfileCacheDir = dir
	tab1, err := c1.profileFor(model.OPT13B, sub)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want 1 cache file, got %d", len(entries))
	}
	path := filepath.Join(dir, entries[0].Name())

	// A fresh context must load the cached table, not re-profile. Prove
	// the load by checking the file is read: replace the cache with a
	// modified-but-valid table and observe the loaded values change.
	c2 := NewQuickContext()
	c2.ProfileCacheDir = dir
	tab2, err := c2.profileFor(model.OPT13B, sub)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tab1.DecodeLayer(37, 211, 4, profile.IntraNode)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tab2.DecodeLayer(37, 211, 4, profile.IntraNode)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("cached table lookup diverged: %v vs %v", a, b)
	}

	// Tamper: scale one grid value; a context reading the cache must
	// see the tampered number (i.e. it really loaded from disk).
	tampered, err := profile.Decode(mustRead(t, path))
	if err != nil {
		t.Fatal(err)
	}
	tampered.DecRest[0][0] *= 3
	data, err := tampered.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := NewQuickContext()
	c3.ProfileCacheDir = dir
	tab3, err := c3.profileFor(model.OPT13B, sub)
	if err != nil {
		t.Fatal(err)
	}
	if tab3.DecRest[0][0] != tampered.DecRest[0][0] {
		t.Fatal("context did not load the on-disk table")
	}
}

// TestProfileCacheIgnoresCorruptAndMismatched: garbage or
// wrong-model cache files are treated as misses and overwritten.
func TestProfileCacheIgnoresCorruptAndMismatched(t *testing.T) {
	dir := t.TempDir()
	sub, err := hw.A40Cluster.Sub(4)
	if err != nil {
		t.Fatal(err)
	}
	c := NewQuickContext()
	c.ProfileCacheDir = dir
	path := c.profileCachePath(model.OPT13B, sub)
	if path == "" {
		t.Fatal("cache path should be set")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := c.profileFor(model.OPT13B, sub)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ModelName != model.OPT13B.Name {
		t.Fatalf("model name %q", tab.ModelName)
	}
	// The corrupt file must have been replaced with a valid table.
	back, err := profile.Decode(mustRead(t, path))
	if err != nil {
		t.Fatalf("cache not repaired: %v", err)
	}
	if back.ModelName != model.OPT13B.Name {
		t.Fatalf("repaired cache holds %q", back.ModelName)
	}

	// A valid table for a different model is also a miss.
	other := NewQuickContext()
	sub8, err := hw.A40Cluster.Sub(8)
	if err != nil {
		t.Fatal(err)
	}
	otherTab, err := other.profileFor(model.T511B, sub8)
	if err != nil {
		t.Fatal(err)
	}
	data, err := otherTab.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := NewQuickContext()
	c2.ProfileCacheDir = dir
	tab2, err := c2.profileFor(model.OPT13B, sub)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.ModelName != model.OPT13B.Name {
		t.Fatalf("mismatched cache served: %q", tab2.ModelName)
	}
}

// TestProfileCacheOffByDefault: no directory, no files written.
func TestProfileCacheOffByDefault(t *testing.T) {
	c := NewQuickContext()
	sub, err := hw.A40Cluster.Sub(4)
	if err != nil {
		t.Fatal(err)
	}
	if p := c.profileCachePath(model.OPT13B, sub); p != "" {
		t.Fatalf("cache path %q without a cache dir", p)
	}
}

// TestProfileCacheConcurrentSharedDir: independent contexts — the
// in-process analog of sharded sweep worker processes — profiling the
// same key into one shared cache directory concurrently must be
// race-free (run under -race), produce identical tables, and leave
// exactly one complete cache file behind (saveProfile writes via
// temp-file + rename, so a racing reader never sees a torn file).
func TestProfileCacheConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	sub, err := hw.A40Cluster.Sub(4)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	tabs := make([]*profile.Table, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewQuickContext()
			c.ProfileCacheDir = dir
			tabs[i], errs[i] = c.profileFor(model.OPT13B, sub)
		}(i)
	}
	wg.Wait()
	// Depending on timing each worker either profiled fresh or loaded
	// another worker's cache file; either way the tables must agree.
	// Compare encoded forms: profiling is deterministic and Encode is
	// stable across a decode round trip.
	enc := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if enc[i], err = tabs[i].Encode(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(enc[i], enc[0]) {
			t.Fatalf("worker %d produced a different table", i)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("want exactly 1 cache file (no temp leftovers), got %v", names)
	}
	// The surviving file is a complete, valid table for the key.
	back, err := profile.Decode(mustRead(t, filepath.Join(dir, entries[0].Name())))
	if err != nil {
		t.Fatalf("cache file torn or invalid: %v", err)
	}
	if back.ModelName != model.OPT13B.Name {
		t.Fatalf("cache file holds %q", back.ModelName)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
