// Table regenerators (Tables 1-7).
package experiments

import (
	"fmt"
	"math"

	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// Table1 renders the evaluated models and configurations.
func Table1() string {
	t := newTable("Model", "# Params", "# Layers", "Hidden Size", "# Atten. Head")
	for _, m := range model.All {
		t.addRow(m.Name,
			fmt.Sprintf("%.0fB", float64(m.Params())/1e9),
			fmt.Sprint(m.TotalLayers()),
			fmt.Sprint(m.Hidden),
			fmt.Sprint(m.Heads))
	}
	return t.String()
}

// Table2 renders the GPU clusters and deployed LLMs.
func Table2() string {
	t := newTable("GPU (Mem)", "Cluster Size", "Interconn. (Intra/Inter)", "Model: # GPUs")
	for _, d := range sched.DefaultDeployments {
		c := d.Cluster
		t.addRow(
			fmt.Sprintf("%s (%dGB)", c.GPU.Name, c.GPU.MemoryBytes>>30),
			fmt.Sprintf("%d (%dx%d)", c.TotalGPUs(), c.GPUsPerNode, c.Nodes),
			fmt.Sprintf("%s/%s", c.IntraNode.Name, c.InterNode.Name),
			fmt.Sprintf("%s: %d", d.Model.Name, d.GPUs))
	}
	return t.String()
}

// Table3 renders the evaluated NLP tasks and length configurations.
func Table3() string {
	t := newTable("Task", "ID", "Input (Avg,Std,Max)", "Output (Avg,Std,99th,Max)")
	for _, task := range workload.Tasks {
		_, out, err := task.Dists()
		p99 := 0
		if err == nil {
			p99 = out.Percentile(0.99)
		}
		t.addRow(task.Name, task.ID,
			fmt.Sprintf("(%.0f, %.0f, %d)", task.In.Avg, task.In.Std, task.In.Max),
			fmt.Sprintf("(%.0f, %.0f, %d, %d)", task.Out.Avg, task.Out.Std, p99, task.Out.Max))
	}
	return t.String()
}

// LoadRow is one row of Table 4.
type LoadRow struct {
	Model    string
	GPUs     int
	FromDRAM float64
	FromSSD  float64
}

// Table4 computes model (re-)deployment costs: loading weights from SSD
// versus host DRAM, in parallel across the deployment's nodes (§7.7).
func Table4() []LoadRow {
	rows := []LoadRow{}
	type item struct {
		m    model.Model
		gpus int
		cl   hw.Cluster
	}
	// The paper reports 39B/16, 101B/32, 175B/32, 341B/48 (A40 nodes).
	for _, it := range []item{
		{model.GPT339B, 16, hw.A40Cluster},
		{model.GPT3101B, 32, hw.A40Cluster},
		{model.GPT3175B, 32, hw.A40Cluster},
		{model.GPT3341B, 48, hw.A40Cluster},
	} {
		nodes := (it.gpus + it.cl.GPUsPerNode - 1) / it.cl.GPUsPerNode
		rows = append(rows, LoadRow{
			Model: it.m.Name, GPUs: it.gpus,
			FromDRAM: hw.LoadTime(it.m.WeightBytes(), nodes, true),
			FromSSD:  hw.LoadTime(it.m.WeightBytes(), nodes, false),
		})
	}
	return rows
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []LoadRow) string {
	t := newTable("Model", "#GPUs", "Loading from DRAM", "Loading from SSD")
	for _, r := range rows {
		t.addRow(r.Model, fmt.Sprint(r.GPUs),
			fmt.Sprintf("%.1f secs.", r.FromDRAM),
			fmt.Sprintf("%.1f secs.", r.FromSSD))
	}
	return t.String()
}

// MonoRow is one Table 5 row: non-monotonic point percentages per
// control variable at one tolerance.
type MonoRow struct {
	Task      string
	Tolerance float64
	// Cells maps "policy/variable" to (latency%, throughput%)
	// violation percentages.
	Cells map[string][2]float64
}

// Table5 evaluates monotonicity of the control variables on GPT-3 39B
// with tasks S and T at 2%, 5% and 10% tolerances (§7.8).
func (c *Context) Table5() ([]MonoRow, error) {
	var rows []MonoRow
	tasks := []workload.Task{workload.Summarization, workload.Translation}
	tols := []float64{0.02, 0.05, 0.10}
	if c.Quick {
		tasks = tasks[:1]
		tols = []float64{0.05}
	}
	for _, task := range tasks {
		d, err := c.Deploy(model.GPT339B, hw.A40Cluster, 16, task)
		if err != nil {
			return nil, err
		}
		for _, tol := range tols {
			row := MonoRow{Task: task.ID, Tolerance: tol, Cells: map[string][2]float64{}}
			for _, sw := range d.Sch.Table5Sweeps() {
				rep, err := d.Sch.EvaluateMonotonicity(sw, tol)
				if err != nil {
					return nil, err
				}
				key := fmt.Sprintf("%s/%s", rep.Policy, rep.Variable)
				row.Cells[key] = [2]float64{rep.LatencyViol * 100, rep.TputViol * 100}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []MonoRow) string {
	keys := []string{"RRA/BD", "RRA/ND", "WAA-M/BE", "WAA-M/TP", "WAA-M/Bm"}
	header := append([]string{"Task", "Tol."}, keys...)
	t := newTable(header...)
	for _, r := range rows {
		cells := []string{r.Task, fmt.Sprintf("%.0f%%", r.Tolerance*100)}
		for _, k := range keys {
			v := r.Cells[k]
			cells = append(cells, fmt.Sprintf("(%.1f, %.1f)", v[0], v[1]))
		}
		t.addRow(cells...)
	}
	return t.String() + "Each cell is (Latency, Throughput) % of non-monotonic points.\n"
}

// CaseRow is one Table 6 row: the schedule selected at one bound.
type CaseRow struct {
	Bound    float64
	Schedule string
	Config   string
	Latency  float64
	Tput     float64
}

// Table6 reproduces the case study: selected schedules and control
// variables for OPT-13B, task S, across four latency bounds (§7.8).
func (c *Context) Table6() ([]CaseRow, error) {
	d, err := c.Deploy(model.OPT13B, hw.A40Cluster, 4, workload.Summarization)
	if err != nil {
		return nil, err
	}
	bounds, err := d.FTBounds()
	if err != nil {
		return nil, err
	}
	// One amortized search across all four bounds (the schedules are
	// bit-identical to per-bound FindBest calls).
	ress, err := d.Sch.FindBestMany([]sched.Policy{sched.RRA, sched.WAAC, sched.WAAM}, bounds)
	if err != nil {
		return nil, err
	}
	var rows []CaseRow
	for bi, bound := range bounds {
		res := ress[bi]
		row := CaseRow{Bound: bound}
		if res.Found {
			row.Schedule = res.Best.Config.Policy.String()
			row.Config = res.Best.Config.String()
			row.Latency = res.Best.Latency
			row.Tput = res.Best.Throughput
		} else {
			row.Schedule = "NS"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable6 renders Table 6.
func FormatTable6(rows []CaseRow) string {
	t := newTable("LB", "Selected Schedule", "Control Variables", "Latency (sec.)", "Tput (seq./sec.)")
	for _, r := range rows {
		t.addRow(fmtBound(r.Bound), r.Schedule, r.Config,
			fmt.Sprintf("%.2f", r.Latency), fmt.Sprintf("%.2f", r.Tput))
	}
	return t.String()
}

// VarianceRow is one Table 7 row: stage execution-time variance.
type VarianceRow struct {
	Schedule string
	EncMean  float64
	EncRange float64 // +- seconds at 99th pctl
	DecMean  float64
	DecRange float64
}

// Table7 measures encoder/decoder stage execution-time variance for the
// selected RRA and WAA schedules on OPT-13B task S (§7.9).
func (c *Context) Table7() ([]VarianceRow, error) {
	d, err := c.Deploy(model.OPT13B, hw.A40Cluster, 4, workload.Summarization)
	if err != nil {
		return nil, err
	}
	reqs, err := c.RequestStream(workload.Summarization, c.Requests*2)
	if err != nil {
		return nil, err
	}
	var rows []VarianceRow
	for _, pol := range []struct {
		name     string
		policies []sched.Policy
	}{
		{"RRA", []sched.Policy{sched.RRA}},
		{"WAA", []sched.Policy{sched.WAAC, sched.WAAM}},
	} {
		res, err := d.Sch.FindBest(pol.policies, math.Inf(1))
		if err != nil {
			return nil, err
		}
		if !res.Found {
			continue
		}
		run, err := d.Run.Run(res.Best.Config, res.Best.Alloc, reqs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, VarianceRow{
			Schedule: pol.name,
			EncMean:  run.EncStage.Mean(),
			EncRange: run.EncStage.PctlRange(0.99),
			DecMean:  run.DecStage.Mean(),
			DecRange: run.DecStage.PctlRange(0.99),
		})
	}
	return rows, nil
}

// FormatTable7 renders Table 7.
func FormatTable7(rows []VarianceRow) string {
	t := newTable("Schedule", "Encoder (99th pctl Range)", "Decoder (99th pctl Range)")
	for _, r := range rows {
		t.addRow(r.Schedule,
			fmt.Sprintf("%.3f (+-%.3f, +-%.1f%%)", r.EncMean, r.EncRange, 100*r.EncRange/math.Max(r.EncMean, 1e-12)),
			fmt.Sprintf("%.4f (+-%.4f, +-%.1f%%)", r.DecMean, r.DecRange, 100*r.DecRange/math.Max(r.DecMean, 1e-12)))
	}
	return t.String()
}

// SchedCostRow reports the §7.7 scheduling-cost comparison.
type SchedCostRow struct {
	Policy           string
	BBEvals, ExEvals int
	// Same-quality check: B&B throughput over exhaustive optimum.
	Quality float64
}

// SchedulingCost compares branch-and-bound search cost against
// exhaustive search (§7.7).
func (c *Context) SchedulingCost() ([]SchedCostRow, error) {
	d, err := c.Deploy(model.OPT13B, hw.A40Cluster, 4, workload.Summarization)
	if err != nil {
		return nil, err
	}
	bounds, err := d.FTBounds()
	if err != nil {
		return nil, err
	}
	bound := bounds[2]
	var rows []SchedCostRow
	for _, pol := range []struct {
		name     string
		policies []sched.Policy
	}{
		{"RRA", []sched.Policy{sched.RRA}},
		{"WAA", []sched.Policy{sched.WAAC, sched.WAAM}},
	} {
		bb, err := d.Sch.FindBest(pol.policies, bound)
		if err != nil {
			return nil, err
		}
		bbEvals := bb.Evals
		ex, err := d.Sch.Exhaustive(pol.policies, bound)
		if err != nil {
			return nil, err
		}
		quality := 0.0
		if ex.Found && ex.Best.Throughput > 0 && bb.Found {
			quality = bb.Best.Throughput / ex.Best.Throughput
		}
		rows = append(rows, SchedCostRow{
			Policy: pol.name, BBEvals: bbEvals, ExEvals: ex.Evals, Quality: quality,
		})
	}
	return rows, nil
}

// FormatSchedulingCost renders the §7.7 comparison.
func FormatSchedulingCost(rows []SchedCostRow) string {
	t := newTable("Policy", "B&B evals", "Exhaustive evals", "Quality (B&B/opt)")
	for _, r := range rows {
		t.addRow(r.Policy, fmt.Sprint(r.BBEvals), fmt.Sprint(r.ExEvals), fmt.Sprintf("%.3f", r.Quality))
	}
	return t.String()
}

// FormatThroughput renders Figure 6/7/8/10-style cells as a table.
func FormatThroughput(title string, cells []ThroughputCell) string {
	t := newTable("Model", "Task", "LB", "System", "Tput (seq/s)")
	for _, cell := range cells {
		t.addRow(cell.Model, cell.Task, fmtBound(cell.Bound), cell.System,
			fmtTput(cell.Tput, cell.Feasible))
	}
	s := title + "\n" + t.String()
	if g := GeoMeanSpeedup(cells); g > 0 {
		s += fmt.Sprintf("ExeGPT vs FT: geo-mean %.2fx, max %.2fx\n", g, MaxSpeedup(cells))
	}
	return s
}

// FormatMemory renders Figure 9 cells.
func FormatMemory(cells []MemoryCell) string {
	t := newTable("Model", "Task", "FT model+kv (GiB)", "WAA enc model+kv", "WAA dec model+kv", "Split", "Policy")
	for _, cell := range cells {
		t.addRow(cell.Model, cell.Task,
			fmt.Sprintf("%.1f+%.1f", gib(cell.FTWeights), gib(cell.FTKV)),
			fmt.Sprintf("%.1f+%.1f", gib(cell.WAAEncWeights), gib(cell.WAAEncKV)),
			fmt.Sprintf("%.1f+%.1f", gib(cell.WAADecWeights), gib(cell.WAADecKV)),
			fmt.Sprintf("%dE/%dD", cell.EncGPUs, cell.DecGPUs),
			cell.WAAPolicy)
	}
	return t.String()
}

// FormatShift renders Figure 11 cells.
func FormatShift(cells []ShiftCell) string {
	t := newTable("Dim", "Value", "Non-adj tput", "Optimal tput", "p99 lat (norm)", "Meets bound")
	for _, cell := range cells {
		t.addRow(cell.Dimension, fmt.Sprintf("%.2f", cell.Value),
			fmt.Sprintf("%.2f", cell.NonAdjustedTput),
			fmt.Sprintf("%.2f", cell.OptimalTput),
			fmt.Sprintf("%.2f", cell.P99LatencyNorm),
			fmt.Sprint(cell.MeetsBound))
	}
	return t.String()
}
