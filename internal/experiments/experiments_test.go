package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

func quick() *Context { return NewQuickContext() }

// TestSweepDeterministicAcrossWorkers runs the same small grid with one
// and four deployment workers (the four-worker run also exercising the
// shared profile memo concurrently) and requires identical rows.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	grid := SweepGrid{
		Deployments: []sched.Deployment{
			{Model: model.OPT13B, Cluster: hw.A40Cluster, GPUs: 4},
		},
		Tasks: []workload.Task{workload.Summarization, workload.Translation},
	}

	grid.Workers = 1
	seq, err := quick().Sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	grid.Workers = 4
	par, err := quick().Sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("no rows")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep diverged across worker counts:\n seq %+v\n par %+v", seq, par)
	}

	// Shape: every cell reports FT plus both ExeGPT policy groups, and
	// FT is feasible at its own derived bounds.
	systems := map[string]int{}
	for _, r := range seq {
		systems[r.System]++
		if r.System == "FT" && !r.Feasible {
			t.Errorf("%s/%s LB %v: FT infeasible at its own bound", r.Model, r.Task, r.Bound)
		}
	}
	for _, sys := range []string{"FT", "ExeGPT-RRA", "ExeGPT-WAA"} {
		if systems[sys] == 0 {
			t.Errorf("system %s missing from sweep", sys)
		}
	}
	if s := FormatSweep(seq); !strings.Contains(s, "ExeGPT-RRA") {
		t.Fatal("format broken")
	}
}

func TestStaticTablesRender(t *testing.T) {
	for name, s := range map[string]string{
		"table1": Table1(), "table2": Table2(), "table3": Table3(),
	} {
		if len(s) == 0 || !strings.Contains(s, "\n") {
			t.Errorf("%s: empty render", name)
		}
	}
	if !strings.Contains(Table1(), "GPT-3-175B") {
		t.Error("table 1 missing 175B row")
	}
	if !strings.Contains(Table2(), "A100") {
		t.Error("table 2 missing A100 cluster")
	}
	if !strings.Contains(Table3(), "Translation") {
		t.Error("table 3 missing translation task")
	}
}

// Figure 6 shape: ExeGPT's best policy beats FT on average, and no
// feasible ExeGPT run violates its bound (checked inside the scheduler).
func TestFigure6Shape(t *testing.T) {
	cells, err := quick().Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	g := GeoMeanSpeedup(cells)
	if g < 1.2 {
		t.Fatalf("ExeGPT geo-mean speedup over FT = %.2fx; paper reports ~2x", g)
	}
	if MaxSpeedup(cells) < g {
		t.Fatal("max speedup below mean")
	}
	out := FormatThroughput("fig6", cells)
	if !strings.Contains(out, "ExeGPT vs FT") {
		t.Fatal("formatter missing summary line")
	}
}

// Figure 7 shape: FT leads DSI/ORCA/vLLM for every task and bound.
func TestFigure7Shape(t *testing.T) {
	cells, err := quick().Figure7()
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		task  string
		bound float64
	}
	best := map[key]string{}
	tput := map[key]float64{}
	for _, c := range cells {
		k := key{c.Task, c.Bound}
		if c.Feasible && c.Tput > tput[k] {
			tput[k] = c.Tput
			best[k] = c.System
		}
	}
	for k, sys := range best {
		if sys != "FasterTransformer" && sys != "DeepSpeed-Inference" {
			t.Errorf("%v: %s leads; paper has FT first (DSI close)", k, sys)
		}
	}
}

// Figure 8 shape: RRA-only comparison still beats FT on large models.
func TestFigure8Shape(t *testing.T) {
	cells, err := quick().Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if g := GeoMeanSpeedup(cells); g < 1.2 {
		t.Fatalf("large-model speedup %.2fx too low", g)
	}
	for _, c := range cells {
		if c.System == "ExeGPT-WAA" {
			t.Fatal("figure 8 must exclude WAA")
		}
	}
}

// Figure 9 shape: WAA uses more model memory and less KV than FT; the
// encoder/decoder split is reported.
func TestFigure9Shape(t *testing.T) {
	cells, err := quick().Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	for _, c := range cells {
		if c.WAAPolicy == "" {
			continue // WAA infeasible for this task
		}
		waaModel := c.WAAEncWeights + c.WAADecWeights
		if waaModel <= c.FTWeights {
			t.Errorf("%s/%s: WAA model memory %d should exceed FT %d (two copies)",
				c.Model, c.Task, waaModel, c.FTWeights)
		}
		if c.EncGPUs < 1 || c.DecGPUs < 1 {
			t.Errorf("%s/%s: missing split", c.Model, c.Task)
		}
	}
	if s := FormatMemory(cells); !strings.Contains(s, "Split") {
		t.Fatal("format broken")
	}
}

// Figure 10 shape: gains on long-tailed real datasets exceed synthetic
// gains (diminishing-batch problem is worse, §7.5).
func TestFigure10Shape(t *testing.T) {
	cells, err := quick().Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if g := GeoMeanSpeedup(cells); g < 1.5 {
		t.Fatalf("real-dataset speedup %.2fx; paper reports ~4.4x average", g)
	}
}

// Figure 11 shape: when the average output length grows, the stale
// schedule violates the latency bound; when it shrinks, the re-optimized
// schedule wins while meeting the bound.
func TestFigure11Shape(t *testing.T) {
	cells, err := quick().Figure11()
	if err != nil {
		t.Fatal(err)
	}
	var sawGrow, sawShrink bool
	for _, c := range cells {
		if c.Dimension != "avg" {
			continue
		}
		if c.Value > 1 {
			sawGrow = true
			if c.P99LatencyNorm <= 1 {
				t.Errorf("avg x%.2f: p99 should rise, got %.2f", c.Value, c.P99LatencyNorm)
			}
		}
		if c.Value < 1 {
			sawShrink = true
			if c.P99LatencyNorm >= 1 {
				t.Errorf("avg x%.2f: p99 should drop, got %.2f", c.Value, c.P99LatencyNorm)
			}
			if c.OptimalTput < c.NonAdjustedTput*0.9 {
				t.Errorf("avg x%.2f: re-optimized schedule %.2f should not trail stale %.2f",
					c.Value, c.OptimalTput, c.NonAdjustedTput)
			}
		}
	}
	if !sawGrow || !sawShrink {
		t.Fatal("missing avg variants")
	}
	if s := FormatShift(cells); !strings.Contains(s, "avg") {
		t.Fatal("format broken")
	}
}

// Table 4 shape: larger models load slower; DRAM beats SSD everywhere.
func TestTable4Shape(t *testing.T) {
	rows := Table4()
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	for i, r := range rows {
		if r.FromDRAM >= r.FromSSD {
			t.Errorf("%s: DRAM %.1f not faster than SSD %.1f", r.Model, r.FromDRAM, r.FromSSD)
		}
		if i > 0 && r.FromSSD <= rows[i-1].FromSSD {
			t.Errorf("SSD load times not increasing at %s", r.Model)
		}
	}
	if s := FormatTable4(rows); !strings.Contains(s, "GPT-3-341B") {
		t.Fatal("format broken")
	}
}

// Table 5 shape: the control variables are overwhelmingly monotone at
// 5% tolerance.
func TestTable5Shape(t *testing.T) {
	rows, err := quick().Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		for key, v := range r.Cells {
			if v[0] > 30 || v[1] > 30 {
				t.Errorf("%s tol %.0f%% %s: violations (%.1f, %.1f) too high",
					r.Task, r.Tolerance*100, key, v[0], v[1])
			}
		}
	}
	if s := FormatTable5(rows); !strings.Contains(s, "non-monotonic") {
		t.Fatal("format broken")
	}
}

// Table 6 shape: throughput is nondecreasing as the bound relaxes and
// every selected schedule satisfies its bound.
func TestTable6Shape(t *testing.T) {
	rows, err := quick().Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 bounds, got %d", len(rows))
	}
	prev := 0.0
	for _, r := range rows {
		if r.Schedule == "NS" {
			continue
		}
		if !math.IsInf(r.Bound, 1) && r.Latency >= r.Bound {
			t.Errorf("bound %.1f: selected latency %.2f violates", r.Bound, r.Latency)
		}
		if r.Tput < prev*0.97 {
			t.Errorf("throughput fell as bound relaxed: %.2f after %.2f", r.Tput, prev)
		}
		prev = r.Tput
	}
	if s := FormatTable6(rows); !strings.Contains(s, "Selected Schedule") {
		t.Fatal("format broken")
	}
}

// Table 7 shape: decoder variance is far smaller than encoder variance.
func TestTable7Shape(t *testing.T) {
	rows, err := quick().Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		encRel := r.EncRange / math.Max(r.EncMean, 1e-12)
		decRel := r.DecRange / math.Max(r.DecMean, 1e-12)
		if decRel > 0.30 {
			t.Errorf("%s: decoder relative range %.1f%% too large", r.Schedule, decRel*100)
		}
		if decRel > encRel*2 {
			t.Errorf("%s: decoder spread %.3f should not dwarf encoder %.3f", r.Schedule, decRel, encRel)
		}
	}
	if s := FormatTable7(rows); !strings.Contains(s, "Decoder") {
		t.Fatal("format broken")
	}
}

// §7.7: branch-and-bound evaluates far fewer points than exhaustive
// search at near-equal quality.
func TestSchedulingCostShape(t *testing.T) {
	rows, err := quick().SchedulingCost()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BBEvals >= r.ExEvals {
			t.Errorf("%s: B&B %d evals not fewer than exhaustive %d", r.Policy, r.BBEvals, r.ExEvals)
		}
		if r.Quality < 0.90 {
			t.Errorf("%s: B&B quality %.3f below 0.90", r.Policy, r.Quality)
		}
	}
	if s := FormatSchedulingCost(rows); !strings.Contains(s, "B&B") {
		t.Fatal("format broken")
	}
}

// TestQuickSweepT511BConvQA2 pins the cell that used to fail the full
// default grid under -quick: the FT baseline's nominal batch for
// (T5-11B, C2) is sized from the task's mean input length, but a run of
// above-mean inputs overflows the KV reservation at that size. The
// fixed-batch runner now cuts each batch at the largest feasible size
// instead of erroring, so this cell must sweep cleanly with a feasible
// FT row at every bound.
func TestQuickSweepT511BConvQA2(t *testing.T) {
	dep, err := sched.DeploymentFor("T5-11B")
	if err != nil {
		t.Fatal(err)
	}
	grid := SweepGrid{
		Deployments: []sched.Deployment{dep},
		Tasks:       []workload.Task{workload.ConvQA2},
	}
	rows, err := quick().Sweep(grid)
	if err != nil {
		t.Fatalf("(T5-11B, C2) quick sweep regressed: %v", err)
	}
	ft := 0
	for _, r := range rows {
		if r.System != "FT" {
			continue
		}
		ft++
		if !r.Feasible || r.Tput <= 0 {
			t.Errorf("FT infeasible at bound %v on (T5-11B, C2)", r.Bound)
		}
	}
	if ft == 0 {
		t.Fatal("no FT rows in the (T5-11B, C2) sweep")
	}
}
