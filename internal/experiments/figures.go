// Figure regenerators (§7.2-§7.6).
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"exegpt/internal/baselines"
	"exegpt/internal/core"
	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/seqdist"
	"exegpt/internal/workload"
)

// ThroughputCell is one bar of Figures 6, 7, 8 and 10.
type ThroughputCell struct {
	Model  string
	Task   string
	Bound  float64
	System string
	Tput   float64
	// Feasible is false for the paper's "NS" entries.
	Feasible bool
}

// speedupVs returns the per-(model,task,bound) throughput ratio of
// ExeGPT's best policy over the named baseline.
func speedupVs(cells []ThroughputCell, baseline string) []float64 {
	type key struct {
		m, t string
		b    float64
	}
	base := map[key]float64{}
	best := map[key]float64{}
	for _, c := range cells {
		k := key{c.Model, c.Task, c.Bound}
		if c.System == baseline && c.Feasible {
			base[k] = c.Tput
		}
		if (c.System == "ExeGPT-RRA" || c.System == "ExeGPT-WAA") && c.Feasible && c.Tput > best[k] {
			best[k] = c.Tput
		}
	}
	var out []float64
	for k, b := range base {
		if b > 0 && best[k] > 0 {
			out = append(out, best[k]/b)
		}
	}
	return out
}

// GeoMeanSpeedup summarizes ExeGPT's gain over FT across cells.
func GeoMeanSpeedup(cells []ThroughputCell) float64 {
	sp := speedupVs(cells, "FT")
	if len(sp) == 0 {
		return 0
	}
	logSum := 0.0
	for _, s := range sp {
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(sp)))
}

// MaxSpeedup returns the largest per-cell gain over FT.
func MaxSpeedup(cells []ThroughputCell) float64 {
	max := 0.0
	for _, s := range speedupVs(cells, "FT") {
		if s > max {
			max = s
		}
	}
	return max
}

// throughputFigure runs one Figure 6/8-style comparison for the given
// deployments, tasks, and ExeGPT policy sets. Each policy family is
// scheduled across all bounds in one amortized multi-bound search
// (ScheduleAndRunMany); cells come out in the same per-bound order the
// paper's bar groups use.
func (c *Context) throughputFigure(deps []sched.Deployment, tasks []workload.Task, rra, waa bool) ([]ThroughputCell, error) {
	var cells []ThroughputCell
	for _, dply := range deps {
		for _, task := range tasks {
			d, err := c.Deploy(dply.Model, dply.Cluster, dply.GPUs, task)
			if err != nil {
				return nil, err
			}
			bounds, err := d.FTBounds()
			if err != nil {
				return nil, err
			}
			if c.Quick {
				bounds = []float64{bounds[1], math.Inf(1)}
			}
			reqs, err := c.RequestStream(task, 0)
			if err != nil {
				return nil, err
			}
			var rraOuts, waaOuts []RunOutcome
			if rra {
				if rraOuts, err = d.ScheduleAndRunMany([]sched.Policy{sched.RRA}, bounds, reqs); err != nil {
					return nil, err
				}
			}
			if waa {
				if waaOuts, err = d.ScheduleAndRunMany([]sched.Policy{sched.WAAC, sched.WAAM}, bounds, reqs); err != nil {
					return nil, err
				}
			}
			for bi, bound := range bounds {
				ftTput, err := d.RunBaseline(baselines.FT, bound, reqs)
				if err != nil {
					return nil, err
				}
				cells = append(cells, ThroughputCell{
					Model: dply.Model.Name, Task: task.ID, Bound: bound,
					System: "FT", Tput: ftTput, Feasible: ftTput > 0,
				})
				if rra {
					cells = append(cells, ThroughputCell{
						Model: dply.Model.Name, Task: task.ID, Bound: bound,
						System: "ExeGPT-RRA", Tput: rraOuts[bi].Tput, Feasible: rraOuts[bi].OK,
					})
				}
				if waa {
					cells = append(cells, ThroughputCell{
						Model: dply.Model.Name, Task: task.ID, Bound: bound,
						System: "ExeGPT-WAA", Tput: waaOuts[bi].Tput, Feasible: waaOuts[bi].OK,
					})
				}
			}
		}
	}
	return cells, nil
}

// Figure6 compares ExeGPT (RRA and WAA) against FT on small to mid-sized
// LLMs with tasks S, T and C1 under four latency bounds (§7.3).
func (c *Context) Figure6() ([]ThroughputCell, error) {
	deps := []sched.Deployment{
		{Model: model.T511B, Cluster: hw.A40Cluster, GPUs: 8},
		{Model: model.OPT13B, Cluster: hw.A40Cluster, GPUs: 4},
		{Model: model.GPT339B, Cluster: hw.A40Cluster, GPUs: 16},
		{Model: model.GPT3101B, Cluster: hw.A100Cluster, GPUs: 16},
	}
	if c.Quick {
		deps = deps[1:2] // OPT-13B only
	}
	tasks := []workload.Task{workload.Summarization, workload.Translation, workload.ConvQA1}
	if c.Quick {
		tasks = tasks[:2]
	}
	return c.throughputFigure(deps, tasks, true, true)
}

// Figure7 compares the existing systems (FT, DSI, ORCA, vLLM) on
// OPT-13B with four A40 GPUs (§7.2).
func (c *Context) Figure7() ([]ThroughputCell, error) {
	var cells []ThroughputCell
	tasks := []workload.Task{workload.Summarization, workload.Translation, workload.ConvQA1}
	if c.Quick {
		tasks = tasks[:1]
	}
	for _, task := range tasks {
		d, err := c.Deploy(model.OPT13B, hw.A40Cluster, 4, task)
		if err != nil {
			return nil, err
		}
		bounds, err := d.FTBounds()
		if err != nil {
			return nil, err
		}
		if c.Quick {
			bounds = []float64{bounds[1], math.Inf(1)}
		}
		reqs, err := c.RequestStream(task, 0)
		if err != nil {
			return nil, err
		}
		for _, bound := range bounds {
			for _, sys := range []baselines.System{baselines.FT, baselines.DSI, baselines.ORCA, baselines.VLLM} {
				tput, err := d.RunBaseline(sys, bound, reqs)
				if err != nil {
					return nil, err
				}
				cells = append(cells, ThroughputCell{
					Model: "OPT-13B", Task: task.ID, Bound: bound,
					System: sys.String(), Tput: tput, Feasible: tput > 0,
				})
			}
		}
	}
	return cells, nil
}

// Figure8 compares ExeGPT (RRA only; WAA exceeds memory, §7.4) against
// FT on the large models with tasks G, C1 and C2.
func (c *Context) Figure8() ([]ThroughputCell, error) {
	deps := []sched.Deployment{
		{Model: model.GPT3101B, Cluster: hw.A100Cluster, GPUs: 16},
		{Model: model.GPT3175B, Cluster: hw.A100Cluster, GPUs: 16},
		{Model: model.GPT3341B, Cluster: hw.A40Cluster, GPUs: 48},
	}
	if c.Quick {
		deps = deps[:1]
	}
	tasks := []workload.Task{workload.CodeGeneration, workload.ConvQA1, workload.ConvQA2}
	if c.Quick {
		tasks = tasks[:1]
	}
	return c.throughputFigure(deps, tasks, true, false)
}

// MemoryCell is one bar group of Figure 9.
type MemoryCell struct {
	Model, Task string
	// Per-GPU memory in bytes, split into model weights and KV cache.
	FTWeights, FTKV         int64
	WAAEncWeights, WAAEncKV int64
	WAADecWeights, WAADecKV int64
	WAAPolicy               string
	EncGPUs, DecGPUs        int
}

// Figure9 measures the per-GPU memory usage of FT versus WAA's encoder
// and decoder GPUs at the infinite latency bound (§7.3).
func (c *Context) Figure9() ([]MemoryCell, error) {
	var cells []MemoryCell
	type combo struct {
		m    model.Model
		cl   hw.Cluster
		gpus int
	}
	combos := []combo{{model.OPT13B, hw.A40Cluster, 4}, {model.GPT3101B, hw.A100Cluster, 16}}
	if c.Quick {
		combos = combos[:1]
	}
	for _, cb := range combos {
		for _, task := range []workload.Task{workload.Translation, workload.CodeGeneration} {
			d, err := c.Deploy(cb.m, cb.cl, cb.gpus, task)
			if err != nil {
				return nil, err
			}
			// FT at its max feasible batch (LB = inf).
			ft, err := baselines.New(baselines.FT, d.Model, d.Cluster, d.Prof)
			if err != nil {
				return nil, err
			}
			b := ft.MaxFeasibleBatch(d.In.Mean(), d.Task.Out.Max, 512)
			reqs, err := c.RequestStream(task, 0)
			if err != nil {
				return nil, err
			}
			ftRes, err := ft.Run(max(b, 4), reqs, d.Task.Out.Max)
			if err != nil {
				return nil, err
			}
			ftWeights := ftWeightBytes(d)
			cell := MemoryCell{
				Model: cb.m.Name, Task: task.ID,
				FTWeights: ftWeights, FTKV: ftRes.PeakMem - ftWeights,
			}

			// WAA at its unconstrained optimum.
			res, err := d.Sch.FindBest([]sched.Policy{sched.WAAC, sched.WAAM}, math.Inf(1))
			if err != nil {
				return nil, err
			}
			if res.Found {
				est := res.Best
				cell.WAAPolicy = est.Config.Policy.String()
				cell.EncGPUs, cell.DecGPUs = est.Alloc.EncGPUs, est.Alloc.DecGPUs
				encW, decW := waaWeightBytes(d, est.Alloc)
				cell.WAAEncWeights, cell.WAADecWeights = encW, decW
				cell.WAAEncKV = est.PeakEncMem - encW
				cell.WAADecKV = est.PeakDecMem - decW
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// ftWeightBytes returns the weight bytes on FT's most loaded GPU: all
// layers sharded over TP within the node and PP across nodes.
func ftWeightBytes(d *Deployment) int64 {
	tp := min(d.Cluster.GPUsPerNode, d.Cluster.TotalGPUs())
	pp := d.Cluster.TotalGPUs() / tp
	layers := (d.Model.TotalLayers() + pp - 1) / pp
	return int64(layers) * d.Model.DecLayerBytes() / int64(tp)
}

func waaWeightBytes(d *Deployment, alloc sched.Allocation) (enc, dec int64) {
	for _, st := range alloc.Stages {
		w := sched.WeightBytesPerGPU(d.Model, st)
		switch st.Role {
		case sched.RoleEncode:
			if w > enc {
				enc = w
			}
		case sched.RoleDecode:
			if w > dec {
				dec = w
			}
		}
	}
	return enc, dec
}

// Figure10 evaluates FT and ExeGPT on the real-world dataset emulations
// (WMT, Alpaca, CNN/DailyMail) with two latency bounds, estimating the
// distribution from 10% of the data and evaluating on the rest (§7.5).
func (c *Context) Figure10() ([]ThroughputCell, error) {
	var cells []ThroughputCell
	type combo struct {
		m    model.Model
		cl   hw.Cluster
		gpus int
	}
	combos := []combo{{model.OPT13B, hw.A40Cluster, 4}, {model.GPT339B, hw.A40Cluster, 16}}
	if c.Quick {
		combos = combos[:1]
	}
	datasets := workload.RealDatasets
	if c.Quick {
		datasets = datasets[:1]
	}
	for _, cb := range combos {
		for _, task := range datasets {
			// Draw the full stream first, split 10/90.
			g, err := workload.NewGenerator(task, c.Seed)
			if err != nil {
				return nil, err
			}
			all := g.Batch(c.Requests * 10 / 9)
			est, eval := workload.Split(all, 0.1)
			inObs, outObs, err := workload.EstimateDists(est)
			if err != nil {
				return nil, err
			}
			d, err := c.Deploy(cb.m, cb.cl, cb.gpus, task)
			if err != nil {
				return nil, err
			}
			// Schedule against the observed distributions.
			d.Sim.In, d.Sim.Out = inObs, outObs
			bounds, err := d.FTBounds()
			if err != nil {
				return nil, err
			}
			use := []float64{bounds[1], math.Inf(1)} // 30% and infinity
			pols := []struct {
				name     string
				policies []sched.Policy
			}{
				{"ExeGPT-RRA", []sched.Policy{sched.RRA}},
				{"ExeGPT-WAA", []sched.Policy{sched.WAAC, sched.WAAM}},
			}
			outsByPol := make([][]RunOutcome, len(pols))
			for pi, pol := range pols {
				if outsByPol[pi], err = d.ScheduleAndRunMany(pol.policies, use, eval); err != nil {
					return nil, err
				}
			}
			for bi, bound := range use {
				ftTput, err := d.RunBaseline(baselines.FT, bound, eval)
				if err != nil {
					return nil, err
				}
				cells = append(cells, ThroughputCell{
					Model: cb.m.Name, Task: task.ID, Bound: bound,
					System: "FT", Tput: ftTput, Feasible: ftTput > 0,
				})
				for pi, pol := range pols {
					cells = append(cells, ThroughputCell{
						Model: cb.m.Name, Task: task.ID, Bound: bound,
						System: pol.name, Tput: outsByPol[pi][bi].Tput, Feasible: outsByPol[pi][bi].OK,
					})
				}
			}
		}
	}
	return cells, nil
}

// ShiftCell is one bar group of Figure 11: the throughput of the
// non-adjusted versus re-optimized schedule and the p99 latency under a
// shifted output distribution.
type ShiftCell struct {
	// Dimension is "avg", "std" or "skew"; Value the multiplier (avg,
	// std) or absolute skewness.
	Dimension string
	Value     float64
	// NonAdjustedTput runs the stale schedule; OptimalTput re-schedules.
	NonAdjustedTput float64
	OptimalTput     float64
	// P99Latency of the stale schedule, normalized to the unshifted
	// distribution's p99 latency.
	P99LatencyNorm float64
	// MeetsBound reports whether the stale schedule still satisfies the
	// original latency bound at p99.
	MeetsBound bool
}

// Figure11 evaluates WAA under changing sequence distributions: the
// schedule is fixed for the base translation distribution, then the
// actual distribution's average, standard deviation, or skewness
// changes (§7.6).
func (c *Context) Figure11() ([]ShiftCell, error) {
	task := workload.Translation
	d, err := c.Deploy(model.OPT13B, hw.A40Cluster, 4, task)
	if err != nil {
		return nil, err
	}
	bounds, err := d.FTBounds()
	if err != nil {
		return nil, err
	}
	bound := bounds[1] // bottom 30% (§7.6)

	// Base schedule (WAA only; RRA adapts without re-allocation, §7.6).
	// The 30% bound and its 70% fallback share one amortized search.
	cand, err := d.Sch.FindBestMany([]sched.Policy{sched.WAAC, sched.WAAM},
		[]float64{bounds[1], bounds[2]})
	if err != nil {
		return nil, err
	}
	base := cand[0]
	if !base.Found {
		// Fall back to the looser bound if 30% is unreachable for WAA.
		bound = bounds[2]
		base = cand[1]
		if !base.Found {
			return nil, fmt.Errorf("experiments: no feasible WAA schedule for figure 11")
		}
	}
	baseReqs, err := c.RequestStream(task, 0)
	if err != nil {
		return nil, err
	}
	baseRun, err := d.Run.Run(base.Best.Config, base.Best.Alloc, baseReqs)
	if err != nil {
		return nil, err
	}
	baseP99 := baseRun.Stats.P99Lat

	type variant struct {
		dim   string
		value float64
		out   *seqdist.Dist
	}
	var variants []variant
	mean, std := d.Out.Mean(), d.Out.Std()
	avgFactors := []float64{0.7, 0.85, 1.15, 1.3}
	stdFactors := []float64{0.7, 1.3}
	skews := []float64{-0.41, -0.2, 0.2, 0.41}
	if c.Quick {
		avgFactors = []float64{0.7, 1.3}
		stdFactors = []float64{1.3}
		skews = []float64{0.41}
	}
	for _, f := range avgFactors {
		dist, err := seqdist.NewTruncNormal(mean*f, std, int(float64(task.Out.Max)*math.Max(f, 1)))
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{"avg", f, dist})
	}
	for _, f := range stdFactors {
		dist, err := seqdist.NewTruncNormal(mean, std*f, task.Out.Max)
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{"std", f, dist})
	}
	for _, sk := range skews {
		dist, err := seqdist.NewSkewNormalMoments(mean, std, sk, task.Out.Max+160)
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{"skew", sk, dist})
	}

	var cells []ShiftCell
	for _, v := range variants {
		// Sample evaluation requests from the shifted distribution.
		shifted := task
		reqs, err := shiftedRequests(c, shifted, v.out)
		if err != nil {
			return nil, err
		}
		// Non-adjusted: stale schedule.
		staleRun, err := d.Run.Run(base.Best.Config, base.Best.Alloc, reqs)
		var staleTput, p99 float64
		if err == nil {
			staleTput = staleRun.Stats.EffectiveTput()
			p99 = staleRun.Stats.P99Lat
		}
		// Optimal: re-schedule for the shifted distribution.
		simShift, err := core.NewSimulator(d.Model, d.Cluster, d.Prof, d.In, v.out)
		if err != nil {
			return nil, err
		}
		schShift := core.NewScheduler(simShift)
		schShift.Workers = c.Workers
		if c.Quick {
			schShift.MaxBatch = 512
			schShift.MaxND = 32
		}
		opt, err := schShift.FindBest([]sched.Policy{sched.WAAC, sched.WAAM}, bound)
		if err != nil {
			return nil, err
		}
		optTput := 0.0
		if opt.Found {
			if optRun, err := d.Run.Run(opt.Best.Config, opt.Best.Alloc, reqs); err == nil {
				optTput = optRun.Stats.EffectiveTput()
			}
		}
		cells = append(cells, ShiftCell{
			Dimension: v.dim, Value: v.value,
			NonAdjustedTput: staleTput, OptimalTput: optTput,
			P99LatencyNorm: p99 / math.Max(baseP99, 1e-12),
			MeetsBound:     p99 < bound,
		})
	}
	return cells, nil
}

// shiftedRequests samples correlated requests with a replaced output
// marginal.
func shiftedRequests(c *Context, task workload.Task, out *seqdist.Dist) ([]workload.Request, error) {
	in, err := task.In.Dist()
	if err != nil {
		return nil, err
	}
	biv := seqdist.Bivariate{In: in, Out: out, Rho: 0}
	r := rand.New(rand.NewSource(c.Seed + 1))
	reqs := make([]workload.Request, c.Requests)
	for i := range reqs {
		x, y := biv.Sample(r)
		reqs[i] = workload.Request{ID: i, InLen: x, OutLen: y}
	}
	return reqs, nil
}
