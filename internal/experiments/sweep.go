// Sweep: a grid evaluation over deployments (model × cluster size) and
// tasks, parallel across deployments. Each (deployment, task) cell gets
// its own Simulator, Scheduler and runner Engine, so cells are
// independent; only the memoized profile Table is shared, and that is
// immutable once built. Results are reduced in grid order, so the
// output is deterministic regardless of which worker finishes first.
package experiments

import (
	"fmt"
	"runtime"

	"exegpt/internal/baselines"
	"exegpt/internal/par"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// SweepRow is one measured cell of a sweep: one system on one
// (deployment, task, latency bound) combination.
type SweepRow struct {
	Model   string
	Cluster string
	GPUs    int
	Task    string
	Bound   float64
	System  string
	Tput    float64
	// Feasible is false for the paper's "NS" entries.
	Feasible bool
}

// SweepGrid names the grid to evaluate. Zero-valued fields fall back to
// the paper's defaults (Table 2 deployments, the five synthetic tasks).
type SweepGrid struct {
	Deployments []sched.Deployment
	Tasks       []workload.Task
	// Policies selects the ExeGPT policy groups to schedule; empty runs
	// RRA and WAA (the paper's two families).
	Policies [][]sched.Policy
	// Workers bounds the number of deployments evaluated concurrently;
	// 0 means runtime.GOMAXPROCS(0).
	Workers int
}

// policyGroupName labels a policy group the way the figures do.
func policyGroupName(ps []sched.Policy) string {
	for _, p := range ps {
		if p.IsWAA() {
			return "ExeGPT-WAA"
		}
	}
	return "ExeGPT-RRA"
}

// defaultPolicyGroups mirrors the figure comparisons: RRA alone and the
// two WAA variants together.
func defaultPolicyGroups() [][]sched.Policy {
	return [][]sched.Policy{
		{sched.RRA},
		{sched.WAAC, sched.WAAM},
	}
}

// Sweep evaluates FT plus every requested ExeGPT policy group on every
// (deployment, task) cell under the FT-derived latency bounds. Cells
// run concurrently on a bounded worker pool: the grid is flattened in
// canonical (deployment, task) order, each cell appends only to its own
// slot, and rows are concatenated in grid order afterwards.
func (c *Context) Sweep(grid SweepGrid) ([]SweepRow, error) {
	deps := grid.Deployments
	if len(deps) == 0 {
		deps = sched.DefaultDeployments
	}
	tasks := grid.Tasks
	if len(tasks) == 0 {
		tasks = workload.Tasks
	}
	groups := grid.Policies
	if len(groups) == 0 {
		groups = defaultPolicyGroups()
	}

	type cell struct {
		dep  sched.Deployment
		task workload.Task
	}
	var cells []cell
	for _, dep := range deps {
		for _, task := range tasks {
			cells = append(cells, cell{dep: dep, task: task})
		}
	}

	workers := grid.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	// Split the worker budget across the two parallelism levels instead
	// of multiplying them: `workers` cells run concurrently, and each
	// cell's scheduler gets the remaining share of the budget, so the
	// total stays at ~GOMAXPROCS runnable goroutines.
	schedWorkers := 1
	if workers > 0 {
		if schedWorkers = runtime.GOMAXPROCS(0) / workers; schedWorkers < 1 {
			schedWorkers = 1
		}
	}

	results := make([][]SweepRow, len(cells))
	errs := make([]error, len(cells))
	par.ForEach(len(cells), workers, func(i int) {
		cl := cells[i]
		results[i], errs[i] = c.sweepCell(cl.dep, cl.task, groups, schedWorkers)
	})

	var rows []SweepRow
	for i := range cells {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiments: sweep %s/%s on %d GPUs: %w",
				cells[i].dep.Model.Name, cells[i].task.ID, cells[i].dep.GPUs, errs[i])
		}
		rows = append(rows, results[i]...)
	}
	return rows, nil
}

// sweepCell measures one (deployment, task) cell across its bounds.
// schedWorkers overrides the cell scheduler's pool size so the sweep
// controls the total parallelism budget.
func (c *Context) sweepCell(dep sched.Deployment, task workload.Task, groups [][]sched.Policy, schedWorkers int) ([]SweepRow, error) {
	d, err := c.Deploy(dep.Model, dep.Cluster, dep.GPUs, task)
	if err != nil {
		return nil, err
	}
	d.Sch.Workers = schedWorkers
	bounds, err := d.FTBounds()
	if err != nil {
		return nil, err
	}
	if c.Quick {
		bounds = []float64{bounds[1], bounds[3]}
	}
	reqs, err := c.RequestStream(task, 0)
	if err != nil {
		return nil, err
	}
	// Schedule each policy group across every bound in one amortized
	// multi-bound search before assembling rows in per-bound order.
	outsByGroup := make([][]RunOutcome, len(groups))
	for gi, group := range groups {
		// WAA needs a dedicated decode side; groups that cannot apply
		// (e.g. WAA with every GPU already required for encode) come
		// back as not-found outcomes, the paper's "NS".
		outs, err := d.ScheduleAndRunMany(group, bounds, reqs)
		if err != nil {
			return nil, err
		}
		outsByGroup[gi] = outs
	}
	var rows []SweepRow
	base := SweepRow{
		Model: dep.Model.Name, Cluster: dep.Cluster.Name,
		GPUs: dep.GPUs, Task: task.ID,
	}
	for bi, bound := range bounds {
		ftTput, err := d.RunBaseline(baselines.FT, bound, reqs)
		if err != nil {
			return nil, err
		}
		row := base
		row.Bound, row.System, row.Tput, row.Feasible = bound, "FT", ftTput, ftTput > 0
		rows = append(rows, row)
		for gi, group := range groups {
			out := outsByGroup[gi][bi]
			row := base
			row.Bound, row.System, row.Tput, row.Feasible = bound, policyGroupName(group), out.Tput, out.OK
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatSweep renders sweep rows as a fixed-width table.
func FormatSweep(rows []SweepRow) string {
	t := newTable("Model", "Cluster", "GPUs", "Task", "LB", "System", "Tput (seq/s)")
	for _, r := range rows {
		t.addRow(r.Model, r.Cluster, fmt.Sprint(r.GPUs), r.Task,
			fmtBound(r.Bound), r.System, fmtTput(r.Tput, r.Feasible))
	}
	return t.String()
}
