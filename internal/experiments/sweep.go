// Sweep: a grid evaluation over deployments (model × cluster size) and
// tasks, parallel across deployments. The grid flattens into an
// enumerable cell list in canonical (deployment, task) order; each cell
// gets its own Simulator, Scheduler and runner Engine, so cells are
// independent; only the memoized profile Table is shared, and that is
// immutable once built. Results are reduced in grid order, so the
// output is deterministic regardless of which worker finishes first.
//
// The same cell list is the unit of multi-process sharding: SweepShard
// evaluates the cells whose index falls in one round-robin partition,
// and internal/distsweep merges per-shard results back into exactly the
// rows a single-process Sweep produces (GridFingerprint guards against
// mixing shards from different grids or contexts).
package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"

	"exegpt/internal/baselines"
	"exegpt/internal/core"
	"exegpt/internal/par"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// SweepRow is one measured cell of a sweep: one system on one
// (deployment, task, latency bound) combination.
type SweepRow struct {
	Model   string
	Cluster string
	GPUs    int
	Task    string
	Bound   float64
	System  string
	Tput    float64
	// Feasible is false for the paper's "NS" entries.
	Feasible bool
}

// SweepGrid names the grid to evaluate. Zero-valued fields fall back to
// the paper's defaults (Table 2 deployments, the five synthetic tasks).
type SweepGrid struct {
	Deployments []sched.Deployment
	Tasks       []workload.Task
	// Policies selects the ExeGPT policy groups to schedule; empty runs
	// RRA and WAA (the paper's two families).
	Policies [][]sched.Policy
	// Workers bounds the number of deployments evaluated concurrently;
	// 0 means runtime.GOMAXPROCS(0).
	Workers int
}

// resolved returns the grid with every defaulted field filled in, so
// that enumeration, sharding and fingerprinting all see the same grid
// whether it was spelled out or left to the defaults.
func (g SweepGrid) resolved() ([]sched.Deployment, []workload.Task, [][]sched.Policy) {
	deps := g.Deployments
	if len(deps) == 0 {
		deps = sched.DefaultDeployments
	}
	tasks := g.Tasks
	if len(tasks) == 0 {
		tasks = workload.Tasks
	}
	groups := g.Policies
	if len(groups) == 0 {
		groups = defaultPolicyGroups()
	}
	return deps, tasks, groups
}

// SweepCell is one enumerable (deployment, task) cell of a grid. Index
// is the cell's position in canonical (deployment, task) order; shard
// partitioning and result merging are both keyed on it.
type SweepCell struct {
	Index int
	Dep   sched.Deployment
	Task  workload.Task
}

// Cells flattens the grid into its canonical cell list.
func (g SweepGrid) Cells() []SweepCell {
	deps, tasks, _ := g.resolved()
	cells := make([]SweepCell, 0, len(deps)*len(tasks))
	for _, dep := range deps {
		for _, task := range tasks {
			cells = append(cells, SweepCell{Index: len(cells), Dep: dep, Task: task})
		}
	}
	return cells
}

// GroupFrontier is the latency→throughput Pareto frontier one policy
// group's schedule search discovered on one cell. Frontiers for the
// same (deployment, group) merge order-independently across cells and
// shards via core.Frontier.Merge.
type GroupFrontier struct {
	Model    string        `json:"model"`
	Cluster  string        `json:"cluster"`
	GPUs     int           `json:"gpus"`
	Task     string        `json:"task"`
	Group    string        `json:"group"`
	Frontier core.Frontier `json:"frontier"`
}

// CellResult is everything one evaluated cell contributes to a sweep:
// its rows in bound-major order, the schedule-search evaluation count
// (the §7.7 cost metric — deterministic, so shard merges can be checked
// bit-identical against a single-process run), and the per-group
// frontiers.
type CellResult struct {
	Cell      int             `json:"cell"`
	Rows      []SweepRow      `json:"rows"`
	Evals     int             `json:"evals"`
	Frontiers []GroupFrontier `json:"frontiers"`
}

// GridFingerprint hashes everything that determines a sweep's output:
// the resolved grid (deployments, tasks, policy groups) and the
// context's sampling/search settings. Two runs agree on the fingerprint
// iff their shard results can be merged into one coherent sweep.
// Worker counts and cache paths are deliberately excluded: they change
// only wall time, never results.
func (c *Context) GridFingerprint(grid SweepGrid) (string, error) {
	deps, tasks, groups := grid.resolved()
	type depKey struct {
		Model   string
		Cluster string
		GPUs    int
	}
	desc := struct {
		Seed        int64
		Requests    int
		Quick       bool
		Deployments []depKey
		Tasks       []string
		Policies    [][]sched.Policy
	}{Seed: c.Seed, Requests: c.Requests, Quick: c.Quick, Policies: groups}
	for _, d := range deps {
		desc.Deployments = append(desc.Deployments,
			depKey{Model: d.Model.Name, Cluster: d.Cluster.Name, GPUs: d.GPUs})
	}
	for _, t := range tasks {
		desc.Tasks = append(desc.Tasks, t.ID)
	}
	data, err := json.Marshal(desc)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// policyGroupName labels a policy group the way the figures do: the
// family Group of its members, preferring a dedicated-pool family when
// the group mixes (the figures fold RRA into the WAA comparison).
func policyGroupName(ps []sched.Policy) string {
	name := "ExeGPT-RRA"
	for _, p := range ps {
		f, ok := sched.FamilyOf(p)
		if !ok {
			continue
		}
		if f.Caps.DedicatedPools {
			return f.Group
		}
		name = f.Group
	}
	return name
}

// defaultPolicyGroups mirrors the figure comparisons: RRA alone and the
// two WAA variants together.
func defaultPolicyGroups() [][]sched.Policy {
	return [][]sched.Policy{
		{sched.RRA},
		{sched.WAAC, sched.WAAM},
	}
}

// Sweep evaluates FT plus every requested ExeGPT policy group on every
// (deployment, task) cell under the FT-derived latency bounds. It is
// the single-shard case of SweepShard with the per-cell metadata
// flattened away.
func (c *Context) Sweep(grid SweepGrid) ([]SweepRow, error) {
	cells, err := c.SweepShard(grid, 1, 0)
	if err != nil {
		return nil, err
	}
	var rows []SweepRow
	for _, cr := range cells {
		rows = append(rows, cr.Rows...)
	}
	return rows, nil
}

// SweepShard evaluates the shard'th of shards round-robin partitions of
// the grid's cell list: cell i belongs to shard i%shards. Shards are
// disjoint and cover the grid, so concatenating the CellResults of all
// shards in cell order reproduces a single-process Sweep exactly —
// rows, Evals and frontiers included (every cell is evaluated
// independently and all search results are deterministic across worker
// counts).
func (c *Context) SweepShard(grid SweepGrid, shards, shard int) ([]CellResult, error) {
	if shards < 1 {
		return nil, fmt.Errorf("experiments: shard count %d < 1", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("experiments: shard index %d out of range 0..%d", shard, shards-1)
	}
	var indices []int
	for i := range grid.Cells() {
		if i%shards == shard {
			indices = append(indices, i)
		}
	}
	return c.SweepCells(grid, indices)
}

// SweepCells evaluates an explicit set of grid cells, named by their
// canonical index, and returns their CellResults in the given order.
// It is the unit the dynamic work-stealing dispatcher leases: every
// cell is evaluated exactly as a single-process Sweep would (results
// are deterministic across worker counts and across any partition of
// the grid into SweepCells calls). Cells run concurrently on a bounded
// worker pool: each cell writes only to its own slot.
func (c *Context) SweepCells(grid SweepGrid, indices []int) ([]CellResult, error) {
	_, _, groups := grid.resolved()
	all := grid.Cells()
	mine := make([]SweepCell, 0, len(indices))
	seen := make(map[int]bool, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(all) {
			return nil, fmt.Errorf("experiments: cell index %d out of range 0..%d", i, len(all)-1)
		}
		if seen[i] {
			return nil, fmt.Errorf("experiments: duplicate cell index %d", i)
		}
		seen[i] = true
		mine = append(mine, all[i])
	}
	if len(mine) == 0 {
		return nil, nil
	}

	workers := grid.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(mine) {
		workers = len(mine)
	}
	// Split the worker budget across the two parallelism levels instead
	// of multiplying them: `workers` cells run concurrently, and each
	// cell's scheduler gets the remaining share of the budget, so the
	// total stays at ~GOMAXPROCS runnable goroutines.
	schedWorkers := 1
	if workers > 0 {
		if schedWorkers = runtime.GOMAXPROCS(0) / workers; schedWorkers < 1 {
			schedWorkers = 1
		}
	}

	results := make([]CellResult, len(mine))
	errs := make([]error, len(mine))
	par.ForEach(len(mine), workers, func(i int) {
		results[i], errs[i] = c.sweepCell(mine[i], groups, schedWorkers)
	})
	for i := range mine {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiments: sweep %s/%s on %d GPUs: %w",
				mine[i].Dep.Model.Name, mine[i].Task.ID, mine[i].Dep.GPUs, errs[i])
		}
	}
	return results, nil
}

// sweepCell measures one (deployment, task) cell across its bounds.
// schedWorkers overrides the cell scheduler's pool size so the sweep
// controls the total parallelism budget.
func (c *Context) sweepCell(cl SweepCell, groups [][]sched.Policy, schedWorkers int) (CellResult, error) {
	cr := CellResult{Cell: cl.Index}
	dep, task := cl.Dep, cl.Task
	d, err := c.Deploy(dep.Model, dep.Cluster, dep.GPUs, task)
	if err != nil {
		return cr, err
	}
	d.Sch.Workers = schedWorkers
	bounds, err := d.FTBounds()
	if err != nil {
		return cr, err
	}
	if c.Quick {
		bounds = []float64{bounds[1], bounds[3]}
	}
	reqs, err := c.RequestStream(task, 0)
	if err != nil {
		return cr, err
	}
	// Schedule each policy group across every bound in one amortized
	// multi-bound search before assembling rows in per-bound order.
	// Each search leaves its eval count and merged Pareto frontier on
	// the scheduler; the cell carries both so shard merges can be
	// verified against (and aggregated like) a single-process run.
	outsByGroup := make([][]RunOutcome, len(groups))
	for gi, group := range groups {
		// WAA needs a dedicated decode side; groups that cannot apply
		// (e.g. WAA with every GPU already required for encode) come
		// back as not-found outcomes, the paper's "NS".
		outs, err := d.ScheduleAndRunMany(group, bounds, reqs)
		if err != nil {
			return cr, err
		}
		outsByGroup[gi] = outs
		cr.Evals += d.Sch.Evals
		cr.Frontiers = append(cr.Frontiers, GroupFrontier{
			Model: dep.Model.Name, Cluster: dep.Cluster.Name, GPUs: dep.GPUs,
			Task: task.ID, Group: policyGroupName(group), Frontier: d.Sch.Frontier,
		})
	}
	base := SweepRow{
		Model: dep.Model.Name, Cluster: dep.Cluster.Name,
		GPUs: dep.GPUs, Task: task.ID,
	}
	for bi, bound := range bounds {
		ftTput, err := d.RunBaseline(baselines.FT, bound, reqs)
		if err != nil {
			return cr, err
		}
		row := base
		row.Bound, row.System, row.Tput, row.Feasible = bound, "FT", ftTput, ftTput > 0
		cr.Rows = append(cr.Rows, row)
		for gi, group := range groups {
			out := outsByGroup[gi][bi]
			row := base
			row.Bound, row.System, row.Tput, row.Feasible = bound, policyGroupName(group), out.Tput, out.OK
			cr.Rows = append(cr.Rows, row)
		}
	}
	return cr, nil
}

// sweepRowWire mirrors SweepRow on the wire with the latency bound
// carried as a string: JSON has no ±Inf, and the relaxed bound is
// math.Inf(1). strconv's shortest 'g' format round-trips every float64
// bit-exactly, which the shard-equivalence guarantee relies on.
type sweepRowWire struct {
	Model    string  `json:"model"`
	Cluster  string  `json:"cluster"`
	GPUs     int     `json:"gpus"`
	Task     string  `json:"task"`
	Bound    string  `json:"bound"`
	System   string  `json:"system"`
	Tput     float64 `json:"tput"`
	Feasible bool    `json:"feasible"`
}

// MarshalJSON implements json.Marshaler.
func (r SweepRow) MarshalJSON() ([]byte, error) {
	return json.Marshal(sweepRowWire{
		Model: r.Model, Cluster: r.Cluster, GPUs: r.GPUs, Task: r.Task,
		Bound:  strconv.FormatFloat(r.Bound, 'g', -1, 64),
		System: r.System, Tput: r.Tput, Feasible: r.Feasible,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *SweepRow) UnmarshalJSON(data []byte) error {
	var w sweepRowWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	bound, err := strconv.ParseFloat(w.Bound, 64)
	if err != nil {
		return fmt.Errorf("experiments: bad sweep-row bound %q: %w", w.Bound, err)
	}
	*r = SweepRow{
		Model: w.Model, Cluster: w.Cluster, GPUs: w.GPUs, Task: w.Task,
		Bound: bound, System: w.System, Tput: w.Tput, Feasible: w.Feasible,
	}
	return nil
}

// FormatSweep renders sweep rows as a fixed-width table.
func FormatSweep(rows []SweepRow) string {
	t := newTable("Model", "Cluster", "GPUs", "Task", "LB", "System", "Tput (seq/s)")
	for _, r := range rows {
		t.addRow(r.Model, r.Cluster, fmt.Sprint(r.GPUs), r.Task,
			fmtBound(r.Bound), r.System, fmtTput(r.Tput, r.Feasible))
	}
	return t.String()
}
