package costmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"exegpt/internal/hw"
	"exegpt/internal/model"
)

func engine(t *testing.T, m model.Model) *Engine {
	t.Helper()
	e, err := New(m, hw.A40)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidates(t *testing.T) {
	if _, err := New(model.Model{}, hw.A40); err == nil {
		t.Fatal("expected error for invalid model")
	}
	if _, err := New(model.OPT13B, hw.GPUSpec{Name: "bad"}); err == nil {
		t.Fatal("expected error for invalid GPU")
	}
}

func TestZeroWorkIsFree(t *testing.T) {
	e := engine(t, model.OPT13B)
	if e.EncodeRestTime(0, 1) != 0 || e.EncodeAttnTime(0, 0, 1) != 0 ||
		e.DecodeRestTime(0, 1) != 0 || e.DecodeAttnTime(0, 0, 0, 1) != 0 ||
		e.EncodeLayerTime(0, 0, 1, hw.PCIe4x16) != 0 ||
		e.DecodeLayerTime(0, 0, 0, 1, hw.PCIe4x16) != 0 {
		t.Fatal("zero work should take zero time")
	}
}

// The central premise of the paper: input encoding is orders of magnitude
// more expensive than a single output-decoding iteration for the same
// batch of queries (§1).
func TestEncodeDominatesDecodeIteration(t *testing.T) {
	e := engine(t, model.OPT13B)
	batch, seq := 16, 256.0
	enc := e.EncodeLayerTime(batch*int(seq), seq, 1, hw.PCIe4x16)
	dec := e.DecodeLayerTime(batch, seq, 0, 1, hw.PCIe4x16)
	if enc < 20*dec {
		t.Fatalf("encode %.3g not >> decode %.3g", enc, dec)
	}
}

// Small decode batches are dominated by weight streaming: doubling a
// small batch should cost far less than 2x (throughput incentive for
// large decoding batches, §2).
func TestSmallBatchInefficiency(t *testing.T) {
	e := engine(t, model.OPT13B)
	t1 := e.DecodeRestTime(1, 1)
	t32 := e.DecodeRestTime(32, 1)
	if t32 > 4*t1 {
		t.Fatalf("batch 32 time %.3g vs batch 1 %.3g: weight streaming should amortize", t32, t1)
	}
	// Per-query time must strictly improve with batch.
	if t32/32 >= t1 {
		t.Fatal("per-query decode time should drop with batch size")
	}
}

// Tensor parallelism reduces per-layer latency but adds sync overhead:
// TP=2 should be faster than TP=1 for a big layer, but not 2x faster.
func TestTPSpeedupSublinear(t *testing.T) {
	e := engine(t, model.GPT3175B)
	link := hw.NVLink3
	t1 := e.DecodeLayerTime(64, 300, 0, 1, link)
	t2 := e.DecodeLayerTime(64, 300, 0, 2, link)
	t8 := e.DecodeLayerTime(64, 300, 0, 8, link)
	if t2 >= t1 {
		t.Fatalf("TP=2 (%.3g) should beat TP=1 (%.3g)", t2, t1)
	}
	if t2 < t1/2 {
		t.Fatalf("TP=2 speedup should be sublinear: %.3g vs %.3g", t2, t1)
	}
	if t8 >= t2 {
		t.Fatalf("TP=8 (%.3g) should beat TP=2 (%.3g) on NVLink", t8, t2)
	}
}

// Over slow links, high TP degrees lose to low ones for small batches
// (sync dominated) — this is why partial tensor parallelism matters.
func TestTPOverSlowLinkCanHurt(t *testing.T) {
	e := engine(t, model.OPT13B)
	slow := hw.Link{Name: "slow", Latency: 50e-6, Bandwidth: 2e9}
	t1 := e.DecodeLayerTime(1, 64, 0, 1, slow)
	t8 := e.DecodeLayerTime(1, 64, 0, 8, slow)
	if t8 <= t1 {
		t.Fatalf("TP=8 over slow link (%.3g) should lose to TP=1 (%.3g) at batch 1", t8, t1)
	}
}

func TestDecodeAttnGrowsWithContext(t *testing.T) {
	e := engine(t, model.OPT13B)
	short := e.DecodeAttnTime(16, 64, 0, 1)
	long := e.DecodeAttnTime(16, 1024, 0, 1)
	if long <= short {
		t.Fatalf("attention time should grow with context: %.3g vs %.3g", long, short)
	}
}

func TestCrossAttentionCost(t *testing.T) {
	e := engine(t, model.T511B)
	with := e.DecodeAttnTime(16, 32, 256, 1)
	without := e.DecodeAttnTime(16, 32, 0, 1)
	if with <= without {
		t.Fatal("cross-attention reads should add time for enc-dec models")
	}
}

func TestPPSendAndKVTransfer(t *testing.T) {
	e := engine(t, model.OPT13B)
	if e.PPSendTime(0, hw.PCIe4x16) != 0 {
		t.Fatal("empty send should be free")
	}
	s1 := e.PPSendTime(256, hw.PCIe4x16)
	s2 := e.PPSendTime(512, hw.PCIe4x16)
	if s2 <= s1 {
		t.Fatal("send time should grow with tokens")
	}
	// KV transfer goes through host memory: two DMA hops.
	k := e.KVTransferTime(256)
	direct := hw.P2PTime(hw.HostDMA, int64(256)*e.Model.KVBytesPerToken())
	if k < 2*direct*0.99 {
		t.Fatalf("KV transfer %.3g should be ~2x one hop %.3g", k, direct)
	}
}

// A100 outpaces A40 on identical work.
func TestA100FasterThanA40(t *testing.T) {
	m := model.GPT3101B
	a40, err := New(m, hw.A40)
	if err != nil {
		t.Fatal(err)
	}
	a100, err := New(m, hw.A100)
	if err != nil {
		t.Fatal(err)
	}
	if a100.EncodeLayerTime(4096, 256, 1, hw.NVLink3) >= a40.EncodeLayerTime(4096, 256, 1, hw.PCIe4x16) {
		t.Fatal("A100 should be faster")
	}
}

// Property: all kernel times are nonnegative and monotone in batch.
func TestQuickMonotoneInBatch(t *testing.T) {
	e := engine(t, model.GPT339B)
	f := func(a, b uint8, ctx uint16) bool {
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		c := float64(ctx%2048) + 1
		dl, dh := e.DecodeLayerTime(lo, c, 0, 1, hw.PCIe4x16), e.DecodeLayerTime(hi, c, 0, 1, hw.PCIe4x16)
		if dl < 0 || dh < 0 || dl > dh+1e-12 {
			return false
		}
		el, eh := e.EncodeLayerTime(lo, c, 1, hw.PCIe4x16), e.EncodeLayerTime(hi, c, 1, hw.PCIe4x16)
		return el >= 0 && eh >= 0 && el <= eh+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

// Property: latency decreases (or sync-dominates predictably) and
// per-shard work shrinks as TP grows over a fast link with large work.
func TestQuickTPMonotoneLargeWork(t *testing.T) {
	e := engine(t, model.GPT3175B)
	f := func(x uint8) bool {
		tps := []int{1, 2, 4, 8}
		batch := int(x)%64 + 64 // large batch
		prev := 1e18
		for _, tp := range tps {
			cur := e.DecodeLayerTime(batch, 512, 0, tp, hw.NVLink3)
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecodeLayerTime(b *testing.B) {
	e, _ := New(model.GPT3175B, hw.A100)
	for i := 0; i < b.N; i++ {
		_ = e.DecodeLayerTime(64, 300, 0, 8, hw.NVLink3)
	}
}
