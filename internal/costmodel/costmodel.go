// Package costmodel provides the analytical GPU kernel-timing model that
// substitutes for the paper's physical A40/A100 testbed.
//
// The paper's XProfiler measures, for a single encoder/decoder layer,
// (a) the attention kernel and (b) the rest of the layer, across tensor-
// parallel degrees, batch sizes and sequence lengths (§3). This package
// computes those same quantities from a roofline model:
//
//   - GEMMs ("rest of layer") take max(compute, weight+activation
//     streaming) time. At small batch the weight-streaming term dominates,
//     which reproduces the small-batch inefficiency that motivates large
//     decoding batches in the paper.
//   - Decode attention streams the entire key/value cache of every query
//     in the batch each iteration and is memory-bandwidth bound.
//   - Prefill (encoding) attention is compute bound with a lower
//     achievable efficiency than dense GEMMs.
//   - Each layer pays fixed kernel-launch overheads, and tensor-parallel
//     execution pays ring all-reduce synchronizations: two per encoder
//     layer and three per decoder layer (§2, Megatron scheme).
//
// All returned times are seconds for ONE layer on ONE GPU of the given
// spec at the given tensor-parallel degree.
package costmodel

import (
	"fmt"

	"exegpt/internal/hw"
	"exegpt/internal/model"
)

// Tunables of the roofline model. They are properties of the kernel
// implementations (CUTLASS/cuBLAS-class), not of a specific GPU.
const (
	// GEMMEff is the peak fraction of tensor-core throughput dense GEMMs
	// achieve at large workload.
	GEMMEff = 0.55
	// AttnEff is the achievable fraction for the prefill attention kernel.
	AttnEff = 0.30
	// GEMMKernelsPerLayer counts launched kernels in "rest of layer"
	// (QKV, attn-out, 2 FFN GEMMs, layernorms, residual adds, softmax).
	GEMMKernelsPerLayer = 9
	// CrossAttnExtraKernels are added for encoder-decoder cross-attention.
	CrossAttnExtraKernels = 3
	// ActBytesPerTokenFactor: activations read+written per token per layer
	// in units of Hidden * BytesPerParam.
	ActBytesPerTokenFactor = 8
)

// Engine computes kernel times for one model on one GPU spec.
type Engine struct {
	Model model.Model
	GPU   hw.GPUSpec
}

// New returns an Engine after validating the model.
func New(m model.Model, gpu hw.GPUSpec) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if gpu.PeakFLOPS <= 0 || gpu.MemBandwidth <= 0 {
		return nil, fmt.Errorf("costmodel: invalid GPU spec %q", gpu.Name)
	}
	return &Engine{Model: m, GPU: gpu}, nil
}

// gemmTime returns the roofline time for GEMM work of the given FLOPs
// whose weights occupy weightBytes and whose activations move actBytes,
// all already divided per tensor-parallel shard by the caller.
func (e *Engine) gemmTime(flops float64, weightBytes, actBytes int64) float64 {
	compute := flops / (e.GPU.PeakFLOPS * GEMMEff)
	memory := float64(weightBytes+actBytes) / e.GPU.MemBandwidth
	if compute > memory {
		return compute
	}
	return memory
}

// launch returns the fixed overhead for n kernel launches.
func (e *Engine) launch(n int) float64 {
	return float64(n) * e.GPU.KernelLaunchOverhead
}

// layerWeightBytes returns the weight bytes of one layer of the given
// kind (encoder or decoder); decoder-only models use decoder layers for
// both phases.
func (e *Engine) layerWeightBytes(encoder bool) int64 {
	if encoder && !e.Model.DecoderOnly() {
		return e.Model.EncLayerBytes()
	}
	return e.Model.DecLayerBytes()
}

// actBytes approximates activation traffic for the given token count.
func (e *Engine) actBytes(tokens int) int64 {
	return int64(tokens) * int64(e.Model.Hidden) * int64(e.Model.BytesPerParam) * ActBytesPerTokenFactor
}

// EncodeRestTime returns the non-attention ("rest of layer") time of one
// encoding layer pass over totalTokens input tokens, sharded over tp GPUs.
func (e *Engine) EncodeRestTime(totalTokens, tp int) float64 {
	if totalTokens <= 0 {
		return 0
	}
	w := e.layerWeightBytes(true) / int64(tp)
	flops := 2 * float64(e.layerWeightBytes(true)/int64(e.Model.BytesPerParam)) * float64(totalTokens) / float64(tp)
	return e.gemmTime(flops, w, e.actBytes(totalTokens)/int64(tp)) + e.launch(GEMMKernelsPerLayer)
}

// EncodeAttnTime returns the attention-kernel time of one encoding layer
// over a batch of totalTokens tokens with the given mean sequence
// length, sharded over tp GPUs.
func (e *Engine) EncodeAttnTime(totalTokens int, meanSeqLen float64, tp int) float64 {
	if totalTokens <= 0 {
		return 0
	}
	flops := 4 * float64(totalTokens) * meanSeqLen * float64(e.Model.AttnDim) / float64(tp)
	compute := flops / (e.GPU.PeakFLOPS * AttnEff)
	mem := float64(e.actBytes(totalTokens)) / float64(tp) / e.GPU.MemBandwidth
	t := compute
	if mem > t {
		t = mem
	}
	return t + e.launch(2)
}

// EncodeLayerTime returns the full single-layer encoding time including
// tensor-parallel synchronization over the given link (two all-reduces
// of the activation tensor per encoder layer).
func (e *Engine) EncodeLayerTime(totalTokens int, meanSeqLen float64, tp int, link hw.Link) float64 {
	if totalTokens <= 0 {
		return 0
	}
	t := e.EncodeRestTime(totalTokens, tp) + e.EncodeAttnTime(totalTokens, meanSeqLen, tp)
	t += 2 * hw.AllReduceTime(link, tp, e.actBytes(totalTokens)/ActBytesPerTokenFactor)
	return t
}

// DecodeRestTime returns the non-attention time of one decoder layer for
// one decoding iteration of the given batch, sharded over tp GPUs.
func (e *Engine) DecodeRestTime(batch, tp int) float64 {
	if batch <= 0 {
		return 0
	}
	w := e.layerWeightBytes(false) / int64(tp)
	flops := 2 * float64(e.Model.DecLayerParams()) * float64(batch) / float64(tp)
	kernels := GEMMKernelsPerLayer
	if !e.Model.DecoderOnly() {
		kernels += CrossAttnExtraKernels
	}
	return e.gemmTime(flops, w, e.actBytes(batch)/int64(tp)) + e.launch(kernels)
}

// DecodeAttnTime returns the attention-kernel time of one decoder layer
// for one decoding iteration: a memory-bound sweep of the KV cache of
// every query in the batch (mean self-attention context ctxLen tokens,
// plus cross-attention over meanInputLen for encoder-decoder models).
func (e *Engine) DecodeAttnTime(batch int, ctxLen, meanInputLen float64, tp int) float64 {
	if batch <= 0 {
		return 0
	}
	bytes := float64(e.Model.DecodeAttnBytes(batch, ctxLen, meanInputLen)) / float64(tp)
	flops := e.Model.DecodeLayerFLOPs(batch, ctxLen, meanInputLen) / float64(tp)
	attnFlops := flops - 2*float64(e.Model.DecLayerParams())*float64(batch)/float64(tp)
	compute := attnFlops / (e.GPU.PeakFLOPS * AttnEff)
	mem := bytes / e.GPU.MemBandwidth
	t := mem
	if compute > t {
		t = compute
	}
	return t + e.launch(2)
}

// DecodeLayerTime returns the full single-layer decode-iteration time
// including tensor-parallel synchronization (three all-reduces per
// decoder layer).
func (e *Engine) DecodeLayerTime(batch int, ctxLen, meanInputLen float64, tp int, link hw.Link) float64 {
	if batch <= 0 {
		return 0
	}
	t := e.DecodeRestTime(batch, tp) + e.DecodeAttnTime(batch, ctxLen, meanInputLen, tp)
	t += 3 * hw.AllReduceTime(link, tp, e.actBytes(batch)/ActBytesPerTokenFactor)
	return t
}

// PPSendTime returns the time to hand a micro-batch's activations
// (totalTokens tokens) to the next pipeline stage over link.
func (e *Engine) PPSendTime(totalTokens int, link hw.Link) float64 {
	return hw.P2PTime(link, e.actBytes(totalTokens)/ActBytesPerTokenFactor)
}

// KVTransferTime returns the time to move the KV-cache entries of
// queries (tokens prompt tokens in total) from an encoding GPU to a
// decoding GPU via host memory, as XRunner does for WAA scheduling (§3):
// device-to-host followed by host-to-device over the host-DMA link.
func (e *Engine) KVTransferTime(tokens int) float64 {
	bytes := int64(tokens) * e.Model.KVBytesPerToken()
	return 2 * hw.P2PTime(hw.HostDMA, bytes)
}
