package serve

import (
	"fmt"
	"math"
	"strings"
)

// Summary renders the report for humans: run header, selected
// schedules, switch timeline, and the per-window time series.
func (r *Report) Summary() string {
	var b strings.Builder
	slo := "none"
	if r.SLO > 0 && !math.IsInf(r.SLO, 1) {
		slo = fmt.Sprintf("%.3fs", r.SLO)
	}
	fmt.Fprintf(&b, "serve: %s on %s, task %s — %s arrivals at %.2f req/s for %.0fs (seed %d, SLO %s)\n",
		r.Model, r.Cluster, r.Task, r.Arrival, r.Rate, r.Duration, r.Seed, slo)
	fmt.Fprintf(&b, "initial schedule: %s %s (%.2f seq/s at %.3fs)\n",
		r.Initial.Policy, r.Initial.Config, r.Initial.Tput, r.Initial.Latency)

	for _, d := range r.Decisions {
		verdict := "no switch"
		if d.Switched {
			verdict = "SWITCH"
		}
		fmt.Fprintf(&b, "t=%7.1f decision: rate %.2f req/s (drift %.0f%%/%.0f%%/%.0f%%) -> %s %s  gain %.1f vs cost %.1f req: %s (%s)\n",
			d.At, d.ObsRate, 100*d.RateDrift, 100*d.InDrift, 100*d.OutDrift,
			d.Candidate.Policy, d.Candidate.Config, d.GainReqs, d.CostReqs, verdict, d.Reason)
	}
	for _, s := range r.Switches {
		fmt.Fprintf(&b, "t=%7.1f switch: %s -> %s, drained %.1fs + %.1fs re-shard (backlog %d carried)\n",
			s.DecidedAt, s.From.Config, s.To.Config, s.DrainEnd-s.DecidedAt, s.ResumeAt-s.DrainEnd, s.Backlog)
	}

	b.WriteString("\nwindow     arrived  done  queue  rate    tput    p50      p99      viol\n")
	for _, w := range r.Windows {
		queue := "-"
		if w.QueueDepth >= 0 {
			queue = fmt.Sprintf("%d", w.QueueDepth)
		}
		fmt.Fprintf(&b, "%6.0f-%-5.0f %6d %5d %6s  %-6.2f  %-6.2f  %-7.3f  %-7.3f  %d\n",
			w.Start, w.End, w.Arrived, w.Completed, queue, w.Rate, w.Tput, w.P50Lat, w.P99Lat, w.SLOViolations)
	}

	t := r.Totals
	fmt.Fprintf(&b, "\ntotals: %d arrived, %d completed in %.1fs — %.2f seq/s total, %.2f seq/s steady\n",
		t.Arrived, t.Completed, t.DrainedAt, t.Throughput, t.SteadyTput)
	fmt.Fprintf(&b, "latency: mean %.3fs, p50 %.3fs, p99 %.3fs, max %.3fs; %d SLO violations\n",
		t.MeanLat, t.P50Lat, t.P99Lat, t.MaxLat, t.SLOViolations)
	fmt.Fprintf(&b, "controller: %d searches, %d decisions, %d switches\n",
		t.Searches, len(r.Decisions), t.Switches)
	return b.String()
}
