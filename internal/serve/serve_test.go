package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"exegpt/internal/experiments"
	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/workload"
)

// deploy builds a fresh quick deployment per run: the scheduler
// accumulates frontier/eval state across searches, so reports are only
// comparable when each starts from a clean deployment.
func deploy(t *testing.T, workers int) *experiments.Deployment {
	t.Helper()
	c := experiments.NewQuickContext()
	c.Workers = workers
	d, err := c.Deploy(model.OPT13B, hw.A40Cluster, 4, workload.Summarization)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// stepOpts is the shared drift scenario: 1 req/s stepping to 8 req/s at
// t=40, which moves the optimal operating point from the low-latency
// end of the frontier to the high-throughput end.
func stepOpts() Options {
	return Options{
		Arrival:    "step",
		Rate:       1.0,
		StepAt:     40,
		StepFactor: 8,
		Duration:   120,
		Seed:       42,
		SLO:        5,
		Window:     5,
		SwitchCost: 2,
		CheckEvery: 2,
		DriftTol:   0.25,
	}
}

// TestServeSwitchFires pins the switch-fires branch: an abrupt rate
// step makes a higher-throughput schedule worth the reconfiguration
// cost, so the controller drains and switches.
func TestServeSwitchFires(t *testing.T) {
	rep, err := Run(deploy(t, 0), stepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Switches == 0 || len(rep.Switches) == 0 {
		t.Fatalf("no switch fired; decisions: %+v", rep.Decisions)
	}
	fired := false
	for _, d := range rep.Decisions {
		if d.Switched {
			fired = true
			if d.GainReqs <= d.CostReqs {
				t.Fatalf("switched with gain %v <= cost %v", d.GainReqs, d.CostReqs)
			}
		}
	}
	if !fired {
		t.Fatal("switch events recorded but no decision marked Switched")
	}
	sw := rep.Switches[0]
	if !(sw.DecidedAt <= sw.DrainEnd && sw.DrainEnd < sw.ResumeAt) {
		t.Fatalf("switch timeline out of order: %+v", sw)
	}
	if sw.ResumeAt-sw.DrainEnd != 2 {
		t.Fatalf("re-shard downtime %v, want the configured 2", sw.ResumeAt-sw.DrainEnd)
	}
	if sw.From.Config == sw.To.Config {
		t.Fatalf("switched to the same schedule: %+v", sw)
	}
	if rep.Totals.Completed != rep.Totals.Arrived {
		t.Fatalf("final drain lost requests: %d arrived, %d completed",
			rep.Totals.Arrived, rep.Totals.Completed)
	}
	winArrived := 0
	for _, w := range rep.Windows {
		winArrived += w.Arrived
	}
	if winArrived != rep.Totals.Arrived {
		t.Fatalf("windows account for %d arrivals, totals say %d", winArrived, rep.Totals.Arrived)
	}
}

// TestServeSwitchSuppressedByCost pins the other branch: the same drift
// with a prohibitive reconfiguration cost records the decision but does
// not switch.
func TestServeSwitchSuppressedByCost(t *testing.T) {
	opts := stepOpts()
	opts.SwitchCost = 1e6
	rep, err := Run(deploy(t, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decisions) == 0 {
		t.Fatal("drift never evaluated: no decisions recorded")
	}
	if rep.Totals.Switches != 0 || len(rep.Switches) != 0 {
		t.Fatalf("switch fired despite prohibitive cost: %+v", rep.Switches)
	}
	suppressed := false
	for _, d := range rep.Decisions {
		if d.Switched {
			t.Fatalf("decision marked Switched without a switch event: %+v", d)
		}
		if strings.Contains(d.Reason, "cost") && d.GainReqs <= d.CostReqs {
			suppressed = true
		}
	}
	if !suppressed {
		t.Fatalf("no decision was suppressed by cost: %+v", rep.Decisions)
	}
	if rep.Totals.Completed != rep.Totals.Arrived {
		t.Fatalf("final drain lost requests: %d arrived, %d completed",
			rep.Totals.Arrived, rep.Totals.Completed)
	}
}

// TestServeResearchOnLengthDrift drives the Redeploy + FindBestMany
// path: with a near-zero drift tolerance the empirical length estimate
// from completed requests deviates enough to force a re-search.
func TestServeResearchOnLengthDrift(t *testing.T) {
	opts := Options{
		Arrival:    "poisson",
		Rate:       3,
		Duration:   80,
		Seed:       42,
		SLO:        5,
		Window:     5,
		CheckEvery: 2,
		DriftTol:   0.005,
		MinSample:  32,
	}
	rep, err := Run(deploy(t, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Searches < 2 {
		t.Fatalf("re-search never ran: %d searches", rep.Totals.Searches)
	}
	researched := false
	for _, d := range rep.Decisions {
		researched = researched || d.Researched
	}
	if !researched {
		t.Fatalf("no decision re-searched despite %d searches", rep.Totals.Searches)
	}
}

// TestServeArtifactByteIdentical pins the determinism contract: the
// same seed and options produce a byte-identical JSON artifact, even
// across scheduler worker counts.
func TestServeArtifactByteIdentical(t *testing.T) {
	opts := stepOpts()
	marshal := func(workers int) []byte {
		rep, err := Run(deploy(t, workers), opts)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b, c := marshal(0), marshal(0), marshal(4)
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different artifacts")
	}
	if !bytes.Equal(a, c) {
		t.Fatal("artifact differs across scheduler worker counts")
	}
}

// TestServeSummaryRenders smoke-tests the human formatter.
func TestServeSummaryRenders(t *testing.T) {
	rep, err := Run(deploy(t, 0), stepOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{"initial schedule", "totals:", "controller:", "window"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestServeRejectsBadOptions covers option validation.
func TestServeRejectsBadOptions(t *testing.T) {
	d := deploy(t, 0)
	if _, err := Run(d, Options{Rate: 1}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Run(d, Options{Rate: 0, Duration: 10}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(d, Options{Rate: 1, Duration: 10, Arrival: "nope"}); err == nil {
		t.Fatal("unknown arrival kind accepted")
	}
}
