// Package serve is the online serving mode (`exegpt serve`): a
// long-lived simulated serving loop on the discrete-event substrate.
//
// Requests arrive open-loop from a seeded arrival process and are
// admitted incrementally into the runner's open-loop engine
// (runner.OpenRun). A controller watches windowed arrival-rate and
// length statistics; when the observed workload drifts from the
// distributions the current schedule was searched for, it re-runs the
// scheduler (core.Scheduler.FindBestMany, via
// experiments.Deployment.Redeploy for length drift) on the drifted
// estimate and switches schedules — but only when the projected
// service gain over a horizon exceeds the modeled reconfiguration cost
// (drain + TP re-shard downtime charged as virtual dead time). During
// a switch, in-flight queries finish under the old schedule and the
// unadmitted backlog carries its original arrival timestamps to the
// successor engine, so queueing latency is never dropped.
//
// Everything runs in one goroutine on virtual time (the scheduler's
// internal worker pool is itself deterministic across worker counts),
// so the same seed and options produce a byte-identical Report.
package serve

import (
	"fmt"
	"math"

	"exegpt/internal/core"
	"exegpt/internal/experiments"
	"exegpt/internal/metrics"
	"exegpt/internal/runner"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// Options configures one serving run. The zero value is not usable;
// fill at least Rate and Duration and call Run.
type Options struct {
	// Arrival is the arrival-process kind: poisson, mmpp, diurnal or
	// step (see NewProcess). Default poisson.
	Arrival string
	// Rate is the mean arrival rate in requests/second.
	Rate float64
	// Duration is how long arrivals keep coming, in virtual seconds;
	// after that the engine drains to empty.
	Duration float64
	// Seed drives the arrival process and request sampling.
	Seed int64
	// SLO is the per-request latency bound used for the schedule
	// search, violation counting, and the controller's value model;
	// <= 0 means unbounded.
	SLO float64
	// Window is the stats/controller window width in seconds
	// (default 10).
	Window float64
	// SwitchCost is the modeled TP re-shard downtime in virtual
	// seconds charged on every schedule switch, on top of the drain
	// (default 5).
	SwitchCost float64
	// DriftTol is the relative drift in observed arrival rate or mean
	// sequence lengths that triggers a controller evaluation
	// (default 0.25).
	DriftTol float64
	// CheckEvery is the controller period in windows (default 3).
	CheckEvery int
	// MinSample is the minimum number of recent completions needed to
	// re-estimate length distributions (default 64).
	MinSample int
	// Horizon is the benefit horizon in seconds over which a candidate
	// schedule's service gain is projected (default 120), capped by
	// the remaining duration.
	Horizon float64
	// StepAt and StepFactor configure the step arrival kind.
	StepAt, StepFactor float64
	// Policies is the schedule search space (default all).
	Policies []sched.Policy
}

func (o Options) withDefaults() Options {
	if o.Arrival == "" {
		o.Arrival = "poisson"
	}
	if o.SLO <= 0 {
		o.SLO = math.Inf(1)
	}
	if o.Window <= 0 {
		o.Window = 10
	}
	if o.SwitchCost <= 0 {
		o.SwitchCost = 5
	}
	if o.DriftTol <= 0 {
		o.DriftTol = 0.25
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 3
	}
	if o.MinSample <= 0 {
		o.MinSample = 64
	}
	if o.Horizon <= 0 {
		o.Horizon = 120
	}
	if len(o.Policies) == 0 {
		o.Policies = []sched.Policy{sched.RRA, sched.WAAC, sched.WAAM}
	}
	return o
}

// ScheduleInfo is a serializable summary of one selected schedule.
type ScheduleInfo struct {
	Policy  string  `json:"policy"`
	Config  string  `json:"config"`
	Tput    float64 `json:"tput"`
	Latency float64 `json:"latency"`
}

func scheduleInfo(est core.Estimate) ScheduleInfo {
	return ScheduleInfo{
		Policy:  est.Config.Policy.String(),
		Config:  est.Config.String(),
		Tput:    est.Throughput,
		Latency: est.Latency,
	}
}

// Decision records one controller evaluation: drift was detected, a
// candidate was selected, and the switch either fired or was suppressed
// by the modeled reconfiguration cost.
type Decision struct {
	At         float64      `json:"at"`
	Window     int          `json:"window"`
	ObsRate    float64      `json:"obsRate"`
	ObsInMean  float64      `json:"obsInMean"`
	ObsOutMean float64      `json:"obsOutMean"`
	RateDrift  float64      `json:"rateDrift"`
	InDrift    float64      `json:"inDrift"`
	OutDrift   float64      `json:"outDrift"`
	Researched bool         `json:"researched"`
	Candidate  ScheduleInfo `json:"candidate"`
	GainReqs   float64      `json:"gainReqs"`
	CostReqs   float64      `json:"costReqs"`
	Switched   bool         `json:"switched"`
	Reason     string       `json:"reason"`
}

// SwitchEvent records one executed schedule switch.
type SwitchEvent struct {
	DecidedAt float64      `json:"decidedAt"`
	DrainEnd  float64      `json:"drainEnd"`
	ResumeAt  float64      `json:"resumeAt"`
	Downtime  float64      `json:"downtime"`
	Backlog   int          `json:"backlog"`
	From      ScheduleInfo `json:"from"`
	To        ScheduleInfo `json:"to"`
}

// Totals aggregates the whole run.
type Totals struct {
	Arrived       int     `json:"arrived"`
	Completed     int     `json:"completed"`
	DrainedAt     float64 `json:"drainedAt"`
	Throughput    float64 `json:"throughput"`
	SteadyTput    float64 `json:"steadyTput"`
	MeanLat       float64 `json:"meanLat"`
	P50Lat        float64 `json:"p50Lat"`
	P99Lat        float64 `json:"p99Lat"`
	MaxLat        float64 `json:"maxLat"`
	SLOViolations int     `json:"sloViolations"`
	Switches      int     `json:"switches"`
	Searches      int     `json:"searches"`
}

// Report is the run artifact. It contains only slices and fixed
// structs, so encoding/json renders it byte-identically for identical
// runs.
type Report struct {
	Arrival    string                `json:"arrival"`
	Rate       float64               `json:"rate"`
	Duration   float64               `json:"duration"`
	Seed       int64                 `json:"seed"`
	Window     float64               `json:"window"`
	SLO        float64               `json:"slo,omitempty"`
	SwitchCost float64               `json:"switchCost"`
	Model      string                `json:"model"`
	Cluster    string                `json:"cluster"`
	Task       string                `json:"task"`
	Initial    ScheduleInfo          `json:"initial"`
	Totals     Totals                `json:"totals"`
	Windows    []metrics.WindowStats `json:"windows"`
	Decisions  []Decision            `json:"decisions"`
	Switches   []SwitchEvent         `json:"switches"`
}

// sloFactor is the controller's service-quality weight: full credit at
// or under the SLO, proportionally discounted above it.
func sloFactor(lat, slo float64) float64 {
	if slo <= 0 || math.IsInf(slo, 1) || lat <= slo {
		return 1
	}
	return slo / lat
}

// serviceValue models a schedule's useful service in requests/second at
// the observed arrival rate: it can serve at most min(rate, tput), and
// service above the SLO is discounted.
func serviceValue(rate, tput, lat, slo float64) float64 {
	return math.Min(rate, tput) * sloFactor(lat, slo)
}

// pickSchedule selects the frontier point maximizing serviceValue at
// the given rate. Frontier order is deterministic and the comparison is
// strict, so ties resolve to the lowest-latency point — at low rates
// the controller prefers the cheapest schedule covering the load, at
// high rates it climbs toward the throughput end of the frontier.
func pickSchedule(f *core.Frontier, rate, slo float64) (core.Estimate, bool) {
	best, bestVal, ok := core.Estimate{}, -1.0, false
	for _, p := range f.Points {
		if v := serviceValue(rate, p.Throughput, p.Latency, slo); v > bestVal {
			best, bestVal, ok = p.Est, v, true
		}
	}
	return best, ok
}

// sampleRing keeps the most recent completed requests for empirical
// length re-estimation.
type sampleRing struct {
	buf  []workload.Request
	next int
	full bool
}

func newSampleRing(n int) *sampleRing { return &sampleRing{buf: make([]workload.Request, n)} }

func (r *sampleRing) add(req workload.Request) {
	r.buf[r.next] = req
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

func (r *sampleRing) sample() []workload.Request {
	if r.full {
		return r.buf
	}
	return r.buf[:r.next]
}

func relDrift(obs, assumed float64) float64 {
	if assumed == 0 {
		return 0
	}
	return math.Abs(obs-assumed) / assumed
}

// Run executes one serving run on the deployment.
func Run(dep *experiments.Deployment, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Duration <= 0 || math.IsInf(opts.Duration, 0) || math.IsNaN(opts.Duration) {
		return nil, fmt.Errorf("serve: duration %v must be positive and finite", opts.Duration)
	}
	proc, err := NewProcess(opts.Arrival, opts.Rate, opts.Seed, opts.StepAt, opts.StepFactor)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(dep.Task, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	if dep.Task.Rho > 0.5 {
		gen.RandomizeInputs = true
	}
	windowed, err := metrics.NewWindowed(opts.Window, opts.SLO)
	if err != nil {
		return nil, err
	}

	// Initial search populates the frontier the controller selects from.
	if _, err := dep.Sch.FindBestMany(opts.Policies, []float64{opts.SLO}); err != nil {
		return nil, err
	}
	searches := 1
	cur, ok := pickSchedule(&dep.Sch.Frontier, opts.Rate, opts.SLO)
	if !ok {
		return nil, fmt.Errorf("serve: no feasible schedule under SLO %v", opts.SLO)
	}

	rep := &Report{
		Arrival: proc.Name(), Rate: opts.Rate, Duration: opts.Duration,
		Seed: opts.Seed, Window: opts.Window, SwitchCost: opts.SwitchCost,
		Model: dep.Model.Name, Cluster: dep.Cluster.Name, Task: dep.Task.ID,
		Initial:   scheduleInfo(cur),
		Decisions: []Decision{}, Switches: []SwitchEvent{},
	}
	if !math.IsInf(opts.SLO, 1) {
		rep.SLO = opts.SLO
	}

	// Global (cross-engine) completion accounting.
	totalRec := metrics.NewRecorder()
	var completions []float64
	ring := newSampleRing(8 * opts.MinSample)
	byID := map[int]workload.Request{}
	onComplete := func(r runner.QueryRecord) {
		lat := r.End - r.Start
		windowed.Complete(r.End, lat)
		totalRec.Add(lat)
		completions = append(completions, r.End)
		if req, found := byID[r.ID]; found {
			ring.add(req)
			delete(byID, r.ID)
		}
	}

	eng, err := dep.Run.Open(cur.Config, cur.Alloc, 0)
	if err != nil {
		return nil, err
	}
	eng.OnComplete = onComplete

	// Controller assumptions: what the current schedule was picked for.
	curDep := dep
	assumedRate := opts.Rate
	assumedIn, assumedOut := curDep.In.Mean(), curDep.Out.Mean()

	arrived := 0
	arrivedAtCheck := 0
	lastCheck := 0.0
	nextArrival := proc.Next()
	numWin := int(math.Ceil(opts.Duration / opts.Window))

	for w := 0; w < numWin; w++ {
		winEnd := float64(w+1) * opts.Window
		for nextArrival <= opts.Duration && nextArrival < winEnd {
			req := gen.Next()
			byID[req.ID] = req
			windowed.Arrive(nextArrival)
			arrived++
			eng.Push(req, nextArrival)
			nextArrival = proc.Next()
		}
		if err := eng.RunUntil(winEnd); err != nil {
			return nil, err
		}
		// Credit the boundary sample to the window that just closed.
		windowed.ObserveQueue(math.Nextafter(winEnd, 0), eng.QueueDepth())

		if (w+1)%opts.CheckEvery != 0 || w+1 >= numWin {
			continue
		}
		obsRate := float64(arrived-arrivedAtCheck) / (winEnd - lastCheck)
		arrivedAtCheck, lastCheck = arrived, winEnd

		obsInMean, obsOutMean := assumedIn, assumedOut
		var obsSample []workload.Request
		if s := ring.sample(); len(s) >= opts.MinSample {
			obsSample = s
			in, out := 0, 0
			for _, r := range s {
				in += r.InLen
				out += r.OutLen
			}
			obsInMean = float64(in) / float64(len(s))
			obsOutMean = float64(out) / float64(len(s))
		}
		rateDrift := relDrift(obsRate, assumedRate)
		inDrift := relDrift(obsInMean, assumedIn)
		outDrift := relDrift(obsOutMean, assumedOut)
		if rateDrift <= opts.DriftTol && inDrift <= opts.DriftTol && outDrift <= opts.DriftTol {
			continue
		}

		// Drift confirmed: pick a candidate. Length drift invalidates
		// the estimates behind the whole frontier, so re-search on the
		// empirical distributions; pure rate drift only moves the
		// operating point along the still-valid frontier.
		dec := Decision{
			At: winEnd, Window: w,
			ObsRate: obsRate, ObsInMean: obsInMean, ObsOutMean: obsOutMean,
			RateDrift: rateDrift, InDrift: inDrift, OutDrift: outDrift,
			Researched: (inDrift > opts.DriftTol || outDrift > opts.DriftTol) && obsSample != nil,
		}
		frontier := &curDep.Sch.Frontier
		if dec.Researched {
			empIn, empOut, derr := workload.EstimateDists(obsSample)
			if derr != nil {
				return nil, derr
			}
			newDep, derr := curDep.Redeploy(empIn, empOut)
			if derr != nil {
				return nil, derr
			}
			if _, derr := newDep.Sch.FindBestMany(opts.Policies, []float64{opts.SLO}); derr != nil {
				return nil, derr
			}
			searches++
			curDep = newDep
			frontier = &curDep.Sch.Frontier
		}

		// Re-anchor after every evaluation so a deliberate verdict —
		// switch or no-switch — is not re-litigated at the next check.
		assumedRate, assumedIn, assumedOut = obsRate, obsInMean, obsOutMean

		cand, found := pickSchedule(frontier, obsRate, opts.SLO)
		if !found {
			dec.Reason = "no feasible candidate"
			rep.Decisions = append(rep.Decisions, dec)
			continue
		}
		dec.Candidate = scheduleInfo(cand)
		horizon := math.Min(opts.Horizon, opts.Duration-winEnd)
		downtime := cur.Latency + opts.SwitchCost // drain estimate + re-shard
		gain := (serviceValue(obsRate, cand.Throughput, cand.Latency, opts.SLO) -
			serviceValue(obsRate, cur.Throughput, cur.Latency, opts.SLO)) * horizon
		cost := math.Min(obsRate, cand.Throughput) * downtime
		dec.GainReqs, dec.CostReqs = gain, cost
		switch {
		case cand.Config == cur.Config:
			dec.Reason = "candidate equals current schedule"
		case gain <= cost:
			dec.Reason = "projected gain does not cover reconfiguration cost"
		default:
			dec.Switched = true
			dec.Reason = "projected gain exceeds reconfiguration cost"
		}
		rep.Decisions = append(rep.Decisions, dec)
		if !dec.Switched {
			continue
		}

		leftover, derr := eng.Drain()
		if derr != nil {
			return nil, derr
		}
		drainEnd := eng.Now()
		resumeAt := drainEnd + opts.SwitchCost
		next, derr := curDep.Run.Open(cand.Config, cand.Alloc, resumeAt)
		if derr != nil {
			return nil, derr
		}
		next.OnComplete = onComplete
		for _, a := range leftover {
			next.Push(a.Req, a.At)
		}
		rep.Switches = append(rep.Switches, SwitchEvent{
			DecidedAt: winEnd, DrainEnd: drainEnd, ResumeAt: resumeAt,
			Downtime: resumeAt - winEnd, Backlog: len(leftover),
			From: scheduleInfo(cur), To: scheduleInfo(cand),
		})
		eng, cur = next, cand
	}

	// Arrivals are over; serve out the backlog.
	if err := eng.Finish(); err != nil {
		return nil, err
	}
	drainedAt := eng.Now()
	windowed.ObserveQueue(drainedAt, 0)

	wins := windowed.Stats()
	violations := 0
	for _, ws := range wins {
		violations += ws.SLOViolations
	}
	rep.Windows = wins
	rep.Totals = Totals{
		Arrived:       arrived,
		Completed:     totalRec.Count(),
		DrainedAt:     drainedAt,
		Throughput:    metrics.Throughput(totalRec.Count(), drainedAt),
		SteadyTput:    metrics.SteadyThroughput(completions),
		MeanLat:       totalRec.Mean(),
		P50Lat:        totalRec.Percentile(0.50),
		P99Lat:        totalRec.Percentile(0.99),
		MaxLat:        totalRec.Max(),
		SLOViolations: violations,
		Switches:      len(rep.Switches),
		Searches:      searches,
	}
	return rep, nil
}
