// Arrival processes: open-loop request arrival time generators for the
// online serving mode. All processes are seeded and deterministic —
// the same (kind, rate, seed) always yields the same arrival sequence,
// which is what makes serve artifacts byte-identical across runs.
package serve

import (
	"fmt"
	"math"
	"math/rand"
)

// Process generates a strictly increasing sequence of arrival times in
// virtual seconds. Implementations are single-goroutine.
type Process interface {
	// Name identifies the process kind (poisson, mmpp, diurnal, step).
	Name() string
	// Next returns the next arrival time strictly after the previous
	// one (the first call returns the first arrival after time 0).
	Next() float64
}

// MMPP dwell/rate shape and diurnal period/amplitude: fixed process
// parameters derived from the mean rate, chosen so the three kinds are
// comparable at the same -rate flag.
const (
	mmppLowFactor  = 0.4  // low-state rate = 0.4x mean
	mmppHighFactor = 1.6  // high-state rate = 1.6x mean (dwells are equal, so the two states average to the mean)
	mmppMeanDwell  = 20.0 // mean seconds per state
	diurnalPeriod  = 240.0
	diurnalAmp     = 0.8 // rate swings mean*(1 +/- 0.8)
)

// NewProcess builds an arrival process of the given kind around a mean
// rate (arrivals/second). stepAt/stepFactor configure the piecewise
// "step" kind: the rate jumps from rate to rate*stepFactor at stepAt
// seconds (they are ignored by the other kinds).
func NewProcess(kind string, rate float64, seed int64, stepAt, stepFactor float64) (Process, error) {
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return nil, fmt.Errorf("serve: arrival rate %v must be positive and finite", rate)
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "poisson":
		return &poisson{rate: rate, rng: rng}, nil
	case "mmpp":
		return &mmpp{
			low: rate * mmppLowFactor, high: rate * mmppHighFactor,
			dwell: mmppMeanDwell, rng: rng,
		}, nil
	case "diurnal":
		return &diurnal{
			base: rate, amp: diurnalAmp, period: diurnalPeriod, rng: rng,
		}, nil
	case "step":
		if stepAt <= 0 {
			return nil, fmt.Errorf("serve: step arrivals need a positive -step-at, got %v", stepAt)
		}
		if stepFactor <= 0 {
			return nil, fmt.Errorf("serve: step arrivals need a positive -step-factor, got %v", stepFactor)
		}
		return &step{r1: rate, r2: rate * stepFactor, at: stepAt, rng: rng}, nil
	}
	return nil, fmt.Errorf("serve: unknown arrival kind %q (want poisson, mmpp, diurnal or step)", kind)
}

// poisson is a homogeneous Poisson process: i.i.d. exponential gaps.
type poisson struct {
	rate float64
	t    float64
	rng  *rand.Rand
}

func (p *poisson) Name() string { return "poisson" }

func (p *poisson) Next() float64 {
	p.t += p.rng.ExpFloat64() / p.rate
	return p.t
}

// mmpp is a two-state Markov-modulated Poisson process (bursty): the
// rate alternates between a low and a high state with exponentially
// distributed dwell times.
type mmpp struct {
	low, high float64
	dwell     float64
	t         float64
	// stateEnd is when the current state's dwell expires; high tracks
	// which state is active.
	stateEnd  float64
	inHigh    bool
	seededEnd bool
	rng       *rand.Rand
}

func (m *mmpp) Name() string { return "mmpp" }

func (m *mmpp) Next() float64 {
	if !m.seededEnd {
		m.seededEnd = true
		m.stateEnd = m.rng.ExpFloat64() * m.dwell
	}
	for {
		rate := m.low
		if m.inHigh {
			rate = m.high
		}
		gap := m.rng.ExpFloat64() / rate
		if m.t+gap < m.stateEnd {
			m.t += gap
			return m.t
		}
		// The gap crosses a state boundary: discard it (memorylessness
		// makes this exact), advance to the boundary, flip state.
		m.t = m.stateEnd
		m.stateEnd = m.t + m.rng.ExpFloat64()*m.dwell
		m.inHigh = !m.inHigh
	}
}

// diurnal is an inhomogeneous Poisson process with a sinusoidal rate
// rate(t) = base*(1 + amp*sin(2*pi*t/period)), sampled by thinning
// against the peak rate base*(1+amp).
type diurnal struct {
	base, amp, period float64
	t                 float64
	rng               *rand.Rand
}

func (d *diurnal) Name() string { return "diurnal" }

func (d *diurnal) rate(t float64) float64 {
	return d.base * (1 + d.amp*math.Sin(2*math.Pi*t/d.period))
}

func (d *diurnal) Next() float64 {
	peak := d.base * (1 + d.amp)
	for {
		d.t += d.rng.ExpFloat64() / peak
		if d.rng.Float64()*peak < d.rate(d.t) {
			return d.t
		}
	}
}

// step is a piecewise-constant Poisson process: rate r1 before at, r2
// after. It is the controller's test harness — an abrupt, unambiguous
// rate drift at a known time.
type step struct {
	r1, r2, at float64
	t          float64
	rng        *rand.Rand
}

func (s *step) Name() string { return "step" }

func (s *step) Next() float64 {
	for {
		rate := s.r1
		if s.t >= s.at {
			rate = s.r2
		}
		gap := s.rng.ExpFloat64() / rate
		if s.t < s.at && s.t+gap >= s.at {
			// Crossing the step: discard the partial gap (exact by
			// memorylessness) and resample at the new rate.
			s.t = s.at
			continue
		}
		s.t += gap
		return s.t
	}
}
