package serve

import (
	"math"
	"testing"
)

func drawN(t *testing.T, kind string, rate float64, seed int64, n int) []float64 {
	t.Helper()
	p, err := NewProcess(kind, rate, seed, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Next()
	}
	return out
}

var allKinds = []string{"poisson", "mmpp", "diurnal", "step"}

func TestArrivalsDeterministic(t *testing.T) {
	for _, kind := range allKinds {
		a := drawN(t, kind, 2.0, 7, 500)
		b := drawN(t, kind, 2.0, 7, 500)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs across identical seeds: %v vs %v", kind, i, a[i], b[i])
			}
		}
		c := drawN(t, kind, 2.0, 8, 500)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical sequences", kind)
		}
	}
}

func TestArrivalsStrictlyIncreasing(t *testing.T) {
	for _, kind := range allKinds {
		seq := drawN(t, kind, 5.0, 42, 2000)
		prev := 0.0
		for i, v := range seq {
			if v <= prev {
				t.Fatalf("%s: arrival %d at %v not after %v", kind, i, v, prev)
			}
			prev = v
		}
	}
}

// TestArrivalsMeanRate checks each process realizes its configured mean
// rate over a long horizon (step is excluded: its mean deliberately
// changes at the step).
func TestArrivalsMeanRate(t *testing.T) {
	for _, kind := range []string{"poisson", "mmpp", "diurnal"} {
		const n = 20000
		seq := drawN(t, kind, 4.0, 3, n)
		got := float64(n) / seq[n-1]
		if math.Abs(got-4.0) > 0.4 {
			t.Fatalf("%s: realized rate %.2f, want ~4.0", kind, got)
		}
	}
}

// TestStepChangesRate pins the piecewise process: the realized rate
// after the step is stepFactor times the rate before it.
func TestStepChangesRate(t *testing.T) {
	p, err := NewProcess("step", 2.0, 11, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	before, after := 0, 0
	for {
		v := p.Next()
		if v >= 300 {
			break
		}
		if v < 100 {
			before++
		} else {
			after++
		}
	}
	rBefore := float64(before) / 100
	rAfter := float64(after) / 200
	if math.Abs(rBefore-2.0) > 0.5 {
		t.Fatalf("pre-step rate %.2f, want ~2.0", rBefore)
	}
	if math.Abs(rAfter-10.0) > 1.5 {
		t.Fatalf("post-step rate %.2f, want ~10.0", rAfter)
	}
}

func TestNewProcessRejectsBadInputs(t *testing.T) {
	if _, err := NewProcess("poisson", 0, 1, 0, 0); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := NewProcess("poisson", math.Inf(1), 1, 0, 0); err == nil {
		t.Fatal("Inf rate accepted")
	}
	if _, err := NewProcess("waves", 1, 1, 0, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := NewProcess("step", 1, 1, 0, 2); err == nil {
		t.Fatal("step without -step-at accepted")
	}
	if _, err := NewProcess("step", 1, 1, 10, 0); err == nil {
		t.Fatal("step without -step-factor accepted")
	}
}
