// Package atomicfile writes files atomically via a same-directory temp
// file and rename, so concurrent readers only ever observe complete
// files — the contract the shared profile cache and the shard-envelope
// pipeline both rely on when multiple sweep worker processes touch one
// directory.
package atomicfile

import (
	"os"
	"path/filepath"
)

// Write writes data to path through a temp file in path's directory
// (created if missing) followed by an atomic rename. A reader racing
// Write sees either the previous complete file or the new one, never a
// torn mix; the temp file never survives, success or failure.
func Write(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	// Every error path — a failed write, chmod, close, or rename (e.g.
	// the target is blocked by an existing directory, or a permission
	// error) — must remove the temp file: the cache and spool
	// directories this package serves are scanned by other processes,
	// and leaked temp files would accumulate across runs. After a
	// successful rename the name no longer exists and the remove is a
	// no-op.
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
