package atomicfile

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestWriteCreatesDirAndFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "f.json")
	if err := Write(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	// Overwrite replaces the content and leaves no temp droppings.
	if err := Write(path, []byte("world"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || strings.Contains(entries[0].Name(), ".tmp") {
		t.Fatalf("directory not clean after overwrite: %v", entries)
	}
}

// TestWriteConcurrentReadersNeverSeeTornFiles hammers one path with
// writers of two distinct payloads while readers poll: every read must
// be one payload or the other in full (run under -race).
func TestWriteConcurrentReadersNeverSeeTornFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	a := []byte(strings.Repeat("A", 1<<16))
	b := []byte(strings.Repeat("B", 1<<16))
	if err := Write(path, a, 0o644); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w, payload := range [][]byte{a, b} {
		wg.Add(1)
		go func(w int, payload []byte) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := Write(path, payload, 0o644); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w, payload)
	}
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return
		default:
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 1<<16 || (data[0] != 'A' && data[0] != 'B') ||
			data[0] != data[len(data)-1] {
			t.Fatalf("torn read: %d bytes, first %q last %q", len(data), data[0], data[len(data)-1])
		}
	}
}

// TestWriteRenameFailureLeavesNoTempFile: when the final rename fails —
// here the target name is blocked by a non-empty directory — Write must
// report the error AND remove its temp file, not leak it into a
// directory other workers scan.
func TestWriteRenameFailureLeavesNoTempFile(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "f.json")
	if err := os.MkdirAll(filepath.Join(target, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := Write(target, []byte("data"), 0o644); err == nil {
		t.Fatal("rename onto a non-empty directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file leaked after rename failure: %s", e.Name())
		}
	}
}

// TestWriteErrorPathsLeaveNoTempFile: a failed temp creation (the
// parent "directory" is a plain file) must not leave droppings either.
func TestWriteErrorPathsLeaveNoTempFile(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Write(filepath.Join(blocker, "f.json"), []byte("x"), 0o644); err == nil {
		t.Fatal("writing under a plain file succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("unexpected droppings: %v", entries)
	}
}
