package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Table 1 parameter counts should land near the nominal sizes.
func TestParamCounts(t *testing.T) {
	cases := []struct {
		m    Model
		want float64 // nominal params
		tol  float64 // relative tolerance
	}{
		{T511B, 11e9, 0.10},
		{OPT13B, 13e9, 0.10},
		{GPT339B, 39e9, 0.10},
		{GPT3101B, 101e9, 0.10},
		{GPT3175B, 175e9, 0.05},
		{GPT3341B, 341e9, 0.05},
	}
	for _, c := range cases {
		got := float64(c.m.Params())
		if rel := abs(got-c.want) / c.want; rel > c.tol {
			t.Errorf("%s: params = %.3g, want ~%.3g (rel err %.3f)", c.m.Name, got, c.want, rel)
		}
	}
}

func TestValidateAll(t *testing.T) {
	for _, m := range All {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Model{
		{Name: "no-dec", Hidden: 4, Heads: 2, AttnDim: 4, FFNDim: 8, BytesPerParam: 2},
		{Name: "neg-h", DecLayers: 1, Hidden: -1, Heads: 2, AttnDim: 4, FFNDim: 8, BytesPerParam: 2},
		{Name: "indiv", DecLayers: 1, Hidden: 4, Heads: 3, AttnDim: 4, FFNDim: 8, BytesPerParam: 2},
		{Name: "nobytes", DecLayers: 1, Hidden: 4, Heads: 2, AttnDim: 4, FFNDim: 8},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("OPT-13B")
	if err != nil || m.Hidden != 5120 {
		t.Fatalf("ByName: %v %+v", err, m)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestDecoderOnly(t *testing.T) {
	if T511B.DecoderOnly() {
		t.Fatal("T5 is encoder-decoder")
	}
	if !OPT13B.DecoderOnly() {
		t.Fatal("OPT is decoder-only")
	}
	if T511B.TotalLayers() != 48 {
		t.Fatalf("T5 layers = %d, want 48", T511B.TotalLayers())
	}
}

func TestCrossAttentionParams(t *testing.T) {
	// T5 decoder layers carry cross-attention: heavier than encoder layers.
	if T511B.DecLayerParams() <= T511B.EncLayerParams() {
		t.Fatal("decoder layer should outweigh encoder layer for enc-dec model")
	}
	// Decoder-only: decoder layer has no cross-attention surcharge.
	if OPT13B.DecLayerParams() != 4*5120*5120+2*5120*20480 {
		t.Fatalf("OPT dec layer params = %d", OPT13B.DecLayerParams())
	}
}

func TestWeightBytes(t *testing.T) {
	if OPT13B.WeightBytes() != OPT13B.Params()*2 {
		t.Fatal("fp16 weight bytes should be 2x params")
	}
	if OPT13B.DecLayerBytes() != OPT13B.DecLayerParams()*2 {
		t.Fatal("per-layer bytes mismatch")
	}
	if T511B.EncLayerBytes() != T511B.EncLayerParams()*2 {
		t.Fatal("enc layer bytes mismatch")
	}
}

func TestKVSizes(t *testing.T) {
	// One token, one layer: 2 (K and V) * AttnDim * 2 bytes.
	if got, want := OPT13B.KVBytesPerTokenLayer(), int64(2*5120*2); got != want {
		t.Fatalf("KV per token-layer = %d, want %d", got, want)
	}
	if got, want := OPT13B.KVBytesPerToken(), int64(40)*OPT13B.KVBytesPerTokenLayer(); got != want {
		t.Fatalf("KV per token = %d, want %d", got, want)
	}
	if OPT13B.CrossKVBytesPerInputToken() != 0 {
		t.Fatal("decoder-only has no cross KV")
	}
	if T511B.CrossKVBytesPerInputToken() == 0 {
		t.Fatal("T5 must memoize cross KV")
	}
}

func TestQueryKVBytes(t *testing.T) {
	// Decoder-only counts prompt tokens too.
	optKV := OPT13B.QueryKVBytes(100, 50)
	if optKV != 150*OPT13B.KVBytesPerToken() {
		t.Fatalf("OPT query KV = %d", optKV)
	}
	t5KV := T511B.QueryKVBytes(100, 50)
	want := 50*T511B.KVBytesPerToken() + 100*T511B.CrossKVBytesPerInputToken()
	if t5KV != want {
		t.Fatalf("T5 query KV = %d, want %d", t5KV, want)
	}
}

func TestContextLen(t *testing.T) {
	if got := OPT13B.ContextLen(100, 0); got != 101 {
		t.Fatalf("OPT ctx at pos 0 = %d, want 101", got)
	}
	if got := T511B.ContextLen(100, 0); got != 1 {
		t.Fatalf("T5 ctx at pos 0 = %d, want 1", got)
	}
	if got := OPT13B.ContextLen(10, 9); got != 20 {
		t.Fatalf("OPT ctx at pos 9 = %d, want 20", got)
	}
}

func TestFLOPsScaling(t *testing.T) {
	m := GPT339B
	// Prefill FLOPs scale ~linearly in tokens at fixed seq len.
	f1 := m.EncodeLayerFLOPs(128, 256)
	f2 := m.EncodeLayerFLOPs(256, 256)
	if ratio := f2 / f1; ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("prefill scaling ratio = %v, want ~2", ratio)
	}
	// Decode FLOPs per iteration are far below prefill of the same batch of
	// queries (each query contributes one token, not seqLen tokens).
	prefill := m.EncodeLayerFLOPs(128*256, 256)
	dec := m.DecodeLayerFLOPs(128, 256, 0)
	if dec*50 >= prefill {
		t.Fatalf("decode iter FLOPs %v should be << prefill %v", dec, prefill)
	}
	// Cross-attention adds FLOPs for enc-dec models.
	withCross := T511B.DecodeLayerFLOPs(8, 32, 256)
	noCross := T511B.DecodeLayerFLOPs(8, 32, 0)
	if withCross <= noCross {
		t.Fatal("cross-attention term missing")
	}
}

func TestDecodeAttnBytes(t *testing.T) {
	m := OPT13B
	b := m.DecodeAttnBytes(4, 100, 0)
	if b != int64(4*100)*m.KVBytesPerTokenLayer() {
		t.Fatalf("attn bytes = %d", b)
	}
	// T5 adds cross-cache reads.
	tb := T511B.DecodeAttnBytes(4, 10, 90)
	if tb != int64(4*100)*T511B.KVBytesPerTokenLayer() {
		t.Fatalf("t5 attn bytes = %d", tb)
	}
}

// Property: FLOPs and KV bytes are monotone in their load arguments.
func TestQuickMonotone(t *testing.T) {
	f := func(b1, b2 uint8, c1, c2 uint16) bool {
		lb, hb := int(b1), int(b2)
		if lb > hb {
			lb, hb = hb, lb
		}
		lc, hc := float64(c1), float64(c2)
		if lc > hc {
			lc, hc = hc, lc
		}
		m := OPT13B
		if m.DecodeLayerFLOPs(lb, lc, 0) > m.DecodeLayerFLOPs(hb, hc, 0)+1 {
			return false
		}
		if m.DecodeAttnBytes(lb, lc, 0) > m.DecodeAttnBytes(hb, hc, 0) {
			return false
		}
		return m.EncodeLayerFLOPs(lb, lc) <= m.EncodeLayerFLOPs(hb, hc)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
