// Package model defines the LLM architectures evaluated in the ExeGPT
// paper (Table 1) and the arithmetic the profiler and simulator need:
// per-layer parameter counts, weight bytes, key/value-cache sizes, and
// FLOP counts for encoding (prefill) and decoding iterations.
//
// Models carry no weights — only shapes. T5 is an encoder-decoder model;
// OPT and GPT-3 are decoder-only models whose decoding layers run both
// input encoding (prefill) and output decoding (§2).
package model

import "fmt"

// Model describes one transformer configuration.
type Model struct {
	Name string
	// EncLayers and DecLayers are the encoder/decoder layer counts.
	// Decoder-only models have EncLayers == 0.
	EncLayers int
	DecLayers int
	// Hidden is the model (residual-stream) dimension.
	Hidden int
	// Heads is the attention-head count.
	Heads int
	// AttnDim is the total attention projection width (heads x head dim);
	// equal to Hidden for OPT/GPT-3, larger for T5-11B.
	AttnDim int
	// FFNDim is the feed-forward inner dimension.
	FFNDim int
	// VocabSize is used for the embedding/LM-head cost.
	VocabSize int
	// BytesPerParam: 2 for FP16 (the paper evaluates in half precision).
	BytesPerParam int
}

// Predefined models from Table 1.
var (
	// T511B: encoder-decoder, 24+24 layers, hidden 1024, 128 heads,
	// d_ff 65536, attention projection 16384 (128 heads x d_kv 128).
	T511B = Model{
		Name: "T5-11B", EncLayers: 24, DecLayers: 24,
		Hidden: 1024, Heads: 128, AttnDim: 16384, FFNDim: 65536,
		VocabSize: 32128, BytesPerParam: 2,
	}
	// OPT13B: decoder-only, 40 layers, hidden 5120, 40 heads.
	OPT13B = Model{
		Name: "OPT-13B", DecLayers: 40,
		Hidden: 5120, Heads: 40, AttnDim: 5120, FFNDim: 20480,
		VocabSize: 50272, BytesPerParam: 2,
	}
	// GPT339B: decoder-only, 48 layers, hidden 8192, 64 heads.
	GPT339B = Model{
		Name: "GPT-3-39B", DecLayers: 48,
		Hidden: 8192, Heads: 64, AttnDim: 8192, FFNDim: 32768,
		VocabSize: 50257, BytesPerParam: 2,
	}
	// GPT3101B: decoder-only, 80 layers, hidden 10240, 80 heads.
	GPT3101B = Model{
		Name: "GPT-3-101B", DecLayers: 80,
		Hidden: 10240, Heads: 80, AttnDim: 10240, FFNDim: 40960,
		VocabSize: 50257, BytesPerParam: 2,
	}
	// GPT3175B: decoder-only, 96 layers, hidden 12288, 96 heads.
	GPT3175B = Model{
		Name: "GPT-3-175B", DecLayers: 96,
		Hidden: 12288, Heads: 96, AttnDim: 12288, FFNDim: 49152,
		VocabSize: 50257, BytesPerParam: 2,
	}
	// GPT3341B: decoder-only, 120 layers, hidden 15360, 120 heads.
	GPT3341B = Model{
		Name: "GPT-3-341B", DecLayers: 120,
		Hidden: 15360, Heads: 120, AttnDim: 15360, FFNDim: 61440,
		VocabSize: 50257, BytesPerParam: 2,
	}
)

// All lists the Table 1 models in paper order.
var All = []Model{T511B, OPT13B, GPT339B, GPT3101B, GPT3175B, GPT3341B}

// ByName returns the model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range All {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("model: unknown model %q", name)
}

// DecoderOnly reports whether the model has no encoder stack.
func (m Model) DecoderOnly() bool { return m.EncLayers == 0 }

// TotalLayers returns EncLayers + DecLayers.
func (m Model) TotalLayers() int { return m.EncLayers + m.DecLayers }

// Validate reports configuration errors.
func (m Model) Validate() error {
	switch {
	case m.DecLayers <= 0:
		return fmt.Errorf("model %q: need at least one decoder layer", m.Name)
	case m.Hidden <= 0 || m.Heads <= 0 || m.AttnDim <= 0 || m.FFNDim <= 0:
		return fmt.Errorf("model %q: nonpositive dimension", m.Name)
	case m.AttnDim%m.Heads != 0:
		return fmt.Errorf("model %q: AttnDim %d not divisible by Heads %d", m.Name, m.AttnDim, m.Heads)
	case m.BytesPerParam <= 0:
		return fmt.Errorf("model %q: BytesPerParam must be positive", m.Name)
	}
	return nil
}

// EncLayerParams returns the parameter count of one encoder layer:
// Q,K,V,O projections (4 * Hidden * AttnDim) plus the two FFN matrices
// (2 * Hidden * FFNDim).
func (m Model) EncLayerParams() int64 {
	h, a, f := int64(m.Hidden), int64(m.AttnDim), int64(m.FFNDim)
	return 4*h*a + 2*h*f
}

// DecLayerParams returns the parameter count of one decoder layer.
// Encoder-decoder models add a cross-attention block (another 4*h*a);
// decoder-only layers match encoder-layer shape.
func (m Model) DecLayerParams() int64 {
	h, a, f := int64(m.Hidden), int64(m.AttnDim), int64(m.FFNDim)
	p := 4*h*a + 2*h*f
	if !m.DecoderOnly() {
		p += 4 * h * a
	}
	return p
}

// Params returns the total parameter count including embeddings.
func (m Model) Params() int64 {
	p := int64(m.EncLayers)*m.EncLayerParams() + int64(m.DecLayers)*m.DecLayerParams()
	p += int64(m.VocabSize) * int64(m.Hidden) // tied embedding / LM head
	return p
}

// WeightBytes returns the total model size in bytes at the configured
// precision.
func (m Model) WeightBytes() int64 {
	return m.Params() * int64(m.BytesPerParam)
}

// EncLayerBytes and DecLayerBytes return per-layer weight sizes.
func (m Model) EncLayerBytes() int64 { return m.EncLayerParams() * int64(m.BytesPerParam) }

// DecLayerBytes returns the weight bytes of one decoder layer.
func (m Model) DecLayerBytes() int64 { return m.DecLayerParams() * int64(m.BytesPerParam) }

// KVBytesPerTokenLayer returns the key/value-cache bytes one token
// occupies in one decoder layer's self-attention cache.
func (m Model) KVBytesPerTokenLayer() int64 {
	return 2 * int64(m.AttnDim) * int64(m.BytesPerParam)
}

// KVBytesPerToken returns the self-attention KV bytes one generated
// token occupies across all decoder layers. For decoder-only models the
// input (prompt) tokens occupy cache at the same rate.
func (m Model) KVBytesPerToken() int64 {
	return m.KVBytesPerTokenLayer() * int64(m.DecLayers)
}

// CrossKVBytesPerInputToken returns the cross-attention cache bytes one
// input token occupies across decoder layers (encoder-decoder models
// memoize encoder outputs once per input token; zero for decoder-only).
func (m Model) CrossKVBytesPerInputToken() int64 {
	if m.DecoderOnly() {
		return 0
	}
	return m.KVBytesPerTokenLayer() * int64(m.DecLayers)
}

// QueryKVBytes returns the total KV-cache footprint of a single query
// with the given input and output lengths, at the point all output
// tokens are generated.
func (m Model) QueryKVBytes(inputLen, outputLen int) int64 {
	if m.DecoderOnly() {
		return int64(inputLen+outputLen) * m.KVBytesPerToken()
	}
	return int64(outputLen)*m.KVBytesPerToken() + int64(inputLen)*m.CrossKVBytesPerInputToken()
}

// ContextLen returns the self-attention context length seen while
// decoding output position pos (0-based) for a query with the given
// input length: decoder-only models attend over prompt + generated
// tokens, encoder-decoder models only over generated tokens (the input
// is handled by cross-attention).
func (m Model) ContextLen(inputLen, pos int) int {
	if m.DecoderOnly() {
		return inputLen + pos + 1
	}
	return pos + 1
}

// EncodeLayerFLOPs returns the FLOPs for one encoding (prefill) layer
// pass over a batch with the given total token count and mean sequence
// length: 2 FLOPs per parameter per token for the GEMMs plus the
// quadratic attention term 4 * tokens * seqLen * AttnDim.
func (m Model) EncodeLayerFLOPs(tokens int, meanSeqLen float64) float64 {
	var params int64
	if m.DecoderOnly() {
		params = m.DecLayerParams()
	} else {
		params = m.EncLayerParams()
	}
	gemm := 2 * float64(params) * float64(tokens)
	attn := 4 * float64(tokens) * meanSeqLen * float64(m.AttnDim)
	return gemm + attn
}

// DecodeLayerFLOPs returns the FLOPs for one decoder layer processing a
// single decoding iteration for batch queries whose mean attention
// context is ctxLen tokens (self plus, for encoder-decoder models,
// cross-attention over meanInputLen input tokens).
func (m Model) DecodeLayerFLOPs(batch int, ctxLen, meanInputLen float64) float64 {
	gemm := 2 * float64(m.DecLayerParams()) * float64(batch)
	attn := 4 * float64(batch) * ctxLen * float64(m.AttnDim)
	if !m.DecoderOnly() {
		attn += 4 * float64(batch) * meanInputLen * float64(m.AttnDim)
	}
	return gemm + attn
}

// DecodeAttnBytes returns the bytes the decode attention kernel streams
// from the KV cache for one layer and one iteration: the whole cache of
// every query in the batch.
func (m Model) DecodeAttnBytes(batch int, ctxLen, meanInputLen float64) int64 {
	per := ctxLen
	if !m.DecoderOnly() {
		per += meanInputLen
	}
	return int64(float64(batch) * per * float64(m.KVBytesPerTokenLayer()))
}
