// The dispatch wire codec: one versioned JSON framing for Msg and
// Lease, shared by every serializing transport (the file spool and the
// HTTP transport) so the two cannot drift apart. The in-process hub
// passes structs directly and never touches it.
//
// A frame is the struct's JSON encoding with a trailing newline; the
// encoder stamps WireVersion and the decoder rejects anything else, so
// a mixed-build fleet fails loudly instead of merging garbage.
package dispatch

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ErrWireVersion marks a frame written by a build with a different
// WireVersion. Transports that can tell foreign files from torn ones
// (the spool) match it with errors.Is.
var ErrWireVersion = errors.New("dispatch: wire version mismatch (mixed-version fleet?)")

// EncodeMsg renders one worker → coordinator message as a wire frame,
// stamping the version.
func EncodeMsg(m *Msg) ([]byte, error) {
	frame := *m
	frame.Version = WireVersion
	data, err := json.Marshal(&frame)
	if err != nil {
		return nil, fmt.Errorf("dispatch: encode msg: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeMsg parses one message frame, rejecting foreign versions.
func DecodeMsg(data []byte) (*Msg, error) {
	var m Msg
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dispatch: corrupt msg frame: %w", err)
	}
	if m.Version != WireVersion {
		return nil, fmt.Errorf("msg version %d, this build speaks %d: %w", m.Version, WireVersion, ErrWireVersion)
	}
	return &m, nil
}

// EncodeLease renders one coordinator → worker lease reply as a wire
// frame, stamping the version.
func EncodeLease(l *Lease) ([]byte, error) {
	frame := *l
	frame.Version = WireVersion
	data, err := json.Marshal(&frame)
	if err != nil {
		return nil, fmt.Errorf("dispatch: encode lease: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeLease parses one lease frame, rejecting foreign versions.
func DecodeLease(data []byte) (*Lease, error) {
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("dispatch: corrupt lease frame: %w", err)
	}
	if l.Version != WireVersion {
		return nil, fmt.Errorf("lease version %d, this build speaks %d: %w", l.Version, WireVersion, ErrWireVersion)
	}
	return &l, nil
}
