// File-spool transport: the dispatch protocol over a plain directory,
// so coordinator and workers can be separate processes on one box or on
// different hosts sharing the directory any way that preserves whole
// files — NFS, sshfs, an object-store mount, or scp/rsync copy loops.
//
// Layout under the spool root:
//
//	inbox/m_<worker>_<nnnnnnnnnnnn>.json   worker → coordinator messages
//	leases/lease_<worker>_<seq>.json       coordinator → worker replies
//	stop                                   completion marker
//
// File contents are wire frames (EncodeMsg/EncodeLease — the codec the
// HTTP transport shares), written through internal/atomicfile (temp +
// rename) so pollers never observe torn JSON; readers delete what they
// consume.
// The protocol tolerates lost or delayed files: workers re-request and
// the coordinator requeues expired leases, so an eventually-consistent
// synchronizer (rsync in a loop) only slows the sweep down.
package dispatch

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"exegpt/internal/atomicfile"
)

// Spool is a directory-backed dispatch transport.
type Spool struct {
	root string
}

// NewSpool prepares (creating if needed) a spool directory.
func NewSpool(root string) (*Spool, error) {
	for _, d := range []string{root, filepath.Join(root, "inbox"), filepath.Join(root, "leases")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("dispatch: spool: %w", err)
		}
	}
	return &Spool{root: root}, nil
}

// Root returns the spool directory.
func (s *Spool) Root() string { return s.root }

func (s *Spool) inboxDir() string { return filepath.Join(s.root, "inbox") }
func (s *Spool) leaseDir() string { return filepath.Join(s.root, "leases") }
func (s *Spool) stopPath() string { return filepath.Join(s.root, "stop") }
func (s *Spool) stopped() bool    { _, err := os.Stat(s.stopPath()); return err == nil }

// ValidWorkerID reports whether id is safe to embed in spool file
// names.
func ValidWorkerID(id string) bool {
	return id != "" && id == SanitizeWorkerID(id)
}

// SanitizeWorkerID maps an arbitrary string (a hostname, an ssh
// target) onto the spool-safe worker-id charset: letters, digits, '.',
// '-' and '_'; everything else becomes '-'.
func SanitizeWorkerID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '-'
	}, id)
}

// spoolPollStep bounds how often pollers hit the directory.
func spoolPollStep(timeout time.Duration) time.Duration {
	step := timeout / 4
	if step > 50*time.Millisecond {
		step = 50 * time.Millisecond
	}
	if step < time.Millisecond {
		step = time.Millisecond
	}
	return step
}

// Coordinator returns the coordinator side of the spool, first clearing
// everything a previous run on the same directory left behind: the stop
// marker (which would make every joining worker exit immediately),
// stale lease replies (which a same-named worker could mistake for this
// run's), and undrained inbox messages (whose results — possibly from a
// differently-flagged run — would otherwise poison this one). Dropping
// a live early-attached worker's request here is harmless: workers
// re-request after a bounded wait. Workers never clear the stop marker
// themselves: one that joins after a sweep finished must see it and
// exit.
func (s *Spool) Coordinator() (Transport, error) {
	if err := os.Remove(s.stopPath()); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("dispatch: clear stale stop marker: %w", err)
	}
	for dir, prefix := range map[string]string{s.leaseDir(): "lease_", s.inboxDir(): "m_"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("dispatch: spool: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, ".json") {
				os.Remove(filepath.Join(dir, name))
			}
		}
	}
	return &spoolCoord{s: s}, nil
}

type spoolCoord struct {
	s     *Spool
	queue []*Msg
}

// Recv implements Transport: drain the inbox directory in name order
// (per-worker message order is preserved by the zero-padded sequence in
// the name) into an in-memory queue and pop one message.
func (c *spoolCoord) Recv(timeout time.Duration) (*Msg, error) {
	deadline := time.Now().Add(timeout)
	step := spoolPollStep(timeout)
	for {
		if len(c.queue) > 0 {
			m := c.queue[0]
			c.queue = c.queue[1:]
			return m, nil
		}
		entries, err := os.ReadDir(c.s.inboxDir())
		if err != nil {
			return nil, fmt.Errorf("dispatch: spool inbox: %w", err)
		}
		var names []string
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, "m_") && strings.HasSuffix(name, ".json") {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			path := filepath.Join(c.s.inboxDir(), name)
			data, err := os.ReadFile(path)
			if err != nil {
				continue // racing another reader or a slow sync; retry next poll
			}
			m, err := DecodeMsg(data)
			if err != nil {
				// Atomic writes make torn files impossible; anything
				// undecodable is foreign or from a mixed-version build.
				os.Remove(path)
				continue
			}
			os.Remove(path)
			c.queue = append(c.queue, m)
		}
		if len(c.queue) > 0 {
			continue
		}
		if time.Now().After(deadline) {
			return nil, nil
		}
		time.Sleep(step)
	}
}

// Send implements Transport.
func (c *spoolCoord) Send(l *Lease) error {
	data, err := EncodeLease(l)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("lease_%s_%d.json", l.Worker, l.Seq)
	return atomicfile.Write(filepath.Join(c.s.leaseDir(), name), data, 0o644)
}

// Finish implements Transport: drop the stop marker every worker polls.
func (c *spoolCoord) Finish() error {
	return atomicfile.Write(c.s.stopPath(), []byte("stop\n"), 0o644)
}

// Worker returns the named worker's side of the spool.
func (s *Spool) Worker(id string) (WorkerTransport, error) {
	if !ValidWorkerID(id) {
		return nil, fmt.Errorf("dispatch: worker id %q not usable in spool file names (letters, digits, '.', '-', '_')", id)
	}
	return &spoolWorker{s: s, id: id}, nil
}

type spoolWorker struct {
	s   *Spool
	id  string
	seq atomic.Int64 // message file sequence (heartbeats share it)
}

// Send implements WorkerTransport.
func (w *spoolWorker) Send(m *Msg) error {
	data, err := EncodeMsg(m)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("m_%s_%012d.json", w.id, w.seq.Add(1))
	return atomicfile.Write(filepath.Join(w.s.inboxDir(), name), data, 0o644)
}

// RecvLease implements WorkerTransport.
func (w *spoolWorker) RecvLease(seq int, timeout time.Duration) (*Lease, error) {
	path := filepath.Join(w.s.leaseDir(), fmt.Sprintf("lease_%s_%d.json", w.id, seq))
	deadline := time.Now().Add(timeout)
	step := spoolPollStep(timeout)
	for {
		data, err := os.ReadFile(path)
		if err == nil {
			l, derr := DecodeLease(data)
			if derr == nil {
				os.Remove(path)
				return l, nil
			}
			if errors.Is(derr, ErrWireVersion) {
				// A whole, parseable frame from a different build: a
				// mixed-version fleet must fail loudly, not retry.
				os.Remove(path)
				return nil, fmt.Errorf("dispatch: lease %s: %w", path, derr)
			}
			// Torn JSON. The coordinator's own writes are atomic, but a
			// non-atomic synchronizer (an rsync still copying) can expose
			// a partial file; leave it in place and re-poll — the same
			// retry-with-backoff posture the HTTP worker takes on a flaky
			// link. If it never becomes whole, the poll times out, the
			// worker re-requests, and the coordinator requeues on
			// deadline.
		}
		if w.s.stopped() {
			return &Lease{Version: WireVersion, Worker: w.id, Stop: true}, nil
		}
		if time.Now().After(deadline) {
			return nil, nil
		}
		time.Sleep(step)
	}
}
