// Deterministic exponential backoff with jitter, shared by worker
// retry loops and the fleet supervisor's restart schedule. Jitter is
// drawn from a seeded generator, not the global one, so tests (and the
// chaos suite) can pin the exact delay schedule a seed produces.
package dispatch

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// Backoff produces an exponential backoff-with-jitter delay schedule:
// each Next() draws uniformly from [step/2, step] and then doubles the
// step, up to the cap. The schedule is fully determined by (base, max,
// seed) — two Backoffs built with equal parameters return equal delay
// sequences — which is what lets the chaos tests assert on retry
// timing instead of sleeping and hoping. Not safe for concurrent use.
type Backoff struct {
	base, max time.Duration
	step      time.Duration
	rng       *rand.Rand
}

// NewBackoff returns a Backoff starting at base and doubling up to max.
// base <= 0 takes the Defaults().RetryBase; max below base is raised to
// base.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = Defaults().RetryBase
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, step: base, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	step := b.step
	b.step *= 2
	if b.step > b.max {
		b.step = b.max
	}
	half := step / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}

// Reset drops the step back to base after a success. The jitter stream
// keeps advancing from where it was — determinism is per call sequence,
// not per step value.
func (b *Backoff) Reset() { b.step = b.base }

// SeedFromID derives a stable backoff seed from a worker id, so a fleet
// of workers launched without explicit seeds still desynchronizes its
// retry storms deterministically.
func SeedFromID(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64())
}
