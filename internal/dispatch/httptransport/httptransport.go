// Package httptransport carries the dispatch protocol over a small
// JSON-over-HTTP API, so pull workers attach to a coordinator across
// plain TCP — no shared filesystem, no synced directory. Workers are
// joinable and killable at any time: the lease/heartbeat/retry-budget
// machinery in internal/dispatch is reused unchanged, so merged output
// stays byte-identical to a single-process sweep even under churn.
//
// The API, spoken in the shared dispatch wire codec:
//
//	POST /v1/msg                          one Msg frame → 204
//	GET  /v1/lease?worker=W&seq=N&waitms=MS
//	                                      long-poll for the lease
//	                                      replying to (W, N): 200 with a
//	                                      Lease frame, or 204 after
//	                                      waitms with none
//	GET  /v1/status                       coordinator status: queue
//	                                      depth, per-worker lease state,
//	                                      uptime, lease ages, restart
//	                                      ledger, finished flag
//	POST /v1/drain?worker=W               ask the coordinator to drain
//	                                      worker W (requires an attached
//	                                      supervisor controller)
//
// NewServer is the coordinator side (a dispatch.Transport that also
// implements dispatch.StatusSink); Dial is the worker side (a
// dispatch.WorkerTransport whose requests retry with backoff, so a
// worker may attach before the coordinator is up and survives transient
// network failures).
package httptransport

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"exegpt/internal/dispatch"
)

// maxMsgBytes bounds one POSTed message frame; a cell-result envelope
// is a few KB, so this is generous.
const maxMsgBytes = 64 << 20

// maxLongPoll caps one lease long-poll round trip; clients with longer
// timeouts simply poll again.
const maxLongPoll = 30 * time.Second

// Server is the coordinator side of the HTTP transport: pass it to
// dispatch.Run and serve Handler() on a listener. It implements
// dispatch.Transport and dispatch.StatusSink.
type Server struct {
	inbox chan *dispatch.Msg
	done  chan struct{}
	once  sync.Once

	mu       sync.Mutex
	leases   map[string]chan *dispatch.Lease
	active   map[string]bool // workers heard from on any endpoint
	stopSeen map[string]bool // workers that have received a Stop lease
	status   dispatch.Status
	hasState bool
	ctrl     *dispatch.Controller
}

// NewServer returns an HTTP dispatch transport with no workers yet.
func NewServer() *Server {
	return &Server{
		inbox:    make(chan *dispatch.Msg, 64),
		done:     make(chan struct{}),
		leases:   map[string]chan *dispatch.Lease{},
		active:   map[string]bool{},
		stopSeen: map[string]bool{},
	}
}

func (s *Server) leaseChan(worker string) chan *dispatch.Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch, ok := s.leases[worker]
	if !ok {
		ch = make(chan *dispatch.Lease, 4)
		s.leases[worker] = ch
	}
	return ch
}

func (s *Server) markActive(worker string) {
	s.mu.Lock()
	s.active[worker] = true
	s.mu.Unlock()
}

func (s *Server) finished() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Recv implements dispatch.Transport.
func (s *Server) Recv(timeout time.Duration) (*dispatch.Msg, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m := <-s.inbox:
		return m, nil
	case <-timer.C:
		return nil, nil
	}
}

// Send implements dispatch.Transport. An undeliverable lease (worker
// gone, or not draining its long-polls) is dropped; the worker
// re-requests and the coordinator requeues on deadline.
func (s *Server) Send(l *dispatch.Lease) error {
	select {
	case s.leaseChan(l.Worker) <- l:
	default:
	}
	return nil
}

// Finish implements dispatch.Transport: every lease long-poll from here
// on answers Stop immediately.
func (s *Server) Finish() error {
	s.once.Do(func() { close(s.done) })
	return nil
}

// PublishStatus implements dispatch.StatusSink; the snapshot is served
// on GET /v1/status.
func (s *Server) PublishStatus(st dispatch.Status) {
	s.mu.Lock()
	s.status = st
	s.hasState = true
	s.mu.Unlock()
}

// AttachControl connects the coordinator's supervisor controller, which
// enables POST /v1/drain: operators (or an out-of-process supervisor)
// can ask for a worker to be drained over the same API the fleet
// speaks.
func (s *Server) AttachControl(c *dispatch.Controller) {
	s.mu.Lock()
	s.ctrl = c
	s.mu.Unlock()
}

// DrainStops waits up to timeout for every worker the server has heard
// from to observe a Stop lease, so a coordinator process can linger
// just long enough for its fleet to exit cleanly before closing the
// listener. It reports whether all of them did.
func (s *Server) DrainStops(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		drained := true
		for w := range s.active {
			if !s.stopSeen[w] {
				drained = false
				break
			}
		}
		s.mu.Unlock()
		if drained {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Handler returns the coordinator's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/msg", s.handleMsg)
	mux.HandleFunc("GET /v1/lease", s.handleLease)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	return mux
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		http.Error(w, "missing worker", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	ctrl := s.ctrl
	s.mu.Unlock()
	if ctrl == nil {
		http.Error(w, "no supervisor controller attached to this coordinator", http.StatusNotImplemented)
		return
	}
	ctrl.Drain(worker)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMsg(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxMsgBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("read msg: %v", err), http.StatusBadRequest)
		return
	}
	m, err := dispatch.DecodeMsg(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if m.Worker == "" {
		http.Error(w, "msg has no worker id", http.StatusBadRequest)
		return
	}
	s.markActive(m.Worker)
	select {
	case s.inbox <- m:
	case <-s.done:
		// The run is over; drop the message (the worker's next lease
		// poll answers Stop).
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	worker := q.Get("worker")
	if worker == "" {
		http.Error(w, "missing worker", http.StatusBadRequest)
		return
	}
	seq, err := strconv.Atoi(q.Get("seq"))
	if err != nil {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	wait := time.Duration(0)
	if ms := q.Get("waitms"); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad waitms", http.StatusBadRequest)
			return
		}
		wait = time.Duration(n) * time.Millisecond
	}
	if wait > maxLongPoll {
		wait = maxLongPoll
	}
	s.markActive(worker)

	writeLease := func(l *dispatch.Lease) {
		data, err := dispatch.EncodeLease(l)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if l.Stop {
			s.mu.Lock()
			s.stopSeen[worker] = true
			s.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	}

	ch := s.leaseChan(worker)
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		select {
		case l := <-ch:
			// Leases for superseded request sequences (a reply sent just
			// before the worker re-requested) are discarded, as on every
			// transport.
			if l.Stop || l.Seq == seq {
				writeLease(l)
				return
			}
		case <-s.done:
			writeLease(&dispatch.Lease{Version: dispatch.WireVersion, Worker: worker, Stop: true})
			return
		case <-timer.C:
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snapshot := struct {
		dispatch.Status
		Finished bool `json:"finished"`
	}{s.status, s.finished()}
	s.mu.Unlock()
	data, err := json.MarshalIndent(&snapshot, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// Client is one worker's side of the HTTP transport, a
// dispatch.WorkerTransport. Safe for concurrent use (the evaluation
// loop and the heartbeat ticker share it).
type Client struct {
	base string
	id   string
	hc   *http.Client
	// retryFor bounds how long Send keeps retrying a failing POST with
	// backoff before reporting the transport broken.
	retryFor time.Duration
	// retryBase/retryMax/retrySeed parameterize the per-attempt backoff
	// schedule (dispatch.NewBackoff); see Tune.
	retryBase time.Duration
	retryMax  time.Duration
	retrySeed int64
}

// Dial prepares a worker client for the coordinator at baseURL (e.g.
// "http://gpu1:8080"). No connection is made yet: the first request
// retries with backoff, so the worker may attach before the coordinator
// is up. retryFor bounds how long one Send retries a failing POST
// before the worker gives up on the coordinator; <= 0 means 2 minutes.
func Dial(baseURL, workerID string, retryFor time.Duration) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("httptransport: bad coordinator URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("httptransport: coordinator URL %q: want http:// or https://", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("httptransport: coordinator URL %q has no host", baseURL)
	}
	if workerID == "" {
		return nil, fmt.Errorf("httptransport: empty worker id")
	}
	if retryFor <= 0 {
		retryFor = 2 * time.Minute
	}
	return &Client{
		base:      strings.TrimRight(u.String(), "/"),
		id:        workerID,
		hc:        &http.Client{Timeout: maxLongPoll + 15*time.Second},
		retryFor:  retryFor,
		retryBase: 100 * time.Millisecond,
		retryMax:  2 * time.Second,
		retrySeed: dispatch.SeedFromID(workerID),
	}, nil
}

// Tune overrides the client's retry backoff schedule: each failing
// attempt inside Send/RecvLease sleeps an exponential
// backoff-with-jitter delay from base up to max, jitter pinned by seed
// (0 keeps the worker-id-derived seed). Call before the first request;
// the CLI threads dispatch.Options.RetryBase/RetryMax here.
func (c *Client) Tune(base, max time.Duration, seed int64) {
	if base > 0 {
		c.retryBase = base
	}
	if max > 0 {
		c.retryMax = max
	}
	if c.retryMax < c.retryBase {
		c.retryMax = c.retryBase
	}
	if seed != 0 {
		c.retrySeed = seed
	}
}

// backoff starts one retry loop's delay schedule.
func (c *Client) backoff() *dispatch.Backoff {
	return dispatch.NewBackoff(c.retryBase, c.retryMax, c.retrySeed)
}

// Send implements dispatch.WorkerTransport: POST one message frame,
// retrying network errors and 5xx responses with exponential backoff
// for up to the client's retry budget. A 4xx response is permanent (a
// protocol or version mismatch), reported immediately.
func (c *Client) Send(m *dispatch.Msg) error {
	frame, err := dispatch.EncodeMsg(m)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(c.retryFor)
	bo := c.backoff()
	for {
		err := c.postMsg(frame)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return fmt.Errorf("httptransport: worker %s: %w", c.id, perm.err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("httptransport: worker %s: coordinator unreachable for %v: %w", c.id, c.retryFor, err)
		}
		time.Sleep(bo.Next())
	}
}

// permanentError marks a response that retrying cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

func (c *Client) postMsg(frame []byte) error {
	resp, err := c.hc.Post(c.base+"/v1/msg", "application/json", bytes.NewReader(frame))
	if err != nil {
		return err
	}
	defer drainClose(resp)
	switch {
	case resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK:
		return nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &permanentError{fmt.Errorf("coordinator rejected msg: %s: %s",
			resp.Status, strings.TrimSpace(string(body)))}
	default:
		return fmt.Errorf("coordinator: %s", resp.Status)
	}
}

// RecvLease implements dispatch.WorkerTransport: long-poll the lease
// endpoint until the reply to request seq (or a Stop) arrives, the
// timeout passes (nil), or a permanent protocol error occurs. Network
// errors back off and retry within the timeout, so a coordinator
// restart or a flaky link only slows the worker down.
func (c *Client) RecvLease(seq int, timeout time.Duration) (*dispatch.Lease, error) {
	deadline := time.Now().Add(timeout)
	bo := c.backoff()
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		wait := remaining
		if wait > maxLongPoll {
			wait = maxLongPoll
		}
		u := fmt.Sprintf("%s/v1/lease?worker=%s&seq=%d&waitms=%d",
			c.base, url.QueryEscape(c.id), seq, wait.Milliseconds())
		resp, err := c.hc.Get(u)
		if err != nil {
			delay := bo.Next()
			if time.Until(deadline) <= delay {
				return nil, nil
			}
			time.Sleep(delay)
			continue
		}
		l, err := c.readLease(resp)
		if err != nil {
			return nil, fmt.Errorf("httptransport: worker %s: %w", c.id, err)
		}
		if l != nil && (l.Stop || l.Seq == seq) {
			return l, nil
		}
		// 204 (nothing yet) or a superseded lease: poll again.
	}
}

func (c *Client) readLease(resp *http.Response) (*dispatch.Lease, error) {
	defer drainClose(resp)
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil, nil
	case resp.StatusCode == http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxMsgBytes))
		if err != nil {
			return nil, fmt.Errorf("read lease: %w", err)
		}
		return dispatch.DecodeLease(body)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("coordinator rejected lease poll: %s: %s",
			resp.Status, strings.TrimSpace(string(body)))
	}
}

// drainClose consumes what remains of a response body so the connection
// can be reused, then closes it.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
