package httptransport_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exegpt/internal/dispatch"
	"exegpt/internal/dispatch/httptransport"
	"exegpt/internal/dispatch/journal"
	"exegpt/internal/dispatch/transporttest"
	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

// newTestCoord serves a fresh coordinator on an httptest listener.
func newTestCoord(t *testing.T) (*httptransport.Server, *httptest.Server) {
	t.Helper()
	srv := httptransport.NewServer()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func dialWorker(t *testing.T, url, id string) *httptransport.Client {
	t.Helper()
	c, err := httptransport.Dial(url, id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestHTTPConformance runs the shared transport conformance suite over
// real TCP, with corruption modeled as a truncated POST body — the
// coordinator must 400 it and carry on.
func TestHTTPConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) *transporttest.Harness {
		srv, hs := newTestCoord(t)
		return &transporttest.Harness{
			Coordinator: srv,
			Worker: func(t *testing.T, id string) dispatch.WorkerTransport {
				return dialWorker(t, hs.URL, id)
			},
			Corrupt: func() error {
				resp, err := http.Post(hs.URL+"/v1/msg", "application/json",
					strings.NewReader(`{"version":1,"type":3,"worker":"torn","resu`))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusBadRequest {
					return fmt.Errorf("truncated frame accepted: %s", resp.Status)
				}
				return nil
			},
		}
	})
}

// TestDialRejectsBadURLs: the client validates the coordinator URL up
// front, not on first use.
func TestDialRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "gpu1:8080", "ftp://gpu1:8080", "http://", "://x"} {
		if _, err := httptransport.Dial(bad, "w", 0); err == nil {
			t.Errorf("Dial(%q) accepted", bad)
		}
	}
	if _, err := httptransport.Dial("http://gpu1:8080", "", 0); err == nil {
		t.Error("Dial with empty worker id accepted")
	}
	if _, err := httptransport.Dial("http://gpu1:8080/", "w", 0); err != nil {
		t.Errorf("valid URL rejected: %v", err)
	}
}

// TestSendRetriesUntilCoordinatorUp: a worker attaching before the
// coordinator listens must retry with backoff and succeed once the
// server appears — the elastic-fleet attach path.
func TestSendRetriesUntilCoordinatorUp(t *testing.T) {
	var tries atomic.Int32
	srv := httptransport.NewServer()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tries.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer hs.Close()

	c, err := httptransport.Dial(hs.URL, "early", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(&dispatch.Msg{Version: dispatch.WireVersion, Type: dispatch.MsgRequest,
		Worker: "early", Seq: 1, Max: 1}); err != nil {
		t.Fatalf("Send did not outlast transient 503s: %v", err)
	}
	if got := tries.Load(); got < 3 {
		t.Fatalf("Send reached the server %d times, want >= 3 (two 503s then success)", got)
	}
	if m, err := srv.Recv(time.Second); err != nil || m == nil || m.Worker != "early" {
		t.Fatalf("coordinator never received the retried message: %v %v", m, err)
	}
}

// TestSendReportsPermanentErrors: a 4xx response must fail immediately
// instead of burning the retry budget.
func TestSendReportsPermanentErrors(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "wrong protocol", http.StatusBadRequest)
	}))
	defer hs.Close()
	c, err := httptransport.Dial(hs.URL, "w", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = c.Send(&dispatch.Msg{Type: dispatch.MsgRequest, Worker: "w", Seq: 1})
	if err == nil {
		t.Fatal("4xx-rejected message reported as sent")
	}
	if !strings.Contains(err.Error(), "wrong protocol") {
		t.Fatalf("error does not carry the coordinator's reason: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("permanent 4xx retried for %v", elapsed)
	}
}

// TestServerRejectsForeignWireVersion: frames from a differently-
// versioned build must bounce with a 400 naming the mismatch, so mixed
// fleets fail loudly. (Clients cannot emit such frames — EncodeMsg
// stamps the version — so this posts the raw bytes.)
func TestServerRejectsForeignWireVersion(t *testing.T) {
	_, hs := newTestCoord(t)
	resp, err := http.Post(hs.URL+"/v1/msg", "application/json",
		strings.NewReader(`{"version":99,"type":1,"worker":"vnext","seq":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed-version frame: got %s, want 400", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "version") {
		t.Fatalf("rejection does not name the version mismatch: %s", body)
	}
}

// TestStatusEndpoint: the status endpoint must expose queue depth and
// per-worker lease state during a run, and flip finished afterwards.
func TestStatusEndpoint(t *testing.T) {
	const fp, n = "fp-http-status", 3
	srv, hs := newTestCoord(t)

	res := make(chan error, 1)
	go func() {
		_, err := dispatch.Run(srv, dispatch.Config{
			Fingerprint: fp, Cells: n,
			Options: dispatch.Options{LeaseTimeout: time.Minute, Idle: 20 * time.Second},
		})
		res <- err
	}()

	getStatus := func() (st struct {
		dispatch.Status
		Finished bool `json:"finished"`
	}) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status not JSON: %v\n%s", err, body)
		}
		return st
	}

	// Take (and hold) a lease, then look for it in the status.
	wt := dialWorker(t, hs.URL, "holder")
	wt.Send(&dispatch.Msg{Version: dispatch.WireVersion, Type: dispatch.MsgRequest,
		Worker: "holder", Seq: 1, Max: 2})
	var lease *dispatch.Lease
	deadline := time.Now().Add(10 * time.Second)
	for lease == nil && time.Now().Before(deadline) {
		l, err := wt.RecvLease(1, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		lease = l
	}
	if lease == nil || len(lease.Cells) != 2 {
		t.Fatalf("no 2-cell lease granted: %+v", lease)
	}

	st := getStatus()
	if st.Finished {
		t.Fatal("status finished mid-run")
	}
	if st.Total != n || st.Queued != n-2 {
		t.Fatalf("status queue: total %d queued %d, want %d and %d", st.Total, st.Queued, n, n-2)
	}
	if len(st.Workers) != 1 || st.Workers[0].Worker != "holder" ||
		len(st.Workers[0].Cells) != 2 || st.Workers[0].DeadlineMS <= 0 {
		t.Fatalf("status workers do not show the held lease: %+v", st.Workers)
	}

	// Finish the grid and confirm the endpoint flips to finished.
	for c := 0; c < n; c++ {
		env := distsweep.NewCellEnvelope(fp, n, fakeCell(c))
		wt.Send(&dispatch.Msg{Version: dispatch.WireVersion, Type: dispatch.MsgResult,
			Worker: "holder", Result: env})
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	st = getStatus()
	if !st.Finished || st.Done != n {
		t.Fatalf("post-run status: finished %v done %d, want true and %d", st.Finished, st.Done, n)
	}
}

// TestDrainStops: DrainStops must hold until every active worker has
// observed Stop, and report success once it has been delivered.
func TestDrainStops(t *testing.T) {
	srv, hs := newTestCoord(t)
	wt := dialWorker(t, hs.URL, "w1")
	wt.Send(&dispatch.Msg{Version: dispatch.WireVersion, Type: dispatch.MsgRequest,
		Worker: "w1", Seq: 1, Max: 1})
	if _, err := srv.Recv(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	srv.Finish()
	if srv.DrainStops(50 * time.Millisecond) {
		t.Fatal("DrainStops reported drained before the worker polled")
	}
	l, err := wt.RecvLease(1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l == nil || !l.Stop {
		t.Fatalf("post-Finish poll did not return Stop: %+v", l)
	}
	if !srv.DrainStops(5 * time.Second) {
		t.Fatal("DrainStops never observed the delivered Stop")
	}
}

// httpStatus is the status endpoint's JSON shape for these tests.
type httpStatus struct {
	dispatch.Status
	Finished bool `json:"finished"`
}

func getStatus(t *testing.T, url string) httpStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st httpStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status not JSON: %v\n%s", err, body)
	}
	return st
}

// TestStatusUnderChurn hammers the status endpoint while the run churns
// — leases expiring under a deadbeat, a worker failing its way to
// exclusion, honest workers finishing — and checks every snapshot holds
// the endpoint's invariants: counters within bounds, workers sorted,
// and the final state naming the excluded worker with its stderr tail.
func TestStatusUnderChurn(t *testing.T) {
	const fp, n = "fp-http-churn", 8
	srv, hs := newTestCoord(t)

	cfg := dispatch.Config{
		Fingerprint: fp, Cells: n,
		Options: dispatch.Options{
			LeaseTimeout:   150 * time.Millisecond,
			CellRetries:    50,
			WorkerFailures: 1,
			Idle:           30 * time.Second,
		},
		StderrTail: func(w string) string {
			if w == "crasher" {
				return "CUDA out of memory on device 0\n"
			}
			return ""
		},
	}
	res := make(chan error, 1)
	go func() {
		_, err := dispatch.Run(srv, cfg)
		res <- err
	}()

	// Poll the endpoint concurrently for the whole run; record the first
	// invariant violation rather than t.Fatal-ing off the test goroutine.
	var (
		pollMu    sync.Mutex
		pollErr   error
		pollStop  = make(chan struct{})
		pollEnded = make(chan struct{})
	)
	complain := func(format string, args ...any) {
		pollMu.Lock()
		if pollErr == nil {
			pollErr = fmt.Errorf(format, args...)
		}
		pollMu.Unlock()
	}
	go func() {
		defer close(pollEnded)
		for {
			select {
			case <-pollStop:
				return
			default:
			}
			resp, err := http.Get(hs.URL + "/v1/status")
			if err != nil {
				complain("status poll: %v", err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				complain("status poll body: %v", err)
				return
			}
			var st httpStatus
			if err := json.Unmarshal(body, &st); err != nil {
				complain("status not JSON under churn: %v\n%s", err, body)
				return
			}
			if st.Total != n || st.Done > n || st.Queued > n || st.Done < 0 || st.Queued < 0 {
				complain("status counters out of bounds: %+v", st.Status)
				return
			}
			for i := 1; i < len(st.Workers); i++ {
				if st.Workers[i-1].Worker > st.Workers[i].Worker {
					complain("workers not sorted under churn: %+v", st.Workers)
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Churn source 1: a deadbeat takes a lease by hand and abandons it.
	dead := dialWorker(t, hs.URL, "deadbeat")
	dead.Send(&dispatch.Msg{Version: dispatch.WireVersion, Type: dispatch.MsgRequest,
		Worker: "deadbeat", Seq: 1, Max: 2})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		l, err := dead.RecvLease(1, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if l != nil {
			break
		}
	}

	// Churn source 2: a worker whose every evaluation fails.
	crasher := &dispatch.Worker{
		ID: "crasher", Fingerprint: fp, Cells: n,
		Heartbeat: 30 * time.Millisecond,
		Poll:      10 * time.Millisecond,
		Idle:      30 * time.Second,
		Eval: func(c int) (experiments.CellResult, error) {
			return experiments.CellResult{}, fmt.Errorf("kernel panic on cell %d", c)
		},
	}
	go crasher.Run(dialWorker(t, hs.URL, "crasher"))

	// Honest workers drain the grid through the churn.
	for _, id := range []string{"w1", "w2"} {
		w := &dispatch.Worker{
			ID: id, Fingerprint: fp, Cells: n,
			Heartbeat: 30 * time.Millisecond,
			Poll:      10 * time.Millisecond,
			Idle:      30 * time.Second,
			Eval:      func(c int) (experiments.CellResult, error) { return fakeCell(c), nil },
		}
		go w.Run(dialWorker(t, hs.URL, id))
	}

	if err := <-res; err != nil {
		t.Fatal(err)
	}
	close(pollStop)
	<-pollEnded
	pollMu.Lock()
	perr := pollErr
	pollMu.Unlock()
	if perr != nil {
		t.Fatal(perr)
	}

	st := getStatus(t, hs.URL)
	if !st.Finished || st.Done != n {
		t.Fatalf("post-churn status: finished %v done %d, want true and %d", st.Finished, st.Done, n)
	}
	var crasherWS *dispatch.WorkerStatus
	for i := range st.Workers {
		if st.Workers[i].Worker == "crasher" {
			crasherWS = &st.Workers[i]
		}
	}
	if crasherWS == nil || !crasherWS.Excluded {
		t.Fatalf("crasher not excluded in final status: %+v", st.Workers)
	}
	for _, want := range []string{"kernel panic", "CUDA out of memory"} {
		if !strings.Contains(crasherWS.LastError, want) {
			t.Errorf("exclusion reason missing %q: %q", want, crasherWS.LastError)
		}
	}
}

// TestStatusSurvivesJournalReplay: a worker excluded (with its stderr
// tail) before the coordinator dies must still appear excluded — with
// the same reason — on the restarted coordinator's status endpoint,
// because the exclusion was journaled, not just held in memory.
func TestStatusSurvivesJournalReplay(t *testing.T) {
	const fp, n = "fp-http-replay", 4
	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteHeader(journal.Header{Fingerprint: fp, Cells: n}); err != nil {
		t.Fatal(err)
	}

	// Phase 1: a failing worker earns its exclusion, an honest worker
	// finishes the grid, everything lands in the journal.
	srv1, hs1 := newTestCoord(t)
	cfg1 := dispatch.Config{
		Fingerprint: fp, Cells: n,
		Options: dispatch.Options{
			LeaseTimeout:   250 * time.Millisecond,
			CellRetries:    50,
			WorkerFailures: 1,
			Idle:           30 * time.Second,
		},
		StderrTail: func(w string) string {
			if w == "bad" {
				return "CUDA out of memory on device 0\n"
			}
			return ""
		},
		Journal: j,
	}
	res1 := make(chan error, 1)
	go func() {
		_, err := dispatch.Run(srv1, cfg1)
		res1 <- err
	}()
	bad := &dispatch.Worker{
		ID: "bad", Fingerprint: fp, Cells: n,
		Heartbeat: 30 * time.Millisecond,
		Poll:      10 * time.Millisecond,
		Idle:      30 * time.Second,
		Eval: func(c int) (experiments.CellResult, error) {
			return experiments.CellResult{}, fmt.Errorf("kernel panic on cell %d", c)
		},
	}
	go bad.Run(dialWorker(t, hs1.URL, "bad"))
	// Wait for the exclusion to be journaled before letting the honest
	// worker race the grid to completion.
	deadline := time.Now().Add(10 * time.Second)
	for len(j.Exclusions()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("failing worker never excluded")
		}
		time.Sleep(10 * time.Millisecond)
	}
	good := &dispatch.Worker{
		ID: "good", Fingerprint: fp, Cells: n,
		Heartbeat: 30 * time.Millisecond,
		Poll:      10 * time.Millisecond,
		Idle:      30 * time.Second,
		Eval:      func(c int) (experiments.CellResult, error) { return fakeCell(c), nil },
	}
	go good.Run(dialWorker(t, hs1.URL, "good"))
	if err := <-res1; err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Phase 2: replay onto a fresh coordinator — the restart after a
	// crash. All cells are recovered, so the run completes without a
	// single worker, and the status endpoint still explains the
	// exclusion.
	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.Cells()) != n || len(j2.Exclusions()) != 1 {
		t.Fatalf("journal recovered %d cells and %d exclusions, want %d and 1",
			len(j2.Cells()), len(j2.Exclusions()), n)
	}
	srv2, hs2 := newTestCoord(t)
	m, err := dispatch.Run(srv2, dispatch.Config{
		Fingerprint: fp, Cells: n,
		Options:    dispatch.Options{LeaseTimeout: time.Minute, Idle: 20 * time.Second},
		Journal:    j2,
		Completed:  j2.Cells(),
		Exclusions: j2.Exclusions(),
	})
	if err != nil {
		t.Fatal(err)
	}

	envs := make([]*distsweep.CellEnvelope, n)
	for i := 0; i < n; i++ {
		envs[i] = distsweep.NewCellEnvelope(fp, n, fakeCell(i))
	}
	want, err := distsweep.MergeCells(envs)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatal("replayed merge not byte-identical to the direct fold")
	}

	st := getStatus(t, hs2.URL)
	if !st.Finished || st.Done != n {
		t.Fatalf("replayed status: finished %v done %d, want true and %d", st.Finished, st.Done, n)
	}
	var badWS *dispatch.WorkerStatus
	for i := range st.Workers {
		if st.Workers[i].Worker == "bad" {
			badWS = &st.Workers[i]
		}
	}
	if badWS == nil || !badWS.Excluded {
		t.Fatalf("journaled exclusion lost across restart: %+v", st.Workers)
	}
	for _, want := range []string{"kernel panic", "CUDA out of memory"} {
		if !strings.Contains(badWS.LastError, want) {
			t.Errorf("replayed exclusion reason missing %q: %q", want, badWS.LastError)
		}
	}
}

// fakeCell mirrors the conformance suite's synthetic cell results for
// the HTTP-specific tests.
func fakeCell(idx int) experiments.CellResult {
	return experiments.CellResult{
		Cell: idx,
		Rows: []experiments.SweepRow{{
			Model: "OPT-13B", Cluster: "A40", GPUs: 4, Task: "S",
			Bound: 5.0 + float64(idx), System: "FT",
			Tput: 1.5 * float64(idx+1), Feasible: true,
		}},
		Evals: 10 * (idx + 1),
	}
}
