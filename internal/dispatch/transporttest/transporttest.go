// Package transporttest is the conformance suite every dispatch
// transport must pass: the same lease-grant, expiry-requeue,
// duplicate-result, stop-propagation and corruption-tolerance scenarios
// run against the in-process hub, the file spool, and the HTTP
// transport, each pinned to the byte-identical fold the single-process
// sweep produces. A new transport earns its place by calling Run with a
// Harness factory; protocol drift then fails here, named by scenario,
// instead of as a flaky distributed sweep.
package transporttest

import (
	"bytes"
	"testing"
	"time"

	"exegpt/internal/dispatch"
	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

// Harness is one transport instance under test: a coordinator side and
// a way to attach named workers to it.
type Harness struct {
	// Coordinator is the transport's coordinator side, ready for
	// dispatch.Run.
	Coordinator dispatch.Transport
	// Worker attaches the named worker to the same transport instance.
	Worker func(t *testing.T, id string) dispatch.WorkerTransport
	// Corrupt, when non-nil, injects one corrupted frame into the
	// worker → coordinator path — a torn spool file, a truncated POST
	// body — and reports any injection failure. The coordinator must
	// reject or discard the frame and carry on. Leave nil for
	// transports that pass typed values and cannot tear a frame (the
	// in-process hub); the corruption scenario is then skipped.
	Corrupt func() error
	// Tune, when non-nil, adjusts the coordinator options every
	// scenario runs with. Chaos-wrapped harnesses raise the retry and
	// failure budgets so injected faults exercise the requeue/dedup
	// recovery paths instead of tripping the abort paths tested
	// elsewhere.
	Tune func(o *dispatch.Options)
}

// config returns the harness's coordinator settings for one scenario.
func (h *Harness) config(fp string, n int) dispatch.Config {
	cfg := config(fp, n)
	if h.Tune != nil {
		h.Tune(&cfg.Options)
	}
	return cfg
}

// Run executes the conformance scenarios, building a fresh harness (a
// fresh coordinator) for each.
func Run(t *testing.T, factory func(t *testing.T) *Harness) {
	t.Run("GrantAndResult", func(t *testing.T) { testGrantAndResult(t, factory(t)) })
	t.Run("ExpiredLeaseRequeues", func(t *testing.T) { testExpiredLeaseRequeues(t, factory(t)) })
	t.Run("DuplicateResults", func(t *testing.T) { testDuplicateResults(t, factory(t)) })
	t.Run("StopPropagation", func(t *testing.T) { testStopPropagation(t, factory(t)) })
	t.Run("CorruptFrame", func(t *testing.T) { testCorruptFrame(t, factory(t)) })
}

// fakeCellResult builds a synthetic cell result that is a function of
// the cell index, so coverage or ordering mistakes show up as value
// mismatches after the fold.
func fakeCellResult(idx int) experiments.CellResult {
	return experiments.CellResult{
		Cell: idx,
		Rows: []experiments.SweepRow{{
			Model: "OPT-13B", Cluster: "A40", GPUs: 4, Task: "S",
			Bound: 5.0 + float64(idx), System: "FT",
			Tput: 1.5 * float64(idx+1), Feasible: true,
		}},
		Evals: 10 * (idx + 1),
	}
}

// reference folds the full fake grid directly — what any dispatch run
// over the same cells must reproduce byte-identically.
func reference(t *testing.T, fp string, n int) []byte {
	t.Helper()
	envs := make([]*distsweep.CellEnvelope, n)
	for i := 0; i < n; i++ {
		envs[i] = distsweep.NewCellEnvelope(fp, n, fakeCellResult(i))
	}
	m, err := distsweep.MergeCells(envs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// config returns fast-twitch coordinator settings for the scenarios.
func config(fp string, n int) dispatch.Config {
	return dispatch.Config{
		Fingerprint: fp,
		Cells:       n,
		Options: dispatch.Options{
			LeaseTimeout: 250 * time.Millisecond,
			Idle:         20 * time.Second, // fail fast instead of hanging the test
		},
	}
}

// pullWorker returns a fake-eval pull worker tuned for the scenarios.
func pullWorker(id, fp string, n int) *dispatch.Worker {
	return &dispatch.Worker{
		ID: id, Fingerprint: fp, Cells: n,
		Heartbeat: 30 * time.Millisecond,
		Poll:      10 * time.Millisecond,
		Idle:      20 * time.Second,
		Eval:      func(c int) (experiments.CellResult, error) { return fakeCellResult(c), nil },
	}
}

type runResult struct {
	m   *distsweep.Merged
	err error
}

// startCoord runs the coordinator in a goroutine.
func startCoord(ct dispatch.Transport, cfg dispatch.Config) chan runResult {
	out := make(chan runResult, 1)
	go func() {
		m, err := dispatch.Run(ct, cfg)
		out <- runResult{m, err}
	}()
	return out
}

// takeLease drives one request → lease round by hand, re-sending the
// request after a second of silence as a real pull worker would — the
// request or its reply may be dropped by a chaos-wrapped transport.
func takeLease(t *testing.T, wt dispatch.WorkerTransport, id string, seq, max int) *dispatch.Lease {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := wt.Send(&dispatch.Msg{Version: dispatch.WireVersion, Type: dispatch.MsgRequest,
			Worker: id, Seq: seq, Max: max}); err != nil {
			t.Fatal(err)
		}
		for end := time.Now().Add(time.Second); time.Now().Before(end); {
			l, err := wt.RecvLease(seq, 50*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if l != nil {
				return l
			}
		}
	}
	t.Fatal("no lease within 10s")
	return nil
}

// requireIdentical pins a successful run to the reference fold.
func requireIdentical(t *testing.T, r runResult, fp string, n int) {
	t.Helper()
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.m.Cells != n {
		t.Fatalf("covered %d cells, want %d", r.m.Cells, n)
	}
	got, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reference(t, fp, n)) {
		t.Fatal("dispatched merge not byte-identical to the direct fold")
	}
}

// testGrantAndResult: two honest pull workers drain the grid; the fold
// is byte-identical to the direct one.
func testGrantAndResult(t *testing.T, h *Harness) {
	const fp, n = "fp-tt-grant", 6
	res := startCoord(h.Coordinator, h.config(fp, n))
	for _, id := range []string{"w1", "w2"} {
		go pullWorker(id, fp, n).Run(h.Worker(t, id))
	}
	requireIdentical(t, <-res, fp, n)
}

// testExpiredLeaseRequeues: a worker takes a lease and vanishes — no
// results, no heartbeats. Its cells must requeue after the deadline and
// a late-attaching survivor must finish the grid exactly once.
func testExpiredLeaseRequeues(t *testing.T, h *Harness) {
	const fp, n = "fp-tt-expiry", 5
	res := startCoord(h.Coordinator, h.config(fp, n))

	dead := h.Worker(t, "deadbeat")
	l := takeLease(t, dead, "deadbeat", 1, 2)
	if len(l.Cells) == 0 {
		t.Fatal("dead worker got no cells to abandon")
	}
	// Abandon the lease; only now attach the survivor.
	go pullWorker("survivor", fp, n).Run(h.Worker(t, "survivor"))
	requireIdentical(t, <-res, fp, n)
}

// testDuplicateResults: a worker that delivers every result twice (a
// retried sync, a stolen-then-completed lease) must not break
// exactly-once coverage — the first copy wins.
func testDuplicateResults(t *testing.T, h *Harness) {
	const fp, n = "fp-tt-dup", 4
	res := startCoord(h.Coordinator, h.config(fp, n))

	wt := h.Worker(t, "dup")
	go func() {
		for seq := 1; ; seq++ {
			// Re-send the request after a second of silence: a chaos
			// wrapper may have dropped it or its reply.
			var l *dispatch.Lease
			for l == nil {
				wt.Send(&dispatch.Msg{Version: dispatch.WireVersion, Type: dispatch.MsgRequest,
					Worker: "dup", Seq: seq, Max: 1})
				for tries := 0; l == nil && tries < 20; tries++ {
					l, _ = wt.RecvLease(seq, 50*time.Millisecond)
				}
			}
			if l.Stop {
				return
			}
			for _, c := range l.Cells {
				env := distsweep.NewCellEnvelope(fp, n, fakeCellResult(c))
				for i := 0; i < 2; i++ { // every result sent twice
					wt.Send(&dispatch.Msg{Version: dispatch.WireVersion, Type: dispatch.MsgResult,
						Worker: "dup", Result: env})
				}
			}
			if len(l.Cells) == 0 {
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()
	requireIdentical(t, <-res, fp, n)
}

// testStopPropagation: workers in their pull loop must observe Stop and
// exit once the run completes, and a worker attaching *after* the run
// finished must be told to stop rather than wait forever.
func testStopPropagation(t *testing.T, h *Harness) {
	const fp, n = "fp-tt-stop", 3
	res := startCoord(h.Coordinator, h.config(fp, n))

	w := pullWorker("w1", fp, n)
	wDone := make(chan error, 1)
	go func() { wDone <- w.Run(h.Worker(t, "w1")) }()

	requireIdentical(t, <-res, fp, n)
	select {
	case err := <-wDone:
		if err != nil {
			t.Fatalf("worker exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never observed Stop after the run completed")
	}

	// A straggler attaching post-completion gets a Stop lease, not a hang.
	late := h.Worker(t, "late")
	late.Send(&dispatch.Msg{Version: dispatch.WireVersion, Type: dispatch.MsgRequest,
		Worker: "late", Seq: 1, Max: 1})
	deadline := time.Now().Add(10 * time.Second)
	for {
		l, err := late.RecvLease(1, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if l != nil {
			if !l.Stop {
				t.Fatalf("late worker got a live lease %v after completion, want Stop", l.Cells)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("late worker never received Stop")
		}
	}
}

// testCorruptFrame: one torn/truncated frame on the worker →
// coordinator path must be rejected or discarded without derailing the
// run — an honest worker still drains the grid byte-identically.
func testCorruptFrame(t *testing.T, h *Harness) {
	if h.Corrupt == nil {
		t.Skip("transport passes typed values; frames cannot tear")
	}
	const fp, n = "fp-tt-torn", 4
	res := startCoord(h.Coordinator, h.config(fp, n))

	if err := h.Corrupt(); err != nil {
		t.Fatalf("corrupt frame injection: %v", err)
	}
	go pullWorker("honest", fp, n).Run(h.Worker(t, "honest"))
	requireIdentical(t, <-res, fp, n)
}
