package dispatch

import (
	"strings"
	"sync"
	"testing"

	"exegpt/internal/experiments"
)

// statusHub wraps the in-process hub with a StatusSink, recording the
// latest published snapshot like the HTTP transport does.
type statusHub struct {
	*Hub
	mu   sync.Mutex
	last Status
	seen int
}

func (s *statusHub) PublishStatus(st Status) {
	s.mu.Lock()
	s.last = st
	s.seen++
	s.mu.Unlock()
}

func (s *statusHub) snapshot() (Status, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.seen
}

// TestStatusExplainsExclusion: when a worker burns its failure budget,
// the published status must mark it excluded and say why — including
// the worker's captured stderr tail when the spawner provides one — so
// operators see the cause on the status endpoint, not just the fact.
func TestStatusExplainsExclusion(t *testing.T) {
	const fp, n = "fp-status-excl", 4
	sh := &statusHub{Hub: NewHub()}
	cfg := testConfig(fp, n)
	cfg.Options.WorkerFailures = 1
	cfg.Options.CellRetries = 50
	cfg.StderrTail = func(w string) string {
		if w == "bad" {
			return "CUDA out of memory on device 0\n"
		}
		return ""
	}
	res := startCoord(sh, cfg)

	bad := fastWorker("bad", fp, n)
	bad.Eval = func(c int) (experiments.CellResult, error) {
		return experiments.CellResult{}, &testErr{"kernel panic"}
	}
	go bad.Run(sh.Worker("bad"))
	go fastWorker("good", fp, n).Run(sh.Worker("good"))

	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	st, seen := sh.snapshot()
	if seen == 0 {
		t.Fatal("coordinator never published a status")
	}
	if st.Total != n || st.Done != n || st.Queued != 0 {
		t.Fatalf("final status %+v, want %d/%d done with empty queue", st, n, n)
	}
	var badWS *WorkerStatus
	for i := range st.Workers {
		if st.Workers[i].Worker == "bad" {
			badWS = &st.Workers[i]
		}
	}
	if badWS == nil {
		t.Fatalf("excluded worker missing from status: %+v", st.Workers)
	}
	if !badWS.Excluded || badWS.Failures < 1 {
		t.Fatalf("worker not marked excluded: %+v", badWS)
	}
	for _, want := range []string{"kernel panic", "CUDA out of memory"} {
		if !strings.Contains(badWS.LastError, want) {
			t.Errorf("exclusion reason missing %q: %q", want, badWS.LastError)
		}
	}
}

// TestStatusWorkerOrderDeterministic: worker rows are sorted by id so
// the status endpoint is stable to poll and diff.
func TestStatusWorkerOrderDeterministic(t *testing.T) {
	const fp, n = "fp-status-order", 6
	sh := &statusHub{Hub: NewHub()}
	res := startCoord(sh, testConfig(fp, n))
	for _, id := range []string{"zeta", "alpha", "mid"} {
		go fastWorker(id, fp, n).Run(sh.Worker(id))
	}
	if r := <-res; r.err != nil {
		t.Fatal(r.err)
	}
	st, _ := sh.snapshot()
	for i := 1; i < len(st.Workers); i++ {
		if st.Workers[i-1].Worker > st.Workers[i].Worker {
			t.Fatalf("workers not sorted by id: %+v", st.Workers)
		}
	}
}
