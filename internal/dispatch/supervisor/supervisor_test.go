package supervisor

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"exegpt/internal/dispatch"
)

// fakeControl is an in-memory Control recording drains and restart
// reports, with a settable status snapshot.
type fakeControl struct {
	mu       sync.Mutex
	status   dispatch.Status
	has      bool
	drains   []string
	restarts []dispatch.WorkerRestart
}

func (c *fakeControl) Status() (dispatch.Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status, c.has
}

func (c *fakeControl) Drain(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drains = append(c.drains, worker)
}

func (c *fakeControl) RecordRestart(r dispatch.WorkerRestart) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restarts = append(c.restarts, r)
}

func (c *fakeControl) setStatus(s dispatch.Status) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.status, c.has = s, true
}

func (c *fakeControl) drained() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.drains...)
}

func (c *fakeControl) records() []dispatch.WorkerRestart {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]dispatch.WorkerRestart(nil), c.restarts...)
}

// fakeOps is an in-memory Ops: workers spawn instantly and live until
// the test exits or kills them.
type fakeOps struct {
	mu       sync.Mutex
	spawned  []string
	spawnAt  map[string]time.Time
	liveSet  map[string]bool
	exitSet  map[string]bool
	exitErr  map[string]error
	killed   []string
	spawnErr func(id string) error
}

func newFakeOps() *fakeOps {
	return &fakeOps{
		spawnAt: map[string]time.Time{},
		liveSet: map[string]bool{},
		exitSet: map[string]bool{},
		exitErr: map[string]error{},
	}
}

func (o *fakeOps) Spawn(id string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.spawnErr != nil {
		if err := o.spawnErr(id); err != nil {
			return err
		}
	}
	o.spawned = append(o.spawned, id)
	o.spawnAt[id] = time.Now()
	o.liveSet[id] = true
	return nil
}

func (o *fakeOps) Exited(id string) (bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.exitSet[id] {
		return true, o.exitErr[id]
	}
	if !o.liveSet[id] {
		return true, fmt.Errorf("unknown worker %s", id)
	}
	return false, nil
}

func (o *fakeOps) Kill(id string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.killed = append(o.killed, id)
	o.exitSet[id] = true
	o.exitErr[id] = errors.New("killed")
	return nil
}

// exit marks a worker as having exited with the given error.
func (o *fakeOps) exit(id string, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.exitSet[id] = true
	o.exitErr[id] = err
}

func (o *fakeOps) spawns() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.spawned...)
}

func (o *fakeOps) kills() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.killed...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fastCfg is a supervisor config with millisecond-scale timing for
// tests.
func fastCfg(ctrl Control, ops Ops) Config {
	return Config{
		Control:     ctrl,
		Fleet:       ops,
		Min:         1,
		Max:         1,
		Interval:    2 * time.Millisecond,
		IdleGrace:   10 * time.Millisecond,
		DrainGrace:  50 * time.Millisecond,
		MaxRestarts: 3,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Seed:        42,
	}
}

// run starts the supervisor on a goroutine and returns an idempotent
// stop trigger and the Run result channel.
func run(t *testing.T, cfg Config) (func(), <-chan error) {
	t.Helper()
	sup, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var once sync.Once
	stopFn := func() { once.Do(func() { close(stop) }) }
	res := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		res <- sup.Run(stop)
		close(done)
	}()
	t.Cleanup(func() {
		stopFn()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("supervisor did not stop on cleanup")
		}
	})
	return stopFn, res
}

// TestReplacesCrashedWorker: a crashed worker's slot is restarted
// under the next incarnation name, and the replacement is reported.
func TestReplacesCrashedWorker(t *testing.T) {
	ctrl, ops := &fakeControl{}, newFakeOps()
	ctrl.setStatus(dispatch.Status{Total: 10, Done: 0, Queued: 5})
	run(t, fastCfg(ctrl, ops))

	waitFor(t, "first spawn", func() bool { return len(ops.spawns()) >= 1 })
	if got := ops.spawns()[0]; got != "s0r0" {
		t.Fatalf("first incarnation = %s, want s0r0", got)
	}
	ops.exit("s0r0", errors.New("signal: killed"))
	waitFor(t, "replacement spawn", func() bool { return len(ops.spawns()) >= 2 })
	if got := ops.spawns()[1]; got != "s0r1" {
		t.Fatalf("replacement incarnation = %s, want s0r1", got)
	}
	recs := ctrl.records()
	if len(recs) == 0 {
		t.Fatal("no restart reported")
	}
	r := recs[0]
	if r.Slot != "s0" || r.Worker != "s0r0" || r.Restarts != 1 || r.Poisoned {
		t.Fatalf("restart record = %+v", r)
	}
	if !strings.Contains(r.Reason, "signal: killed") {
		t.Fatalf("restart reason %q does not carry the exit error", r.Reason)
	}
}

// TestPoisonsAfterMaxRestarts: a slot whose workers keep dying is
// declared poisoned after MaxRestarts replacements — with backoff gaps
// between them — and a fleet of only poisoned slots is a fatal error,
// not an idle loop.
func TestPoisonsAfterMaxRestarts(t *testing.T) {
	ctrl, ops := &fakeControl{}, newFakeOps()
	ctrl.setStatus(dispatch.Status{Total: 10, Done: 0, Queued: 5})
	cfg := fastCfg(ctrl, ops)
	cfg.MaxRestarts = 2
	cfg.BackoffBase = 20 * time.Millisecond
	cfg.BackoffMax = 40 * time.Millisecond
	_, res := run(t, cfg)

	// Kill every incarnation as soon as it spawns.
	go func() {
		seen := 0
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			for _, id := range ops.spawns()[seen:] {
				ops.exit(id, errors.New("exit status 1"))
				seen++
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var err error
	select {
	case err = <-res:
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not give up on an all-poisoned fleet")
	}
	if err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("error = %v, want all-slots-poisoned", err)
	}

	// Restart budget: r0 plus MaxRestarts replacements, no more.
	spawns := ops.spawns()
	if len(spawns) != 3 {
		t.Fatalf("spawns = %v, want exactly 3 (r0 + 2 restarts)", spawns)
	}
	// Backoff observed between replacements: each respawn at least
	// base/2 after the previous spawn (jitter floor).
	ops.mu.Lock()
	gap := ops.spawnAt["s0r1"].Sub(ops.spawnAt["s0r0"])
	ops.mu.Unlock()
	if gap < cfg.BackoffBase/2 {
		t.Errorf("respawn gap %v < backoff floor %v", gap, cfg.BackoffBase/2)
	}
	// The final report is the poisoned verdict at the cap.
	recs := ctrl.records()
	last := recs[len(recs)-1]
	if !last.Poisoned || last.Restarts != cfg.MaxRestarts || last.Slot != "s0" {
		t.Fatalf("final record = %+v, want poisoned at %d restarts", last, cfg.MaxRestarts)
	}
}

// TestExclusionReasonInRestartRecord: a worker the coordinator
// excluded is replaced with the exclusion surfaced as the reason, even
// though the process exited cleanly.
func TestExclusionReasonInRestartRecord(t *testing.T) {
	ctrl, ops := &fakeControl{}, newFakeOps()
	ctrl.setStatus(dispatch.Status{Total: 10, Queued: 5})
	run(t, fastCfg(ctrl, ops))

	waitFor(t, "first spawn", func() bool { return len(ops.spawns()) >= 1 })
	ctrl.setStatus(dispatch.Status{Total: 10, Queued: 5, Workers: []dispatch.WorkerStatus{
		{Worker: "s0r0", Excluded: true, Failures: 2, LastError: "cell 3: boom\nstack..."},
	}})
	ops.exit("s0r0", nil) // excluded workers receive Stop and exit cleanly
	waitFor(t, "restart report", func() bool { return len(ctrl.records()) >= 1 })
	r := ctrl.records()[0]
	if !strings.Contains(r.Reason, "excluded by coordinator") || !strings.Contains(r.Reason, "cell 3: boom") {
		t.Fatalf("reason = %q, want exclusion with first error line", r.Reason)
	}
	if strings.Contains(r.Reason, "stack") {
		t.Fatalf("reason %q carries more than the first error line", r.Reason)
	}
}

// TestScalesUpOnQueueDepth: queue depth grows the fleet one slot per
// tick up to Max.
func TestScalesUpOnQueueDepth(t *testing.T) {
	ctrl, ops := &fakeControl{}, newFakeOps()
	ctrl.setStatus(dispatch.Status{Total: 100, Queued: 50})
	cfg := fastCfg(ctrl, ops)
	cfg.Max = 3
	run(t, cfg)

	waitFor(t, "scale-up to 3", func() bool { return len(ops.spawns()) >= 3 })
	spawns := ops.spawns()[:3]
	want := []string{"s0r0", "s1r0", "s2r0"}
	for i, id := range want {
		if spawns[i] != id {
			t.Fatalf("spawns = %v, want %v", spawns, want)
		}
	}
	// Max respected: give it a few ticks, no fourth slot.
	time.Sleep(20 * time.Millisecond)
	if n := len(ops.spawns()); n != 3 {
		t.Fatalf("%d spawns after settling, want 3 (Max)", n)
	}
}

// TestDrainsIdleWorkersDownToMin: with the queue empty, idle workers
// past IdleGrace are drained down to Min — via the coordinator, so
// cells cannot be lost — and their exits retire the slots without
// replacement.
func TestDrainsIdleWorkersDownToMin(t *testing.T) {
	ctrl, ops := &fakeControl{}, newFakeOps()
	ctrl.setStatus(dispatch.Status{Total: 100, Queued: 50})
	cfg := fastCfg(ctrl, ops)
	cfg.Max = 3
	run(t, cfg)

	waitFor(t, "scale-up to 3", func() bool { return len(ops.spawns()) >= 3 })
	// Queue empties; all workers idle.
	ctrl.setStatus(dispatch.Status{Total: 100, Done: 10, Queued: 0})
	waitFor(t, "two drains", func() bool { return len(ctrl.drained()) >= 2 })
	time.Sleep(20 * time.Millisecond)
	if n := len(ctrl.drained()); n != 2 {
		t.Fatalf("%d drains, want exactly 2 (Min=1 survives)", n)
	}
	// Drained workers exit cleanly; their slots must not be respawned.
	for _, id := range ctrl.drained() {
		ops.exit(id, nil)
	}
	time.Sleep(20 * time.Millisecond)
	if n := len(ops.spawns()); n != 3 {
		t.Fatalf("%d spawns after drain-out, want 3 (no replacement of drained slots)", n)
	}
	if len(ctrl.records()) != 0 {
		t.Fatalf("drain-outs reported as restarts: %+v", ctrl.records())
	}
}

// TestDrainGraceKill: a draining worker that never exits is killed
// after DrainGrace rather than holding the scale-down hostage.
func TestDrainGraceKill(t *testing.T) {
	ctrl, ops := &fakeControl{}, newFakeOps()
	ctrl.setStatus(dispatch.Status{Total: 100, Queued: 50})
	cfg := fastCfg(ctrl, ops)
	cfg.Max = 2
	cfg.DrainGrace = 20 * time.Millisecond
	run(t, cfg)

	waitFor(t, "scale-up to 2", func() bool { return len(ops.spawns()) >= 2 })
	ctrl.setStatus(dispatch.Status{Total: 100, Done: 10, Queued: 0})
	waitFor(t, "a drain", func() bool { return len(ctrl.drained()) >= 1 })
	// The worker ignores the drain; the supervisor loses patience.
	waitFor(t, "the kill", func() bool { return len(ops.kills()) >= 1 })
	if ops.kills()[0] != ctrl.drained()[0] {
		t.Fatalf("killed %s, drained %s", ops.kills()[0], ctrl.drained()[0])
	}
}

// TestShutdownDrainsFleet: closing stop drains every live worker and
// returns nil — supervisor shutdown is graceful, not a kill.
func TestShutdownDrainsFleet(t *testing.T) {
	ctrl, ops := &fakeControl{}, newFakeOps()
	ctrl.setStatus(dispatch.Status{Total: 100, Queued: 50})
	cfg := fastCfg(ctrl, ops)
	cfg.Max = 2
	stop, res := run(t, cfg)

	waitFor(t, "scale-up to 2", func() bool { return len(ops.spawns()) >= 2 })
	stop()
	if err := <-res; err != nil {
		t.Fatalf("shutdown error: %v", err)
	}
	if n := len(ctrl.drained()); n != 2 {
		t.Fatalf("%d drains on shutdown, want 2", n)
	}
	if n := len(ops.kills()); n != 0 {
		t.Fatalf("shutdown killed %d workers, want 0", n)
	}
}

// TestFinishesWhenSweepDone: a Done == Total status ends the run.
func TestFinishesWhenSweepDone(t *testing.T) {
	ctrl, ops := &fakeControl{}, newFakeOps()
	ctrl.setStatus(dispatch.Status{Total: 10, Done: 10})
	_, res := run(t, fastCfg(ctrl, ops))
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("finished sweep returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not notice the finished sweep")
	}
}

// TestSeededRestartsResume: journal-replayed restart records resume
// slot state across a supervisor restart — a poisoned slot stays
// poisoned (never spawned), and a partly-burned slot resumes its
// generation counter so incarnation names never collide with
// pre-restart exclusions.
func TestSeededRestartsResume(t *testing.T) {
	ctrl, ops := &fakeControl{}, newFakeOps()
	ctrl.setStatus(dispatch.Status{Total: 10, Queued: 5})
	cfg := fastCfg(ctrl, ops)
	cfg.Max = 2
	cfg.Restarts = []dispatch.WorkerRestart{
		{Slot: "s0", Worker: "s0r2", Restarts: 3, Reason: "exit status 1", Poisoned: true},
		{Slot: "s1", Worker: "s1r1", Restarts: 2, Reason: "signal: killed"},
	}
	run(t, cfg)

	waitFor(t, "resumed spawn", func() bool { return len(ops.spawns()) >= 1 })
	spawns := ops.spawns()
	for _, id := range spawns {
		if strings.HasPrefix(id, "s0") {
			t.Fatalf("poisoned slot s0 was respawned: %v", spawns)
		}
	}
	if spawns[0] != "s1r2" {
		t.Fatalf("resumed slot s1 spawned %s, want s1r2 (generation resumed)", spawns[0])
	}
}

// TestSpawnFailureBurnsRestartBudget: a binary that cannot even start
// burns the restart budget and poisons the slot like any other crash
// loop.
func TestSpawnFailureBurnsRestartBudget(t *testing.T) {
	ctrl, ops := &fakeControl{}, newFakeOps()
	ctrl.setStatus(dispatch.Status{Total: 10, Queued: 5})
	ops.spawnErr = func(id string) error { return errors.New("no such binary") }
	cfg := fastCfg(ctrl, ops)
	cfg.MaxRestarts = 2
	_, res := run(t, cfg)

	select {
	case err := <-res:
		if err == nil || !strings.Contains(err.Error(), "poisoned") {
			t.Fatalf("error = %v, want poisoned fleet", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unspawnable fleet never declared poisoned")
	}
	recs := ctrl.records()
	last := recs[len(recs)-1]
	if !last.Poisoned || !strings.Contains(last.Reason, "no such binary") {
		t.Fatalf("final record = %+v, want poisoned with the spawn error", last)
	}
}
