// Package supervisor is the self-healing half of the elastic-fleet
// story: a reconciliation loop that watches coordinator state (the
// same snapshot served on /v1/status, read through an in-process
// dispatch.Controller) and keeps the worker fleet healthy.
//
// Three behaviors, all driven by the same periodic tick:
//
//   - Replacement. A worker that crashes, or that the coordinator
//     excluded, is replaced by a fresh incarnation of its slot after an
//     exponential backoff-with-jitter delay. Replacements are capped:
//     a slot whose workers keep dying is declared poisoned — recorded
//     through the coordinator (journaled, visible on /v1/status) and
//     never restarted again, so a broken worker binary degrades the
//     fleet loudly instead of crash-looping forever.
//   - Scaling. While the queue has depth and the fleet is below Max,
//     one slot is added per tick; when the queue is empty and a worker
//     has been idle past IdleGrace with the fleet above Min, that
//     worker is drained — the coordinator stops leasing to it, it
//     finishes its in-flight cell, and exits.
//   - Draining. Scale-downs and supervisor shutdown both go through
//     the coordinator's drain path, so no cell is ever lost to fleet
//     management: unfinished cells requeue without charging budgets.
//
// Worker naming follows a slot/incarnation scheme: slot "s0" runs
// workers "s0r0", "s0r1", ... — the slot is the stable unit of
// capacity and backoff/restart accounting, the incarnation is what
// the dispatch protocol (leases, exclusions, status rows) sees. The
// per-slot restart ledger is journaled by the coordinator, so restart
// counts and poisoned verdicts survive coordinator restarts; seed a
// resumed supervisor with Config.Restarts from the journal replay.
package supervisor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"exegpt/internal/dispatch"
)

// Control is the supervisor's view of the coordinator — implemented by
// *dispatch.Controller, mockable in tests.
type Control interface {
	// Status returns the coordinator's latest snapshot, and whether one
	// has been published yet.
	Status() (dispatch.Status, bool)
	// Drain asks the coordinator to stop leasing to a worker.
	Drain(worker string)
	// RecordRestart reports a replacement or poisoned verdict; the
	// coordinator journals it and folds it into the status feed.
	RecordRestart(r dispatch.WorkerRestart)
}

// Ops is the supervisor's view of the process fleet — implemented by a
// thin adapter over distsweep.Fleet in the CLI, by in-process fakes in
// the chaos tests.
type Ops interface {
	// Spawn starts a new worker process under the given incarnation id.
	Spawn(id string) error
	// Exited reports whether the named worker's process has exited, and
	// with what error (nil for a clean exit).
	Exited(id string) (bool, error)
	// Kill forcibly terminates a worker that ignored its drain.
	Kill(id string) error
}

// Config parameterizes a supervisor run.
type Config struct {
	Control Control
	Fleet   Ops
	// Min and Max bound the live (non-poisoned) slot count. Min < 1 is
	// raised to 1; Max < Min is raised to Min.
	Min, Max int
	// Interval is the reconciliation tick; <= 0 means 250ms.
	Interval time.Duration
	// IdleGrace is how long a worker must sit idle (no lease) with an
	// empty queue before a scale-down drains it; <= 0 means 3s.
	IdleGrace time.Duration
	// DrainGrace is how long a draining worker may linger before it is
	// killed; <= 0 means 30s.
	DrainGrace time.Duration
	// MaxRestarts is how many replacements one slot may burn before it
	// is declared poisoned; <= 0 means 3.
	MaxRestarts int
	// BackoffBase/BackoffMax bound the per-slot restart backoff
	// schedule; <= 0 mean 500ms and 15s. Jitter is deterministic per
	// (Seed, slot index).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed pins the restart-backoff jitter schedules.
	Seed int64
	// Prefix names slots Prefix+index; empty means "s".
	Prefix string
	// Restarts seeds per-slot restart counts and poisoned verdicts from
	// a journal replay, so a slot that was poisoned before a
	// coordinator restart stays poisoned and restart counts keep
	// growing instead of resetting.
	Restarts []dispatch.WorkerRestart
	// Logf, when non-nil, receives fleet-management notes.
	Logf func(format string, args ...any)
}

type slotState int

const (
	slotRunning  slotState = iota // worker process believed alive
	slotBackoff                   // worker died; replacement scheduled
	slotDraining                  // drain requested; waiting for exit
	slotPoisoned                  // restart budget spent; never again
	slotRetired                   // drained out (scale-down) or finished
)

func (s slotState) String() string {
	switch s {
	case slotRunning:
		return "running"
	case slotBackoff:
		return "backoff"
	case slotDraining:
		return "draining"
	case slotPoisoned:
		return "poisoned"
	case slotRetired:
		return "retired"
	}
	return "unknown"
}

// slot is one stable unit of fleet capacity.
type slot struct {
	name      string
	gen       int    // restarts burned; next incarnation is r<gen>
	worker    string // current (or last) incarnation id
	state     slotState
	backoff   *dispatch.Backoff
	restartAt time.Time // slotBackoff: when to spawn the replacement
	idleSince time.Time // slotRunning: start of the current idle stretch
	drainedAt time.Time // slotDraining: when the drain was requested
	lastErr   string
}

// SlotInfo is a test- and operator-facing snapshot of one slot.
type SlotInfo struct {
	Name     string
	Worker   string
	State    string
	Restarts int
	LastErr  string
}

// Supervisor reconciles the worker fleet against coordinator state.
// Run drives it; all other methods are safe to call concurrently.
type Supervisor struct {
	cfg      Config
	slots    map[string]*slot
	order    []string
	nextSlot int
	snapshot chan chan []SlotInfo
}

// New validates and defaults cfg and returns an idle supervisor; call
// Run to start reconciling.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Control == nil {
		return nil, fmt.Errorf("supervisor: no Control")
	}
	if cfg.Fleet == nil {
		return nil, fmt.Errorf("supervisor: no Fleet")
	}
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.IdleGrace <= 0 {
		cfg.IdleGrace = 3 * time.Second
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 30 * time.Second
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 500 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 15 * time.Second
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		cfg.BackoffMax = cfg.BackoffBase
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "s"
	}
	s := &Supervisor{
		cfg:      cfg,
		slots:    map[string]*slot{},
		snapshot: make(chan chan []SlotInfo),
	}
	// Materialize journal-seeded slots up front, so a resumed fleet
	// comes back with its full pre-restart shape: poisoned slots stay
	// poisoned (never spawned), partly-burned slots resume their
	// generation counters.
	for {
		name := fmt.Sprintf("%s%d", cfg.Prefix, s.nextSlot)
		if _, ok := s.seededRestarts(name); !ok {
			break
		}
		s.addSlot(time.Now())
	}
	return s, nil
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// seededRestarts returns the journal-replayed restart record for a
// slot name, if any.
func (s *Supervisor) seededRestarts(name string) (dispatch.WorkerRestart, bool) {
	for _, r := range s.cfg.Restarts {
		if r.Slot == name {
			return r, true
		}
	}
	return dispatch.WorkerRestart{}, false
}

// addSlot creates the next slot. A journal-seeded poisoned slot is
// created already poisoned (and not spawned); a seeded restart count
// resumes the generation counter so incarnation ids never collide with
// pre-restart exclusions.
func (s *Supervisor) addSlot(now time.Time) *slot {
	name := fmt.Sprintf("%s%d", s.cfg.Prefix, s.nextSlot)
	idx := s.nextSlot
	s.nextSlot++
	sl := &slot{
		name:    name,
		backoff: dispatch.NewBackoff(s.cfg.BackoffBase, s.cfg.BackoffMax, s.cfg.Seed+int64(idx)),
	}
	if r, ok := s.seededRestarts(name); ok {
		sl.gen = r.Restarts
		sl.lastErr = r.Reason
		if r.Poisoned {
			sl.state = slotPoisoned
			sl.worker = r.Worker
			s.logf("supervisor: slot %s stays poisoned from a previous run (%d restarts): %s", name, r.Restarts, r.Reason)
		}
	}
	if sl.state != slotPoisoned {
		// Spawn immediately on the next reconcile pass.
		sl.state = slotBackoff
		sl.restartAt = now
	}
	s.slots[name] = sl
	s.order = append(s.order, name)
	return sl
}

// Run reconciles until stop fires (normal shutdown: remaining workers
// are drained), the sweep completes, or the fleet becomes hopeless —
// every slot poisoned with work remaining — which returns an error so
// the caller can abort the coordinator instead of idling forever.
func (s *Supervisor) Run(stop <-chan struct{}) error {
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			s.shutdown()
			return nil
		case ch := <-s.snapshot:
			ch <- s.snapshotLocked()
		case <-tick.C:
			finished, err := s.reconcile(time.Now())
			if err != nil {
				return err
			}
			if finished {
				return nil
			}
		}
	}
}

// shutdown asks the coordinator to drain every live worker; the
// workers release their cells and exit on their own.
func (s *Supervisor) shutdown() {
	for _, name := range s.order {
		sl := s.slots[name]
		if sl.state == slotRunning {
			s.cfg.Control.Drain(sl.worker)
		}
	}
}

// Snapshot returns the current slot states (for tests and logs). Only
// valid while Run is running.
func (s *Supervisor) Snapshot() []SlotInfo {
	ch := make(chan []SlotInfo, 1)
	s.snapshot <- ch
	return <-ch
}

func (s *Supervisor) snapshotLocked() []SlotInfo {
	out := make([]SlotInfo, 0, len(s.order))
	for _, name := range s.order {
		sl := s.slots[name]
		out = append(out, SlotInfo{
			Name:     sl.name,
			Worker:   sl.worker,
			State:    sl.state.String(),
			Restarts: sl.gen,
			LastErr:  sl.lastErr,
		})
	}
	return out
}

// reconcile is one tick: reap exits, schedule replacements, spawn due
// ones, and scale. Returns finished=true once the sweep is done.
func (s *Supervisor) reconcile(now time.Time) (bool, error) {
	st, haveStatus := s.cfg.Control.Status()
	if haveStatus && st.Done >= st.Total {
		return true, nil
	}
	workers := map[string]dispatch.WorkerStatus{}
	if haveStatus {
		for _, ws := range st.Workers {
			workers[ws.Worker] = ws
		}
	}

	// Capacity floor: create slots until Min live ones exist — but
	// never once any slot has been poisoned. Every slot runs the same
	// worker binary, so backfilling a poisoned slot with a fresh one
	// just re-runs the crash loop the restart cap exists to stop; the
	// fleet runs on its surviving capacity instead.
	for s.poisonedSlots() == 0 && s.liveSlots() < s.cfg.Min {
		if s.addSlot(now).state == slotPoisoned {
			break
		}
	}

	for _, name := range s.order {
		sl := s.slots[name]
		switch sl.state {
		case slotRunning:
			exited, exitErr := s.cfg.Fleet.Exited(sl.worker)
			if exited {
				s.replace(sl, now, workers[sl.worker], exitErr)
				continue
			}
			// Excluded workers will observe Stop and exit on their own;
			// replacement happens when the exit is reaped above. What is
			// tracked here is idleness for scale-down.
			ws, known := workers[sl.worker]
			busy := known && len(ws.Cells) > 0
			if busy || !haveStatus || st.Queued > 0 {
				sl.idleSince = time.Time{}
				continue
			}
			if sl.idleSince.IsZero() {
				sl.idleSince = now
				continue
			}
			if now.Sub(sl.idleSince) >= s.cfg.IdleGrace && s.liveSlots() > s.cfg.Min {
				s.logf("supervisor: scaling down: draining idle worker %s (queue empty for %v)", sl.worker, now.Sub(sl.idleSince))
				s.cfg.Control.Drain(sl.worker)
				sl.state = slotDraining
				sl.drainedAt = now
			}

		case slotBackoff:
			if now.Before(sl.restartAt) {
				continue
			}
			id := fmt.Sprintf("%sr%d", sl.name, sl.gen)
			if err := s.cfg.Fleet.Spawn(id); err != nil {
				s.replace(sl, now, dispatch.WorkerStatus{}, fmt.Errorf("spawn: %w", err))
				continue
			}
			sl.worker = id
			sl.state = slotRunning
			sl.idleSince = time.Time{}
			s.logf("supervisor: started worker %s", id)

		case slotDraining:
			exited, _ := s.cfg.Fleet.Exited(sl.worker)
			if exited {
				sl.state = slotRetired
				s.logf("supervisor: worker %s drained out", sl.worker)
				continue
			}
			if now.Sub(sl.drainedAt) >= s.cfg.DrainGrace {
				s.logf("supervisor: worker %s ignored its drain for %v, killing it", sl.worker, s.cfg.DrainGrace)
				s.cfg.Fleet.Kill(sl.worker)
				sl.state = slotRetired
			}
		}
	}

	// Scale up: queue depth means cells are waiting with no lease, so
	// capacity helps. One slot per tick keeps the ramp gentle. Poisoned
	// slots freeze the fleet shape, as with the capacity floor above.
	if haveStatus && st.Queued > 0 && s.poisonedSlots() == 0 && s.liveSlots() < s.cfg.Max {
		sl := s.addSlot(now)
		if sl.state == slotBackoff {
			s.logf("supervisor: scaling up: adding slot %s (queue depth %d)", sl.name, st.Queued)
		}
	}

	// Hopeless fleet: poisoning has eaten every slot that could still
	// do work. Erroring out lets the caller interrupt the coordinator
	// instead of both sides waiting forever. (Clear the journal's
	// restart records — or use a fresh journal — to retry after fixing
	// the worker binary.)
	if s.poisonedSlots() > 0 && s.liveSlots() == 0 && s.drainingSlots() == 0 {
		return false, fmt.Errorf("supervisor: every remaining slot is poisoned (%s); worker binary broken?",
			strings.Join(s.Poisoned(), ", "))
	}
	return false, nil
}

// replace moves a slot whose worker died (or was excluded, or failed
// to spawn) to its next incarnation — or declares it poisoned once the
// restart budget is spent. Every decision is reported through the
// Control so it lands in the journal and on /v1/status.
func (s *Supervisor) replace(sl *slot, now time.Time, ws dispatch.WorkerStatus, exitErr error) {
	reason := "exited cleanly mid-sweep"
	switch {
	case ws.Excluded:
		reason = "excluded by coordinator"
		if ws.LastError != "" {
			reason = fmt.Sprintf("excluded by coordinator: %s", firstLine(ws.LastError))
		}
	case exitErr != nil:
		reason = firstLine(exitErr.Error())
	}
	sl.gen++
	sl.lastErr = reason
	if sl.gen > s.cfg.MaxRestarts {
		sl.state = slotPoisoned
		s.logf("supervisor: slot %s poisoned after %d restarts (last worker %s: %s); not restarting",
			sl.name, s.cfg.MaxRestarts, sl.worker, reason)
		s.cfg.Control.RecordRestart(dispatch.WorkerRestart{
			Slot: sl.name, Worker: sl.worker, Restarts: s.cfg.MaxRestarts, Reason: reason, Poisoned: true,
		})
		return
	}
	delay := sl.backoff.Next()
	sl.state = slotBackoff
	sl.restartAt = now.Add(delay)
	s.logf("supervisor: worker %s died (%s); restart %d/%d of slot %s in %v",
		sl.worker, reason, sl.gen, s.cfg.MaxRestarts, sl.name, delay)
	s.cfg.Control.RecordRestart(dispatch.WorkerRestart{
		Slot: sl.name, Worker: sl.worker, Restarts: sl.gen, Reason: reason,
	})
}

// liveSlots counts slots currently providing (or about to provide)
// capacity: running or awaiting a scheduled restart.
func (s *Supervisor) liveSlots() int {
	n := 0
	for _, sl := range s.slots {
		if sl.state == slotRunning || sl.state == slotBackoff {
			n++
		}
	}
	return n
}

// poisonedSlots counts slots declared poisoned.
func (s *Supervisor) poisonedSlots() int {
	n := 0
	for _, sl := range s.slots {
		if sl.state == slotPoisoned {
			n++
		}
	}
	return n
}

// drainingSlots counts slots waiting out a drain.
func (s *Supervisor) drainingSlots() int {
	n := 0
	for _, sl := range s.slots {
		if sl.state == slotDraining {
			n++
		}
	}
	return n
}

// Poisoned returns the poisoned slot names in slot order — the
// operator-facing "these need a human" list. Only valid after Run has
// returned (it reads without synchronization).
func (s *Supervisor) Poisoned() []string {
	var out []string
	for _, name := range s.order {
		if s.slots[name].state == slotPoisoned {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func firstLine(msg string) string {
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		return msg[:i]
	}
	return msg
}
