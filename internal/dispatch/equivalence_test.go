package dispatch

import (
	"bytes"
	"testing"
	"time"

	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// realGrid is the small real grid the distsweep equivalence suite also
// uses: 3 cells on one OPT-13B deployment.
func realGrid() experiments.SweepGrid {
	return experiments.SweepGrid{
		Deployments: []sched.Deployment{
			{Model: model.OPT13B, Cluster: hw.A40Cluster, GPUs: 4},
		},
		Tasks: []workload.Task{workload.Summarization, workload.Translation, workload.CodeGeneration},
	}
}

func realCtx(cacheDir string) *experiments.Context {
	c := experiments.NewQuickContext()
	c.ProfileCacheDir = cacheDir
	return c
}

// TestDispatchRealGridByteIdentical is the acceptance pin for the
// work-stealing path: two pull workers evaluating real sweep cells —
// with a third worker taking a lease and dying mid-run — must produce
// merged sweep JSON byte-identical to a single-process Sweep over the
// same grid.
func TestDispatchRealGridByteIdentical(t *testing.T) {
	grid := realGrid()
	cacheDir := t.TempDir()
	ctx := realCtx(cacheDir)
	fp, err := ctx.GridFingerprint(grid)
	if err != nil {
		t.Fatal(err)
	}
	total := len(grid.Cells())

	// Single-process reference artifact, via the same envelope + merge
	// path the CLI uses.
	cells, err := ctx.SweepShard(grid, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := distsweep.Merge([]*distsweep.Envelope{distsweep.NewEnvelope(fp, 1, 0, cells)})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}

	hub := NewHub()
	cfg := testConfig(fp, total)
	res := startCoord(hub, cfg)

	// Injected failure: grab a lease and die without a word.
	dead := hub.Worker("deadbeat")
	if l := takeLease(t, dead, "deadbeat", 1, 1); len(l.Cells) == 0 {
		t.Fatal("dead worker got no cells to abandon")
	}

	for _, id := range []string{"w1", "w2"} {
		// Each worker gets its own Context — the process-isolation model
		// — sharing only the on-disk profile cache.
		wctx := realCtx(cacheDir)
		w := &Worker{
			ID: id, Fingerprint: fp, Cells: total,
			Heartbeat: 50 * time.Millisecond,
			Poll:      10 * time.Millisecond,
			Idle:      30 * time.Second,
			Eval: func(c int) (experiments.CellResult, error) {
				crs, err := wctx.SweepCells(grid, []int{c})
				if err != nil {
					return experiments.CellResult{}, err
				}
				return crs[0], nil
			},
		}
		go w.Run(hub.Worker(id))
	}

	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	gotBytes, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatal("work-stealing dispatch merge not byte-identical to single-process sweep")
	}
}
