package dispatch

import (
	"bytes"
	"errors"
	"testing"

	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

// TestWireMsgRoundTrip: the codec must preserve every field and frame
// each message as one newline-terminated line.
func TestWireMsgRoundTrip(t *testing.T) {
	env := distsweep.NewCellEnvelope("fp-wire", 4, experiments.CellResult{Cell: 2, Evals: 7})
	in := &Msg{Type: MsgResult, Worker: "w1", Seq: 3, Result: env}
	data, err := EncodeMsg(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Fatal("frame not newline-terminated")
	}
	out, err := DecodeMsg(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != WireVersion {
		t.Fatalf("encode did not stamp the wire version: got %d", out.Version)
	}
	if out.Type != in.Type || out.Worker != in.Worker || out.Seq != in.Seq {
		t.Fatalf("round trip mangled the message: %+v", out)
	}
	if out.Result == nil || out.Result.Result.Cell != 2 || out.Result.Fingerprint != "fp-wire" {
		t.Fatalf("round trip mangled the result envelope: %+v", out.Result)
	}
}

// TestWireReleaseRoundTrip: the voluntary-return message must carry
// its cell list through the codec — a drained worker's released cells
// ride on it.
func TestWireReleaseRoundTrip(t *testing.T) {
	in := &Msg{Type: MsgRelease, Worker: "w1", Cells: []int{5, 2, 7}}
	data, err := EncodeMsg(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeMsg(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgRelease || out.Worker != "w1" ||
		len(out.Cells) != 3 || out.Cells[0] != 5 || out.Cells[1] != 2 || out.Cells[2] != 7 {
		t.Fatalf("round trip mangled the release: %+v", out)
	}
}

// TestWireLeaseRoundTrip mirrors the message round trip for leases.
func TestWireLeaseRoundTrip(t *testing.T) {
	in := &Lease{Worker: "w1", Seq: 9, Cells: []int{3, 1, 4}, TimeoutMS: 1500, Stop: false}
	data, err := EncodeLease(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeLease(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != WireVersion || out.Worker != "w1" || out.Seq != 9 ||
		out.TimeoutMS != 1500 || len(out.Cells) != 3 || out.Cells[0] != 3 {
		t.Fatalf("round trip mangled the lease: %+v", out)
	}
}

// TestWireRejectsVersionMismatch: frames from a differently-versioned
// build must fail with the sentinel, so mixed fleets die loudly.
func TestWireRejectsVersionMismatch(t *testing.T) {
	if _, err := DecodeMsg([]byte(`{"version":99,"type":1,"worker":"w"}`)); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("mixed-version msg: got %v, want ErrWireVersion", err)
	}
	if _, err := DecodeLease([]byte(`{"version":0,"worker":"w","seq":1}`)); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("unversioned lease: got %v, want ErrWireVersion", err)
	}
}

// TestWireRejectsGarbage: torn or non-JSON frames must error, not
// half-decode.
func TestWireRejectsGarbage(t *testing.T) {
	for _, torn := range []string{"", "{", `{"version":1,"type":3,"worker":"w","resu`, "not json\n"} {
		if _, err := DecodeMsg([]byte(torn)); err == nil {
			t.Errorf("DecodeMsg(%q) accepted", torn)
		}
		if _, err := DecodeLease([]byte(torn)); err == nil {
			t.Errorf("DecodeLease(%q) accepted", torn)
		}
	}
}

// TestOptionsDefaultsValidate: Defaults must validate, zero-valued
// fields must resolve to defaults, and negatives must be rejected.
func TestOptionsDefaultsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("Defaults() invalid: %v", err)
	}
	resolved := Options{}.withDefaults()
	d := Defaults()
	if resolved.LeaseTimeout != d.LeaseTimeout || resolved.LeaseCells != d.LeaseCells ||
		resolved.CellRetries != d.CellRetries || resolved.WorkerFailures != d.WorkerFailures {
		t.Fatalf("zero Options resolved to %+v, want defaults %+v", resolved, d)
	}
	if resolved.Idle != 0 {
		t.Fatalf("zero Idle must stay 0 (wait forever), got %v", resolved.Idle)
	}
	for _, bad := range []Options{
		{LeaseTimeout: -1}, {LeaseCells: -2}, {CellRetries: -1}, {WorkerFailures: -3}, {Idle: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Options %+v validated", bad)
		}
	}
}
