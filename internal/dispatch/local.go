// In-process transport: a channel hub connecting a coordinator
// goroutine to worker goroutines in the same process. It is the test
// harness for the dispatch protocol and the cheapest way to embed a
// work-stealing sweep in another Go program.
package dispatch

import (
	"sync"
	"time"
)

// Hub is an in-process dispatch transport. The Hub itself is the
// coordinator side; Worker derives per-worker sides. Safe for
// concurrent use.
type Hub struct {
	inbox chan *Msg
	done  chan struct{}
	once  sync.Once

	mu     sync.Mutex
	leases map[string]chan *Lease
}

// NewHub returns an empty in-process transport.
func NewHub() *Hub {
	return &Hub{
		inbox:  make(chan *Msg, 64),
		done:   make(chan struct{}),
		leases: map[string]chan *Lease{},
	}
}

func (h *Hub) leaseChan(worker string) chan *Lease {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch, ok := h.leases[worker]
	if !ok {
		ch = make(chan *Lease, 4)
		h.leases[worker] = ch
	}
	return ch
}

// Recv implements Transport.
func (h *Hub) Recv(timeout time.Duration) (*Msg, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m := <-h.inbox:
		return m, nil
	case <-timer.C:
		return nil, nil
	}
}

// Send implements Transport. An undeliverable lease (worker gone, or
// not draining) is dropped; the worker re-requests and the coordinator
// requeues on deadline.
func (h *Hub) Send(l *Lease) error {
	select {
	case h.leaseChan(l.Worker) <- l:
	default:
	}
	return nil
}

// Finish implements Transport.
func (h *Hub) Finish() error {
	h.once.Do(func() { close(h.done) })
	return nil
}

// Worker returns the named worker's side of the hub.
func (h *Hub) Worker(id string) WorkerTransport {
	return &hubWorker{h: h, id: id}
}

type hubWorker struct {
	h  *Hub
	id string
}

// Send implements WorkerTransport. Messages sent after the coordinator
// finished are dropped.
func (w *hubWorker) Send(m *Msg) error {
	select {
	case w.h.inbox <- m:
	case <-w.h.done:
	}
	return nil
}

// RecvLease implements WorkerTransport. Leases for superseded request
// sequences (e.g. a reply the coordinator sent just before this worker
// re-requested) are discarded.
func (w *hubWorker) RecvLease(seq int, timeout time.Duration) (*Lease, error) {
	ch := w.h.leaseChan(w.id)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case l := <-ch:
			if l.Stop || l.Seq == seq {
				return l, nil
			}
		case <-w.h.done:
			return &Lease{Version: WireVersion, Worker: w.id, Stop: true}, nil
		case <-timer.C:
			return nil, nil
		}
	}
}
