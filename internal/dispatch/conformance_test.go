package dispatch_test

import (
	"os"
	"path/filepath"
	"testing"

	"exegpt/internal/dispatch"
	"exegpt/internal/dispatch/transporttest"
)

// TestHubConformance runs the shared transport conformance suite
// against the in-process channel hub. The hub passes typed pointers, so
// the corrupt-frame scenario is skipped.
func TestHubConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) *transporttest.Harness {
		hub := dispatch.NewHub()
		return &transporttest.Harness{
			Coordinator: hub,
			Worker: func(t *testing.T, id string) dispatch.WorkerTransport {
				return hub.Worker(id)
			},
		}
	})
}

// TestSpoolConformance runs the shared transport conformance suite
// against the file spool, with corruption modeled as a torn (truncated
// mid-frame) inbox file — what a non-atomic writer or a partial copy
// would leave behind.
func TestSpoolConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) *transporttest.Harness {
		spool, err := dispatch.NewSpool(filepath.Join(t.TempDir(), "spool"))
		if err != nil {
			t.Fatal(err)
		}
		ct, err := spool.Coordinator()
		if err != nil {
			t.Fatal(err)
		}
		return &transporttest.Harness{
			Coordinator: ct,
			Worker: func(t *testing.T, id string) dispatch.WorkerTransport {
				wt, err := spool.Worker(id)
				if err != nil {
					t.Fatal(err)
				}
				return wt
			},
			Corrupt: func() error {
				torn := []byte(`{"version":1,"type":3,"worker":"torn","resu`)
				return os.WriteFile(
					filepath.Join(spool.Root(), "inbox", "m_torn_000000000001.json"),
					torn, 0o644)
			},
		}
	})
}
