// The worker side of the dispatch protocol: a pull loop that requests
// cell batches, evaluates them one cell at a time (streaming results so
// the coordinator can account progress at cell granularity), and
// heartbeats while an evaluation is in flight.
package dispatch

import (
	"fmt"
	"sync"
	"time"

	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

// Worker runs the pull side of a dispatch session.
type Worker struct {
	// ID names this worker in leases and logs. File-spool transports
	// also use it in file names, so keep it to letters, digits, '.',
	// '-' and '_'.
	ID string
	// Fingerprint and Cells describe the grid this worker was launched
	// for; every result envelope is stamped with them and the
	// coordinator rejects mismatches.
	Fingerprint string
	Cells       int
	// Batch is the largest cell batch to request per lease; <= 0 means
	// 1. One cell per lease maximizes stealing granularity; larger
	// batches amortize round trips on high-latency spools.
	Batch int
	// Heartbeat is the interval between heartbeats while evaluating;
	// <= 0 means 5s. Leases carry the coordinator's lease timeout, and
	// a heartbeat faster than this one is derived from it when needed,
	// so a short-timeout coordinator never outpaces a default worker.
	Heartbeat time.Duration
	// Poll is the lease-poll interval and the back-off after an empty
	// lease; <= 0 means 500ms.
	Poll time.Duration
	// Idle aborts the worker when no lease reply arrives for this long;
	// 0 waits forever.
	Idle time.Duration
	// Eval evaluates one grid cell (experiments.Context.SweepCells on a
	// single index, in the CLI).
	Eval func(cell int) (experiments.CellResult, error)
	// Logf, when non-nil, receives progress notes.
	Logf func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run pulls and evaluates cell leases until the coordinator sends Stop.
// Cell evaluation failures are reported to the coordinator (which
// requeues within the retry budget) rather than ending the loop;
// transport failures end it.
func (w *Worker) Run(t WorkerTransport) error {
	if w.Eval == nil {
		return fmt.Errorf("dispatch: worker %q has no Eval", w.ID)
	}
	if w.ID == "" {
		return fmt.Errorf("dispatch: worker has no ID")
	}
	batch := w.Batch
	if batch < 1 {
		batch = 1
	}
	heartbeat := w.Heartbeat
	if heartbeat <= 0 {
		heartbeat = 5 * time.Second
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}

	// On a lossy transport (an eventually-consistent spool sync) a lease
	// reply can be lost in transit; after this long without one the
	// worker re-sends its request under a fresh sequence number instead
	// of polling a reply that will never come. The coordinator requeues
	// the orphaned lease's cells on its deadline, so nothing is lost.
	retry := 10 * poll
	if retry < 2*time.Second {
		retry = 2 * time.Second
	}

	idleStart := time.Now()
	for seq := 1; ; seq++ {
		if err := t.Send(&Msg{Version: WireVersion, Type: MsgRequest, Worker: w.ID, Seq: seq, Max: batch}); err != nil {
			return err
		}
		var lease *Lease
		asked := time.Now()
		for lease == nil {
			l, err := t.RecvLease(seq, poll)
			if err != nil {
				return err
			}
			if l != nil {
				lease = l
				break
			}
			if w.Idle > 0 && time.Since(idleStart) > w.Idle {
				return fmt.Errorf("dispatch: worker %s: no lease reply for %v (coordinator gone?)", w.ID, w.Idle)
			}
			if time.Since(asked) > retry {
				w.logf("dispatch: worker %s: no reply to request %d, re-requesting", w.ID, seq)
				break
			}
		}
		if lease == nil {
			continue // re-request under the next sequence number
		}
		idleStart = time.Now()
		if lease.Stop {
			w.logf("dispatch: worker %s stopping", w.ID)
			return nil
		}
		if len(lease.Cells) == 0 {
			// Nothing leasable right now; cells may requeue while other
			// workers hold leases, so back off and ask again.
			time.Sleep(poll)
			continue
		}

		if err := w.evalLease(t, lease, heartbeat); err != nil {
			return err
		}
	}
}

// evalLease evaluates one leased batch cell by cell, heartbeating in
// the background for as long as the batch is in flight. The heartbeat
// interval shrinks to a third of the lease's own timeout when the
// configured interval would be too slow to keep the lease alive.
func (w *Worker) evalLease(t WorkerTransport, lease *Lease, heartbeat time.Duration) error {
	if lease.TimeoutMS > 0 {
		if fromLease := time.Duration(lease.TimeoutMS) * time.Millisecond / 3; fromLease < heartbeat {
			heartbeat = fromLease
		}
		if heartbeat < 10*time.Millisecond {
			heartbeat = 10 * time.Millisecond
		}
	}
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		tick := time.NewTicker(heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Send(&Msg{Version: WireVersion, Type: MsgHeartbeat, Worker: w.ID})
			}
		}
	}()
	defer func() {
		close(stop)
		hb.Wait()
	}()

	for _, c := range lease.Cells {
		cr, err := w.Eval(c)
		if err != nil {
			w.logf("dispatch: worker %s: cell %d failed: %v", w.ID, c, err)
			if serr := t.Send(&Msg{Version: WireVersion, Type: MsgFail, Worker: w.ID, Cell: c, Err: err.Error()}); serr != nil {
				return serr
			}
			continue
		}
		env := distsweep.NewCellEnvelope(w.Fingerprint, w.Cells, cr)
		if err := t.Send(&Msg{Version: WireVersion, Type: MsgResult, Worker: w.ID, Result: env}); err != nil {
			return err
		}
		w.logf("dispatch: worker %s: cell %d done", w.ID, c)
	}
	return nil
}
