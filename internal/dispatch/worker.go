// The worker side of the dispatch protocol: a pull loop that requests
// cell batches, evaluates them one cell at a time (streaming results so
// the coordinator can account progress at cell granularity), and
// heartbeats while an evaluation is in flight.
package dispatch

import (
	"fmt"
	"sync"
	"time"

	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

// Worker runs the pull side of a dispatch session.
type Worker struct {
	// ID names this worker in leases and logs. File-spool transports
	// also use it in file names, so keep it to letters, digits, '.',
	// '-' and '_'.
	ID string
	// Fingerprint and Cells describe the grid this worker was launched
	// for; every result envelope is stamped with them and the
	// coordinator rejects mismatches.
	Fingerprint string
	Cells       int
	// Batch is the largest cell batch to request per lease; <= 0 means
	// 1. One cell per lease maximizes stealing granularity; larger
	// batches amortize round trips on high-latency spools.
	Batch int
	// Heartbeat is the interval between heartbeats while evaluating;
	// <= 0 means 5s. Leases carry the coordinator's lease timeout, and
	// a heartbeat faster than this one is derived from it when needed,
	// so a short-timeout coordinator never outpaces a default worker.
	Heartbeat time.Duration
	// Poll is the lease-poll interval and the back-off after an empty
	// lease; <= 0 means 500ms.
	Poll time.Duration
	// Idle aborts the worker when no lease reply arrives for this long;
	// 0 waits forever.
	Idle time.Duration
	// RetryBase and RetryMax bound the exponential
	// backoff-with-deterministic-jitter schedule used for the sleep
	// after an empty lease and for the re-request window after a lost
	// lease reply. <= 0 derives conservative values from Poll, so tests
	// with millisecond polls stay fast; the CLI threads
	// Options.RetryBase/RetryMax here. RetrySeed pins the jitter
	// stream; 0 derives a stable seed from the worker ID.
	RetryBase time.Duration
	RetryMax  time.Duration
	RetrySeed int64
	// Drain, when non-nil, switches the worker into a graceful exit
	// once it fires (a closed channel): the cell being evaluated
	// finishes and its result is delivered, the rest of the lease is
	// released back to the coordinator with MsgRelease, and Run returns
	// nil instead of requesting another lease. The CLI wires SIGINT and
	// SIGTERM here, so killing a pull worker softly never loses or
	// strands a cell.
	Drain <-chan struct{}
	// Eval evaluates one grid cell (experiments.Context.SweepCells on a
	// single index, in the CLI).
	Eval func(cell int) (experiments.CellResult, error)
	// Logf, when non-nil, receives progress notes.
	Logf func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run pulls and evaluates cell leases until the coordinator sends Stop.
// Cell evaluation failures are reported to the coordinator (which
// requeues within the retry budget) rather than ending the loop;
// transport failures end it.
func (w *Worker) Run(t WorkerTransport) error {
	if w.Eval == nil {
		return fmt.Errorf("dispatch: worker %q has no Eval", w.ID)
	}
	if w.ID == "" {
		return fmt.Errorf("dispatch: worker has no ID")
	}
	batch := w.Batch
	if batch < 1 {
		batch = 1
	}
	heartbeat := w.Heartbeat
	if heartbeat <= 0 {
		heartbeat = 5 * time.Second
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}

	// Retry timing is exponential backoff with deterministic jitter.
	// Two schedules share one seed space: emptyBo paces re-asks after
	// an empty lease (reset whenever cells are actually granted), and
	// requestBo grows the window before a request whose reply never
	// arrived is re-sent under a fresh sequence number — the
	// coordinator requeues the orphaned lease's cells on its deadline,
	// so nothing is lost, but a fleet of workers hammering a slow spool
	// in lockstep is. Unset bounds derive from Poll so tests with
	// millisecond polls stay fast.
	base, ceil := w.RetryBase, w.RetryMax
	if base <= 0 {
		base = poll
	}
	if ceil <= 0 {
		ceil = 10 * poll
		if ceil < 2*time.Second {
			ceil = 2 * time.Second
		}
	}
	if ceil < base {
		ceil = base
	}
	seed := w.RetrySeed
	if seed == 0 {
		seed = SeedFromID(w.ID)
	}
	emptyBo := NewBackoff(base, ceil, seed)
	// The first-request window keeps the old 10*poll-floored-at-2s
	// behavior so healthy transports never re-request spuriously; lost
	// replies double it from there.
	reqWindow := 10 * poll
	if reqWindow < 2*time.Second {
		reqWindow = 2 * time.Second
	}
	requestBo := NewBackoff(reqWindow, 8*reqWindow, seed+1)

	idleStart := time.Now()
	for seq := 1; ; seq++ {
		if w.drained() {
			w.logf("dispatch: worker %s drained, exiting cleanly", w.ID)
			return nil
		}
		if err := t.Send(&Msg{Version: WireVersion, Type: MsgRequest, Worker: w.ID, Seq: seq, Max: batch}); err != nil {
			return err
		}
		var lease *Lease
		asked := time.Now()
		window := requestBo.Next()
		for lease == nil {
			l, err := t.RecvLease(seq, poll)
			if err != nil {
				return err
			}
			if l != nil {
				lease = l
				break
			}
			if w.drained() {
				w.logf("dispatch: worker %s drained, exiting cleanly", w.ID)
				return nil
			}
			if w.Idle > 0 && time.Since(idleStart) > w.Idle {
				return fmt.Errorf("dispatch: worker %s: no lease reply for %v (coordinator gone?)", w.ID, w.Idle)
			}
			if time.Since(asked) > window {
				w.logf("dispatch: worker %s: no reply to request %d, re-requesting", w.ID, seq)
				break
			}
		}
		if lease == nil {
			continue // re-request under the next sequence number
		}
		requestBo.Reset()
		idleStart = time.Now()
		if lease.Stop {
			w.logf("dispatch: worker %s stopping", w.ID)
			return nil
		}
		if len(lease.Cells) == 0 {
			// Nothing leasable right now; cells may requeue while other
			// workers hold leases, so back off and ask again.
			w.sleep(emptyBo.Next())
			continue
		}
		emptyBo.Reset()

		if err := w.evalLease(t, lease, heartbeat); err != nil {
			return err
		}
	}
}

// drained reports whether the Drain signal has fired.
func (w *Worker) drained() bool {
	if w.Drain == nil {
		return false
	}
	select {
	case <-w.Drain:
		return true
	default:
		return false
	}
}

// sleep waits for d, or less if the Drain signal fires first.
func (w *Worker) sleep(d time.Duration) {
	if w.Drain == nil {
		time.Sleep(d)
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-w.Drain:
	}
}

// evalLease evaluates one leased batch cell by cell, heartbeating in
// the background for as long as the batch is in flight. The heartbeat
// interval shrinks to a third of the lease's own timeout when the
// configured interval would be too slow to keep the lease alive.
func (w *Worker) evalLease(t WorkerTransport, lease *Lease, heartbeat time.Duration) error {
	if lease.TimeoutMS > 0 {
		if fromLease := time.Duration(lease.TimeoutMS) * time.Millisecond / 3; fromLease < heartbeat {
			heartbeat = fromLease
		}
		if heartbeat < 10*time.Millisecond {
			heartbeat = 10 * time.Millisecond
		}
	}
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		tick := time.NewTicker(heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Send(&Msg{Version: WireVersion, Type: MsgHeartbeat, Worker: w.ID})
			}
		}
	}()
	defer func() {
		close(stop)
		hb.Wait()
	}()

	for i, c := range lease.Cells {
		if w.drained() {
			// Finish-in-flight semantics: cells already evaluated went
			// out as results; everything not yet started goes back to
			// the coordinator so another worker picks it up immediately
			// instead of waiting out the lease deadline.
			rest := append([]int(nil), lease.Cells[i:]...)
			w.logf("dispatch: worker %s draining: releasing cells %v", w.ID, rest)
			return t.Send(&Msg{Version: WireVersion, Type: MsgRelease, Worker: w.ID, Cells: rest})
		}
		cr, err := w.Eval(c)
		if err != nil {
			w.logf("dispatch: worker %s: cell %d failed: %v", w.ID, c, err)
			if serr := t.Send(&Msg{Version: WireVersion, Type: MsgFail, Worker: w.ID, Cell: c, Err: err.Error()}); serr != nil {
				return serr
			}
			continue
		}
		env := distsweep.NewCellEnvelope(w.Fingerprint, w.Cells, cr)
		if err := t.Send(&Msg{Version: WireVersion, Type: MsgResult, Worker: w.ID, Result: env}); err != nil {
			return err
		}
		w.logf("dispatch: worker %s: cell %d done", w.ID, c)
	}
	return nil
}
