// Package dispatch replaces the static round-robin shard partition of
// internal/distsweep with dynamic, cell-level work stealing: a
// pull-based coordinator owns the canonical SweepGrid cell list as a
// lease queue, and workers — local goroutines, forked processes, or
// processes on other hosts — repeatedly request a batch of cells,
// evaluate them, and stream back one distsweep.CellEnvelope per cell.
//
// The protocol is lease → heartbeat/deadline → result or requeue. A
// worker that stops heartbeating (crashed, partitioned, or just slow
// past the deadline) loses its lease and the cells requeue for the next
// requester, with a per-cell retry budget so a poisoned cell fails the
// sweep loudly instead of cycling forever, and a per-worker failure
// budget so a repeatedly-failing host is excluded from further leases.
// Because every cell is evaluated deterministically (results do not
// depend on worker counts or partition shape), duplicate results from a
// lease that was stolen and then completed anyway are identical and the
// first one wins; the folded output stays byte-identical to a
// single-process Sweep.
//
// Transports are pluggable behind two small interfaces (Transport on
// the coordinator side, WorkerTransport on the worker side). Three
// ship: an in-process channel hub (NewHub) for tests and embedded use,
// a directory file-spool (NewSpool) that works across processes on one
// box or across hosts over any shared or synchronized directory (NFS,
// sshfs, scp/rsync loops, object-store mounts), and a JSON-over-HTTP
// transport (httptransport.NewServer / httptransport.Dial) for fleets
// of workers attaching to a coordinator over plain TCP — no shared
// filesystem, workers joinable and killable at any time. The spool and
// HTTP transports share one versioned wire codec (wire.go); the
// transporttest subpackage is the conformance suite all three pass.
//
// The coordinator itself can be made crash-safe: Config.Journal
// threads every accepted result and exclusion through a durable log
// before acknowledging it (internal/dispatch/journal is the fsync'd
// on-disk implementation), Config.Completed/Exclusions replay that log
// so a killed coordinator resumes instead of restarting, and
// Config.Interrupt turns SIGINT-style shutdown into a graceful drain.
// The chaostest subpackage proves all of it under seed-deterministic
// fault injection.
package dispatch

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"exegpt/internal/distsweep"
)

// ErrInterrupted is wrapped into Run's error when Config.Interrupt
// fires: the coordinator stopped granting leases, drained or reclaimed
// the outstanding ones, and finished the transport so workers exit.
// Everything accepted before the interrupt went through the Journal
// (when one is configured), so the run is resumable.
var ErrInterrupted = errors.New("dispatch: run interrupted")

// WireVersion is the dispatch message format version; the file-spool
// transport stamps and checks it so mixed-build fleets fail loudly.
const WireVersion = 1

// MsgType identifies a worker → coordinator message.
type MsgType int

// Worker → coordinator message types.
const (
	// MsgRequest asks for a lease of up to Max cells.
	MsgRequest MsgType = iota + 1
	// MsgHeartbeat extends the deadline of the worker's current lease.
	MsgHeartbeat
	// MsgResult delivers one evaluated cell.
	MsgResult
	// MsgFail reports that one leased cell failed to evaluate.
	MsgFail
	// MsgRelease returns a lease's unevaluated cells to the queue: a
	// draining worker finishes the cell it is on, hands the rest back,
	// and exits. Voluntary, so no retry or failure budget is charged.
	MsgRelease
)

// Msg is one worker → coordinator message.
type Msg struct {
	Version int     `json:"version"`
	Type    MsgType `json:"type"`
	Worker  string  `json:"worker"`
	// Seq is the worker's request sequence number; the lease granted
	// for request n is addressed to (worker, n).
	Seq int `json:"seq,omitempty"`
	// Max is the largest cell batch the worker wants (MsgRequest).
	Max int `json:"max,omitempty"`
	// Result carries one evaluated cell (MsgResult).
	Result *distsweep.CellEnvelope `json:"result,omitempty"`
	// Cell and Err describe a failed evaluation (MsgFail).
	Cell int    `json:"cell,omitempty"`
	Err  string `json:"err,omitempty"`
	// Cells lists the unevaluated cells a draining worker hands back
	// (MsgRelease).
	Cells []int `json:"cells,omitempty"`
}

// Lease is the coordinator → worker reply to one request.
type Lease struct {
	Version int    `json:"version"`
	Worker  string `json:"worker"`
	Seq     int    `json:"seq"`
	// Cells is the leased batch. Empty with !Stop means "nothing to
	// lease right now, back off and ask again" (cells may requeue while
	// other workers' leases are outstanding).
	Cells []int `json:"cells,omitempty"`
	// TimeoutMS is the coordinator's lease timeout in milliseconds;
	// workers derive their heartbeat interval from it (a fraction of
	// it), so the two sides never need matching flags.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stop tells the worker to exit its pull loop: the sweep is
	// complete, aborted, or the worker has been excluded.
	Stop bool `json:"stop,omitempty"`
}

// Transport is the coordinator's view of a dispatch transport.
// Coordinator methods are called from one goroutine.
type Transport interface {
	// Recv returns the next worker message, or nil after waiting up to
	// timeout with none available.
	Recv(timeout time.Duration) (*Msg, error)
	// Send delivers a lease reply to lease.Worker. It must not block on
	// a slow or vanished worker: an undeliverable lease may be dropped
	// (the worker re-requests, and the coordinator requeues on
	// deadline).
	Send(l *Lease) error
	// Finish broadcasts completion so workers still polling observe a
	// Stop and exit.
	Finish() error
}

// WorkerTransport is one worker's view of a dispatch transport. Send
// may be called concurrently (the evaluation loop and the heartbeat
// ticker share it).
type WorkerTransport interface {
	Send(m *Msg) error
	// RecvLease returns the lease replying to request seq, nil after
	// waiting up to timeout with none available, or a Stop lease once
	// the coordinator has finished.
	RecvLease(seq int, timeout time.Duration) (*Lease, error)
}

// Options collects every dispatch tuning knob in one place, threaded
// identically through the CLI and all three transports (hub, spool,
// HTTP). Zero-valued fields mean the Defaults() value; Validate rejects
// anything out of range.
type Options struct {
	// LeaseTimeout is how long a lease may go without a heartbeat or a
	// result before its cells requeue.
	LeaseTimeout time.Duration
	// LeaseCells is the largest cell batch a worker requests per lease.
	// 1 is the finest stealing granularity; larger batches amortize
	// round trips on high-latency transports.
	LeaseCells int
	// CellRetries is how many times one cell may be requeued (lease
	// expiry or reported failure) before the run aborts.
	CellRetries int
	// WorkerFailures is how many failed leases — expiries, exhausted
	// re-grants, or batches with at least one reported cell failure —
	// one worker may accumulate before it is excluded from further
	// leases.
	WorkerFailures int
	// Idle aborts the run when no worker message arrives for this long;
	// 0 waits forever.
	Idle time.Duration
	// RetryBase and RetryMax bound the exponential
	// backoff-with-deterministic-jitter schedule workers use for their
	// transport retries: the sleep after an empty lease, the window
	// before re-sending a request whose reply was lost, and (on the
	// HTTP transport) reconnect attempts. Each retry doubles the delay
	// from RetryBase up to RetryMax, jittered into [d/2, d].
	RetryBase time.Duration
	RetryMax  time.Duration
}

// Defaults returns the documented dispatch defaults: 60s lease timeout,
// 1-cell leases, 3 retries per cell, 3 failed leases per worker, a
// 10-minute idle abort, and worker retry backoff from 200ms to 5s.
func Defaults() Options {
	return Options{
		LeaseTimeout:   60 * time.Second,
		LeaseCells:     1,
		CellRetries:    3,
		WorkerFailures: 3,
		Idle:           10 * time.Minute,
		RetryBase:      200 * time.Millisecond,
		RetryMax:       5 * time.Second,
	}
}

// Validate rejects out-of-range knob values. Zero values are allowed
// where they mean "use the default" (withDefaults resolves them) or
// "wait forever" (Idle).
func (o Options) Validate() error {
	if o.LeaseTimeout < 0 {
		return fmt.Errorf("dispatch: lease timeout %v < 0", o.LeaseTimeout)
	}
	if o.LeaseCells < 0 {
		return fmt.Errorf("dispatch: lease batch %d < 0 cells", o.LeaseCells)
	}
	if o.CellRetries < 0 {
		return fmt.Errorf("dispatch: cell retry budget %d < 0", o.CellRetries)
	}
	if o.WorkerFailures < 0 {
		return fmt.Errorf("dispatch: worker failure budget %d < 0", o.WorkerFailures)
	}
	if o.Idle < 0 {
		return fmt.Errorf("dispatch: idle deadline %v < 0", o.Idle)
	}
	if o.RetryBase < 0 {
		return fmt.Errorf("dispatch: retry backoff base %v < 0", o.RetryBase)
	}
	if o.RetryMax < 0 {
		return fmt.Errorf("dispatch: retry backoff cap %v < 0", o.RetryMax)
	}
	if o.RetryBase > 0 && o.RetryMax > 0 && o.RetryMax < o.RetryBase {
		return fmt.Errorf("dispatch: retry backoff cap %v below base %v", o.RetryMax, o.RetryBase)
	}
	return nil
}

// withDefaults resolves zero-valued fields to their Defaults() values.
// Idle stays as given: 0 legitimately means "wait forever".
func (o Options) withDefaults() Options {
	d := Defaults()
	if o.LeaseTimeout == 0 {
		o.LeaseTimeout = d.LeaseTimeout
	}
	if o.LeaseCells == 0 {
		o.LeaseCells = d.LeaseCells
	}
	if o.CellRetries == 0 {
		o.CellRetries = d.CellRetries
	}
	if o.WorkerFailures == 0 {
		o.WorkerFailures = d.WorkerFailures
	}
	if o.RetryBase == 0 {
		o.RetryBase = d.RetryBase
	}
	if o.RetryMax == 0 {
		o.RetryMax = d.RetryMax
	}
	return o
}

// Journal is the coordinator's durability hook: Run threads every
// accepted cell result and every worker exclusion through it *before*
// acting on the event, so a coordinator killed at any instant restarts
// from the journal with nothing accepted lost. An Append error aborts
// the run — an un-journalable result must not be acked.
// internal/dispatch/journal is the on-disk implementation.
type Journal interface {
	Append(env *distsweep.CellEnvelope) error
	AppendExclusion(x WorkerExclusion) error
	AppendRestart(r WorkerRestart) error
}

// WorkerExclusion records that a worker spent its failure budget and
// was excluded from further leases — journaled so a restarted
// coordinator keeps the worker excluded and keeps the reason (with any
// captured stderr tail) visible on the status endpoint.
type WorkerExclusion struct {
	Worker   string `json:"worker"`
	Failures int    `json:"failures"`
	Reason   string `json:"reason,omitempty"`
}

// Config parameterizes a coordinator run.
type Config struct {
	// Fingerprint is the grid fingerprint every result must carry
	// (experiments.Context.GridFingerprint).
	Fingerprint string
	// Cells is the grid's total cell count; the run completes when
	// cells 0..Cells-1 are each covered exactly once.
	Cells int
	// Options are the lease/retry/idle knobs; zero-valued fields take
	// the Defaults() values.
	Options Options
	// Logf, when non-nil, receives progress and failure-handling notes.
	Logf func(format string, args ...any)
	// StderrTail, when non-nil, maps a worker id to the tail of its
	// captured stderr (a locally forked or ssh-launched process). It is
	// attached to exclusion events so status reports say *why* a host
	// was excluded, not just that it was.
	StderrTail func(worker string) string
	// Journal, when non-nil, receives every accepted result and every
	// worker exclusion before the coordinator acts on it.
	Journal Journal
	// Completed seeds cells a previous run of the same grid already
	// evaluated (a journal replay): they start done, never enter the
	// lease queue, and late duplicates dedup exactly as stolen-lease
	// duplicates do. Envelopes must carry this run's Fingerprint.
	Completed []*distsweep.CellEnvelope
	// Exclusions seeds worker-exclusion state from a journal replay, so
	// a worker excluded before the coordinator died stays excluded — and
	// the status endpoint still says why.
	Exclusions []WorkerExclusion
	// Restarts seeds the fleet supervisor's per-slot restart ledger from
	// a journal replay, so restart counts and poisoned verdicts survive
	// a coordinator restart on the status feed.
	Restarts []WorkerRestart
	// Controller, when non-nil, connects an in-process fleet supervisor:
	// Run publishes every status snapshot to it, honors its drain
	// requests (the drained worker's next lease request is answered
	// Stop and its cells requeue without charging budgets), and journals
	// its restart records.
	Controller *Controller
	// Interrupt, when non-nil, switches Run into a graceful drain once
	// it fires: no new leases are granted (requesters get Stop),
	// in-flight results are still accepted and journaled, and once no
	// lease is outstanding Run finishes the transport and returns an
	// ErrInterrupted-wrapped error instead of a merge.
	Interrupt <-chan struct{}
}

// Status is a point-in-time snapshot of a coordinator run, published to
// transports that implement StatusSink (the HTTP transport serves it on
// its status endpoint).
type Status struct {
	// Total, Done and Queued describe the cell queue: grid size, cells
	// folded so far, and the current queue depth (cells waiting for a
	// lease; cells inside outstanding leases are in neither).
	Total  int `json:"total"`
	Done   int `json:"done"`
	Queued int `json:"queued"`
	// UptimeMS is how long this coordinator process has been running;
	// a supervisor uses it to tell a long-lived coordinator from one
	// that just replayed its journal.
	UptimeMS int64 `json:"uptime_ms,omitempty"`
	// Workers lists every worker the coordinator has heard from, in
	// worker-id order.
	Workers []WorkerStatus `json:"workers,omitempty"`
	// Restarts is the fleet supervisor's per-slot replacement ledger
	// (latest record per slot, in slot order), populated when a
	// supervisor is attached or replayed from the journal.
	Restarts []WorkerRestart `json:"restarts,omitempty"`
}

// WorkerStatus is one worker's lease state inside a Status snapshot.
type WorkerStatus struct {
	Worker string `json:"worker"`
	// Cells is the worker's outstanding lease, ascending; empty when
	// the worker holds no lease.
	Cells []int `json:"cells,omitempty"`
	// DeadlineMS is how many milliseconds remain until the outstanding
	// lease expires; 0 without a lease.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// LeaseAgeMS is how long the outstanding lease has been held since
	// it was first granted (re-grants and heartbeats extend the
	// deadline, not the age); 0 without a lease. A supervisor reads it
	// as the "is this worker actually making progress" signal.
	LeaseAgeMS int64 `json:"lease_age_ms,omitempty"`
	// Draining is set once a drain was requested for this worker: it
	// keeps its current lease but its next request is answered Stop.
	Draining bool `json:"draining,omitempty"`
	// Failures counts the worker's failed leases against the
	// WorkerFailures budget; Excluded is set once the budget is spent.
	Failures int  `json:"failures,omitempty"`
	Excluded bool `json:"excluded,omitempty"`
	// LastError is the most recent reason a lease of this worker's
	// failed (an evaluation error, a lease expiry), with the worker's
	// captured stderr tail attached when available.
	LastError string `json:"last_error,omitempty"`
}

// StatusSink is implemented by transports that surface coordinator
// state to operators; Run publishes a fresh Status after every handled
// message and expiry sweep.
type StatusSink interface {
	PublishStatus(Status)
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// leaseState is one outstanding lease.
type leaseState struct {
	cells    map[int]bool
	deadline time.Time
	// granted is when the lease was first handed out; heartbeats and
	// re-grants move the deadline but not this, so status lease ages
	// reflect real holding time.
	granted time.Time
	// regrants counts how many times the same worker re-requested while
	// this lease was outstanding and had its remaining cells re-granted
	// (a lost lease reply on a slow transport). Bounded: past the limit
	// the re-request is treated as a failed lease instead, so a
	// crash-looping worker cannot pin its cells forever.
	regrants int
	// failed records that this lease already charged the worker's
	// failure budget (the budget is per lease, not per cell, so one bad
	// batch is one failure).
	failed bool
}

// Run drives a dispatch coordinator over the transport until every cell
// is covered exactly once, then folds the results into the merged sweep
// — byte-identical to a single-process Sweep over the same grid. On
// return (success or failure) the transport is finished, so workers
// observe Stop and exit.
func Run(t Transport, cfg Config) (*distsweep.Merged, error) {
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("dispatch: grid has %d cells", cfg.Cells)
	}
	if cfg.Fingerprint == "" {
		return nil, fmt.Errorf("dispatch: missing grid fingerprint")
	}
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	opts := cfg.Options.withDefaults()
	defer t.Finish()

	pending := make([]int, cfg.Cells)
	for i := range pending {
		pending[i] = i
	}
	leases := map[string]*leaseState{}
	done := map[int]*distsweep.CellEnvelope{}
	retries := map[int]int{}
	failures := map[string]int{}
	excluded := map[string]bool{}
	lastErr := map[string]string{}
	seen := map[string]bool{}
	drainReq := map[string]bool{}
	restarts := map[string]WorkerRestart{}
	started := time.Now()
	lastActivity := started

	// Replay a previous run's journaled state: completed cells start
	// done, excluded workers stay excluded.
	for _, env := range cfg.Completed {
		if env == nil {
			continue
		}
		if env.Fingerprint != cfg.Fingerprint {
			return nil, fmt.Errorf("dispatch: recovered cell %d is from a different grid: fingerprint %.12s… vs %.12s…",
				env.Result.Cell, env.Fingerprint, cfg.Fingerprint)
		}
		if env.Total != cfg.Cells {
			return nil, fmt.Errorf("dispatch: recovered cell %d is from a %d-cell grid, this run has %d",
				env.Result.Cell, env.Total, cfg.Cells)
		}
		c := env.Result.Cell
		if c < 0 || c >= cfg.Cells {
			return nil, fmt.Errorf("dispatch: recovered cell %d out of range 0..%d", c, cfg.Cells-1)
		}
		if _, dup := done[c]; !dup {
			done[c] = env
		}
	}
	if len(done) > 0 {
		kept := pending[:0]
		for _, c := range pending {
			if _, ok := done[c]; !ok {
				kept = append(kept, c)
			}
		}
		pending = kept
		cfg.logf("dispatch: resuming with %d/%d cells recovered", len(done), cfg.Cells)
	}
	for _, x := range cfg.Exclusions {
		if x.Worker == "" {
			continue
		}
		seen[x.Worker] = true
		excluded[x.Worker] = true
		if failures[x.Worker] < x.Failures {
			failures[x.Worker] = x.Failures
		}
		if x.Reason != "" {
			lastErr[x.Worker] = x.Reason
		}
	}
	for _, r := range cfg.Restarts {
		if r.Slot != "" {
			restarts[r.Slot] = r
		}
	}

	sink, _ := t.(StatusSink)
	publish := func() {
		if sink == nil && cfg.Controller == nil {
			return
		}
		s := Status{Total: cfg.Cells, Done: len(done), Queued: len(pending),
			UptimeMS: time.Since(started).Milliseconds()}
		ids := make([]string, 0, len(seen))
		for w := range seen {
			ids = append(ids, w)
		}
		sort.Strings(ids)
		now := time.Now()
		for _, w := range ids {
			ws := WorkerStatus{
				Worker:    w,
				Failures:  failures[w],
				Excluded:  excluded[w],
				Draining:  drainReq[w],
				LastError: lastErr[w],
			}
			if ls, ok := leases[w]; ok {
				for c := range ls.cells {
					ws.Cells = append(ws.Cells, c)
				}
				sort.Ints(ws.Cells)
				if rem := ls.deadline.Sub(now).Milliseconds(); rem > 0 {
					ws.DeadlineMS = rem
				}
				ws.LeaseAgeMS = now.Sub(ls.granted).Milliseconds()
			}
			s.Workers = append(s.Workers, ws)
		}
		if len(restarts) > 0 {
			slots := make([]string, 0, len(restarts))
			for slot := range restarts {
				slots = append(slots, slot)
			}
			sort.Strings(slots)
			for _, slot := range slots {
				s.Restarts = append(s.Restarts, restarts[slot])
			}
		}
		if sink != nil {
			sink.PublishStatus(s)
		}
		if cfg.Controller != nil {
			cfg.Controller.publish(s)
		}
	}
	// pollController folds the supervisor's pending drain requests and
	// restart records into coordinator state: drains make the worker's
	// next request a Stop, restart records go through the journal (like
	// exclusions) before landing in the status ledger.
	pollController := func() error {
		if cfg.Controller == nil {
			return nil
		}
		drains, reports := cfg.Controller.take()
		for _, w := range drains {
			if !drainReq[w] {
				drainReq[w] = true
				cfg.logf("dispatch: drain requested for worker %s", w)
			}
		}
		for _, r := range reports {
			if cfg.Journal != nil {
				if err := cfg.Journal.AppendRestart(r); err != nil {
					return fmt.Errorf("dispatch: journal restart of slot %s: %w", r.Slot, err)
				}
			}
			restarts[r.Slot] = r
			if r.Poisoned {
				cfg.logf("dispatch: slot %s declared poisoned after %d restarts: %s", r.Slot, r.Restarts, r.Reason)
			}
		}
		if len(drains)+len(reports) > 0 {
			publish()
		}
		return nil
	}

	inPending := func(c int) bool {
		for _, p := range pending {
			if p == c {
				return true
			}
		}
		return false
	}
	dropPending := func(c int) {
		for i, p := range pending {
			if p == c {
				pending = append(pending[:i], pending[i+1:]...)
				return
			}
		}
	}
	// markFailure charges one failed lease to a worker, records why, and
	// excludes the worker once over budget — attaching its captured
	// stderr tail (when a spawner provides one) so the exclusion event
	// explains itself. Exclusions go through the journal before taking
	// effect, so a restarted coordinator keeps the worker out.
	markFailure := func(w, why string) error {
		failures[w]++
		if cfg.StderrTail != nil {
			if tail := cfg.StderrTail(w); tail != "" {
				why = fmt.Sprintf("%s; stderr tail:\n%s", why, strings.TrimRight(tail, "\n"))
			}
		}
		lastErr[w] = why
		if failures[w] >= opts.WorkerFailures && !excluded[w] {
			if cfg.Journal != nil {
				if err := cfg.Journal.AppendExclusion(WorkerExclusion{
					Worker: w, Failures: failures[w], Reason: why,
				}); err != nil {
					return fmt.Errorf("dispatch: journal exclusion of worker %s: %w", w, err)
				}
			}
			excluded[w] = true
			cfg.logf("dispatch: excluding worker %s after %d failed leases, last: %s", w, failures[w], why)
		}
		return nil
	}
	// requeueCell puts one unfinished cell back on the queue, enforcing
	// the retry budget. A cell another worker already completed (a
	// stolen lease that raced its original holder) needs no requeue.
	requeueCell := func(c int, why string) error {
		if _, ok := done[c]; ok {
			return nil
		}
		retries[c]++
		if retries[c] > opts.CellRetries {
			return fmt.Errorf("dispatch: cell %d exceeded its retry budget (%d attempts): %s", c, retries[c], why)
		}
		if !inPending(c) {
			pending = append(pending, c)
		}
		return nil
	}
	// releaseLease requeues everything a dead or superseded lease still
	// held, in ascending cell order for reproducible logs.
	releaseLease := func(w string, ls *leaseState, why string) error {
		cells := make([]int, 0, len(ls.cells))
		for c := range ls.cells {
			cells = append(cells, c)
		}
		sort.Ints(cells)
		delete(leases, w)
		if err := markFailure(w, why); err != nil {
			return err
		}
		for _, c := range cells {
			if err := requeueCell(c, why); err != nil {
				return err
			}
		}
		if len(cells) > 0 {
			cfg.logf("dispatch: requeued cells %v from worker %s (%s)", cells, w, why)
		}
		return nil
	}
	// releaseQuietly reclaims a lease during an interrupt drain without
	// charging budgets: the fleet is being torn down with the operator's
	// consent, so a lease lost to the shutdown is not the worker's fault.
	releaseQuietly := func(w string, ls *leaseState) {
		for c := range ls.cells {
			if _, ok := done[c]; !ok && !inPending(c) {
				pending = append(pending, c)
			}
		}
		delete(leases, w)
	}

	poll := opts.LeaseTimeout / 4
	if poll > time.Second {
		poll = time.Second
	}
	if poll < time.Millisecond {
		poll = time.Millisecond
	}

	draining := false
	publish()
	for len(done) < cfg.Cells {
		if err := pollController(); err != nil {
			return nil, err
		}
		if !draining && cfg.Interrupt != nil {
			select {
			case <-cfg.Interrupt:
				draining = true
				cfg.logf("dispatch: interrupted: draining %d outstanding leases (%d/%d cells done)",
					len(leases), len(done), cfg.Cells)
			default:
			}
		}
		if draining && len(leases) == 0 {
			publish()
			return nil, fmt.Errorf("%w with %d of %d cells done", ErrInterrupted, len(done), cfg.Cells)
		}
		now := time.Now()
		for w, ls := range leases {
			if now.After(ls.deadline) {
				if draining {
					// The worker may already be gone with the rest of the
					// fleet; reclaim without charging so the drain ends
					// instead of burning budgets on a shutdown.
					releaseQuietly(w, ls)
					publish()
					continue
				}
				if err := releaseLease(w, ls, fmt.Sprintf("lease expired after %v without heartbeat", opts.LeaseTimeout)); err != nil {
					return nil, err
				}
				publish()
			}
		}

		m, err := t.Recv(poll)
		if err != nil {
			return nil, err
		}
		if m == nil {
			if opts.Idle > 0 && time.Since(lastActivity) > opts.Idle {
				return nil, fmt.Errorf("dispatch: no worker activity for %v (%d of %d cells done)",
					opts.Idle, len(done), cfg.Cells)
			}
			continue
		}
		lastActivity = time.Now()
		w := m.Worker
		if w == "" {
			cfg.logf("dispatch: dropping message with empty worker id")
			continue
		}
		seen[w] = true

		switch m.Type {
		case MsgRequest:
			if draining {
				// No new grants while draining: a re-request supersedes
				// whatever lease the worker held (it is asking, not
				// evaluating), so reclaim the cells and stop the worker.
				if ls, ok := leases[w]; ok {
					releaseQuietly(w, ls)
				}
				if err := t.Send(&Lease{Version: WireVersion, Worker: w, Seq: m.Seq, Stop: true}); err != nil {
					return nil, err
				}
				publish()
				continue
			}
			if drainReq[w] {
				// A supervisor asked this worker to go: reclaim whatever
				// its superseded lease still held (free of charge — the
				// drain is the operator's choice, not the worker's fault)
				// and answer Stop.
				if ls, ok := leases[w]; ok {
					releaseQuietly(w, ls)
				}
				if err := t.Send(&Lease{Version: WireVersion, Worker: w, Seq: m.Seq, Stop: true}); err != nil {
					return nil, err
				}
				cfg.logf("dispatch: worker %s drained", w)
				publish()
				continue
			}
			if ls, ok := leases[w]; ok && len(ls.cells) > 0 {
				// A new request while a lease is outstanding: most
				// likely the lease reply was lost or delayed in transit
				// (a slow spool sync), so re-grant the remaining cells
				// under the new sequence number — free of charge, since
				// evaluation is deterministic and duplicates are deduped
				// anyway. A worker that keeps re-requesting without ever
				// completing (a crash loop) exhausts the re-grant
				// allowance and is treated as a failed lease, so its
				// cells go back to the rest of the fleet.
				if ls.regrants < 2 && !excluded[w] {
					ls.regrants++
					ls.deadline = time.Now().Add(opts.LeaseTimeout)
					cells := make([]int, 0, len(ls.cells))
					for c := range ls.cells {
						cells = append(cells, c)
					}
					sort.Ints(cells)
					cfg.logf("dispatch: re-granting cells %v to worker %s (re-request %d)", cells, w, ls.regrants)
					if err := t.Send(&Lease{Version: WireVersion, Worker: w, Seq: m.Seq,
						Cells: cells, TimeoutMS: opts.LeaseTimeout.Milliseconds()}); err != nil {
						return nil, err
					}
					publish()
					continue
				}
				if err := releaseLease(w, ls, "superseded by a new request from the same worker"); err != nil {
					return nil, err
				}
			} else if ok {
				delete(leases, w)
			}
			if excluded[w] {
				if err := t.Send(&Lease{Version: WireVersion, Worker: w, Seq: m.Seq, Stop: true}); err != nil {
					return nil, err
				}
				continue
			}
			take := m.Max
			if take < 1 {
				take = 1
			}
			if take > len(pending) {
				take = len(pending)
			}
			l := &Lease{Version: WireVersion, Worker: w, Seq: m.Seq}
			if take > 0 {
				l.Cells = append([]int(nil), pending[:take]...)
				l.TimeoutMS = opts.LeaseTimeout.Milliseconds()
				pending = pending[take:]
				leases[w] = &leaseState{
					cells:    make(map[int]bool, len(l.Cells)),
					deadline: time.Now().Add(opts.LeaseTimeout),
					granted:  time.Now(),
				}
				for _, c := range l.Cells {
					leases[w].cells[c] = true
				}
			}
			if err := t.Send(l); err != nil {
				return nil, err
			}
			publish()

		case MsgHeartbeat:
			if ls, ok := leases[w]; ok {
				ls.deadline = time.Now().Add(opts.LeaseTimeout)
			}
			publish()

		case MsgResult:
			env := m.Result
			if env == nil {
				cfg.logf("dispatch: dropping empty result from worker %s", w)
				continue
			}
			if env.Fingerprint != cfg.Fingerprint {
				return nil, fmt.Errorf("dispatch: worker %s evaluated a different grid: fingerprint %.12s… vs coordinator %.12s… (flag drift between coordinator and workers?)",
					w, env.Fingerprint, cfg.Fingerprint)
			}
			if env.Total != cfg.Cells {
				return nil, fmt.Errorf("dispatch: worker %s sees a %d-cell grid, coordinator has %d", w, env.Total, cfg.Cells)
			}
			c := env.Result.Cell
			if c < 0 || c >= cfg.Cells {
				return nil, fmt.Errorf("dispatch: worker %s returned out-of-range cell %d", w, c)
			}
			if _, dup := done[c]; dup {
				// A stolen lease completed anyway — or a pre-crash result
				// arrived again after a journal replay: evaluation is
				// deterministic, so the copies are identical and the
				// first one stands.
				cfg.logf("dispatch: duplicate result for cell %d from worker %s ignored", c, w)
			} else {
				// Durability before acknowledgment: the result reaches the
				// journal before the coordinator accounts for it, so a
				// crash on either side of this line loses nothing — the
				// cell is re-evaluated, or replayed and deduped.
				if cfg.Journal != nil {
					if jerr := cfg.Journal.Append(env); jerr != nil {
						return nil, fmt.Errorf("dispatch: journal cell %d: %w", c, jerr)
					}
				}
				done[c] = env
				dropPending(c)
				cfg.logf("dispatch: cell %d done (%d/%d) by worker %s", c, len(done), cfg.Cells, w)
			}
			if ls, ok := leases[w]; ok {
				delete(ls.cells, c)
				ls.deadline = time.Now().Add(opts.LeaseTimeout)
				if len(ls.cells) == 0 {
					delete(leases, w)
				}
			}
			publish()

		case MsgFail:
			c := m.Cell
			cfg.logf("dispatch: worker %s failed cell %d: %s", w, c, m.Err)
			why := fmt.Sprintf("cell %d failed: %s", c, m.Err)
			// The worker-failure budget is per lease: one bad batch (a
			// transiently broken environment failing every cell of it)
			// counts as one failure, not len(batch) of them.
			if ls, ok := leases[w]; ok {
				delete(ls.cells, c)
				if !ls.failed {
					ls.failed = true
					if err := markFailure(w, why); err != nil {
						return nil, err
					}
				} else {
					lastErr[w] = why
				}
				if len(ls.cells) == 0 {
					delete(leases, w)
				}
			} else {
				if err := markFailure(w, why); err != nil {
					return nil, err
				}
			}
			if _, ok := done[c]; !ok && c >= 0 && c < cfg.Cells {
				if err := requeueCell(c, m.Err); err != nil {
					return nil, err
				}
			}
			publish()

		case MsgRelease:
			// A draining worker hands back the cells it will not
			// evaluate. The release is voluntary, so neither the cell
			// retry budget nor the worker failure budget is charged —
			// the cells go straight back on the queue.
			released := make([]int, 0, len(m.Cells))
			ls, held := leases[w]
			for _, c := range m.Cells {
				if c < 0 || c >= cfg.Cells {
					continue
				}
				if held {
					delete(ls.cells, c)
				}
				if _, ok := done[c]; ok {
					continue
				}
				if !inPending(c) {
					pending = append(pending, c)
					released = append(released, c)
				}
			}
			if held && len(ls.cells) == 0 {
				delete(leases, w)
			}
			if len(released) > 0 {
				sort.Ints(released)
				cfg.logf("dispatch: worker %s released cells %v back to the queue", w, released)
			}
			publish()

		default:
			cfg.logf("dispatch: dropping message of unknown type %d from worker %s", m.Type, w)
		}
	}

	publish()
	envs := make([]*distsweep.CellEnvelope, 0, cfg.Cells)
	for i := 0; i < cfg.Cells; i++ {
		envs = append(envs, done[i])
	}
	return distsweep.MergeCells(envs)
}
