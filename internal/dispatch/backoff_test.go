package dispatch

import (
	"testing"
	"time"
)

// TestBackoffDeterministic: equal (base, max, seed) must produce equal
// delay sequences — the property the chaos suite's timing assertions
// stand on.
func TestBackoffDeterministic(t *testing.T) {
	a := NewBackoff(50*time.Millisecond, 400*time.Millisecond, 7)
	b := NewBackoff(50*time.Millisecond, 400*time.Millisecond, 7)
	for i := 0; i < 12; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("draw %d diverged: %v vs %v", i, da, db)
		}
	}
}

// TestBackoffEnvelope: every delay must land in [step/2, step], with
// the step doubling from base and capping at max.
func TestBackoffEnvelope(t *testing.T) {
	const base, max = 20 * time.Millisecond, 100 * time.Millisecond
	bo := NewBackoff(base, max, 3)
	step := base
	for i := 0; i < 10; i++ {
		d := bo.Next()
		if d < step/2 || d > step {
			t.Fatalf("draw %d = %v outside [%v, %v]", i, d, step/2, step)
		}
		step *= 2
		if step > max {
			step = max
		}
	}
	// Reset drops back to the base window.
	bo.Reset()
	if d := bo.Next(); d < base/2 || d > base {
		t.Fatalf("post-Reset draw %v outside [%v, %v]", d, base/2, base)
	}
}

// TestBackoffSeedsDesynchronize: different seeds must produce different
// jitter, so a fleet restarted in lockstep spreads out.
func TestBackoffSeedsDesynchronize(t *testing.T) {
	a := NewBackoff(time.Second, time.Minute, 1)
	b := NewBackoff(time.Second, time.Minute, 2)
	for i := 0; i < 16; i++ {
		if a.Next() != b.Next() {
			return
		}
	}
	t.Fatal("seeds 1 and 2 produced 16 identical draws")
}

// TestSeedFromID: stable per id, different across ids.
func TestSeedFromID(t *testing.T) {
	if SeedFromID("w1") != SeedFromID("w1") {
		t.Fatal("SeedFromID not stable")
	}
	if SeedFromID("w1") == SeedFromID("w2") {
		t.Fatal("SeedFromID(\"w1\") == SeedFromID(\"w2\")")
	}
}

// TestBackoffDefaults: non-positive base falls back to the option
// default; a max below base is raised to base.
func TestBackoffDefaults(t *testing.T) {
	bo := NewBackoff(0, 0, 1)
	d := bo.Next()
	want := Defaults().RetryBase
	if d < want/2 || d > want {
		t.Fatalf("zero-base first draw %v outside the default window [%v, %v]", d, want/2, want)
	}
	bo = NewBackoff(time.Second, time.Millisecond, 1)
	if d := bo.Next(); d < time.Second/2 || d > time.Second {
		t.Fatalf("max<base first draw %v outside [%v, %v]", d, time.Second/2, time.Second)
	}
}
