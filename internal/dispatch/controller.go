// Controller is the in-process control surface between a coordinator
// Run loop and a fleet supervisor: the supervisor reads status
// snapshots from it, and writes drain requests and restart records into
// it; Run consumes those on its next loop iteration. It exists so the
// supervisor can live in the same process as the coordinator (the
// common `exegpt sweep -mode dispatch -scale-max N` shape) without the
// HTTP round trip — the HTTP transport exposes the same two verbs
// (`/v1/status`, `POST /v1/drain`) for out-of-process supervision.
package dispatch

import "sync"

// WorkerRestart records one fleet-supervisor replacement decision for a
// worker slot: Worker is the incarnation that died, Restarts how many
// replacements the slot has burned, Reason why the last incarnation
// ended, and Poisoned that the slot spent its restart budget and will
// not be restarted again. Restart records are journaled like exclusions,
// so restart counts and poisoned verdicts survive a coordinator restart
// and stay visible on /v1/status.
type WorkerRestart struct {
	// Slot is the stable fleet position ("s0"); its incarnations are
	// workers named Slot+"r<generation>" ("s0r0", "s0r1", ...).
	Slot     string `json:"slot"`
	Worker   string `json:"worker,omitempty"`
	Restarts int    `json:"restarts"`
	Reason   string `json:"reason,omitempty"`
	Poisoned bool   `json:"poisoned,omitempty"`
}

// Controller mediates between one coordinator Run and one supervisor.
// All methods are safe for concurrent use; the zero value is not usable,
// call NewController.
type Controller struct {
	mu        sync.Mutex
	status    Status
	hasStatus bool
	drains    []string
	requested map[string]bool
	restarts  []WorkerRestart
}

// NewController returns an empty controller ready to hand to both
// Config.Controller and a supervisor.
func NewController() *Controller {
	return &Controller{requested: map[string]bool{}}
}

// Status returns the most recent snapshot the coordinator published,
// and whether one has been published yet.
func (c *Controller) Status() (Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status, c.hasStatus
}

// Drain asks the coordinator to stop leasing to the named worker: its
// next lease request is answered Stop and any cells it still holds
// requeue without charging budgets. Draining an unknown worker is
// harmless; repeated drains of the same worker coalesce.
func (c *Controller) Drain(worker string) {
	if worker == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.requested[worker] {
		return
	}
	c.requested[worker] = true
	c.drains = append(c.drains, worker)
}

// RecordRestart reports a fleet replacement (or a poisoned verdict) to
// the coordinator, which journals it and folds it into the status feed.
func (c *Controller) RecordRestart(r WorkerRestart) {
	if r.Slot == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restarts = append(c.restarts, r)
}

// publish stores the coordinator's latest snapshot for Status readers.
func (c *Controller) publish(s Status) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.status = s
	c.hasStatus = true
}

// take drains the pending drain requests and restart records for the
// coordinator loop to act on.
func (c *Controller) take() (drains []string, restarts []WorkerRestart) {
	c.mu.Lock()
	defer c.mu.Unlock()
	drains, c.drains = c.drains, nil
	restarts, c.restarts = c.restarts, nil
	return drains, restarts
}
