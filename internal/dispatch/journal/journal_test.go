package journal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"exegpt/internal/dispatch"
	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

const testFP = "fp-journal-test"

func fakeEnv(idx, total int) *distsweep.CellEnvelope {
	return distsweep.NewCellEnvelope(testFP, total, experiments.CellResult{
		Cell: idx,
		Rows: []experiments.SweepRow{{
			Model: "OPT-13B", Cluster: "A40", GPUs: 4, Task: "S",
			Bound: 5.0 + float64(idx), System: "FT",
			Tput: 1.5 * float64(idx+1), Feasible: true,
		}},
		Evals: 10 * (idx + 1),
	})
}

func newHeader(cells int) Header {
	return Header{
		Fingerprint: testFP,
		Cells:       cells,
		Options: OptionsOf(dispatch.Options{
			LeaseTimeout: 30 * time.Second, LeaseCells: 2,
			CellRetries: 3, WorkerFailures: 3, Idle: time.Minute,
		}),
	}
}

// openSeeded builds a journal with a header, n cell records and one
// exclusion, then closes it and returns the directory.
func openSeeded(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteHeader(newHeader(8)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Append(fakeEnv(i, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendExclusion(dispatch.WorkerExclusion{
		Worker: "bad-host", Failures: 3, Reason: "cell 5 failed: CUDA out of memory",
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRoundTrip(t *testing.T) {
	dir := openSeeded(t, 3)

	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.TruncatedBytes() != 0 {
		t.Fatalf("clean journal reports %d truncated bytes", j.TruncatedBytes())
	}
	h := j.Header()
	if h == nil {
		t.Fatal("no header after reopen")
	}
	if h.Fingerprint != testFP || h.Cells != 8 || h.Version != FormatVersion {
		t.Fatalf("header round trip: %+v", h)
	}
	if want := newHeader(8).Options; h.Options != want {
		t.Fatalf("options round trip: got %+v want %+v", h.Options, want)
	}
	if got := h.Options.Dispatch(); got.LeaseTimeout != 30*time.Second || got.Idle != time.Minute {
		t.Fatalf("options back-conversion: %+v", got)
	}
	cells := j.Cells()
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	for i, env := range cells {
		if env.Result.Cell != i || env.Result.Evals != 10*(i+1) {
			t.Fatalf("cell %d replayed as %+v", i, env.Result)
		}
	}
	ex := j.Exclusions()
	if len(ex) != 1 || ex[0].Worker != "bad-host" || !strings.Contains(ex[0].Reason, "CUDA") {
		t.Fatalf("exclusions replayed as %+v", ex)
	}

	// Appending after a reopen extends the same file.
	if err := j.Append(fakeEnv(5, 8)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.Cells()) != 4 {
		t.Fatalf("got %d cells after reopen-append, want 4", len(j2.Cells()))
	}
}

// TestTornTailTruncatesAtEveryOffset cuts the journal file at every
// byte offset inside its final record and requires Open to recover
// exactly the records before it, then accept fresh appends.
func TestTornTailTruncatesAtEveryOffset(t *testing.T) {
	dir := openSeeded(t, 2)
	path := filepath.Join(dir, FileName)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Find where the last record begins by walking the frames.
	var lastStart int
	for off := 0; off < len(whole); {
		lastStart = off
		length := int(binary.LittleEndian.Uint32(whole[off : off+4]))
		off += frameOverhead + length
	}

	for cut := lastStart + 1; cut < len(whole); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at %d/%d: %v", cut, len(whole), err)
		}
		if got := j.TruncatedBytes(); got != int64(cut-lastStart) {
			t.Fatalf("cut at %d: truncated %d bytes, want %d", cut, got, cut-lastStart)
		}
		// The torn record was the exclusion; both cells must survive.
		if len(j.Cells()) != 2 || len(j.Exclusions()) != 0 {
			t.Fatalf("cut at %d: recovered %d cells, %d exclusions",
				cut, len(j.Cells()), len(j.Exclusions()))
		}
		// The file is back on a record boundary: appends must land clean.
		if err := j.Append(fakeEnv(7, 8)); err != nil {
			t.Fatalf("cut at %d: append after truncate: %v", cut, err)
		}
		j.Close()
		j2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at %d: reopen after append: %v", cut, err)
		}
		if len(j2.Cells()) != 3 || j2.TruncatedBytes() != 0 {
			t.Fatalf("cut at %d: %d cells and %d truncated bytes after repair",
				cut, len(j2.Cells()), j2.TruncatedBytes())
		}
		j2.Close()
	}
}

func TestChecksumFailureDropsTail(t *testing.T) {
	dir := openSeeded(t, 3)
	path := filepath.Join(dir, FileName)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second cell record (header, cell 0,
	// cell 1, ...). Everything from that record on is dropped.
	off := 0
	for i := 0; i < 2; i++ {
		off += frameOverhead + int(binary.LittleEndian.Uint32(whole[off:off+4]))
	}
	whole[off+frameOverhead+2] ^= 0xFF
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(j.Cells()) != 1 || j.TruncatedBytes() == 0 {
		t.Fatalf("recovered %d cells, truncated %d bytes; want 1 cell and a dropped tail",
			len(j.Cells()), j.TruncatedBytes())
	}
}

func TestAbsurdLengthPrefixIsATornTail(t *testing.T) {
	dir := openSeeded(t, 2)
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var frame [frameOverhead]byte
	binary.LittleEndian.PutUint32(frame[:4], 0xFFFFFFF0)
	f.Write(frame[:])
	f.Close()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(j.Cells()) != 2 || j.TruncatedBytes() != frameOverhead {
		t.Fatalf("recovered %d cells, truncated %d bytes", len(j.Cells()), j.TruncatedBytes())
	}
}

func TestChecksummedGarbageFailsLoudly(t *testing.T) {
	dir := openSeeded(t, 1)
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("not json at all")
	frame := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameOverhead:], payload)
	f.Write(frame)
	f.Close()
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a checksummed non-JSON record")
	}
}

func TestAppendValidation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(fakeEnv(0, 8)); err == nil {
		t.Fatal("append accepted before WriteHeader")
	}
	if err := j.WriteHeader(newHeader(8)); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteHeader(newHeader(8)); err == nil {
		t.Fatal("second WriteHeader accepted")
	}
	wrong := fakeEnv(0, 8)
	wrong.Fingerprint = "some-other-grid"
	if err := j.Append(wrong); err == nil {
		t.Fatal("append accepted a foreign-grid cell")
	}
	sized := fakeEnv(0, 9)
	if err := j.Append(sized); err == nil {
		t.Fatal("append accepted a wrong-sized grid cell")
	}

	// Duplicate appends are idempotent: one record on disk.
	if err := j.Append(fakeEnv(2, 8)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(fakeEnv(2, 8)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.Cells()) != 1 {
		t.Fatalf("duplicate append left %d cells", len(j2.Cells()))
	}
}

func TestEmptyJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Header() != nil || len(j.Cells()) != 0 || len(j.Exclusions()) != 0 {
		t.Fatal("fresh journal is not empty")
	}
}
