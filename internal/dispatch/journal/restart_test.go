package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"exegpt/internal/dispatch"
)

// TestRestartRoundTrip: the supervisor's restart ledger must replay
// with the latest record per slot winning, in slot order, with the
// poisoned verdict intact.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteHeader(newHeader(8)); err != nil {
		t.Fatal(err)
	}
	for _, r := range []dispatch.WorkerRestart{
		{Slot: "s0", Worker: "s0r0", Restarts: 1, Reason: "killed by chaos"},
		{Slot: "s1", Worker: "s1r2", Restarts: 3, Reason: "segfault on startup", Poisoned: true},
		{Slot: "s0", Worker: "s0r1", Restarts: 2, Reason: "excluded by coordinator: OOM"},
	} {
		if err := j.AppendRestart(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rs := j2.Restarts()
	if len(rs) != 2 {
		t.Fatalf("replayed %d restart records, want 2 (latest per slot): %+v", len(rs), rs)
	}
	s0, s1 := rs[0], rs[1]
	if s0.Slot != "s0" || s1.Slot != "s1" {
		t.Fatalf("restart records not in slot order: %+v", rs)
	}
	if s0.Worker != "s0r1" || s0.Restarts != 2 || s0.Poisoned ||
		!strings.Contains(s0.Reason, "excluded") {
		t.Fatalf("slot s0 did not replay its latest record: %+v", s0)
	}
	if s1.Worker != "s1r2" || s1.Restarts != 3 || !s1.Poisoned {
		t.Fatalf("slot s1 lost its poisoned verdict: %+v", s1)
	}
}

// TestOpenFailsFast: a mistyped journal path must fail at Open with a
// diagnosis, not at the first append minutes into a sweep.
func TestOpenFailsFast(t *testing.T) {
	base := t.TempDir()

	file := filepath.Join(base, "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file); err == nil || !strings.Contains(err.Error(), "is a file") {
		t.Fatalf("Open(file) = %v, want an is-a-file diagnosis", err)
	}

	deep := filepath.Join(base, "no-such-parent", "journal")
	if _, err := Open(deep); err == nil || !strings.Contains(err.Error(), "parent is missing") {
		t.Fatalf("Open(missing parent) = %v, want a mistyped-path diagnosis", err)
	}

	// One missing level is created — the convenient case stays easy.
	j, err := Open(filepath.Join(base, "fresh"))
	if err != nil {
		t.Fatalf("Open with one missing level: %v", err)
	}
	j.Close()
}
