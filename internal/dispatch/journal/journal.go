// Package journal gives the dispatch coordinator a durable,
// append-only record of a sweep, so a coordinator killed mid-run —
// crash, OOM, SIGKILL — restarts with every accepted result intact
// instead of restarting the sweep from zero.
//
// A journal directory holds one file, sweep.journal, of framed JSON
// records:
//
//	[4B little-endian payload length][4B little-endian CRC-32 (IEEE)][payload]
//
// The first record is a header naming the sweep identity (grid
// fingerprint, cell count, dispatch options); every record after it is
// one accepted distsweep.CellEnvelope or one worker exclusion, fsync'd
// before the coordinator acknowledges the event. A torn tail — a
// record half-written when the process died — fails its length or
// checksum and is truncated away on Open, so recovery resumes from the
// last durable record instead of refusing a "corrupt" file. A record
// whose checksum passes but whose content does not validate is a
// different matter — foreign or damaged data, not a torn write — and
// fails Open loudly.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"exegpt/internal/dispatch"
	"exegpt/internal/distsweep"
)

// FormatVersion is the journal record-format version, stamped into the
// header so a future format change fails loudly instead of silently
// misreading old journals.
const FormatVersion = 1

// FileName is the journal file inside the journal directory.
const FileName = "sweep.journal"

// maxRecordBytes guards replay against absurd length prefixes from a
// corrupted frame; a real record is a few KB of JSON.
const maxRecordBytes = 64 << 20

// frameOverhead is the per-record framing cost: length + checksum.
const frameOverhead = 8

// Options is the on-disk encoding of dispatch.Options, in explicit
// units so the file is self-describing and stable across builds.
type Options struct {
	LeaseTimeoutMS int64 `json:"lease_timeout_ms"`
	LeaseCells     int   `json:"lease_cells"`
	CellRetries    int   `json:"cell_retries"`
	WorkerFailures int   `json:"worker_failures"`
	IdleMS         int64 `json:"idle_ms"`
}

// OptionsOf converts live coordinator options to their journal form.
func OptionsOf(o dispatch.Options) Options {
	return Options{
		LeaseTimeoutMS: o.LeaseTimeout.Milliseconds(),
		LeaseCells:     o.LeaseCells,
		CellRetries:    o.CellRetries,
		WorkerFailures: o.WorkerFailures,
		IdleMS:         o.Idle.Milliseconds(),
	}
}

// Dispatch converts journaled options back to live coordinator form.
func (o Options) Dispatch() dispatch.Options {
	return dispatch.Options{
		LeaseTimeout:   time.Duration(o.LeaseTimeoutMS) * time.Millisecond,
		LeaseCells:     o.LeaseCells,
		CellRetries:    o.CellRetries,
		WorkerFailures: o.WorkerFailures,
		Idle:           time.Duration(o.IdleMS) * time.Millisecond,
	}
}

// Header is the journal's first record: the identity of the sweep it
// belongs to. A resuming coordinator must present the same grid
// fingerprint and cell count.
type Header struct {
	Version     int     `json:"version"`
	Fingerprint string  `json:"fingerprint"`
	Cells       int     `json:"cells"`
	Options     Options `json:"options"`
}

// record is the journal's single payload shape; exactly one field is
// set per record.
type record struct {
	Header    *Header                   `json:"header,omitempty"`
	Cell      *distsweep.CellEnvelope   `json:"cell,omitempty"`
	Exclusion *dispatch.WorkerExclusion `json:"exclusion,omitempty"`
	Restart   *dispatch.WorkerRestart   `json:"restart,omitempty"`
}

// Journal is an open journal file. It implements dispatch.Journal;
// Append and AppendExclusion are safe for concurrent use (the
// coordinator is single-goroutine, but a CLI may log around it).
type Journal struct {
	path string

	mu         sync.Mutex
	f          *os.File
	header     *Header
	cells      map[int]*distsweep.CellEnvelope
	exclusions []dispatch.WorkerExclusion
	restarts   map[string]dispatch.WorkerRestart
	truncated  int64
}

// Open opens (creating the directory and file if needed) the journal
// in dir and replays its records. A torn tail is truncated away —
// check TruncatedBytes to report it; CRC-valid records that fail
// validation make Open fail.
//
// Open fails fast on a bad directory: it creates dir itself when
// missing, but refuses to create missing *parents* — a mistyped
// journal path should be a clear error before the sweep starts, not a
// silently fresh journal that loses the resume it was meant for (or a
// write error an hour in).
func Open(dir string) (*Journal, error) {
	switch fi, err := os.Stat(dir); {
	case err == nil && !fi.IsDir():
		return nil, fmt.Errorf("journal: %s is a file, not a directory", dir)
	case err == nil:
		// exists
	case os.IsNotExist(err):
		if mkErr := os.Mkdir(dir, 0o755); mkErr != nil {
			if os.IsNotExist(mkErr) {
				return nil, fmt.Errorf("journal: directory %s does not exist and its parent is missing too (mistyped journal path?)", dir)
			}
			return nil, fmt.Errorf("journal: cannot create directory %s: %w", dir, mkErr)
		}
	default:
		return nil, fmt.Errorf("journal: stat %s: %w", dir, err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		if os.IsPermission(err) {
			return nil, fmt.Errorf("journal: directory %s is not writable: %w", dir, err)
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{path: path, f: f,
		cells:    map[int]*distsweep.CellEnvelope{},
		restarts: map[string]dispatch.WorkerRestart{}}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay scans the file from the start, applying every whole,
// checksummed record and truncating the file at the first torn one.
func (j *Journal) replay() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("journal: read %s: %w", j.path, err)
	}
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameOverhead {
			break // torn frame header
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length == 0 || length > maxRecordBytes ||
			int64(len(rest)) < frameOverhead+int64(length) {
			break // torn payload, or a length prefix that is itself torn
		}
		payload := rest[frameOverhead : frameOverhead+length]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn payload
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The checksum passed, so this is not a torn write.
			return fmt.Errorf("journal: %s: checksummed record at byte %d is undecodable: %w", j.path, off, err)
		}
		if err := j.apply(&rec, off); err != nil {
			return err
		}
		off += frameOverhead + int64(length)
	}
	if tail := int64(len(data)) - off; tail > 0 {
		// Drop the torn tail so the next append starts on a clean
		// record boundary.
		j.truncated = tail
		if err := j.f.Truncate(off); err != nil {
			return fmt.Errorf("journal: truncate torn tail of %s: %w", j.path, err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync %s: %w", j.path, err)
		}
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("journal: seek %s: %w", j.path, err)
	}
	return nil
}

// apply folds one replayed record into the in-memory state.
func (j *Journal) apply(rec *record, off int64) error {
	switch {
	case rec.Header != nil:
		if off != 0 || j.header != nil {
			return fmt.Errorf("journal: %s: header record at byte %d, want exactly one at byte 0", j.path, off)
		}
		h := *rec.Header
		if h.Version != FormatVersion {
			return fmt.Errorf("journal: %s is format version %d, this build reads %d", j.path, h.Version, FormatVersion)
		}
		if h.Fingerprint == "" || h.Cells < 1 {
			return fmt.Errorf("journal: %s: header missing fingerprint or cell count", j.path)
		}
		j.header = &h
	case rec.Cell != nil:
		if err := j.checkCell(rec.Cell); err != nil {
			return err
		}
		if c := rec.Cell.Result.Cell; j.cells[c] == nil {
			j.cells[c] = rec.Cell
		}
	case rec.Exclusion != nil:
		if j.header == nil {
			return fmt.Errorf("journal: %s: exclusion record before the header", j.path)
		}
		j.exclusions = append(j.exclusions, *rec.Exclusion)
	case rec.Restart != nil:
		if j.header == nil {
			return fmt.Errorf("journal: %s: restart record before the header", j.path)
		}
		// Last record per slot wins: restart counts only grow.
		j.restarts[rec.Restart.Slot] = *rec.Restart
	default:
		return fmt.Errorf("journal: %s: empty record at byte %d", j.path, off)
	}
	return nil
}

// checkCell validates a cell envelope against the journal's identity.
func (j *Journal) checkCell(env *distsweep.CellEnvelope) error {
	if j.header == nil {
		return fmt.Errorf("journal: %s: cell record before the header", j.path)
	}
	if env.Fingerprint != j.header.Fingerprint {
		return fmt.Errorf("journal: %s: cell %d carries grid %.12s…, journal records %.12s…",
			j.path, env.Result.Cell, env.Fingerprint, j.header.Fingerprint)
	}
	if env.Total != j.header.Cells {
		return fmt.Errorf("journal: %s: cell %d is from a %d-cell grid, journal records %d",
			j.path, env.Result.Cell, env.Total, j.header.Cells)
	}
	if c := env.Result.Cell; c < 0 || c >= j.header.Cells {
		return fmt.Errorf("journal: %s: cell index %d out of range 0..%d", j.path, c, j.header.Cells-1)
	}
	return nil
}

// appendRecord frames, writes and fsyncs one record. Callers hold mu.
func (j *Journal) appendRecord(rec *record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	frame := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameOverhead:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append to %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync %s: %w", j.path, err)
	}
	return nil
}

// WriteHeader stamps a fresh journal with the sweep's identity. It
// must be the first write; a journal that already has a header (a
// resume) rejects a second one.
func (j *Journal) WriteHeader(h Header) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.header != nil {
		return fmt.Errorf("journal: %s already has a header (resuming? read it with Header instead)", j.path)
	}
	if h.Fingerprint == "" {
		return fmt.Errorf("journal: header missing grid fingerprint")
	}
	if h.Cells < 1 {
		return fmt.Errorf("journal: header has %d cells", h.Cells)
	}
	h.Version = FormatVersion
	if err := j.appendRecord(&record{Header: &h}); err != nil {
		return err
	}
	j.header = &h
	j.syncDir()
	return nil
}

// syncDir fsyncs the journal's directory so the file's existence is as
// durable as its contents. Best effort: some filesystems reject
// directory fsync, and the record fsyncs carry the real guarantee.
func (j *Journal) syncDir() {
	if d, err := os.Open(filepath.Dir(j.path)); err == nil {
		d.Sync()
		d.Close()
	}
}

// Append journals one accepted cell result (dispatch.Journal). A cell
// already journaled is a no-op — it is durable either way.
func (j *Journal) Append(env *distsweep.CellEnvelope) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if env == nil {
		return fmt.Errorf("journal: nil cell envelope")
	}
	if j.header == nil {
		return fmt.Errorf("journal: %s: append before WriteHeader", j.path)
	}
	if err := j.checkCell(env); err != nil {
		return err
	}
	c := env.Result.Cell
	if j.cells[c] != nil {
		return nil
	}
	if err := j.appendRecord(&record{Cell: env}); err != nil {
		return err
	}
	j.cells[c] = env
	return nil
}

// AppendExclusion journals one worker exclusion (dispatch.Journal).
func (j *Journal) AppendExclusion(x dispatch.WorkerExclusion) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if x.Worker == "" {
		return fmt.Errorf("journal: exclusion missing worker id")
	}
	if j.header == nil {
		return fmt.Errorf("journal: %s: append before WriteHeader", j.path)
	}
	if err := j.appendRecord(&record{Exclusion: &x}); err != nil {
		return err
	}
	j.exclusions = append(j.exclusions, x)
	return nil
}

// AppendRestart journals one fleet-supervisor restart record
// (dispatch.Journal), so per-slot restart counts and poisoned verdicts
// survive a coordinator restart.
func (j *Journal) AppendRestart(r dispatch.WorkerRestart) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if r.Slot == "" {
		return fmt.Errorf("journal: restart record missing slot name")
	}
	if j.header == nil {
		return fmt.Errorf("journal: %s: append before WriteHeader", j.path)
	}
	if err := j.appendRecord(&record{Restart: &r}); err != nil {
		return err
	}
	j.restarts[r.Slot] = r
	return nil
}

// Header returns a copy of the journal's header, or nil for a fresh
// (empty) journal.
func (j *Journal) Header() *Header {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.header == nil {
		return nil
	}
	h := *j.header
	return &h
}

// Cells returns the journaled cell envelopes in ascending cell order —
// ready for dispatch.Config.Completed.
func (j *Journal) Cells() []*distsweep.CellEnvelope {
	j.mu.Lock()
	defer j.mu.Unlock()
	idx := make([]int, 0, len(j.cells))
	for c := range j.cells {
		idx = append(idx, c)
	}
	sort.Ints(idx)
	out := make([]*distsweep.CellEnvelope, 0, len(idx))
	for _, c := range idx {
		out = append(out, j.cells[c])
	}
	return out
}

// Exclusions returns the journaled worker exclusions in append order —
// ready for dispatch.Config.Exclusions.
func (j *Journal) Exclusions() []dispatch.WorkerExclusion {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]dispatch.WorkerExclusion(nil), j.exclusions...)
}

// Restarts returns the latest journaled restart record per slot, in
// slot order — ready for dispatch.Config.Restarts.
func (j *Journal) Restarts() []dispatch.WorkerRestart {
	j.mu.Lock()
	defer j.mu.Unlock()
	slots := make([]string, 0, len(j.restarts))
	for s := range j.restarts {
		slots = append(slots, s)
	}
	sort.Strings(slots)
	out := make([]dispatch.WorkerRestart, 0, len(slots))
	for _, s := range slots {
		out = append(out, j.restarts[s])
	}
	return out
}

// TruncatedBytes reports how many torn-tail bytes Open dropped, for
// operator-facing logs. 0 means the file ended on a record boundary.
func (j *Journal) TruncatedBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.truncated
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file. Appends already on disk stay durable.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Journal implements dispatch.Journal.
var _ dispatch.Journal = (*Journal)(nil)
