package dispatch_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"exegpt/internal/atomicfile"
	"exegpt/internal/dispatch"
	"exegpt/internal/dispatch/chaostest"
	"exegpt/internal/dispatch/journal"
	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
	"exegpt/internal/hw"
	"exegpt/internal/model"
	"exegpt/internal/sched"
	"exegpt/internal/workload"
)

// fakeCell and fakeFold mirror the fixtures the in-package tests use;
// this file lives outside the package so it can exercise the journal
// and chaos packages (which import dispatch) without a cycle.
func fakeCell(idx int) experiments.CellResult {
	return experiments.CellResult{
		Cell: idx,
		Rows: []experiments.SweepRow{{
			Model: "OPT-13B", Cluster: "A40", GPUs: 4, Task: "S",
			Bound: 5.0 + float64(idx), System: "FT",
			Tput: 1.5 * float64(idx+1), Feasible: true,
		}},
		Evals: 10 * (idx + 1),
	}
}

func fakeFold(t *testing.T, fp string, n int) []byte {
	t.Helper()
	envs := make([]*distsweep.CellEnvelope, n)
	for i := 0; i < n; i++ {
		envs[i] = distsweep.NewCellEnvelope(fp, n, fakeCell(i))
	}
	m, err := distsweep.MergeCells(envs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func crashConfig(fp string, n int) dispatch.Config {
	return dispatch.Config{
		Fingerprint: fp,
		Cells:       n,
		Options: dispatch.Options{
			LeaseTimeout: 250 * time.Millisecond,
			Idle:         20 * time.Second,
		},
	}
}

type coordResult struct {
	m   *distsweep.Merged
	err error
}

func runCoord(ct dispatch.Transport, cfg dispatch.Config) chan coordResult {
	out := make(chan coordResult, 1)
	go func() {
		m, err := dispatch.Run(ct, cfg)
		out <- coordResult{m, err}
	}()
	return out
}

// TestJournalResumeRealGridByteIdentical extends the acceptance pin
// across a coordinator death: real sweep cells, a crash injected at the
// exact append/ack kill-point, and a journal-replayed restart must
// still merge byte-identical to the uninterrupted single-process sweep
// — the journal's JSON round trip of real float-heavy results included.
func TestJournalResumeRealGridByteIdentical(t *testing.T) {
	grid := experiments.SweepGrid{
		Deployments: []sched.Deployment{
			{Model: model.OPT13B, Cluster: hw.A40Cluster, GPUs: 4},
		},
		Tasks: []workload.Task{workload.Summarization, workload.Translation, workload.CodeGeneration},
	}
	cacheDir := t.TempDir()
	newCtx := func() *experiments.Context {
		c := experiments.NewQuickContext()
		c.ProfileCacheDir = cacheDir
		return c
	}
	ctx := newCtx()
	fp, err := ctx.GridFingerprint(grid)
	if err != nil {
		t.Fatal(err)
	}
	total := len(grid.Cells())

	cells, err := ctx.SweepShard(grid, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := distsweep.Merge([]*distsweep.Envelope{distsweep.NewEnvelope(fp, 1, 0, cells)})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteHeader(journal.Header{Fingerprint: fp, Cells: total}); err != nil {
		t.Fatal(err)
	}

	startRealWorker := func(hub *dispatch.Hub, id string) {
		wctx := newCtx()
		w := &dispatch.Worker{
			ID: id, Fingerprint: fp, Cells: total,
			Heartbeat: 50 * time.Millisecond,
			Poll:      10 * time.Millisecond,
			Idle:      30 * time.Second,
			Eval: func(c int) (experiments.CellResult, error) {
				crs, err := wctx.SweepCells(grid, []int{c})
				if err != nil {
					return experiments.CellResult{}, err
				}
				return crs[0], nil
			},
		}
		go w.Run(hub.Worker(id))
	}

	// Phase 1: crash at the second accepted result, after its record is
	// durable but before it is acknowledged.
	hub1 := dispatch.NewHub()
	cfg1 := crashConfig(fp, total)
	cfg1.Journal = &chaostest.CrashJournal{Inner: j, Appends: 1}
	res1 := runCoord(hub1, cfg1)
	startRealWorker(hub1, "w1")
	if r := <-res1; !errors.Is(r.err, chaostest.ErrCrash) {
		t.Fatalf("phase 1 ended with %v, want the injected crash", r.err)
	}
	j.Close()

	// Phase 2: replay and finish on a fresh hub.
	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Cells()); got != 2 {
		t.Fatalf("journal recovered %d cells, want 2", got)
	}
	hub2 := dispatch.NewHub()
	cfg2 := crashConfig(fp, total)
	cfg2.Journal = j2
	cfg2.Completed = j2.Cells()
	res2 := runCoord(hub2, cfg2)
	startRealWorker(hub2, "w2")
	r := <-res2
	if r.err != nil {
		t.Fatal(r.err)
	}
	gotBytes, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatal("journal-resumed merge not byte-identical to single-process sweep")
	}
}

// TestInterruptDrainsInFlightThenResumes pins the graceful-degradation
// contract: when Interrupt fires mid-evaluation, the in-flight result
// is still accepted and journaled, the worker's next request gets Stop,
// Run returns ErrInterrupted — and a resumed run completes the grid
// byte-identically.
func TestInterruptDrainsInFlightThenResumes(t *testing.T) {
	const fp, n = "fp-interrupt", 4
	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteHeader(journal.Header{Fingerprint: fp, Cells: n}); err != nil {
		t.Fatal(err)
	}

	interrupt := make(chan struct{})
	hub := dispatch.NewHub()
	cfg := crashConfig(fp, n)
	cfg.Journal = j
	cfg.Interrupt = interrupt
	res := runCoord(hub, cfg)

	evalStarted := make(chan int, n)
	release := make(chan struct{})
	w := &dispatch.Worker{
		ID: "w1", Fingerprint: fp, Cells: n,
		Heartbeat: 50 * time.Millisecond,
		Poll:      10 * time.Millisecond,
		Idle:      20 * time.Second,
		Eval: func(c int) (experiments.CellResult, error) {
			evalStarted <- c
			<-release
			return fakeCell(c), nil
		},
	}
	wDone := make(chan error, 1)
	go func() { wDone <- w.Run(hub.Worker("w1")) }()

	// Interrupt lands strictly before the in-flight evaluation returns.
	inFlight := <-evalStarted
	close(interrupt)
	close(release)

	r := <-res
	if !errors.Is(r.err, dispatch.ErrInterrupted) {
		t.Fatalf("interrupted run ended with %v, want ErrInterrupted", r.err)
	}
	select {
	case werr := <-wDone:
		if werr != nil {
			t.Fatalf("worker exited with %v after drain Stop", werr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never observed Stop from the draining coordinator")
	}
	j.Close()

	// The drained result is durable; the resumed run finishes the rest.
	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	found := false
	for _, env := range j2.Cells() {
		if env.Result.Cell == inFlight {
			found = true
		}
	}
	if !found {
		t.Fatalf("in-flight cell %d not journaled during the drain", inFlight)
	}

	hub2 := dispatch.NewHub()
	cfg2 := crashConfig(fp, n)
	cfg2.Journal = j2
	cfg2.Completed = j2.Cells()
	res2 := runCoord(hub2, cfg2)
	w2 := &dispatch.Worker{
		ID: "w2", Fingerprint: fp, Cells: n,
		Heartbeat: 50 * time.Millisecond,
		Poll:      10 * time.Millisecond,
		Idle:      20 * time.Second,
		Eval:      func(c int) (experiments.CellResult, error) { return fakeCell(c), nil },
	}
	go w2.Run(hub2.Worker("w2"))
	r2 := <-res2
	if r2.err != nil {
		t.Fatal(r2.err)
	}
	got, err := r2.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fakeFold(t, fp, n)) {
		t.Fatal("interrupt-resumed merge not byte-identical to the direct fold")
	}
}

// TestSpoolWorkerToleratesTornLease pins the retry posture: a torn
// (half-copied) lease file must be re-polled, not treated as fatal —
// a non-atomic synchronizer completes it in place moments later.
func TestSpoolWorkerToleratesTornLease(t *testing.T) {
	spool, err := dispatch.NewSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wt, err := spool.Worker("w1")
	if err != nil {
		t.Fatal(err)
	}
	whole, err := dispatch.EncodeLease(&dispatch.Lease{
		Version: dispatch.WireVersion, Worker: "w1", Seq: 1,
		Cells: []int{2, 3}, TimeoutMS: 60000,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(spool.Root(), "leases", "lease_w1_1.json")
	if err := os.WriteFile(path, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		atomicfile.Write(path, whole, 0o644)
	}()
	l, err := wt.RecvLease(1, 5*time.Second)
	if err != nil {
		t.Fatalf("torn lease treated as fatal: %v", err)
	}
	if l == nil || len(l.Cells) != 2 || l.Cells[0] != 2 {
		t.Fatalf("lease after completion: %+v", l)
	}
}

// TestSpoolWorkerTornLeaseTimesOutQuietly: a lease file that never
// becomes whole is a timeout (the worker re-requests), not an error.
func TestSpoolWorkerTornLeaseTimesOutQuietly(t *testing.T) {
	spool, err := dispatch.NewSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wt, err := spool.Worker("w1")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(spool.Root(), "leases", "lease_w1_1.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"wor`), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := wt.RecvLease(1, 300*time.Millisecond)
	if err != nil {
		t.Fatalf("permanently torn lease escalated to an error: %v", err)
	}
	if l != nil {
		t.Fatalf("torn lease decoded to %+v", l)
	}
}

// TestSpoolWorkerRejectsForeignWireVersion: a whole frame from another
// build must still fail loudly — mixed-version fleets are a
// configuration error, not a transient.
func TestSpoolWorkerRejectsForeignWireVersion(t *testing.T) {
	spool, err := dispatch.NewSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wt, err := spool.Worker("w1")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(spool.Root(), "leases", "lease_w1_1.json")
	foreign := []byte(`{"version":99,"worker":"w1","seq":1,"cells":[0]}` + "\n")
	if err := os.WriteFile(path, foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.RecvLease(1, 5*time.Second); !errors.Is(err, dispatch.ErrWireVersion) {
		t.Fatalf("foreign wire version: got %v, want ErrWireVersion", err)
	}
}
