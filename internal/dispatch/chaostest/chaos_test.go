package chaostest_test

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"exegpt/internal/dispatch"
	"exegpt/internal/dispatch/chaostest"
	"exegpt/internal/dispatch/httptransport"
	"exegpt/internal/dispatch/journal"
	"exegpt/internal/dispatch/transporttest"
	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

// chaosFaults is the conformance fault profile: gentle enough that the
// scenarios converge quickly, harsh enough that drops, duplicates and
// reorderings all fire many times per run.
func chaosFaults(seed int64) chaostest.Faults {
	return chaostest.Faults{
		Seed: seed, Drop: 0.08, Dup: 0.15, Delay: 0.2,
		MaxDelay: 40 * time.Millisecond,
	}
}

// relax raises the retry and failure budgets: injected faults must
// exercise the requeue/dedup recovery machinery, not trip the abort
// paths pinned by the non-chaos tests.
func relax(o *dispatch.Options) {
	o.CellRetries = 200
	o.WorkerFailures = 200
}

// TestHubConformanceUnderChaos runs the transport conformance suite
// against the in-process hub with every send subject to drop/dup/delay.
func TestHubConformanceUnderChaos(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) *transporttest.Harness {
		hub := dispatch.NewHub()
		inj := chaostest.NewInjector(chaosFaults(1))
		return &transporttest.Harness{
			Coordinator: chaostest.Coordinator(hub, inj),
			Worker: func(t *testing.T, id string) dispatch.WorkerTransport {
				return chaostest.Worker(hub.Worker(id), inj)
			},
			Tune: relax,
		}
	})
}

// TestSpoolConformanceUnderChaos: the file spool under the same chaos,
// keeping its torn-inbox-frame corruption scenario.
func TestSpoolConformanceUnderChaos(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) *transporttest.Harness {
		spool, err := dispatch.NewSpool(filepath.Join(t.TempDir(), "spool"))
		if err != nil {
			t.Fatal(err)
		}
		ct, err := spool.Coordinator()
		if err != nil {
			t.Fatal(err)
		}
		inj := chaostest.NewInjector(chaosFaults(2))
		return &transporttest.Harness{
			Coordinator: chaostest.Coordinator(ct, inj),
			Worker: func(t *testing.T, id string) dispatch.WorkerTransport {
				wt, err := spool.Worker(id)
				if err != nil {
					t.Fatal(err)
				}
				return chaostest.Worker(wt, inj)
			},
			Corrupt: func() error {
				torn := []byte(`{"version":1,"type":3,"worker":"torn","resu`)
				return os.WriteFile(
					filepath.Join(spool.Root(), "inbox", "m_torn_000000000001.json"),
					torn, 0o644)
			},
			Tune: relax,
		}
	})
}

// TestHTTPConformanceUnderChaos: the HTTP transport over real TCP under
// the same chaos, keeping its truncated-POST corruption scenario.
func TestHTTPConformanceUnderChaos(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) *transporttest.Harness {
		srv := httptransport.NewServer()
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		inj := chaostest.NewInjector(chaosFaults(3))
		return &transporttest.Harness{
			Coordinator: chaostest.Coordinator(srv, inj),
			Worker: func(t *testing.T, id string) dispatch.WorkerTransport {
				c, err := httptransport.Dial(hs.URL, id, 10*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				return chaostest.Worker(c, inj)
			},
			Corrupt: func() error {
				resp, err := http.Post(hs.URL+"/v1/msg", "application/json",
					strings.NewReader(`{"version":1,"type":3,"worker":"torn","resu`))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusBadRequest {
					return fmt.Errorf("truncated frame accepted: %s", resp.Status)
				}
				return nil
			},
			Tune: relax,
		}
	})
}

// ---- kill-resume equivalence under chaos ----

func fakeCellResult(idx int) experiments.CellResult {
	return experiments.CellResult{
		Cell: idx,
		Rows: []experiments.SweepRow{{
			Model: "OPT-13B", Cluster: "A40", GPUs: 4, Task: "S",
			Bound: 5.0 + float64(idx), System: "FT",
			Tput: 1.5 * float64(idx+1), Feasible: true,
		}},
		Evals: 10 * (idx + 1),
	}
}

func reference(t *testing.T, fp string, n int) []byte {
	t.Helper()
	envs := make([]*distsweep.CellEnvelope, n)
	for i := 0; i < n; i++ {
		envs[i] = distsweep.NewCellEnvelope(fp, n, fakeCellResult(i))
	}
	m, err := distsweep.MergeCells(envs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func chaosConfig(fp string, n int) dispatch.Config {
	return dispatch.Config{
		Fingerprint: fp,
		Cells:       n,
		Options: dispatch.Options{
			LeaseTimeout:   300 * time.Millisecond,
			CellRetries:    200,
			WorkerFailures: 200,
			Idle:           30 * time.Second,
		},
	}
}

type runResult struct {
	m   *distsweep.Merged
	err error
}

func startCoord(ct dispatch.Transport, cfg dispatch.Config) chan runResult {
	out := make(chan runResult, 1)
	go func() {
		m, err := dispatch.Run(ct, cfg)
		out <- runResult{m, err}
	}()
	return out
}

func startWorker(id, fp string, n int, wt dispatch.WorkerTransport) {
	w := &dispatch.Worker{
		ID: id, Fingerprint: fp, Cells: n,
		Heartbeat: 30 * time.Millisecond,
		Poll:      10 * time.Millisecond,
		Idle:      30 * time.Second,
		Eval:      func(c int) (experiments.CellResult, error) { return fakeCellResult(c), nil },
	}
	go w.Run(wt)
}

// takeLease requests one lease by hand, re-sending through injected
// drops, so a deadbeat can grab cells and abandon them.
func takeLease(t *testing.T, wt dispatch.WorkerTransport, id string) *dispatch.Lease {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := wt.Send(&dispatch.Msg{Version: dispatch.WireVersion, Type: dispatch.MsgRequest,
			Worker: id, Seq: 1, Max: 2}); err != nil {
			t.Fatal(err)
		}
		for end := time.Now().Add(time.Second); time.Now().Before(end); {
			l, err := wt.RecvLease(1, 50*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if l != nil {
				return l
			}
		}
	}
	t.Fatal("no lease within 10s")
	return nil
}

// phase builds one coordinator lifetime of a transport: its coordinator
// side and a way to attach workers. Each phase of a kill-resume run
// gets a fresh one (a restarted coordinator process), except the spool,
// where the directory — like a real spool — survives the crash.
type phase struct {
	coord  dispatch.Transport
	attach func(t *testing.T, id string) dispatch.WorkerTransport
}

func hubPhase(t *testing.T) *phase {
	hub := dispatch.NewHub()
	return &phase{
		coord: hub,
		attach: func(t *testing.T, id string) dispatch.WorkerTransport {
			return hub.Worker(id)
		},
	}
}

func spoolPhases(t *testing.T) func(t *testing.T) *phase {
	root := filepath.Join(t.TempDir(), "spool")
	return func(t *testing.T) *phase {
		spool, err := dispatch.NewSpool(root)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := spool.Coordinator()
		if err != nil {
			t.Fatal(err)
		}
		return &phase{
			coord: ct,
			attach: func(t *testing.T, id string) dispatch.WorkerTransport {
				wt, err := spool.Worker(id)
				if err != nil {
					t.Fatal(err)
				}
				return wt
			},
		}
	}
}

func httpPhase(t *testing.T) *phase {
	srv := httptransport.NewServer()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return &phase{
		coord: srv,
		attach: func(t *testing.T, id string) dispatch.WorkerTransport {
			c, err := httptransport.Dial(hs.URL, id, 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
	}
}

// testKillResume is the tentpole equivalence scenario: under message
// chaos, a worker dies with a lease, the coordinator is killed at a
// journal kill-point (before or after the record is durable), the
// journal optionally loses its tail to a torn write — and a restarted
// coordinator over a fresh transport must finish the grid with a merge
// byte-identical to the uninterrupted single-process fold.
func testKillResume(t *testing.T, newPhase func(t *testing.T) *phase,
	seed int64, beforeWrite, tearTail bool) {

	const fp, n = "fp-chaos-resume", 8
	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteHeader(journal.Header{Fingerprint: fp, Cells: n}); err != nil {
		t.Fatal(err)
	}
	inj := chaostest.NewInjector(chaosFaults(seed))

	// Phase 1: a deadbeat takes a lease and dies; an honest worker
	// grinds through the grid until the injected crash at the third
	// accepted result.
	p1 := newPhase(t)
	crash := &chaostest.CrashJournal{Inner: j, Appends: 2, BeforeWrite: beforeWrite}
	cfg1 := chaosConfig(fp, n)
	cfg1.Journal = crash
	res1 := startCoord(chaostest.Coordinator(p1.coord, inj), cfg1)

	dead := p1.attach(t, "deadbeat")
	if l := takeLease(t, chaostest.Worker(dead, inj), "deadbeat"); len(l.Cells) == 0 {
		t.Fatal("deadbeat got no cells to abandon")
	}
	startWorker("w1", fp, n, chaostest.Worker(p1.attach(t, "w1"), inj))

	r1 := <-res1
	if !errors.Is(r1.err, chaostest.ErrCrash) {
		t.Fatalf("phase 1 ended with %v, want the injected crash", r1.err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	if tearTail {
		// The machine died mid-write: the journal's last record is torn.
		path := filepath.Join(dir, journal.FileName)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()-5); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: reopen the journal, replay it into a fresh coordinator
	// over a fresh transport, and let a new worker finish the grid.
	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recovered := len(j2.Cells())
	want := 2
	if !beforeWrite && !tearTail {
		want = 3 // the crashing append was durable
	}
	if recovered != want {
		t.Fatalf("journal recovered %d cells, want %d (beforeWrite=%v tearTail=%v)",
			recovered, want, beforeWrite, tearTail)
	}

	p2 := newPhase(t)
	cfg2 := chaosConfig(fp, n)
	cfg2.Journal = j2
	cfg2.Completed = j2.Cells()
	cfg2.Exclusions = j2.Exclusions()
	res2 := startCoord(chaostest.Coordinator(p2.coord, inj), cfg2)
	startWorker("w2", fp, n, chaostest.Worker(p2.attach(t, "w2"), inj))

	r2 := <-res2
	if r2.err != nil {
		t.Fatalf("phase 2: %v", r2.err)
	}
	got, err := r2.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reference(t, fp, n)) {
		t.Fatal("kill-resume merge not byte-identical to the direct fold")
	}
}

func TestKillResumeHub(t *testing.T) {
	testKillResume(t, hubPhase, 11, false, false)
}

func TestKillResumeSpool(t *testing.T) {
	testKillResume(t, spoolPhases(t), 12, false, false)
}

func TestKillResumeHTTP(t *testing.T) {
	testKillResume(t, httpPhase, 13, false, false)
}

func TestKillResumeBeforeWriteSpool(t *testing.T) {
	testKillResume(t, spoolPhases(t), 14, true, false)
}

func TestKillResumeTornTailHTTP(t *testing.T) {
	testKillResume(t, httpPhase, 15, false, true)
}

func TestKillResumeTornTailSpool(t *testing.T) {
	testKillResume(t, spoolPhases(t), 16, false, true)
}
