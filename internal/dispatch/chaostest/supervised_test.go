// Supervised-fleet chaos: the supervisor reconciliation loop driving
// an in-process worker fleet through seed-deterministic kill schedules
// over every transport. The fleet's "processes" are real
// dispatch.Worker pull loops whose transports die on schedule, so a
// kill looks exactly like a crashed worker process: the in-flight
// result is lost, the lease times out, and the supervisor sees a
// non-nil exit. One slot runs a poisoned binary (dies before
// delivering anything, every incarnation); it must be declared
// poisoned after exactly MaxRestarts replacements — with backoff
// between them — while the healthy slots churn, get replaced, and
// still produce a merge byte-identical to the single-process fold.
package chaostest_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"exegpt/internal/dispatch"
	"exegpt/internal/dispatch/chaostest"
	"exegpt/internal/dispatch/httptransport"
	"exegpt/internal/dispatch/journal"
	"exegpt/internal/dispatch/supervisor"
	"exegpt/internal/experiments"
)

// errKilled is what a scheduled kill looks like from the worker's Run
// loop: its transport starts failing, as if the process were shot.
var errKilled = errors.New("killed by chaos schedule mid-lease")

// deathTransport wraps a worker transport with a kill budget: after
// `budget` delivered results, the next result send — and everything
// after it — fails, so the worker dies with that result lost in
// flight (evaluated but never accounted). budget < 0 is immortal;
// budget 0 dies on its very first result, the poisoned-binary shape.
type deathTransport struct {
	inner  dispatch.WorkerTransport
	mu     sync.Mutex
	budget int
	dead   bool
}

func (d *deathTransport) kill() {
	d.mu.Lock()
	d.dead = true
	d.mu.Unlock()
}

func (d *deathTransport) Send(m *dispatch.Msg) error {
	d.mu.Lock()
	if !d.dead && d.budget >= 0 && m.Type == dispatch.MsgResult {
		if d.budget == 0 {
			d.dead = true
		} else {
			d.budget--
		}
	}
	dead := d.dead
	d.mu.Unlock()
	if dead {
		return errKilled
	}
	return d.inner.Send(m)
}

func (d *deathTransport) RecvLease(seq int, timeout time.Duration) (*dispatch.Lease, error) {
	d.mu.Lock()
	dead := d.dead
	d.mu.Unlock()
	if dead {
		return nil, errKilled
	}
	return d.inner.RecvLease(seq, timeout)
}

// parseWorker splits an incarnation id "s2r3" into its slot ("s2") and
// generation (3).
func parseWorker(t *testing.T, id string) (string, int) {
	t.Helper()
	i := strings.LastIndexByte(id, 'r')
	if i < 0 {
		t.Fatalf("worker id %q has no slot/generation shape", id)
	}
	gen, err := strconv.Atoi(id[i+1:])
	if err != nil {
		t.Fatalf("worker id %q has no slot/generation shape: %v", id, err)
	}
	return id[:i], gen
}

// chaosProc is one spawned in-process "worker process".
type chaosProc struct {
	dt      *deathTransport
	done    chan struct{}
	err     error
	started time.Time
}

// chaosFleet implements supervisor.Ops with goroutine workers instead
// of processes, so the whole churn scenario runs under -race in one
// binary.
type chaosFleet struct {
	t      *testing.T
	attach func(t *testing.T, id string) dispatch.WorkerTransport
	inj    *chaostest.Injector // optional message chaos under the kill wrapper
	fp     string
	n      int
	// killAfter maps (slot, generation) to a result budget for the
	// incarnation's deathTransport; < 0 means immortal.
	killAfter func(slot string, gen int) int
	// eval evaluates one cell for one incarnation.
	eval func(id string, cell int) (experiments.CellResult, error)

	mu    sync.Mutex
	procs map[string]*chaosProc
	order []string
}

func (f *chaosFleet) Spawn(id string) error {
	slot, gen := parseWorker(f.t, id)
	inner := f.attach(f.t, id)
	if f.inj != nil {
		inner = chaostest.Worker(inner, f.inj)
	}
	dt := &deathTransport{inner: inner, budget: f.killAfter(slot, gen)}
	p := &chaosProc{dt: dt, done: make(chan struct{}), started: time.Now()}
	f.mu.Lock()
	if f.procs == nil {
		f.procs = map[string]*chaosProc{}
	}
	if _, dup := f.procs[id]; dup {
		f.mu.Unlock()
		return fmt.Errorf("chaosFleet: worker %s spawned twice", id)
	}
	f.procs[id] = p
	f.order = append(f.order, id)
	f.mu.Unlock()
	w := &dispatch.Worker{
		ID: id, Fingerprint: f.fp, Cells: f.n,
		Heartbeat: 30 * time.Millisecond,
		Poll:      10 * time.Millisecond,
		Idle:      30 * time.Second,
		Eval:      func(c int) (experiments.CellResult, error) { return f.eval(id, c) },
	}
	go func() {
		p.err = w.Run(dt)
		close(p.done)
	}()
	return nil
}

func (f *chaosFleet) Exited(id string) (bool, error) {
	f.mu.Lock()
	p := f.procs[id]
	f.mu.Unlock()
	if p == nil {
		return true, fmt.Errorf("chaosFleet: unknown worker %s", id)
	}
	select {
	case <-p.done:
		return true, p.err
	default:
		return false, nil
	}
}

func (f *chaosFleet) Kill(id string) error {
	f.mu.Lock()
	p := f.procs[id]
	f.mu.Unlock()
	if p == nil {
		return fmt.Errorf("chaosFleet: unknown worker %s", id)
	}
	p.dt.kill()
	return nil
}

// killAll shoots every worker ever spawned; waitAll then joins their
// goroutines so nothing outlives the test.
func (f *chaosFleet) killAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range f.procs {
		p.dt.kill()
	}
}

func (f *chaosFleet) waitAll(t *testing.T) {
	t.Helper()
	f.mu.Lock()
	procs := make([]*chaosProc, 0, len(f.procs))
	for _, p := range f.procs {
		procs = append(procs, p)
	}
	f.mu.Unlock()
	deadline := time.After(10 * time.Second)
	for _, p := range procs {
		select {
		case <-p.done:
		case <-deadline:
			t.Fatal("worker goroutines still running 10s after killAll")
		}
	}
}

// spawnsOf returns the incarnation ids spawned for one slot, in spawn
// order, with their start times.
func (f *chaosFleet) spawnsOf(slot string) (ids []string, at []time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, id := range f.order {
		if strings.HasPrefix(id, slot+"r") {
			ids = append(ids, id)
			at = append(at, f.procs[id].started)
		}
	}
	return ids, at
}

// startSupervisor runs sup in a goroutine and returns a stop func
// (idempotent) plus the result channel.
func startSupervisor(sup *supervisor.Supervisor) (func(), chan error) {
	stop := make(chan struct{})
	var once sync.Once
	res := make(chan error, 1)
	go func() { res <- sup.Run(stop) }()
	return func() { once.Do(func() { close(stop) }) }, res
}

// testSupervisedChurn is the tentpole chaos scenario: a supervised
// fleet scales from 1 slot to 3 under queue depth; slot s1 is poisoned
// (its workers die before delivering a single result, every
// incarnation) and must be declared after exactly MaxRestarts capped,
// backed-off replacements; slots s0 and s2 each lose their first two
// incarnations on a seed-drawn schedule and get replaced. The merged
// artifact must still be byte-identical to the single-process fold.
func testSupervisedChurn(t *testing.T, newPhase func(t *testing.T) *phase, seed int64) {
	const fp = "fp-chaos-supervised"
	const n = 24
	const gated = 4 // tail cells held back until the poisoned verdict lands
	const maxRestarts = 4

	p := newPhase(t)
	inj := chaostest.NewInjector(chaostest.Faults{
		Seed: seed, Drop: 0.05, Dup: 0.1, Delay: 0.15,
		MaxDelay: 20 * time.Millisecond,
	})
	ks := chaostest.NewKillSchedule(seed, 3)

	ctrl := dispatch.NewController()
	cfg := chaosConfig(fp, n)
	cfg.Controller = ctrl

	// poisonedCh closes once the coordinator's status feed carries the
	// poisoned verdict for slot s1. The last `gated` cells block on it
	// (for everyone but s1's own workers), so the sweep cannot outrun
	// the poisoning no matter how the goroutines schedule: a fast fleet
	// parks on the tail cells while s1 burns its restart budget.
	poisonedCh := make(chan struct{})
	monitorStop := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			if st, ok := ctrl.Status(); ok {
				for _, r := range st.Restarts {
					if r.Slot == "s1" && r.Poisoned {
						close(poisonedCh)
						return
					}
				}
			}
			select {
			case <-monitorStop:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	defer func() {
		close(monitorStop)
		<-monitorDone
	}()

	killAfter := func(slot string, gen int) int {
		switch {
		case slot == "s1":
			return 0 // the broken binary: every incarnation dies before its first result
		case gen >= 2:
			return -1 // third incarnations live to the end
		default:
			return ks.Draw() // healthy slots churn on the seeded schedule
		}
	}
	fleet := &chaosFleet{
		t: t, attach: p.attach, inj: inj, fp: fp, n: n,
		killAfter: killAfter,
		eval: func(id string, cell int) (experiments.CellResult, error) {
			time.Sleep(30 * time.Millisecond)
			if slot, _ := parseWorker(t, id); cell >= n-gated && slot != "s1" {
				select {
				case <-poisonedCh:
				case <-time.After(20 * time.Second):
					return experiments.CellResult{}, fmt.Errorf("gate: slot s1 was never poisoned")
				}
			}
			return fakeCellResult(cell), nil
		},
	}

	sup, err := supervisor.New(supervisor.Config{
		Control:     ctrl,
		Fleet:       fleet,
		Min:         1,
		Max:         3,
		MaxRestarts: maxRestarts,
		Interval:    5 * time.Millisecond,
		IdleGrace:   30 * time.Second, // no scale-down noise mid-churn
		DrainGrace:  2 * time.Second,
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  60 * time.Millisecond,
		Seed:        seed,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	supStop, supRes := startSupervisor(sup)

	res := startCoord(chaostest.Coordinator(p.coord, inj), cfg)
	r := <-res

	// The supervisor self-finishes when the status feed shows the sweep
	// done; give it a moment, then force the issue so a missed final
	// publish can't hang the test.
	var supErr error
	select {
	case supErr = <-supRes:
	case <-time.After(5 * time.Second):
		supStop()
		supErr = <-supRes
	}
	fleet.killAll()
	fleet.waitAll(t)

	if r.err != nil {
		t.Fatalf("supervised sweep: %v", r.err)
	}
	if supErr != nil {
		t.Fatalf("supervisor: %v", supErr)
	}
	got, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reference(t, fp, n)) {
		t.Fatal("supervised-churn merge not byte-identical to the direct fold")
	}

	// The poisoned verdict reached the status feed with the full ledger.
	st, ok := ctrl.Status()
	if !ok {
		t.Fatal("no status published")
	}
	var s1 *dispatch.WorkerRestart
	for i, rr := range st.Restarts {
		switch rr.Slot {
		case "s1":
			s1 = &st.Restarts[i]
		default:
			if rr.Poisoned {
				t.Fatalf("healthy slot %s declared poisoned: %+v", rr.Slot, rr)
			}
			if rr.Restarts > maxRestarts {
				t.Fatalf("slot %s burned %d restarts, cap is %d", rr.Slot, rr.Restarts, maxRestarts)
			}
		}
	}
	if s1 == nil {
		t.Fatalf("no restart record for poisoned slot s1 in status: %+v", st.Restarts)
	}
	if !s1.Poisoned || s1.Restarts != maxRestarts {
		t.Fatalf("slot s1 record = %+v, want poisoned at exactly %d restarts", s1, maxRestarts)
	}

	// The restart cap held: exactly the initial spawn plus MaxRestarts
	// replacements, no resurrection after the verdict.
	ids, at := fleet.spawnsOf("s1")
	if len(ids) != maxRestarts+1 {
		t.Fatalf("poisoned slot s1 spawned %d incarnations (%v), want %d", len(ids), ids, maxRestarts+1)
	}
	if last := ids[len(ids)-1]; s1.Worker != last {
		t.Fatalf("poison record names worker %s, last incarnation was %s", s1.Worker, last)
	}
	// Backoff between replacements: consecutive spawns must be at least
	// the jitter floor (base/2) apart.
	for i := 1; i < len(at); i++ {
		if gap := at[i].Sub(at[i-1]); gap < 10*time.Millisecond {
			t.Fatalf("s1 respawn %d came %v after its predecessor, want >= 10ms of backoff", i, gap)
		}
	}

	// Queue depth scaled the fleet up to Max: slot s2 exists.
	if ids, _ := fleet.spawnsOf("s2"); len(ids) == 0 {
		t.Fatal("fleet never scaled up to slot s2 despite queue depth")
	}
}

func TestSupervisedChurnHub(t *testing.T) {
	testSupervisedChurn(t, hubPhase, 21)
}

func TestSupervisedChurnSpool(t *testing.T) {
	testSupervisedChurn(t, spoolPhases(t), 22)
}

func TestSupervisedChurnHTTP(t *testing.T) {
	testSupervisedChurn(t, httpPhase, 23)
}

// TestSupervisedKillResumeHub crashes the coordinator (journal
// kill-point) while a supervisor is mid-churn, then resumes both from
// the journal: the restart ledger survives, the resumed supervisor
// continues slot s0 at its pre-crash generation instead of resetting
// the count, and the final merge is byte-identical.
func TestSupervisedKillResumeHub(t *testing.T) {
	const fp = "fp-chaos-sup-resume"
	const n = 10
	const seed = 31
	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteHeader(journal.Header{Fingerprint: fp, Cells: n}); err != nil {
		t.Fatal(err)
	}

	eval := func(id string, cell int) (experiments.CellResult, error) {
		time.Sleep(20 * time.Millisecond)
		return fakeCellResult(cell), nil
	}
	newSup := func(ctrl *dispatch.Controller, fleet *chaosFleet, seeded []dispatch.WorkerRestart) *supervisor.Supervisor {
		sup, err := supervisor.New(supervisor.Config{
			Control:     ctrl,
			Fleet:       fleet,
			Min:         1,
			Max:         1,
			MaxRestarts: 3,
			Interval:    5 * time.Millisecond,
			IdleGrace:   30 * time.Second,
			DrainGrace:  2 * time.Second,
			BackoffBase: 20 * time.Millisecond,
			BackoffMax:  60 * time.Millisecond,
			Seed:        seed,
			Restarts:    seeded,
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sup
	}

	// Phase 1: s0's first incarnation delivers one result and dies; its
	// replacement grinds on until the injected crash at the fourth
	// accepted result. The supervisor journals the replacement between
	// the first and second accepted results, so it is always durable by
	// crash time.
	p1 := hubPhase(t)
	crash := &chaostest.CrashJournal{Inner: j, Appends: 3}
	ctrl1 := dispatch.NewController()
	cfg1 := chaosConfig(fp, n)
	cfg1.Journal = crash
	cfg1.Controller = ctrl1
	fleet1 := &chaosFleet{
		t: t, attach: p1.attach, fp: fp, n: n, eval: eval,
		killAfter: func(slot string, gen int) int {
			if slot == "s0" && gen == 0 {
				return 1
			}
			return -1
		},
	}
	stop1, res1sup := startSupervisor(newSup(ctrl1, fleet1, nil))
	r1 := <-startCoord(p1.coord, cfg1)
	if !errors.Is(r1.err, chaostest.ErrCrash) {
		t.Fatalf("phase 1 ended with %v, want the injected crash", r1.err)
	}
	stop1()
	if err := <-res1sup; err != nil {
		t.Fatalf("phase 1 supervisor: %v", err)
	}
	fleet1.killAll()
	fleet1.waitAll(t)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal replay must carry the restart ledger.
	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rs := j2.Restarts()
	if len(rs) != 1 || rs[0].Slot != "s0" || rs[0].Worker != "s0r0" ||
		rs[0].Restarts != 1 || rs[0].Poisoned {
		t.Fatalf("journal restart ledger = %+v, want one non-poisoned s0 record at 1 restart", rs)
	}
	if !strings.Contains(rs[0].Reason, "killed") {
		t.Fatalf("restart reason %q lost the exit error", rs[0].Reason)
	}
	if got := len(j2.Cells()); got != 4 {
		t.Fatalf("journal recovered %d cells, want 4", got)
	}

	// Phase 2: resume coordinator AND supervisor from the journal over
	// a fresh hub. The seeded slot must come back as generation 1 —
	// restart counts survive the coordinator restart.
	p2 := hubPhase(t)
	ctrl2 := dispatch.NewController()
	cfg2 := chaosConfig(fp, n)
	cfg2.Journal = j2
	cfg2.Completed = j2.Cells()
	cfg2.Exclusions = j2.Exclusions()
	cfg2.Restarts = rs
	cfg2.Controller = ctrl2
	fleet2 := &chaosFleet{
		t: t, attach: p2.attach, fp: fp, n: n, eval: eval,
		killAfter: func(string, int) int { return -1 },
	}
	stop2, res2sup := startSupervisor(newSup(ctrl2, fleet2, rs))
	r2 := <-startCoord(p2.coord, cfg2)
	var supErr error
	select {
	case supErr = <-res2sup:
	case <-time.After(5 * time.Second):
		stop2()
		supErr = <-res2sup
	}
	fleet2.killAll()
	fleet2.waitAll(t)
	if r2.err != nil {
		t.Fatalf("phase 2: %v", r2.err)
	}
	if supErr != nil {
		t.Fatalf("phase 2 supervisor: %v", supErr)
	}

	ids, _ := fleet2.spawnsOf("s0")
	if len(ids) == 0 || ids[0] != "s0r1" {
		t.Fatalf("resumed slot s0 spawned %v, want it to resume at generation 1 (s0r1)", ids)
	}
	st, ok := ctrl2.Status()
	if !ok {
		t.Fatal("phase 2 published no status")
	}
	found := false
	for _, rr := range st.Restarts {
		if rr.Slot == "s0" && rr.Restarts == 1 && !rr.Poisoned {
			found = true
		}
	}
	if !found {
		t.Fatalf("restart ledger missing from resumed status feed: %+v", st.Restarts)
	}
	got, err := r2.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reference(t, fp, n)) {
		t.Fatal("supervised kill-resume merge not byte-identical to the direct fold")
	}
}

// TestStatusSurvivesCoordinatorRestart pins the operator-facing half
// of the ledger: a worker that was excluded and then replaced keeps
// both its exclusion reason and its slot's restart count on
// GET /v1/status after the coordinator is restarted from the journal.
func TestStatusSurvivesCoordinatorRestart(t *testing.T) {
	const fp = "fp-status-restart"
	const n = 6
	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteHeader(journal.Header{Fingerprint: fp, Cells: n}); err != nil {
		t.Fatal(err)
	}

	// Phase 1: worker s0r0 fails every cell until the coordinator
	// excludes it (journaled); the supervisor's replacement report is
	// journaled too; then the run is interrupted before any cell lands.
	srv1 := httptransport.NewServer()
	hs1 := httptest.NewServer(srv1.Handler())
	ctrl1 := dispatch.NewController()
	intr := make(chan struct{})
	cfg1 := chaosConfig(fp, n)
	cfg1.Options.WorkerFailures = 2
	cfg1.Options.LeaseTimeout = 200 * time.Millisecond
	cfg1.Journal = j
	cfg1.Controller = ctrl1
	cfg1.Interrupt = intr
	res1 := startCoord(srv1, cfg1)

	bad, err := httptransport.Dial(hs1.URL, "s0r0", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	w := &dispatch.Worker{
		ID: "s0r0", Fingerprint: fp, Cells: n,
		Heartbeat: 30 * time.Millisecond,
		Poll:      10 * time.Millisecond,
		Idle:      30 * time.Second,
		Eval: func(c int) (experiments.CellResult, error) {
			return experiments.CellResult{}, fmt.Errorf("synthetic profile explosion on cell %d", c)
		},
	}
	badDone := make(chan error, 1)
	go func() { badDone <- w.Run(bad) }()

	waitStatus := func(ctrl *dispatch.Controller, what string, pred func(dispatch.Status) bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if st, ok := ctrl.Status(); ok && pred(st) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("status never showed %s", what)
	}
	waitStatus(ctrl1, "the exclusion of s0r0", func(st dispatch.Status) bool {
		for _, ws := range st.Workers {
			if ws.Worker == "s0r0" && ws.Excluded {
				return true
			}
		}
		return false
	})
	select {
	case err := <-badDone:
		if err != nil {
			t.Fatalf("excluded worker exited with %v, want a clean stop", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("excluded worker never observed Stop")
	}
	// The supervisor's replacement report for the excluded worker.
	ctrl1.RecordRestart(dispatch.WorkerRestart{
		Slot: "s0", Worker: "s0r0", Restarts: 1,
		Reason: "excluded by coordinator: synthetic profile explosion on cell 0",
	})
	waitStatus(ctrl1, "the restart ledger for s0", func(st dispatch.Status) bool {
		return len(st.Restarts) > 0
	})

	close(intr)
	r1 := <-res1
	if !errors.Is(r1.err, dispatch.ErrInterrupted) {
		t.Fatalf("phase 1 ended with %v, want ErrInterrupted", r1.err)
	}
	hs1.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart the coordinator from the journal on a fresh
	// server; /v1/status must carry both halves of the story before a
	// single new message arrives.
	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	srv2 := httptransport.NewServer()
	hs2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(hs2.Close)
	ctrl2 := dispatch.NewController()
	cfg2 := chaosConfig(fp, n)
	cfg2.Journal = j2
	cfg2.Completed = j2.Cells()
	cfg2.Exclusions = j2.Exclusions()
	cfg2.Restarts = j2.Restarts()
	cfg2.Controller = ctrl2
	res2 := startCoord(srv2, cfg2)

	var st dispatch.Status
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(hs2.URL + "/v1/status")
		if err == nil {
			decErr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if decErr == nil && resp.StatusCode == http.StatusOK && len(st.Workers) > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("/v1/status never served the replayed state")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var badRow *dispatch.WorkerStatus
	for i, ws := range st.Workers {
		if ws.Worker == "s0r0" {
			badRow = &st.Workers[i]
		}
	}
	if badRow == nil {
		t.Fatalf("/v1/status after restart lost the excluded worker: %+v", st.Workers)
	}
	if !badRow.Excluded || badRow.Failures < 2 ||
		!strings.Contains(badRow.LastError, "synthetic profile explosion") {
		t.Fatalf("excluded worker replayed as %+v, want exclusion with reason and failure count", badRow)
	}
	if len(st.Restarts) != 1 || st.Restarts[0].Slot != "s0" ||
		st.Restarts[0].Restarts != 1 ||
		!strings.Contains(st.Restarts[0].Reason, "excluded") {
		t.Fatalf("restart ledger replayed as %+v, want the s0 replacement record", st.Restarts)
	}

	// The resumed coordinator still works: an honest worker finishes
	// the grid, byte-identical.
	w2, err := httptransport.Dial(hs2.URL, "w2", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	startWorker("w2", fp, n, w2)
	r2 := <-res2
	if r2.err != nil {
		t.Fatalf("phase 2: %v", r2.err)
	}
	got, err := r2.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reference(t, fp, n)) {
		t.Fatal("post-restart merge not byte-identical to the direct fold")
	}
}
