// Package chaostest wraps dispatch transports and journals with
// deterministic, seed-driven fault injection, so the recovery paths —
// lease requeue, duplicate dedup, journal replay — are exercised
// systematically instead of waiting for production to find them.
//
// Three fault surfaces are covered:
//
//   - Coordinator → worker lease replies and worker → coordinator
//     messages (requests, heartbeats, results) can be dropped,
//     duplicated, or delayed out of order (Coordinator / Worker
//     wrappers around an Injector).
//   - The coordinator can be killed at the exact kill-points around a
//     journal append — before the record is durable, or after the
//     record is durable but before the result is acknowledged
//     (CrashJournal).
//   - A journal file can lose its tail to a torn write (simply
//     truncate the file; the journal package recovers).
//
// The injector burns its random rolls at every send whether or not a
// fault fires, so a fixed Seed produces the same fault schedule run
// after run — a chaos failure reproduces instead of flaking.
package chaostest

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"exegpt/internal/dispatch"
	"exegpt/internal/distsweep"
)

// Faults parameterizes an Injector: independent probabilities per send
// for dropping, duplicating and delaying a message, and the delay
// ceiling.
type Faults struct {
	// Seed fixes the fault schedule; equal seeds give equal schedules.
	Seed int64
	// Drop, Dup and Delay are per-send probabilities in [0, 1].
	Drop  float64
	Dup   float64
	Delay float64
	// MaxDelay bounds an injected delay; delayed sends are re-ordered
	// behind whatever is sent while they sleep.
	MaxDelay time.Duration
}

// Injector is a deterministic fault source shared by the wrappers of
// one chaos run. Safe for concurrent use.
type Injector struct {
	mu  sync.Mutex
	rng *rand.Rand
	f   Faults
}

// NewInjector builds an injector with the given fault profile.
func NewInjector(f Faults) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(f.Seed)), f: f}
}

// roll draws one send's fate. Every send draws all three numbers, so
// the schedule depends only on the send sequence, not on which faults
// happened to fire.
func (i *Injector) roll() (drop, dup bool, delay time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	drop = i.rng.Float64() < i.f.Drop
	dup = i.rng.Float64() < i.f.Dup
	if wantDelay := i.rng.Float64() < i.f.Delay; wantDelay && i.f.MaxDelay > 0 {
		delay = time.Duration(i.rng.Int63n(int64(i.f.MaxDelay)))
	}
	return drop, dup, delay
}

// send applies one roll to a send thunk: drop it, delay it on a
// goroutine (re-ordering it behind later traffic), or pass it through
// — duplicated when the dup roll fires. Dropped and delayed sends
// report success, exactly like a network that lost the packet.
func (i *Injector) send(deliver func() error) error {
	drop, dup, delay := i.roll()
	if drop {
		return nil
	}
	n := 1
	if dup {
		n = 2
	}
	if delay > 0 {
		go func() {
			time.Sleep(delay)
			for k := 0; k < n; k++ {
				deliver() // a delayed send's error has no one to return to
			}
		}()
		return nil
	}
	for k := 0; k < n; k++ {
		if err := deliver(); err != nil {
			return err
		}
	}
	return nil
}

// Coordinator wraps the coordinator side of a transport with fault
// injection on its lease sends. Recv and Finish pass through; a
// StatusSink inner transport keeps publishing status.
func Coordinator(inner dispatch.Transport, inj *Injector) dispatch.Transport {
	ct := &coordTransport{inner: inner, inj: inj}
	if sink, ok := inner.(dispatch.StatusSink); ok {
		return &coordStatusTransport{coordTransport: ct, sink: sink}
	}
	return ct
}

type coordTransport struct {
	inner dispatch.Transport
	inj   *Injector
}

func (t *coordTransport) Recv(timeout time.Duration) (*dispatch.Msg, error) {
	return t.inner.Recv(timeout)
}

func (t *coordTransport) Send(l *dispatch.Lease) error {
	return t.inj.send(func() error { return t.inner.Send(l) })
}

func (t *coordTransport) Finish() error { return t.inner.Finish() }

type coordStatusTransport struct {
	*coordTransport
	sink dispatch.StatusSink
}

func (t *coordStatusTransport) PublishStatus(s dispatch.Status) { t.sink.PublishStatus(s) }

// Worker wraps one worker's side of a transport with fault injection
// on its message sends (requests, heartbeats, results, failures).
// RecvLease passes through — lease loss is injected on the
// coordinator's side.
func Worker(inner dispatch.WorkerTransport, inj *Injector) dispatch.WorkerTransport {
	return &workerTransport{inner: inner, inj: inj}
}

type workerTransport struct {
	inner dispatch.WorkerTransport
	inj   *Injector
}

func (t *workerTransport) Send(m *dispatch.Msg) error {
	return t.inj.send(func() error { return t.inner.Send(m) })
}

func (t *workerTransport) RecvLease(seq int, timeout time.Duration) (*dispatch.Lease, error) {
	return t.inner.RecvLease(seq, timeout)
}

// ErrCrash is the injected coordinator death; a run killed by a
// CrashJournal returns an error wrapping it.
var ErrCrash = errors.New("chaostest: injected coordinator crash")

// CrashJournal wraps a dispatch.Journal and kills the run at the exact
// window a real SIGKILL lands in: after Appends successful cell
// appends, the next Append fails with ErrCrash — before the record is
// written when BeforeWrite is set (the result is lost and must be
// re-evaluated), after the record is durable otherwise (the result is
// on disk but never acknowledged, and must dedup on replay). Both
// sides of the append/ack window must recover to the same
// byte-identical merge.
type CrashJournal struct {
	Inner dispatch.Journal
	// Appends is how many cell appends succeed before the crash.
	Appends int
	// BeforeWrite crashes before the fatal append reaches the inner
	// journal instead of after.
	BeforeWrite bool

	mu   sync.Mutex
	done int
}

func (c *CrashJournal) Append(env *distsweep.CellEnvelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done >= c.Appends {
		if c.BeforeWrite {
			return ErrCrash
		}
		if err := c.Inner.Append(env); err != nil {
			return err
		}
		return ErrCrash
	}
	c.done++
	return c.Inner.Append(env)
}

func (c *CrashJournal) AppendExclusion(x dispatch.WorkerExclusion) error {
	return c.Inner.AppendExclusion(x)
}

func (c *CrashJournal) AppendRestart(r dispatch.WorkerRestart) error {
	return c.Inner.AppendRestart(r)
}

var _ dispatch.Journal = (*CrashJournal)(nil)

// KillSchedule draws, from a seed, how many cells each successive
// worker incarnation completes before it is killed mid-lease. The
// draws depend only on call order, so a fixed seed gives the same kill
// schedule run after run — supervised-churn chaos tests reproduce
// instead of flaking. Safe for concurrent use.
type KillSchedule struct {
	mu  sync.Mutex
	rng *rand.Rand
	max int
}

// NewKillSchedule returns a schedule drawing kill points uniformly
// from [1, maxCells] completed cells; maxCells < 1 is raised to 1.
func NewKillSchedule(seed int64, maxCells int) *KillSchedule {
	if maxCells < 1 {
		maxCells = 1
	}
	return &KillSchedule{rng: rand.New(rand.NewSource(seed)), max: maxCells}
}

// Draw returns the next incarnation's kill point: it dies after
// completing that many cells, mid-lease on the one after.
func (k *KillSchedule) Draw() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return 1 + k.rng.Intn(k.max)
}
