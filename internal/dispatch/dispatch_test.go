package dispatch

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"exegpt/internal/distsweep"
	"exegpt/internal/experiments"
)

// fakeCellResult builds a synthetic cell result that is a function of
// the cell index, so coverage or ordering mistakes show up as value
// mismatches after the fold.
func fakeCellResult(idx int) experiments.CellResult {
	return experiments.CellResult{
		Cell: idx,
		Rows: []experiments.SweepRow{{
			Model: "OPT-13B", Cluster: "A40", GPUs: 4, Task: "S",
			Bound: 5.0 + float64(idx), System: "FT",
			Tput: 1.5 * float64(idx+1), Feasible: true,
		}},
		Evals: 10 * (idx + 1),
	}
}

// fakeReference folds the full fake grid directly — what any dispatch
// run over the same cells must reproduce byte-identically.
func fakeReference(t *testing.T, fp string, n int) []byte {
	t.Helper()
	envs := make([]*distsweep.CellEnvelope, n)
	for i := 0; i < n; i++ {
		envs[i] = distsweep.NewCellEnvelope(fp, n, fakeCellResult(i))
	}
	m, err := distsweep.MergeCells(envs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// testConfig returns fast-twitch coordinator settings for tests.
func testConfig(fp string, n int) Config {
	return Config{
		Fingerprint: fp,
		Cells:       n,
		Options: Options{
			LeaseTimeout: 150 * time.Millisecond,
			Idle:         10 * time.Second, // fail fast instead of hanging the test
		},
	}
}

// fastWorker returns a fake-eval pull worker tuned for tests.
func fastWorker(id, fp string, n int) *Worker {
	return &Worker{
		ID: id, Fingerprint: fp, Cells: n,
		Heartbeat: 20 * time.Millisecond,
		Poll:      5 * time.Millisecond,
		Idle:      10 * time.Second,
		Eval:      func(c int) (experiments.CellResult, error) { return fakeCellResult(c), nil },
	}
}

// startCoord runs the coordinator in a goroutine.
func startCoord(t Transport, cfg Config) chan struct {
	m   *distsweep.Merged
	err error
} {
	out := make(chan struct {
		m   *distsweep.Merged
		err error
	}, 1)
	go func() {
		m, err := Run(t, cfg)
		out <- struct {
			m   *distsweep.Merged
			err error
		}{m, err}
	}()
	return out
}

// takeLease drives one request → lease round by hand.
func takeLease(t *testing.T, wt WorkerTransport, id string, seq, max int) *Lease {
	t.Helper()
	if err := wt.Send(&Msg{Version: WireVersion, Type: MsgRequest, Worker: id, Seq: seq, Max: max}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		l, err := wt.RecvLease(seq, 20*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if l != nil {
			return l
		}
	}
	t.Fatal("no lease within 5s")
	return nil
}

func TestDispatchHappyPath(t *testing.T) {
	const fp, n = "fp-happy", 6
	hub := NewHub()
	res := startCoord(hub, testConfig(fp, n))
	for _, id := range []string{"w1", "w2"} {
		go fastWorker(id, fp, n).Run(hub.Worker(id))
	}
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	got, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fakeReference(t, fp, n)) {
		t.Fatal("dispatched merge not byte-identical to the direct fold")
	}
}

// TestDispatchWorkerDiesMidLease: a worker takes a lease and vanishes —
// no results, no heartbeats. Its cells must requeue after the lease
// deadline and the surviving worker must finish the grid, with every
// cell covered exactly once.
func TestDispatchWorkerDiesMidLease(t *testing.T) {
	const fp, n = "fp-death", 5
	hub := NewHub()
	res := startCoord(hub, testConfig(fp, n))

	dead := hub.Worker("deadbeat")
	l := takeLease(t, dead, "deadbeat", 1, 2)
	if len(l.Cells) == 0 {
		t.Fatal("dead worker got no cells to abandon")
	}
	// Abandon the lease; only now start the survivor.
	go fastWorker("survivor", fp, n).Run(hub.Worker("survivor"))

	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	got, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fakeReference(t, fp, n)) {
		t.Fatal("merge after mid-lease death not byte-identical")
	}
}

// TestDispatchDuplicateResult: a worker that delivers every result
// twice (e.g. a retried spool sync) must not break exactly-once
// coverage — the first copy wins and the fold stays byte-identical.
func TestDispatchDuplicateResult(t *testing.T) {
	const fp, n = "fp-dup", 4
	hub := NewHub()
	res := startCoord(hub, testConfig(fp, n))

	wt := hub.Worker("dup")
	go func() {
		for seq := 1; ; seq++ {
			l := func() *Lease {
				wt.Send(&Msg{Version: WireVersion, Type: MsgRequest, Worker: "dup", Seq: seq, Max: 1})
				for {
					l, _ := wt.RecvLease(seq, 20*time.Millisecond)
					if l != nil {
						return l
					}
				}
			}()
			if l.Stop {
				return
			}
			for _, c := range l.Cells {
				env := distsweep.NewCellEnvelope(fp, n, fakeCellResult(c))
				for i := 0; i < 2; i++ { // every result sent twice
					wt.Send(&Msg{Version: WireVersion, Type: MsgResult, Worker: "dup", Result: env})
				}
			}
			if len(l.Cells) == 0 {
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.m.Cells != n {
		t.Fatalf("covered %d cells, want %d", r.m.Cells, n)
	}
	got, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fakeReference(t, fp, n)) {
		t.Fatal("merge with duplicate results not byte-identical")
	}
}

// TestDispatchHeartbeatKeepsSlowLeaseAlive: an evaluation much slower
// than the lease timeout must survive as long as heartbeats flow. The
// lone worker is configured so that a single expiry would exclude it
// and stall the run, so completion proves the heartbeat path.
func TestDispatchHeartbeatKeepsSlowLeaseAlive(t *testing.T) {
	const fp, n = "fp-slow", 2
	hub := NewHub()
	cfg := testConfig(fp, n)
	cfg.Options.LeaseTimeout = 100 * time.Millisecond
	cfg.Options.WorkerFailures = 1
	cfg.Options.Idle = 5 * time.Second
	res := startCoord(hub, cfg)

	w := fastWorker("slow", fp, n)
	w.Heartbeat = 20 * time.Millisecond
	w.Eval = func(c int) (experiments.CellResult, error) {
		time.Sleep(300 * time.Millisecond) // 3x the lease timeout
		return fakeCellResult(c), nil
	}
	go w.Run(hub.Worker("slow"))

	r := <-res
	if r.err != nil {
		t.Fatalf("slow-but-heartbeating worker lost its lease: %v", r.err)
	}
	if r.m.Cells != n {
		t.Fatalf("covered %d cells, want %d", r.m.Cells, n)
	}
}

// TestDispatchExcludesFailingWorker: a worker whose evaluations always
// fail burns through its failure budget, gets a Stop lease, and the
// healthy worker finishes the grid.
func TestDispatchExcludesFailingWorker(t *testing.T) {
	const fp, n = "fp-excl", 5
	hub := NewHub()
	cfg := testConfig(fp, n)
	cfg.Options.WorkerFailures = 2
	cfg.Options.CellRetries = 50 // the budget under test is the worker's, not the cells'
	res := startCoord(hub, cfg)

	bad := fastWorker("bad", fp, n)
	bad.Eval = func(c int) (experiments.CellResult, error) {
		return experiments.CellResult{}, &testErr{"injected failure"}
	}
	badDone := make(chan error, 1)
	go func() { badDone <- bad.Run(hub.Worker("bad")) }()
	go fastWorker("good", fp, n).Run(hub.Worker("good"))

	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.m.Cells != n {
		t.Fatalf("covered %d cells, want %d", r.m.Cells, n)
	}
	// The excluded worker's pull loop must terminate via Stop.
	select {
	case err := <-badDone:
		if err != nil {
			t.Fatalf("excluded worker exited with error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("excluded worker never received Stop")
	}
}

type testErr struct{ s string }

func (e *testErr) Error() string { return e.s }

// TestDispatchRetryBudgetAborts: a cell that fails on every attempt
// must abort the run with a budget error instead of cycling forever.
func TestDispatchRetryBudgetAborts(t *testing.T) {
	const fp, n = "fp-budget", 3
	hub := NewHub()
	cfg := testConfig(fp, n)
	cfg.Options.CellRetries = 2
	cfg.Options.WorkerFailures = 100 // keep the worker in play so the cell budget trips
	res := startCoord(hub, cfg)

	w := fastWorker("flaky", fp, n)
	w.Eval = func(c int) (experiments.CellResult, error) {
		if c == 1 {
			return experiments.CellResult{}, &testErr{"poisoned cell"}
		}
		return fakeCellResult(c), nil
	}
	go w.Run(hub.Worker("flaky"))

	r := <-res
	if r.err == nil {
		t.Fatal("run with a poisoned cell succeeded")
	}
	if !strings.Contains(r.err.Error(), "retry budget") || !strings.Contains(r.err.Error(), "poisoned cell") {
		t.Fatalf("abort error does not explain the budget or cause: %v", r.err)
	}
}

// TestDispatchRejectsForeignFingerprint: a worker launched with
// different grid flags must fail the run loudly, not merge garbage.
func TestDispatchRejectsForeignFingerprint(t *testing.T) {
	const fp, n = "fp-real", 3
	hub := NewHub()
	res := startCoord(hub, testConfig(fp, n))
	go fastWorker("drifted", "fp-other", n).Run(hub.Worker("drifted"))
	r := <-res
	if r.err == nil || !strings.Contains(r.err.Error(), "fingerprint") {
		t.Fatalf("fingerprint drift not rejected: %v", r.err)
	}
}

// TestSpoolDispatchEndToEnd runs the whole protocol over a file spool —
// including a worker killed mid-lease — and requires the byte-identical
// fold.
func TestSpoolDispatchEndToEnd(t *testing.T) {
	const fp, n = "fp-spool", 5
	spool, err := NewSpool(t.TempDir() + "/spool")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := spool.Coordinator()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(fp, n)
	res := startCoord(ct, cfg)

	dead, err := spool.Worker("deadbeat")
	if err != nil {
		t.Fatal(err)
	}
	l := takeLease(t, dead, "deadbeat", 1, 2)
	if len(l.Cells) == 0 {
		t.Fatal("dead spool worker got no cells to abandon")
	}
	wt, err := spool.Worker("survivor")
	if err != nil {
		t.Fatal(err)
	}
	w := fastWorker("survivor", fp, n)
	w.Poll = 10 * time.Millisecond
	wDone := make(chan error, 1)
	go func() { wDone <- w.Run(wt) }()

	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	got, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fakeReference(t, fp, n)) {
		t.Fatal("spool dispatch merge not byte-identical")
	}
	// The stop marker must terminate the surviving worker.
	select {
	case err := <-wDone:
		if err != nil {
			t.Fatalf("worker exited with error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker never observed the stop marker")
	}
}

func TestSpoolRejectsBadWorkerIDs(t *testing.T) {
	spool, err := NewSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "a/b", "a b", "х"} {
		if _, err := spool.Worker(id); err == nil {
			t.Errorf("worker id %q accepted", id)
		}
	}
	if _, err := spool.Worker("host-1.worker_2"); err != nil {
		t.Errorf("valid worker id rejected: %v", err)
	}
}

// TestSpoolReusableAcrossRuns: a second sweep over the same spool
// directory must work — the coordinator clears the previous run's stop
// marker and stale lease files at startup, while workers never clear
// the marker themselves.
func TestSpoolReusableAcrossRuns(t *testing.T) {
	const fp, n = "fp-reuse", 3
	spool, err := NewSpool(t.TempDir() + "/spool")
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		ct, err := spool.Coordinator()
		if err != nil {
			t.Fatal(err)
		}
		res := startCoord(ct, testConfig(fp, n))
		wt, err := spool.Worker("w1")
		if err != nil {
			t.Fatal(err)
		}
		w := fastWorker("w1", fp, n)
		w.Poll = 10 * time.Millisecond
		wDone := make(chan error, 1)
		go func() { wDone <- w.Run(wt) }()
		r := <-res
		if r.err != nil {
			t.Fatalf("run %d: %v", run, r.err)
		}
		if r.m.Cells != n {
			t.Fatalf("run %d: covered %d cells, want %d", run, r.m.Cells, n)
		}
		select {
		case err := <-wDone:
			if err != nil {
				t.Fatalf("run %d: worker: %v", run, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("run %d: worker never stopped", run)
		}
	}
}

// TestDispatchRegrantsOnReRequest: a worker that re-requests because
// its lease reply was lost must get the same cells back under the new
// sequence number — free of charge — and the run must still complete
// with exactly-once coverage.
func TestDispatchRegrantsOnReRequest(t *testing.T) {
	const fp, n = "fp-regrant", 3
	hub := NewHub()
	res := startCoord(hub, testConfig(fp, n))

	wt := hub.Worker("lossy")
	first := takeLease(t, wt, "lossy", 1, 2)
	if len(first.Cells) == 0 {
		t.Fatal("no cells leased")
	}
	// Pretend the reply was lost: re-request instead of evaluating.
	second := takeLease(t, wt, "lossy", 2, 2)
	if len(second.Cells) != len(first.Cells) {
		t.Fatalf("re-request leased %v, want the original %v re-granted", second.Cells, first.Cells)
	}
	for i, c := range first.Cells {
		if second.Cells[i] != c {
			t.Fatalf("re-request leased %v, want %v", second.Cells, first.Cells)
		}
	}
	// Now behave: complete everything via a proper worker loop.
	go fastWorker("lossy2", fp, n).Run(hub.Worker("lossy2"))
	for _, c := range second.Cells {
		env := distsweep.NewCellEnvelope(fp, n, fakeCellResult(c))
		wt.Send(&Msg{Version: WireVersion, Type: MsgResult, Worker: "lossy", Result: env})
	}
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.m.Cells != n {
		t.Fatalf("covered %d cells, want %d", r.m.Cells, n)
	}
}

// TestDispatchChargesFailuresPerLease: one bad batch — every cell of a
// 4-cell lease failing — must count as ONE worker failure, so the
// worker stays in the fleet and can finish the requeued cells. (With
// per-cell charging, this lone worker would be excluded after its
// first lease and the run would die on the idle abort.)
func TestDispatchChargesFailuresPerLease(t *testing.T) {
	const fp, n = "fp-batchfail", 4
	hub := NewHub()
	cfg := testConfig(fp, n)
	cfg.Options.WorkerFailures = 3
	cfg.Options.CellRetries = 3
	cfg.Options.Idle = 5 * time.Second
	res := startCoord(hub, cfg)

	attempted := make(map[int]bool)
	w := fastWorker("once-bad", fp, n)
	w.Batch = n // one lease covering the whole grid
	w.Eval = func(c int) (experiments.CellResult, error) {
		if !attempted[c] {
			attempted[c] = true
			return experiments.CellResult{}, &testErr{"transient batch failure"}
		}
		return fakeCellResult(c), nil
	}
	go w.Run(hub.Worker("once-bad"))

	r := <-res
	if r.err != nil {
		t.Fatalf("one bad batch excluded the only worker: %v", r.err)
	}
	if r.m.Cells != n {
		t.Fatalf("covered %d cells, want %d", r.m.Cells, n)
	}
}

// TestDispatchLeaseTimeoutDrivesHeartbeat: a worker whose configured
// heartbeat interval is far slower than the coordinator's lease timeout
// must still keep a slow evaluation alive, because leases carry the
// timeout and the worker derives a faster heartbeat from it.
func TestDispatchLeaseTimeoutDrivesHeartbeat(t *testing.T) {
	const fp, n = "fp-hbderive", 2
	hub := NewHub()
	cfg := testConfig(fp, n)
	cfg.Options.LeaseTimeout = 150 * time.Millisecond
	cfg.Options.WorkerFailures = 1 // one expiry would exclude the only worker
	cfg.Options.Idle = 5 * time.Second
	res := startCoord(hub, cfg)

	w := fastWorker("defaulted", fp, n)
	w.Heartbeat = 5 * time.Second // the library default: far too slow alone
	w.Eval = func(c int) (experiments.CellResult, error) {
		time.Sleep(400 * time.Millisecond)
		return fakeCellResult(c), nil
	}
	go w.Run(hub.Worker("defaulted"))

	r := <-res
	if r.err != nil {
		t.Fatalf("lease-derived heartbeat did not keep the lease alive: %v", r.err)
	}
	if r.m.Cells != n {
		t.Fatalf("covered %d cells, want %d", r.m.Cells, n)
	}
}
