package dispatch

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"exegpt/internal/experiments"
)

// TestWorkerDrainReleasesLease: a worker whose Drain fires mid-lease
// must finish the cell it is on, hand the rest of the lease back with
// MsgRelease, and exit nil. The lease timeout is set far beyond the
// test's runtime, so the released cells can only reach the other
// worker through the release path — a broken release would stall the
// run, not quietly pass.
func TestWorkerDrainReleasesLease(t *testing.T) {
	const fp, n = "fp-drain", 8
	hub := NewHub()
	cfg := testConfig(fp, n)
	cfg.Options.LeaseTimeout = time.Minute
	cfg.Options.LeaseCells = 4
	res := startCoord(hub, cfg)
	start := time.Now()

	drain := make(chan struct{})
	started := make(chan struct{})
	var evals int32
	w1 := fastWorker("w1", fp, n)
	w1.Batch = 4
	w1.Drain = drain
	inner := w1.Eval
	// The first evaluation blocks until drain fires, so the drain
	// provably lands mid-lease with three cells still unstarted.
	w1.Eval = func(c int) (experiments.CellResult, error) {
		if atomic.AddInt32(&evals, 1) == 1 {
			close(started)
			<-drain
		}
		return inner(c)
	}
	w1done := make(chan error, 1)
	go func() { w1done <- w1.Run(hub.Worker("w1")) }()

	<-started
	close(drain)
	go fastWorker("w2", fp, n).Run(hub.Worker("w2"))

	select {
	case err := <-w1done:
		if err != nil {
			t.Fatalf("drained worker exited with %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained worker never exited")
	}
	if got := atomic.LoadInt32(&evals); got != 1 {
		t.Fatalf("drained worker evaluated %d cells, want exactly its in-flight 1", got)
	}

	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("run took %v — released cells waited out the lease timeout instead of requeueing", elapsed)
	}
	got, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fakeReference(t, fp, n)) {
		t.Fatal("drained run not byte-identical to the direct fold")
	}
}

// TestControllerDrainStopsWorker: a Controller.Drain for a live worker
// must stop it at its next lease request — its in-flight cell is
// delivered, nothing else is leased to it, and the status feed marks
// it draining.
func TestControllerDrainStopsWorker(t *testing.T) {
	const fp, n = "fp-ctrl-drain", 6
	hub := NewHub()
	ctrl := NewController()
	cfg := testConfig(fp, n)
	cfg.Options.LeaseTimeout = time.Minute
	cfg.Controller = ctrl
	res := startCoord(hub, cfg)
	start := time.Now()

	release := make(chan struct{})
	started := make(chan struct{})
	var evals int32
	w1 := fastWorker("w1", fp, n)
	inner := w1.Eval
	w1.Eval = func(c int) (experiments.CellResult, error) {
		if atomic.AddInt32(&evals, 1) == 1 {
			close(started)
		}
		<-release
		return inner(c)
	}
	w1done := make(chan error, 1)
	go func() { w1done <- w1.Run(hub.Worker("w1")) }()

	<-started
	ctrl.Drain("w1")
	// The worker's heartbeats keep the coordinator loop turning, so the
	// drain request is consumed well within a few heartbeat intervals.
	time.Sleep(200 * time.Millisecond)
	close(release)

	select {
	case err := <-w1done:
		if err != nil {
			t.Fatalf("drained worker exited with %v, want a clean stop", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained worker never observed Stop")
	}
	if got := atomic.LoadInt32(&evals); got != 1 {
		t.Fatalf("drained worker evaluated %d cells after the drain, want just its in-flight 1", got)
	}

	go fastWorker("w2", fp, n).Run(hub.Worker("w2"))
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("run took %v — drain leaked the lease into its timeout", elapsed)
	}
	got, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fakeReference(t, fp, n)) {
		t.Fatal("drained run not byte-identical to the direct fold")
	}
	st, ok := ctrl.Status()
	if !ok {
		t.Fatal("no status published")
	}
	for _, ws := range st.Workers {
		if ws.Worker == "w1" && !ws.Draining {
			t.Fatalf("status row for drained worker not marked draining: %+v", ws)
		}
	}
}

// TestReleaseRequeuesWithoutCharge: MsgRelease must requeue the
// returned cells immediately (not after the lease deadline) and charge
// no failure budget — a voluntary return is not a failure.
func TestReleaseRequeuesWithoutCharge(t *testing.T) {
	const fp, n = "fp-release", 6
	hub := NewHub()
	ctrl := NewController()
	cfg := testConfig(fp, n)
	cfg.Options.LeaseTimeout = time.Minute
	cfg.Options.LeaseCells = 3
	cfg.Controller = ctrl
	res := startCoord(hub, cfg)
	start := time.Now()

	wt := hub.Worker("w1")
	l := takeLease(t, wt, "w1", 1, 3)
	if len(l.Cells) != 3 {
		t.Fatalf("lease granted %v, want 3 cells", l.Cells)
	}
	if err := wt.Send(&Msg{Version: WireVersion, Type: MsgRelease, Worker: "w1", Cells: l.Cells}); err != nil {
		t.Fatal(err)
	}

	go fastWorker("w2", fp, n).Run(hub.Worker("w2"))
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("run took %v — released cells waited out the lease timeout", elapsed)
	}
	got, err := r.m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fakeReference(t, fp, n)) {
		t.Fatal("release run not byte-identical to the direct fold")
	}
	st, ok := ctrl.Status()
	if !ok {
		t.Fatal("no status published")
	}
	for _, ws := range st.Workers {
		if ws.Worker == "w1" && (ws.Failures != 0 || ws.Excluded) {
			t.Fatalf("voluntary release charged budgets: %+v", ws)
		}
	}
}
