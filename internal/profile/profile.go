// Package profile implements XProfiler (§3).
//
// For a single encoding and decoding layer the profiler separately
// measures the execution times of the attention kernel and the rest of
// the layer, considering all feasible tensor-parallel degrees. For the
// attention kernel it sweeps batch sizes and, per batch size, sequence
// lengths; for the rest it sweeps input sizes. It also measures the
// synchronization overhead of tensor- and pipeline-parallel execution.
//
// In this reproduction "measuring" samples the analytical cost model
// (internal/costmodel) instead of CUDA kernels; everything downstream
// (XSimulator, XScheduler) consumes only the resulting Table, exactly as
// in the paper. Tables serialize to JSON so profiles can be captured
// once per model and cluster (§7.7) and reused.
package profile

import (
	"encoding/json"
	"fmt"
	"math"

	"exegpt/internal/costmodel"
	"exegpt/internal/hw"
	"exegpt/internal/model"
)

// LinkClass selects which interconnect a communication crosses.
type LinkClass int

// Link classes.
const (
	IntraNode LinkClass = iota // GPUs within one machine
	InterNode                  // GPUs on different machines
	numLinkClasses
)

// AlphaBeta is a fitted latency/inverse-bandwidth communication cost:
// time(bytes) = Alpha + Beta*bytes.
type AlphaBeta struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
}

// Time evaluates the model for n bytes.
func (c AlphaBeta) Time(n int64) float64 {
	if n <= 0 && c.Alpha == 0 {
		return 0
	}
	return c.Alpha + c.Beta*float64(n)
}

// Table holds the measured per-layer kernel times and communication
// costs for one model on one cluster's GPU type.
//
// A Table is immutable once built by Profiler.Run or Decode: every
// lookup (EncodeLayer, DecodeLayer, PPSend, KVTransfer, ...) only reads
// the grids, so one Table may be shared freely between concurrent
// simulators, schedulers, and runner Engines. Callers that memoize
// Tables must guard the memo itself (see internal/experiments.Context).
// TableVersion stamps serialized Tables. Bump it whenever the profiler
// sweep or the underlying cost model changes shape or semantics, so
// on-disk caches (experiments.Context.ProfileCacheDir) of older builds
// miss instead of silently serving stale kernel times.
const TableVersion = 1

type Table struct {
	// Version is TableVersion at profiling time; zero in hand-built or
	// pre-versioning tables.
	Version   int    `json:"version,omitempty"`
	ModelName string `json:"model"`
	GPUName   string `json:"gpu"`

	// TPDegrees lists the profiled tensor-parallel degrees (ascending).
	TPDegrees []int `json:"tp_degrees"`
	// TokenGrid / SeqGrid / BatchGrid / CtxGrid are the sweep points.
	TokenGrid []int `json:"token_grid"`
	SeqGrid   []int `json:"seq_grid"`
	BatchGrid []int `json:"batch_grid"`
	CtxGrid   []int `json:"ctx_grid"`

	// EncRest[tp][tok]: rest-of-layer encode time.
	EncRest [][]float64 `json:"enc_rest"`
	// EncAttn[tp][tok][seq]: encode attention-kernel time.
	EncAttn [][][]float64 `json:"enc_attn"`
	// DecRest[tp][batch]: rest-of-layer decode time.
	DecRest [][]float64 `json:"dec_rest"`
	// DecAttn[tp][batch][ctx]: decode attention-kernel time; ctx is the
	// combined self+cross attention context per query.
	DecAttn [][][]float64 `json:"dec_attn"`

	// AllReduce[tp][linkClass] is the fitted tensor-parallel
	// synchronization cost per all-reduce of n bytes.
	AllReduce [][]AlphaBeta `json:"all_reduce"`
	// P2P[linkClass] is the fitted pipeline-parallel handover cost.
	P2P []AlphaBeta `json:"p2p"`
	// HostDMA is the fitted GPU<->host staging cost (KV handover, §3).
	HostDMA AlphaBeta `json:"host_dma"`

	// ActTokenBytes is the activation bytes per token (Hidden *
	// BytesPerParam), used to size sync messages.
	ActTokenBytes int64 `json:"act_token_bytes"`
	// KVTokenBytes is the full-model KV-cache bytes per token.
	KVTokenBytes int64 `json:"kv_token_bytes"`
	// EncSyncsPerLayer/DecSyncsPerLayer: all-reduces per layer (2 and 3).
	EncSyncsPerLayer int `json:"enc_syncs_per_layer"`
	DecSyncsPerLayer int `json:"dec_syncs_per_layer"`

	// pow2Token/Seq/Batch/Ctx record whether the corresponding grid is
	// exactly {2^0, 2^1, ...} (geomGrid with a power-of-two maximum),
	// enabling the O(1) exponent-indexed segment lookup. Set by
	// initIndex from Run and Decode; the zero value falls back to binary
	// search, so hand-built tables stay correct.
	pow2Token, pow2Seq, pow2Batch, pow2Ctx bool
}

// isPow2Grid reports whether grid[i] == 1<<i for every i: the layout
// geomGrid produces when its maximum is a power of two.
func isPow2Grid(grid []int) bool {
	if len(grid) == 0 || len(grid) > 62 {
		return false
	}
	for i, v := range grid {
		if v != 1<<uint(i) {
			return false
		}
	}
	return true
}

// initIndex precomputes the per-grid fast-path flags. It must run
// before the table is shared (Run and Decode call it); lookups on a
// table without the index fall back to binary search.
func (t *Table) initIndex() {
	t.pow2Token = isPow2Grid(t.TokenGrid)
	t.pow2Seq = isPow2Grid(t.SeqGrid)
	t.pow2Batch = isPow2Grid(t.BatchGrid)
	t.pow2Ctx = isPow2Grid(t.CtxGrid)
}

// Profiler sweeps a cost-model engine into a Table.
type Profiler struct {
	Engine  *costmodel.Engine
	Cluster hw.Cluster
}

// New returns a Profiler for the model on the cluster's GPU type.
func New(m model.Model, cluster hw.Cluster) (*Profiler, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	eng, err := costmodel.New(m, cluster.GPU)
	if err != nil {
		return nil, err
	}
	return &Profiler{Engine: eng, Cluster: cluster}, nil
}

// geomGrid returns a roughly geometric integer grid from 1 to max.
func geomGrid(max int) []int {
	var g []int
	for v := 1; v < max; v = growGrid(v) {
		g = append(g, v)
	}
	return append(g, max)
}

func growGrid(v int) int {
	next := v * 2
	if next == v {
		next = v + 1
	}
	return next
}

// feasibleTPs returns the tensor-parallel degrees profiled: powers of
// two up to one node's GPU count.
func (p *Profiler) feasibleTPs() []int {
	var tps []int
	for tp := 1; tp <= p.Cluster.GPUsPerNode; tp *= 2 {
		tps = append(tps, tp)
	}
	return tps
}

// Run performs all sweeps and returns the profile table.
func (p *Profiler) Run() *Table {
	m := p.Engine.Model
	tps := p.feasibleTPs()
	t := &Table{
		Version:   TableVersion,
		ModelName: m.Name,
		GPUName:   p.Engine.GPU.Name,
		TPDegrees: tps,
		TokenGrid: geomGrid(1 << 17),
		SeqGrid:   geomGrid(1 << 12),
		BatchGrid: geomGrid(1 << 12),
		CtxGrid:   geomGrid(1 << 13),

		ActTokenBytes:    int64(m.Hidden) * int64(m.BytesPerParam),
		KVTokenBytes:     m.KVBytesPerToken(),
		EncSyncsPerLayer: 2,
		DecSyncsPerLayer: 3,
	}
	for _, tp := range tps {
		encRest := make([]float64, len(t.TokenGrid))
		encAttn := make([][]float64, len(t.TokenGrid))
		for i, tok := range t.TokenGrid {
			encRest[i] = p.Engine.EncodeRestTime(tok, tp)
			row := make([]float64, len(t.SeqGrid))
			for j, seq := range t.SeqGrid {
				row[j] = p.Engine.EncodeAttnTime(tok, float64(seq), tp)
			}
			encAttn[i] = row
		}
		t.EncRest = append(t.EncRest, encRest)
		t.EncAttn = append(t.EncAttn, encAttn)

		decRest := make([]float64, len(t.BatchGrid))
		decAttn := make([][]float64, len(t.BatchGrid))
		for i, b := range t.BatchGrid {
			decRest[i] = p.Engine.DecodeRestTime(b, tp)
			row := make([]float64, len(t.CtxGrid))
			for j, ctx := range t.CtxGrid {
				row[j] = p.Engine.DecodeAttnTime(b, float64(ctx), 0, tp)
			}
			decAttn[i] = row
		}
		t.DecRest = append(t.DecRest, decRest)
		t.DecAttn = append(t.DecAttn, decAttn)

		// Fit all-reduce alpha/beta per link class from two samples.
		arRow := make([]AlphaBeta, numLinkClasses)
		for lc, link := range p.links() {
			arRow[lc] = fitAlphaBeta(
				func(n int64) float64 { return hw.AllReduceTime(link, tp, n) })
		}
		t.AllReduce = append(t.AllReduce, arRow)
	}
	for _, link := range p.links() {
		t.P2P = append(t.P2P, fitAlphaBeta(
			func(n int64) float64 { return hw.P2PTime(link, n) }))
	}
	t.HostDMA = fitAlphaBeta(func(n int64) float64 { return hw.P2PTime(hw.HostDMA, n) })
	t.initIndex()
	return t
}

func (p *Profiler) links() []hw.Link {
	return []hw.Link{p.Cluster.IntraNode, p.Cluster.InterNode}
}

// fitAlphaBeta samples a communication primitive at two sizes and fits
// the linear alpha/beta model.
func fitAlphaBeta(f func(int64) float64) AlphaBeta {
	const n1, n2 = 1 << 10, 1 << 26
	t1, t2 := f(n1), f(n2)
	beta := (t2 - t1) / float64(n2-n1)
	alpha := t1 - beta*n1
	if alpha < 0 {
		alpha = 0
	}
	return AlphaBeta{Alpha: alpha, Beta: beta}
}

// tpIndex returns the index of the closest profiled TP degree <= tp,
// erroring on degrees below 1.
func (t *Table) tpIndex(tp int) (int, error) {
	for i, d := range t.TPDegrees {
		if d == tp {
			return i, nil
		}
	}
	return 0, fmt.Errorf("profile: TP degree %d not profiled (have %v)", tp, t.TPDegrees)
}

// segment returns lo such that grid[lo] <= x < grid[lo+1]. The caller
// guarantees grid[0] < x < grid[last]. Power-of-two grids resolve in
// O(1) from the float exponent (Ilogb is exact — no log rounding);
// everything else binary-searches. Both paths return the same unique
// lo, so the fast path is bit-identical to the slow one.
func segment(grid []int, pow2 bool, x float64) int {
	if pow2 {
		// grid[i] == 2^i, so floor(log2 x) is the segment index.
		return math.Ilogb(x)
	}
	lo := 0
	hi := len(grid) - 1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if float64(grid[mid]) <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// interp1 linearly interpolates vals over the integer grid at x,
// clamping below the grid and extrapolating linearly above it.
func interp1(grid []int, pow2 bool, vals []float64, x float64) float64 {
	if len(grid) == 0 {
		return 0
	}
	if x <= float64(grid[0]) {
		return vals[0]
	}
	last := len(grid) - 1
	if x >= float64(grid[last]) {
		// Extrapolate linearly from the last segment: workloads beyond
		// the sweep maximum scale linearly in the roofline regime.
		if last == 0 {
			return vals[0]
		}
		x0, x1 := float64(grid[last-1]), float64(grid[last])
		return vals[last] + (vals[last]-vals[last-1])*(x-x1)/(x1-x0)
	}
	lo := segment(grid, pow2, x)
	hi := lo + 1
	x0, x1 := float64(grid[lo]), float64(grid[hi])
	f := (x - x0) / (x1 - x0)
	return vals[lo]*(1-f) + vals[hi]*f
}

// interp2 bilinearly interpolates a [len(g1)][len(g2)] table. Only the
// one or two rows the outer axis actually touches are interpolated, so
// the lookup is allocation-free; the branch structure mirrors interp1
// exactly, keeping results bit-identical to interpolating every row.
func interp2(g1, g2 []int, p1, p2 bool, vals [][]float64, x, y float64) float64 {
	if len(g1) == 0 {
		return 0
	}
	if x <= float64(g1[0]) {
		return interp1(g2, p2, vals[0], y)
	}
	last := len(g1) - 1
	if x >= float64(g1[last]) {
		if last == 0 {
			return interp1(g2, p2, vals[0], y)
		}
		x0, x1 := float64(g1[last-1]), float64(g1[last])
		vLast := interp1(g2, p2, vals[last], y)
		vPrev := interp1(g2, p2, vals[last-1], y)
		return vLast + (vLast-vPrev)*(x-x1)/(x1-x0)
	}
	lo := segment(g1, p1, x)
	hi := lo + 1
	x0, x1 := float64(g1[lo]), float64(g1[hi])
	f := (x - x0) / (x1 - x0)
	return interp1(g2, p2, vals[lo], y)*(1-f) + interp1(g2, p2, vals[hi], y)*f
}

// EncodeRest returns the rest-of-layer encode time for totalTokens.
func (t *Table) EncodeRest(totalTokens int, tp int) (float64, error) {
	i, err := t.tpIndex(tp)
	if err != nil {
		return 0, err
	}
	if totalTokens <= 0 {
		return 0, nil
	}
	return interp1(t.TokenGrid, t.pow2Token, t.EncRest[i], float64(totalTokens)), nil
}

// EncodeAttn returns the encode attention time.
func (t *Table) EncodeAttn(totalTokens int, meanSeq float64, tp int) (float64, error) {
	i, err := t.tpIndex(tp)
	if err != nil {
		return 0, err
	}
	if totalTokens <= 0 {
		return 0, nil
	}
	return interp2(t.TokenGrid, t.SeqGrid, t.pow2Token, t.pow2Seq, t.EncAttn[i], float64(totalTokens), meanSeq), nil
}

// DecodeRest returns the rest-of-layer decode time for one iteration.
func (t *Table) DecodeRest(batch int, tp int) (float64, error) {
	i, err := t.tpIndex(tp)
	if err != nil {
		return 0, err
	}
	if batch <= 0 {
		return 0, nil
	}
	return interp1(t.BatchGrid, t.pow2Batch, t.DecRest[i], float64(batch)), nil
}

// DecodeAttn returns the decode attention time; ctx is the combined
// self+cross context length per query.
func (t *Table) DecodeAttn(batch int, ctx float64, tp int) (float64, error) {
	i, err := t.tpIndex(tp)
	if err != nil {
		return 0, err
	}
	if batch <= 0 {
		return 0, nil
	}
	return interp2(t.BatchGrid, t.CtxGrid, t.pow2Batch, t.pow2Ctx, t.DecAttn[i], float64(batch), ctx), nil
}

// SyncTime returns the tensor-parallel synchronization time for one
// layer of the given kind processing totalTokens tokens.
func (t *Table) SyncTime(encoder bool, totalTokens, tp int, lc LinkClass) (float64, error) {
	if tp <= 1 {
		return 0, nil
	}
	i, err := t.tpIndex(tp)
	if err != nil {
		return 0, err
	}
	if lc < 0 || int(lc) >= len(t.AllReduce[i]) {
		return 0, fmt.Errorf("profile: bad link class %d", lc)
	}
	syncs := t.EncSyncsPerLayer
	if !encoder {
		syncs = t.DecSyncsPerLayer
	}
	bytes := int64(totalTokens) * t.ActTokenBytes
	return float64(syncs) * t.AllReduce[i][lc].Time(bytes), nil
}

// EncodeLayer returns the full per-layer encode time including sync.
func (t *Table) EncodeLayer(totalTokens int, meanSeq float64, tp int, lc LinkClass) (float64, error) {
	rest, err := t.EncodeRest(totalTokens, tp)
	if err != nil {
		return 0, err
	}
	attn, err := t.EncodeAttn(totalTokens, meanSeq, tp)
	if err != nil {
		return 0, err
	}
	sync, err := t.SyncTime(true, totalTokens, tp, lc)
	if err != nil {
		return 0, err
	}
	return rest + attn + sync, nil
}

// DecodeLayer returns the full per-layer decode-iteration time
// including sync.
func (t *Table) DecodeLayer(batch int, ctx float64, tp int, lc LinkClass) (float64, error) {
	rest, err := t.DecodeRest(batch, tp)
	if err != nil {
		return 0, err
	}
	attn, err := t.DecodeAttn(batch, ctx, tp)
	if err != nil {
		return 0, err
	}
	sync, err := t.SyncTime(false, batch, tp, lc)
	if err != nil {
		return 0, err
	}
	return rest + attn + sync, nil
}

// PPSend returns the pipeline handover time for totalTokens activations.
func (t *Table) PPSend(totalTokens int, lc LinkClass) (float64, error) {
	if lc < 0 || int(lc) >= len(t.P2P) {
		return 0, fmt.Errorf("profile: bad link class %d", lc)
	}
	if totalTokens <= 0 {
		return 0, nil
	}
	return t.P2P[lc].Time(int64(totalTokens) * t.ActTokenBytes), nil
}

// KVTransfer returns the encoder→decoder KV handover time for tokens
// prompt tokens, staged through host memory (two DMA hops).
func (t *Table) KVTransfer(tokens int) float64 {
	if tokens <= 0 {
		return 0
	}
	return 2 * t.HostDMA.Time(int64(tokens)*t.KVTokenBytes)
}

// MarshalJSON / round-trip helpers.

// Encode serializes the table to JSON.
func (t *Table) Encode() ([]byte, error) { return json.Marshal(t) }

// Decode parses a table from JSON.
func Decode(data []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.initIndex()
	return &t, nil
}

// Validate checks structural consistency.
func (t *Table) Validate() error {
	if len(t.TPDegrees) == 0 {
		return fmt.Errorf("profile: no TP degrees")
	}
	if len(t.EncRest) != len(t.TPDegrees) || len(t.EncAttn) != len(t.TPDegrees) ||
		len(t.DecRest) != len(t.TPDegrees) || len(t.DecAttn) != len(t.TPDegrees) ||
		len(t.AllReduce) != len(t.TPDegrees) {
		return fmt.Errorf("profile: table rows do not match TP degrees")
	}
	for i := range t.TPDegrees {
		if len(t.EncRest[i]) != len(t.TokenGrid) || len(t.DecRest[i]) != len(t.BatchGrid) {
			return fmt.Errorf("profile: grid size mismatch at tp index %d", i)
		}
	}
	for _, row := range t.EncRest {
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("profile: invalid encode time %v", v)
			}
		}
	}
	return nil
}
