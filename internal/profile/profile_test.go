package profile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"exegpt/internal/costmodel"
	"exegpt/internal/hw"
	"exegpt/internal/model"
)

func table(t *testing.T, m model.Model, c hw.Cluster) *Table {
	t.Helper()
	p, err := New(m, c)
	if err != nil {
		t.Fatal(err)
	}
	return p.Run()
}

func TestNewValidates(t *testing.T) {
	if _, err := New(model.Model{}, hw.A40Cluster); err == nil {
		t.Fatal("invalid model should fail")
	}
	if _, err := New(model.OPT13B, hw.Cluster{}); err == nil {
		t.Fatal("invalid cluster should fail")
	}
}

func TestRunShape(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	if tab.ModelName != "OPT-13B" || tab.GPUName != "A40" {
		t.Fatalf("names: %s %s", tab.ModelName, tab.GPUName)
	}
	// Powers of two up to 8 GPUs per node.
	want := []int{1, 2, 4, 8}
	if len(tab.TPDegrees) != len(want) {
		t.Fatalf("TP degrees = %v", tab.TPDegrees)
	}
	for i := range want {
		if tab.TPDegrees[i] != want[i] {
			t.Fatalf("TP degrees = %v", tab.TPDegrees)
		}
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.EncSyncsPerLayer != 2 || tab.DecSyncsPerLayer != 3 {
		t.Fatal("Megatron sync counts wrong")
	}
}

func TestLookupMatchesEngineOnGrid(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	eng, err := costmodel.New(model.OPT13B, hw.A40)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []int{1, 4} {
		for _, tok := range []int{64, 1024, 16384} {
			got, err := tab.EncodeRest(tok, tp)
			if err != nil {
				t.Fatal(err)
			}
			want := eng.EncodeRestTime(tok, tp)
			if math.Abs(got-want)/want > 1e-9 {
				t.Fatalf("EncodeRest(%d,tp%d) = %v, want %v", tok, tp, got, want)
			}
		}
		for _, b := range []int{1, 32, 512} {
			got, err := tab.DecodeRest(b, tp)
			if err != nil {
				t.Fatal(err)
			}
			want := eng.DecodeRestTime(b, tp)
			if math.Abs(got-want)/want > 1e-9 {
				t.Fatalf("DecodeRest(%d,tp%d) = %v, want %v", b, tp, got, want)
			}
		}
	}
}

func TestInterpolationBetweenGridPoints(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	eng, _ := costmodel.New(model.OPT13B, hw.A40)
	// 48 is between grid points 32 and 64; linear interp should land
	// within a few percent of the true roofline value.
	got, err := tab.DecodeRest(48, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := eng.DecodeRestTime(48, 1)
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("interp DecodeRest(48) = %v, want ~%v", got, want)
	}
}

func TestExtrapolationBeyondGrid(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	small, err := tab.DecodeRest(1<<12, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := tab.DecodeRest(1<<13, 1)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatal("extrapolation should keep growing")
	}
}

func TestUnknownTPErrors(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	if _, err := tab.DecodeRest(4, 3); err == nil {
		t.Fatal("TP=3 not profiled; should error")
	}
	if _, err := tab.EncodeLayer(4, 16, 16, IntraNode); err == nil {
		t.Fatal("TP=16 not profiled; should error")
	}
}

func TestZeroWork(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	for _, f := range []func() (float64, error){
		func() (float64, error) { return tab.EncodeRest(0, 1) },
		func() (float64, error) { return tab.EncodeAttn(0, 8, 1) },
		func() (float64, error) { return tab.DecodeRest(0, 1) },
		func() (float64, error) { return tab.DecodeAttn(0, 8, 1) },
		func() (float64, error) { return tab.PPSend(0, IntraNode) },
	} {
		v, err := f()
		if err != nil || v != 0 {
			t.Fatalf("zero work: v=%v err=%v", v, err)
		}
	}
	if tab.KVTransfer(0) != 0 {
		t.Fatal("zero KV transfer should be free")
	}
}

func TestSyncTime(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	// TP=1 has no sync.
	s, err := tab.SyncTime(false, 100, 1, IntraNode)
	if err != nil || s != 0 {
		t.Fatalf("tp=1 sync = %v err=%v", s, err)
	}
	enc, err := tab.SyncTime(true, 100, 4, IntraNode)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := tab.SyncTime(false, 100, 4, IntraNode)
	if err != nil {
		t.Fatal(err)
	}
	// Decoders pay 3 all-reduces vs encoders' 2.
	if math.Abs(dec/enc-1.5) > 1e-6 {
		t.Fatalf("dec/enc sync ratio = %v, want 1.5", dec/enc)
	}
	// Inter-node sync over 100Gb IB is slower than intra-node PCIe.
	inter, err := tab.SyncTime(false, 100, 4, InterNode)
	if err != nil {
		t.Fatal(err)
	}
	if inter <= dec {
		t.Fatalf("inter-node sync %v should exceed intra %v", inter, dec)
	}
	if _, err := tab.SyncTime(false, 100, 4, LinkClass(9)); err == nil {
		t.Fatal("bad link class should error")
	}
}

func TestComposedLayerTimes(t *testing.T) {
	tab := table(t, model.GPT339B, hw.A40Cluster)
	enc, err := tab.EncodeLayer(16*256, 256, 4, IntraNode)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := tab.DecodeLayer(16, 256, 4, IntraNode)
	if err != nil {
		t.Fatal(err)
	}
	if enc < 20*dec {
		t.Fatalf("encode layer %v should dominate decode %v", enc, dec)
	}
}

func TestPPSendAndKVTransfer(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	intra, err := tab.PPSend(512, IntraNode)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := tab.PPSend(512, InterNode)
	if err != nil {
		t.Fatal(err)
	}
	if inter <= intra {
		t.Fatal("inter-node send should be slower")
	}
	if _, err := tab.PPSend(1, LinkClass(5)); err == nil {
		t.Fatal("bad link class should error")
	}
	kv1, kv2 := tab.KVTransfer(100), tab.KVTransfer(200)
	if kv2 <= kv1 || kv1 <= 0 {
		t.Fatalf("KV transfer times %v %v", kv1, kv2)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tab := table(t, model.T511B, hw.A40Cluster)
	data, err := tab.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tab.DecodeLayer(32, 128, 2, IntraNode)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.DecodeLayer(32, 128, 2, IntraNode)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("round trip changed lookup: %v vs %v", a, b)
	}
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("bad JSON should error")
	}
	if _, err := Decode([]byte("{}")); err == nil {
		t.Fatal("empty table should fail validation")
	}
}

// Property: interpolated lookups are monotone in batch/tokens for any
// profiled TP degree.
func TestQuickLookupMonotone(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	f := func(a, b uint16, tpSel uint8) bool {
		lo, hi := int(a)+1, int(b)+1
		if lo > hi {
			lo, hi = hi, lo
		}
		tp := tab.TPDegrees[int(tpSel)%len(tab.TPDegrees)]
		dl, err1 := tab.DecodeRest(lo, tp)
		dh, err2 := tab.DecodeRest(hi, tp)
		if err1 != nil || err2 != nil {
			return false
		}
		if dl > dh+1e-12 {
			return false
		}
		el, err1 := tab.EncodeRest(lo, tp)
		eh, err2 := tab.EncodeRest(hi, tp)
		return err1 == nil && err2 == nil && el <= eh+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

// TestPow2FastPathMatchesBinarySearch: the O(1) exponent-indexed
// segment lookup must be bit-identical to the binary-search fallback on
// every lookup surface, including grid points, interior values,
// fractional coordinates, and beyond-grid extrapolation.
func TestPow2FastPathMatchesBinarySearch(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	if !tab.pow2Token || !tab.pow2Seq || !tab.pow2Batch || !tab.pow2Ctx {
		t.Fatal("geomGrid power-of-two grids should enable the fast path")
	}
	slow := *tab
	slow.pow2Token, slow.pow2Seq, slow.pow2Batch, slow.pow2Ctx = false, false, false, false

	check := func(name string, a, b float64, errA, errB error) {
		t.Helper()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", name, errA, errB)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: fast %v != slow %v", name, a, b)
		}
	}

	r := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		tp := tab.TPDegrees[r.Intn(len(tab.TPDegrees))]
		tok := r.Intn(1<<18) + 1 // up to 2x beyond the token grid
		seq := r.Float64() * float64(uint(1)<<13)
		batch := r.Intn(1<<13) + 1
		ctx := r.Float64() * float64(uint(1)<<14)
		if i < 64 {
			// Hit grid points and segment boundaries exactly.
			tok = 1 << uint(i%18)
			batch = 1 << uint(i%13)
			seq = float64(int(1) << uint(i%13))
			ctx = float64(int(1) << uint(i%14))
		}
		a, ea := tab.EncodeRest(tok, tp)
		b, eb := slow.EncodeRest(tok, tp)
		check("EncodeRest", a, b, ea, eb)
		a, ea = tab.EncodeAttn(tok, seq, tp)
		b, eb = slow.EncodeAttn(tok, seq, tp)
		check("EncodeAttn", a, b, ea, eb)
		a, ea = tab.DecodeRest(batch, tp)
		b, eb = slow.DecodeRest(batch, tp)
		check("DecodeRest", a, b, ea, eb)
		a, ea = tab.DecodeAttn(batch, ctx, tp)
		b, eb = slow.DecodeAttn(batch, ctx, tp)
		check("DecodeAttn", a, b, ea, eb)
	}
}

func TestIsPow2Grid(t *testing.T) {
	cases := []struct {
		grid []int
		want bool
	}{
		{[]int{1, 2, 4, 8}, true},
		{[]int{1}, true},
		{[]int{1, 2, 3}, false},
		{[]int{2, 4, 8}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := isPow2Grid(c.grid); got != c.want {
			t.Fatalf("isPow2Grid(%v) = %v, want %v", c.grid, got, c.want)
		}
	}
}

// Decoded tables must re-enable the fast path (the flags are unexported
// and not serialized).
func TestDecodeRestoresFastPath(t *testing.T) {
	tab := table(t, model.OPT13B, hw.A40Cluster)
	data, err := tab.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.pow2Token || !back.pow2Seq || !back.pow2Batch || !back.pow2Ctx {
		t.Fatal("Decode should rebuild the pow2 index")
	}
}

func BenchmarkProfilerRun(b *testing.B) {
	p, _ := New(model.OPT13B, hw.A40Cluster)
	for i := 0; i < b.N; i++ {
		_ = p.Run()
	}
}

func BenchmarkTableLookup(b *testing.B) {
	p, _ := New(model.OPT13B, hw.A40Cluster)
	tab := p.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = tab.DecodeLayer(37, 211, 4, IntraNode)
	}
}
