// Package eventsim provides a deterministic discrete-event simulation
// kernel used by the XRunner execution engine and the baseline engines.
//
// Time is virtual and measured in seconds (float64). Events scheduled at
// the same instant are executed in scheduling order (FIFO), which makes
// every simulation run bit-for-bit reproducible.
//
// Event structs are pooled: fired and lazily drained cancelled events
// return to a per-Sim free list and are reused by later At/After calls,
// so long simulations (the WAA runner schedules one event per decode
// iteration and handover) stop churning the heap allocator once the
// pool warms up. External code holds Handles, which carry a generation
// counter so operations on an already-fired (recycled) event are safe
// no-ops.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is pool-owned storage for one scheduled callback. External code
// never holds *Event directly; it gets a Handle.
type Event struct {
	at   float64
	seq  uint64
	gen  uint64
	fn   func()
	dead bool
	// sim owns the event; Cancel needs it to keep the owner's live-event
	// count exact without walking the heap.
	sim *Sim
}

// Handle refers to a scheduled event. The zero Handle is valid and
// refers to nothing. Handles stay safe after the event fires: the pool
// bumps the event's generation on recycle, so a stale Cancel cannot
// touch whatever event reuses the storage.
type Handle struct {
	ev  *Event
	gen uint64
}

// Time returns the virtual time at which the event fires, or NaN when
// the handle no longer refers to a pending event.
func (h Handle) Time() float64 {
	if h.ev == nil || h.ev.gen != h.gen {
		return math.NaN()
	}
	return h.ev.at
}

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or a zero Handle) is a no-op. The cancelled event is
// dropped lazily: it stays in the heap until the simulation would pop
// it, then goes straight back to the pool without running.
func (h Handle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen && !h.ev.dead {
		h.ev.dead = true
		h.ev.sim.dead++
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator. The zero value is not usable; use New.
type Sim struct {
	now     float64
	seq     uint64
	pending eventHeap
	steps   uint64
	// dead counts cancelled events still parked in the heap awaiting
	// lazy drain; Pending subtracts it so cancelled work is invisible.
	dead int
	// free is the Event pool: fired and drained-cancelled events park
	// here and At reuses them instead of allocating.
	free []*Event
	// MaxSteps bounds the number of processed events to guard against
	// runaway simulations; 0 means no bound.
	MaxSteps uint64
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Steps returns the number of events processed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// alloc takes an Event from the pool, or allocates when it is empty.
func (s *Sim) alloc() *Event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &Event{}
}

// recycle returns a fired or drained-cancelled event to the pool. The
// generation bump invalidates every outstanding Handle to it; dropping
// fn releases the callback's captures.
func (s *Sim) recycle(ev *Event) {
	if ev.dead {
		s.dead--
	}
	ev.gen++
	ev.fn = nil
	ev.dead = false
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics, because it indicates a logic error in the caller.
func (s *Sim) At(t float64, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: schedule at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("eventsim: schedule at NaN")
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.fn, ev.sim = t, s.seq, fn, s
	s.seq++
	heap.Push(&s.pending, ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run d seconds after the current time.
func (s *Sim) After(d float64, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Pending reports the number of live events waiting to fire. Cancelled
// events still parked in the heap awaiting lazy drain are excluded, so
// an idleness check in a long-lived loop never sees phantom work.
func (s *Sim) Pending() int { return len(s.pending) - s.dead }

// Step processes the single earliest pending event. It reports whether
// an event was processed. The event's storage is recycled before its
// callback runs, so the callback can immediately reuse it by scheduling
// a follow-up event.
func (s *Sim) Step() bool {
	for len(s.pending) > 0 {
		ev := heap.Pop(&s.pending).(*Event)
		if ev.dead {
			s.recycle(ev)
			continue
		}
		s.now = ev.at
		s.steps++
		fn := ev.fn
		s.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run processes events until none remain or MaxSteps is exceeded.
// It returns the final virtual time.
func (s *Sim) Run() float64 {
	for s.Step() {
		if s.MaxSteps > 0 && s.steps > s.MaxSteps {
			panic(fmt.Sprintf("eventsim: exceeded MaxSteps=%d", s.MaxSteps))
		}
	}
	return s.now
}

// RunUntil processes events with firing time <= deadline. Events
// scheduled beyond the deadline remain pending. It returns the final
// virtual time, which never exceeds the deadline.
func (s *Sim) RunUntil(deadline float64) float64 {
	for len(s.pending) > 0 {
		next := s.pending[0]
		if next.dead {
			s.recycle(heap.Pop(&s.pending).(*Event))
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
		if s.MaxSteps > 0 && s.steps > s.MaxSteps {
			panic(fmt.Sprintf("eventsim: exceeded MaxSteps=%d", s.MaxSteps))
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// Resource models an exclusive serially-reusable resource (e.g. one GPU's
// compute stream). Work items are executed in FIFO order; each occupies
// the resource for its stated duration.
type Resource struct {
	sim  *Sim
	name string
	// freeAt is the virtual time at which the resource becomes idle.
	freeAt float64
	// busy accumulates total busy seconds for utilization accounting.
	busy float64
}

// NewResource creates a resource bound to sim.
func NewResource(sim *Sim, name string) *Resource {
	return &Resource{sim: sim, name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// FreeAt returns the virtual time at which all currently queued work
// completes.
func (r *Resource) FreeAt() float64 { return r.freeAt }

// BusySeconds returns the accumulated busy time.
func (r *Resource) BusySeconds() float64 { return r.busy }

// Acquire schedules work of the given duration beginning no earlier than
// earliest, queued FIFO behind previously acquired work. done is invoked
// at completion time with the completion time as argument. Acquire
// returns the time the work starts.
func (r *Resource) Acquire(earliest, duration float64, done func(endAt float64)) float64 {
	if duration < 0 {
		panic(fmt.Sprintf("eventsim: resource %s negative duration %v", r.name, duration))
	}
	start := math.Max(math.Max(earliest, r.freeAt), r.sim.Now())
	end := start + duration
	r.freeAt = end
	r.busy += duration
	if done != nil {
		r.sim.At(end, func() { done(end) })
	}
	return start
}

// Utilization returns busy seconds divided by the given makespan.
func (r *Resource) Utilization(makespan float64) float64 {
	if makespan <= 0 {
		return 0
	}
	return r.busy / makespan
}
