// Package eventsim provides a deterministic discrete-event simulation
// kernel used by the XRunner execution engine and the baseline engines.
//
// Time is virtual and measured in seconds (float64). Events scheduled at
// the same instant are executed in scheduling order (FIFO), which makes
// every simulation run bit-for-bit reproducible.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	at   float64
	seq  uint64
	fn   func()
	dead bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator. The zero value is not usable; use New.
type Sim struct {
	now     float64
	seq     uint64
	pending eventHeap
	steps   uint64
	// MaxSteps bounds the number of processed events to guard against
	// runaway simulations; 0 means no bound.
	MaxSteps uint64
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Steps returns the number of events processed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics, because it indicates a logic error in the caller.
func (s *Sim) At(t float64, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: schedule at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("eventsim: schedule at NaN")
	}
	ev := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.pending, ev)
	return ev
}

// After schedules fn to run d seconds after the current time.
func (s *Sim) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Pending reports the number of events waiting to fire (including
// cancelled ones not yet drained).
func (s *Sim) Pending() int { return len(s.pending) }

// Step processes the single earliest pending event. It reports whether
// an event was processed.
func (s *Sim) Step() bool {
	for len(s.pending) > 0 {
		ev := heap.Pop(&s.pending).(*Event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		s.steps++
		ev.fn()
		return true
	}
	return false
}

// Run processes events until none remain or MaxSteps is exceeded.
// It returns the final virtual time.
func (s *Sim) Run() float64 {
	for s.Step() {
		if s.MaxSteps > 0 && s.steps > s.MaxSteps {
			panic(fmt.Sprintf("eventsim: exceeded MaxSteps=%d", s.MaxSteps))
		}
	}
	return s.now
}

// RunUntil processes events with firing time <= deadline. Events
// scheduled beyond the deadline remain pending. It returns the final
// virtual time, which never exceeds the deadline.
func (s *Sim) RunUntil(deadline float64) float64 {
	for len(s.pending) > 0 {
		next := s.pending[0]
		if next.dead {
			heap.Pop(&s.pending)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
		if s.MaxSteps > 0 && s.steps > s.MaxSteps {
			panic(fmt.Sprintf("eventsim: exceeded MaxSteps=%d", s.MaxSteps))
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// Resource models an exclusive serially-reusable resource (e.g. one GPU's
// compute stream). Work items are executed in FIFO order; each occupies
// the resource for its stated duration.
type Resource struct {
	sim  *Sim
	name string
	// freeAt is the virtual time at which the resource becomes idle.
	freeAt float64
	// busy accumulates total busy seconds for utilization accounting.
	busy float64
}

// NewResource creates a resource bound to sim.
func NewResource(sim *Sim, name string) *Resource {
	return &Resource{sim: sim, name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// FreeAt returns the virtual time at which all currently queued work
// completes.
func (r *Resource) FreeAt() float64 { return r.freeAt }

// BusySeconds returns the accumulated busy time.
func (r *Resource) BusySeconds() float64 { return r.busy }

// Acquire schedules work of the given duration beginning no earlier than
// earliest, queued FIFO behind previously acquired work. done is invoked
// at completion time with the completion time as argument. Acquire
// returns the time the work starts.
func (r *Resource) Acquire(earliest, duration float64, done func(endAt float64)) float64 {
	if duration < 0 {
		panic(fmt.Sprintf("eventsim: resource %s negative duration %v", r.name, duration))
	}
	start := math.Max(math.Max(earliest, r.freeAt), r.sim.Now())
	end := start + duration
	r.freeAt = end
	r.busy += duration
	if done != nil {
		r.sim.At(end, func() { done(end) })
	}
	return start
}

// Utilization returns busy seconds divided by the given makespan.
func (r *Resource) Utilization(makespan float64) float64 {
	if makespan <= 0 {
		return 0
	}
	return r.busy / makespan
}
